package ted_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	ted "repro"
	"repro/gen"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDistanceKnownCases(t *testing.T) {
	cases := []struct {
		f, g string
		want float64
	}{
		{"{a}", "{a}", 0},
		{"{a}", "{b}", 1},
		{"{a}", "{a{b}}", 1},
		{"{a{b}{c}}", "{a{b}{c}}", 0},
		{"{a{b}{c}}", "{a{c}{b}}", 2}, // ordered trees: swap needs two renames
		// Flattening a chain: c is below b in F but b's sibling in G, so
		// mapping both would break ancestry; best is delete+insert of c.
		{"{a{b{c}}}", "{a{b}{c}}", 2},
		{"{f{d{a}{c{b}}}{e}}", "{f{c{d{a}{b}}}{e}}", 2}, // classic ZS example: rename+move via delete/insert
		{"{a{b}{c}}", "{d}", 3},
		{"{a{b{d}}{c}}", "{a{b}{c{d}}}", 2},
	}
	for _, c := range cases {
		f, g := ted.MustParse(c.f), ted.MustParse(c.g)
		for _, alg := range append(ted.Algorithms, ted.ZhangShashaClassic) {
			got := ted.Distance(f, g, ted.WithAlgorithm(alg))
			if !approx(got, c.want) {
				t.Errorf("Distance(%s, %s, %v) = %v, want %v", c.f, c.g, alg, got, c.want)
			}
		}
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	trees := make([]*ted.Tree, 0, 12)
	for i := int64(0); i < 12; i++ {
		trees = append(trees, gen.Random(i, gen.RandomSpec{Size: 1 + int(i*3)%25, MaxDepth: 6, MaxFanout: 4, Labels: 3}))
	}
	for _, a := range trees {
		if d := ted.Distance(a, a); d != 0 {
			t.Fatalf("d(T,T) = %v != 0", d)
		}
	}
	for i, a := range trees {
		for j, b := range trees {
			dab := ted.Distance(a, b)
			dba := ted.Distance(b, a)
			if !approx(dab, dba) {
				t.Fatalf("symmetry broken: d(%d,%d)=%v, d(%d,%d)=%v", i, j, dab, j, i, dba)
			}
			lo := math.Abs(float64(a.Len() - b.Len()))
			hi := float64(a.Len() + b.Len())
			if dab < lo-1e-9 || dab > hi+1e-9 {
				t.Fatalf("bounds broken: d=%v not in [%v,%v]", dab, lo, hi)
			}
		}
	}
	for _, a := range trees[:6] {
		for _, b := range trees[:6] {
			for _, c := range trees[:6] {
				if ted.Distance(a, c) > ted.Distance(a, b)+ted.Distance(b, c)+1e-9 {
					t.Fatalf("triangle inequality broken")
				}
			}
		}
	}
}

func TestWithStatsAndCounts(t *testing.T) {
	f := gen.ZigZag(101)
	g := gen.ZigZag(77)
	for _, alg := range ted.Algorithms {
		var st ted.Stats
		ted.Distance(f, g, ted.WithAlgorithm(alg), ted.WithStats(&st))
		if st.Subproblems <= 0 || st.TotalTime <= 0 {
			t.Fatalf("%v: empty stats %+v", alg, st)
		}
		if want := ted.CountSubproblems(f, g, alg); want != st.Subproblems {
			t.Fatalf("%v: instrumented %d != analytic %d", alg, st.Subproblems, want)
		}
	}
	var st ted.Stats
	ted.Distance(f, g, ted.WithStats(&st))
	if st.StrategyTime <= 0 || st.StrategyTime > st.TotalTime {
		t.Fatalf("RTED strategy time %v total %v", st.StrategyTime, st.TotalTime)
	}
	if oc := ted.OptimalStrategyCost(f, g); oc != st.Subproblems {
		t.Fatalf("optimal strategy cost %d != RTED subproblems %d", oc, st.Subproblems)
	}
}

func TestWeightedAndFuncCost(t *testing.T) {
	f := ted.MustParse("{a{b}}")
	g := ted.MustParse("{a}")
	if d := ted.Distance(f, g, ted.WithCost(ted.WeightedCost(2.5, 1, 1))); !approx(d, 2.5) {
		t.Fatalf("weighted delete: %v", d)
	}
	if d := ted.Distance(g, f, ted.WithCost(ted.WeightedCost(2.5, 0.25, 1))); !approx(d, 0.25) {
		t.Fatalf("weighted insert: %v", d)
	}
	depthCharge := ted.FuncCost(
		func(string) float64 { return 1 },
		func(string) float64 { return 1 },
		func(a, b string) float64 {
			if a == b {
				return 0
			}
			return 0.5
		},
	)
	if d := ted.Distance(ted.MustParse("{x}"), ted.MustParse("{y}"), ted.WithCost(depthCharge)); !approx(d, 0.5) {
		t.Fatalf("func rename: %v", d)
	}
}

// TestMappingValidity checks the defining properties of edit mappings on
// random pairs: cost equals distance, every node covered exactly once,
// matches are one-to-one and preserve ancestry and left-to-right order.
func TestMappingValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 60; iter++ {
		f := gen.Random(rng.Int63(), gen.RandomSpec{Size: 1 + rng.Intn(18), MaxDepth: 6, MaxFanout: 4, Labels: 3})
		g := gen.Random(rng.Int63(), gen.RandomSpec{Size: 1 + rng.Intn(18), MaxDepth: 6, MaxFanout: 4, Labels: 3})
		ops := ted.Mapping(f, g)
		var total float64
		fSeen := make([]bool, f.Len())
		gSeen := make([]bool, g.Len())
		type pair struct{ fv, gw int }
		var matches []pair
		for _, op := range ops {
			total += op.Cost
			switch op.Kind {
			case ted.OpMatch:
				if fSeen[op.FNode] || gSeen[op.GNode] {
					t.Fatalf("node covered twice")
				}
				fSeen[op.FNode] = true
				gSeen[op.GNode] = true
				matches = append(matches, pair{op.FNode, op.GNode})
				if op.FLabel != f.Label(op.FNode) || op.GLabel != g.Label(op.GNode) {
					t.Fatalf("mapping labels wrong")
				}
			case ted.OpDelete:
				if fSeen[op.FNode] {
					t.Fatalf("deleted node covered twice")
				}
				fSeen[op.FNode] = true
			case ted.OpInsert:
				if gSeen[op.GNode] {
					t.Fatalf("inserted node covered twice")
				}
				gSeen[op.GNode] = true
			}
		}
		for v, ok := range fSeen {
			if !ok {
				t.Fatalf("F-node %d uncovered", v)
			}
		}
		for w, ok := range gSeen {
			if !ok {
				t.Fatalf("G-node %d uncovered", w)
			}
		}
		if want := ted.Distance(f, g); !approx(total, want) {
			t.Fatalf("mapping cost %v != distance %v\nF=%s\nG=%s", total, want, f, g)
		}
		// Structural validity: for matched pairs (v1,w1), (v2,w2):
		// v1 ancestor of v2 <=> w1 ancestor of w2, and v1 left of v2 <=>
		// w1 left of w2 (postorder + ancestry determine the order).
		anc := func(tr *ted.Tree, a, b int) bool { // a is ancestor of b
			return a != b && tr.InSubtree(b, a)
		}
		for _, p := range matches {
			for _, q := range matches {
				if p == q {
					continue
				}
				if anc(f, p.fv, q.fv) != anc(g, p.gw, q.gw) {
					t.Fatalf("ancestry not preserved: (%d,%d) vs (%d,%d)", p.fv, p.gw, q.fv, q.gw)
				}
				if (p.fv < q.fv) != (p.gw < q.gw) {
					t.Fatalf("postorder not preserved: (%d,%d) vs (%d,%d)", p.fv, p.gw, q.fv, q.gw)
				}
			}
		}
	}
}

func TestFromXML(t *testing.T) {
	doc := `<a x="1"><b>text</b><c/><c></c></a>`
	tr, err := ted.FromXML(strings.NewReader(doc), ted.XMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.String() != "{a{b}{c}{c}}" {
		t.Fatalf("plain conversion: %s", tr)
	}
	tr, err = ted.FromXML(strings.NewReader(doc), ted.XMLOptions{IncludeAttributes: true, IncludeText: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.String() != "{a{@x=1}{b{text}}{c}{c}}" {
		t.Fatalf("full conversion: %s", tr)
	}
	for _, bad := range []string{"", "<a><b></a></b>", "<a></a><b></b>", "no xml at all"} {
		if _, err := ted.FromXML(strings.NewReader(bad), ted.XMLOptions{}); err == nil {
			t.Fatalf("FromXML(%q) succeeded, want error", bad)
		}
	}
	// Two versions of a document differ by one attribute and one element.
	v1, _ := ted.FromXML(strings.NewReader(`<r><item id="1"/><item id="2"/></r>`), ted.XMLOptions{IncludeAttributes: true})
	v2, _ := ted.FromXML(strings.NewReader(`<r><item id="1"/><item id="3"/><extra/></r>`), ted.XMLOptions{IncludeAttributes: true})
	if d := ted.Distance(v1, v2); !approx(d, 2) {
		t.Fatalf("xml diff distance = %v, want 2", d)
	}
}

func TestJoinAgreesAcrossAlgorithms(t *testing.T) {
	trees := []*ted.Tree{
		gen.LeftBranch(31),
		gen.RightBranch(31),
		gen.FullBinary(31),
		gen.ZigZag(31),
		gen.Random(9, gen.RandomSpec{Size: 31, MaxDepth: 8, MaxFanout: 4, Labels: 2}),
	}
	tau := 18.0
	base := ted.Join(trees, tau)
	if base.Comparisons != 10 {
		t.Fatalf("comparisons = %d, want 10", base.Comparisons)
	}
	for _, alg := range ted.Algorithms {
		r := ted.Join(trees, tau, ted.WithAlgorithm(alg))
		if len(r.Pairs) != len(base.Pairs) {
			t.Fatalf("%v: %d pairs, want %d", alg, len(r.Pairs), len(base.Pairs))
		}
		for i := range r.Pairs {
			if r.Pairs[i] != base.Pairs[i] {
				t.Fatalf("%v: pair %d = %+v, want %+v", alg, i, r.Pairs[i], base.Pairs[i])
			}
		}
		if alg == ted.RTED && r.Subproblems > base.Subproblems {
			t.Fatalf("RTED join got more subproblems than itself?")
		}
	}
	// RTED must not exceed any competitor on the join workload.
	for _, alg := range ted.Algorithms[1:] {
		r := ted.Join(trees, tau, ted.WithAlgorithm(alg))
		if base.Subproblems > r.Subproblems {
			t.Fatalf("RTED join subproblems %d exceed %v's %d", base.Subproblems, alg, r.Subproblems)
		}
	}
}

func TestBuilderAPI(t *testing.T) {
	n := ted.NewNode("a", ted.NewNode("b"), ted.NewNode("c", ted.NewNode("d")))
	tr := ted.Build(n)
	if tr.String() != "{a{b}{c{d}}}" {
		t.Fatalf("builder tree %s", tr)
	}
	if tr.Len() != 4 {
		t.Fatalf("len %d", tr.Len())
	}
}

func TestAlgorithmString(t *testing.T) {
	want := map[ted.Algorithm]string{
		ted.RTED: "RTED", ted.ZhangL: "Zhang-L", ted.ZhangR: "Zhang-R",
		ted.KleinH: "Klein-H", ted.DemaineH: "Demaine-H", ted.ZhangShashaClassic: "ZS-classic",
	}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("%d.String() = %q want %q", a, a.String(), s)
		}
	}
	if ted.Algorithm(99).String() != "Algorithm(99)" {
		t.Fatalf("unknown algorithm string")
	}
}
