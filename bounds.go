package ted

import "repro/internal/bounds"

// LowerBound returns a cheap lower bound on the unit-cost tree edit
// distance: the best of the size bound, the label-histogram bound, the
// binary-branch bound (Yang et al.) and the serialization string-edit
// bound (Guha et al.). It never exceeds Distance(f, g) under UnitCost
// and costs O(|f|·|g|) in the worst case (the string bound) with much
// cheaper early components.
func LowerBound(f, g *Tree) float64 { return bounds.Lower(f, g) }

// ConstrainedDistance returns the ordered constrained edit distance
// (Zhang-style), an upper bound on the unit-cost tree edit distance that
// is computable in O(|f|·|g|) — typically orders of magnitude faster
// than the exact distance. Every constrained mapping is a valid edit
// mapping, and for many tree pairs the bound is tight.
func ConstrainedDistance(f, g *Tree) float64 { return bounds.Constrained(f, g) }

// PQGramDistance returns the normalized pq-gram distance in [0, 1]
// (Augsten et al., cited in Section 7 of the RTED paper), a fast
// pseudo-metric over label p,q-gram profiles used for approximate tree
// joins and candidate generation. It is not a lower bound of the
// unit-cost edit distance (it bounds a fanout-weighted variant); use
// LowerBound for exact pruning. Typical parameters are p=2, q=3. To
// generate join candidates from pq-grams at corpus scale, use the
// inverted index in package index instead of pairwise calls.
func PQGramDistance(f, g *Tree, p, q int) float64 { return bounds.PQGram(f, g, p, q) }
