package ted_test

import (
	"math"
	"testing"

	ted "repro"
)

// FuzzDistanceSparseVsDense fuzzes the band-compressed row layout (and
// the sharp band pricing stacked on it) against full-width banded rows
// over bracket tree pairs and arbitrary thresholds. Row compression
// changes where admissible cells are stored, not what they compute, so
// sparse and dense banded runs must return bit-identical results with
// equal subproblem and band accounting; sharp pricing may only prune
// more, never change an answer.
//
// Run continuously with: go test -fuzz=FuzzDistanceSparseVsDense
func FuzzDistanceSparseVsDense(f *testing.F) {
	f.Add("{a{b}{c}}", "{a{b{d}}}", 1.5)
	f.Add("{a{b{c{d{e}}}}}", "{a}", 2.0)
	f.Add("{x{x}{x}{x}{x}}", "{x{x{x{x{x}}}}}", 3.0)
	f.Add("{a}", "{b}", math.Inf(1))
	f.Add("{r{a{b}{c}}{d}}", "{r{d}{a{c}{b}}}", 0.0)
	f.Add("{l0{l1}{l2{l3}}}", "{l0{l2{l3}}{l1}}", -1.0)

	f.Fuzz(func(t *testing.T, fs, gs string, tau float64) {
		ft, err := ted.Parse(fs)
		if err != nil || ft.Len() > 60 {
			t.Skip()
		}
		gt, err := ted.Parse(gs)
		if err != nil || gt.Len() > 60 {
			t.Skip()
		}
		if math.IsNaN(tau) {
			t.Skip()
		}
		var sd, ss, sh ted.Stats
		dd, okD := ted.DistanceBounded(ft, gt, tau, ted.WithStats(&sd),
			ted.WithSparseRows(false), ted.WithSharpBands(false))
		ds, okS := ted.DistanceBounded(ft, gt, tau, ted.WithStats(&ss),
			ted.WithSparseRows(true), ted.WithSharpBands(false))
		dh, okH := ted.DistanceBounded(ft, gt, tau, ted.WithStats(&sh),
			ted.WithSparseRows(true), ted.WithSharpBands(true))
		if ds != dd || okS != okD {
			t.Fatalf("sparse (%v, %v) != dense (%v, %v) at tau=%v\nF=%s\nG=%s",
				ds, okS, dd, okD, tau, fs, gs)
		}
		if dh != dd || okH != okD {
			t.Fatalf("sharp (%v, %v) != dense (%v, %v) at tau=%v\nF=%s\nG=%s",
				dh, okH, dd, okD, tau, fs, gs)
		}
		if ss.Subproblems != sd.Subproblems || ss.PrunedSubproblems != sd.PrunedSubproblems ||
			ss.BandSkippedCells != sd.BandSkippedCells || ss.PrunedKeyroots != sd.PrunedKeyroots {
			t.Fatalf("sparse accounting differs from dense at tau=%v\nsparse %+v\ndense  %+v\nF=%s\nG=%s",
				tau, ss, sd, fs, gs)
		}
		if sd.CompressedRows != 0 {
			t.Fatalf("dense run reports %d compressed rows: %+v", sd.CompressedRows, sd)
		}
		if sh.Subproblems > ss.Subproblems {
			t.Fatalf("sharp evaluated %d subproblems, sparse %d at tau=%v\nF=%s\nG=%s",
				sh.Subproblems, ss.Subproblems, tau, fs, gs)
		}
		if ss.CompressedRows < 0 || ss.RowCells < 0 || sh.RowCells < 0 {
			t.Fatalf("negative row instrumentation: sparse %+v, sharp %+v", ss, sh)
		}
	})
}
