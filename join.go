package ted

import (
	"time"

	"repro/batch"
	"repro/corpus"
	"repro/internal/strategy"
	"repro/internal/tree"
)

// JoinPair is one similarity-join match: trees at indices I and J of the
// input collection (I < J) with edit distance Dist < τ.
type JoinPair struct {
	I, J int
	Dist float64
}

// JoinResult reports the matches and the cost of a similarity self-join.
type JoinResult struct {
	Pairs []JoinPair
	// Comparisons counts the pairs the join visited: all unordered pairs
	// for enumerating joins, the generated candidates for indexed joins.
	Comparisons int
	Subproblems int64
	Elapsed     time.Duration
	// Filter accounting (only populated by filtered and indexed joins):
	// pairs pruned by a lower bound, accepted by the upper bound, and
	// resolved by the exact algorithm.
	LowerPruned   int
	UpperAccepted int
	ExactComputed int
	// Indexed joins only: the candidate generator that ran (IndexAuto
	// resolves before running) and the index build + probe time.
	Mode      IndexMode
	IndexTime time.Duration
}

// IndexMode selects how an indexed join generates candidate pairs; see
// batch.IndexMode for the semantics of each value.
type IndexMode = batch.IndexMode

const (
	// IndexAuto picks enumeration for non-selective thresholds and the
	// histogram index otherwise.
	IndexAuto = batch.IndexAuto
	// IndexEnumerate visits all pairs (bound filters do every rejection).
	IndexEnumerate = batch.IndexEnumerate
	// IndexHistogram generates candidates from the label-histogram
	// inverted index.
	IndexHistogram = batch.IndexHistogram
	// IndexPQGram generates candidates from the (1,2)-gram inverted
	// index (pairs sharing local structure, not just labels).
	IndexPQGram = batch.IndexPQGram
)

// WithWorkers runs the join's distance computations on n goroutines
// (default 1). Results are identical and deterministic.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithFilters enables the lower/upper-bound pipeline in front of the
// exact computation (Section 7 of the paper: bounds prune exact distance
// computations in threshold joins). The match set is unchanged; the
// reported distance of a pair accepted by the upper bound is that upper
// bound (≥ the true distance, still below tau). Filtered joins require
// the unit cost model, the model of all published bounds.
func WithFilters() Option { return func(c *config) { c.filters = true } }

// WithIndex routes Join through inverted-index candidate generation
// (package index): instead of enumerating all O(n²) pairs and filtering,
// the join builds an index over the collection and visits only the pairs
// the index cannot rule out; the bound filters of WithFilters then run
// on the candidates, so the match set is provably identical to the
// enumerating join's. Indexed joins require the unit cost model.
//
// Use IndexAuto unless you know the workload: it enumerates when the
// threshold is too large for any index to prune, and generates from the
// label-histogram index otherwise. IndexPQGram trades a costlier index
// build for structure-aware candidates — the better choice when most
// trees share most labels. See the package index documentation for the
// full decision guide.
func WithIndex(m IndexMode) Option {
	return func(c *config) {
		c.indexed = true
		c.imode = m
	}
}

// batchOpts assembles the batch engine options a config describes:
// worker count, cost model, and — for the fixed-strategy competitor
// algorithms — the per-pair strategy override (RTED is the engine
// default).
func (c config) batchOpts(workers int) []batch.Option {
	opts := []batch.Option{batch.WithWorkers(workers), batch.WithCost(c.model),
		batch.WithBanding(!c.unbanded), batch.WithSparseRows(!c.noSparse),
		batch.WithSharpBands(!c.noSharp)}
	if c.alg != RTED {
		a := c.alg
		opts = append(opts, batch.WithStrategy(func(f, g *tree.Tree) strategy.Strategy {
			return StrategyFor(a, f, g)
		}))
	}
	return opts
}

// batchEngine builds a free-standing engine from the config.
func (c config) batchEngine(workers int) *batch.Engine {
	return batch.New(c.batchOpts(workers)...)
}

// joinCorpus wraps a collection in a transient corpus for an indexed
// join, maintaining the index the mode will probe (auto resolves inside
// the corpus and prefers the histogram). Add order makes the assigned
// IDs 0..n−1, which the returned map folds back to collection indices.
func joinCorpus(trees []*Tree, mode IndexMode) (*corpus.Corpus, map[corpus.ID]int) {
	var opts []corpus.Option
	switch mode {
	case IndexPQGram:
		opts = append(opts, corpus.WithPQGramIndex(2))
	case IndexEnumerate:
		// Enumeration probes nothing; skip index maintenance entirely.
	default: // IndexAuto, IndexHistogram
		opts = append(opts, corpus.WithHistogramIndex())
	}
	cp := corpus.New(opts...)
	ids := make(map[corpus.ID]int, len(trees))
	for i, t := range trees {
		ids[cp.Add(t)] = i
	}
	return cp, ids
}

// Join computes the similarity self-join of the paper's Table 1: all
// pairs of trees in the collection with edit distance below tau. Options
// select the algorithm and cost model as for Distance, plus WithWorkers,
// WithFilters and WithIndex (all of which compose: an indexed join's
// candidates run the bound filters and fan out over the workers too).
//
// Join runs on the batch engine: every tree is prepared once — node
// indexes, decomposition cardinalities, cost vectors, bound profiles —
// and the pairs are evaluated on per-worker reusable arenas, so the
// per-pair cost is the GTED computation alone.
func Join(trees []*Tree, tau float64, opts ...Option) JoinResult {
	c := buildConfig(opts)
	if (c.filters || c.indexed) && c.model != UnitCost {
		panic("ted: filtered and indexed joins require the unit cost model")
	}
	workers := c.workers
	if workers < 1 {
		workers = 1
	}
	var ms []batch.Match
	var st batch.JoinStats
	if c.indexed {
		// Indexed joins run on the corpus layer: the collection becomes a
		// transient corpus whose maintained index generates the
		// candidates, and the engine hydrates the corpus's artifacts —
		// the same path a persisted corpus takes after Load, so the two
		// are one code path and provably agree.
		cp, ids := joinCorpus(trees, c.imode)
		e := cp.Engine(c.batchOpts(workers)...)
		cms, cst := cp.Join(e, tau, batch.JoinOptions{Mode: c.imode})
		st = cst
		for _, m := range cms {
			ms = append(ms, batch.Match{I: ids[m.I], J: ids[m.J], Dist: m.Dist})
		}
	} else {
		e := c.batchEngine(workers)
		ms, st = e.Join(e.PrepareAll(trees), tau, c.filters)
	}
	out := JoinResult{
		Comparisons:   st.Comparisons,
		Subproblems:   st.Subproblems,
		Elapsed:       st.Elapsed,
		LowerPruned:   st.LowerPruned,
		UpperAccepted: st.UpperAccepted,
		ExactComputed: st.ExactComputed,
		Mode:          st.Mode,
		IndexTime:     st.IndexTime,
	}
	if c.stats != nil {
		c.stats.Subproblems = st.Subproblems
		c.stats.TotalTime = st.Elapsed
	}
	for _, m := range ms {
		out.Pairs = append(out.Pairs, JoinPair{I: m.I, J: m.J, Dist: m.Dist})
	}
	return out
}
