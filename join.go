package ted

import (
	"time"

	"repro/internal/join"
	"repro/internal/strategy"
	"repro/internal/tree"
)

// JoinPair is one similarity-join match: trees at indices I and J of the
// input collection (I < J) with edit distance Dist < τ.
type JoinPair struct {
	I, J int
	Dist float64
}

// JoinResult reports the matches and the cost of a similarity self-join.
type JoinResult struct {
	Pairs       []JoinPair
	Comparisons int
	Subproblems int64
	Elapsed     time.Duration
	// Filter accounting (only populated by filtered joins): pairs pruned
	// by a lower bound, accepted by the upper bound, and resolved by the
	// exact algorithm.
	LowerPruned   int
	UpperAccepted int
	ExactComputed int
}

// WithWorkers runs the join's distance computations on n goroutines
// (default 1). Results are identical and deterministic.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithFilters enables the lower/upper-bound pipeline in front of the
// exact computation (Section 7 of the paper: bounds prune exact distance
// computations in threshold joins). The match set is unchanged; the
// reported distance of a pair accepted by the upper bound is that upper
// bound (≥ the true distance, still below tau). Filtered joins require
// the unit cost model, the model of all published bounds.
func WithFilters() Option { return func(c *config) { c.filters = true } }

// Join computes the similarity self-join of the paper's Table 1: all
// pairs of trees in the collection with edit distance below tau. Options
// select the algorithm and cost model as for Distance, plus WithWorkers
// and WithFilters.
func Join(trees []*Tree, tau float64, opts ...Option) JoinResult {
	c := buildConfig(opts)
	var factory join.StrategyFactory
	switch c.alg {
	case RTED:
		factory = join.RTEDFactory()
	default:
		a := c.alg
		factory = join.FixedFactory(func(f, g *tree.Tree) strategy.Named {
			return StrategyFor(a, f, g)
		})
	}
	var r join.Result
	var out JoinResult
	switch {
	case c.filters:
		if c.model != UnitCost {
			panic("ted: filtered joins require the unit cost model")
		}
		fr := join.FilteredSelfJoin(trees, tau, factory, false)
		r = fr.Result
		out.LowerPruned = fr.Filter.LowerPruned
		out.UpperAccepted = fr.Filter.UpperAccepted
		out.ExactComputed = fr.Filter.ExactComputed
	case c.workers > 1:
		r = join.ParallelSelfJoin(trees, tau, c.model, factory, c.workers)
	default:
		r = join.SelfJoin(trees, tau, c.model, factory)
	}
	out.Comparisons = r.Comparisons
	out.Subproblems = r.Subproblems
	out.Elapsed = r.Elapsed
	if c.stats != nil {
		c.stats.Subproblems = r.Subproblems
		c.stats.TotalTime = r.Elapsed
	}
	for _, p := range r.Pairs {
		out.Pairs = append(out.Pairs, JoinPair{I: p.I, J: p.J, Dist: p.Dist})
	}
	return out
}
