package server

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"repro/corpus"
)

// Replication endpoints and replica-mode guards. A primary serves its
// write-ahead log as a chunked stream of records in the log's on-disk
// framing (GET /v1/wal) and its snapshot bytes for catch-up shipping
// (GET /v1/checkpoint); a follower process (cluster.Follower) tails the
// former and falls back to the latter when its position has been
// truncated away. A server running over a follower's corpus is
// configured with WithReplica: mutations are refused with 403, reads
// optionally guarded by a staleness bound, and /v1/stats grows a
// replication block.
//
// Both endpoints bypass the admission gate: they are cluster-internal,
// long-lived (the WAL stream long-polls), and must stay available while
// query traffic saturates the slot pool — a replica that cannot fetch
// the log because clients are busy reading would never converge.

// walStreamBatch bounds how many records one write batch carries, and
// walWakeEvery how often an idle stream emits a progress frame so the
// follower can measure lag and liveness.
const (
	walStreamBatch = 256
	walWakeEvery   = 5 * time.Second
	walMaxWait     = 60 * time.Second
)

func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	if !s.c.Replicable() {
		writeError(w, http.StatusServiceUnavailable, "corpus has no write-ahead log (not opened with Open)")
		return
	}
	q := r.URL.Query()
	from, err := strconv.Atoi(q.Get("from"))
	if err != nil || from < 0 {
		writeError(w, http.StatusBadRequest, "from must be a non-negative integer")
		return
	}
	wait := time.Duration(0)
	if ws := q.Get("wait"); ws != "" {
		if wait, err = time.ParseDuration(ws); err != nil || wait < 0 {
			writeError(w, http.StatusBadRequest, "wait must be a non-negative duration")
			return
		}
		if wait > walMaxWait {
			wait = walMaxWait
		}
	}
	pos, ok := s.c.ReplCheck(corpus.ReplPos{Gen: q.Get("gen"), Seq: from})
	if !ok {
		// The follower's position is gone — truncated into a snapshot it
		// never saw. 409 tells it to ship /v1/checkpoint instead.
		writeError(w, http.StatusConflict, "position truncated away; fetch /v1/checkpoint and resume from its position")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ted-Wal-Gen", pos.Gen)
	w.Header().Set("X-Ted-Wal-Seq", strconv.Itoa(pos.Seq))
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)

	deadline := time.Now().Add(wait)
	var buf []byte
	for {
		if s.draining.Load() || r.Context().Err() != nil {
			return
		}
		recs, next, ok := s.c.ReplRecords(pos, walStreamBatch)
		if !ok || next.Gen != pos.Gen {
			// The generation rotated under the stream: one stream is one
			// generation, so close cleanly and let the follower reconnect
			// (ReplCheck maps a caught-up position across the rotation).
			return
		}
		if len(recs) == 0 {
			buf = corpus.AppendWALFrame(buf[:0], corpus.ProgressBody(pos.Seq))
			if _, err := w.Write(buf); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			if !time.Now().Before(deadline) {
				return
			}
			wake := walWakeEvery
			if until := time.Until(deadline); until < wake {
				wake = until
			}
			wctx, cancel := context.WithTimeout(r.Context(), wake)
			s.c.ReplWait(wctx, pos)
			cancel()
			continue
		}
		for _, rec := range recs {
			buf = corpus.AppendWALFrame(buf[:0], rec)
			if _, err := w.Write(buf); err != nil {
				return
			}
		}
		if fl != nil {
			fl.Flush()
		}
		pos = next
	}
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.c.Replicable() {
		writeError(w, http.StatusServiceUnavailable, "corpus has no write-ahead log (not opened with Open)")
		return
	}
	snap, pos, err := s.c.SnapshotBytes()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(snap)))
	w.Header().Set("X-Ted-Wal-Gen", pos.Gen)
	w.Header().Set("X-Ted-Wal-Seq", strconv.Itoa(pos.Seq))
	w.WriteHeader(http.StatusOK)
	w.Write(snap)
}

// mutating guards a write handler: a replica refuses with 403 and
// points at the primary — writes flow one way, through the log.
func (s *Server) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.readOnly {
			writeError(w, http.StatusForbidden, "read-only replica; send writes to the primary")
			return
		}
		h(w, r)
	}
}

// fresh guards a read handler with the replica's staleness bound: when
// the follower has not been provably caught up within the configured
// window, reads get 503 rather than silently serving arbitrarily old
// data. Unbounded (the default) serves always.
func (s *Server) fresh(h http.HandlerFunc) http.HandlerFunc {
	if s.staleness == nil || s.maxStale <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if st := s.staleness(); st > s.maxStale {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				"replica stale: "+st.Truncate(time.Millisecond).String()+" behind the primary (bound "+s.maxStale.String()+")")
			return
		}
		h(w, r)
	}
}
