// Package server is the HTTP serving layer over a corpus: it exposes
// the distance, bounded-distance, similarity-join and top-k machinery of
// the batch engine — and the corpus mutations, made durable by the
// write-ahead log — as a JSON API, with request admission control in
// front of the worker pool.
//
// The startup path is the one the corpus layer was built for: Open (or
// Load) the corpus, attach an engine with Corpus.Engine, Warm it so the
// first request pays for nothing but distance computations. The request
// path then runs entirely on prepared state: stored trees hydrate from
// their artifacts, ad-hoc query trees are prepared per request
// (batch.Engine.PrepareQuery) and discarded.
//
// # API
//
//	POST   /v1/distance          {"f": T, "g": T}              → {"dist": d}
//	POST   /v1/distance-bounded  {"f": T, "g": T, "tau": τ}    → {"dist": d, "within": b}
//	POST   /v1/join              {"tau": τ, "mode": "auto",
//	                              "limit": n}                  → {"matches": [{"i","j","dist"}], ...}
//	POST   /v1/topk              {"query": T, "k": k}          → {"matches": [{"tree","root","dist"}]}
//	POST   /v1/trees             {"tree": "{a{b}}"}            → {"id": id}       (201)
//	GET    /v1/trees/{id}                                      → {"id", "tree"}
//	PUT    /v1/trees/{id}        {"tree": "{a{c}}"}            → {"id": id}
//	DELETE /v1/trees/{id}                                      → 204
//	GET    /v1/stats                                           → corpus and admission counters
//	GET    /healthz                                            → 200 serving / 503 draining
//
// where T is a tree reference: {"id": n} names a stored tree, {"tree":
// "{a{b}{c}}"} carries an ad-hoc one in bracket notation. Errors are
// {"error": "..."} with a meaningful status code (400 invalid request,
// 404 unknown id, 413 oversized body, 503 overloaded or draining).
//
// # Admission control
//
// Every /v1 request passes an admission gate before touching the
// engine: at most MaxInFlight requests are in flight, and an arrival
// beyond that waits up to QueueTimeout for a slot before being refused
// with 503 and a Retry-After header. The gate bounds the work queued
// onto the engine's worker pool — the pool itself never sees more
// concurrent batch calls than the gate admits, so distance latency
// under overload degrades by queueing at the front door with a bounded
// wait, not by collapsing the arenas' cache behavior. Per-request
// validation (τ and k ranges, tree size caps, body size caps) runs
// after admission and before any engine work.
//
// Draining (Server.Drain, wired to SIGTERM in cmd/tedd) flips the gate:
// new requests get 503, /healthz reports 503 so load balancers stop
// routing, and in-flight requests finish normally under
// http.Server.Shutdown.
//
// # Durability
//
// Mutation handlers call Corpus.Sync before acknowledging, so a 2xx
// means the mutation reached the write-ahead log on stable storage —
// the crash-recovery contract of corpus.Open extends end to end to the
// API.
package server
