package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	ted "repro"
	"repro/corpus"
	"repro/server"
)

// Querying a tedd-style server with nothing but net/http and
// encoding/json: the wire types in this package marshal the requests,
// and the same bytes work against any server.New handler — here an
// httptest server, in production the cmd/tedd binary.
func Example() {
	// Server side: a corpus (in production: corpus.Open + Warm, inside
	// cmd/tedd) behind the HTTP handler.
	c := corpus.New(corpus.WithHistogramIndex())
	for _, s := range []string{"{a{b}{c}}", "{a{b}{c{d}}}", "{a{b}}", "{x{y}}"} {
		c.Add(ted.MustParse(s))
	}
	srv := server.New(c)
	srv.Warm()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(path string, req, resp any) {
		body, _ := json.Marshal(req)
		r, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			panic(err)
		}
		defer r.Body.Close()
		json.NewDecoder(r.Body).Decode(resp)
	}

	// Distance between a stored tree and an ad-hoc one.
	id := int64(0)
	var d server.DistanceResponse
	post("/v1/distance", server.DistanceRequest{
		F: server.TreeRef{ID: &id},
		G: server.TreeRef{Tree: "{a{b}{c{d}}}"},
	}, &d)
	fmt.Println("distance:", d.Dist)

	// The similarity self-join of the stored corpus.
	var j server.JoinResponse
	post("/v1/join", server.JoinRequest{Tau: 2}, &j)
	for _, m := range j.Matches {
		fmt.Printf("join: %d ~ %d at %g\n", m.I, m.J, m.Dist)
	}

	// Top-k closest stored subtrees to an ad-hoc query.
	var k server.TopKResponse
	post("/v1/topk", server.TopKRequest{Query: server.TreeRef{Tree: "{a{b}}"}, K: 1}, &k)
	fmt.Printf("top-1: subtree %d of tree %d at %g\n", k.Matches[0].Root, k.Matches[0].Tree, k.Matches[0].Dist)

	// Output:
	// distance: 1
	// join: 0 ~ 1 at 1
	// join: 0 ~ 2 at 1
	// top-1: subtree 1 of tree 2 at 0
}
