package server

import (
	ted "repro"
	"repro/batch"
	"repro/cluster"
	"repro/corpus"
)

// coordinator abstracts the distributed fan-out behind WithClusterWorkers
// so the handlers stay transport-free and tests can stub it.
type coordinator interface {
	Join(tau float64, opts batch.JoinOptions) ([]corpus.Match, batch.JoinStats, error)
	TopK(query *ted.Tree, k int) ([]corpus.CrossMatch, batch.Stats, error)
}

func newCoordinator(addrs []string) coordinator { return cluster.NewCoordinator(addrs) }
