package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// The tenant-aware admission gate. PR 5's gate was a single global
// semaphore: one slot pool, every request equal, so a tenant issuing
// heavy joins could occupy every slot and starve another tenant's
// point lookups for the whole queue timeout. This gate keeps one total
// capacity but constrains who may hold it:
//
//   - Priority classes: every route is either a point lookup (distance,
//     bounded, tree CRUD — cheap, latency-sensitive) or heavy work
//     (join, top-k and their streaming variants — long-running,
//     throughput-oriented). Heavy requests may hold at most heavyCap
//     slots, so capTotal − heavyCap slots are always reachable by point
//     lookups no matter how many joins are queued.
//   - Per-tenant quotas: the X-Tenant request header names the tenant
//     (missing or empty → "default"); one tenant may hold at most
//     tenantCap slots, so a single aggressive client cannot occupy the
//     whole pool even within its class.
//
// Admission is: a fitting slot now, a fitting slot within the queue
// timeout, or a 503 — with every waiter outcome counted (admitted,
// shed on timeout, or abandoned when the client disconnects while
// queued; the abandoned count is what lets a load harness reconcile
// its observed 503s exactly against server counters).
type gate struct {
	capTotal  int
	heavyCap  int
	tenantCap int

	mu        sync.Mutex
	inflight  int
	heavy     int
	perTenant map[string]int
	// wake is closed and replaced on every release, waking all waiters
	// to retry; a waiter loops (try, wait) until it fits, times out, or
	// its request context ends.
	wake chan struct{}
}

func newGate(total, heavyCap, tenantCap int) *gate {
	if total < 1 {
		total = 1
	}
	if heavyCap < 1 {
		heavyCap = 1
	}
	if heavyCap > total {
		heavyCap = total
	}
	if tenantCap < 1 || tenantCap > total {
		tenantCap = total
	}
	return &gate{
		capTotal:  total,
		heavyCap:  heavyCap,
		tenantCap: tenantCap,
		perTenant: make(map[string]int),
		wake:      make(chan struct{}),
	}
}

// admitOutcome is one waiter's fate.
type admitOutcome int

const (
	gateAdmitted  admitOutcome = iota
	gateTimedOut               // no fitting slot within the queue timeout → 503
	gateAbandoned              // the client disconnected while queued → no response at all
)

// tryAcquire takes a slot if one fits this tenant and class right now.
func (g *gate) tryAcquire(tenant string, heavy bool) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inflight >= g.capTotal || (heavy && g.heavy >= g.heavyCap) || g.perTenant[tenant] >= g.tenantCap {
		return false
	}
	g.inflight++
	if heavy {
		g.heavy++
	}
	g.perTenant[tenant]++
	return true
}

// acquire blocks until a fitting slot is taken, the timeout elapses, or
// ctx ends — in that priority when several are ready at once (a waiter
// that could be admitted is admitted, not shed).
func (g *gate) acquire(ctx context.Context, tenant string, heavy bool, timeout time.Duration) admitOutcome {
	if g.tryAcquire(tenant, heavy) {
		return gateAdmitted
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	for {
		g.mu.Lock()
		if g.inflight < g.capTotal && !(heavy && g.heavy >= g.heavyCap) && g.perTenant[tenant] < g.tenantCap {
			g.inflight++
			if heavy {
				g.heavy++
			}
			g.perTenant[tenant]++
			g.mu.Unlock()
			return gateAdmitted
		}
		wake := g.wake
		g.mu.Unlock()
		select {
		case <-wake:
		case <-t.C:
			return gateTimedOut
		case <-ctx.Done():
			return gateAbandoned
		}
	}
}

// release returns a slot and wakes every waiter to retry. A tenant's
// count reaching zero deletes its map entry, so the map tracks only
// tenants with work in flight (tenant cardinality is bounded separately
// by the counter table; see tenants).
func (g *gate) release(tenant string, heavy bool) {
	g.mu.Lock()
	g.inflight--
	if heavy {
		g.heavy--
	}
	if n := g.perTenant[tenant] - 1; n > 0 {
		g.perTenant[tenant] = n
	} else {
		delete(g.perTenant, tenant)
	}
	close(g.wake)
	g.wake = make(chan struct{})
	g.mu.Unlock()
}

// inFlight reports the currently held slots.
func (g *gate) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}

// tenantCounters is one tenant's admission accounting; the counters of
// /v1/stats "tenants".
type tenantCounters struct {
	admitted  atomic.Int64
	shed      atomic.Int64
	abandoned atomic.Int64
}

// maxTenantCounters bounds the per-tenant counter table: X-Tenant is
// client-controlled, so without a bound an adversarial header stream
// grows server memory forever. Beyond the cap, unseen tenants share the
// overflow bucket (they still get their own in-flight quota slots — the
// gate's map is bounded by capTotal live entries — only their counters
// aggregate).
const (
	maxTenantCounters = 256
	overflowTenant    = "~other"
	defaultTenant     = "default"
)

// tenants is the per-tenant counter table.
type tenants struct {
	mu sync.Mutex
	m  map[string]*tenantCounters
}

func (t *tenants) get(name string) *tenantCounters {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[string]*tenantCounters)
	}
	tc, ok := t.m[name]
	if !ok {
		if len(t.m) >= maxTenantCounters && name != overflowTenant {
			name = overflowTenant
			if tc, ok = t.m[name]; ok {
				return tc
			}
		}
		tc = &tenantCounters{}
		t.m[name] = tc
	}
	return tc
}

// snapshot folds the table into wire form.
func (t *tenants) snapshot() map[string]TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) == 0 {
		return nil
	}
	out := make(map[string]TenantStats, len(t.m))
	for name, tc := range t.m {
		out[name] = TenantStats{
			Admitted:  tc.admitted.Load(),
			Shed:      tc.shed.Load(),
			Abandoned: tc.abandoned.Load(),
		}
	}
	return out
}

// tenantOf names the request's tenant: the X-Tenant header, or
// "default". Over-long names are truncated rather than rejected — the
// tenant name is an accounting key, not a credential.
func tenantOf(r *http.Request) string {
	t := r.Header.Get("X-Tenant")
	if t == "" {
		return defaultTenant
	}
	if len(t) > 64 {
		t = t[:64]
	}
	return t
}
