package server

// OccupySlots fills n admission slots and returns a release function, so
// tests can drive the gate into its full state deterministically instead
// of racing slow requests against fast ones.
func (s *Server) OccupySlots(n int) (release func()) {
	for i := 0; i < n; i++ {
		s.sem <- struct{}{}
	}
	return func() {
		for i := 0; i < n; i++ {
			<-s.sem
		}
	}
}
