package server

// OccupySlots fills n admission slots and returns a release function, so
// tests can drive the gate into its full state deterministically instead
// of racing slow requests against fast ones. Slots are taken as point
// lookups of a dedicated tenant: the total pool fills, whatever the
// heavy-share and per-tenant configuration under test.
func (s *Server) OccupySlots(n int) (release func()) {
	for i := 0; i < n; i++ {
		if !s.gate.tryAcquire("~test-occupier", classPoint) {
			panic("OccupySlots: gate full before n slots taken")
		}
	}
	return func() {
		for i := 0; i < n; i++ {
			s.gate.release("~test-occupier", classPoint)
		}
	}
}
