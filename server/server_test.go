package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	ted "repro"
	"repro/batch"
	"repro/corpus"
	"repro/server"
)

var fixtureTrees = []string{
	"{a{b}{c}}",
	"{a{b}{c{d}}}",
	"{a{b}}",
	"{x{y{z}}}",
	"{a{b}{c}{d}}",
	"{q{r{s}{t}}}",
}

func newFixture(t *testing.T, opts ...server.Option) (*corpus.Corpus, *server.Server, *httptest.Server) {
	t.Helper()
	c := corpus.New(corpus.WithHistogramIndex())
	for _, s := range fixtureTrees {
		c.Add(ted.MustParse(s))
	}
	s := server.New(c, opts...)
	s.Warm()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return c, s, ts
}

// call posts a JSON request and decodes the JSON response, returning
// the status code.
func call(t *testing.T, method, url string, req, resp any) int {
	t.Helper()
	var body io.Reader
	if req != nil {
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		body = bytes.NewReader(raw)
	}
	hreq, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer hresp.Body.Close()
	if resp != nil {
		if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return hresp.StatusCode
}

func ref(s string) server.TreeRef   { return server.TreeRef{Tree: s} }
func refID(id int64) server.TreeRef { return server.TreeRef{ID: &id} }

// TestDistanceEndpoints cross-checks every distance answer against the
// in-process engine, for ad-hoc trees, stored ids, and mixtures.
func TestDistanceEndpoints(t *testing.T) {
	c, s, ts := newFixture(t)
	e := s.Engine()
	pf, _ := c.Prepared(e, 0)
	pg, _ := c.Prepared(e, 3)

	var resp server.DistanceResponse
	if code := call(t, "POST", ts.URL+"/v1/distance",
		server.DistanceRequest{F: refID(0), G: refID(3)}, &resp); code != 200 {
		t.Fatalf("distance by id: status %d", code)
	}
	if want := e.Distance(pf, pg); resp.Dist != want {
		t.Fatalf("distance by id = %g, want %g", resp.Dist, want)
	}

	if code := call(t, "POST", ts.URL+"/v1/distance",
		server.DistanceRequest{F: ref("{a{b}{c}}"), G: refID(3)}, &resp); code != 200 {
		t.Fatalf("mixed distance: status %d", code)
	}
	if want := e.Distance(pf, pg); resp.Dist != want {
		t.Fatalf("mixed distance = %g, want %g", resp.Dist, want)
	}

	// Bounded: a tau below the distance answers not-within, at or above
	// answers within with the exact distance.
	d := e.Distance(pf, pg)
	var b server.DistanceBoundedResponse
	call(t, "POST", ts.URL+"/v1/distance-bounded",
		server.DistanceBoundedRequest{F: refID(0), G: refID(3), Tau: d}, &b)
	if !b.Within || b.Dist != d {
		t.Fatalf("bounded at tau=d: within=%v dist=%g, want true, %g", b.Within, b.Dist, d)
	}
	call(t, "POST", ts.URL+"/v1/distance-bounded",
		server.DistanceBoundedRequest{F: refID(0), G: refID(3), Tau: d - 1}, &b)
	if b.Within || b.Dist < d-1 {
		t.Fatalf("bounded at tau=d-1: within=%v dist=%g", b.Within, b.Dist)
	}
}

// TestJoinEndpointMatchesInProcess is the server-side half of the smoke
// contract: the HTTP join must agree with corpus.Join exactly.
func TestJoinEndpointMatchesInProcess(t *testing.T) {
	c, s, ts := newFixture(t)
	for _, mode := range []string{"auto", "enumerate", "histogram"} {
		var resp server.JoinResponse
		if code := call(t, "POST", ts.URL+"/v1/join",
			server.JoinRequest{Tau: 3, Mode: mode}, &resp); code != 200 {
			t.Fatalf("join %s: status %d", mode, code)
		}
		want, _ := c.Join(s.Engine(), 3, batch.JoinOptions{Mode: mustMode(t, mode)})
		if resp.Count != len(want) || len(resp.Matches) != len(want) {
			t.Fatalf("join %s: %d matches, want %d", mode, resp.Count, len(want))
		}
		for i, m := range want {
			got := resp.Matches[i]
			if got.I != int64(m.I) || got.J != int64(m.J) || got.Dist != m.Dist {
				t.Fatalf("join %s: match %d = %+v, want %+v", mode, i, got, m)
			}
		}
	}

	// Limit truncates but reports the full count.
	var limited server.JoinResponse
	call(t, "POST", ts.URL+"/v1/join", server.JoinRequest{Tau: 100, Limit: 1}, &limited)
	if len(limited.Matches) != 1 || !limited.Truncated || limited.Count <= 1 {
		t.Fatalf("limited join: %d matches, truncated=%v, count=%d",
			len(limited.Matches), limited.Truncated, limited.Count)
	}
}

func mustMode(t *testing.T, s string) batch.IndexMode {
	t.Helper()
	switch s {
	case "auto":
		return batch.IndexAuto
	case "enumerate":
		return batch.IndexEnumerate
	case "histogram":
		return batch.IndexHistogram
	case "pqgram":
		return batch.IndexPQGram
	}
	t.Fatalf("bad mode %q", s)
	return 0
}

func TestTopKEndpointMatchesInProcess(t *testing.T) {
	c, s, ts := newFixture(t)
	var resp server.TopKResponse
	if code := call(t, "POST", ts.URL+"/v1/topk",
		server.TopKRequest{Query: ref("{a{b}{c}}"), K: 4}, &resp); code != 200 {
		t.Fatalf("topk: status %d", code)
	}
	q := c.PrepareQuery(s.Engine(), ted.MustParse("{a{b}{c}}"))
	want, _ := c.TopKAcross(s.Engine(), q, 4)
	if len(resp.Matches) != len(want) {
		t.Fatalf("topk: %d matches, want %d", len(resp.Matches), len(want))
	}
	for i, m := range want {
		got := resp.Matches[i]
		if got.Tree != int64(m.Tree) || got.Root != m.Root || got.Dist != m.Dist {
			t.Fatalf("topk: match %d = %+v, want %+v", i, got, m)
		}
	}
}

// TestTreeMutations drives the full CRUD surface over a WAL-attached
// corpus and proves the acknowledged mutations survive a reopen.
func TestTreeMutations(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "serve.tedc")
	c, err := corpus.Open(path, corpus.WithHistogramIndex())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s := server.New(c)
	ts := httptest.NewServer(s)
	defer ts.Close()

	var tr server.TreeResponse
	if code := call(t, "POST", ts.URL+"/v1/trees", server.TreeRequest{Tree: "{a{b}}"}, &tr); code != 201 {
		t.Fatalf("add: status %d", code)
	}
	id2 := tr
	if code := call(t, "POST", ts.URL+"/v1/trees", server.TreeRequest{Tree: "{a{c}}"}, &id2); code != 201 {
		t.Fatalf("add 2: status %d", code)
	}
	if code := call(t, "PUT", fmt.Sprintf("%s/v1/trees/%d", ts.URL, tr.ID),
		server.TreeRequest{Tree: "{z{w}}"}, nil); code != 200 {
		t.Fatalf("put: status %d", code)
	}
	var got server.TreeResponse
	if code := call(t, "GET", fmt.Sprintf("%s/v1/trees/%d", ts.URL, tr.ID), nil, &got); code != 200 {
		t.Fatalf("get: status %d", code)
	}
	if got.Tree != "{z{w}}" {
		t.Fatalf("get after put = %q, want {z{w}}", got.Tree)
	}
	if code := call(t, "DELETE", fmt.Sprintf("%s/v1/trees/%d", ts.URL, id2.ID), nil, nil); code != 204 {
		t.Fatalf("delete: status %d", code)
	}
	if code := call(t, "GET", fmt.Sprintf("%s/v1/trees/%d", ts.URL, id2.ID), nil, nil); code != 404 {
		t.Fatalf("get deleted: status %d", code)
	}
	if code := call(t, "DELETE", fmt.Sprintf("%s/v1/trees/%d", ts.URL, id2.ID), nil, nil); code != 404 {
		t.Fatalf("double delete: status %d", code)
	}

	// Shut the server's corpus (releasing the single-writer lock, as a
	// dead process's kernel would) without any Save or Checkpoint: every
	// acknowledged mutation must come back from the log alone.
	ts.Close()
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	before := map[int64]string{tr.ID: "{z{w}}"}
	reopened, err := corpus.Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	if reopened.Len() != len(before) {
		t.Fatalf("reopened corpus has %d trees, want %d", reopened.Len(), len(before))
	}
	for id, want := range before {
		tt, ok := reopened.Tree(corpus.ID(id))
		if !ok || tt.String() != want {
			t.Fatalf("tree %d = %v, want %s", id, tt, want)
		}
	}
}

func TestValidation(t *testing.T) {
	_, _, ts := newFixture(t, server.WithMaxNodes(10), server.WithMaxBodyBytes(256), server.WithMaxK(5))
	cases := []struct {
		name string
		url  string
		body string
		want int
	}{
		{"negative tau", "/v1/join", `{"tau": -1}`, 400},
		{"NaN tau", "/v1/distance-bounded", `{"f":{"tree":"{a}"},"g":{"tree":"{a}"},"tau":"x"}`, 400},
		{"bad mode", "/v1/join", `{"tau": 2, "mode": "quantum"}`, 400},
		{"k too big", "/v1/topk", `{"query":{"tree":"{a}"},"k":6}`, 400},
		{"k zero", "/v1/topk", `{"query":{"tree":"{a}"},"k":0}`, 400},
		{"bad tree", "/v1/distance", `{"f":{"tree":"{{{"},"g":{"tree":"{a}"}}`, 400},
		{"both id and tree", "/v1/distance", `{"f":{"id":0,"tree":"{a}"},"g":{"tree":"{a}"}}`, 400},
		{"missing ref", "/v1/distance", `{"g":{"tree":"{a}"}}`, 400},
		{"unknown id", "/v1/distance", `{"f":{"id":99},"g":{"tree":"{a}"}}`, 404},
		{"tree too big", "/v1/trees", `{"tree":"{a{b}{b}{b}{b}{b}{b}{b}{b}{b}{b}}"}`, 400},
		{"body too big", "/v1/trees", `{"tree":"` + strings.Repeat("x", 300) + `"}`, 413},
		{"garbage body", "/v1/join", `not json`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("post: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				raw, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.want, raw)
			}
			var e server.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error == "" {
				t.Fatalf("error response without an error message")
			}
		})
	}
}

// TestAdmissionControl fills the gate and verifies the bounded-wait 503
// contract, then releases and verifies recovery.
func TestAdmissionControl(t *testing.T) {
	_, s, ts := newFixture(t,
		server.WithMaxInFlight(2), server.WithQueueTimeout(50*time.Millisecond))
	if s.MaxInFlight() != 2 {
		t.Fatalf("max in flight = %d, want 2", s.MaxInFlight())
	}
	release := s.OccupySlots(2)
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/join", "application/json", strings.NewReader(`{"tau":2}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("full gate: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 without Retry-After")
	}
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Fatalf("refused after %v, before the queue timeout", waited)
	}
	release()
	resp, err = http.Post(ts.URL+"/v1/join", "application/json", strings.NewReader(`{"tau":2}`))
	if err != nil {
		t.Fatalf("post after release: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("after release: status %d, want 200", resp.StatusCode)
	}

	var st server.StatsResponse
	if code := call(t, "GET", ts.URL+"/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if st.Rejected < 1 || st.Admitted < 1 || st.MaxInFlight != 2 {
		t.Fatalf("stats %+v: expected ≥1 rejected, ≥1 admitted, cap 2", st)
	}
}

// TestDrain: after Drain, requests and health probes get 503 — the
// load-balancer signal — while the handler keeps answering them rather
// than hanging.
func TestDrain(t *testing.T) {
	_, s, ts := newFixture(t)
	if code := call(t, "GET", ts.URL+"/healthz", nil, nil); code != 200 {
		t.Fatalf("healthz before drain: %d", code)
	}
	s.Drain()
	if !s.Draining() {
		t.Fatalf("Draining() false after Drain")
	}
	if code := call(t, "GET", ts.URL+"/healthz", nil, nil); code != 503 {
		t.Fatalf("healthz during drain: %d, want 503", code)
	}
	resp, err := http.Post(ts.URL+"/v1/join", "application/json", strings.NewReader(`{"tau":2}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("join during drain: %d, want 503", resp.StatusCode)
	}
	// Stats stay up for observability during the drain.
	if code := call(t, "GET", ts.URL+"/v1/stats", nil, nil); code != 200 {
		t.Fatalf("stats during drain: %d", code)
	}
}

// TestServerJoinAfterMutations: the maintained index and the prepared
// cache stay coherent through the mutation endpoints — an indexed join
// after CRUD equals an enumerated one.
func TestServerJoinAfterMutations(t *testing.T) {
	c, s, ts := newFixture(t)
	var tr server.TreeResponse
	call(t, "POST", ts.URL+"/v1/trees", server.TreeRequest{Tree: "{a{b}{c{d}{e}}}"}, &tr)
	call(t, "PUT", fmt.Sprintf("%s/v1/trees/%d", ts.URL, tr.ID), server.TreeRequest{Tree: "{a{b}{c{d}}}"}, nil)
	call(t, "DELETE", ts.URL+"/v1/trees/1", nil, nil)

	var hist, enum server.JoinResponse
	call(t, "POST", ts.URL+"/v1/join", server.JoinRequest{Tau: 4, Mode: "histogram"}, &hist)
	call(t, "POST", ts.URL+"/v1/join", server.JoinRequest{Tau: 4, Mode: "enumerate"}, &enum)
	if !reflect.DeepEqual(hist.Matches, enum.Matches) {
		t.Fatalf("indexed join after mutations %v, enumerated %v", hist.Matches, enum.Matches)
	}
	want, _ := c.Join(s.Engine(), 4, batch.JoinOptions{Mode: batch.IndexEnumerate})
	if len(want) != len(enum.Matches) {
		t.Fatalf("server join %d matches, in-process %d", len(enum.Matches), len(want))
	}
}

// TestTauInfinityRejected: JSON has no Inf literal; the decoder must
// turn the encoding attempt into a 400, not a panic or a silent zero.
func TestTauStringRejected(t *testing.T) {
	_, _, ts := newFixture(t)
	resp, err := http.Post(ts.URL+"/v1/join", "application/json", strings.NewReader(`{"tau":"Infinity"}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("string tau: status %d, want 400", resp.StatusCode)
	}
}
