package server

// The wire types of the JSON API. They are exported so Go clients (and
// the tedbench serve experiment, and the CI smoke script's expectations)
// can marshal requests and unmarshal responses without restating the
// schema.

// TreeRef names a tree in a request: exactly one of ID (a stored tree)
// or Tree (an ad-hoc tree in bracket notation) must be set.
type TreeRef struct {
	ID   *int64 `json:"id,omitempty"`
	Tree string `json:"tree,omitempty"`
}

// DistanceRequest asks for the exact edit distance between two trees.
type DistanceRequest struct {
	F TreeRef `json:"f"`
	G TreeRef `json:"g"`
}

// DistanceResponse carries the exact distance.
type DistanceResponse struct {
	Dist float64 `json:"dist"`
}

// DistanceBoundedRequest asks the threshold question "is the distance
// at most tau?".
type DistanceBoundedRequest struct {
	F   TreeRef `json:"f"`
	G   TreeRef `json:"g"`
	Tau float64 `json:"tau"`
}

// DistanceBoundedResponse: Within reports whether the distance is ≤ tau;
// when true, Dist is the exact distance, otherwise Dist is a lower
// bound no smaller than tau.
type DistanceBoundedResponse struct {
	Dist   float64 `json:"dist"`
	Within bool    `json:"within"`
}

// JoinRequest asks for the similarity self-join of the stored corpus:
// all unordered pairs of stored trees at distance below Tau. Mode picks
// the candidate generator ("auto", "enumerate", "histogram", "pqgram";
// default auto), Q the pq-gram base length, Limit caps the returned
// matches (the server's own cap applies on top; 0 means server
// default).
type JoinRequest struct {
	Tau   float64 `json:"tau"`
	Mode  string  `json:"mode,omitempty"`
	Q     int     `json:"q,omitempty"`
	Limit int     `json:"limit,omitempty"`
}

// JoinMatch is one join result pair, by stored tree IDs (I < J).
type JoinMatch struct {
	I    int64   `json:"i"`
	J    int64   `json:"j"`
	Dist float64 `json:"dist"`
}

// JoinStats is the server-side accounting of one join call.
type JoinStats struct {
	Candidates    int   `json:"candidates"`
	LowerPruned   int   `json:"lower_pruned"`
	UpperAccepted int   `json:"upper_accepted"`
	ExactComputed int   `json:"exact_computed"`
	Subproblems   int64 `json:"subproblems"`
	// DP cells the exact stage skipped under the threshold cutoff, the
	// subset of those skipped as whole ranges by the structural band,
	// and keyroot subproblem DPs the band refused outright.
	PrunedSubproblems int64 `json:"pruned_subproblems"`
	BandSkippedCells  int64 `json:"band_skipped_cells"`
	PrunedKeyroots    int64 `json:"pruned_keyroots"`
	// DP rows materialized band-compressed and total row cells
	// materialized (×8 = bytes of row storage streamed) by the exact
	// stage — the sparse-row ablation's serving-side counters.
	CompressedRows int64  `json:"compressed_rows"`
	RowCells       int64  `json:"row_cells"`
	Mode           string `json:"mode"`
	ElapsedMS      int64  `json:"elapsed_ms"`
}

// JoinResponse: Count is the full match count; Matches holds at most
// the requested/allowed limit and Truncated reports whether matches
// were dropped to honor it.
type JoinResponse struct {
	Matches   []JoinMatch `json:"matches"`
	Count     int         `json:"count"`
	Truncated bool        `json:"truncated,omitempty"`
	Stats     JoinStats   `json:"stats"`
}

// TopKRequest asks for the K subtrees of the stored corpus closest to
// Query.
type TopKRequest struct {
	Query TreeRef `json:"query"`
	K     int     `json:"k"`
}

// TopKMatch is one top-k result: the subtree rooted at postorder id
// Root of stored tree Tree, at edit distance Dist from the query.
type TopKMatch struct {
	Tree int64   `json:"tree"`
	Root int     `json:"root"`
	Dist float64 `json:"dist"`
}

// TopKStats is the server-side accounting of one top-k call: the DP
// cost of the scan and the cells/keyroots its shrinking cutoff pruned.
type TopKStats struct {
	Subproblems       int64 `json:"subproblems"`
	PrunedSubproblems int64 `json:"pruned_subproblems"`
	BandSkippedCells  int64 `json:"band_skipped_cells"`
	PrunedKeyroots    int64 `json:"pruned_keyroots"`
	CompressedRows    int64 `json:"compressed_rows"`
	RowCells          int64 `json:"row_cells"`
	ElapsedMS         int64 `json:"elapsed_ms"`
}

// TopKResponse carries the matches sorted by distance (ties toward
// smaller (tree, root)) and the scan's pruning stats.
type TopKResponse struct {
	Matches []TopKMatch `json:"matches"`
	Stats   TopKStats   `json:"stats"`
}

// JoinStreamRecord is one NDJSON line of POST /v1/join/stream: exactly
// one of Match (a result, flushed as found, in completion order) or
// Done (the terminal record) is set. A stream without a Done line was
// cut short — by a client disconnect or a server failure mid-stream —
// and must not be trusted as complete.
type JoinStreamRecord struct {
	Match *JoinMatch      `json:"match,omitempty"`
	Done  *JoinStreamDone `json:"done,omitempty"`
}

// JoinStreamDone terminates a join stream: the full match count (also
// counting matches beyond the limit, which are dropped, flagged by
// Truncated), and the same stats block the buffered endpoint returns.
type JoinStreamDone struct {
	Count     int       `json:"count"`
	Truncated bool      `json:"truncated,omitempty"`
	Stats     JoinStats `json:"stats"`
}

// TopKStreamRecord is one NDJSON line of POST /v1/topk/stream: exactly
// one of Match or Done is set. Matches arrive in final result order
// (top-k answers are only sound once the whole corpus is scanned, so
// the lines are written after the scan; the framing still delivers
// them one by one and a disconnect mid-scan cancels the engine work).
type TopKStreamRecord struct {
	Match *TopKMatch      `json:"match,omitempty"`
	Done  *TopKStreamDone `json:"done,omitempty"`
}

// TopKStreamDone terminates a top-k stream.
type TopKStreamDone struct {
	Stats TopKStats `json:"stats"`
}

// TreeRequest carries a tree for POST/PUT /v1/trees.
type TreeRequest struct {
	Tree string `json:"tree"`
}

// TreeResponse names a stored tree; GET additionally returns its
// bracket serialization.
type TreeResponse struct {
	ID   int64  `json:"id"`
	Tree string `json:"tree,omitempty"`
}

// StatsResponse is the GET /v1/stats payload. Labels is the size of the
// shared label table: it grows with the union of distinct labels ever
// served (stored and ad-hoc alike — see batch.Engine.PrepareQuery), so
// a steadily climbing value under high-cardinality query labels is the
// signal to cap or normalize request labels upstream.
type StatsResponse struct {
	Trees       int `json:"trees"`
	Labels      int `json:"labels"`
	Workers     int `json:"workers"`
	InFlight    int `json:"in_flight"`
	MaxInFlight int `json:"max_in_flight"`
	// HeavySlots and TenantQuota describe the admission gate's shape:
	// joins/top-k (the heavy class) may hold at most HeavySlots of the
	// MaxInFlight slots, and any one tenant at most TenantQuota.
	HeavySlots  int   `json:"heavy_slots"`
	TenantQuota int   `json:"tenant_quota"`
	Admitted    int64 `json:"admitted"`
	Rejected    int64 `json:"rejected"`
	// Shed counts admission rejections due to capacity (queue-timeout
	// 503s) alone — a subset of Rejected, which also counts drain-mode
	// refusals. A load run cross-checks its observed 503s against this.
	Shed int64 `json:"shed"`
	// Abandoned counts requests whose client disconnected while queued
	// for admission: they consumed queue time but got no response and no
	// slot, and without this counter they'd be invisible — admitted +
	// shed would undercount arrivals and a load harness could never
	// reconcile exactly.
	Abandoned int64 `json:"abandoned"`
	Draining  bool  `json:"draining"`
	// Per-tenant admission outcomes, keyed by X-Tenant (missing header →
	// "default"; beyond 256 distinct tenants, new names aggregate under
	// "~other"). Absent until the first admission decision.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
	// Cumulative DP pruning over every served join's exact stage since
	// boot: cells skipped under the threshold cutoff, the subset skipped
	// as whole ranges by the structural band, and keyroot subproblem DPs
	// the band refused outright. Monitoring the band share over time is
	// the serving-side view of the `tedbench -exp band` ablation.
	PrunedSubproblems int64 `json:"pruned_subproblems"`
	BandSkippedCells  int64 `json:"band_skipped_cells"`
	PrunedKeyroots    int64 `json:"pruned_keyroots"`
	// Cumulative band-compressed rows and total row cells materialized
	// (×8 = bytes of row storage streamed) — the serving-side view of
	// the `tedbench -exp sparse` ablation.
	CompressedRows int64 `json:"compressed_rows"`
	RowCells       int64 `json:"row_cells"`
	// Replication position of this server's own write-ahead log (absent
	// for corpora without one): the log generation and how many records
	// it holds. Followers tail GET /v1/wal from such a position.
	WALGen string `json:"wal_gen,omitempty"`
	WALSeq int    `json:"wal_seq,omitempty"`
	// ReadOnly marks a replica: mutations get 403.
	ReadOnly bool `json:"read_only,omitempty"`
	// Replication is the follower-side lag gauge, present only on
	// replicas (servers started with WithReplica).
	Replication *ReplicationStats `json:"replication,omitempty"`
	// ClusterWorkers is the number of distributed join workers this
	// server proxies heavy queries to (absent when serving locally).
	ClusterWorkers int `json:"cluster_workers,omitempty"`
}

// ReplicationStats is a replica's view of its own convergence: the
// primary it follows, the log position it has applied through, the
// primary's last announced position, and the lag between them.
// StalenessMS is how long ago the replica last knew it was fully caught
// up — the quantity the max-staleness read guard bounds.
type ReplicationStats struct {
	Primary         string `json:"primary"`
	Gen             string `json:"gen"`
	AppliedSeq      int    `json:"applied_seq"`
	PrimarySeq      int    `json:"primary_seq"`
	Lag             int    `json:"lag"`
	Records         int64  `json:"records"`
	CheckpointShips int64  `json:"checkpoint_ships"`
	StalenessMS     int64  `json:"staleness_ms"`
	LastErr         string `json:"last_err,omitempty"`
}

// TenantStats is one tenant's admission outcomes in /v1/stats.
type TenantStats struct {
	Admitted  int64 `json:"admitted"`
	Shed      int64 `json:"shed"`
	Abandoned int64 `json:"abandoned"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}
