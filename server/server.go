package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	ted "repro"
	"repro/batch"
	"repro/corpus"
)

// Server serves a corpus over HTTP. Construct with New; the zero value
// is not usable. A Server is an http.Handler: mount it on any
// http.Server (cmd/tedd does exactly that).
type Server struct {
	c *corpus.Corpus
	e *batch.Engine

	mux *http.ServeMux

	// Admission gate (see admission.go): per-tenant quotas and two
	// priority classes over one bounded slot pool; arrivals that do not
	// fit wait up to queueTimeout for a fitting slot.
	gate         *gate
	maxInFlight  int
	heavySlots   int
	tenantQuota  int
	queueTimeout time.Duration
	draining     atomic.Bool
	admitted     atomic.Int64
	rejected     atomic.Int64
	shed         atomic.Int64
	abandoned    atomic.Int64
	byTenant     tenants
	admitHook    func()

	// Cumulative DP pruning counters over served joins (see
	// StatsResponse): threshold-pruned cells, band-skipped cells, and
	// keyroot DPs refused by the band.
	prunedSubs  atomic.Int64
	bandCells   atomic.Int64
	prunedKroot atomic.Int64
	compRows    atomic.Int64
	rowCells    atomic.Int64

	maxBody    int64
	maxNodes   int
	maxK       int
	maxMatches int
	maxLabels  int
	workers    int

	// Replica mode (see repl.go): mutations 403, reads optionally
	// guarded by the staleness bound, /v1/stats grows the replication
	// block.
	readOnly  bool
	maxStale  time.Duration
	staleness func() time.Duration
	replStats func() ReplicationStats

	// Distributed mode (see cluster.go): joins and top-k fan out to
	// these worker addresses instead of evaluating locally.
	clusterAddrs []string
	coord        coordinator
}

// Option configures New.
type Option func(*Server)

// WithWorkers sets the engine worker-pool size (default: all cores, as
// batch.New).
func WithWorkers(n int) Option {
	return func(s *Server) { s.workers = n }
}

// WithMaxInFlight caps concurrently served requests (default 2× the
// worker count). Arrivals beyond the cap queue briefly, then get 503.
func WithMaxInFlight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxInFlight = n
		}
	}
}

// WithHeavySlots caps how many in-flight slots heavy requests — joins,
// top-k and their streaming variants — may hold at once (default: half
// the in-flight cap, at least 1). The remainder is reachable only by
// point lookups, so one tenant's heavy joins can never occupy every
// slot. Values are clamped to [1, max-in-flight].
func WithHeavySlots(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.heavySlots = n
		}
	}
}

// WithTenantQuota caps how many in-flight slots one tenant (the
// X-Tenant request header; missing → "default") may hold at once
// (default: no per-tenant cap beyond the pool itself). Values are
// clamped to [1, max-in-flight].
func WithTenantQuota(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.tenantQuota = n
		}
	}
}

// WithQueueTimeout bounds how long an arrival may wait for an admission
// slot before being refused with 503 (default 2s; 0 refuses
// immediately when full).
func WithQueueTimeout(d time.Duration) Option {
	return func(s *Server) { s.queueTimeout = d }
}

// WithMaxBodyBytes caps request body sizes (default 1 MiB). Oversized
// bodies get 413.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) { s.maxBody = n }
}

// WithMaxNodes caps the node count of ad-hoc request trees (default
// 4096). The binding constraint is DP memory, not CPU: one distance
// pair allocates O(n·m) table cells (~9 bytes each), so two trees at a
// cap of c cost up to 9c² bytes on one worker — ~150 MB at the default,
// ~38 GB at 1<<16. Raise it only with the arithmetic in hand.
func WithMaxNodes(n int) Option {
	return func(s *Server) { s.maxNodes = n }
}

// WithMaxLabels bounds the shared label table (default 1<<20 distinct
// labels). Ad-hoc query labels are interned permanently (see
// batch.Engine.PrepareQuery), so without a bound a client sending fresh
// random labels grows the process forever; at the cap, requests
// carrying ad-hoc trees are refused with 503 (stored-id requests keep
// working) instead of the daemon eventually dying of memory.
func WithMaxLabels(n int) Option {
	return func(s *Server) { s.maxLabels = n }
}

// WithAdmitHook installs f to run on every admitted request, after the
// admission slot is acquired and before the handler. A test hook: load
// and admission tests inject a delay here to hold slots deterministically
// long enough to force queueing and shedding. Nil (the default) costs
// nothing.
func WithAdmitHook(f func()) Option {
	return func(s *Server) { s.admitHook = f }
}

// WithMaxK caps top-k request sizes (default 100).
func WithMaxK(k int) Option {
	return func(s *Server) { s.maxK = k }
}

// WithMaxMatches caps how many join matches one response may carry
// (default 10000); requests may ask for less via Limit.
func WithMaxMatches(n int) Option {
	return func(s *Server) { s.maxMatches = n }
}

// WithReplica puts the server in read replica mode: mutation endpoints
// refuse with 403, stats reports the replication telemetry from stats
// and staleness (both typically backed by a cluster.Follower), and —
// when maxStaleness is positive — read endpoints refuse with 503
// whenever staleness() exceeds it, so a partitioned replica degrades
// loudly instead of serving arbitrarily old data.
func WithReplica(stats func() ReplicationStats, staleness func() time.Duration, maxStaleness time.Duration) Option {
	return func(s *Server) {
		s.readOnly = true
		s.replStats = stats
		s.staleness = staleness
		s.maxStale = maxStaleness
	}
}

// WithClusterWorkers makes the server a serving coordinator: joins and
// top-k queries are partitioned over the given worker addresses
// (cluster.Worker processes holding the same snapshot) and merged,
// instead of evaluating on the local corpus. Point lookups and
// mutations still serve locally. Match sets are identical to local
// evaluation as long as the workers' snapshot matches the local corpus
// — keeping them in sync is the operator's contract (see
// scripts/cluster_smoke.sh).
func WithClusterWorkers(addrs []string) Option {
	return func(s *Server) { s.clusterAddrs = append([]string(nil), addrs...) }
}

// New builds a server over c. The engine is corpus-attached
// (corpus.Corpus.Engine), so every stored tree hydrates from its
// persisted artifacts; call Warm before accepting traffic to hydrate
// them all up front.
func New(c *corpus.Corpus, opts ...Option) *Server {
	s := &Server{
		c:            c,
		queueTimeout: 2 * time.Second,
		maxBody:      1 << 20,
		maxNodes:     4096,
		maxK:         100,
		maxMatches:   10000,
		maxLabels:    1 << 20,
	}
	for _, o := range opts {
		o(s)
	}
	var eopts []batch.Option
	if s.workers > 0 {
		eopts = append(eopts, batch.WithWorkers(s.workers))
	}
	s.e = c.Engine(eopts...)
	if s.maxInFlight <= 0 {
		s.maxInFlight = 2 * s.e.Workers()
	}
	if s.heavySlots <= 0 {
		s.heavySlots = (s.maxInFlight + 1) / 2
	}
	s.gate = newGate(s.maxInFlight, s.heavySlots, s.tenantQuota)
	s.maxInFlight = s.gate.capTotal
	s.heavySlots = s.gate.heavyCap
	s.tenantQuota = s.gate.tenantCap
	if len(s.clusterAddrs) > 0 && s.coord == nil {
		s.coord = newCoordinator(s.clusterAddrs)
	}
	s.routes()
	return s
}

// Engine returns the server's corpus-attached engine (for warm-up,
// tests, and in-process cross-checks).
func (s *Server) Engine() *batch.Engine { return s.e }

// Warm hydrates every stored tree for the server's engine, so the first
// request pays only for distance computations. Call once at startup,
// before accepting traffic.
func (s *Server) Warm() { s.c.Warm(s.e) }

// Drain puts the server into drain mode: every subsequent /v1 request
// and /healthz probe gets 503, while requests already admitted run to
// completion (pair with http.Server.Shutdown, which waits for them).
// Draining is one-way; restart the process to serve again.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// MaxInFlight reports the admission gate's capacity.
func (s *Server) MaxInFlight() int { return s.maxInFlight }

// HeavySlots reports how many slots heavy requests (join/topk and their
// streaming variants) may hold at once.
func (s *Server) HeavySlots() int { return s.heavySlots }

// TenantQuota reports how many slots one tenant may hold at once.
func (s *Server) TenantQuota() int { return s.tenantQuota }

// The two admission priority classes: point lookups stay admissible
// even when every heavy slot is occupied by joins.
const (
	classPoint = false
	classHeavy = true
)

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/wal", s.handleWAL)
	s.mux.HandleFunc("GET /v1/checkpoint", s.handleCheckpoint)
	s.mux.Handle("POST /v1/distance", s.admit(classPoint, s.fresh(s.handleDistance)))
	s.mux.Handle("POST /v1/distance-bounded", s.admit(classPoint, s.fresh(s.handleDistanceBounded)))
	s.mux.Handle("POST /v1/join", s.admit(classHeavy, s.fresh(s.handleJoin)))
	s.mux.Handle("POST /v1/join/stream", s.admit(classHeavy, s.fresh(s.handleJoinStream)))
	s.mux.Handle("POST /v1/topk", s.admit(classHeavy, s.fresh(s.handleTopK)))
	s.mux.Handle("POST /v1/topk/stream", s.admit(classHeavy, s.fresh(s.handleTopKStream)))
	s.mux.Handle("POST /v1/trees", s.admit(classPoint, s.mutating(s.handleAddTree)))
	s.mux.Handle("GET /v1/trees/{id}", s.admit(classPoint, s.fresh(s.handleGetTree)))
	s.mux.Handle("PUT /v1/trees/{id}", s.admit(classPoint, s.mutating(s.handlePutTree)))
	s.mux.Handle("DELETE /v1/trees/{id}", s.admit(classPoint, s.mutating(s.handleDeleteTree)))
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// admit is the admission gate: a fitting slot now, a fitting slot
// within queueTimeout, or a 503 with Retry-After. heavy selects the
// priority class (see the gate doc in admission.go).
func (s *Server) admit(heavy bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.reject(w, "draining")
			return
		}
		// Buffer the body before queueing, for two reasons. A slot is
		// never held while a slow client trickles bytes in — the hosting
		// http.Server's read deadlines (cmd/tedd sets them) bound the
		// pre-admission read instead. And an HTTP/1 server only notices a
		// client disconnect once the request body is consumed: without
		// this, a client hanging up while queued would be undetectable —
		// the waiter would burn its whole queue timeout for nobody and be
		// miscounted as shed instead of abandoned.
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Sprintf("read request body: %v", err))
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		tenant := tenantOf(r)
		switch s.gate.acquire(r.Context(), tenant, heavy, s.queueTimeout) {
		case gateTimedOut:
			// A capacity shed, distinct from drain rejections: the load
			// harness reads this counter to cross-check that every 503
			// it observed was accounted for server-side.
			s.shed.Add(1)
			s.byTenant.get(tenant).shed.Add(1)
			s.reject(w, "over capacity")
			return
		case gateAbandoned:
			// The client disconnected while queued: no response goes
			// anywhere, but the outcome is still counted — admitted +
			// rejected + abandoned must cover every arrival, or a load
			// harness's exact reconciliation breaks.
			s.abandoned.Add(1)
			s.byTenant.get(tenant).abandoned.Add(1)
			return
		}
		defer s.gate.release(tenant, heavy)
		if s.draining.Load() {
			// Drained while queued: the point of draining is that no new
			// engine work starts.
			s.reject(w, "draining")
			return
		}
		s.admitted.Add(1)
		s.byTenant.get(tenant).admitted.Add(1)
		if s.admitHook != nil {
			s.admitHook()
		}
		h(w, r)
	})
}

func (s *Server) reject(w http.ResponseWriter, why string) {
	s.rejected.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, why)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats returns the counters /v1/stats serves, without the HTTP round
// trip — the hook in-process harnesses and tests use to reconcile
// client-observed 503s against the server's own shed accounting.
func (s *Server) Stats() StatsResponse {
	st := StatsResponse{
		Trees:       s.c.Len(),
		Labels:      s.e.Interner().Len(),
		Workers:     s.e.Workers(),
		InFlight:    s.gate.inFlight(),
		MaxInFlight: s.maxInFlight,
		HeavySlots:  s.heavySlots,
		TenantQuota: s.tenantQuota,
		Admitted:    s.admitted.Load(),
		Rejected:    s.rejected.Load(),
		Shed:        s.shed.Load(),
		Abandoned:   s.abandoned.Load(),
		Tenants:     s.byTenant.snapshot(),
		Draining:    s.draining.Load(),

		PrunedSubproblems: s.prunedSubs.Load(),
		BandSkippedCells:  s.bandCells.Load(),
		PrunedKeyroots:    s.prunedKroot.Load(),
		CompressedRows:    s.compRows.Load(),
		RowCells:          s.rowCells.Load(),

		ReadOnly:       s.readOnly,
		ClusterWorkers: len(s.clusterAddrs),
	}
	if s.c.Replicable() {
		pos := s.c.ReplState()
		st.WALGen, st.WALSeq = pos.Gen, pos.Seq
	}
	if s.replStats != nil {
		rs := s.replStats()
		st.Replication = &rs
	}
	return st
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	var req DistanceRequest
	if !s.decode(w, r, &req) {
		return
	}
	f, ok := s.resolve(w, req.F, "f")
	if !ok {
		return
	}
	g, ok := s.resolve(w, req.G, "g")
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, DistanceResponse{Dist: s.e.Distance(f, g)})
}

func (s *Server) handleDistanceBounded(w http.ResponseWriter, r *http.Request) {
	var req DistanceBoundedRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !validTau(req.Tau) {
		writeError(w, http.StatusBadRequest, "tau must be a non-negative number")
		return
	}
	f, ok := s.resolve(w, req.F, "f")
	if !ok {
		return
	}
	g, ok := s.resolve(w, req.G, "g")
	if !ok {
		return
	}
	d, within := s.e.DistanceBounded(f, g, req.Tau)
	writeJSON(w, http.StatusOK, DistanceBoundedResponse{Dist: d, Within: within})
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !validTau(req.Tau) {
		writeError(w, http.StatusBadRequest, "tau must be a non-negative number")
		return
	}
	mode, ok := parseMode(req.Mode)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q (auto | enumerate | histogram | pqgram)", req.Mode))
		return
	}
	if req.Q < 0 || req.Q > 16 {
		writeError(w, http.StatusBadRequest, "q must be in [0, 16]")
		return
	}
	limit := s.maxMatches
	if req.Limit > 0 && req.Limit < limit {
		limit = req.Limit
	}
	var (
		ms []corpus.Match
		st batch.JoinStats
	)
	if s.coord != nil {
		var err error
		if ms, st, err = s.coord.Join(req.Tau, batch.JoinOptions{Mode: mode, Q: req.Q}); err != nil {
			writeError(w, http.StatusBadGateway, "cluster join: "+err.Error())
			return
		}
	} else {
		ms, st = s.c.Join(s.e, req.Tau, batch.JoinOptions{Mode: mode, Q: req.Q})
	}
	s.prunedSubs.Add(st.PrunedSubproblems)
	s.bandCells.Add(st.BandSkippedCells)
	s.prunedKroot.Add(st.PrunedKeyroots)
	s.compRows.Add(st.CompressedRows)
	s.rowCells.Add(st.RowCells)
	resp := JoinResponse{Count: len(ms), Stats: joinStats(st)}
	if len(ms) > limit {
		ms = ms[:limit]
		resp.Truncated = true
	}
	resp.Matches = make([]JoinMatch, len(ms))
	for i, m := range ms {
		resp.Matches[i] = JoinMatch{I: int64(m.I), J: int64(m.J), Dist: m.Dist}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req TopKRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K < 1 || req.K > s.maxK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1, %d]", s.maxK))
		return
	}
	q, ok := s.resolve(w, req.Query, "query")
	if !ok {
		return
	}
	start := time.Now()
	var (
		ms []corpus.CrossMatch
		st batch.Stats
	)
	if s.coord != nil {
		var err error
		if ms, st, err = s.coord.TopK(q.Tree(), req.K); err != nil {
			writeError(w, http.StatusBadGateway, "cluster topk: "+err.Error())
			return
		}
	} else {
		ms, st = s.c.TopKAcross(s.e, q, req.K)
	}
	// The scan's pruning feeds the same cumulative counters joins feed;
	// before this, top-k work was invisible in /v1/stats.
	s.prunedSubs.Add(st.PrunedSubproblems)
	s.bandCells.Add(st.BandSkippedCells)
	s.prunedKroot.Add(st.PrunedKeyroots)
	s.compRows.Add(st.CompressedRows)
	s.rowCells.Add(st.RowCells)
	resp := TopKResponse{Matches: make([]TopKMatch, len(ms)), Stats: topKStats(st, time.Since(start))}
	for i, m := range ms {
		resp.Matches[i] = TopKMatch{Tree: int64(m.Tree), Root: m.Root, Dist: m.Dist}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAddTree(w http.ResponseWriter, r *http.Request) {
	var req TreeRequest
	if !s.decode(w, r, &req) {
		return
	}
	t, ok := s.parseTree(w, req.Tree, "tree")
	if !ok {
		return
	}
	id := s.c.Add(t)
	if !s.durable(w) {
		return
	}
	writeJSON(w, http.StatusCreated, TreeResponse{ID: int64(id)})
}

func (s *Server) handleGetTree(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	t, ok := s.c.Tree(corpus.ID(id))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no tree %d", id))
		return
	}
	writeJSON(w, http.StatusOK, TreeResponse{ID: id, Tree: t.String()})
}

func (s *Server) handlePutTree(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	var req TreeRequest
	if !s.decode(w, r, &req) {
		return
	}
	t, ok := s.parseTree(w, req.Tree, "tree")
	if !ok {
		return
	}
	if !s.c.Replace(corpus.ID(id), t) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no tree %d", id))
		return
	}
	if !s.durable(w) {
		return
	}
	writeJSON(w, http.StatusOK, TreeResponse{ID: id})
}

func (s *Server) handleDeleteTree(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if !s.c.Delete(corpus.ID(id)) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no tree %d", id))
		return
	}
	if !s.durable(w) {
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// durable syncs the write-ahead log before a mutation is acknowledged;
// a logging failure is a 500 (the mutation is applied in memory but its
// durability cannot be promised — the operator should treat the store
// as read-only and investigate).
func (s *Server) durable(w http.ResponseWriter) bool {
	if err := s.c.Sync(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return false
	}
	return true
}

// resolve turns a TreeRef into a PreparedTree: stored trees hydrate
// through the corpus cache, ad-hoc trees prepare request-scoped.
func (s *Server) resolve(w http.ResponseWriter, ref TreeRef, field string) (*batch.PreparedTree, bool) {
	switch {
	case ref.ID != nil && ref.Tree != "":
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%s: give id or tree, not both", field))
		return nil, false
	case ref.ID != nil:
		p, ok := s.c.Prepared(s.e, corpus.ID(*ref.ID))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("%s: no tree %d", field, *ref.ID))
			return nil, false
		}
		return p, true
	case ref.Tree != "":
		t, ok := s.parseTree(w, ref.Tree, field)
		if !ok {
			return nil, false
		}
		return s.c.PrepareQuery(s.e, t), true
	}
	writeError(w, http.StatusBadRequest, fmt.Sprintf("%s: missing tree reference", field))
	return nil, false
}

func (s *Server) parseTree(w http.ResponseWriter, src, field string) (*ted.Tree, bool) {
	// The label-table circuit breaker: ad-hoc labels intern permanently,
	// so once the shared table reaches the cap, requests that could grow
	// it are refused — a bounded, observable failure (watch "labels" in
	// /v1/stats) instead of unbounded memory growth.
	if s.e.Interner().Len() >= s.maxLabels {
		writeError(w, http.StatusServiceUnavailable, fmt.Sprintf(
			"label table at capacity (%d distinct labels); ad-hoc trees refused — query by stored id, or restart with a higher label cap", s.maxLabels))
		return nil, false
	}
	t, err := ted.Parse(strings.TrimSpace(src))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%s: %v", field, err))
		return nil, false
	}
	if t.Len() > s.maxNodes {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%s: %d nodes exceeds the %d-node limit", field, t.Len(), s.maxNodes))
		return nil, false
	}
	return t, true
}

// decode reads one JSON body, honoring the body size cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func pathID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil || id < 0 {
		writeError(w, http.StatusBadRequest, "tree id must be a non-negative integer")
		return 0, false
	}
	return id, true
}

// validTau admits finite non-negative cutoffs and +Inf (JSON cannot
// carry Inf, but in-process callers can).
func validTau(tau float64) bool {
	return !math.IsNaN(tau) && tau >= 0
}

func parseMode(s string) (batch.IndexMode, bool) {
	switch strings.ToLower(s) {
	case "", "auto":
		return batch.IndexAuto, true
	case "enumerate", "enum":
		return batch.IndexEnumerate, true
	case "histogram", "hist":
		return batch.IndexHistogram, true
	case "pqgram", "pq":
		return batch.IndexPQGram, true
	}
	return 0, false
}

func joinStats(st batch.JoinStats) JoinStats {
	return JoinStats{
		Candidates:        st.Comparisons,
		LowerPruned:       st.LowerPruned,
		UpperAccepted:     st.UpperAccepted,
		ExactComputed:     st.ExactComputed,
		Subproblems:       st.Subproblems,
		PrunedSubproblems: st.PrunedSubproblems,
		BandSkippedCells:  st.BandSkippedCells,
		PrunedKeyroots:    st.PrunedKeyroots,
		CompressedRows:    st.CompressedRows,
		RowCells:          st.RowCells,
		Mode:              st.Mode.String(),
		ElapsedMS:         st.Elapsed.Milliseconds(),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}
