package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	ted "repro"
	"repro/corpus"
	"repro/server"
)

func replStats() server.ReplicationStats {
	return server.ReplicationStats{Primary: "http://primary:8420", Gen: "aabbccdd00112233", AppliedSeq: 7, PrimarySeq: 7}
}

// TestReplicaRefusesWrites: a server in replica mode answers reads and
// refuses every mutation with 403 — writes flow through the primary's
// log, never sideways into a follower.
func TestReplicaRefusesWrites(t *testing.T) {
	c := corpus.New()
	for _, s := range fixtureTrees {
		tr, err := ted.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		c.Add(tr)
	}
	srv := server.New(c, server.WithReplica(replStats, nil, 0))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/trees", "application/json", strings.NewReader(`{"tree":"{a{b}}"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("POST /v1/trees on a replica = %d, want 403", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/trees/0", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("DELETE /v1/trees/0 on a replica = %d, want 403", resp.StatusCode)
	}

	// Reads still work, and /v1/stats carries the replica telemetry.
	resp, err = http.Post(ts.URL+"/v1/distance", "application/json",
		strings.NewReader(`{"f":{"id":0},"g":{"id":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read on an unbounded replica = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st server.StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !st.ReadOnly || st.Replication == nil || st.Replication.Primary != "http://primary:8420" {
		t.Fatalf("replica stats lack telemetry: %+v", st)
	}
}

// TestReplicaStalenessGuard: with a max-staleness bound, a replica that
// cannot prove it is caught up refuses reads with 503 + Retry-After
// instead of silently serving old data.
func TestReplicaStalenessGuard(t *testing.T) {
	c := corpus.New()
	tr, err := ted.Parse("{a{b}}")
	if err != nil {
		t.Fatal(err)
	}
	c.Add(tr)

	stale := time.Hour
	srv := server.New(c, server.WithReplica(replStats, func() time.Duration { return stale }, time.Second))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func() *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/distance", "application/json",
			strings.NewReader(`{"f":{"id":0},"g":{"id":0}}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := get(); resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("stale replica read = %d (Retry-After %q), want 503 with Retry-After", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	stale = 0 // caught up again: reads resume
	if resp := get(); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh replica read = %d, want 200", resp.StatusCode)
	}
}

// TestWALEndpoint pins the primary side of the replication wire: the
// stream carries the log records in on-disk framing plus a terminal
// progress frame, headers announce the position, a truncated-away (or
// never-held) position gets 409, and /v1/checkpoint returns a loadable
// snapshot stamped with its cut position.
func TestWALEndpoint(t *testing.T) {
	dir := t.TempDir()
	c, err := corpus.Open(filepath.Join(dir, "p.tedc"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, s := range fixtureTrees[:3] {
		tr, err := ted.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		c.Add(tr)
	}
	pos := c.ReplState()

	ts := httptest.NewServer(server.New(c))
	defer ts.Close()

	// Unknown generation (a fresh follower, or one truncated away) → 409.
	for _, gen := range []string{"", "feedbeef00000000"} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/wal?gen=%s&from=0", ts.URL, gen))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("gen %q: status %d, want 409", gen, resp.StatusCode)
		}
	}

	// A live position streams the records.
	resp, err := http.Get(fmt.Sprintf("%s/v1/wal?gen=%s&from=0&wait=0s", ts.URL, pos.Gen))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live position: status %d, want 200", resp.StatusCode)
	}
	if g := resp.Header.Get("X-Ted-Wal-Gen"); g != pos.Gen {
		t.Fatalf("X-Ted-Wal-Gen = %q, want %q", g, pos.Gen)
	}
	br := bufio.NewReader(resp.Body)
	records, lastProgress := 0, -1
	for {
		body, err := corpus.ReadWALFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if seq, ok := corpus.DecodeProgress(body); ok {
			lastProgress = seq
		} else {
			records++
		}
	}
	if records != 3 || lastProgress != 3 {
		t.Fatalf("stream carried %d records, final progress %d; want 3 and 3", records, lastProgress)
	}

	// The checkpoint endpoint ships a loadable snapshot at the same cut.
	resp, err = http.Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Ted-Wal-Gen") != pos.Gen || resp.Header.Get("X-Ted-Wal-Seq") != "3" {
		t.Fatalf("checkpoint: status %d, gen %q, seq %q", resp.StatusCode, resp.Header.Get("X-Ted-Wal-Gen"), resp.Header.Get("X-Ted-Wal-Seq"))
	}
	sc, err := corpus.Load(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 3 {
		t.Fatalf("shipped snapshot holds %d trees, want 3", sc.Len())
	}

	// A corpus without a log cannot serve either endpoint.
	ts2 := httptest.NewServer(server.New(corpus.New()))
	defer ts2.Close()
	for _, ep := range []string{"/v1/wal?gen=x&from=0", "/v1/checkpoint"} {
		resp, err := http.Get(ts2.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s without a WAL: status %d, want 503", ep, resp.StatusCode)
		}
	}
}
