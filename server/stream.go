package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/batch"
	"repro/corpus"
)

// The streaming endpoints. POST /v1/join and /v1/topk buffer the whole
// result before the first response byte, so a join whose matches take
// seconds to accumulate gives the client nothing to work with until the
// last pair resolves — and a client that stops caring (timeout, user
// cancel) leaves the engine grinding to completion anyway. The /stream
// variants fix both ends: each result is one NDJSON line, flushed as it
// is found, and the request context is threaded down through
// corpus.JoinStream into the worker pool, so a disconnected client
// stops the engine at the next pair boundary instead of wasting the
// remaining work.
//
// Framing contract (see JoinStreamRecord / TopKStreamRecord): every
// line is a record carrying either a match or the terminal done record
// with the full stats block. The done record is written only after a
// complete run — a stream that ends without one was cut short and must
// not be treated as a complete result set.

// handleJoinStream is POST /v1/join/stream: handleJoin's match set (the
// streamed multiset is bit-identical at the same tau), delivered one
// NDJSON line per match in completion order.
func (s *Server) handleJoinStream(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !validTau(req.Tau) {
		writeError(w, http.StatusBadRequest, "tau must be a non-negative number")
		return
	}
	mode, ok := parseMode(req.Mode)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q (auto | enumerate | histogram | pqgram)", req.Mode))
		return
	}
	if req.Q < 0 || req.Q > 16 {
		writeError(w, http.StatusBadRequest, "q must be in [0, 16]")
		return
	}
	limit := s.maxMatches
	if req.Limit > 0 && req.Limit < limit {
		limit = req.Limit
	}

	// r.Context() ends when the client disconnects; the explicit cancel
	// lets a write failure (the other disconnect signal — the kernel may
	// notice a dead peer only when we write) stop the engine too.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)

	var (
		count    int
		writeErr error
	)
	st, err := s.c.JoinStream(ctx, s.e, req.Tau, batch.JoinOptions{Mode: mode, Q: req.Q}, func(m corpus.Match) {
		count++
		if writeErr != nil || count > limit {
			// Past the limit the engine keeps running (the done record
			// reports the true count, as the buffered endpoint does) but
			// no more lines are written.
			return
		}
		rec := JoinStreamRecord{Match: &JoinMatch{I: int64(m.I), J: int64(m.J), Dist: m.Dist}}
		if writeErr = enc.Encode(rec); writeErr == nil {
			writeErr = rc.Flush()
		}
		if writeErr != nil {
			cancel()
		}
	})
	if err != nil || writeErr != nil {
		// Cut short — no done record; its absence is the incompleteness
		// signal. Pruning counters are not added: partial-run stats would
		// skew the cumulative /v1/stats trajectory.
		return
	}
	s.prunedSubs.Add(st.PrunedSubproblems)
	s.bandCells.Add(st.BandSkippedCells)
	s.prunedKroot.Add(st.PrunedKeyroots)
	s.compRows.Add(st.CompressedRows)
	s.rowCells.Add(st.RowCells)
	done := JoinStreamRecord{Done: &JoinStreamDone{Count: count, Truncated: count > limit, Stats: joinStats(st)}}
	if enc.Encode(done) == nil {
		rc.Flush()
	}
}

// handleTopKStream is POST /v1/topk/stream. Top-k results are only
// sound once the whole corpus is scanned, so unlike the join stream no
// line can be written early; the value here is the framing (one line
// per result plus an explicit done record) and the cancellation path —
// a client disconnect stops the scan between stored trees instead of
// paying for the rest of the corpus.
func (s *Server) handleTopKStream(w http.ResponseWriter, r *http.Request) {
	var req TopKRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K < 1 || req.K > s.maxK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1, %d]", s.maxK))
		return
	}
	q, ok := s.resolve(w, req.Query, "query")
	if !ok {
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)

	start := time.Now()
	var writeErr error
	st, err := s.c.TopKAcrossStream(r.Context(), s.e, q, req.K, func(m corpus.CrossMatch) {
		if writeErr != nil {
			return
		}
		rec := TopKStreamRecord{Match: &TopKMatch{Tree: int64(m.Tree), Root: m.Root, Dist: m.Dist}}
		if writeErr = enc.Encode(rec); writeErr == nil {
			writeErr = rc.Flush()
		}
	})
	if err != nil || writeErr != nil {
		return
	}
	s.prunedSubs.Add(st.PrunedSubproblems)
	s.bandCells.Add(st.BandSkippedCells)
	s.prunedKroot.Add(st.PrunedKeyroots)
	s.compRows.Add(st.CompressedRows)
	s.rowCells.Add(st.RowCells)
	if enc.Encode(TopKStreamRecord{Done: &TopKStreamDone{Stats: topKStats(st, time.Since(start))}}) == nil {
		rc.Flush()
	}
}

func topKStats(st batch.Stats, elapsed time.Duration) TopKStats {
	return TopKStats{
		Subproblems:       st.Subproblems,
		PrunedSubproblems: st.PrunedSubproblems,
		BandSkippedCells:  st.BandSkippedCells,
		PrunedKeyroots:    st.PrunedKeyroots,
		CompressedRows:    st.CompressedRows,
		RowCells:          st.RowCells,
		ElapsedMS:         elapsed.Milliseconds(),
	}
}
