package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/corpus"
	"repro/gen"
	"repro/server"
)

// postNDJSON posts a JSON request to a streaming endpoint and decodes
// every NDJSON line into recs (a pointer to a slice of record structs).
func postNDJSON[R any](t *testing.T, url string, req any) []R {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	var out []R
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var r R
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	return out
}

// TestJoinStreamMatchesBuffered is the server half of the streaming
// acceptance bar: at the same tau, the streamed match multiset must be
// bit-identical to the buffered endpoint's, with the terminal done
// record carrying the same count and accounting.
func TestJoinStreamMatchesBuffered(t *testing.T) {
	_, _, ts := newFixture(t)
	for _, tau := range []float64{2, 3, 100} {
		var buf server.JoinResponse
		if code := call(t, "POST", ts.URL+"/v1/join", server.JoinRequest{Tau: tau}, &buf); code != 200 {
			t.Fatalf("tau %g: buffered status %d", tau, code)
		}
		recs := postNDJSON[server.JoinStreamRecord](t, ts.URL+"/v1/join/stream", server.JoinRequest{Tau: tau})
		if len(recs) == 0 || recs[len(recs)-1].Done == nil {
			t.Fatalf("tau %g: stream did not end with a done record (%d lines)", tau, len(recs))
		}
		done := recs[len(recs)-1].Done
		var got []server.JoinMatch
		for _, r := range recs[:len(recs)-1] {
			if r.Match == nil {
				t.Fatalf("tau %g: non-terminal line without a match", tau)
			}
			got = append(got, *r.Match)
		}
		// Streamed matches arrive in completion order; compare as
		// multisets under the buffered endpoint's (I, J) order.
		sort.Slice(got, func(a, b int) bool {
			if got[a].I != got[b].I {
				return got[a].I < got[b].I
			}
			return got[a].J < got[b].J
		})
		if len(got) != len(buf.Matches) {
			t.Fatalf("tau %g: streamed %d matches, buffered %d", tau, len(got), len(buf.Matches))
		}
		for i := range got {
			if got[i] != buf.Matches[i] {
				t.Fatalf("tau %g: match %d = %+v streamed, %+v buffered", tau, i, got[i], buf.Matches[i])
			}
		}
		if done.Count != buf.Count || done.Truncated != buf.Truncated {
			t.Fatalf("tau %g: done (count %d, truncated %v), buffered (count %d, truncated %v)",
				tau, done.Count, done.Truncated, buf.Count, buf.Truncated)
		}
		ds, bs := done.Stats, buf.Stats
		if ds.Candidates != bs.Candidates || ds.LowerPruned != bs.LowerPruned ||
			ds.UpperAccepted != bs.UpperAccepted || ds.ExactComputed != bs.ExactComputed ||
			ds.Mode != bs.Mode {
			t.Fatalf("tau %g: done stats %+v, buffered stats %+v", tau, ds, bs)
		}
	}
}

// TestJoinStreamLimit: the limit stops emission, not the join — the
// done record still reports the full count and flags the truncation.
func TestJoinStreamLimit(t *testing.T) {
	_, _, ts := newFixture(t)
	var buf server.JoinResponse
	call(t, "POST", ts.URL+"/v1/join", server.JoinRequest{Tau: 100}, &buf)
	recs := postNDJSON[server.JoinStreamRecord](t, ts.URL+"/v1/join/stream", server.JoinRequest{Tau: 100, Limit: 1})
	done := recs[len(recs)-1].Done
	if done == nil {
		t.Fatal("stream did not end with a done record")
	}
	if matches := len(recs) - 1; matches != 1 {
		t.Fatalf("limited stream carried %d match lines, want 1", matches)
	}
	if !done.Truncated || done.Count != buf.Count || done.Count <= 1 {
		t.Fatalf("done = count %d truncated %v, want full count %d and truncated", done.Count, done.Truncated, buf.Count)
	}
}

// TestTopKStreamMatchesBuffered: same results as /v1/topk in the same
// order (top-k emits only after the scan — order is part of the
// contract), closed by a done record with the scan stats.
func TestTopKStreamMatchesBuffered(t *testing.T) {
	_, _, ts := newFixture(t)
	req := server.TopKRequest{Query: ref("{a{b}{c}}"), K: 4}
	var buf server.TopKResponse
	if code := call(t, "POST", ts.URL+"/v1/topk", req, &buf); code != 200 {
		t.Fatalf("buffered status %d", code)
	}
	recs := postNDJSON[server.TopKStreamRecord](t, ts.URL+"/v1/topk/stream", req)
	if len(recs) == 0 || recs[len(recs)-1].Done == nil {
		t.Fatalf("stream did not end with a done record (%d lines)", len(recs))
	}
	done := recs[len(recs)-1].Done
	if n := len(recs) - 1; n != len(buf.Matches) {
		t.Fatalf("streamed %d matches, buffered %d", n, len(buf.Matches))
	}
	for i, r := range recs[:len(recs)-1] {
		if r.Match == nil || *r.Match != buf.Matches[i] {
			t.Fatalf("match %d = %+v streamed, %+v buffered", i, r.Match, buf.Matches[i])
		}
	}
	if done.Stats.Subproblems <= 0 {
		t.Fatalf("done stats carry no work: %+v", done.Stats)
	}
}

// TestTopKStatsReported pins the dropped-stats bugfix: /v1/topk used to
// discard the scan's accounting entirely (`ms, _ :=`), leaving the
// response without a stats block and the cumulative /v1/stats pruning
// counters frozen however much top-k work the server did. The response
// stats must carry the scan and the cumulative counters must advance by
// exactly those amounts.
func TestTopKStatsReported(t *testing.T) {
	_, s, ts := newFixture(t)
	before := s.Stats()
	var resp server.TopKResponse
	// The query equals stored tree 0, so the running cutoff drops to 0
	// immediately and the rest of the scan prunes hard — the counters
	// this endpoint used to throw away are guaranteed nonzero.
	if code := call(t, "POST", ts.URL+"/v1/topk",
		server.TopKRequest{Query: ref("{a{b}{c}}"), K: 1}, &resp); code != 200 {
		t.Fatalf("topk: status %d", code)
	}
	after := s.Stats()
	if resp.Stats.Subproblems <= 0 {
		t.Fatalf("topk response carries no scan stats: %+v", resp.Stats)
	}
	if resp.Stats.PrunedSubproblems+resp.Stats.BandSkippedCells+resp.Stats.PrunedKeyroots == 0 {
		t.Fatalf("zero-distance top-1 scan pruned nothing: %+v", resp.Stats)
	}
	if d := after.PrunedSubproblems - before.PrunedSubproblems; d != resp.Stats.PrunedSubproblems {
		t.Fatalf("cumulative pruned_subproblems advanced by %d, response says %d", d, resp.Stats.PrunedSubproblems)
	}
	if d := after.BandSkippedCells - before.BandSkippedCells; d != resp.Stats.BandSkippedCells {
		t.Fatalf("cumulative band_skipped_cells advanced by %d, response says %d", d, resp.Stats.BandSkippedCells)
	}
	if d := after.PrunedKeyroots - before.PrunedKeyroots; d != resp.Stats.PrunedKeyroots {
		t.Fatalf("cumulative pruned_keyroots advanced by %d, response says %d", d, resp.Stats.PrunedKeyroots)
	}
}

// TestJoinStreamClientCancel: a client that disconnects mid-stream must
// not leak its admission slot — the context cancellation propagates
// down to the engine and the request unwinds (the engine-level
// work-actually-stops assertion lives in batch's stream tests).
func TestJoinStreamClientCancel(t *testing.T) {
	c := corpus.New(corpus.WithHistogramIndex())
	for i := 0; i < 40; i++ {
		c.Add(gen.Random(int64(i), gen.RandomSpec{Size: 40, MaxDepth: 8, MaxFanout: 4, Labels: 6}))
	}
	s := server.New(c)
	s.Warm()
	ts := newTestServer(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts+"/v1/join/stream",
		strings.NewReader(`{"tau":100,"mode":"enumerate"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	// Read one line — the stream is live — then hang up mid-stream.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("first line: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The slot must come back without the stream running to completion.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight slot not released after client cancel: %d held", s.Stats().InFlight)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var st server.StatsResponse
	if code := call(t, "GET", ts+"/v1/stats", nil, &st); code != 200 || st.InFlight != 0 {
		t.Fatalf("stats after cancel: code %d, in-flight %d", code, st.InFlight)
	}
}

// newTestServer mounts s and returns its base URL (newFixture builds
// its own corpus; this variant serves a caller-built one).
func newTestServer(t *testing.T, s *server.Server) string {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestTenantPriorityUnderOverload pins the acceptance bar for the
// tenant-aware gate: with one tenant hammering heavy joins and another
// issuing point lookups, the heavy class cap keeps point slots
// reachable — the point tenant's shed count stays strictly below the
// heavy joiner's.
func TestTenantPriorityUnderOverload(t *testing.T) {
	_, s, ts := newFixture(t,
		server.WithMaxInFlight(4),
		server.WithHeavySlots(1),
		server.WithQueueTimeout(250*time.Millisecond),
		server.WithAdmitHook(func() { time.Sleep(50 * time.Millisecond) }),
	)
	if s.HeavySlots() != 1 {
		t.Fatalf("heavy slots = %d, want 1", s.HeavySlots())
	}

	post := func(path, tenant, body string) int {
		req, err := http.NewRequest("POST", ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return 0
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("post %s: %v", path, err)
			return 0
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	var wg sync.WaitGroup
	// 10 joins on one heavy slot at ≥ 50 ms each: the queue timeout
	// admits at most ~6 of them, so some must shed. 8 point lookups on
	// the 3 remaining slots clear in ~3 waves, well inside the timeout.
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post("/v1/join", "batch", `{"tau":2}`)
		}()
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post("/v1/distance", "web", `{"f":{"id":0},"g":{"id":1}}`)
		}()
	}
	wg.Wait()

	st := s.Stats()
	batch, web := st.Tenants["batch"], st.Tenants["web"]
	if batch.Admitted+batch.Shed != 10 || web.Admitted+web.Shed != 8 {
		t.Fatalf("tenant accounting does not cover the arrivals: batch %+v, web %+v", batch, web)
	}
	if batch.Shed < 1 {
		t.Fatalf("heavy tenant shed nothing under overload: %+v", batch)
	}
	if web.Shed >= batch.Shed {
		t.Fatalf("point tenant shed %d ≥ heavy tenant's %d — the heavy cap is not protecting point lookups",
			web.Shed, batch.Shed)
	}
	if st.Shed != batch.Shed+web.Shed {
		t.Fatalf("global shed %d != tenant sum %d", st.Shed, batch.Shed+web.Shed)
	}
}

// TestAbandonedWhileQueued pins the admission accounting hole: a client
// that disconnects while waiting for a slot used to vanish without a
// counter, so admitted + shed undercounted arrivals. It must land in
// the abandoned counters (global and per-tenant) instead.
func TestAbandonedWhileQueued(t *testing.T) {
	_, s, ts := newFixture(t,
		server.WithMaxInFlight(1), server.WithQueueTimeout(10*time.Second))
	release := s.OccupySlots(1)
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/distance",
		strings.NewReader(`{"f":{"id":0},"g":{"id":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", "flaky")
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	// Give the request time to reach the queue, then hang up.
	time.Sleep(100 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request reported success")
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Abandoned != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned counter = %d, want 1 (stats %+v)", s.Stats().Abandoned, s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := s.Stats()
	if tc := st.Tenants["flaky"]; tc.Abandoned != 1 || tc.Admitted != 0 || tc.Shed != 0 {
		t.Fatalf("tenant counters %+v, want exactly one abandonment", tc)
	}
	if st.Shed != 0 {
		t.Fatalf("abandonment double-counted as shed: %+v", st)
	}

	// The abandoned waiter must not have consumed the slot.
	release()
	if code := call(t, "POST", ts.URL+"/v1/distance",
		server.DistanceRequest{F: refID(0), G: refID(1)}, nil); code != 200 {
		t.Fatalf("post after release: status %d", code)
	}
}

// TestGateConcurrentTenants races many tenants and both priority
// classes through a tiny gate (run under -race in CI) and checks the
// books balance: every arrival is admitted or shed, globals equal the
// tenant sums, and every slot comes back.
func TestGateConcurrentTenants(t *testing.T) {
	_, s, ts := newFixture(t,
		server.WithMaxInFlight(3),
		server.WithHeavySlots(2),
		server.WithTenantQuota(2),
		server.WithQueueTimeout(20*time.Millisecond),
		server.WithAdmitHook(func() { time.Sleep(time.Millisecond) }),
	)
	tenants := []string{"t0", "t1", "t2", "t3"}
	const perTenant = 12
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		ok200, shed int
	)
	for ti, tenant := range tenants {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string, heavy bool) {
				defer wg.Done()
				path, body := "/v1/distance", `{"f":{"id":0},"g":{"id":1}}`
				if heavy {
					path, body = "/v1/join", `{"tau":2}`
				}
				req, err := http.NewRequest("POST", ts.URL+path, strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Tenant", tenant)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("post: %v", err)
					return
				}
				resp.Body.Close()
				mu.Lock()
				switch resp.StatusCode {
				case 200:
					ok200++
				case 503:
					shed++
				default:
					t.Errorf("status %d", resp.StatusCode)
				}
				mu.Unlock()
			}(tenant, (ti+i)%3 == 0)
		}
	}
	wg.Wait()

	st := s.Stats()
	total := len(tenants) * perTenant
	if ok200+shed != total {
		t.Fatalf("client observed %d outcomes, sent %d", ok200+shed, total)
	}
	if st.Admitted != int64(ok200) || st.Shed != int64(shed) {
		t.Fatalf("server counted %d admitted / %d shed, client observed %d / %d",
			st.Admitted, st.Shed, ok200, shed)
	}
	var sumAdm, sumShed, sumAband int64
	for _, tc := range st.Tenants {
		sumAdm += tc.Admitted
		sumShed += tc.Shed
		sumAband += tc.Abandoned
	}
	if sumAdm != st.Admitted || sumShed != st.Shed || sumAband != st.Abandoned || st.Abandoned != 0 {
		t.Fatalf("tenant sums (%d, %d, %d) disagree with globals (%d, %d, %d)",
			sumAdm, sumShed, sumAband, st.Admitted, st.Shed, st.Abandoned)
	}
	if st.InFlight != 0 {
		t.Fatalf("%d slots still held after all requests returned", st.InFlight)
	}
}
