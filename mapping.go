package ted

import (
	"repro/internal/naive"
)

// OpKind identifies a node edit operation in an edit mapping.
type OpKind int

const (
	// OpMatch pairs an F-node with a G-node (a rename when the labels
	// differ, a no-cost match otherwise).
	OpMatch OpKind = OpKind(naive.OpMatch)
	// OpDelete removes an F-node.
	OpDelete OpKind = OpKind(naive.OpDelete)
	// OpInsert adds a G-node.
	OpInsert OpKind = OpKind(naive.OpInsert)
)

func (k OpKind) String() string { return naive.OpKind(k).String() }

// EditOp is one element of an edit mapping. FNode/GNode are postorder
// ids into the respective trees; FNode is -1 for insertions and GNode is
// -1 for deletions. Labels are included for convenience.
type EditOp struct {
	Kind           OpKind
	FNode, GNode   int
	FLabel, GLabel string
	Cost           float64
}

// Mapping computes a minimum-cost edit mapping between f and g: a set of
// operations covering every node of both trees exactly once, whose total
// cost equals Distance(f, g) and whose matched pairs are one-to-one and
// preserve ancestry and sibling order.
//
// This goes beyond the paper (which computes only the distance value);
// the mapping is extracted by backtracking a memoized forest DP, which
// evaluates only the subproblems along the optimal frontier but has an
// O(|f|²·|g|²) worst case — intended for small and medium trees.
func Mapping(f, g *Tree, opts ...Option) []EditOp {
	c := buildConfig(opts)
	raw := naive.Mapping(f, g, c.model)
	ops := make([]EditOp, len(raw))
	for i, op := range raw {
		e := EditOp{Kind: OpKind(op.Kind), FNode: op.FNode, GNode: op.GNode, Cost: op.Cost}
		if op.FNode >= 0 {
			e.FLabel = f.Label(op.FNode)
		}
		if op.GNode >= 0 {
			e.GLabel = g.Label(op.GNode)
		}
		ops[i] = e
	}
	return ops
}
