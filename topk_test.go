package ted_test

import (
	"math/rand"
	"sort"
	"testing"

	ted "repro"
	"repro/gen"
)

// TestTopKSubtreesExact cross-checks TopKSubtrees against brute force:
// the distance from the query to every data subtree extracted and
// recomputed independently.
func TestTopKSubtreesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 15; iter++ {
		query := gen.Random(rng.Int63(), gen.RandomSpec{Size: 1 + rng.Intn(10), MaxDepth: 5, MaxFanout: 3, Labels: 3})
		data := gen.Random(rng.Int63(), gen.RandomSpec{Size: 5 + rng.Intn(40), MaxDepth: 7, MaxFanout: 4, Labels: 3})

		// Brute force: distance to each subtree, via the public API on
		// extracted copies.
		type cand struct {
			root int
			dist float64
		}
		var all []cand
		for w := 0; w < data.Len(); w++ {
			sub := ted.Build(data.Builder(w))
			all = append(all, cand{w, ted.Distance(query, sub)})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].dist != all[j].dist {
				return all[i].dist < all[j].dist
			}
			return all[i].root < all[j].root
		})

		for _, k := range []int{1, 3, data.Len(), data.Len() + 5} {
			got := ted.TopKSubtrees(query, data, k)
			wantLen := k
			if wantLen > data.Len() {
				wantLen = data.Len()
			}
			if len(got) != wantLen {
				t.Fatalf("k=%d: got %d matches want %d", k, len(got), wantLen)
			}
			for i, m := range got {
				if m.Root != all[i].root || m.Dist != all[i].dist {
					t.Fatalf("k=%d match %d: got (%d,%v) want (%d,%v)",
						k, i, m.Root, m.Dist, all[i].root, all[i].dist)
				}
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	q := ted.MustParse("{a}")
	d := ted.MustParse("{a{a}{b}}")
	if got := ted.TopKSubtrees(q, d, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	got := ted.TopKSubtrees(q, d, 2)
	if len(got) != 2 || got[0].Dist != 0 || d.Label(got[0].Root) != "a" {
		t.Fatalf("top-2 = %+v", got)
	}
	// All algorithms agree on the match set.
	for _, alg := range ted.Algorithms {
		g2 := ted.TopKSubtrees(q, d, 2, ted.WithAlgorithm(alg))
		for i := range got {
			if g2[i] != got[i] {
				t.Fatalf("%v: %+v want %+v", alg, g2[i], got[i])
			}
		}
	}
}

// TestTopKSubtreesAcross cross-checks the multi-tree, cutoff-shrinking
// top-k against per-tree TopKSubtrees merged by brute force.
func TestTopKSubtreesAcross(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	query := gen.Random(rng.Int63(), gen.RandomSpec{Size: 8, MaxDepth: 5, MaxFanout: 3, Labels: 3})
	var data []*ted.Tree
	for i := 0; i < 6; i++ {
		data = append(data, gen.Random(rng.Int63(), gen.RandomSpec{
			Size: 10 + rng.Intn(25), MaxDepth: 7, MaxFanout: 4, Labels: 3,
		}))
	}
	for _, k := range []int{1, 4, 9} {
		var want []ted.CrossSubtreeMatch
		for di, d := range data {
			for _, m := range ted.TopKSubtrees(query, d, k) {
				want = append(want, ted.CrossSubtreeMatch{Tree: di, Root: m.Root, Dist: m.Dist})
			}
		}
		sort.Slice(want, func(i, j int) bool {
			a, b := want[i], want[j]
			if a.Dist != b.Dist {
				return a.Dist < b.Dist
			}
			if a.Tree != b.Tree {
				return a.Tree < b.Tree
			}
			return a.Root < b.Root
		})
		if len(want) > k {
			want = want[:k]
		}
		var st ted.Stats
		got := ted.TopKSubtreesAcross(query, data, k, ted.WithStats(&st))
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d matches, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d match %d: got %+v want %+v", k, i, got[i], want[i])
			}
		}
		if st.Subproblems <= 0 {
			t.Fatalf("k=%d: no subproblems reported", k)
		}
	}
	if got := ted.TopKSubtreesAcross(query, nil, 3); got != nil {
		t.Fatal("empty data should return nil")
	}
	if got := ted.TopKSubtreesAcross(query, data, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestSubtreeDistances(t *testing.T) {
	f := gen.ZigZag(31)
	g := gen.Mixed(29)
	m := ted.SubtreeDistances(f, g)
	nf, ng := m.Dims()
	if nf != f.Len() || ng != g.Len() {
		t.Fatalf("dims %dx%d", nf, ng)
	}
	if m.At(f.Root(), g.Root()) != ted.Distance(f, g) {
		t.Fatal("root cell != Distance")
	}
	// Every cell equals the independently computed subtree distance.
	for v := 0; v < nf; v += 7 {
		for w := 0; w < ng; w += 5 {
			sf := ted.Build(f.Builder(v))
			sg := ted.Build(g.Builder(w))
			if want := ted.Distance(sf, sg); m.At(v, w) != want {
				t.Fatalf("At(%d,%d) = %v want %v", v, w, m.At(v, w), want)
			}
		}
	}
}
