// corpus: the persistent-corpus walkthrough. A collection of trees is
// stored in a corpus.Corpus — stable IDs, prepared artifacts, an
// incrementally maintained inverted index — saved to disk, reloaded in
// what stands in for a fresh process, and joined again: the reloaded
// join reproduces the original match set bit for bit while skipping
// parsing, preparation and index construction entirely. The walkthrough
// then mutates the corpus (Delete/Replace) and shows the index staying
// in sync through its tombstoned posting lists.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	ted "repro"
	"repro/batch"
	"repro/corpus"
	"repro/gen"
)

func main() {
	// A corpus of random trees with planted near-duplicate clusters, so
	// the join has true matches to find.
	var trees []*ted.Tree
	for i := int64(0); i < 12; i++ {
		base := gen.Random(100+i, gen.RandomSpec{Size: 60, MaxDepth: 10, MaxFanout: 5, Labels: 12})
		trees = append(trees, base, gen.RenameSome(base, 3, 200+i))
	}
	tau := 8.0

	// Build: every Add computes the tree's artifacts once (label ids,
	// decomposition cardinalities, mirror-leafmost array) and indexes it.
	buildStart := time.Now()
	c := corpus.New(corpus.WithHistogramIndex())
	for _, t := range trees {
		c.Add(t)
	}
	e := c.Engine(batch.WithWorkers(4))
	matches, st := c.Join(e, tau, batch.JoinOptions{})
	fmt.Printf("built corpus of %d trees in %v\n", c.Len(), time.Since(buildStart).Round(time.Microsecond))
	fmt.Printf("join: %d matches from %d candidates (%d exact computations)\n\n",
		len(matches), st.Comparisons, st.ExactComputed)

	// Persist: one binary stream holds trees, artifacts and the index's
	// posting lists.
	dir, err := os.MkdirTemp("", "tedcorpus")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "corpus.tedc")
	if err := c.SaveFile(path); err != nil {
		panic(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("saved to %s: %d bytes (%d bytes/tree)\n", filepath.Base(path), info.Size(), info.Size()/int64(c.Len()))

	// Reload — the "restarted server": Load decodes in O(bytes), and the
	// corpus-attached engine hydrates PreparedTrees from the stored
	// artifacts instead of recomputing them.
	loadStart := time.Now()
	c2, err := corpus.LoadFile(path)
	if err != nil {
		panic(err)
	}
	e2 := c2.Engine(batch.WithWorkers(4))
	matches2, _ := c2.Join(e2, tau, batch.JoinOptions{})
	fmt.Printf("reloaded + rejoined in %v\n", time.Since(loadStart).Round(time.Microsecond))

	same := len(matches) == len(matches2)
	for i := 0; same && i < len(matches); i++ {
		same = matches[i] == matches2[i]
	}
	fmt.Printf("match sets identical: %v\n\n", same)

	// Incremental maintenance: IDs are stable, so deleting and replacing
	// trees leaves every other ID — and the posting lists, via
	// tombstones — intact.
	victim := matches2[0].I
	c2.Delete(victim)
	if t0, ok := c2.Tree(matches2[0].J); ok {
		c2.Replace(matches2[0].J, gen.RenameSome(t0, 1, 999))
	}
	matches3, _ := c2.Join(e2, tau, batch.JoinOptions{})
	fmt.Printf("after Delete(%d) + Replace(%d): %d matches (was %d)\n",
		victim, matches2[0].J, len(matches3), len(matches2))
	for _, m := range matches3 {
		if m.I == victim || m.J == victim {
			fmt.Println("BUG: deleted tree still matching")
		}
	}
}
