// phylo: compare phylogenetic trees, one of the paper's motivating
// domains (the TreeFam experiments of Table 2). Gene trees for the same
// family reconstructed with different methods differ in topology; the
// tree edit distance quantifies by how much. The example parses Newick
// trees, computes all pairwise distances with RTED, and shows why a
// robust strategy matters on deep unbalanced phylogenies.
package main

import (
	"fmt"

	ted "repro"
	"repro/gen"
)

// Three reconstructions of the same five-taxon family: the first two
// differ in one internal rearrangement, the third is an outgroup-rooted
// variant.
var newicks = map[string]string{
	"ml":        "(((human,chimp)hc,gorilla)hcg,(mouse,rat)mr)root;",
	"parsimony": "((human,(chimp,gorilla)cg)hcg,(mouse,rat)mr)root;",
	"bayesian":  "((((human,chimp)hc,gorilla)hcg,mouse)x,rat)root;",
}

func main() {
	trees := map[string]*ted.Tree{}
	for name, nw := range newicks {
		t, err := ted.ParseNewick(nw)
		if err != nil {
			panic(err)
		}
		trees[name] = t
	}

	order := []string{"ml", "parsimony", "bayesian"}
	fmt.Println("pairwise edit distances between reconstructions:")
	for i, a := range order {
		for _, b := range order[i+1:] {
			fmt.Printf("  %-9s vs %-9s : %g\n", a, b, ted.Distance(trees[a], trees[b]))
		}
	}

	// Large phylogenies are where the strategy choice matters: deep
	// binary trees sit between the extremes that favour Zhang's and
	// Demaine's algorithms. Compare the work on a TreeFam-sized pair.
	f := gen.TreeFamLike(1, 901)
	g := gen.TreeFamLike(2, 901)
	fmt.Printf("\nsimulated gene trees: |F|=%d |G|=%d\n", f.Len(), g.Len())
	fmt.Println("relevant subproblems per algorithm:")
	var best ted.Algorithm
	var bestCount int64 = -1
	for _, alg := range []ted.Algorithm{ted.ZhangL, ted.ZhangR, ted.KleinH, ted.DemaineH} {
		c := ted.CountSubproblems(f, g, alg)
		fmt.Printf("  %-10s %12d\n", alg, c)
		if bestCount == -1 || c < bestCount {
			best, bestCount = alg, c
		}
	}
	rted := ted.CountSubproblems(f, g, ted.RTED)
	fmt.Printf("  %-10s %12d (%.1f%% of the best competitor, %s)\n",
		ted.RTED, rted, 100*float64(rted)/float64(bestCount), best)

	fmt.Printf("\ndistance: %g\n", ted.Distance(f, g))
}
