// server: the serving-layer walkthrough. A corpus is opened with a
// write-ahead log (corpus.Open), served over HTTP (package server, the
// handler cmd/tedd mounts), queried and mutated with plain net/http —
// then "crashed" without a Save and reopened, showing every
// acknowledged mutation replayed from the log. This is the end-to-end
// shape of a production deployment: Open → Warm → serve → drain →
// Checkpoint, with crash durability in between.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"repro/corpus"
	"repro/gen"
	"repro/server"
)

func main() {
	dir, err := os.MkdirTemp("", "tedserve")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "corpus.tedc")

	// Open attaches the write-ahead log: every mutation from here on is
	// durable before it is acknowledged, Save or no Save.
	c, err := corpus.Open(path, corpus.WithHistogramIndex())
	if err != nil {
		panic(err)
	}
	for i := int64(0); i < 8; i++ {
		base := gen.Random(100+i, gen.RandomSpec{Size: 40, MaxDepth: 8, MaxFanout: 5, Labels: 10})
		c.Add(base)
		c.Add(gen.RenameSome(base, 2, 200+i))
	}

	// The HTTP front-end: admission-gated handlers over a warmed,
	// corpus-attached engine. cmd/tedd wires this same handler to a real
	// listener; a test server keeps the example self-contained.
	srv := server.New(c, server.WithMaxInFlight(8))
	srv.Warm()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(path string, req, out any) {
		raw, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		json.NewDecoder(resp.Body).Decode(out)
	}

	// Query: the similarity join of the stored corpus.
	var join server.JoinResponse
	post("/v1/join", server.JoinRequest{Tau: 6}, &join)
	fmt.Printf("join over HTTP: %d matches from %d candidates (mode %s)\n",
		join.Count, join.Stats.Candidates, join.Stats.Mode)

	// Query: distance between an ad-hoc tree and a stored one.
	id := int64(0)
	var dist server.DistanceResponse
	post("/v1/distance", server.DistanceRequest{
		F: server.TreeRef{ID: &id},
		G: server.TreeRef{Tree: "{a{b}{c}}"},
	}, &dist)
	fmt.Printf("distance(stored 0, ad-hoc): %g\n", dist.Dist)

	// Mutate: the POST is acknowledged only after the write-ahead log
	// has the record on disk.
	var added server.TreeResponse
	post("/v1/trees", server.TreeRequest{Tree: "{survivor{of{the}{crash}}}"}, &added)
	fmt.Printf("added tree %d over HTTP\n", added.ID)

	// Crash: no Save, no Checkpoint — only the log survives. (Close here
	// stands in for the kernel tearing down a killed process's
	// descriptors, which releases the single-writer lock the same way;
	// nothing is flushed by it that the acknowledged mutations hadn't
	// already written.)
	ts.Close()
	c.Close()

	// Recovery: Open replays the log over the (nonexistent) snapshot.
	c2, err := corpus.Open(path, corpus.WithHistogramIndex())
	if err != nil {
		panic(err)
	}
	defer c2.Close()
	if t, ok := c2.Tree(corpus.ID(added.ID)); ok {
		fmt.Printf("after crash + reopen: tree %d = %s\n", added.ID, t.String())
	} else {
		fmt.Println("BUG: acknowledged mutation lost")
	}
	fmt.Printf("recovered corpus: %d trees\n", c2.Len())

	// Fold the log into a snapshot; the next Open starts from the
	// compact binary image instead of replaying history.
	if err := c2.Checkpoint(); err != nil {
		panic(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("checkpointed: snapshot %d bytes, log truncated\n", info.Size())
}
