// Quickstart: parse two trees, compute their edit distance with RTED,
// inspect the algorithm's work, and extract the edit mapping.
package main

import (
	"fmt"

	ted "repro"
)

func main() {
	// Bracket notation: {label child child ...}. This is the pair from
	// the paper's Figure 1 (rename e->x, delete b).
	f := ted.MustParse("{a{c}{b{d}}{e}}")
	g := ted.MustParse("{a{c}{d}{x}}")

	// The one-liner: RTED under the unit cost model.
	fmt.Println("distance:", ted.Distance(f, g))

	// The same distance with instrumentation: how many DP subproblems
	// were evaluated, and how much of the time went into computing the
	// optimal decomposition strategy.
	var st ted.Stats
	d := ted.Distance(f, g, ted.WithStats(&st))
	fmt.Printf("rted: d=%v, %d subproblems, strategy %v of %v total\n",
		d, st.Subproblems, st.StrategyTime, st.TotalTime)

	// Any of the paper's algorithms can be forced explicitly — they all
	// return the same distance, differing only in work:
	for _, alg := range ted.Algorithms {
		ted.Distance(f, g, ted.WithAlgorithm(alg), ted.WithStats(&st))
		fmt.Printf("%-10s %3d subproblems\n", alg, st.Subproblems)
	}

	// Custom costs: make renames cheap.
	cheapRename := ted.WeightedCost(1, 1, 0.1)
	fmt.Println("cheap renames:", ted.Distance(f, g, ted.WithCost(cheapRename)))

	// The edit mapping: which node maps to which.
	for _, op := range ted.Mapping(f, g) {
		switch op.Kind {
		case ted.OpMatch:
			fmt.Printf("  %q -> %q (cost %g)\n", op.FLabel, op.GLabel, op.Cost)
		case ted.OpDelete:
			fmt.Printf("  delete %q\n", op.FLabel)
		case ted.OpInsert:
			fmt.Printf("  insert %q\n", op.GLabel)
		}
	}
}
