// simjoin: the similarity self-join of the paper's Table 1, on a mixed
// collection of tree shapes. The join matches every pair with edit
// distance below a threshold; because it compares all pairs regardless
// of shape, fixed-strategy algorithms degenerate on unfavourable shape
// combinations while RTED stays fast. The example runs the same join
// with every algorithm and prints the Table 1 columns (runtime and
// relevant subproblems).
package main

import (
	"fmt"

	ted "repro"
	"repro/gen"
)

func main() {
	const n = 300 // per-tree size; the paper uses ~1000
	trees := []*ted.Tree{
		gen.LeftBranch(n),
		gen.RightBranch(n),
		gen.FullBinary(n),
		gen.ZigZag(n),
		gen.Random(42, gen.RandomSpec{Size: n, MaxDepth: 15, MaxFanout: 6, Labels: 8}),
	}
	tau := float64(n) / 2

	fmt.Printf("self-join over %d trees (~%d nodes each), tau=%.0f\n\n", len(trees), n, tau)
	fmt.Printf("%-10s %12s %16s %8s\n", "algorithm", "time", "subproblems", "matches")
	var rtedSub int64
	for _, alg := range []ted.Algorithm{ted.ZhangL, ted.ZhangR, ted.KleinH, ted.DemaineH, ted.RTED} {
		r := ted.Join(trees, tau, ted.WithAlgorithm(alg))
		fmt.Printf("%-10s %12v %16d %8d\n", alg, r.Elapsed.Round(1000), r.Subproblems, len(r.Pairs))
		if alg == ted.RTED {
			rtedSub = r.Subproblems
		}
	}

	best := ted.Join(trees, tau, ted.WithAlgorithm(ted.ZhangL)).Subproblems
	fmt.Printf("\nRTED does %.1fx less work than Zhang-L on this collection\n",
		float64(best)/float64(rtedSub))

	r := ted.Join(trees, tau)
	fmt.Println("\nmatching pairs (distance < tau):")
	names := []string{"LB", "RB", "FB", "ZZ", "Random"}
	for _, p := range r.Pairs {
		fmt.Printf("  %s ~ %s  (d=%.0f)\n", names[p.I], names[p.J], p.Dist)
	}
}
