// simjoin: the similarity self-join of the paper's Table 1, on a mixed
// collection of tree shapes. The join matches every pair with edit
// distance below a threshold; because it compares all pairs regardless
// of shape, fixed-strategy algorithms degenerate on unfavourable shape
// combinations while RTED stays fast. The example runs the same join
// with every algorithm and prints the Table 1 columns (runtime and
// relevant subproblems), then scales up to a larger corpus to show
// index-accelerated candidate generation: the same match set, visiting
// a fraction of the pairs.
package main

import (
	"fmt"

	ted "repro"
	"repro/gen"
)

func main() {
	const n = 300 // per-tree size; the paper uses ~1000
	trees := []*ted.Tree{
		gen.LeftBranch(n),
		gen.RightBranch(n),
		gen.FullBinary(n),
		gen.ZigZag(n),
		gen.Random(42, gen.RandomSpec{Size: n, MaxDepth: 15, MaxFanout: 6, Labels: 8}),
	}
	tau := float64(n) / 2

	fmt.Printf("self-join over %d trees (~%d nodes each), tau=%.0f\n\n", len(trees), n, tau)
	fmt.Printf("%-10s %12s %16s %8s\n", "algorithm", "time", "subproblems", "matches")
	var rtedSub int64
	for _, alg := range []ted.Algorithm{ted.ZhangL, ted.ZhangR, ted.KleinH, ted.DemaineH, ted.RTED} {
		r := ted.Join(trees, tau, ted.WithAlgorithm(alg))
		fmt.Printf("%-10s %12v %16d %8d\n", alg, r.Elapsed.Round(1000), r.Subproblems, len(r.Pairs))
		if alg == ted.RTED {
			rtedSub = r.Subproblems
		}
	}

	best := ted.Join(trees, tau, ted.WithAlgorithm(ted.ZhangL)).Subproblems
	fmt.Printf("\nRTED does %.1fx less work than Zhang-L on this collection\n",
		float64(best)/float64(rtedSub))

	r := ted.Join(trees, tau)
	fmt.Println("\nmatching pairs (distance < tau):")
	names := []string{"LB", "RB", "FB", "ZZ", "Random"}
	for _, p := range r.Pairs {
		fmt.Printf("  %s ~ %s  (d=%.0f)\n", names[p.I], names[p.J], p.Dist)
	}

	// Part two: joins at corpus scale. Enumerating all pairs is
	// quadratic in the corpus no matter how cheap the filters are; an
	// inverted index generates only the pairs it cannot rule out, and
	// the bound filters + exact GTED run on those candidates alone. The
	// match sets are provably identical.
	// 20 distinct base trees × 4 variants each: a variant renames a few
	// random nodes of its base, so every base contributes a cluster of
	// true matches while clusters stay far apart.
	var corpus []*ted.Tree
	for i := int64(0); i < 20; i++ {
		base := gen.Random(i, gen.RandomSpec{
			Size: 60 + int(i), MaxDepth: 10, MaxFanout: 5, Labels: 30,
		})
		corpus = append(corpus, base)
		for v := int64(1); v < 4; v++ {
			corpus = append(corpus, gen.RenameSome(base, int(v)*3, i*4+v))
		}
	}
	ctau := 25.0
	allPairs := len(corpus) * (len(corpus) - 1) / 2
	fmt.Printf("\nindexed join over %d random trees (%d pairs), tau=%.0f\n\n", len(corpus), allPairs, ctau)
	fmt.Printf("%-22s %10s %12s %8s\n", "join mode", "candidates", "time", "matches")
	for _, m := range []struct {
		name string
		opts []ted.Option
	}{
		{"enumerate+filter", []ted.Option{ted.WithFilters()}},
		{"index: histogram", []ted.Option{ted.WithIndex(ted.IndexHistogram)}},
		{"index: pq-gram", []ted.Option{ted.WithIndex(ted.IndexPQGram)}},
	} {
		r := ted.Join(corpus, ctau, m.opts...)
		fmt.Printf("%-22s %10d %12v %8d\n", m.name, r.Comparisons, r.Elapsed.Round(1000), len(r.Pairs))
	}
}
