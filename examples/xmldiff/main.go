// xmldiff: measure how much two versions of an XML document differ, the
// motivating application of the paper's introduction (change detection
// between document versions). The example diffs two revisions of a small
// product catalog and reports the distance, a normalized similarity, and
// the concrete node edits.
package main

import (
	"fmt"
	"strings"

	ted "repro"
)

const catalogV1 = `
<catalog>
  <product sku="A-100">
    <name>Espresso Machine</name>
    <price currency="EUR">349</price>
    <tags><tag>kitchen</tag><tag>coffee</tag></tags>
  </product>
  <product sku="B-200">
    <name>Milk Frother</name>
    <price currency="EUR">49</price>
  </product>
  <product sku="C-300">
    <name>Grinder</name>
    <price currency="EUR">129</price>
  </product>
</catalog>`

const catalogV2 = `
<catalog>
  <product sku="A-100">
    <name>Espresso Machine</name>
    <price currency="EUR">329</price>
    <tags><tag>kitchen</tag><tag>coffee</tag><tag>sale</tag></tags>
  </product>
  <product sku="C-300">
    <name>Burr Grinder</name>
    <price currency="EUR">129</price>
  </product>
  <product sku="D-400">
    <name>Kettle</name>
    <price currency="EUR">39</price>
  </product>
</catalog>`

func main() {
	opts := ted.XMLOptions{IncludeAttributes: true, IncludeText: true}
	v1, err := ted.FromXML(strings.NewReader(catalogV1), opts)
	if err != nil {
		panic(err)
	}
	v2, err := ted.FromXML(strings.NewReader(catalogV2), opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("v1: %d nodes, v2: %d nodes\n", v1.Len(), v2.Len())

	d := ted.Distance(v1, v2)
	// Normalize to [0,1]: distance relative to replacing everything.
	sim := 1 - d/float64(v1.Len()+v2.Len())
	fmt.Printf("edit distance: %g (similarity %.1f%%)\n", d, 100*sim)

	fmt.Println("changes:")
	for _, op := range ted.Mapping(v1, v2) {
		switch {
		case op.Kind == ted.OpDelete:
			fmt.Printf("  - removed %s\n", op.FLabel)
		case op.Kind == ted.OpInsert:
			fmt.Printf("  + added   %s\n", op.GLabel)
		case op.Kind == ted.OpMatch && op.Cost > 0:
			fmt.Printf("  ~ changed %s -> %s\n", op.FLabel, op.GLabel)
		}
	}
}
