package ted

import (
	"fmt"
	"math"
	"time"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gted"
	"repro/internal/strategy"
	"repro/internal/tree"
	"repro/internal/zs"
)

// Tree is an immutable ordered labeled tree. Nodes are addressed by
// postorder id via the Label/Parent/Children/Size accessors.
type Tree = tree.Tree

// Node is the mutable builder form of a tree; link Nodes and call Build.
type Node = tree.Node

// NewNode returns a builder node with the given label and children.
func NewNode(label string, children ...*Node) *Node { return tree.NewNode(label, children...) }

// Build converts a builder tree into an immutable indexed Tree.
func Build(root *Node) *Tree { return tree.Index(root) }

// Parse parses bracket notation, e.g. "{a{b}{c}}".
func Parse(s string) (*Tree, error) { return tree.ParseBracket(s) }

// MustParse is Parse that panics on malformed input.
func MustParse(s string) *Tree { return tree.MustParseBracket(s) }

// ParseNewick parses a Newick-format phylogenetic tree, e.g. "(A,B)r;".
func ParseNewick(s string) (*Tree, error) { return tree.ParseNewick(s) }

// CostModel assigns costs to the three node edit operations. Rename(a,a)
// should be 0 for Distance to be a metric.
type CostModel = cost.Model

// UnitCost is the standard model: insert/delete cost 1, rename costs 1
// between different labels and 0 between equal ones. It is the model of
// all experiments in the paper.
var UnitCost CostModel = cost.Unit{}

// WeightedCost scales the three operations by constant weights (rename
// charged only between different labels).
func WeightedCost(del, ins, ren float64) CostModel {
	return cost.Weighted{DeleteW: del, InsertW: ins, RenameW: ren}
}

// FuncCost adapts three closures to a CostModel.
func FuncCost(del, ins func(label string) float64, ren func(a, b string) float64) CostModel {
	return cost.Func{DeleteF: del, InsertF: ins, RenameF: ren}
}

// Algorithm selects the decomposition strategy used by Distance.
type Algorithm int

const (
	// RTED computes the optimal LRH strategy first (the paper's
	// contribution; never worse than any algorithm below).
	RTED Algorithm = iota
	// ZhangL is Zhang & Shasha's algorithm (left paths, via GTED).
	ZhangL
	// ZhangR is the symmetric right-path variant.
	ZhangR
	// KleinH is Klein's algorithm (heavy paths in the left tree).
	KleinH
	// DemaineH is Demaine et al.'s worst-case optimal algorithm (heavy
	// paths in the larger tree).
	DemaineH
	// ZhangShashaClassic is the standalone, hard-coded implementation of
	// Zhang & Shasha's algorithm (not strategy-generic; the fastest
	// per-subproblem constant). Distances are identical to ZhangL.
	ZhangShashaClassic
)

func (a Algorithm) String() string {
	switch a {
	case RTED:
		return "RTED"
	case ZhangL:
		return "Zhang-L"
	case ZhangR:
		return "Zhang-R"
	case KleinH:
		return "Klein-H"
	case DemaineH:
		return "Demaine-H"
	case ZhangShashaClassic:
		return "ZS-classic"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Algorithms lists the five strategy-based algorithms compared in the
// paper's experiments.
var Algorithms = []Algorithm{RTED, ZhangL, ZhangR, KleinH, DemaineH}

// Stats reports instrumentation of a Distance call when requested with
// WithStats.
type Stats struct {
	// Subproblems is the number of relevant subproblems the algorithm
	// evaluated (the paper's cost measure, Figures 8 and Tables 1–2).
	// Bounded calls count only the cells they actually computed.
	Subproblems int64
	// PrunedSubproblems is the number of relevant subproblems a bounded
	// call (DistanceBounded) skipped because the cutoff proved them
	// irrelevant, including a size-product lower bound on the cells of
	// keyroot subproblems the band skipped wholesale. Always zero for
	// exact calls.
	PrunedSubproblems int64
	// BandSkippedCells counts the DP cells skipped as whole loop ranges
	// by the structural band of a bounded call, as opposed to cells
	// pruned one at a time by slack saturation; with WithBanding(false)
	// it is always zero, so the difference between two runs attributes
	// pruning to the band versus the per-cell predicate.
	BandSkippedCells int64
	// PrunedKeyroots counts keyroot subproblem DPs a bounded call
	// skipped entirely because the size, height or depth-spectra offset
	// of the subtree pair already exceeded its cutoff.
	PrunedKeyroots int64
	// CompressedRows counts forest-distance DP rows a bounded call
	// materialized in band-compressed form (WithSparseRows): only the
	// admissible band cells of the row were stored. Zero for exact calls
	// and with WithSparseRows(false).
	CompressedRows int64
	// RowCells counts the DP row cells materialized across the call's row
	// storage; ×8 it is the bytes of row scratch streamed, the
	// memory-traffic measure band compression shrinks.
	RowCells int64
	// SPFCalls counts single-path function invocations.
	SPFCalls int64
	// StrategyTime is the time spent computing the optimal strategy
	// (RTED only); TotalTime covers the whole computation.
	StrategyTime time.Duration
	TotalTime    time.Duration
	// MaxLiveRows is the peak number of retained heavy-path DP rows.
	MaxLiveRows int
}

type config struct {
	alg      Algorithm
	model    CostModel
	stats    *Stats
	workers  int
	filters  bool
	indexed  bool
	imode    IndexMode
	unbanded bool
	noSparse bool
	noSharp  bool
}

// Option configures Distance, Mapping and Join.
type Option func(*config)

// WithAlgorithm selects the algorithm (default RTED).
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.alg = a } }

// WithCost selects the cost model (default UnitCost).
func WithCost(m CostModel) Option { return func(c *config) { c.model = m } }

// WithStats requests instrumentation; s is filled during the call.
func WithStats(s *Stats) Option { return func(c *config) { c.stats = s } }

// WithBanding toggles the structural band of bounded calls (default
// on). Off, DistanceBounded falls back to testing every DP cell against
// the cutoff one at a time — same answers bit for bit, more cells
// touched. Exists for ablation and differential testing; leave it on.
func WithBanding(on bool) Option { return func(c *config) { c.unbanded = !on } }

// WithSparseRows toggles band-compressed DP row storage of bounded calls
// (default on): when a keyroot's admissible band is narrower than its
// row, only the band cells are materialized. Same answers bit for bit;
// off restores full-width rows for ablation and differential testing.
func WithSparseRows(on bool) Option { return func(c *config) { c.noSparse = !on } }

// WithSharpBands toggles the sharper band bounds of bounded calls
// (default on): label-aware per-region band pricing and the depth-spectra
// keyroot band. Same answers bit for bit; off restores the globally
// priced band for ablation.
func WithSharpBands(on bool) Option { return func(c *config) { c.noSharp = !on } }

func buildConfig(opts []Option) config {
	c := config{alg: RTED, model: UnitCost}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// StrategyFor returns the paper strategy corresponding to an algorithm
// for the pair (f, g). ZhangShashaClassic has no strategy (it is not
// GTED-based) and maps to the equivalent ZhangL strategy.
func StrategyFor(a Algorithm, f, g *Tree) strategy.Named {
	switch a {
	case ZhangL, ZhangShashaClassic:
		return strategy.ZhangL()
	case ZhangR:
		return strategy.ZhangR()
	case KleinH:
		return strategy.KleinH()
	case DemaineH:
		return strategy.DemaineH(f, g)
	case RTED:
		s, _ := strategy.Opt(f, g)
		return s
	}
	panic(fmt.Sprintf("ted: unknown algorithm %v", a))
}

// Distance computes the tree edit distance between f and g. With no
// options it runs RTED under the unit cost model.
func Distance(f, g *Tree, opts ...Option) float64 {
	c := buildConfig(opts)
	start := time.Now()
	switch c.alg {
	case ZhangShashaClassic:
		res := zs.Run(f, g, c.model)
		if c.stats != nil {
			*c.stats = Stats{
				Subproblems: res.Subproblems,
				TotalTime:   time.Since(start),
			}
		}
		return res.Distance
	case RTED:
		r := core.RTED(f, g, c.model)
		if c.stats != nil {
			*c.stats = Stats{
				Subproblems:  r.Stats.Subproblems,
				SPFCalls:     r.Stats.SPFCalls,
				StrategyTime: r.StrategyTime,
				TotalTime:    r.TotalTime,
				MaxLiveRows:  r.Stats.MaxLiveRows,
			}
		}
		return r.Distance
	default:
		run := gted.New(f, g, c.model, StrategyFor(c.alg, f, g))
		d := run.Run()
		if c.stats != nil {
			st := run.Stats()
			*c.stats = Stats{
				Subproblems: st.Subproblems,
				SPFCalls:    st.SPFCalls,
				TotalTime:   time.Since(start),
				MaxLiveRows: st.MaxLiveRows,
			}
		}
		return d
	}
}

// DistanceBounded answers the threshold question "is the tree edit
// distance at most tau?" without always paying for the full exact
// computation. It returns (d, true) — with d the exact distance — if and
// only if Distance(f, g) ≤ tau; otherwise it returns (lb, false), where
// lb is a lower bound on the distance no smaller than tau.
//
// Two mechanisms make it cheaper than Distance. Under the unit cost
// model, the cheap lower bounds of LowerBound are consulted first: when
// they already exceed tau the DP never launches. Otherwise GTED runs with
// the cutoff threaded into its DP loops — cells whose forest sizes alone
// prove them above the cutoff are skipped, and the run aborts as soon as
// any subtree pair proves the final distance above tau. With WithStats,
// Subproblems counts only the DP cells actually evaluated and
// PrunedSubproblems the cells the cutoff skipped.
//
// All cost models are supported (the bound prefilter only applies to
// UnitCost). Under non-unit models the cutoff comparison carries a ~1e-9
// relative rounding pad; unit-cost results are exact. The
// ZhangShashaClassic algorithm has no bounded form and is served by the
// equivalent ZhangL strategy.
func DistanceBounded(f, g *Tree, tau float64, opts ...Option) (float64, bool) {
	c := buildConfig(opts)
	start := time.Now()
	if c.stats != nil {
		*c.stats = Stats{}
	}
	if math.IsNaN(tau) {
		return 0, false // no distance is ≤ NaN; 0 is a trivial lower bound
	}
	if c.model == UnitCost {
		if lb := bounds.Lower(f, g); lb > tau {
			if c.stats != nil {
				c.stats.TotalTime = time.Since(start)
			}
			return lb, false
		}
	}
	alg := c.alg
	if alg == ZhangShashaClassic {
		alg = ZhangL
	}
	run := gted.New(f, g, c.model, StrategyFor(alg, f, g))
	run.SetBanding(!c.unbanded)
	run.SetSparseRows(!c.noSparse)
	run.SetSharpBands(!c.noSharp)
	d, ok := run.RunBounded(tau)
	if c.stats != nil {
		st := run.Stats()
		*c.stats = Stats{
			Subproblems:       st.Subproblems,
			PrunedSubproblems: st.PrunedSubproblems,
			BandSkippedCells:  st.BandSkippedCells,
			PrunedKeyroots:    st.PrunedKeyroots,
			CompressedRows:    st.CompressedRows,
			RowCells:          st.RowCells,
			SPFCalls:          st.SPFCalls,
			TotalTime:         time.Since(start),
			MaxLiveRows:       st.MaxLiveRows,
		}
	}
	if !ok {
		return tau, false
	}
	return d, true
}

// CountSubproblems returns, without computing any distances, the exact
// number of relevant subproblems the chosen algorithm evaluates on the
// pair (f, g) — the quantity plotted in Figure 8 and Tables 1–2 of the
// paper. It runs in O(|f|·|g|) time.
func CountSubproblems(f, g *Tree, a Algorithm) int64 {
	return strategy.Count(f, g, StrategyFor(a, f, g)).Total
}

// OptimalStrategyCost returns the subproblem count of the optimal LRH
// strategy for (f, g) as computed by OptStrategy (Algorithm 2).
func OptimalStrategyCost(f, g *Tree) int64 {
	_, c := strategy.Opt(f, g)
	return c
}
