package corpus

import (
	"time"

	"repro/batch"
	"repro/index"
)

// This file implements the range-partitioned halves of Join and
// TopKAcross — the worker-side primitives of a distributed join (see
// package cluster). A coordinator splits the probe space into position
// ranges over the ascending-ID snapshot; each worker Loads the same
// snapshot file, so positions agree across processes, and the union of
// the per-range results over a partition of [0, n) is exactly the
// single-node result.

// JoinRange computes the slice of the similarity self-join whose probe
// position falls in [lo, hi): all matches (I, J) with I < J and J's
// snapshot position in the range. Candidate generation follows
// opts.Mode exactly as in Join — maintained sharded posting lists when
// the corpus has them, a throwaway index or plain enumeration otherwise
// — and every candidate runs through batch.JoinCandidates, so the match
// set (and each match's Dist) over a partition of the position space is
// identical to Join's at every tau, enumerate and indexed modes alike.
// Requires the unit cost model, like every filtered join.
//
// Positions index the ascending-ID snapshot taken by this call; a
// distributed driver must pin the corpus contents (workers Load one
// shared snapshot file) for ranges computed elsewhere to mean the same
// trees here.
func (c *Corpus) JoinRange(e *batch.Engine, tau float64, opts batch.JoinOptions, lo, hi int) ([]Match, batch.JoinStats) {
	c.checkEngine(e)
	if !e.UnitCost() {
		panic("corpus: JoinRange requires the unit cost model")
	}
	wantQ := opts.Q
	if wantQ <= 0 {
		wantQ = 2
	}
	auto := opts.Mode == batch.IndexAuto

	var (
		mode      batch.IndexMode
		cands     []batch.CandidatePair
		probeTime time.Duration
	)
	ids, ps := c.snapshotPrepared(e, func(ids []ID, ps []*batch.PreparedTree) {
		mode = opts.Mode
		if auto {
			mode = c.resolveAuto(ps, tau)
		}
		rlo, rhi := lo, hi
		if rlo < 0 {
			rlo = 0
		}
		if rhi > len(ids) {
			rhi = len(ids)
		}
		if rlo >= rhi {
			return
		}
		start := time.Now()

		// Maintained-index probes run under the same lock as the
		// snapshot, exactly as in Join; a worker over a Load'd snapshot
		// has no concurrent mutations, but the discipline costs nothing.
		var probe func(q int, buf []index.Candidate) []index.Candidate
		switch {
		case mode == batch.IndexHistogram && c.hist != nil:
			probe = func(q int, buf []index.Candidate) []index.Candidate {
				return c.hist.CandidatesBelow(q, tau, buf)
			}
		case mode == batch.IndexPQGram && c.pq != nil && (auto || c.pq.Q() == wantQ):
			probe = func(q int, buf []index.Candidate) []index.Candidate {
				return c.pq.CandidatesBelow(q, tau, buf)
			}
		}
		switch {
		case probe != nil:
			pos := make(map[int]int, len(ids))
			for i, id := range ids {
				pos[int(id)] = i
			}
			var buf []index.Candidate
			for j := rlo; j < rhi; j++ {
				buf = probe(int(ids[j]), buf)
				for _, cd := range buf {
					i, ok := pos[cd.ID]
					if !ok {
						continue // tombstoned posting of a deleted tree
					}
					cands = append(cands, batch.CandidatePair{I: i, J: j, LB: cd.LB})
				}
			}
		case mode == batch.IndexEnumerate:
			for j := rlo; j < rhi; j++ {
				for i := 0; i < j; i++ {
					cands = append(cands, batch.CandidatePair{I: i, J: j})
				}
			}
		default:
			// The selected index is not maintained: build a throwaway one
			// over the snapshot positions, as batch.JoinIndexed would, and
			// probe only the range.
			cands = throwawayCandidates(ps, tau, mode, wantQ, rlo, rhi)
		}
		probeTime = time.Since(start)
	})

	start := time.Now()
	ms, st := e.JoinCandidates(ps, cands, tau)
	st.Mode = mode
	st.IndexTime = probeTime
	st.Elapsed = probeTime + time.Since(start)
	return c.toMatches(ids, ms), st
}

// throwawayCandidates builds a transient index over the whole snapshot
// (positions as ids) and probes only the [lo, hi) range — the range
// analogue of batch.JoinIndexed's per-call index build.
func throwawayCandidates(ps []*batch.PreparedTree, tau float64, mode batch.IndexMode, q int, lo, hi int) []batch.CandidatePair {
	var probe func(j int, buf []index.Candidate) []index.Candidate
	switch mode {
	case batch.IndexPQGram:
		ix := index.NewPQGram(1, q)
		for _, p := range ps {
			ix.Add(p.Tree())
		}
		probe = func(j int, buf []index.Candidate) []index.Candidate {
			return ix.CandidatesBelow(j, tau, buf)
		}
	default: // histogram, and any future mode resolved to it
		ix := index.NewHistogram()
		for _, p := range ps {
			ix.Add(p.Tree())
		}
		probe = func(j int, buf []index.Candidate) []index.Candidate {
			return ix.CandidatesBelow(j, tau, buf)
		}
	}
	var cands []batch.CandidatePair
	var buf []index.Candidate
	for j := lo; j < hi; j++ {
		buf = probe(j, buf)
		for _, cd := range buf {
			cands = append(cands, batch.CandidatePair{I: cd.ID, J: j, LB: cd.LB})
		}
	}
	return cands
}

// TopKRange is the [lo, hi) slice of TopKAcross: the k subtrees closest
// to query among the stored trees whose snapshot position falls in the
// range. Each range's result is its local top-k under the global order
// (distance, then stored ID, then root), so a coordinator that merges
// the per-range results and keeps the k best reconstructs TopKAcross's
// answer exactly: any global top-k entry ranks in the top k of its own
// range.
func (c *Corpus) TopKRange(e *batch.Engine, query *batch.PreparedTree, k, lo, hi int) ([]CrossMatch, batch.Stats) {
	c.checkEngine(e)
	ids, ps := c.snapshotPrepared(e, nil)
	if lo < 0 {
		lo = 0
	}
	if hi > len(ids) {
		hi = len(ids)
	}
	if lo >= hi {
		return nil, batch.Stats{}
	}
	ms, st := e.TopKAcross(query, ps[lo:hi], k)
	out := make([]CrossMatch, len(ms))
	for i, m := range ms {
		out[i] = CrossMatch{Tree: ids[lo+m.Tree], Root: m.Root, Dist: m.Dist}
	}
	return out, st
}
