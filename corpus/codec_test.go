package corpus_test

import (
	"bytes"
	"math"
	"testing"

	ted "repro"
	"repro/batch"
	"repro/corpus"
)

func buildCorpus(t *testing.T, opts ...corpus.Option) (*corpus.Corpus, []*ted.Tree) {
	t.Helper()
	trees := randomTrees(7, 14, 22)
	c := corpus.New(opts...)
	for _, tr := range trees {
		c.Add(tr)
	}
	// A mutation history, so tombstoned ids and ID gaps are part of what
	// round-trips.
	c.Delete(2)
	c.Replace(6, trees[0])
	return c, trees
}

func saveBytes(t *testing.T, c *corpus.Corpus) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// TestSaveLoadRoundTrip: a reloaded corpus holds identical trees under
// identical IDs, joins identically in every mode, and re-saves to the
// identical byte stream (the codec is deterministic).
func TestSaveLoadRoundTrip(t *testing.T) {
	c, _ := buildCorpus(t, corpus.WithHistogramIndex(), corpus.WithPQGramIndex(2))
	data := saveBytes(t, c)

	c2, err := corpus.Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("loaded %d trees, want %d", c2.Len(), c.Len())
	}
	if !c2.HasHistogramIndex() {
		t.Fatal("histogram index lost")
	}
	if q, ok := c2.HasPQGramIndex(); !ok || q != 2 {
		t.Fatalf("pq-gram index lost (q=%d ok=%v)", q, ok)
	}
	ids, ids2 := c.IDs(), c2.IDs()
	for i := range ids {
		if ids[i] != ids2[i] {
			t.Fatalf("IDs diverge: %v vs %v", ids, ids2)
		}
		a, _ := c.Tree(ids[i])
		b, _ := c2.Tree(ids[i])
		if a.String() != b.String() {
			t.Fatalf("tree %d differs after reload:\n%s\n%s", ids[i], a, b)
		}
	}
	// New Adds in the loaded corpus continue above every burned ID.
	tr, _ := c.Tree(ids[0])
	idA, idB := c.Add(tr), c2.Add(tr)
	if idA != idB {
		t.Fatalf("post-load Add assigned %d, original %d", idB, idA)
	}

	// Deterministic re-encode (after removing the extra tree again).
	c.Delete(idA)
	c2.Delete(idB)
	if !bytes.Equal(saveBytes(t, c), saveBytes(t, c2)) {
		t.Fatal("re-saved streams differ")
	}
}

// TestLoadJoinEquivalence is the acceptance pin: a corpus saved and
// reloaded in a fresh state joins bit-identically to the never-
// serialized corpus, across modes and thresholds.
func TestLoadJoinEquivalence(t *testing.T) {
	c, _ := buildCorpus(t, corpus.WithHistogramIndex(), corpus.WithPQGramIndex(2))
	c2, err := corpus.Load(bytes.NewReader(saveBytes(t, c)))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	e, e2 := c.Engine(), c2.Engine()
	for _, tau := range []float64{0, 4, 11.5, math.Inf(1)} {
		for _, mode := range []batch.IndexMode{batch.IndexEnumerate, batch.IndexHistogram, batch.IndexPQGram} {
			ms, _ := c.Join(e, tau, batch.JoinOptions{Mode: mode})
			ms2, _ := c2.Join(e2, tau, batch.JoinOptions{Mode: mode})
			if len(ms) != len(ms2) {
				t.Fatalf("tau=%v mode=%v: %d vs %d matches", tau, mode, len(ms), len(ms2))
			}
			for k := range ms {
				if ms[k] != ms2[k] {
					t.Fatalf("tau=%v mode=%v: match %d = %+v vs %+v", tau, mode, k, ms[k], ms2[k])
				}
			}
		}
	}
}

// TestLoadErrorsNeverPanic feeds the decoder every truncation of a valid
// stream plus assorted corruptions; each must produce an error, not a
// panic and not a bogus corpus.
func TestLoadErrorsNeverPanic(t *testing.T) {
	c, _ := buildCorpus(t, corpus.WithHistogramIndex())
	data := saveBytes(t, c)

	for cut := 0; cut < len(data); cut++ {
		if _, err := corpus.Load(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
	// The same contract for an index-less corpus: without index sections
	// the tree store is the final section, so a truncated last profile or
	// a torn "next id" must still surface the sticky decode error rather
	// than load as a smaller-but-plausible corpus.
	plain, _ := buildCorpus(t)
	plainData := saveBytes(t, plain)
	for cut := 0; cut < len(plainData); cut++ {
		if _, err := corpus.Load(bytes.NewReader(plainData[:cut])); err == nil {
			t.Fatalf("index-less truncation at %d bytes accepted", cut)
		}
	}
	// Trailing garbage.
	if _, err := corpus.Load(bytes.NewReader(append(append([]byte{}, data...), 0x00))); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Bad magic / version / flags.
	for _, mut := range []struct {
		off int
		val byte
	}{{0, 'X'}, {4, 99}, {5, 0xFF}} {
		bad := append([]byte{}, data...)
		bad[mut.off] = mut.val
		if _, err := corpus.Load(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at offset %d accepted", mut.off)
		}
	}
	// Single-byte corruptions must never panic (they may still decode —
	// e.g. a flipped bit inside a label — but most shift the framing).
	for off := 6; off < len(data); off += 7 {
		bad := append([]byte{}, data...)
		bad[off] ^= 0x55
		corpus.Load(bytes.NewReader(bad))
	}
	// SaveDir/LoadDir round trip.
	dir := t.TempDir()
	if err := c.SaveDir(dir); err != nil {
		t.Fatalf("SaveDir: %v", err)
	}
	c2, err := corpus.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("LoadDir returned %d trees, want %d", c2.Len(), c.Len())
	}
}
