package corpus

import (
	"math"
	"time"

	"repro/batch"
	"repro/index"
)

// Match is one similarity-join result: the trees stored under IDs I and
// J (I < J) are at edit distance Dist < tau (for a pair accepted by the
// upper-bound filter, Dist is that upper bound, still below tau).
type Match struct {
	I, J ID
	Dist float64
}

// Join computes the similarity self-join of the corpus on engine e: all
// unordered ID pairs at edit distance below tau. The engine must be
// corpus-attached (Corpus.Engine); every stored tree is hydrated from
// its artifacts, not re-prepared.
//
// Candidate generation follows opts.Mode as in batch.JoinIndexed, with
// one upgrade: when the corpus maintains the selected index
// (WithHistogramIndex / WithPQGramIndex), its persistent sharded
// posting lists are probed directly — no per-call index build — and the
// candidates run through batch.JoinCandidates. Otherwise the call falls
// back to batch.JoinIndexed's throwaway index (or plain enumeration).
// The match set is identical in every mode; under a non-unit cost model
// only unfiltered enumeration is available and opts.Mode is ignored.
//
// Results are deterministic and ordered by (I, J) — assuming no
// concurrent Add/Delete/Replace; mutations during a join are safe and
// the join reflects one consistent snapshot: the prepared trees and the
// maintained-index probes are captured under a single lock acquisition,
// so a Replace landing mid-join cannot suppress candidates for trees
// the snapshot still holds in their old form.
func (c *Corpus) Join(e *batch.Engine, tau float64, opts batch.JoinOptions) ([]Match, batch.JoinStats) {
	c.checkEngine(e)

	if !e.UnitCost() {
		ids, ps := c.snapshotPrepared(e, nil)
		ms, st := e.Join(ps, tau, false)
		return c.toMatches(ids, ms), st
	}

	wantQ := opts.Q
	if wantQ <= 0 {
		wantQ = 2
	}
	auto := opts.Mode == batch.IndexAuto

	// Mode resolution and index probing run inside the snapshot hook —
	// same lock acquisition as the prepared trees — so the candidates
	// describe exactly the trees being joined.
	var (
		mode      batch.IndexMode
		probed    bool
		cands     []batch.CandidatePair
		probeTime time.Duration
	)
	ids, ps := c.snapshotPrepared(e, func(ids []ID, ps []*batch.PreparedTree) {
		mode = opts.Mode
		if auto {
			mode = c.resolveAuto(ps, tau)
		}
		var probe func(q int, buf []index.Candidate) []index.Candidate
		switch {
		case mode == batch.IndexHistogram && c.hist != nil:
			probe = func(q int, buf []index.Candidate) []index.Candidate {
				return c.hist.CandidatesBelow(q, tau, buf)
			}
		// An auto-resolved pq-gram mode takes the maintained index at
		// whatever base length it was built with (any (1, q) generator is
		// complete); an explicit IndexPQGram request honors opts.Q.
		case mode == batch.IndexPQGram && c.pq != nil && (auto || c.pq.Q() == wantQ):
			probe = func(q int, buf []index.Candidate) []index.Candidate {
				return c.pq.CandidatesBelow(q, tau, buf)
			}
		}
		if probe == nil {
			return // no maintained index serves this mode
		}
		probed = true
		start := time.Now()
		pos := make(map[int]int, len(ids))
		for i, id := range ids {
			pos[int(id)] = i
		}
		var buf []index.Candidate
		for j, id := range ids {
			buf = probe(int(id), buf)
			for _, cd := range buf {
				i, ok := pos[cd.ID]
				if !ok {
					continue // tombstoned posting of a deleted tree
				}
				cands = append(cands, batch.CandidatePair{I: i, J: j, LB: cd.LB})
			}
		}
		probeTime = time.Since(start)
	})

	if !probed {
		// No maintained index serves this mode: let the engine enumerate
		// or build its own transient index over the positions.
		ms, st := e.JoinIndexed(ps, tau, batch.JoinOptions{Mode: mode, Q: opts.Q})
		return c.toMatches(ids, ms), st
	}

	start := time.Now()
	ms, st := e.JoinCandidates(ps, cands, tau)
	st.Mode = mode
	st.IndexTime = probeTime
	st.Elapsed = probeTime + time.Since(start)
	return c.toMatches(ids, ms), st
}

// resolveAuto picks the generator for IndexAuto: enumeration when tau is
// too large for any signature to prune, otherwise the best maintained
// index (histogram first — cheaper probes — then pq-gram), otherwise the
// histogram default of batch.JoinIndexed.
func (c *Corpus) resolveAuto(ps []*batch.PreparedTree, tau float64) batch.IndexMode {
	if math.IsInf(tau, 1) {
		return batch.IndexEnumerate
	}
	maxLen := 0
	for _, p := range ps {
		if p.Len() > maxLen {
			maxLen = p.Len()
		}
	}
	if tau >= float64(maxLen) {
		return batch.IndexEnumerate
	}
	if c.hist == nil && c.pq != nil {
		return batch.IndexPQGram
	}
	return batch.IndexHistogram
}

func (c *Corpus) toMatches(ids []ID, ms []batch.Match) []Match {
	out := make([]Match, len(ms))
	for k, m := range ms {
		out[k] = Match{I: ids[m.I], J: ids[m.J], Dist: m.Dist}
	}
	return out
}

// CrossMatch is one result of TopKAcross: the subtree rooted at
// postorder id Root of the stored tree Tree, at edit distance Dist from
// the query.
type CrossMatch struct {
	Tree ID
	Root int
	Dist float64
}

// TopKAcross finds the k subtrees closest to query across every stored
// tree, on engine e (corpus-attached). Stored trees hydrate from their
// artifacts; the query is prepared fresh. Semantics are those of
// batch.Engine.TopKAcross: results sorted by distance, ties toward
// smaller (Tree, Root), and each GTED run bounded by the running k-th
// best distance.
func (c *Corpus) TopKAcross(e *batch.Engine, query *batch.PreparedTree, k int) ([]CrossMatch, batch.Stats) {
	c.checkEngine(e)
	ids, ps := c.snapshotPrepared(e, nil)
	ms, st := e.TopKAcross(query, ps, k)
	out := make([]CrossMatch, len(ms))
	for i, m := range ms {
		out[i] = CrossMatch{Tree: ids[m.Tree], Root: m.Root, Dist: m.Dist}
	}
	return out, st
}
