//go:build !unix

package corpus

import "os"

// lockWAL is a no-op where flock is unavailable; the single-writer
// contract of Open is then by convention only.
func lockWAL(*os.File) error { return nil }
