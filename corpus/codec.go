package corpus

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/index"
	"repro/internal/bounds"
	"repro/internal/cost"
	"repro/internal/strategy"
	"repro/internal/tree"
)

// The corpus binary format, version 1. Everything multi-byte is an
// unsigned varint; strings are length-prefixed; label-valued fields
// reference the shared label table by id (branch triples use 0 for a
// missing position and id+1 otherwise).
//
//	"TEDC" | version u8 | flags u8 (bit0: histogram index, bit1: pq-gram index)
//	label table:  count, then per label: len, bytes
//	next ID, tree count
//	per tree (ascending id):
//	  id, n
//	  n × label id           (the tree, with its postorder child counts:)
//	  n × child count
//	  n × mirror-leafmost    (artifacts)
//	  3 × n × decomposition cardinality (A, FL, FR)
//	  profile flag u8; if 1: label histogram pairs, branch histogram entries
//	per maintained index (histogram, then pq-gram; pq-gram leads with p, q):
//	  key table: count, then per key: len, bytes
//	  next id, entry count
//	  per entry: id, size, profile length, pairs of (key id, count)
//
// The decoder returns an error — never panics — on malformed input, and
// allocates proportionally to bytes actually read (counts are sanity-
// capped and slices grow by append), so truncated or hostile streams
// fail fast instead of OOMing. That contract is pinned by
// FuzzCorpusDecode.

const (
	codecMagic   = "TEDC"
	codecVersion = 1

	flagHistogram = 1 << 0
	flagPQGram    = 1 << 1

	// Sanity caps: far above anything real, low enough that a hostile
	// count cannot drive super-linear work before the stream runs dry.
	maxLabels   = 1 << 24
	maxLabelLen = 1 << 20
	maxTrees    = 1 << 24
	maxNodes    = 1 << 26
	maxPostings = 1 << 28
)

// errCorrupt wraps a decode failure with stream position context.
var errCorrupt = errors.New("corpus: corrupt stream")

// Save writes the corpus — trees, label table, prepared artifacts and
// any maintained indexes — to w in the versioned binary format. A Load
// of the written bytes reproduces the corpus exactly: same IDs, same
// artifacts, same candidate generation. Lower-bound profiles are forced
// before writing so the persisted corpus never recomputes them.
func (c *Corpus) Save(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	ids := make([]ID, 0, len(c.entries))
	for id := range c.entries {
		ids = append(ids, id)
	}
	sortIDs(ids)
	// Lazy artifacts are forced now: the stream always carries them, so
	// a loaded corpus never recomputes what the saving process already
	// paid for.
	for _, id := range ids {
		en := c.entries[id]
		if en.prof == nil {
			en.prof = bounds.NewProfile(en.t)
		}
		if en.decomp == nil {
			en.decomp = strategy.NewDecomp(en.t)
		}
	}
	table := c.in.Table()
	labelID := make(map[string]uint64, len(table))
	for i, l := range table {
		labelID[l] = uint64(i)
	}

	e := &encoder{w: bufio.NewWriter(w)}
	e.raw([]byte(codecMagic))
	flags := byte(0)
	if c.hist != nil {
		flags |= flagHistogram
	}
	if c.pq != nil {
		flags |= flagPQGram
	}
	e.raw([]byte{codecVersion, flags})

	e.uv(uint64(len(table)))
	for _, l := range table {
		e.str(l)
	}
	e.uv(uint64(c.next))
	e.uv(uint64(len(ids)))
	for _, id := range ids {
		en := c.entries[id]
		n := en.t.Len()
		e.uv(uint64(id))
		e.uv(uint64(n))
		for _, lid := range en.ids {
			e.uv(uint64(lid))
		}
		for v := 0; v < n; v++ {
			e.uv(uint64(en.t.NumChildren(v)))
		}
		for _, m := range en.lfm {
			e.uv(uint64(m))
		}
		for _, a := range en.decomp.A {
			e.uv(uint64(a))
		}
		for _, a := range en.decomp.FL {
			e.uv(uint64(a))
		}
		for _, a := range en.decomp.FR {
			e.uv(uint64(a))
		}
		e.raw([]byte{1})
		lcs := en.prof.LabelCounts()
		e.uv(uint64(len(lcs)))
		for _, lc := range lcs {
			e.uv(labelID[lc.Label])
			e.uv(uint64(lc.Count))
		}
		bcs := en.prof.BranchCounts()
		e.uv(uint64(len(bcs)))
		for _, bc := range bcs {
			e.branchLabel(bc.Label, labelID)
			e.branchLabel(bc.FirstChild, labelID)
			e.branchLabel(bc.NextSibling, labelID)
			e.uv(uint64(bc.Count))
		}
	}
	if c.hist != nil {
		e.snapshot(c.hist.Snapshot())
	}
	if c.pq != nil {
		e.uv(uint64(1)) // stem length p; always 1 for maintained indexes
		e.uv(uint64(c.pq.Q()))
		e.snapshot(c.pq.Snapshot())
	}
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// SaveFile writes the corpus to path (created or truncated).
func (c *Corpus) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// corpusFileName is the file SaveDir/LoadDir use inside their directory.
const corpusFileName = "corpus.tedc"

// SaveDir writes the corpus into dir (created if missing) under the
// canonical file name, the layout LoadDir expects.
func (c *Corpus) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return c.SaveFile(filepath.Join(dir, corpusFileName))
}

// Load reads a corpus in the binary format from r. The result is
// equivalent to the saved corpus: same IDs and trees, artifacts decoded
// rather than recomputed (O(bytes) instead of O(prepare)), maintained
// indexes rebuilt from their persisted profiles with plain appends —
// no re-parsing, no re-hashing of grams, no re-sorting.
func Load(r io.Reader) (*Corpus, error) {
	d := &decoder{r: bufio.NewReader(r)}

	head := d.raw(6)
	if d.err != nil {
		return nil, d.fail("header")
	}
	if string(head[:4]) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %q", errCorrupt, head[:4])
	}
	if head[4] != codecVersion {
		return nil, fmt.Errorf("corpus: format version %d not supported (want %d)", head[4], codecVersion)
	}
	flags := head[5]
	if flags&^(flagHistogram|flagPQGram) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", errCorrupt, flags)
	}

	nLabels := d.count(maxLabels, "label table size")
	table := make([]string, 0, capHint(nLabels))
	for i := uint64(0); i < nLabels; i++ {
		table = append(table, d.str(maxLabelLen))
		if d.err != nil {
			return nil, d.fail("label table")
		}
	}
	in, err := cost.NewInternerFromTable(table)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}

	c := &Corpus{in: in, entries: make(map[ID]*entry)}
	next := d.count(math.MaxInt32, "next id")
	nTrees := d.count(maxTrees, "tree count")
	if nTrees > next {
		return nil, fmt.Errorf("%w: %d trees but next id %d", errCorrupt, nTrees, next)
	}
	c.next = ID(next)
	lastID := int64(-1)
	for ti := uint64(0); ti < nTrees; ti++ {
		id := int64(d.count(uint64(next), "tree id"))
		if d.err != nil {
			return nil, d.fail("tree id")
		}
		if id <= lastID || uint64(id) >= next {
			return nil, fmt.Errorf("%w: tree id %d out of order or beyond next id %d", errCorrupt, id, next)
		}
		lastID = id
		en, err := d.entry(table)
		if err != nil {
			return nil, err
		}
		c.entries[ID(id)] = en
	}

	if flags&flagHistogram != 0 {
		snap, err := d.indexSnapshot()
		if err != nil {
			return nil, err
		}
		c.hist, err = index.RestoreHistogram(snap)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errCorrupt, err)
		}
		if err := c.crossCheckIndex(c.hist.Len(), snap, "histogram"); err != nil {
			return nil, err
		}
	}
	if flags&flagPQGram != 0 {
		p := d.count(64, "pq-gram stem length")
		q := d.count(64, "pq-gram base length")
		snap, err := d.indexSnapshot()
		if err != nil {
			return nil, err
		}
		if p < 1 || q < 1 {
			return nil, fmt.Errorf("%w: pq-gram parameters (%d, %d)", errCorrupt, p, q)
		}
		c.pq, err = index.RestorePQGram(int(p), int(q), snap)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errCorrupt, err)
		}
		if err := c.crossCheckIndex(c.pq.Len(), snap, "pq-gram"); err != nil {
			return nil, err
		}
	}
	// The stream must end exactly here: trailing garbage means the
	// payload and the container disagree about what was written.
	if _, err := d.r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after corpus", errCorrupt)
	}
	return c, nil
}

// LoadFile reads a corpus from path.
func LoadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// LoadDir reads the corpus SaveDir wrote into dir.
func LoadDir(dir string) (*Corpus, error) {
	return LoadFile(filepath.Join(dir, corpusFileName))
}

// crossCheckIndex verifies that a restored index covers exactly the
// corpus's trees with the right sizes — an index drifting from its
// store would silently produce wrong join candidates.
func (c *Corpus) crossCheckIndex(liveCount int, snap *index.Snapshot, kind string) error {
	if liveCount != len(c.entries) {
		return fmt.Errorf("%w: %s index holds %d trees, corpus %d", errCorrupt, kind, liveCount, len(c.entries))
	}
	for _, se := range snap.Entries {
		en, ok := c.entries[ID(se.ID)]
		if !ok {
			return fmt.Errorf("%w: %s index entry %d has no corpus tree", errCorrupt, kind, se.ID)
		}
		if en.t.Len() != se.Size {
			return fmt.Errorf("%w: %s index entry %d has size %d, tree has %d nodes", errCorrupt, kind, se.ID, se.Size, en.t.Len())
		}
	}
	return nil
}

// ---- encoding ----

type encoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) raw(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) uv(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.raw(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uv(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

// branchLabel encodes a branch-triple position: 0 for missing, label
// id + 1 otherwise.
func (e *encoder) branchLabel(l string, labelID map[string]uint64) {
	if l == "" {
		// A genuinely empty label and a missing position collapse to the
		// same branch key either way, so 0 is faithful for both.
		e.uv(0)
		return
	}
	e.uv(labelID[l] + 1)
}

func (e *encoder) snapshot(s *index.Snapshot) {
	e.uv(uint64(len(s.Keys)))
	for _, k := range s.Keys {
		e.str(k)
	}
	e.uv(uint64(s.NextID))
	e.uv(uint64(len(s.Entries)))
	for _, se := range s.Entries {
		e.uv(uint64(se.ID))
		e.uv(uint64(se.Size))
		e.uv(uint64(len(se.Prof)))
		for _, kc := range se.Prof {
			e.uv(uint64(kc.Key))
			e.uv(uint64(kc.Count))
		}
	}
}

// ---- decoding ----

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) fail(what string) error {
	if d.err == nil {
		return nil
	}
	return fmt.Errorf("%w: %s: %v", errCorrupt, what, d.err)
}

func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
		return 0
	}
	return v
}

// count reads a uvarint and enforces an inclusive upper bound; the first
// violation poisons the decoder.
func (d *decoder) count(max uint64, what string) uint64 {
	v := d.uv()
	if d.err == nil && v > max {
		d.err = fmt.Errorf("%s %d exceeds limit %d", what, v, max)
	}
	if d.err != nil {
		return 0
	}
	return v
}

// idx reads a uvarint that must index into a table of the given size
// (strictly less than limit; limit 0 admits nothing).
func (d *decoder) idx(limit uint64, what string) uint64 {
	v := d.uv()
	if d.err == nil && v >= limit {
		d.err = fmt.Errorf("%s %d outside [0, %d)", what, v, limit)
	}
	if d.err != nil {
		return 0
	}
	return v
}

func (d *decoder) raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return nil
	}
	return b
}

func (d *decoder) str(maxLen uint64) string {
	n := d.count(maxLen, "string length")
	if d.err != nil {
		return ""
	}
	return string(d.raw(int(n)))
}

// capHint bounds an upfront allocation by what a short stream could
// actually back: slices start at min(claimed, 4096) and grow by append,
// so a hostile count allocates no faster than bytes arrive.
func capHint(n uint64) int {
	if n > 4096 {
		return 4096
	}
	return int(n)
}

// entry decodes one tree with its artifacts.
func (d *decoder) entry(table []string) (*entry, error) {
	n64 := d.count(maxNodes, "node count")
	if d.err != nil {
		return nil, d.fail("node count")
	}
	if n64 == 0 {
		return nil, fmt.Errorf("%w: zero-node tree", errCorrupt)
	}
	n := int(n64)

	ids := make([]int32, 0, capHint(n64))
	labels := make([]string, 0, capHint(n64))
	for v := 0; v < n; v++ {
		lid := d.idx(uint64(len(table)), "label id")
		if d.err != nil {
			return nil, d.fail("labels")
		}
		ids = append(ids, int32(lid))
		labels = append(labels, table[lid])
	}
	counts := make([]int, 0, capHint(n64))
	for v := 0; v < n; v++ {
		k := d.idx(uint64(n), "child count")
		if d.err != nil {
			return nil, d.fail("child counts")
		}
		counts = append(counts, int(k))
	}
	t, err := tree.FromPostorder(tree.PostorderForm{Labels: labels, ChildCounts: counts})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}

	lfm := make([]int32, 0, capHint(n64))
	for v := 0; v < n; v++ {
		m := d.idx(uint64(n), "mirror-leafmost id")
		if d.err != nil {
			return nil, d.fail("mirror-leafmost")
		}
		lfm = append(lfm, int32(m))
	}
	dec := &strategy.Decomp{T: t}
	for _, dst := range []*[]int64{&dec.A, &dec.FL, &dec.FR} {
		arr := make([]int64, 0, capHint(n64))
		for v := 0; v < n; v++ {
			a := d.count(math.MaxInt64, "decomposition cardinality")
			if d.err != nil {
				return nil, d.fail("decomposition")
			}
			arr = append(arr, int64(a))
		}
		*dst = arr
	}

	en := &entry{t: t, ids: ids, lfm: lfm, decomp: dec}
	hasProf := d.raw(1)
	if d.err != nil {
		return nil, d.fail("profile flag")
	}
	switch hasProf[0] {
	case 0:
	case 1:
		nl := d.count(uint64(n), "profile label entries")
		lcs := make([]bounds.LabelCount, 0, capHint(nl))
		for i := uint64(0); i < nl; i++ {
			lid := d.idx(uint64(len(table)), "profile label id")
			cnt := d.count(uint64(n), "profile label count")
			if d.err != nil {
				return nil, d.fail("profile labels")
			}
			if cnt == 0 {
				return nil, fmt.Errorf("%w: zero profile label count", errCorrupt)
			}
			lcs = append(lcs, bounds.LabelCount{Label: table[lid], Count: int(cnt)})
		}
		nb := d.count(uint64(n), "profile branch entries")
		bcs := make([]bounds.BranchCount, 0, capHint(nb))
		for i := uint64(0); i < nb; i++ {
			var bc bounds.BranchCount
			var err error
			if bc.Label, err = d.branchLabel(table); err != nil {
				return nil, err
			}
			if bc.FirstChild, err = d.branchLabel(table); err != nil {
				return nil, err
			}
			if bc.NextSibling, err = d.branchLabel(table); err != nil {
				return nil, err
			}
			cnt := d.count(uint64(n), "profile branch count")
			if d.err != nil {
				return nil, d.fail("profile branches")
			}
			if cnt == 0 {
				return nil, fmt.Errorf("%w: zero profile branch count", errCorrupt)
			}
			bc.Count = int(cnt)
			bcs = append(bcs, bc)
		}
		en.prof = bounds.RestoreProfile(t, lcs, bcs)
	default:
		return nil, fmt.Errorf("%w: profile flag %d", errCorrupt, hasProf[0])
	}
	return en, nil
}

func (d *decoder) branchLabel(table []string) (string, error) {
	v := d.count(uint64(len(table)), "branch label id")
	if d.err != nil {
		return "", d.fail("branch label")
	}
	if v == 0 {
		return "", nil
	}
	return table[v-1], nil
}

func (d *decoder) indexSnapshot() (*index.Snapshot, error) {
	nKeys := d.count(maxPostings, "index key count")
	keys := make([]string, 0, capHint(nKeys))
	for i := uint64(0); i < nKeys; i++ {
		keys = append(keys, d.str(maxLabelLen))
		if d.err != nil {
			return nil, d.fail("index keys")
		}
	}
	nextID := d.count(math.MaxInt32, "index next id")
	nEntries := d.count(maxTrees, "index entry count")
	if d.err != nil {
		return nil, d.fail("index header")
	}
	s := &index.Snapshot{Keys: keys, NextID: int(nextID)}
	for i := uint64(0); i < nEntries; i++ {
		id := d.count(math.MaxInt32, "index entry id")
		size := d.count(maxNodes, "index entry size")
		profLen := d.count(maxPostings, "index profile length")
		if d.err != nil {
			return nil, d.fail("index entry")
		}
		prof := make([]index.KeyCount, 0, capHint(profLen))
		for k := uint64(0); k < profLen; k++ {
			key := d.count(math.MaxInt32, "index key id")
			cnt := d.count(math.MaxInt32, "index key count")
			if d.err != nil {
				return nil, d.fail("index profile")
			}
			prof = append(prof, index.KeyCount{Key: int32(key), Count: int32(cnt)})
		}
		s.Entries = append(s.Entries, index.SnapshotEntry{ID: int(id), Size: int(size), Prof: prof})
	}
	return s, nil
}

func sortIDs(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
