package corpus

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/index"
	"repro/internal/bounds"
	"repro/internal/cost"
	"repro/internal/strategy"
	"repro/internal/tree"
)

// The corpus binary format, version 2. Everything multi-byte is an
// unsigned varint; strings are length-prefixed; label-valued fields
// reference the shared label table by id (branch triples use 0 for a
// missing position and id+1 otherwise).
//
//	"TEDC" | version u8 | flags u8 (bit0: histogram index, bit1: pq-gram
//	                                index, bit2: section checksums)
//	label table:  count, then per label: len, bytes          | [crc32]
//	next ID, tree count
//	per tree (ascending id):
//	  id, n
//	  n × label id           (the tree, with its postorder child counts:)
//	  n × child count
//	  n × mirror-leafmost    (artifacts)
//	  3 × n × decomposition cardinality (A, FL, FR)
//	  profile flag u8; if 1: label histogram pairs, branch histogram
//	  entries                                                | [crc32]
//	per maintained index (histogram, then pq-gram; pq-gram leads with p, q):
//	  key table: count, then per key: len, bytes
//	  next id, entry count
//	  per entry: id, size, profile length, pairs of (key id, count)
//	                                                         | [crc32]
//
// Version 2 adds the bit2 flag: when set, every section (label table,
// tree store, each index) is followed by the IEEE CRC32 of its encoded
// bytes as four little-endian raw bytes, so bit rot anywhere in a
// section is detected at Load instead of surfacing as a subtly wrong
// corpus. Save always writes version 2 with checksums; the decoder still
// accepts checksum-less version 1 streams byte for byte (pinned by
// TestCodecV1BackwardCompat).
//
// The decoder returns an error — never panics — on malformed input, and
// allocates proportionally to bytes actually read (counts are sanity-
// capped and slices grow by append), so truncated or hostile streams
// fail fast instead of OOMing. That contract is pinned by
// FuzzCorpusDecode.

const (
	codecMagic     = "TEDC"
	codecVersion   = 2
	codecVersionV1 = 1

	flagHistogram = 1 << 0
	flagPQGram    = 1 << 1
	flagChecksums = 1 << 2

	// Sanity caps: far above anything real, low enough that a hostile
	// count cannot drive super-linear work before the stream runs dry.
	maxLabels   = 1 << 24
	maxLabelLen = 1 << 20
	maxTrees    = 1 << 24
	maxNodes    = 1 << 26
	maxPostings = 1 << 28
)

// errCorrupt wraps a decode failure with stream position context.
var errCorrupt = errors.New("corpus: corrupt stream")

// Save writes the corpus — trees, label table, prepared artifacts and
// any maintained indexes — to w in the versioned binary format (version
// 2, with per-section checksums). A Load of the written bytes reproduces
// the corpus exactly: same IDs, same artifacts, same candidate
// generation. Lower-bound profiles are forced before writing so the
// persisted corpus never recomputes them.
func (c *Corpus) Save(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveLocked(w, codecVersion)
}

// saveLocked is Save without the locking, at an explicit format version
// (the v1 path exists only so the backward-compat test can produce real
// v1 streams). Callers hold c.mu; Checkpoint calls this mid-critical-
// section so no mutation can slip between the snapshot and the log
// truncation.
func (c *Corpus) saveLocked(w io.Writer, version byte) error {
	ids := make([]ID, 0, len(c.entries))
	for id := range c.entries {
		ids = append(ids, id)
	}
	sortIDs(ids)
	// Lazy artifacts are forced now: the stream always carries them, so
	// a loaded corpus never recomputes what the saving process already
	// paid for.
	for _, id := range ids {
		en := c.entries[id]
		if en.prof == nil {
			en.prof = bounds.NewProfile(en.t)
		}
		if en.decomp == nil {
			en.decomp = strategy.NewDecomp(en.t)
		}
	}
	table := c.in.Table()
	labelID := make(map[string]uint64, len(table))
	for i, l := range table {
		labelID[l] = uint64(i)
	}

	e := &encoder{w: bufio.NewWriter(w), sums: version >= codecVersion}
	e.raw([]byte(codecMagic))
	flags := byte(0)
	if c.hist != nil {
		flags |= flagHistogram
	}
	if c.pq != nil {
		flags |= flagPQGram
	}
	if e.sums {
		flags |= flagChecksums
	}
	e.raw([]byte{version, flags})
	e.crc = 0 // the header authenticates itself; sections start here

	e.uv(uint64(len(table)))
	for _, l := range table {
		e.str(l)
	}
	e.sectionEnd()
	e.uv(uint64(c.next))
	e.uv(uint64(len(ids)))
	for _, id := range ids {
		en := c.entries[id]
		n := en.t.Len()
		e.uv(uint64(id))
		e.uv(uint64(n))
		for _, lid := range en.ids {
			e.uv(uint64(lid))
		}
		for v := 0; v < n; v++ {
			e.uv(uint64(en.t.NumChildren(v)))
		}
		for _, m := range en.lfm {
			e.uv(uint64(m))
		}
		for _, a := range en.decomp.A {
			e.uv(uint64(a))
		}
		for _, a := range en.decomp.FL {
			e.uv(uint64(a))
		}
		for _, a := range en.decomp.FR {
			e.uv(uint64(a))
		}
		e.raw([]byte{1})
		lcs := en.prof.LabelCounts()
		e.uv(uint64(len(lcs)))
		for _, lc := range lcs {
			e.uv(labelID[lc.Label])
			e.uv(uint64(lc.Count))
		}
		bcs := en.prof.BranchCounts()
		e.uv(uint64(len(bcs)))
		for _, bc := range bcs {
			e.branchLabel(bc.Label, labelID)
			e.branchLabel(bc.FirstChild, labelID)
			e.branchLabel(bc.NextSibling, labelID)
			e.uv(uint64(bc.Count))
		}
	}
	e.sectionEnd()
	if c.hist != nil {
		e.snapshot(c.hist.Snapshot())
		e.sectionEnd()
	}
	if c.pq != nil {
		e.uv(uint64(1)) // stem length p; always 1 for maintained indexes
		e.uv(uint64(c.pq.Q()))
		e.snapshot(c.pq.Snapshot())
		e.sectionEnd()
	}
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// SaveFile writes the corpus to path (created or truncated). On a corpus
// opened with Open, saving to the attached snapshot path is a
// Checkpoint: the snapshot is replaced atomically and the write-ahead
// log truncated with it. (Paths are compared after cleaning and
// absolutizing, so "./data/c.tedc" routes to the checkpoint of
// "data/c.tedc"; a symlink alias of the attached path is not detected
// and would overwrite the snapshot non-atomically — name the snapshot
// the way Open did.)
func (c *Corpus) SaveFile(path string) error {
	c.mu.Lock()
	toAttached := c.wal != nil && samePath(path, c.snapPath)
	closed := toAttached && c.wal.isClosed()
	c.mu.Unlock()
	if toAttached && !closed {
		return c.Checkpoint()
	}
	if closed {
		// After Close the checkpoint machinery is gone, but this path is
		// still the one the sidecar log will replay over, so the write
		// must stay atomic (temp + fsync + rename): a crash mid-write
		// must never leave a half-snapshot that makes the acknowledged
		// log records unreachable. The surviving log is a subset of the
		// state being written, and replay is idempotent. (This mirrors
		// the replace protocol of swapSnapshotLocked in wal.go — change
		// one, change both.)
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			return err
		}
		tmp := path + ".tmp"
		if err := writeFileSync(tmp, buf.Bytes()); err != nil {
			os.Remove(tmp)
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return err
		}
		return syncDir(filepath.Dir(path))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// samePath reports whether two paths name the same file after cleaning
// and absolutizing (symlinks are not chased; see SaveFile).
func samePath(a, b string) bool {
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	if errA != nil || errB != nil {
		return filepath.Clean(a) == filepath.Clean(b)
	}
	return aa == bb
}

// corpusFileName is the file SaveDir/LoadDir use inside their directory.
const corpusFileName = "corpus.tedc"

// SaveDir writes the corpus into dir (created if missing) under the
// canonical file name, the layout LoadDir expects.
func (c *Corpus) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return c.SaveFile(filepath.Join(dir, corpusFileName))
}

// Load reads a corpus in the binary format from r. The result is
// equivalent to the saved corpus: same IDs and trees, artifacts decoded
// rather than recomputed (O(bytes) instead of O(prepare)), maintained
// indexes rebuilt from their persisted profiles with plain appends —
// no re-parsing, no re-hashing of grams, no re-sorting.
func Load(r io.Reader) (*Corpus, error) {
	d := &decoder{r: &crcReader{r: bufio.NewReader(r)}}

	head := d.raw(6)
	if d.err != nil {
		return nil, d.fail("header")
	}
	if string(head[:4]) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %q", errCorrupt, head[:4])
	}
	if head[4] != codecVersion && head[4] != codecVersionV1 {
		return nil, fmt.Errorf("corpus: format version %d not supported (want %d or %d)", head[4], codecVersionV1, codecVersion)
	}
	flags := head[5]
	known := byte(flagHistogram | flagPQGram)
	if head[4] >= codecVersion {
		known |= flagChecksums
	}
	if flags&^known != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", errCorrupt, flags)
	}
	d.r.sums = flags&flagChecksums != 0
	d.r.state = crcInit

	nLabels := d.count(maxLabels, "label table size")
	table := make([]string, 0, capHint(nLabels))
	for i := uint64(0); i < nLabels; i++ {
		table = append(table, d.str(maxLabelLen))
		if d.err != nil {
			return nil, d.fail("label table")
		}
	}
	if err := d.sectionCheck("label table"); err != nil {
		return nil, err
	}
	in, err := cost.NewInternerFromTable(table)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}

	c := &Corpus{in: in, entries: make(map[ID]*entry)}
	next := d.count(math.MaxInt32, "next id")
	nTrees := d.count(maxTrees, "tree count")
	if nTrees > next {
		return nil, fmt.Errorf("%w: %d trees but next id %d", errCorrupt, nTrees, next)
	}
	c.next = ID(next)
	lastID := int64(-1)
	for ti := uint64(0); ti < nTrees; ti++ {
		id := int64(d.count(uint64(next), "tree id"))
		if d.err != nil {
			return nil, d.fail("tree id")
		}
		if id <= lastID || uint64(id) >= next {
			return nil, fmt.Errorf("%w: tree id %d out of order or beyond next id %d", errCorrupt, id, next)
		}
		lastID = id
		en, err := d.entry(table)
		if err != nil {
			return nil, err
		}
		c.entries[ID(id)] = en
	}
	if err := d.sectionCheck("tree store"); err != nil {
		return nil, err
	}

	if flags&flagHistogram != 0 {
		snap, err := d.indexSnapshot()
		if err != nil {
			return nil, err
		}
		if err := d.sectionCheck("histogram index"); err != nil {
			return nil, err
		}
		c.hist, err = index.RestoreHistogram(snap)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errCorrupt, err)
		}
		if err := c.crossCheckIndex(c.hist.Len(), snap, "histogram"); err != nil {
			return nil, err
		}
	}
	if flags&flagPQGram != 0 {
		p := d.count(64, "pq-gram stem length")
		q := d.count(64, "pq-gram base length")
		snap, err := d.indexSnapshot()
		if err != nil {
			return nil, err
		}
		if err := d.sectionCheck("pq-gram index"); err != nil {
			return nil, err
		}
		if p < 1 || q < 1 {
			return nil, fmt.Errorf("%w: pq-gram parameters (%d, %d)", errCorrupt, p, q)
		}
		c.pq, err = index.RestorePQGram(int(p), int(q), snap)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errCorrupt, err)
		}
		if err := c.crossCheckIndex(c.pq.Len(), snap, "pq-gram"); err != nil {
			return nil, err
		}
	}
	// A sticky decode error may have been swallowed structurally (a
	// truncated final profile leaves entry() with empty loops, a torn
	// "next id" leaves zero trees to decode): nothing that poisoned the
	// decoder may load as a smaller-but-valid corpus.
	if d.err != nil {
		return nil, d.fail("corpus")
	}
	// The stream must end exactly here: trailing garbage means the
	// payload and the container disagree about what was written.
	if _, err := d.r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after corpus", errCorrupt)
	}
	return c, nil
}

// LoadFile reads a corpus from path.
func LoadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// LoadDir reads the corpus SaveDir wrote into dir.
func LoadDir(dir string) (*Corpus, error) {
	return LoadFile(filepath.Join(dir, corpusFileName))
}

// crossCheckIndex verifies that a restored index covers exactly the
// corpus's trees with the right sizes — an index drifting from its
// store would silently produce wrong join candidates.
func (c *Corpus) crossCheckIndex(liveCount int, snap *index.Snapshot, kind string) error {
	if liveCount != len(c.entries) {
		return fmt.Errorf("%w: %s index holds %d trees, corpus %d", errCorrupt, kind, liveCount, len(c.entries))
	}
	for _, se := range snap.Entries {
		en, ok := c.entries[ID(se.ID)]
		if !ok {
			return fmt.Errorf("%w: %s index entry %d has no corpus tree", errCorrupt, kind, se.ID)
		}
		if en.t.Len() != se.Size {
			return fmt.Errorf("%w: %s index entry %d has size %d, tree has %d nodes", errCorrupt, kind, se.ID, se.Size, en.t.Len())
		}
	}
	return nil
}

// ---- encoding ----

type encoder struct {
	w    *bufio.Writer
	buf  [binary.MaxVarintLen64]byte
	err  error
	sums bool
	crc  uint32 // running IEEE CRC32 of the current section
}

func (e *encoder) raw(b []byte) {
	if e.err == nil {
		if e.sums {
			e.crc = crc32.Update(e.crc, crc32.IEEETable, b)
		}
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) uv(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.raw(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uv(uint64(len(s)))
	if e.err == nil {
		if e.sums {
			e.crc = crc32.Update(e.crc, crc32.IEEETable, []byte(s))
		}
		_, e.err = e.w.WriteString(s)
	}
}

// sectionEnd closes a checksummed section: the running CRC32 is written
// as four raw little-endian bytes (authenticating the section, not part
// of the next one) and the accumulator resets. A no-op for v1 streams.
func (e *encoder) sectionEnd() {
	if !e.sums || e.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], e.crc)
	_, e.err = e.w.Write(b[:])
	e.crc = 0
}

// branchLabel encodes a branch-triple position: 0 for missing, label
// id + 1 otherwise.
func (e *encoder) branchLabel(l string, labelID map[string]uint64) {
	if l == "" {
		// A genuinely empty label and a missing position collapse to the
		// same branch key either way, so 0 is faithful for both.
		e.uv(0)
		return
	}
	e.uv(labelID[l] + 1)
}

func (e *encoder) snapshot(s *index.Snapshot) {
	e.uv(uint64(len(s.Keys)))
	for _, k := range s.Keys {
		e.str(k)
	}
	e.uv(uint64(s.NextID))
	e.uv(uint64(len(s.Entries)))
	for _, se := range s.Entries {
		e.uv(uint64(se.ID))
		e.uv(uint64(se.Size))
		e.uv(uint64(len(se.Prof)))
		for _, kc := range se.Prof {
			e.uv(uint64(kc.Key))
			e.uv(uint64(kc.Count))
		}
	}
}

// ---- decoding ----

type decoder struct {
	r   *crcReader
	err error
}

// crcReader wraps the buffered input so every byte the decoder consumes
// runs through the running section checksum. It implements io.Reader and
// io.ByteReader, which is all binary.ReadUvarint and io.ReadFull need.
//
// state holds the raw (pre-inversion) CRC32 accumulator, so the
// byte-at-a-time path of the varint-heavy decode is one table lookup —
// calling crc32.Update per byte would pay the generic slice-update
// setup thousands of times and measurably slow Load down.
type crcReader struct {
	r     *bufio.Reader
	sums  bool
	state uint32
}

// crcInit is the raw accumulator at a section start (^0: Go's Update
// inverts on entry and exit; we keep the inverted state between bytes).
const crcInit = ^uint32(0)

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if cr.sums && n > 0 {
		cr.state = ^crc32.Update(^cr.state, crc32.IEEETable, p[:n])
	}
	return n, err
}

func (cr *crcReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if cr.sums && err == nil {
		cr.state = crc32.IEEETable[byte(cr.state)^b] ^ (cr.state >> 8)
	}
	return b, err
}

// sectionCheck closes a checksummed section on the decode side: the four
// stored CRC bytes are read outside the checksum stream and compared to
// the accumulator. A no-op on v1 streams.
func (d *decoder) sectionCheck(what string) error {
	if !d.r.sums || d.err != nil {
		return nil
	}
	var b [4]byte
	if _, err := io.ReadFull(d.r.r, b[:]); err != nil {
		return fmt.Errorf("%w: %s checksum: %v", errCorrupt, what, err)
	}
	want := binary.LittleEndian.Uint32(b[:])
	if got := ^d.r.state; got != want {
		return fmt.Errorf("%w: %s checksum mismatch (stored %08x, computed %08x)", errCorrupt, what, want, got)
	}
	d.r.state = crcInit
	return nil
}

func (d *decoder) fail(what string) error {
	if d.err == nil {
		return nil
	}
	return fmt.Errorf("%w: %s: %v", errCorrupt, what, d.err)
}

func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
		return 0
	}
	return v
}

// count reads a uvarint and enforces an inclusive upper bound; the first
// violation poisons the decoder.
func (d *decoder) count(max uint64, what string) uint64 {
	v := d.uv()
	if d.err == nil && v > max {
		d.err = fmt.Errorf("%s %d exceeds limit %d", what, v, max)
	}
	if d.err != nil {
		return 0
	}
	return v
}

// idx reads a uvarint that must index into a table of the given size
// (strictly less than limit; limit 0 admits nothing).
func (d *decoder) idx(limit uint64, what string) uint64 {
	v := d.uv()
	if d.err == nil && v >= limit {
		d.err = fmt.Errorf("%s %d outside [0, %d)", what, v, limit)
	}
	if d.err != nil {
		return 0
	}
	return v
}

func (d *decoder) raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return nil
	}
	return b
}

func (d *decoder) str(maxLen uint64) string {
	n := d.count(maxLen, "string length")
	if d.err != nil {
		return ""
	}
	return string(d.raw(int(n)))
}

// capHint bounds an upfront allocation by what a short stream could
// actually back: slices start at min(claimed, 4096) and grow by append,
// so a hostile count allocates no faster than bytes arrive.
func capHint(n uint64) int {
	if n > 4096 {
		return 4096
	}
	return int(n)
}

// entry decodes one tree with its artifacts.
func (d *decoder) entry(table []string) (*entry, error) {
	n64 := d.count(maxNodes, "node count")
	if d.err != nil {
		return nil, d.fail("node count")
	}
	if n64 == 0 {
		return nil, fmt.Errorf("%w: zero-node tree", errCorrupt)
	}
	n := int(n64)

	ids := make([]int32, 0, capHint(n64))
	labels := make([]string, 0, capHint(n64))
	for v := 0; v < n; v++ {
		lid := d.idx(uint64(len(table)), "label id")
		if d.err != nil {
			return nil, d.fail("labels")
		}
		ids = append(ids, int32(lid))
		labels = append(labels, table[lid])
	}
	counts := make([]int, 0, capHint(n64))
	for v := 0; v < n; v++ {
		k := d.idx(uint64(n), "child count")
		if d.err != nil {
			return nil, d.fail("child counts")
		}
		counts = append(counts, int(k))
	}
	t, err := tree.FromPostorder(tree.PostorderForm{Labels: labels, ChildCounts: counts})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}

	lfm := make([]int32, 0, capHint(n64))
	for v := 0; v < n; v++ {
		m := d.idx(uint64(n), "mirror-leafmost id")
		if d.err != nil {
			return nil, d.fail("mirror-leafmost")
		}
		lfm = append(lfm, int32(m))
	}
	dec := &strategy.Decomp{T: t}
	for _, dst := range []*[]int64{&dec.A, &dec.FL, &dec.FR} {
		arr := make([]int64, 0, capHint(n64))
		for v := 0; v < n; v++ {
			a := d.count(math.MaxInt64, "decomposition cardinality")
			if d.err != nil {
				return nil, d.fail("decomposition")
			}
			arr = append(arr, int64(a))
		}
		*dst = arr
	}

	en := &entry{t: t, ids: ids, lfm: lfm, decomp: dec}
	hasProf := d.raw(1)
	if d.err != nil {
		return nil, d.fail("profile flag")
	}
	switch hasProf[0] {
	case 0:
	case 1:
		nl := d.count(uint64(n), "profile label entries")
		lcs := make([]bounds.LabelCount, 0, capHint(nl))
		for i := uint64(0); i < nl; i++ {
			lid := d.idx(uint64(len(table)), "profile label id")
			cnt := d.count(uint64(n), "profile label count")
			if d.err != nil {
				return nil, d.fail("profile labels")
			}
			if cnt == 0 {
				return nil, fmt.Errorf("%w: zero profile label count", errCorrupt)
			}
			lcs = append(lcs, bounds.LabelCount{Label: table[lid], Count: int(cnt)})
		}
		nb := d.count(uint64(n), "profile branch entries")
		bcs := make([]bounds.BranchCount, 0, capHint(nb))
		for i := uint64(0); i < nb; i++ {
			var bc bounds.BranchCount
			var err error
			if bc.Label, err = d.branchLabel(table); err != nil {
				return nil, err
			}
			if bc.FirstChild, err = d.branchLabel(table); err != nil {
				return nil, err
			}
			if bc.NextSibling, err = d.branchLabel(table); err != nil {
				return nil, err
			}
			cnt := d.count(uint64(n), "profile branch count")
			if d.err != nil {
				return nil, d.fail("profile branches")
			}
			if cnt == 0 {
				return nil, fmt.Errorf("%w: zero profile branch count", errCorrupt)
			}
			bc.Count = int(cnt)
			bcs = append(bcs, bc)
		}
		en.prof = bounds.RestoreProfile(t, lcs, bcs)
	default:
		return nil, fmt.Errorf("%w: profile flag %d", errCorrupt, hasProf[0])
	}
	return en, nil
}

func (d *decoder) branchLabel(table []string) (string, error) {
	v := d.count(uint64(len(table)), "branch label id")
	if d.err != nil {
		return "", d.fail("branch label")
	}
	if v == 0 {
		return "", nil
	}
	return table[v-1], nil
}

func (d *decoder) indexSnapshot() (*index.Snapshot, error) {
	nKeys := d.count(maxPostings, "index key count")
	keys := make([]string, 0, capHint(nKeys))
	for i := uint64(0); i < nKeys; i++ {
		keys = append(keys, d.str(maxLabelLen))
		if d.err != nil {
			return nil, d.fail("index keys")
		}
	}
	nextID := d.count(math.MaxInt32, "index next id")
	nEntries := d.count(maxTrees, "index entry count")
	if d.err != nil {
		return nil, d.fail("index header")
	}
	s := &index.Snapshot{Keys: keys, NextID: int(nextID)}
	for i := uint64(0); i < nEntries; i++ {
		id := d.count(math.MaxInt32, "index entry id")
		size := d.count(maxNodes, "index entry size")
		profLen := d.count(maxPostings, "index profile length")
		if d.err != nil {
			return nil, d.fail("index entry")
		}
		prof := make([]index.KeyCount, 0, capHint(profLen))
		for k := uint64(0); k < profLen; k++ {
			key := d.count(math.MaxInt32, "index key id")
			cnt := d.count(math.MaxInt32, "index key count")
			if d.err != nil {
				return nil, d.fail("index profile")
			}
			prof = append(prof, index.KeyCount{Key: int32(key), Count: int32(cnt)})
		}
		s.Entries = append(s.Entries, index.SnapshotEntry{ID: int(id), Size: int(size), Prof: prof})
	}
	return s, nil
}

func sortIDs(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
