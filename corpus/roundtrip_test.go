package corpus_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	ted "repro"
	"repro/batch"
	"repro/corpus"
	"repro/gen"
)

// corpora builds three collections, one per ingestion format, so the
// round-trip property covers every parser's label alphabet: bracket
// trees with an escaped-character label, Newick phylogenies (empty
// internal labels), and XML documents (attribute and text nodes).
func corpora(t *testing.T) map[string][]*ted.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(31))

	var bracket []*ted.Tree
	bracket = append(bracket, ted.MustParse(`{we\{ird{a}{b}}`))
	for i := 0; i < 9; i++ {
		base := gen.Random(rng.Int63(), gen.RandomSpec{
			Size: 4 + rng.Intn(20), MaxDepth: 7, MaxFanout: 4, Labels: 5,
		})
		bracket = append(bracket, base)
		if i%2 == 0 {
			bracket = append(bracket, gen.RenameSome(base, 1+i/3, rng.Int63()))
		}
	}

	newickSrc := []string{
		"(A,B,(C,D));",
		"(A,B,(C,E));",
		"((raccoon:19.2,bear:6.8):0.85,((sea_lion:12, seal:12):7.5,dog:25):2,weasel:18);",
		"((raccoon:19.2,bear:6.8):0.85,((sea_lion:12, seal:11):7.5,wolf:25):2,weasel:18);",
		"('quoted name',(B,C)inner)root;",
		"(A,(B,(C,(D,(E)))));",
	}
	var newick []*ted.Tree
	for _, s := range newickSrc {
		tr, err := ted.ParseNewick(s)
		if err != nil {
			t.Fatalf("newick %q: %v", s, err)
		}
		newick = append(newick, tr)
	}

	xmlSrc := []string{
		`<library><book id="1"><title>TED</title></book><book id="2"/></library>`,
		`<library><book id="1"><title>RTED</title></book><book id="3"/></library>`,
		`<a><b x="1">text</b><c><d/><d/></c></a>`,
		`<a><b x="2">text</b><c><d/></c></a>`,
		`<r>only text</r>`,
	}
	var xmls []*ted.Tree
	for _, s := range xmlSrc {
		tr, err := ted.FromXML(strings.NewReader(s), ted.XMLOptions{IncludeAttributes: true, IncludeText: true})
		if err != nil {
			t.Fatalf("xml %q: %v", s, err)
		}
		xmls = append(xmls, tr)
	}
	return map[string][]*ted.Tree{"bracket": bracket, "newick": newick, "xml": xmls}
}

// TestRoundTripProperty is the satellite property test: for corpora from
// every ingestion format, Save → Load → JoinIndexed produces bit-
// identical match sets and distances to the never-serialized corpus,
// across histogram and pq-gram candidate generation and tau ∈
// {0, finite, +Inf}.
func TestRoundTripProperty(t *testing.T) {
	for name, trees := range corpora(t) {
		t.Run(name, func(t *testing.T) {
			c := corpus.New(corpus.WithHistogramIndex(), corpus.WithPQGramIndex(2))
			for _, tr := range trees {
				c.Add(tr)
			}
			var buf bytes.Buffer
			if err := c.Save(&buf); err != nil {
				t.Fatalf("Save: %v", err)
			}
			c2, err := corpus.Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			e, e2 := c.Engine(), c2.Engine()
			finite := 1 + float64(trees[0].Len())/2
			for _, tau := range []float64{0, finite, math.Inf(1)} {
				for _, mode := range []batch.IndexMode{batch.IndexHistogram, batch.IndexPQGram} {
					label := fmt.Sprintf("tau=%v mode=%v", tau, mode)
					ms, _ := c.Join(e, tau, batch.JoinOptions{Mode: mode})
					ms2, _ := c2.Join(e2, tau, batch.JoinOptions{Mode: mode})
					if len(ms) != len(ms2) {
						t.Fatalf("%s: %d vs %d matches", label, len(ms), len(ms2))
					}
					for k := range ms {
						if ms[k] != ms2[k] {
							t.Fatalf("%s: match %d = %+v (in-memory) vs %+v (reloaded)", label, k, ms[k], ms2[k])
						}
					}
				}
			}
		})
	}
}
