package corpus_test

import (
	"math"
	"math/rand"
	"testing"

	ted "repro"
	"repro/batch"
	"repro/corpus"
	"repro/gen"
)

func randomTrees(seed int64, n, size int) []*ted.Tree {
	rng := rand.New(rand.NewSource(seed))
	out := []*ted.Tree{
		gen.LeftBranch(size),
		gen.FullBinary(size),
	}
	for len(out) < n {
		base := gen.Random(rng.Int63(), gen.RandomSpec{
			Size: 1 + rng.Intn(size), MaxDepth: 8, MaxFanout: 5, Labels: 6,
		})
		out = append(out, base)
		if len(out) < n {
			out = append(out, gen.RenameSome(base, 2, rng.Int63()))
		}
	}
	return out
}

func TestCorpusStoreSemantics(t *testing.T) {
	trees := randomTrees(1, 10, 20)
	c := corpus.New(corpus.WithHistogramIndex())
	var ids []corpus.ID
	for _, tr := range trees {
		ids = append(ids, c.Add(tr))
	}
	for i, id := range ids {
		if int64(id) != int64(i) {
			t.Fatalf("Add assigned id %d, want %d", id, i)
		}
		got, ok := c.Tree(id)
		if !ok || got != trees[i] {
			t.Fatalf("Tree(%d) lost the stored tree", id)
		}
	}
	if c.Len() != len(trees) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(trees))
	}

	if !c.Delete(ids[3]) || c.Delete(ids[3]) {
		t.Fatal("Delete should succeed once and then report absence")
	}
	if _, ok := c.Tree(ids[3]); ok {
		t.Fatal("deleted tree still readable")
	}
	// Deleted IDs are never reused.
	if id := c.Add(trees[3]); int64(id) != int64(len(trees)) {
		t.Fatalf("Add after delete assigned %d, want %d", id, len(trees))
	}
	if c.Replace(ids[3], trees[0]) {
		t.Fatal("Replace of a deleted id should fail")
	}
	if !c.Replace(ids[2], trees[5]) {
		t.Fatal("Replace of a live id should succeed")
	}
	if got, _ := c.Tree(ids[2]); got != trees[5] {
		t.Fatal("Replace did not swap the tree")
	}
	want := []corpus.ID{0, 1, 2, 4, 5, 6, 7, 8, 9, 10}
	got := c.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

// TestCorpusJoinMatchesBatch pins the corpus join against the plain
// batch engine across modes, including after deletes and replaces.
func TestCorpusJoinMatchesBatch(t *testing.T) {
	trees := randomTrees(2, 12, 24)
	c := corpus.New(corpus.WithHistogramIndex(), corpus.WithPQGramIndex(2))
	for _, tr := range trees {
		c.Add(tr)
	}
	c.Delete(5)
	c.Replace(7, trees[1])

	// The surviving collection, in ID order.
	var live []*ted.Tree
	var liveIDs []corpus.ID
	for _, id := range c.IDs() {
		tr, _ := c.Tree(id)
		live = append(live, tr)
		liveIDs = append(liveIDs, id)
	}

	e := c.Engine()
	ref := batch.New()
	refPs := ref.PrepareAll(live)
	for _, tau := range []float64{0, 3, 9.5, math.Inf(1)} {
		wantMs, _ := ref.Join(refPs, tau, true)
		for _, mode := range []batch.IndexMode{batch.IndexAuto, batch.IndexEnumerate, batch.IndexHistogram, batch.IndexPQGram} {
			ms, st := c.Join(e, tau, batch.JoinOptions{Mode: mode})
			if len(ms) != len(wantMs) {
				t.Fatalf("tau=%v mode=%v: %d matches, want %d", tau, mode, len(ms), len(wantMs))
			}
			for k, m := range ms {
				w := wantMs[k]
				if m.I != liveIDs[w.I] || m.J != liveIDs[w.J] || m.Dist != w.Dist {
					t.Fatalf("tau=%v mode=%v: match %d = %+v, want (%v, %v, %v)",
						tau, mode, k, m, liveIDs[w.I], liveIDs[w.J], w.Dist)
				}
			}
			_ = st
		}
	}
}

// TestCorpusTopKAcross pins corpus top-k against the batch engine.
func TestCorpusTopKAcross(t *testing.T) {
	trees := randomTrees(3, 8, 18)
	query := trees[0]
	c := corpus.New()
	for _, tr := range trees[1:] {
		c.Add(tr)
	}
	e := c.Engine()
	ms, _ := c.TopKAcross(e, e.Prepare(query), 5)

	ref := batch.New()
	wantMs, _ := ref.TopKAcross(ref.Prepare(query), ref.PrepareAll(trees[1:]), 5)
	if len(ms) != len(wantMs) {
		t.Fatalf("%d results, want %d", len(ms), len(wantMs))
	}
	for i, m := range ms {
		w := wantMs[i]
		if int64(m.Tree) != int64(w.Tree) || m.Root != w.Root || m.Dist != w.Dist {
			t.Fatalf("result %d = %+v, want %+v", i, m, w)
		}
	}
}

// TestForeignEnginePanics pins the corpus-compatibility check that
// replaced the engine-binding check.
func TestForeignEnginePanics(t *testing.T) {
	c := corpus.New()
	c.Add(ted.MustParse("{a{b}}"))
	defer func() {
		if recover() == nil {
			t.Fatal("join with a non-attached engine did not panic")
		}
	}()
	c.Join(batch.New(), 3, batch.JoinOptions{})
}

// TestEnginesShareHydration: two engines attached to one corpus both
// hydrate the same stored artifacts, and their distances agree.
func TestEnginesShareHydration(t *testing.T) {
	trees := randomTrees(4, 6, 16)
	c := corpus.New()
	var ids []corpus.ID
	for _, tr := range trees {
		ids = append(ids, c.Add(tr))
	}
	e1 := c.Engine()
	e2 := c.Engine(batch.WithWorkers(2))
	p10, _ := c.Prepared(e1, ids[0])
	p11, _ := c.Prepared(e1, ids[1])
	p20, _ := c.Prepared(e2, ids[0])
	p21, _ := c.Prepared(e2, ids[1])
	d1 := e1.Distance(p10, p11)
	d2 := e2.Distance(p20, p21)
	want := ted.Distance(trees[0], trees[1])
	if d1 != want || d2 != want {
		t.Fatalf("hydrated distances %v/%v, want %v", d1, d2, want)
	}
}
