package corpus

import "io"

// Crash simulates the process dying: the log's file descriptor is
// closed with no sync and no bookkeeping — exactly what the kernel does
// to a killed process's descriptors (which also releases the flock, so
// a test can reopen the path the way a restarted process would). The
// corpus object is unusable for logged mutations afterwards.
func (c *Corpus) Crash() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wal != nil {
		c.wal.f.Close()
	}
}

// SaveV1 writes the corpus in the legacy version-1 format (no section
// checksums), so the backward-compat tests can pin that streams written
// before the v2 checksum upgrade still load byte for byte.
func (c *Corpus) SaveV1(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveLocked(w, codecVersionV1)
}
