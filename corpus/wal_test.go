package corpus_test

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	ted "repro"
	"repro/batch"
	"repro/corpus"
)

// corpusState flattens a corpus to its observable store: id → bracket
// string.
func corpusState(c *corpus.Corpus) map[corpus.ID]string {
	out := make(map[corpus.ID]string)
	for _, id := range c.IDs() {
		t, _ := c.Tree(id)
		out[id] = t.String()
	}
	return out
}

// walMutation is one scripted mutation, so tests can replay the same
// history onto several corpora.
type walMutation struct {
	op   byte // 'a' add, 'd' delete, 'r' replace
	id   corpus.ID
	tree string
}

var walScript = []walMutation{
	{op: 'a', tree: "{a{b}{c}}"},
	{op: 'a', tree: "{a{b}}"},
	{op: 'a', tree: "{x{y{z}}}"},
	{op: 'a', tree: "{a{b}{c{d}}}"},
	{op: 'r', id: 1, tree: "{q{r}}"},
	{op: 'd', id: 2},
	{op: 'a', tree: "{a{b}{c}{d}}"},
	{op: 'd', id: 0},
	{op: 'r', id: 3, tree: "{a{b}{c}}"},
}

func applyScript(t *testing.T, c *corpus.Corpus, script []walMutation) {
	t.Helper()
	for _, m := range script {
		switch m.op {
		case 'a':
			c.Add(ted.MustParse(m.tree))
		case 'd':
			if !c.Delete(m.id) {
				t.Fatalf("delete %d failed", m.id)
			}
		case 'r':
			if !c.Replace(m.id, ted.MustParse(m.tree)) {
				t.Fatalf("replace %d failed", m.id)
			}
		}
	}
}

func joinAll(t *testing.T, c *corpus.Corpus) []corpus.Match {
	t.Helper()
	ms, _ := c.Join(c.Engine(batch.WithWorkers(2)), math.Inf(1), batch.JoinOptions{})
	return ms
}

// TestOpenCrashDurability is the acceptance criterion: mutate an opened
// corpus, never Save, "crash" (drop the handle without Close), and Open
// again — the replayed corpus must join bit-identically to a corpus that
// never crashed.
func TestOpenCrashDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trees.tedc")
	c, err := corpus.Open(path, corpus.WithHistogramIndex())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	applyScript(t, c, walScript)
	// No Save, no Checkpoint: the crash. Crash closes the fd with no
	// sync, as the kernel does for a killed process (releasing the
	// single-writer lock the way a real death would).
	c.Crash()

	// No snapshot was ever written, so the reopen supplies the index
	// option again (a snapshot would carry the configuration itself).
	reopened, err := corpus.Open(path, corpus.WithHistogramIndex())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()

	pristine := corpus.New(corpus.WithHistogramIndex())
	applyScript(t, pristine, walScript)

	if got, want := corpusState(reopened), corpusState(pristine); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed corpus %v, want %v", got, want)
	}
	if !reopened.HasHistogramIndex() {
		t.Fatalf("replayed corpus lost the histogram index")
	}
	got, want := joinAll(t, reopened), joinAll(t, pristine)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("join over replayed corpus diverges:\n got %v\nwant %v", got, want)
	}
}

// TestOpenReplaysOverSnapshot: mutations after a Checkpoint land in the
// log and replay over the compacted snapshot.
func TestOpenReplaysOverSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trees.tedc")
	c, err := corpus.Open(path, corpus.WithHistogramIndex())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	applyScript(t, c, walScript[:5])
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	walSize := func() int64 {
		st, err := os.Stat(path + ".wal")
		if err != nil {
			t.Fatalf("stat wal: %v", err)
		}
		return st.Size()
	}
	if s := walSize(); s != 5 { // truncated back to the bare header
		t.Fatalf("wal holds %d bytes after checkpoint, want 5", s)
	}
	applyScript(t, c, walScript[5:])
	if s := walSize(); s <= 5 {
		t.Fatalf("post-checkpoint mutations did not reach the log (size %d)", s)
	}
	c.Crash()

	reopened, err := corpus.Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	pristine := corpus.New(corpus.WithHistogramIndex())
	applyScript(t, pristine, walScript)
	if got, want := corpusState(reopened), corpusState(pristine); !reflect.DeepEqual(got, want) {
		t.Fatalf("log-over-snapshot replay %v, want %v", got, want)
	}
}

// TestCheckpointCrashBetweenRenameAndTruncate: if the process dies after
// the snapshot rename but before the log truncation, the stale log
// replays over the new snapshot — set semantics make that idempotent.
func TestCheckpointCrashBetweenRenameAndTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trees.tedc")
	c, err := corpus.Open(path, corpus.WithHistogramIndex())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	applyScript(t, c, walScript)
	staleLog, err := os.ReadFile(path + ".wal")
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Undo the truncation: the snapshot now already contains every logged
	// mutation, and the log claims them all again.
	if err := os.WriteFile(path+".wal", staleLog, 0o644); err != nil {
		t.Fatalf("restore stale log: %v", err)
	}

	reopened, err := corpus.Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	pristine := corpus.New(corpus.WithHistogramIndex())
	applyScript(t, pristine, walScript)
	if got, want := corpusState(reopened), corpusState(pristine); !reflect.DeepEqual(got, want) {
		t.Fatalf("idempotent replay %v, want %v", got, want)
	}
	if got, want := joinAll(t, reopened), joinAll(t, pristine); !reflect.DeepEqual(got, want) {
		t.Fatalf("join after idempotent replay diverges")
	}
}

// TestWALEveryPrefixTruncation mirrors the snapshot codec's truncation
// test: for every byte-prefix of a real log, Open must succeed and
// recover exactly the state of the longest intact record prefix.
func TestWALEveryPrefixTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trees.tedc")
	c, err := corpus.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Record the log size after every mutation: those are the record
	// boundaries a truncated replay may stop at.
	boundaries := []int64{5} // bare header
	states := []map[corpus.ID]string{corpusState(c)}
	for i := range walScript {
		applyScript(t, c, walScript[i:i+1])
		st, err := os.Stat(path + ".wal")
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		boundaries = append(boundaries, st.Size())
		states = append(states, corpusState(c))
	}
	full, err := os.ReadFile(path + ".wal")
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	for p := 0; p <= len(full); p++ {
		tpath := filepath.Join(dir, "trunc.tedc")
		if err := os.WriteFile(tpath+".wal", full[:p], 0o644); err != nil {
			t.Fatalf("write prefix: %v", err)
		}
		// Every prefix must open: a strict prefix of the header is debris
		// from a power failure during the very first header write (nothing
		// acknowledged can predate a complete header), and anything past
		// the header replays its intact record prefix.
		tc, err := corpus.Open(tpath)
		if err != nil {
			t.Fatalf("prefix %d: open: %v", p, err)
		}
		// The recovered state must be the one at the largest record
		// boundary ≤ p.
		want := states[0]
		for k, b := range boundaries {
			if b <= int64(p) {
				want = states[k]
			}
		}
		if got := corpusState(tc); !reflect.DeepEqual(got, want) {
			t.Fatalf("prefix %d: recovered %v, want %v", p, got, want)
		}
		// The truncated log must stay usable: append one more mutation
		// and reopen.
		id := tc.Add(ted.MustParse("{tail}"))
		if err := tc.Close(); err != nil {
			t.Fatalf("prefix %d: close: %v", p, err)
		}
		rc, err := corpus.Open(tpath)
		if err != nil {
			t.Fatalf("prefix %d: reopen after append: %v", p, err)
		}
		if tr, ok := rc.Tree(id); !ok || tr.String() != "{tail}" {
			t.Fatalf("prefix %d: appended tree lost after truncation recovery", p)
		}
		rc.Close()
		os.Remove(tpath + ".wal")
	}
}

// TestWALCorruption flips every byte of a real log in turn: Open must
// never panic, and each flip must either fail Open (the usual case —
// in-place corruption of fully-present bytes is bit rot, and silently
// truncating acknowledged records behind it would lose durable data) or
// recover a state equal to some intact record prefix (possible only
// when the flip lands in a length varint and makes the remainder look
// like a torn tail).
func TestWALCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trees.tedc")
	c, err := corpus.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	states := []map[corpus.ID]string{corpusState(c)}
	for i := range walScript {
		applyScript(t, c, walScript[i:i+1])
		states = append(states, corpusState(c))
	}
	full, err := os.ReadFile(path + ".wal")
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	c.Close()

	for i := range full {
		bad := append([]byte(nil), full...)
		bad[i] ^= 0xFF
		tpath := filepath.Join(dir, "corrupt.tedc")
		if err := os.WriteFile(tpath+".wal", bad, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		tc, err := corpus.Open(tpath)
		if err != nil {
			os.Remove(tpath + ".wal")
			continue // corruption detected: the durable records are intact on disk
		}
		got := corpusState(tc)
		ok := false
		for _, want := range states {
			if reflect.DeepEqual(got, want) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("flip at %d recovered a state matching no record prefix: %v", i, got)
		}
		tc.Close()
		os.Remove(tpath + ".wal")
	}

	// The loss-protection half of the contract, pinned directly: a flip
	// inside an early record's body (its bytes are all present — bit rot,
	// not a torn tail) must fail Open instead of silently truncating the
	// acknowledged records behind it.
	bad := append([]byte(nil), full...)
	bad[7] ^= 0xFF // inside record 0's body, several records follow
	tpath := filepath.Join(dir, "midrot.tedc")
	if err := os.WriteFile(tpath+".wal", bad, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := corpus.Open(tpath); err == nil {
		t.Fatalf("mid-log body corruption silently truncated acknowledged records")
	}
}

// TestOpenAdoptsIndexOptions: Opening a snapshot that lacks a requested
// maintained index grafts and builds it, so the option means the same
// thing whether or not the snapshot existed.
func TestOpenAdoptsIndexOptions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trees.tedc")
	plain := corpus.New()
	for _, s := range []string{"{a{b}{c}}", "{a{b}}", "{a{b}{c{d}}}"} {
		plain.Add(ted.MustParse(s))
	}
	if err := plain.SaveFile(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	c, err := corpus.Open(path, corpus.WithHistogramIndex())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer c.Close()
	if !c.HasHistogramIndex() {
		t.Fatalf("histogram option not adopted on a loaded snapshot")
	}
	// The grafted index must generate correct candidates: compare an
	// indexed join to an enumerated one.
	e := c.Engine()
	indexed, _ := c.Join(e, 3, batch.JoinOptions{Mode: batch.IndexHistogram})
	enum, _ := c.Join(e, 3, batch.JoinOptions{Mode: batch.IndexEnumerate})
	if !reflect.DeepEqual(indexed, enum) {
		t.Fatalf("grafted index joins %v, enumeration %v", indexed, enum)
	}
}

// TestWALOverflowLengthVarint: a record length claim near 2^64 must not
// wrap the torn-tail bound check into a negative slice length — Open
// treats it as debris (or errors), never panics.
func TestWALOverflowLengthVarint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trees.tedc")
	// Header + the uvarint encoding of 2^64-4.
	data := append([]byte("TEDW\x01"),
		0xFC, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)
	if err := os.WriteFile(path+".wal", data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	c, err := corpus.Open(path)
	if err != nil {
		return // rejecting is fine; panicking is the bug
	}
	defer c.Close()
	if c.Len() != 0 {
		t.Fatalf("overflow record produced %d trees", c.Len())
	}
}

// TestOpenSingleWriter: the log carries an exclusive lock, so a second
// Open of a live corpus fails fast instead of interleaving records; the
// path opens again once the first holder closes (or crashes).
func TestOpenSingleWriter(t *testing.T) {
	if runtime.GOOS == "windows" || runtime.GOOS == "plan9" {
		t.Skip("flock enforcement is unix-only")
	}
	path := filepath.Join(t.TempDir(), "trees.tedc")
	c, err := corpus.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := corpus.Open(path); err == nil {
		t.Fatalf("second Open of a live corpus succeeded")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	c2, err := corpus.Open(path)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	c2.Close()
}

// TestOpenRejectsForeignWAL: a .wal file that is not a TEDW log must not
// be truncated or appended to.
func TestOpenRejectsForeignWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trees.tedc")
	content := []byte("definitely not a log")
	if err := os.WriteFile(path+".wal", content, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := corpus.Open(path); err == nil {
		t.Fatalf("foreign .wal accepted")
	}
	after, err := os.ReadFile(path + ".wal")
	if err != nil || string(after) != string(content) {
		t.Fatalf("foreign .wal was modified")
	}
}

// TestCheckpointThenSaveFileRouting: SaveFile to the attached path is a
// Checkpoint (log truncated); SaveFile elsewhere leaves the log alone.
func TestCheckpointThenSaveFileRouting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trees.tedc")
	c, err := corpus.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer c.Close()
	applyScript(t, c, walScript[:4])
	if err := c.SaveFile(filepath.Join(dir, "elsewhere.tedc")); err != nil {
		t.Fatalf("save elsewhere: %v", err)
	}
	st, _ := os.Stat(path + ".wal")
	if st.Size() <= 5 {
		t.Fatalf("save to a different path truncated the log")
	}
	// An alias of the attached path (un-cleaned) must route to Checkpoint
	// too — a raw string comparison would instead truncate the live
	// snapshot in place.
	if err := c.SaveFile(dir + "/./trees.tedc"); err != nil {
		t.Fatalf("save to aliased attached path: %v", err)
	}
	st, _ = os.Stat(path + ".wal")
	if st.Size() != 5 {
		t.Fatalf("save to the attached path did not checkpoint (log %d bytes)", st.Size())
	}
	applyScript(t, c, walScript[4:6])
	if err := c.SaveFile(path); err != nil {
		t.Fatalf("save to attached path: %v", err)
	}
	st, _ = os.Stat(path + ".wal")
	if st.Size() != 5 {
		t.Fatalf("second checkpoint did not truncate the log (%d bytes)", st.Size())
	}
}

// TestSaveFileAfterClose: Close's "usable in memory" promise includes
// persisting that memory — a SaveFile to the old attached path falls
// back to a plain save (the checkpoint machinery is gone) and the saved
// snapshot loads.
func TestSaveFileAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trees.tedc")
	c, err := corpus.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	applyScript(t, c, walScript[:4])
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close not a no-op: %v", err)
	}
	if err := c.SaveFile(path); err != nil {
		t.Fatalf("save to attached path after close: %v", err)
	}
	// The stale log (never truncated — that would need the checkpoint
	// machinery) replays idempotently over the just-saved snapshot.
	rc, err := corpus.Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rc.Close()
	if got, want := corpusState(rc), corpusState(c); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-close save round trip %v, want %v", got, want)
	}
}

// TestCloseMakesSyncFail: mutations after Close are not silently
// unlogged — the sticky error surfaces on Sync.
func TestCloseMakesSyncFail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trees.tedc")
	c, err := corpus.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	c.Add(ted.MustParse("{a}"))
	if err := c.Sync(); err != nil {
		t.Fatalf("sync before close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	c.Add(ted.MustParse("{b}"))
	if err := c.Sync(); err == nil {
		t.Fatalf("mutation after Close left Sync green")
	}
}
