//go:build unix

package corpus

import (
	"fmt"
	"os"
	"syscall"
)

// lockWAL takes a non-blocking exclusive flock on the log file, so a
// second Open of a live corpus fails fast instead of silently
// interleaving (or, before O_APPEND, overwriting) another process's
// acknowledged records. The kernel releases the lock when the file
// closes — including when a crashed process's descriptors are torn
// down, so recovery after kill -9 is never blocked by a stale lock.
func lockWAL(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("corpus: write-ahead log %s is held by another process (single-writer): %w", f.Name(), err)
	}
	return nil
}
