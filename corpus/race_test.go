package corpus_test

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	ted "repro"
	"repro/batch"
	"repro/corpus"
	"repro/gen"
)

// TestCorpusContention hammers one corpus from many goroutines —
// Add/Delete/Replace writers against concurrent Join, TopKAcross, Tree,
// IDs and Len readers — and then checks the quiescent corpus against a
// deterministic replay. Run under -race this is the corpus-level
// locking contract (the analogous shard test in package index covers
// only the posting lists; this one covers the store, the prepared-tree
// cache and the maintained indexes together). The WAL variant runs the
// same schedule on a corpus opened with Open, so log appends interleave
// with reads too.
func TestCorpusContention(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 24
	var trees, alts []*ted.Tree
	for i := 0; i < n; i++ {
		spec := gen.RandomSpec{Size: 4 + rng.Intn(16), MaxDepth: 6, MaxFanout: 4, Labels: 6}
		trees = append(trees, gen.Random(rng.Int63(), spec))
		alts = append(alts, gen.Random(rng.Int63(), spec))
	}

	const rounds = 3
	// mutate applies the scripted op for (tree i, round) to any target.
	// Writers and the sequential expected-state simulator share it, so
	// the deterministic final state is whatever these ops actually do
	// (in particular: Replace after Delete is a no-op, never a
	// resurrection, and ids with (i+r)%4 == 3 skip the round — which is
	// what leaves some trees alive at the end).
	mutate := func(i, round int, del func(), repl func(*ted.Tree)) {
		switch (i + round) % 4 {
		case 0:
			del()
		case 1:
			repl(alts[i])
		case 2:
			repl(trees[i])
		}
	}

	run := func(t *testing.T, c *corpus.Corpus) {
		ids := make([]corpus.ID, n)
		for i, tr := range trees {
			ids[i] = c.Add(tr)
		}
		e := c.Engine(batch.WithWorkers(2))
		query := e.PrepareQuery(trees[0])

		var wg sync.WaitGroup
		// Writers own disjoint id stripes: the final state is
		// deterministic even though interleavings are not.
		const writers = 3
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for round := 0; round < rounds; round++ {
					for i := w; i < n; i += writers {
						mutate(i, round,
							func() { c.Delete(ids[i]) },
							func(tr *ted.Tree) { c.Replace(ids[i], tr) })
					}
				}
			}(w)
		}
		// Readers: joins, top-k and point lookups while the writers
		// churn. Mid-flight results reflect some consistent snapshot;
		// the contract under test is race- and panic-freedom.
		for p := 0; p < 3; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for round := 0; round < 2; round++ {
					switch p {
					case 0:
						c.Join(e, 6, batch.JoinOptions{})
					case 1:
						c.TopKAcross(e, query, 3)
					default:
						for _, id := range c.IDs() {
							c.Tree(id)
						}
						c.Len()
					}
				}
			}(p)
		}
		wg.Wait()

		// Quiescent check: replay the same schedule sequentially (stripes
		// are disjoint, so per-id op order is what each writer did).
		want := corpus.New()
		wantIDs := make([]corpus.ID, n)
		for i, tr := range trees {
			wantIDs[i] = want.Add(tr)
		}
		for round := 0; round < rounds; round++ {
			for i := 0; i < n; i++ {
				mutate(i, round,
					func() { want.Delete(wantIDs[i]) },
					func(tr *ted.Tree) { want.Replace(wantIDs[i], tr) })
			}
		}
		got, expect := corpusState(c), corpusState(want)
		if !reflect.DeepEqual(got, expect) {
			t.Fatalf("quiescent corpus %v, want %v", got, expect)
		}
		// And the maintained index must agree with the store: an indexed
		// join equals an enumerated one.
		if c.HasHistogramIndex() {
			indexed, _ := c.Join(e, 5, batch.JoinOptions{Mode: batch.IndexHistogram})
			enum, _ := c.Join(e, 5, batch.JoinOptions{Mode: batch.IndexEnumerate})
			if !reflect.DeepEqual(indexed, enum) {
				t.Fatalf("post-contention indexed join %v, enumerated %v", indexed, enum)
			}
		}
	}

	t.Run("memory", func(t *testing.T) {
		run(t, corpus.New(corpus.WithHistogramIndex()))
	})
	t.Run("wal", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "race.tedc")
		c, err := corpus.Open(path, corpus.WithHistogramIndex())
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		run(t, c)
		if err := c.Sync(); err != nil {
			t.Fatalf("sync after contention: %v", err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// The log absorbed the whole schedule: a reopen must reproduce
		// the quiescent state exactly.
		rc, err := corpus.Open(path)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer rc.Close()
		if got, want := corpusState(rc), corpusState(c); !reflect.DeepEqual(got, want) {
			t.Fatalf("replayed corpus diverges from the quiescent one")
		}
	})
}
