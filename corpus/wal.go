package corpus

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/tree"
)

// The write-ahead log makes a corpus durable between Saves: every
// Add/Delete/Replace on a corpus opened with Open appends one record to
// a sidecar log (<snapshot path> + ".wal") before the mutation is
// acknowledged, and Open replays the log over the snapshot, so a crash
// loses at most the record being written when the process died.
//
// Log format, version 1. The header is "TEDW" | version u8; each record
// is
//
//	uvarint(len(body)) | body | crc32(body) as 4 little-endian bytes
//
// with body = op u8 (1 add, 2 delete, 3 replace) | uvarint id | payload.
// Add and replace carry the tree in the codec's postorder form, labels
// inline (uvarint n, n × length-prefixed label, n × uvarint child
// count); delete carries no payload. Labels are written inline rather
// than as label-table ids because the log must replay against a snapshot
// whose table predates the logged mutations.
//
// Replay applies records with absolute "set" semantics — add and replace
// both store the carried tree under the carried id (bumping the next-id
// watermark), delete removes whatever is there — which makes replay
// idempotent: if a crash lands between Checkpoint's snapshot rename and
// its log truncation, replaying the stale log over the new snapshot
// re-applies mutations the snapshot already contains and converges to
// the same corpus. Replay truncates a torn tail — the file ending
// mid-record is the debris a crash leaves — but fails loudly on a
// record whose bytes are all present and wrong, which under this log's
// write model can only be bit rot or tampering (the error-never-panic
// contract of the snapshot decoder extends to the log; pinned by
// FuzzWALReplay and the every-prefix/corruption tests in wal_test.go).
// One qualification: the length prefix itself is outside the record
// CRC, and a flip there that inflates the claimed length is
// indistinguishable from a genuinely torn tail (both read as "the file
// ends inside this record"), so those one-to-two bytes per record
// degrade to torn-tail truncation rather than a loud failure —
// detecting them would take a scan for intact records beyond the
// corruption point, which hostile inputs make quadratic.

const (
	walMagic   = "TEDW"
	walVersion = 1

	walHeaderLen = 5

	walOpAdd     = 1
	walOpDelete  = 2
	walOpReplace = 3
)

// errWALCorrupt marks a log Open must not touch: a header that is not a
// TEDW header at all (the file may not be ours — never truncate or
// append to it), or a record whose bytes are all present but invalid
// (bit rot; silently dropping the acknowledged records behind it would
// lose durable data). Crash debris — a torn tail, or a strict prefix of
// the header from a power failure during the very first Open — is not
// an error; absorbing it is the log's job.
var errWALCorrupt = errors.New("corpus: corrupt write-ahead log")

// wal is the append side of the log. Appends happen under the corpus
// mutation lock, so record order is exactly mutation order; the first
// append failure sticks and is surfaced by Sync, Checkpoint and Close.
// The wal's own mutex guards only the sticky error and the closed flag,
// so Sync can run its fsync without holding the corpus lock — a
// mutation acknowledgement flushing the disk must not stall every
// concurrent read.
type wal struct {
	f     *os.File
	buf   []byte // record body assembly buffer, reused across appends
	frame []byte // framed record buffer (length | body | crc), ditto

	mu     sync.Mutex
	err    error
	closed bool
}

func (w *wal) getErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *wal) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// fail records the first failure; later ones are symptoms of it.
func (w *wal) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// append writes one record and returns its body bytes (valid until the
// next append — the buffer is reused; callers that keep the body copy
// it). t is nil for deletes. Returns nil when the log is already failed.
func (w *wal) append(op byte, id ID, t *tree.Tree) []byte {
	if w.getErr() != nil {
		return nil
	}
	body := w.buf[:0]
	body = append(body, op)
	body = binary.AppendUvarint(body, uint64(id))
	if t != nil {
		body = appendTreePayload(body, t)
	}
	w.buf = body[:0]
	w.appendBody(body)
	return body
}

// appendBody frames and writes one already-assembled record body — the
// shared path for local mutations and replicated records, which must
// land on disk byte-identical to the primary's log.
func (w *wal) appendBody(body []byte) {
	if w.getErr() != nil {
		return
	}
	// Frame: length | body | crc, assembled in a second reused buffer so
	// the steady state allocates nothing. One Write call, so a torn tail
	// is a single truncated suffix for replay to drop.
	rec := binary.AppendUvarint(w.frame[:0], uint64(len(body)))
	rec = append(rec, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	rec = append(rec, crc[:]...)
	w.frame = rec[:0]
	if _, err := w.f.Write(rec); err != nil {
		w.fail(fmt.Errorf("corpus: write-ahead log append: %w", err))
	}
}

func appendTreePayload(b []byte, t *tree.Tree) []byte {
	n := t.Len()
	b = binary.AppendUvarint(b, uint64(n))
	for v := 0; v < n; v++ {
		l := t.Label(v)
		b = binary.AppendUvarint(b, uint64(len(l)))
		b = append(b, l...)
	}
	for v := 0; v < n; v++ {
		b = binary.AppendUvarint(b, uint64(t.NumChildren(v)))
	}
	return b
}

// sync flushes the log to stable storage. The fsync itself runs outside
// any lock: fsyncing a file that is concurrently appended to is safe
// (the flush covers whatever had been written), and serializing it
// against mutations would reintroduce the stall sync exists to avoid.
func (w *wal) sync() error {
	if err := w.getErr(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.fail(fmt.Errorf("corpus: write-ahead log sync: %w", err))
	}
	return w.getErr()
}

// reset truncates the log back to its header — every logged mutation is
// now in the snapshot — and syncs, so the compaction is durable before
// Checkpoint returns.
func (w *wal) reset() error {
	if err := w.getErr(); err != nil {
		return err
	}
	if err := w.f.Truncate(walHeaderLen); err != nil {
		w.fail(fmt.Errorf("corpus: write-ahead log truncate: %w", err))
		return w.getErr()
	}
	if _, err := w.f.Seek(walHeaderLen, io.SeekStart); err != nil {
		w.fail(fmt.Errorf("corpus: write-ahead log seek: %w", err))
		return w.getErr()
	}
	return w.sync()
}

// Open loads the corpus persisted at path and attaches a write-ahead
// log at path+".wal": the log is replayed over the snapshot (recovering
// every mutation acknowledged since the last Save/Checkpoint, dropping a
// torn tail), and from then on every Add, Delete and Replace is appended
// to the log before it returns. A missing snapshot starts an empty
// corpus with opts (so the first Open of a path needs the index options;
// later Opens take the configuration from the snapshot, and opts add any
// maintained index the snapshot lacks, built by re-indexing).
//
// Durability: records reach the OS when the mutation returns and the
// disk on Sync, Checkpoint or Close — a process crash between Saves
// loses nothing acknowledged. Power failure is weaker: everything up to
// the last Sync is safe, but the unsynced suffix may persist partially
// and in any page order, and if that leaves a record mid-log with
// intact bytes and a bad CRC, the next Open fails loudly (see
// replayRecords) rather than guessing which records were real —
// recovering then means truncating the .wal at the reported offset by
// hand. Callers that must survive power loss unattended should Sync at
// their acknowledgement points, as the HTTP server does. Checkpoint
// folds the log into a
// fresh snapshot and truncates it. The log is single-writer, and the
// contract is enforced: the log file carries an exclusive flock (on
// unix), so a second Open of a live corpus fails fast instead of
// interleaving records; the kernel drops the lock with the crashed
// process's descriptors, so recovery is never blocked.
func Open(path string, opts ...Option) (*Corpus, error) {
	var c *Corpus
	switch _, err := os.Stat(path); {
	case err == nil:
		if c, err = LoadFile(path); err != nil {
			return nil, err
		}
		c.adoptOptions(opts)
	case errors.Is(err, fs.ErrNotExist):
		c = New(opts...)
	default:
		return nil, err
	}
	// O_APPEND: every record write lands at the file's current end no
	// matter what happened to the offset, so even a mis-use that slips
	// past the lock appends rather than overwrites.
	f, err := os.OpenFile(path+".wal", os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockWAL(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := c.recoverWAL(f); err != nil {
		f.Close()
		return nil, err
	}
	c.mu.Lock()
	c.wal = &wal{f: f}
	c.snapPath = path
	c.mu.Unlock()
	return c, nil
}

// adoptOptions grafts option-requested maintained indexes a loaded
// snapshot lacks, building their posting lists from the stored trees, so
// Open(path, WithHistogramIndex()) means the same thing whether or not
// the snapshot already existed.
func (c *Corpus) adoptOptions(opts []Option) {
	probe := &Corpus{}
	for _, o := range opts {
		o(probe)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	grafted := false
	if probe.hist != nil && c.hist == nil {
		c.hist = probe.hist
		grafted = true
	}
	if probe.pq != nil && c.pq == nil {
		c.pq = probe.pq
		grafted = true
	}
	if !grafted {
		return
	}
	for id, en := range c.entries {
		if probe.hist != nil && c.hist == probe.hist {
			c.hist.Put(int(id), en.t)
		}
		if probe.pq != nil && c.pq == probe.pq {
			c.pq.Put(int(id), en.t)
		}
	}
}

// recoverWAL replays the log in f over the corpus and leaves f
// positioned (and truncated) at the end of the last intact record.
func (c *Corpus) recoverWAL(f *os.File) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	fullHeader := append([]byte(walMagic), walVersion)
	if size < walHeaderLen {
		// Empty, or shorter than a header. A strict prefix of our own
		// header is debris from a power failure during the very first
		// Open's header write — nothing acknowledged can predate a
		// complete header, so rewriting it loses nothing. Anything else
		// is not our file; refuse rather than clobber it.
		head := make([]byte, size)
		if _, err := io.ReadFull(f, head); err != nil {
			return err
		}
		if !bytes.HasPrefix(fullHeader, head) {
			return fmt.Errorf("%w: bad header (not a %q file)", errWALCorrupt, walMagic)
		}
		if err := f.Truncate(0); err != nil {
			return err
		}
		// Write the header now so a crash before the first mutation
		// still leaves a well-formed file — and make the file's
		// directory entry itself durable, or a power failure could drop
		// the whole log (acknowledged, fsynced records included) by
		// losing the file, not its contents.
		if _, err := f.Write(fullHeader); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		return syncDir(filepath.Dir(f.Name()))
	}
	head := make([]byte, walHeaderLen)
	if _, err := io.ReadFull(f, head); err != nil || string(head[:4]) != walMagic {
		return fmt.Errorf("%w: bad header (not a %q file)", errWALCorrupt, walMagic)
	}
	if head[4] != walVersion {
		return fmt.Errorf("corpus: write-ahead log version %d not supported (want %d)", head[4], walVersion)
	}
	good, err := c.replayRecords(f, size)
	if err != nil {
		return err
	}
	if good < size {
		if err := f.Truncate(good); err != nil {
			return err
		}
	}
	_, err = f.Seek(good, io.SeekStart)
	return err
}

// replayRecords applies intact records and returns the file offset just
// past the last one. A *torn* tail — the file ends before the final
// record's claimed bytes — is the expected crash debris and is
// truncated away. A record whose bytes are all present but whose CRC or
// structure is wrong is something else entirely: under the log's write
// model (single writer, one Write per record, O_APPEND,
// acknowledge-after-write) a process crash can only shorten the final
// record, so a fully-present-but-invalid record proves bit rot,
// tampering, or out-of-order page loss from a power failure on an
// un-Synced suffix — and replay fails loudly rather than silently
// discarding acknowledged mutations, the same stance the snapshot
// codec's checksums take. The cost of that stance is that the
// power-failure case may need an operator to truncate the log at the
// offset named in the error; the alternative — guessing — risks
// resurrecting a corpus missing acknowledged writes with no error at
// all. Malformed input errors — it never panics and never allocates
// more than the file's actual bytes can back.
func (c *Corpus) replayRecords(f *os.File, size int64) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	br := bufio.NewReader(io.NewSectionReader(f, walHeaderLen, size-walHeaderLen))
	good := int64(walHeaderLen)
	for {
		n, err := c.replayOne(br, size-good)
		if err == errWALTorn {
			return good, nil
		}
		if err != nil {
			return good, fmt.Errorf("%w: record at offset %d: %v", errWALCorrupt, good, err)
		}
		if n == 0 {
			return good, nil // clean end of log
		}
		good += n
	}
}

// errWALTorn marks a record the file simply ends inside — recoverable
// crash debris, as opposed to in-place corruption.
var errWALTorn = errors.New("torn record")

// replayOne decodes and applies a single record, returning the bytes
// consumed: 0 at the clean end of the log, errWALTorn where the file
// ends mid-record, any other error for corruption in fully-present
// bytes.
func (c *Corpus) replayOne(br *bufio.Reader, remaining int64) (int64, error) {
	lenBytes := int64(0)
	bodyLen64, err := binary.ReadUvarint(lengthCounter{br, &lenBytes})
	if err != nil {
		if err == io.EOF && lenBytes == 0 {
			return 0, nil // clean end of log
		}
		return 0, errWALTorn // length varint cut short
	}
	// Guard without adding to bodyLen64: a near-2^64 length claim must
	// not wrap past the bound and reach the slice make below as a
	// negative int64.
	if remaining < 4 || bodyLen64 > uint64(remaining-4) {
		return 0, errWALTorn // claims more bytes than the file holds
	}
	bodyLen := int64(bodyLen64)
	rec := make([]byte, bodyLen+4)
	if _, err := io.ReadFull(br, rec); err != nil {
		return 0, errWALTorn
	}
	body, stored := rec[:bodyLen], binary.LittleEndian.Uint32(rec[bodyLen:])
	if crc32.ChecksumIEEE(body) != stored {
		return 0, errors.New("checksum mismatch")
	}
	if !c.applyRecord(body) {
		return 0, errors.New("invalid record body")
	}
	// Replayed records seed the replication buffer: a follower that
	// checkpoint-ships right after this Open must be able to tail from
	// the snapshot base, and base + replayed + live is this generation's
	// whole history.
	c.replAppendLocked(body)
	return lenBytes + bodyLen + 4, nil
}

// lengthCounter counts the bytes a varint read consumes.
type lengthCounter struct {
	br *bufio.Reader
	n  *int64
}

func (lc lengthCounter) ReadByte() (byte, error) {
	b, err := lc.br.ReadByte()
	if err == nil {
		*lc.n++
	}
	return b, err
}

// applyRecord decodes one record body and applies it with set semantics.
// Callers hold c.mu. A structurally invalid body reports false, stopping
// replay at the previous record.
func (c *Corpus) applyRecord(body []byte) bool {
	if len(body) == 0 {
		return false
	}
	op := body[0]
	r := bytes.NewReader(body[1:])
	id64, err := binary.ReadUvarint(r)
	if err != nil || id64 > math.MaxInt32 {
		return false
	}
	id := ID(id64)
	switch op {
	case walOpDelete:
		if r.Len() != 0 {
			return false
		}
		if _, ok := c.entries[id]; ok {
			delete(c.entries, id)
			if c.hist != nil {
				c.hist.Delete(int(id))
			}
			if c.pq != nil {
				c.pq.Delete(int(id))
			}
		}
		if id >= c.next {
			c.next = id + 1
		}
		return true
	case walOpAdd, walOpReplace:
		t, ok := decodeTreePayload(r)
		if !ok || r.Len() != 0 {
			return false
		}
		c.entries[id] = c.build(t)
		c.indexPut(id, t)
		if id >= c.next {
			c.next = id + 1
		}
		return true
	}
	return false
}

// decodeTreePayload reads the inline postorder form. Bounds mirror the
// snapshot decoder's: counts are checked against what the record's own
// bytes can back before anything is allocated.
func decodeTreePayload(r *bytes.Reader) (*tree.Tree, bool) {
	n64, err := binary.ReadUvarint(r)
	if err != nil || n64 == 0 || n64 > maxNodes || n64 > uint64(r.Len()) {
		return nil, false
	}
	n := int(n64)
	labels := make([]string, 0, n)
	for v := 0; v < n; v++ {
		l64, err := binary.ReadUvarint(r)
		if err != nil || l64 > maxLabelLen || l64 > uint64(r.Len()) {
			return nil, false
		}
		raw := make([]byte, l64)
		if _, err := io.ReadFull(r, raw); err != nil {
			return nil, false
		}
		labels = append(labels, string(raw))
	}
	counts := make([]int, 0, n)
	for v := 0; v < n; v++ {
		k, err := binary.ReadUvarint(r)
		if err != nil || k >= uint64(n) {
			return nil, false
		}
		counts = append(counts, int(k))
	}
	t, err := tree.FromPostorder(tree.PostorderForm{Labels: labels, ChildCounts: counts})
	if err != nil {
		return nil, false
	}
	return t, true
}

// Sync flushes the write-ahead log to stable storage and reports the
// first logging failure since the last Sync-point, so callers that must
// not acknowledge a mutation on a broken log (a server handler, a batch
// importer) have one call to check. A corpus without a log returns nil.
// The flush runs outside the corpus lock: acknowledging one mutation
// must not stall concurrent reads or joins for a disk round trip.
func (c *Corpus) Sync() error {
	c.mu.RLock()
	w := c.wal
	c.mu.RUnlock()
	if w == nil {
		return nil
	}
	return w.sync()
}

// LogPending reports whether the write-ahead log holds records not yet
// folded into a snapshot — the signal a periodic-compaction loop (like
// cmd/tedd's) checks before paying for a Checkpoint. False for corpora
// without a log, or after Close.
func (c *Corpus) LogPending() bool {
	c.mu.RLock()
	w := c.wal
	c.mu.RUnlock()
	if w == nil || w.isClosed() {
		return false
	}
	st, err := w.f.Stat()
	return err == nil && st.Size() > walHeaderLen
}

// Checkpoint folds the log into the snapshot: the corpus is written to
// its Open path (atomically — a temp file renamed over the old snapshot)
// and the log truncated back to empty. The CPU-bound snapshot encode
// runs under the corpus lock (it reads the store), but the expensive
// part — writing and fsyncing the temp file — runs *outside* it, so a
// checkpoint's disk time does not stall every concurrent read and
// mutation; the final swap re-checks that no mutation landed during
// the flush (retrying the encode if one did, and falling back to
// flushing under the lock after a few rounds of losing that race). After a crash anywhere inside Checkpoint, Open recovers a
// consistent corpus: either the old snapshot with the full log, or the
// new snapshot with a log whose replay is idempotent.
func (c *Corpus) Checkpoint() error {
	// One checkpoint at a time; concurrent callers queue rather than
	// racing each other's temp files and renames.
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.wal == nil {
			c.mu.Unlock()
			return errors.New("corpus: Checkpoint needs a corpus opened with Open")
		}
		if err := c.wal.getErr(); err != nil {
			c.mu.Unlock()
			return err
		}
		var buf bytes.Buffer
		if err := c.saveLocked(&buf, codecVersion); err != nil {
			c.mu.Unlock()
			return err
		}
		seq := c.mutSeq
		c.mu.Unlock()

		// Heavy I/O, lock-free: write and fsync the temp snapshot.
		tmp := c.snapPath + ".tmp"
		if err := writeFileSync(tmp, buf.Bytes()); err != nil {
			os.Remove(tmp)
			return err
		}

		c.mu.Lock()
		if c.mutSeq != seq && attempt < 2 {
			// A mutation landed while the snapshot was flushing: this
			// snapshot is stale, and truncating the log against it would
			// drop that mutation. Re-encode.
			c.mu.Unlock()
			os.Remove(tmp)
			continue
		}
		// Either nothing moved, or we stop yielding (attempt ≥ 2): in the
		// latter case re-encode one final time under the lock so the swap
		// is exact.
		if c.mutSeq != seq {
			buf.Reset()
			if err := c.saveLocked(&buf, codecVersion); err != nil {
				c.mu.Unlock()
				os.Remove(tmp)
				return err
			}
			if err := writeFileSync(tmp, buf.Bytes()); err != nil {
				c.mu.Unlock()
				os.Remove(tmp)
				return err
			}
		}
		err := c.swapSnapshotLocked(tmp)
		c.mu.Unlock()
		return err
	}
}

// swapSnapshotLocked renames the fsynced temp snapshot over the live
// one and truncates the log. Callers hold c.mu, so no mutation can land
// between the rename and the truncation. (SaveFile's post-Close branch
// in codec.go mirrors the replace protocol without the truncation —
// change one, change both.)
func (c *Corpus) swapSnapshotLocked(tmp string) error {
	if err := os.Rename(tmp, c.snapPath); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename must be durable before the log is truncated: without a
	// directory fsync, a power failure could persist the truncation but
	// not the new directory entry, recovering the old snapshot with an
	// empty log — exactly the acknowledged-mutation loss the WAL exists
	// to rule out.
	if err := syncDir(filepath.Dir(c.snapPath)); err != nil {
		return err
	}
	if err := c.wal.reset(); err != nil {
		return err
	}
	// The log generation ends here: records folded into the snapshot
	// leave the replication buffer, and followers identify their position
	// by (generation, index) — see repl.go.
	c.rotateReplLocked()
	return nil
}

// writeFileSync writes data to path (created or truncated) and fsyncs
// it.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close syncs and closes the write-ahead log. The corpus remains usable
// in memory, but further mutations are no longer logged (they set the
// sticky log error instead); Close a corpus only when done with it.
// Closing a corpus that has no log, or closing twice, is a no-op — a
// "defer Close + explicit Close" shutdown reports a clean exit.
func (c *Corpus) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.wal
	if w == nil {
		return nil
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.err
	w.mu.Unlock()
	if err == nil {
		if serr := w.f.Sync(); serr != nil {
			err = fmt.Errorf("corpus: write-ahead log sync: %w", serr)
		}
	}
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	w.fail(errors.New("corpus: write-ahead log closed"))
	return err
}

// logMutation appends one record for an applied mutation. Callers hold
// c.mu; a corpus without a log only bumps the mutation sequence.
func (c *Corpus) logMutation(op byte, id ID, t *tree.Tree) {
	c.mutSeq++
	if c.wal != nil {
		if body := c.wal.append(op, id, t); body != nil {
			c.replAppendLocked(body)
		}
	}
}
