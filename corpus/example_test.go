package corpus_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	ted "repro"
	"repro/batch"
	"repro/corpus"
)

// A corpus persists trees together with their prepared artifacts and
// index posting lists: Save writes one binary stream, Load brings the
// whole thing back in O(bytes) — no re-parsing, no re-preparation, no
// index rebuild — and joins on the reloaded corpus match the original
// bit for bit.
func ExampleCorpus_Save() {
	c := corpus.New(corpus.WithHistogramIndex())
	for _, s := range []string{"{a{b}{c}}", "{a{b}{d}}", "{x{y}{z}}"} {
		c.Add(ted.MustParse(s))
	}

	var disk bytes.Buffer // stands in for a file; see also SaveFile/SaveDir
	if err := c.Save(&disk); err != nil {
		panic(err)
	}

	// ... a fresh process restarts from the bytes:
	restored, err := corpus.Load(&disk)
	if err != nil {
		panic(err)
	}
	e := restored.Engine() // corpus-attached: hydrates stored artifacts
	matches, _ := restored.Join(e, 2, batch.JoinOptions{})
	for _, m := range matches {
		fmt.Printf("trees %d and %d at distance %g\n", m.I, m.J, m.Dist)
	}
	// Output:
	// trees 0 and 1 at distance 1
}

// Open is Load plus durability: mutations append to a write-ahead log
// before they return, so a crash between Saves loses nothing — the next
// Open replays the log over the snapshot. Checkpoint folds the log into
// a fresh snapshot when replay time matters more than write latency.
func ExampleOpen() {
	dir, _ := os.MkdirTemp("", "tedwal")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "trees.tedc")

	c, err := corpus.Open(path, corpus.WithHistogramIndex())
	if err != nil {
		panic(err)
	}
	id := c.Add(ted.MustParse("{a{b}{c}}"))
	c.Add(ted.MustParse("{a{b}}"))
	c.Replace(id, ted.MustParse("{a{b}{d}}"))
	// The crash: no Save, no Checkpoint — the log already has every
	// record. (Close stands in for the kernel closing a killed process's
	// descriptors; it flushes nothing the mutations hadn't written.)
	c.Close()

	recovered, err := corpus.Open(path, corpus.WithHistogramIndex())
	if err != nil {
		panic(err)
	}
	defer recovered.Close()
	tr, _ := recovered.Tree(id)
	fmt.Println(recovered.Len(), tr)
	// Output:
	// 2 {a{b}{d}}
}

// Stable IDs survive deletes and replaces: ID 1 keeps naming the same
// logical slot while its tree changes, and deleted IDs are never reused.
func ExampleCorpus_Replace() {
	c := corpus.New()
	c.Add(ted.MustParse("{a}"))
	id := c.Add(ted.MustParse("{b{c}}"))
	c.Replace(id, ted.MustParse("{b{d}}"))
	c.Delete(0)
	next := c.Add(ted.MustParse("{e}")) // 0 is burned; fresh IDs continue upward

	tr, _ := c.Tree(id)
	fmt.Println(tr, id, next)
	// Output:
	// {b{d}} 1 2
}
