package corpus_test

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"repro/corpus"
	"repro/internal/tree"
)

func mustParse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := tree.ParseBracket(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestWALFrameRoundTrip: the wire framing (shared with the on-disk log)
// carries bodies back intact, reports a clean EOF exactly at a frame
// boundary, and distinguishes the two failure modes a follower must
// react to — a torn tail mid-frame and a corrupted byte.
func TestWALFrameRoundTrip(t *testing.T) {
	bodies := [][]byte{{1}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 1000)}
	var buf []byte
	for _, b := range bodies {
		buf = corpus.AppendWALFrame(buf, b)
	}

	br := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range bodies {
		got, err := corpus.ReadWALFrame(br)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q, %v", i, got, err)
		}
	}
	if _, err := corpus.ReadWALFrame(br); err != io.EOF {
		t.Fatalf("clean boundary must read io.EOF, got %v", err)
	}

	// Torn tail: every proper prefix that cuts into a frame is
	// io.ErrUnexpectedEOF after the complete frames before it.
	brTorn := bufio.NewReader(bytes.NewReader(buf[:len(buf)-3]))
	for range bodies[:2] {
		if _, err := corpus.ReadWALFrame(brTorn); err != nil {
			t.Fatalf("complete frame before the tear failed: %v", err)
		}
	}
	if _, err := corpus.ReadWALFrame(brTorn); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn tail must read io.ErrUnexpectedEOF, got %v", err)
	}

	// Byte flip: each single-bit corruption of the last frame must fail
	// loudly (never io.EOF, never a wrong body returned as valid).
	lastStart := len(buf) - len(corpus.AppendWALFrame(nil, bodies[2]))
	for off := lastStart; off < len(buf); off++ {
		flipped := append([]byte(nil), buf...)
		flipped[off] ^= 0x01
		brf := bufio.NewReader(bytes.NewReader(flipped))
		var err error
		var body []byte
		for err == nil {
			body, err = corpus.ReadWALFrame(brf)
			if err == nil && !bytes.Equal(body, bodies[0]) && !bytes.Equal(body, bodies[1]) && !bytes.Equal(body, bodies[2]) {
				t.Fatalf("offset %d: corrupted frame decoded to a novel body", off)
			}
		}
		if err == io.EOF && brf.Buffered() == 0 {
			// A flip inside the length prefix can re-frame the stream; it
			// must still never return a novel body (checked above) — but a
			// clean EOF that consumed everything while returning only valid
			// bodies means corruption went unnoticed.
			t.Fatalf("offset %d: flip went undetected (clean EOF)", off)
		}
	}
}

// TestProgressFrames: liveness frames round-trip and are never confused
// with mutation record bodies.
func TestProgressFrames(t *testing.T) {
	for _, seq := range []int{0, 1, 255, 1 << 20} {
		body := corpus.ProgressBody(seq)
		got, ok := corpus.DecodeProgress(body)
		if !ok || got != seq {
			t.Fatalf("progress %d decoded to %d, %v", seq, got, ok)
		}
	}
	if _, ok := corpus.DecodeProgress([]byte{1, 0}); ok {
		t.Fatal("a mutation record body decoded as progress")
	}
	if _, ok := corpus.DecodeProgress(nil); ok {
		t.Fatal("empty body decoded as progress")
	}
}

// TestReplBufferLifecycle pins the generation protocol the WAL-shipping
// endpoints are built on: records accumulate under one generation id,
// ReplRecords serves suffixes, a checkpoint rotates the generation and
// maps exactly-caught-up positions across while refusing stale ones.
func TestReplBufferLifecycle(t *testing.T) {
	dir := t.TempDir()
	c, err := corpus.Open(filepath.Join(dir, "c.tedc"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Replicable() {
		t.Fatal("corpus with a WAL must be replicable")
	}

	c.Add(mustParse(t, "{a{b}}"))
	c.Add(mustParse(t, "{a{c}}"))
	c.Add(mustParse(t, "{x}"))

	pos := c.ReplState()
	if pos.Gen == "" || pos.Seq != 3 {
		t.Fatalf("ReplState = %+v, want gen set and seq 3", pos)
	}

	// A follower from 0 reads all three; from 2, the suffix.
	recs, next, ok := c.ReplRecords(corpus.ReplPos{Gen: pos.Gen, Seq: 0}, 100)
	if !ok || len(recs) != 3 || next.Seq != 3 {
		t.Fatalf("ReplRecords(0) = %d recs, next %+v, %v", len(recs), next, ok)
	}
	if recs2, _, ok := c.ReplRecords(corpus.ReplPos{Gen: pos.Gen, Seq: 2}, 100); !ok || len(recs2) != 1 || !bytes.Equal(recs2[0], recs[2]) {
		t.Fatalf("suffix read diverged")
	}

	// Replaying the records into a second corpus reproduces the trees.
	c2, err := corpus.Open(filepath.Join(dir, "c2.tedc"))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for _, rec := range recs {
		if err := c2.ApplyReplicated(rec); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(c2.IDs(), c.IDs()) {
		t.Fatalf("replayed IDs %v, want %v", c2.IDs(), c.IDs())
	}

	// Unknown generation: refused, a ship is the only way back.
	if _, ok := c.ReplCheck(corpus.ReplPos{Gen: "feedbeef00000000", Seq: 0}); ok {
		t.Fatal("unknown generation accepted")
	}

	// Rotation: the caught-up position maps to the new generation's
	// start; any position short of the fold is refused.
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	newPos := c.ReplState()
	if newPos.Gen == pos.Gen || newPos.Seq != 0 {
		t.Fatalf("after checkpoint ReplState = %+v, want fresh generation at 0", newPos)
	}
	mapped, ok := c.ReplCheck(corpus.ReplPos{Gen: pos.Gen, Seq: 3})
	if !ok || mapped != newPos {
		t.Fatalf("caught-up position mapped to %+v, %v; want %+v", mapped, ok, newPos)
	}
	if _, ok := c.ReplCheck(corpus.ReplPos{Gen: pos.Gen, Seq: 2}); ok {
		t.Fatal("stale position survived the rotation")
	}
}

// TestReplBufferSeededByReplay: reopening a corpus with unfolded WAL
// records seeds the replication buffer with them, so SnapshotBytes +
// the live buffer always cover the generation's whole history.
func TestReplBufferSeededByReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.tedc")
	c, err := corpus.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(mustParse(t, "{a{b}}"))
	c.Add(mustParse(t, "{a{b}{c}}"))
	if err := c.Close(); err != nil { // Close keeps the log; only Checkpoint folds it
		t.Fatal(err)
	}

	c, err = corpus.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pos := c.ReplState()
	if pos.Seq != 2 {
		t.Fatalf("replayed corpus ReplState.Seq = %d, want 2", pos.Seq)
	}
	recs, _, ok := c.ReplRecords(corpus.ReplPos{Gen: pos.Gen, Seq: 0}, 100)
	if !ok || len(recs) != 2 {
		t.Fatalf("replayed records not in the buffer: %d, %v", len(recs), ok)
	}

	// SnapshotBytes is an atomic cut: its position matches its contents.
	snap, spos, err := c.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if spos != pos {
		t.Fatalf("SnapshotBytes position %+v, want %+v", spos, pos)
	}
	sc, err := corpus.Load(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 2 {
		t.Fatalf("snapshot holds %d trees, want 2", sc.Len())
	}
}
