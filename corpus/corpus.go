// Package corpus is the persistence layer of the batch-TED stack: a
// Corpus holds trees under stable IDs together with everything the
// distance machinery derives from them — interned label ids, RTED
// decomposition cardinalities, mirror-leafmost arrays, lower-bound
// profiles, and the inverted-index posting lists of the similarity-join
// generators — and serializes the whole thing through a versioned binary
// codec (Save/Load).
//
// RTED's design front-loads per-tree work so it can be amortized across
// many comparisons; a corpus extends the amortization across process
// lifetimes. A server that restarts does not re-prepare and re-index its
// collection: Load decodes the stored artifacts in O(bytes), and
// corpus-attached engines hydrate PreparedTrees from them
// (batch.PrepareHydrated) instead of recomputing.
//
// # Durability
//
// Save/Load persist point-in-time snapshots. Open adds durability
// between them: it attaches a write-ahead log (a sidecar file next to
// the snapshot) that records every Add, Delete and Replace before the
// mutation returns, and replays log-over-snapshot at startup — so a
// crash, kill -9 included, loses nothing that was acknowledged.
// Checkpoint (or SaveFile to the attached path) folds the log into a
// fresh snapshot atomically and truncates it; Sync forces the log to
// stable storage and surfaces logging failures; Close releases it. See
// wal.go for the log format and the replay semantics that make
// recovery idempotent.
//
// # Stable IDs
//
// Add assigns monotonically increasing IDs that survive Delete and
// Replace — an ID names the same logical tree for the corpus's whole
// life, across saves and loads, which is what lets external systems
// (and the sharded posting lists) refer to trees without renumbering.
//
// # Engines
//
// A Corpus is model-free: artifacts are cost-model independent, and
// per-node operation costs are priced at hydration time. Engines are
// created through Corpus.Engine, which attaches them to the corpus's
// label interner; the engine-binding check of batch.PreparedTree
// thereby becomes a corpus-compatibility check — any engine the corpus
// created can hydrate any of its trees.
//
// Typical use:
//
//	c := corpus.New(corpus.WithHistogramIndex())
//	for _, t := range trees {
//		c.Add(t)
//	}
//	c.SaveFile("trees.tedc")
//	// ... later, in a fresh process:
//	c, _ = corpus.LoadFile("trees.tedc")
//	e := c.Engine(batch.WithWorkers(8))
//	matches, _ := c.Join(e, 12, batch.JoinOptions{})
package corpus

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/batch"
	"repro/index"
	"repro/internal/bounds"
	"repro/internal/cost"
	"repro/internal/gted"
	"repro/internal/strategy"
	"repro/internal/tree"
)

// ID names one logical tree of a corpus for the corpus's whole life:
// IDs are assigned in Add order, survive Delete (never reused) and
// Replace (same ID, new tree), and are the join/index identity after a
// save/load round trip.
type ID int64

// entry is one stored tree with its prepared artifacts. The tree and
// artifacts are immutable once built; prof and decomp are built lazily
// under c.mu on first need (bounded calls and Save need the profile,
// only optimal-strategy engines need the decomposition — fixed-strategy
// competitors never do), and prep caches the last hydration so repeated
// joins through one engine prepare nothing.
type entry struct {
	t      *tree.Tree
	ids    []int32 // interned label id per node (corpus interner)
	lfm    []int32
	decomp *strategy.Decomp
	prof   *bounds.Profile

	prep    *batch.PreparedTree
	prepEng *batch.Engine
}

// Corpus is a persistent store of trees and their prepared artifacts.
// All methods are safe for concurrent use.
type Corpus struct {
	mu      sync.RWMutex
	in      *cost.Interner
	entries map[ID]*entry
	next    ID

	hist *index.Histogram
	pq   *index.PQGram

	// Set by Open: the attached write-ahead log and the snapshot path it
	// recovers from / Checkpoint compacts into. Nil for purely in-memory
	// corpora (New, Load). mutSeq counts mutations (under mu) so
	// Checkpoint can tell whether its lock-free snapshot flush raced one;
	// ckptMu serializes whole checkpoints.
	wal      *wal
	snapPath string
	mutSeq   uint64
	ckptMu   sync.Mutex

	// Replication state (repl.go): the in-memory record bodies of the
	// current log generation, the generation id itself, and the carryover
	// position of the previous generation so a fully caught-up follower
	// survives a checkpoint without re-shipping the snapshot. replCh is a
	// broadcast channel, closed and replaced whenever the buffer or the
	// generation changes.
	replGen   string
	replRecs  [][]byte
	prevGen   string
	prevCount int
	replCh    chan struct{}
}

// Option configures New.
type Option func(*Corpus)

// WithHistogramIndex makes the corpus maintain a label-histogram
// inverted index (index.Histogram) incrementally: Add, Delete and
// Replace keep the posting lists in sync, Save persists them, and Join
// uses them for candidate generation instead of building a throwaway
// index per call.
func WithHistogramIndex() Option {
	return func(c *Corpus) { c.hist = index.NewHistogram() }
}

// WithPQGramIndex is WithHistogramIndex for the (1, q)-gram index
// (index.PQGram with stem length 1, the provably complete
// parameterization); q must be ≥ 1.
func WithPQGramIndex(q int) Option {
	return func(c *Corpus) { c.pq = index.NewPQGram(1, q) }
}

// New builds an empty corpus.
func New(opts ...Option) *Corpus {
	c := &Corpus{
		in:      cost.NewInterner(),
		entries: make(map[ID]*entry),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// HasHistogramIndex reports whether the corpus maintains a histogram
// index.
func (c *Corpus) HasHistogramIndex() bool { return c.hist != nil }

// HasPQGramIndex reports whether the corpus maintains a pq-gram index,
// and with which base length.
func (c *Corpus) HasPQGramIndex() (q int, ok bool) {
	if c.pq == nil {
		return 0, false
	}
	return c.pq.Q(), true
}

// build computes the eager artifacts of t: interned label ids and the
// mirror-leafmost array. The decomposition cardinalities and the bound
// profile are deferred (see entry).
func (c *Corpus) build(t *tree.Tree) *entry {
	n := t.Len()
	ids := make([]int32, n)
	for v := 0; v < n; v++ {
		ids[v] = int32(c.in.Intern(t.Label(v)))
	}
	return &entry{
		t:   t,
		ids: ids,
		lfm: gted.MirrorLeafmost(t),
	}
}

// Add stores t under a fresh ID and returns it. The per-tree artifacts
// are computed now, once; every later join, top-k or bounded call — in
// this process or any process that Loads a Save — reuses them.
//
// Mutations update the maintained indexes while still holding the
// corpus lock (here and in Delete/Replace), so a concurrent Save — which
// serializes store and index snapshots under the same lock — can never
// persist a corpus whose index disagrees with its trees.
func (c *Corpus) Add(t *tree.Tree) ID {
	en := c.build(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.next
	c.next++
	if id > math.MaxInt32 {
		panic("corpus: ID space exhausted (2^31 trees)")
	}
	c.entries[id] = en
	c.indexPut(id, t)
	c.logMutation(walOpAdd, id, t)
	return id
}

// Delete removes the tree under id. The ID is never reused; the index
// postings become tombstones reclaimed by compaction. It reports
// whether a tree was stored under id.
func (c *Corpus) Delete(id ID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[id]; !ok {
		return false
	}
	delete(c.entries, id)
	if c.hist != nil {
		c.hist.Delete(int(id))
	}
	if c.pq != nil {
		c.pq.Delete(int(id))
	}
	c.logMutation(walOpDelete, id, nil)
	return true
}

// Replace swaps the tree under an existing id for t, rebuilding its
// artifacts and re-indexing it under the same ID (the old postings
// become tombstones). It reports whether id was present.
func (c *Corpus) Replace(id ID, t *tree.Tree) bool {
	en := c.build(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[id]; !ok {
		return false
	}
	c.entries[id] = en
	c.indexPut(id, t)
	c.logMutation(walOpReplace, id, t)
	return true
}

// indexPut re-indexes one tree; callers hold c.mu.
func (c *Corpus) indexPut(id ID, t *tree.Tree) {
	if c.hist != nil {
		c.hist.Put(int(id), t)
	}
	if c.pq != nil {
		c.pq.Put(int(id), t)
	}
}

// Tree returns the tree stored under id.
func (c *Corpus) Tree(id ID) (*tree.Tree, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	en, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	return en.t, true
}

// Len returns the number of stored trees.
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// IDs returns the stored IDs in ascending order.
func (c *Corpus) IDs() []ID {
	c.mu.RLock()
	out := make([]ID, 0, len(c.entries))
	for id := range c.entries {
		out = append(out, id)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Engine builds a batch engine attached to this corpus: it shares the
// corpus's label interner, so corpus-stored artifacts hydrate directly
// into its PreparedTrees. Options are as for batch.New; a WithInterner
// among them is overridden — attachment is the point of this
// constructor.
func (c *Corpus) Engine(opts ...batch.Option) *batch.Engine {
	return batch.New(append(append([]batch.Option{}, opts...), batch.WithInterner(c.in))...)
}

// checkEngine panics unless e was attached to this corpus.
func (c *Corpus) checkEngine(e *batch.Engine) {
	if e.Interner() != c.in {
		panic(fmt.Sprintf(
			"corpus: engine %p is not attached to this corpus (its label ids come from a "+
				"different interner); create engines with Corpus.Engine", e))
	}
}

// prepared returns the hydrated PreparedTree of en for engine e,
// caching it on the entry. Callers hold c.mu for writing.
func (c *Corpus) prepared(e *batch.Engine, en *entry) *batch.PreparedTree {
	if en.prep != nil && en.prepEng == e {
		return en.prep
	}
	if en.decomp == nil && !e.FixedStrategy() {
		en.decomp = strategy.NewDecomp(en.t)
	}
	en.prep = e.PrepareHydrated(en.t, batch.Hydration{
		In:      c.in,
		IDs:     en.ids,
		Decomp:  en.decomp,
		Lfm:     en.lfm,
		Profile: en.prof,
	})
	en.prepEng = e
	return en.prep
}

// snapshotPrepared hydrates every stored tree for e and returns the IDs
// (ascending) with their PreparedTrees, positions aligned. On a warm
// corpus (after Warm, the serving steady state) the whole snapshot is
// taken under the read lock, so concurrent joins, top-k calls and point
// reads proceed in parallel; the exclusive lock is only taken when some
// entry still needs hydration.
//
// If under is non-nil it runs on the captured snapshot while the lock
// (read or write) is still held — the hook Join uses to probe the
// maintained indexes against the same corpus state the trees came from;
// probing after release would race a Replace that re-indexes a tree the
// snapshot still holds in its old form, yielding candidates from no
// consistent state at all.
func (c *Corpus) snapshotPrepared(e *batch.Engine, under func(ids []ID, ps []*batch.PreparedTree)) ([]ID, []*batch.PreparedTree) {
	ids := c.IDs()
	c.mu.RLock()
	ps := make([]*batch.PreparedTree, 0, len(ids))
	kept := make([]ID, 0, len(ids))
	warm := true
	for _, id := range ids {
		en, ok := c.entries[id]
		if !ok {
			continue // deleted between the two locks
		}
		if en.prep == nil || en.prepEng != e {
			warm = false
			break
		}
		ps = append(ps, en.prep)
		kept = append(kept, id)
	}
	if warm && under != nil {
		under(kept, ps)
	}
	c.mu.RUnlock()
	if warm {
		return kept, ps
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	ps = ps[:0]
	kept = kept[:0]
	for _, id := range ids {
		en, ok := c.entries[id]
		if !ok {
			continue
		}
		ps = append(ps, c.prepared(e, en))
		kept = append(kept, id)
	}
	if under != nil {
		under(kept, ps)
	}
	return kept, ps
}

// Warm makes the corpus fully ready to serve engine e: every stored
// tree is hydrated into a cached PreparedTree and every outstanding
// bound profile is built, so the first join after Warm pays for nothing
// but the distance computations. On a corpus that came from Load the
// profiles are already decoded and warming is pure hydration — the
// server-restart fast path this package exists for.
func (c *Corpus) Warm(e *batch.Engine) {
	c.checkEngine(e)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, en := range c.entries {
		if en.prof == nil {
			en.prof = bounds.NewProfile(en.t)
			en.prep, en.prepEng = nil, nil // rehydrate with the profile attached
		}
		c.prepared(e, en)
	}
}

// PrepareQuery prepares an ad-hoc tree — one that is not stored in the
// corpus — for use against this corpus's trees on engine e
// (corpus-attached): the request path of a server answering distance,
// bounded-distance and top-k queries about trees that arrive over the
// wire. Unlike Prepared, nothing is cached: the result lives exactly as
// long as the caller keeps it. See batch.Engine.PrepareQuery for the
// artifact and interning details.
func (c *Corpus) PrepareQuery(e *batch.Engine, t *tree.Tree) *batch.PreparedTree {
	c.checkEngine(e)
	return e.PrepareQuery(t)
}

// Prepared returns the PreparedTree of id hydrated for engine e (from
// the stored artifacts, caching the result), for callers that drive
// batch.Engine directly — streaming pair queues, top-k, bounded calls.
// The warm case — the entry already hydrated for e, i.e. every request
// after Warm — is a read-locked map lookup, so concurrent request
// handlers do not serialize here.
func (c *Corpus) Prepared(e *batch.Engine, id ID) (*batch.PreparedTree, bool) {
	c.checkEngine(e)
	c.mu.RLock()
	en, ok := c.entries[id]
	if ok && en.prep != nil && en.prepEng == e {
		p := en.prep
		c.mu.RUnlock()
		return p, true
	}
	c.mu.RUnlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	en, ok = c.entries[id]
	if !ok {
		return nil, false
	}
	return c.prepared(e, en), true
}
