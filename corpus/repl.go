package corpus

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Replication. A primary ships its write-ahead log to followers as a
// stream of record bodies in the on-disk framing (see wal.go); a
// follower applies each body with ApplyReplicated, which reuses the
// log's idempotent set-semantics replay and appends the identical bytes
// to the follower's own log — so a follower is itself durable, can be
// promoted, and converges to a byte-identical store.
//
// Positions are (generation, index). A generation is one lifetime of
// the log between truncations: it begins at Open (covering replayed
// records) and ends when Checkpoint folds the log into the snapshot.
// The corpus keeps the current generation's record bodies in memory —
// bounded by the same compaction policy that bounds the log file — and
// remembers the (generation, count) the last checkpoint retired, so a
// follower that was fully caught up resumes cleanly across the
// truncation. A follower whose position matches neither is behind a
// truncation it never saw; its records are gone from memory and only
// exist folded into the snapshot, so it must re-ship a checkpoint
// (SnapshotBytes) and tail from the position the snapshot captures.
//
// Generation ids are random, never reused, so a primary restart or a
// divergent follower can never be mistaken for a valid resume point.

// ReplPos is a replication stream position: the index of the next
// record to read within a log generation.
type ReplPos struct {
	Gen string
	Seq int
}

// errReplApply marks a replicated record body the corpus refused.
var errReplApply = errors.New("corpus: invalid replicated record")

func newReplGen() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("corpus: no entropy for replication generation: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// ensureReplLocked lazily initializes the generation id and broadcast
// channel. Callers hold c.mu (read lock is not enough).
func (c *Corpus) ensureReplLocked() {
	if c.replGen == "" {
		c.replGen = newReplGen()
		c.replCh = make(chan struct{})
	}
}

// replAppendLocked copies one record body into the current generation's
// buffer and wakes tailing streams. Callers hold c.mu.
func (c *Corpus) replAppendLocked(body []byte) {
	c.ensureReplLocked()
	c.replRecs = append(c.replRecs, append([]byte(nil), body...))
	close(c.replCh)
	c.replCh = make(chan struct{})
}

// rotateReplLocked retires the current generation after a checkpoint:
// its records are in the snapshot now. Callers hold c.mu.
func (c *Corpus) rotateReplLocked() {
	c.ensureReplLocked()
	c.prevGen, c.prevCount = c.replGen, len(c.replRecs)
	c.replGen, c.replRecs = newReplGen(), nil
	close(c.replCh)
	c.replCh = make(chan struct{})
}

// Replicable reports whether this corpus can feed followers: only a
// corpus opened with Open keeps the replication buffer (the in-memory
// mirror of its write-ahead log).
func (c *Corpus) Replicable() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.wal != nil
}

// ReplState returns the current replication position: the generation id
// and the number of records it holds. A follower that has applied
// everything up to this position is exactly caught up.
func (c *Corpus) ReplState() ReplPos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureReplLocked()
	return ReplPos{Gen: c.replGen, Seq: len(c.replRecs)}
}

// ReplCheck validates a follower's resume position. It returns the
// position streaming should continue from and true when the position is
// live: either inside the current generation, or exactly at the end of
// the generation the last checkpoint retired (the caught-up follower's
// view of a truncation it hasn't heard about yet — it resumes at the
// new generation's start). Anything else — an unknown generation, or an
// index the truncation left behind — returns false: those records are
// gone from memory, and the follower must re-ship a checkpoint.
func (c *Corpus) ReplCheck(pos ReplPos) (ReplPos, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureReplLocked()
	switch {
	case pos.Gen == c.replGen && pos.Seq <= len(c.replRecs):
		return pos, true
	case pos.Gen == c.prevGen && pos.Gen != "" && pos.Seq == c.prevCount:
		return ReplPos{Gen: c.replGen, Seq: 0}, true
	}
	return ReplPos{}, false
}

// ReplRecords returns up to max record bodies starting at pos.Seq, with
// the position one past the last returned record. ok is false under the
// same conditions as ReplCheck. The returned bodies are immutable;
// callers must not modify them.
func (c *Corpus) ReplRecords(pos ReplPos, max int) (recs [][]byte, next ReplPos, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureReplLocked()
	if pos.Gen == c.prevGen && pos.Gen != "" && pos.Seq == c.prevCount {
		pos = ReplPos{Gen: c.replGen, Seq: 0}
	}
	if pos.Gen != c.replGen || pos.Seq > len(c.replRecs) {
		return nil, ReplPos{}, false
	}
	end := len(c.replRecs)
	if max > 0 && pos.Seq+max < end {
		end = pos.Seq + max
	}
	return c.replRecs[pos.Seq:end], ReplPos{Gen: c.replGen, Seq: end}, true
}

// ReplWait blocks until the corpus moves past pos — new records in
// pos.Gen, a generation change, or ctx done. It returns immediately if
// pos is already behind.
func (c *Corpus) ReplWait(ctx context.Context, pos ReplPos) {
	for {
		c.mu.Lock()
		c.ensureReplLocked()
		ch := c.replCh
		moved := c.replGen != pos.Gen || len(c.replRecs) > pos.Seq
		c.mu.Unlock()
		if moved {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-ch:
		}
	}
}

// SnapshotBytes encodes the corpus in the snapshot codec and returns
// the bytes together with the replication position they capture: a
// follower that restores exactly these bytes may tail the log from that
// position. This is the checkpoint-shipping primitive — the encode runs
// under the store lock so bytes and position are one atomic cut.
func (c *Corpus) SnapshotBytes() ([]byte, ReplPos, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureReplLocked()
	var buf bytes.Buffer
	if err := c.saveLocked(&buf, codecVersion); err != nil {
		return nil, ReplPos{}, err
	}
	return buf.Bytes(), ReplPos{Gen: c.replGen, Seq: len(c.replRecs)}, nil
}

// ApplyReplicated applies one replicated record body — as framed on a
// primary's log stream — with the log's set-semantics replay, and
// appends the identical bytes to this corpus's own write-ahead log. A
// structurally invalid body is an error and changes nothing.
func (c *Corpus) ApplyReplicated(body []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.applyRecord(body) {
		return errReplApply
	}
	c.mutSeq++
	if c.wal != nil {
		c.wal.appendBody(body)
		c.replAppendLocked(body)
		return c.wal.getErr()
	}
	return nil
}

// --- wire framing -----------------------------------------------------
//
// The replication stream reuses the log's on-disk record framing
// (uvarint length | body | crc32), so a follower verifies the same
// checksum the primary's disk carries and a flipped byte anywhere in
// transit is caught before apply. One extra body form exists only on
// the wire: a progress frame, op 0, carrying the primary's current
// position — it lets an idle stream prove liveness and a follower
// measure its lag without any mutation traffic.

// maxReplBody bounds a wire frame's claimed length before any
// allocation; it comfortably exceeds the largest legal record body
// (maxNodes nodes with labels) without letting a hostile length prefix
// allocate unbounded memory.
const maxReplBody = 1 << 28

// AppendWALFrame appends the wire framing of one record body to dst.
func AppendWALFrame(dst, body []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	dst = append(dst, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(dst, crc[:]...)
}

// ReadWALFrame reads one framed record from br and returns its body
// with the checksum verified. io.EOF at a frame boundary is returned as
// is; a frame cut short anywhere else surfaces as
// io.ErrUnexpectedEOF, and a checksum or length-bound violation as an
// error — callers distinguish a cleanly closed stream from a damaged
// one.
func ReadWALFrame(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	if n > maxReplBody {
		return nil, fmt.Errorf("corpus: replication frame claims %d bytes", n)
	}
	rec := make([]byte, n+4)
	if _, err := io.ReadFull(br, rec); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	body := rec[:n]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(rec[n:]) {
		return nil, errors.New("corpus: replication frame checksum mismatch")
	}
	return body, nil
}

// ProgressBody encodes a progress frame body for pos: op 0 followed by
// the record index. The generation travels out of band (it is fixed per
// stream), so the frame is a few bytes.
func ProgressBody(seq int) []byte {
	b := []byte{0}
	return binary.AppendUvarint(b, uint64(seq))
}

// DecodeProgress reports whether body is a progress frame and, if so,
// the position it carries.
func DecodeProgress(body []byte) (seq int, ok bool) {
	if len(body) == 0 || body[0] != 0 {
		return 0, false
	}
	v, n := binary.Uvarint(body[1:])
	if n <= 0 || n != len(body)-1 || v > 1<<62 {
		return 0, false
	}
	return int(v), true
}
