package corpus

import (
	"context"
	"time"

	"repro/batch"
	"repro/index"
)

// JoinStream is the streaming Join: every match is passed to emit as
// soon as its pair resolves on the worker pool, instead of being
// buffered into a slice — the corpus side of a server streaming NDJSON
// join results to a client.
//
// Candidate generation, mode resolution, snapshot consistency and the
// match set are exactly Join's (run to completion, the emitted multiset
// equals Join's result); only the delivery differs. emit runs on the
// calling goroutine, one invocation at a time, in completion order.
// Cancelling ctx stops the engine work at the next pair boundary and
// returns ctx's error; the returned stats then cover only the pairs
// actually evaluated.
func (c *Corpus) JoinStream(ctx context.Context, e *batch.Engine, tau float64, opts batch.JoinOptions, emit func(Match)) (batch.JoinStats, error) {
	c.checkEngine(e)

	if !e.UnitCost() {
		ids, ps := c.snapshotPrepared(e, nil)
		return e.JoinStream(ctx, ps, tau, false, mapEmit(ids, emit))
	}

	wantQ := opts.Q
	if wantQ <= 0 {
		wantQ = 2
	}
	auto := opts.Mode == batch.IndexAuto

	// Mode resolution and index probing run inside the snapshot hook —
	// same lock acquisition as the prepared trees — exactly as in Join.
	var (
		mode      batch.IndexMode
		probed    bool
		cands     []batch.CandidatePair
		probeTime time.Duration
	)
	ids, ps := c.snapshotPrepared(e, func(ids []ID, ps []*batch.PreparedTree) {
		mode = opts.Mode
		if auto {
			mode = c.resolveAuto(ps, tau)
		}
		var probe func(q int, buf []index.Candidate) []index.Candidate
		switch {
		case mode == batch.IndexHistogram && c.hist != nil:
			probe = func(q int, buf []index.Candidate) []index.Candidate {
				return c.hist.CandidatesBelow(q, tau, buf)
			}
		case mode == batch.IndexPQGram && c.pq != nil && (auto || c.pq.Q() == wantQ):
			probe = func(q int, buf []index.Candidate) []index.Candidate {
				return c.pq.CandidatesBelow(q, tau, buf)
			}
		}
		if probe == nil {
			return
		}
		probed = true
		start := time.Now()
		pos := make(map[int]int, len(ids))
		for i, id := range ids {
			pos[int(id)] = i
		}
		var buf []index.Candidate
		for j, id := range ids {
			buf = probe(int(id), buf)
			for _, cd := range buf {
				i, ok := pos[cd.ID]
				if !ok {
					continue // tombstoned posting of a deleted tree
				}
				cands = append(cands, batch.CandidatePair{I: i, J: j, LB: cd.LB})
			}
		}
		probeTime = time.Since(start)
	})

	if !probed {
		return e.JoinIndexedStream(ctx, ps, tau, batch.JoinOptions{Mode: mode, Q: opts.Q}, mapEmit(ids, emit))
	}

	start := time.Now()
	st, err := e.JoinCandidatesStream(ctx, ps, cands, tau, mapEmit(ids, emit))
	st.Mode = mode
	st.IndexTime = probeTime
	st.Elapsed = probeTime + time.Since(start)
	return st, err
}

// mapEmit translates engine matches (collection positions) into corpus
// matches (stored IDs) on the way to the caller's emit. Positions are
// aligned with the ascending snapshot IDs, so I < J is preserved.
func mapEmit(ids []ID, emit func(Match)) func(batch.Match) {
	return func(m batch.Match) {
		emit(Match{I: ids[m.I], J: ids[m.J], Dist: m.Dist})
	}
}

// TopKAcrossStream is TopKAcross with streaming delivery and
// cancellation: the scan checks ctx between stored trees and abandons
// the remaining work once cancelled (returning ctx's error and emitting
// nothing — partial top-k answers are not sound); run to completion,
// the final k matches are passed to emit one at a time in result order
// and the call returns the scan's stats.
func (c *Corpus) TopKAcrossStream(ctx context.Context, e *batch.Engine, query *batch.PreparedTree, k int, emit func(CrossMatch)) (batch.Stats, error) {
	c.checkEngine(e)
	ids, ps := c.snapshotPrepared(e, nil)
	ms, st, err := e.TopKAcrossStream(ctx, query, ps, k)
	if err != nil {
		return st, err
	}
	for _, m := range ms {
		emit(CrossMatch{Tree: ids[m.Tree], Root: m.Root, Dist: m.Dist})
	}
	return st, nil
}
