package corpus_test

import (
	"os"
	"path/filepath"
	"testing"

	ted "repro"
	"repro/corpus"
)

// FuzzWALReplay is the write-ahead log's robustness contract, mirroring
// FuzzCorpusDecode's for the snapshot codec: on an arbitrary .wal file,
// Open must return an error or a usable corpus — never panic, never
// allocate past what the file's bytes can back. Anything it accepts must
// be internally consistent: the corpus saves and reloads losslessly, and
// the recovered log stays appendable (one more mutation survives a
// reopen).
func FuzzWALReplay(f *testing.F) {
	// A real log: the mutations of the crash-durability test.
	seedDir := f.TempDir()
	seedPath := filepath.Join(seedDir, "seed.tedc")
	c, err := corpus.Open(seedPath, corpus.WithHistogramIndex())
	if err != nil {
		f.Fatalf("seed open: %v", err)
	}
	for _, s := range []string{"{a{b}{c}}", "{a{b}}", "{x{y{z}}}"} {
		c.Add(ted.MustParse(s))
	}
	c.Replace(1, ted.MustParse("{q{r}}"))
	c.Delete(0)
	c.Close()
	real, err := os.ReadFile(seedPath + ".wal")
	if err != nil {
		f.Fatalf("seed read: %v", err)
	}
	f.Add(real)
	f.Add(real[:5])                                            // bare header
	f.Add([]byte{})                                            // empty file: Open writes a fresh header
	f.Add([]byte("TEDW\x01"))                                  // header only
	f.Add([]byte("TEDW\x02"))                                  // future version
	f.Add([]byte("not a log"))                                 // foreign file
	f.Add(append(append([]byte{}, real...), 0xFF, 0x03, 0x01)) // trailing junk

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.tedc")
		if err := os.WriteFile(path+".wal", data, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		c, err := corpus.Open(path)
		if err != nil {
			return
		}
		// Accepted: the corpus must be fully operational. Append one
		// mutation (exercising the recovered log position), then verify
		// a snapshot round trip.
		id := c.Add(ted.MustParse("{probe}"))
		if err := c.Sync(); err != nil {
			t.Fatalf("sync on recovered log: %v", err)
		}
		snap := filepath.Join(dir, "snap.tedc")
		if err := c.SaveFile(snap); err != nil {
			t.Fatalf("accepted corpus failed to save: %v", err)
		}
		c2, err := corpus.LoadFile(snap)
		if err != nil {
			t.Fatalf("accepted corpus failed to reload: %v", err)
		}
		if c2.Len() != c.Len() {
			t.Fatalf("reload has %d trees, want %d", c2.Len(), c.Len())
		}
		for _, eid := range c.IDs() {
			a, _ := c.Tree(eid)
			b, ok := c2.Tree(eid)
			if !ok || a.String() != b.String() {
				t.Fatalf("tree %d did not survive the round trip", eid)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// The appended record must itself replay.
		rc, err := corpus.Open(path)
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		if tr, ok := rc.Tree(id); !ok || tr.String() != "{probe}" {
			t.Fatalf("appended mutation lost on reopen")
		}
		rc.Close()
	})
}
