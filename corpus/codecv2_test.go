package corpus_test

import (
	"bytes"
	"encoding/hex"
	"math"
	"testing"

	ted "repro"
	"repro/batch"
	"repro/corpus"
)

// v1GoldenHex is a version-1 stream written before the v2 checksum
// upgrade (corpus: Add {a{b}{c}}, {a{b}}, {x{y{z}}}; Delete(1);
// Replace(2, {q{r}}); histogram index maintained). It pins that the
// decoder keeps accepting checksum-less v1 files byte for byte.
const v1GoldenHex = "54454443010108016201630161017a017901780172017103020003000102000002000100010104010104010104010302010001010103030100010100020102000001020206070001000001020102010201020701060102080700010700000108016201630161017a0179017801720171030200030300010101020102020206010701"

func v1GoldenCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	raw, err := hex.DecodeString(v1GoldenHex)
	if err != nil {
		t.Fatalf("bad fixture hex: %v", err)
	}
	c, err := corpus.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v1 stream no longer loads: %v", err)
	}
	return c
}

func TestCodecV1BackwardCompat(t *testing.T) {
	c := v1GoldenCorpus(t)
	want := map[corpus.ID]string{0: "{a{b}{c}}", 2: "{q{r}}"}
	if got := c.IDs(); len(got) != len(want) {
		t.Fatalf("v1 corpus has ids %v, want %d trees", got, len(want))
	}
	for id, s := range want {
		tr, ok := c.Tree(id)
		if !ok || tr.String() != s {
			t.Fatalf("tree %d = %v, want %s", id, tr, s)
		}
	}
	if !c.HasHistogramIndex() {
		t.Fatalf("v1 corpus lost its histogram index")
	}
	// The loaded corpus must be fully operational: join it, then re-save
	// (now as v2 with checksums) and verify the round trip.
	e := c.Engine()
	ms, _ := c.Join(e, math.Inf(1), batch.JoinOptions{})
	if len(ms) != 1 {
		t.Fatalf("v1 corpus join found %d matches, want 1", len(ms))
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	if got := buf.Bytes()[4]; got != 2 {
		t.Fatalf("re-save wrote version %d, want 2", got)
	}
	if buf.Bytes()[5]&(1<<2) == 0 {
		t.Fatalf("re-save did not set the checksum flag (flags %#x)", buf.Bytes()[5])
	}
	c2, err := corpus.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v2 re-load: %v", err)
	}
	for id, s := range want {
		if tr, ok := c2.Tree(id); !ok || tr.String() != s {
			t.Fatalf("v2 round trip lost tree %d", id)
		}
	}
}

// TestCodecV1EncoderAgreesWithGolden guards the fixture itself: the
// legacy encoder (kept for this test) must still reproduce the golden
// bytes, so a drift in either encoder or fixture is caught, not papered
// over.
func TestCodecV1EncoderAgreesWithGolden(t *testing.T) {
	c := corpus.New(corpus.WithHistogramIndex())
	for _, s := range []string{"{a{b}{c}}", "{a{b}}", "{x{y{z}}}"} {
		c.Add(ted.MustParse(s))
	}
	c.Delete(1)
	c.Replace(2, ted.MustParse("{q{r}}"))
	var buf bytes.Buffer
	if err := c.SaveV1(&buf); err != nil {
		t.Fatalf("SaveV1: %v", err)
	}
	if got := hex.EncodeToString(buf.Bytes()); got != v1GoldenHex {
		t.Fatalf("v1 encoder output drifted from the golden stream:\n got %s\nwant %s", got, v1GoldenHex)
	}
}

// TestCodecChecksumDetectsCorruption flips every byte of a v2 stream in
// turn; each flip must fail Load. Single-byte errors inside a section
// are guaranteed by CRC32, the header bytes by the magic/version/flag
// checks, and the stored checksum bytes by the mismatch they create.
func TestCodecChecksumDetectsCorruption(t *testing.T) {
	for name, opts := range map[string][]corpus.Option{
		"indexed":   {corpus.WithHistogramIndex(), corpus.WithPQGramIndex(2)},
		"indexless": nil,
	} {
		t.Run(name, func(t *testing.T) {
			c := corpus.New(opts...)
			for _, s := range []string{"{a{b}{c}}", "{a{b}}", "{x{y{z}}}", "{a}"} {
				c.Add(ted.MustParse(s))
			}
			var buf bytes.Buffer
			if err := c.Save(&buf); err != nil {
				t.Fatalf("save: %v", err)
			}
			blob := buf.Bytes()
			for i := range blob {
				bad := append([]byte(nil), blob...)
				bad[i] ^= 0xFF
				if _, err := corpus.Load(bytes.NewReader(bad)); err == nil {
					t.Fatalf("flipping byte %d of %d went undetected", i, len(blob))
				}
			}
		})
	}
}
