package corpus_test

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	ted "repro"
	"repro/batch"
	"repro/corpus"
	"repro/gen"
)

// TestJoinCountFilterEquivalence pins the count-filtered pq-gram join to
// the enumerate-everything join across a threshold spread that includes
// the degenerate ends: the (1, q)-gram generator with the gram-count
// filter must never drop a true match (completeness) nor invent one
// (verification), so match sets are identical at every tau — including
// tau = 0 (empty join) and tau = +Inf (every pair; the count filter's
// maxOps saturation path).
func TestJoinCountFilterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := corpus.New(corpus.WithPQGramIndex(2))
	for i := 0; i < 32; i++ {
		c.Add(gen.Random(rng.Int63(), gen.RandomSpec{
			Size: 2 + rng.Intn(24), MaxDepth: 6, MaxFanout: 4, Labels: 4,
		}))
	}
	e := c.Engine(batch.WithWorkers(2))
	for _, tau := range []float64{0, 0.5, 1, 2, 3.5, 6, 10, math.Inf(1)} {
		pq, pst := c.Join(e, tau, batch.JoinOptions{Mode: batch.IndexPQGram})
		enum, _ := c.Join(e, tau, batch.JoinOptions{Mode: batch.IndexEnumerate})
		if !reflect.DeepEqual(pq, enum) {
			t.Fatalf("tau=%v: pq-gram join %v, enumerated %v", tau, pq, enum)
		}
		if pst.Mode != batch.IndexPQGram {
			t.Fatalf("tau=%v: join ran mode %v, want IndexPQGram", tau, pst.Mode)
		}
		// The filter may only shrink the candidate set, never beyond the
		// verified matches.
		if pst.Comparisons < len(enum) {
			t.Fatalf("tau=%v: %d candidates below %d true matches", tau, pst.Comparisons, len(enum))
		}
	}
}

// TestJoinCountFilterContention interleaves pq-gram-filtered joins with
// corpus mutation — the count filter reads posting lists and tree metas
// that Add/Delete/Replace rewrite concurrently — and checks the
// quiescent corpus joins identically to a fresh build of the surviving
// trees, at every threshold, in both modes. The CI race job runs this
// under -race.
func TestJoinCountFilterContention(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 24
	var trees, alts []*ted.Tree
	for i := 0; i < n; i++ {
		spec := gen.RandomSpec{Size: 3 + rng.Intn(18), MaxDepth: 6, MaxFanout: 4, Labels: 5}
		trees = append(trees, gen.Random(rng.Int63(), spec))
		alts = append(alts, gen.Random(rng.Int63(), spec))
	}

	c := corpus.New(corpus.WithPQGramIndex(2))
	ids := make([]corpus.ID, n)
	for i, tr := range trees {
		ids[i] = c.Add(tr)
	}
	e := c.Engine(batch.WithWorkers(2))

	const rounds, writers = 3, 3
	var wg sync.WaitGroup
	// Writers own disjoint id stripes, so the final state is
	// deterministic even though the interleaving is not.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i := w; i < n; i += writers {
					switch (i + round) % 4 {
					case 0:
						c.Delete(ids[i])
					case 1:
						c.Replace(ids[i], alts[i])
					case 2:
						c.Replace(ids[i], trees[i])
					}
				}
			}
		}(w)
	}
	// Joiners: filtered joins while the writers churn. Mid-flight
	// results reflect some consistent snapshot; the contract under test
	// is race- and panic-freedom of the probe/filter path.
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				c.Join(e, float64(2+2*p), batch.JoinOptions{Mode: batch.IndexPQGram})
			}
		}(p)
	}
	wg.Wait()

	// Quiescent check: replay the stripe schedule sequentially into a
	// fresh corpus and require identical joins in both modes.
	want := corpus.New(corpus.WithPQGramIndex(2))
	wantIDs := make([]corpus.ID, n)
	for i, tr := range trees {
		wantIDs[i] = want.Add(tr)
	}
	for round := 0; round < rounds; round++ {
		for i := 0; i < n; i++ {
			switch (i + round) % 4 {
			case 0:
				want.Delete(wantIDs[i])
			case 1:
				want.Replace(wantIDs[i], alts[i])
			case 2:
				want.Replace(wantIDs[i], trees[i])
			}
		}
	}
	we := want.Engine(batch.WithWorkers(2))
	for _, tau := range []float64{0, 2, 4.5, math.Inf(1)} {
		got, _ := c.Join(e, tau, batch.JoinOptions{Mode: batch.IndexPQGram})
		fresh, _ := want.Join(we, tau, batch.JoinOptions{Mode: batch.IndexPQGram})
		enum, _ := want.Join(we, tau, batch.JoinOptions{Mode: batch.IndexEnumerate})
		if !reflect.DeepEqual(got, fresh) {
			t.Fatalf("tau=%v: post-contention join %v, fresh build %v", tau, got, fresh)
		}
		if !reflect.DeepEqual(fresh, enum) {
			t.Fatalf("tau=%v: pq-gram join %v, enumerated %v", tau, fresh, enum)
		}
	}
}
