package corpus_test

import (
	"bytes"
	"testing"

	ted "repro"
	"repro/corpus"
)

// FuzzCorpusDecode is the decoder's robustness contract: on arbitrary
// bytes Load must return an error or a usable corpus — never panic, and
// never allocate past what the input's actual length can justify (the
// decoder grows slices by append against capped hints, so a hostile
// count dies at the first missing byte). A successfully decoded corpus
// must additionally survive a save/load round trip of its own: whatever
// the fuzzer found, the invariants the rest of the stack relies on
// (valid trees, consistent artifacts, index/store agreement) hold.
func FuzzCorpusDecode(f *testing.F) {
	seed := func(opts ...corpus.Option) []byte {
		c := corpus.New(opts...)
		for _, s := range []string{"{a{b}{c}}", "{a{b}}", "{x{y{z}}}", "{a}"} {
			c.Add(ted.MustParse(s))
		}
		c.Delete(1)
		c.Replace(2, ted.MustParse("{q{r}}"))
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			f.Fatalf("seed save: %v", err)
		}
		return buf.Bytes()
	}
	f.Add(seed())
	f.Add(seed(corpus.WithHistogramIndex()))
	f.Add(seed(corpus.WithHistogramIndex(), corpus.WithPQGramIndex(2)))
	f.Add([]byte("TEDC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := corpus.Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: the corpus must be internally consistent enough
		// to re-encode and reload losslessly.
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Fatalf("accepted corpus failed to re-save: %v", err)
		}
		c2, err := corpus.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-saved corpus failed to reload: %v", err)
		}
		if c2.Len() != c.Len() {
			t.Fatalf("re-loaded corpus has %d trees, want %d", c2.Len(), c.Len())
		}
		for _, id := range c.IDs() {
			a, _ := c.Tree(id)
			b, ok := c2.Tree(id)
			if !ok || a.String() != b.String() {
				t.Fatalf("tree %d did not survive the round trip", id)
			}
		}
	})
}
