package ted

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/tree"
)

// XMLOptions controls how FromXML maps a document onto an ordered
// labeled tree.
type XMLOptions struct {
	// IncludeAttributes adds one child per attribute, labeled
	// "@name=value", before the element's content (in document order).
	IncludeAttributes bool
	// IncludeText adds one leaf per non-whitespace text chunk, labeled
	// with the trimmed text.
	IncludeText bool
	// MaxDepth aborts parsing when elements nest deeper; 0 means no limit.
	MaxDepth int
}

// FromXML converts an XML document into a Tree: one node per element
// labeled with the element name, and optionally attribute and text
// children. This is the tree model used for XML differencing in the
// paper's motivating applications.
func FromXML(r io.Reader, opts XMLOptions) (*Tree, error) {
	dec := xml.NewDecoder(r)
	var stack []*tree.Node
	var root *tree.Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ted: XML parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if opts.MaxDepth > 0 && len(stack) >= opts.MaxDepth {
				return nil, fmt.Errorf("ted: XML nesting exceeds MaxDepth %d", opts.MaxDepth)
			}
			nd := tree.NewNode(t.Name.Local)
			if opts.IncludeAttributes {
				for _, a := range t.Attr {
					nd.Add(tree.NewNode("@" + a.Name.Local + "=" + a.Value))
				}
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("ted: multiple root elements")
				}
				root = nd
			} else {
				stack[len(stack)-1].Add(nd)
			}
			stack = append(stack, nd)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("ted: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if !opts.IncludeText || len(stack) == 0 {
				continue
			}
			s := strings.TrimSpace(string(t))
			if s != "" {
				stack[len(stack)-1].Add(tree.NewNode(s))
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("ted: document has no elements")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("ted: unclosed elements at end of input")
	}
	return tree.Index(root), nil
}
