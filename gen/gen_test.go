package gen

import (
	"testing"

	ted "repro"
)

func TestGenerators(t *testing.T) {
	cases := []struct {
		name string
		t    *ted.Tree
		size int
	}{
		{"lb", LeftBranch(101), 101},
		{"rb", RightBranch(101), 101},
		{"fb", FullBinary(101), 101},
		{"zz", ZigZag(101), 101},
		{"mx", Mixed(101), 101},
		{"random", Random(1, RandomSpec{Size: 101, MaxDepth: 15, MaxFanout: 6, Labels: 8}), 101},
		{"swissprot", SwissProtLike(1, 101), 101},
		{"treebank", TreeBankLike(1, 101), 101},
	}
	for _, c := range cases {
		if c.t.Len() != c.size {
			t.Errorf("%s: size %d want %d", c.name, c.t.Len(), c.size)
		}
		if err := c.t.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
	// TreeFam rounds even sizes up to the next odd (strict binary trees).
	tf := TreeFamLike(1, 100)
	if tf.Len() != 101 {
		t.Errorf("treefam: size %d want 101", tf.Len())
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	a := Random(7, RandomSpec{Size: 300, MaxDepth: 10, MaxFanout: 5, Labels: 4})
	b := Random(7, RandomSpec{Size: 300, MaxDepth: 10, MaxFanout: 5, Labels: 4})
	if a.String() != b.String() {
		t.Fatal("Random not deterministic in seed")
	}
	if SwissProtLike(3, 200).String() != SwissProtLike(3, 200).String() {
		t.Fatal("SwissProtLike not deterministic")
	}
	if TreeFamLike(3, 201).String() != TreeFamLike(3, 201).String() {
		t.Fatal("TreeFamLike not deterministic")
	}
	if TreeBankLike(3, 80).String() != TreeBankLike(3, 80).String() {
		t.Fatal("TreeBankLike not deterministic")
	}
}

func TestRenameSome(t *testing.T) {
	base := Random(11, RandomSpec{Size: 60, MaxDepth: 8, MaxFanout: 4, Labels: 5})
	v := RenameSome(base, 3, 42)
	if v.Len() != base.Len() {
		t.Fatalf("RenameSome changed the size: %d -> %d", base.Len(), v.Len())
	}
	if d := ted.Distance(base, v); d > 3 {
		t.Fatalf("RenameSome(3) produced distance %v > 3", d)
	}
	if RenameSome(base, 3, 42).String() != v.String() {
		t.Fatal("RenameSome not deterministic in seed")
	}
	if RenameSome(base, 0, 1).String() != base.String() {
		t.Fatal("RenameSome(0) must be the identity")
	}
}
