// Package gen exposes the tree generators used by the paper's
// experiments: the five synthetic shapes of Figure 7, bounded random
// trees, and shape-faithful simulators of the SwissProt, TreeBank and
// TreeFam datasets (see DESIGN.md §5 for the substitution rationale).
// All generators are deterministic in their seed.
package gen

import (
	"fmt"
	"math/rand"

	ted "repro"
	"repro/internal/treegen"
)

// LeftBranch builds the left branch tree LB(n) of Figure 7(a).
func LeftBranch(n int) *ted.Tree { return treegen.LeftBranch(n) }

// RightBranch builds the right branch tree RB(n) of Figure 7(b).
func RightBranch(n int) *ted.Tree { return treegen.RightBranch(n) }

// FullBinary builds the (balanced) full binary tree FB(n) of Figure 7(c).
func FullBinary(n int) *ted.Tree { return treegen.FullBinary(n) }

// ZigZag builds the zig-zag tree ZZ(n) of Figure 7(d).
func ZigZag(n int) *ted.Tree { return treegen.ZigZag(n) }

// Mixed builds the mixed-shape tree MX(n) of Figure 7(e).
func Mixed(n int) *ted.Tree { return treegen.Mixed(n) }

// RandomSpec parameterizes Random. Zero MaxDepth/MaxFanout mean
// unbounded; Labels 0 means a single shared label.
type RandomSpec struct {
	Size      int
	MaxDepth  int
	MaxFanout int
	Labels    int
}

// Random draws a random tree (the paper's random workload uses MaxDepth
// 15 and MaxFanout 6).
func Random(seed int64, spec RandomSpec) *ted.Tree {
	rng := rand.New(rand.NewSource(seed))
	return treegen.Random(rng, treegen.RandomSpec(spec))
}

// RenameSome returns a copy of t with k random node labels replaced by
// labels drawn from a small auxiliary alphabet: a near-duplicate at edit
// distance ≤ k (renames may collide or hit the same node twice, so the
// true distance can be smaller). Deterministic in the seed. Useful for
// building join corpora with known clusters of true matches.
func RenameSome(t *ted.Tree, k int, seed int64) *ted.Tree {
	rng := rand.New(rand.NewSource(seed))
	b := t.Builder(t.Root())
	var nodes []*ted.Node
	var walk func(nd *ted.Node)
	walk = func(nd *ted.Node) {
		nodes = append(nodes, nd)
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(b)
	for i := 0; i < k; i++ {
		nodes[rng.Intn(len(nodes))].Label = fmt.Sprintf("r%d", rng.Intn(50))
	}
	return ted.Build(b)
}

// SwissProtLike generates a flat, wide XML-like tree with the published
// SwissProt shape statistics (depth ≤ 4).
func SwissProtLike(seed int64, size int) *ted.Tree {
	return treegen.SwissProtLike(rand.New(rand.NewSource(seed)), size)
}

// TreeBankLike generates a deep, narrow parse-tree-shaped tree with the
// published TreeBank shape statistics.
func TreeBankLike(seed int64, size int) *ted.Tree {
	return treegen.TreeBankLike(rand.New(rand.NewSource(seed)), size)
}

// TreeFamLike generates a strictly binary phylogeny-shaped tree with the
// published TreeFam shape statistics.
func TreeFamLike(seed int64, size int) *ted.Tree {
	return treegen.TreeFamLike(rand.New(rand.NewSource(seed)), size)
}
