package bounds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/naive"
	"repro/internal/tree"
	"repro/internal/treegen"
)

func randTree(rng *rand.Rand, maxSize int) *tree.Tree {
	return treegen.Random(rng, treegen.RandomSpec{
		Size: 1 + rng.Intn(maxSize), MaxDepth: 7, MaxFanout: 4, Labels: 3,
	})
}

// TestBoundsSandwich is the defining property: every lower bound is at
// most the exact distance, which is at most the constrained upper bound.
func TestBoundsSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for iter := 0; iter < 200; iter++ {
		f, g := randTree(rng, 25), randTree(rng, 25)
		exact := naive.Dist(f, g, cost.Unit{})
		for name, lb := range map[string]float64{
			"size":      Size(f, g),
			"histogram": LabelHistogram(f, g),
			"string":    StringEdit(f, g),
			"branch":    BinaryBranch(f, g),
			"lower":     Lower(f, g),
		} {
			if lb > exact+1e-9 {
				t.Fatalf("%s lower bound %v exceeds exact %v\nF=%s\nG=%s", name, lb, exact, f, g)
			}
		}
		if ub := Constrained(f, g); ub < exact-1e-9 {
			t.Fatalf("constrained %v below exact %v\nF=%s\nG=%s", ub, exact, f, g)
		}
	}
}

func TestBoundsOnIdenticalTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 30; i++ {
		f := randTree(rng, 40)
		if Lower(f, f) != 0 {
			t.Fatalf("nonzero lower bound on identical trees: %v", Lower(f, f))
		}
		if Constrained(f, f) != 0 {
			t.Fatalf("nonzero constrained distance on identical trees")
		}
	}
}

func TestConstrainedIsMetricLike(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	var trees []*tree.Tree
	for i := 0; i < 8; i++ {
		trees = append(trees, randTree(rng, 15))
	}
	for _, a := range trees {
		for _, b := range trees {
			dab := Constrained(a, b)
			if dba := Constrained(b, a); dab != dba {
				t.Fatalf("constrained not symmetric: %v vs %v", dab, dba)
			}
			if dab > float64(a.Len()+b.Len()) {
				t.Fatalf("constrained %v above trivial bound", dab)
			}
		}
	}
}

// TestConstrainedSeparation: the constrained distance can strictly
// exceed TED. Flattening {a{b{c}{d}}} to {a{b}{c}{d}} costs 1 edit (the
// unconstrained mapping keeps c and d), but a constrained mapping cannot
// split b's children between b's match and a's other children.
func TestConstrainedSeparation(t *testing.T) {
	f := tree.MustParseBracket("{a{b{c}{d}}{e}}")
	g := tree.MustParseBracket("{a{c}{d}{e}}")
	exact := naive.Dist(f, g, cost.Unit{})
	ub := Constrained(f, g)
	if exact != 1 {
		t.Fatalf("exact = %v want 1 (delete b)", exact)
	}
	if ub <= exact {
		t.Fatalf("expected strict separation, constrained %v vs exact %v", ub, exact)
	}
}

func TestKnownBoundValues(t *testing.T) {
	f := tree.MustParseBracket("{a{b}{c}}")
	g := tree.MustParseBracket("{a{b}{d}}")
	if Size(f, g) != 0 {
		t.Fatal("size bound")
	}
	if LabelHistogram(f, g) != 1 {
		t.Fatalf("histogram bound %v want 1", LabelHistogram(f, g))
	}
	if StringEdit(f, g) != 1 {
		t.Fatalf("string bound %v want 1", StringEdit(f, g))
	}
	// Disjoint labels: histogram bound = max size.
	h := tree.MustParseBracket("{x{y}{z}}")
	if LabelHistogram(f, h) != 3 {
		t.Fatalf("disjoint histogram bound %v want 3", LabelHistogram(f, h))
	}
}

func TestStringEditDistanceCorrect(t *testing.T) {
	// Validate the internal sequence DP against classic cases using
	// single-node chains (serialization == the label sequence).
	chain := func(labels ...string) *tree.Tree {
		nd := tree.NewNode(labels[len(labels)-1])
		for i := len(labels) - 2; i >= 0; i-- {
			nd = tree.NewNode(labels[i], nd)
		}
		return tree.Index(nd)
	}
	a := chain("k", "i", "t", "t", "e", "n")
	b := chain("s", "i", "t", "t", "i", "n", "g")
	if d := StringEdit(a, b); d != 3 {
		t.Fatalf("kitten/sitting = %v want 3", d)
	}
}

// TestQuickBinaryBranchSymmetry: binary-branch distance is symmetric and
// zero only for identical branch histograms.
func TestQuickBinaryBranchSymmetry(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f, g := randTree(rng, 20), randTree(rng, 20)
		return BinaryBranch(f, g) == BinaryBranch(g, f) && BinaryBranch(f, f) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
