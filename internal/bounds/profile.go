package bounds

import "repro/internal/tree"

// Profile caches the per-tree inputs of every lower bound in this
// package: the label multiset, the binary-branch histogram, and the
// preorder/postorder label serializations. Computing a Profile once per
// tree turns the per-pair bound evaluation from "rebuild two histograms,
// then compare" into a pure comparison — the saving that makes
// bound-based pre-filtering worthwhile in batch joins, where every tree
// participates in many pairs.
type Profile struct {
	t        *tree.Tree
	labels   map[string]int
	branches map[branch]int
	pre      []string // preorder label sequence
	post     []string // postorder label sequence
}

// NewProfile precomputes the bound inputs for t in O(|t|) time.
func NewProfile(t *tree.Tree) *Profile {
	n := t.Len()
	p := &Profile{
		t:        t,
		labels:   make(map[string]int, n),
		branches: binaryBranches(t),
		pre:      make([]string, n),
		post:     make([]string, n),
	}
	for i := 0; i < n; i++ {
		p.labels[t.Label(i)]++
		p.post[i] = t.Label(i)
		p.pre[i] = t.Label(t.ByPre(i))
	}
	return p
}

// Tree returns the profiled tree.
func (p *Profile) Tree() *tree.Tree { return p.t }

// LowerProfiled returns exactly Lower(a.Tree(), b.Tree()) — the best of
// the size, label-histogram, binary-branch and string-edit lower bounds —
// but from precomputed profiles, skipping all per-tree work.
func LowerProfiled(a, b *Profile) float64 {
	lb := Size(a.t, b.t)
	if v := labelHistogramProfiled(a, b); v > lb {
		lb = v
	}
	if v := binaryBranchProfiled(a, b); v > lb {
		lb = v
	}
	if v := stringEditProfiled(a, b); v > lb {
		lb = v
	}
	return lb
}

// LowerCheapProfiled is LowerProfiled without the string-edit bound: the
// remaining bounds compare in O(|F|+|G|), so it is safe to evaluate on
// every pair of a large batch before deciding whether the O(|F|·|G|)
// string bound (or the exact algorithm) is worth running.
func LowerCheapProfiled(a, b *Profile) float64 {
	lb := Size(a.t, b.t)
	if v := labelHistogramProfiled(a, b); v > lb {
		lb = v
	}
	if v := binaryBranchProfiled(a, b); v > lb {
		lb = v
	}
	return lb
}

func labelHistogramProfiled(a, b *Profile) float64 {
	// Iterate the smaller histogram; the intersection is symmetric.
	ha, hb := a.labels, b.labels
	if len(hb) < len(ha) {
		ha, hb = hb, ha
	}
	common := 0
	for l, ca := range ha {
		if cb := hb[l]; cb < ca {
			common += cb
		} else {
			common += ca
		}
	}
	m := a.t.Len()
	if b.t.Len() > m {
		m = b.t.Len()
	}
	return float64(m - common)
}

func binaryBranchProfiled(a, b *Profile) float64 {
	ha, hb := a.branches, b.branches
	l1 := 0
	for k, ca := range ha {
		if cb := hb[k]; cb < ca {
			l1 += ca - cb
		}
	}
	for k, cb := range hb {
		if ca := ha[k]; ca < cb {
			l1 += cb - ca
		}
	}
	return float64(l1) / 5
}

func stringEditProfiled(a, b *Profile) float64 {
	post := stringEditDistance(
		func(i int) string { return a.post[i] }, len(a.post),
		func(j int) string { return b.post[j] }, len(b.post),
	)
	pre := stringEditDistance(
		func(i int) string { return a.pre[i] }, len(a.pre),
		func(j int) string { return b.pre[j] }, len(b.pre),
	)
	if pre > post {
		return float64(pre)
	}
	return float64(post)
}
