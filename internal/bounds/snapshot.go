package bounds

import (
	"sort"

	"repro/internal/tree"
)

// This file is the serialization face of Profile: a Profile is pure
// per-tree precomputation, so a persisted corpus stores its histograms
// and rebuilds the rest from the tree, instead of re-hashing every label
// on every restart. The two histogram snapshots are sorted so that
// encoding a profile is deterministic.

// LabelCount is one entry of the label-multiset histogram.
type LabelCount struct {
	Label string
	Count int
}

// BranchCount is one entry of the binary-branch histogram: the triple of
// the Yang et al. binary-branch transform with its multiplicity. Missing
// first-child/next-sibling positions are the empty string.
type BranchCount struct {
	Label, FirstChild, NextSibling string
	Count                          int
}

// LabelCounts returns the profile's label histogram, sorted by label.
func (p *Profile) LabelCounts() []LabelCount {
	out := make([]LabelCount, 0, len(p.labels))
	for l, c := range p.labels {
		out = append(out, LabelCount{Label: l, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// BranchCounts returns the profile's binary-branch histogram, sorted by
// (label, first child, next sibling).
func (p *Profile) BranchCounts() []BranchCount {
	out := make([]BranchCount, 0, len(p.branches))
	for b, c := range p.branches {
		out = append(out, BranchCount{
			Label:       b.label,
			FirstChild:  b.firstChild,
			NextSibling: b.nextSibling,
			Count:       c,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.FirstChild != b.FirstChild {
			return a.FirstChild < b.FirstChild
		}
		return a.NextSibling < b.NextSibling
	})
	return out
}

// RestoreProfile rebuilds a Profile for t from persisted histograms. The
// label serializations are re-derived from the tree (pointer copies, no
// hashing); the two histograms are installed from their snapshots with
// one map insert per distinct entry — O(distinct) hash work instead of
// the O(n) of NewProfile. The caller vouches that the snapshots belong
// to t; mismatched histograms yield wrong (but crash-free) bounds, the
// same trust model as any other persisted artifact.
func RestoreProfile(t *tree.Tree, labels []LabelCount, branches []BranchCount) *Profile {
	n := t.Len()
	p := &Profile{
		t:        t,
		labels:   make(map[string]int, len(labels)),
		branches: make(map[branch]int, len(branches)),
		pre:      make([]string, n),
		post:     make([]string, n),
	}
	for _, lc := range labels {
		p.labels[lc.Label] = lc.Count
	}
	for _, bc := range branches {
		p.branches[branch{bc.Label, bc.FirstChild, bc.NextSibling}] = bc.Count
	}
	for i := 0; i < n; i++ {
		p.post[i] = t.Label(i)
		p.pre[i] = t.Label(t.ByPre(i))
	}
	return p
}
