package bounds

import (
	"sort"

	"repro/internal/tree"
)

// PQGramProfile computes the pq-gram profile of a tree (Augsten, Böhlen,
// Gamper — cited as [4,5] in the RTED paper): the multiset of label
// tuples obtained by sliding, for every node, a window of q consecutive
// children under a stem of the node and its p−1 nearest ancestors. The
// tree is conceptually extended with null labels ("*") so every node
// yields at least one gram. Profiles are returned sorted so multiset
// intersections are linear merges.
func PQGramProfile(t *tree.Tree, p, q int) []string {
	if p < 1 || q < 1 {
		panic("bounds: pq-gram parameters must be positive")
	}
	var grams []string
	stem := make([]string, p) // stem[p-1] is the current node
	var walk func(v int, anc []string)
	walk = func(v int, anc []string) {
		copy(stem, anc[1:])
		stem[p-1] = t.Label(v)
		kids := t.Children(v)
		// Base window of q children over the null-extended child list:
		// q−1 nulls, the children, q−1 nulls (a lone leaf yields one
		// all-null base).
		ext := make([]string, 0, len(kids)+2*(q-1))
		for i := 0; i < q-1; i++ {
			ext = append(ext, "*")
		}
		for _, c := range kids {
			ext = append(ext, t.Label(c))
		}
		for i := 0; i < q-1; i++ {
			ext = append(ext, "*")
		}
		if len(kids) == 0 && q > 1 {
			ext = ext[:q] // single all-null window for leaves
		}
		if len(ext) < q {
			pad := make([]string, q-len(ext))
			for i := range pad {
				pad[i] = "*"
			}
			ext = append(ext, pad...)
		}
		for i := 0; i+q <= len(ext); i++ {
			grams = append(grams, encodeGram(stem, ext[i:i+q]))
		}
		next := append(append([]string(nil), anc[1:]...), t.Label(v))
		for _, c := range kids {
			walk(c, next)
		}
	}
	root := make([]string, p)
	for i := range root {
		root[i] = "*"
	}
	walk(t.Root(), root)
	sort.Strings(grams)
	return grams
}

// encodeGram flattens a stem+base tuple with unit separators (labels may
// contain any characters except the separator, which is escaped).
func encodeGram(stem, base []string) string {
	n := 0
	for _, s := range stem {
		n += len(s) + 1
	}
	for _, s := range base {
		n += len(s) + 1
	}
	b := make([]byte, 0, n)
	app := func(s string) {
		for i := 0; i < len(s); i++ {
			if s[i] == 0x1f || s[i] == 0x1e {
				b = append(b, 0x1e)
			}
			b = append(b, s[i])
		}
		b = append(b, 0x1f)
	}
	for _, s := range stem {
		app(s)
	}
	for _, s := range base {
		app(s)
	}
	return string(b)
}

// PQGram returns the normalized pq-gram distance in [0, 1]:
// 1 − 2·|P₁ ∩ P₂| / (|P₁| + |P₂|) over the pq-gram profiles. It is a
// pseudo-metric used as a fast join filter; unlike the bounds in
// bounds.Lower it does NOT lower-bound the unit-cost TED (it
// lower-bounds a fanout-weighted variant), so it serves candidate
// generation, not exact pruning.
func PQGram(f, g *tree.Tree, p, q int) float64 {
	pf := PQGramProfile(f, p, q)
	pg := PQGramProfile(g, p, q)
	inter := 0
	i, j := 0, 0
	for i < len(pf) && j < len(pg) {
		switch {
		case pf[i] == pg[j]:
			inter++
			i++
			j++
		case pf[i] < pg[j]:
			i++
		default:
			j++
		}
	}
	return 1 - 2*float64(inter)/float64(len(pf)+len(pg))
}
