package bounds

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tree"
	"repro/internal/treegen"
)

func TestPQGramProfileKnown(t *testing.T) {
	// Single node, p=2, q=3: stem (*, a), one all-null base window.
	tr := tree.MustParseBracket("{a}")
	grams := PQGramProfile(tr, 2, 3)
	if len(grams) != 1 {
		t.Fatalf("leaf profile size %d want 1", len(grams))
	}
	// {a{b}{c}} with p=2, q=2: root contributes windows over
	// (*,b,c,*) = 3 grams; b and c each contribute one leaf gram.
	tr = tree.MustParseBracket("{a{b}{c}}")
	grams = PQGramProfile(tr, 2, 2)
	if len(grams) != 5 {
		t.Fatalf("profile size %d want 5", len(grams))
	}
	// Profile sizes are linear-ish in tree size: every node contributes
	// max(1, fanout+q-1) grams.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		tr := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(60), MaxDepth: 8, MaxFanout: 5, Labels: 3})
		want := 0
		for v := 0; v < tr.Len(); v++ {
			k := tr.NumChildren(v)
			if k == 0 {
				want++
			} else {
				want += k + 2 - 1 // q=2 window count over extended children
			}
		}
		if got := len(PQGramProfile(tr, 2, 2)); got != want {
			t.Fatalf("profile size %d want %d", got, want)
		}
	}
}

func TestPQGramDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		f := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(40), MaxDepth: 7, MaxFanout: 4, Labels: 3})
		g := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(40), MaxDepth: 7, MaxFanout: 4, Labels: 3})
		d := PQGram(f, g, 2, 3)
		if d < 0 || d > 1 {
			t.Fatalf("pq-gram distance %v outside [0,1]", d)
		}
		if PQGram(g, f, 2, 3) != d {
			t.Fatal("pq-gram distance not symmetric")
		}
		if PQGram(f, f, 2, 3) != 0 {
			t.Fatal("pq-gram self distance not 0")
		}
	}
	// Sensitivity: a single leaf rename changes few grams.
	f := tree.MustParseBracket("{a{b}{c}{d}{e}}")
	g := tree.MustParseBracket("{a{b}{c}{d}{x}}")
	if d := PQGram(f, g, 2, 3); d <= 0 || d > 0.6 {
		t.Fatalf("small change, pq-gram distance %v", d)
	}
	// Disjoint labels: distance 1.
	h := tree.MustParseBracket("{p{q}{r}{s}{t}}")
	if d := PQGram(f, h, 2, 3); d != 1 {
		t.Fatalf("disjoint trees pq-gram distance %v want 1", d)
	}
}

func TestEncodeGramInjective(t *testing.T) {
	// Labels containing the separators must not collide.
	a := encodeGram([]string{"x\x1f"}, []string{"y"})
	b := encodeGram([]string{"x"}, []string{"\x1fy"})
	if a == b {
		t.Fatal("gram encoding collides on separator bytes")
	}
	if !strings.Contains(a, "\x1f") {
		t.Fatal("separator missing")
	}
}
