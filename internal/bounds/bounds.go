// Package bounds implements lower and upper bounds for the unit-cost
// tree edit distance. Section 7 of the RTED paper surveys them as the
// standard way to prune exact distance computations in similarity joins:
// a pair whose lower bound reaches the threshold cannot match, and a
// pair whose upper bound stays below it must match, so the expensive
// exact algorithm only runs on the undecided middle.
//
// Lower bounds (ordered by cost):
//
//   - Size: | |F| − |G| | — every size difference needs an insert/delete.
//   - LabelHistogram: max(|F|,|G|) − (multiset label intersection); at
//     most that many nodes can be matched without a rename.
//   - StringEdit: the unit string edit distance between the preorder
//     (and postorder) label sequences lower-bounds the tree edit
//     distance [Guha et al., SIGMOD 2002]; the maximum of the two
//     serializations is used.
//   - BinaryBranch: the binary-branch distance of Yang et al. (SIGMOD
//     2005): L1 distance between binary-branch histograms, divided by 5.
//
// Upper bound:
//
//   - Constrained: Zhang's constrained edit distance (ordered variant),
//     which restricts mappings so that disjoint subtrees map to disjoint
//     subtrees; computable in O(|F||G|) with a children-sequence DP and
//     never below the unrestricted distance.
//
// All bounds assume the unit cost model (the model of the paper's
// experiments and of every published filter).
package bounds

import (
	"repro/internal/tree"
)

// Size returns the size lower bound ||F| − |G||.
func Size(f, g *tree.Tree) float64 {
	d := f.Len() - g.Len()
	if d < 0 {
		d = -d
	}
	return float64(d)
}

// LabelHistogram returns the label multiset lower bound
// max(|F|,|G|) − Σ_label min(count_F, count_G).
func LabelHistogram(f, g *tree.Tree) float64 {
	counts := make(map[string]int, f.Len())
	for i := 0; i < f.Len(); i++ {
		counts[f.Label(i)]++
	}
	common := 0
	for i := 0; i < g.Len(); i++ {
		if counts[g.Label(i)] > 0 {
			counts[g.Label(i)]--
			common++
		}
	}
	m := f.Len()
	if g.Len() > m {
		m = g.Len()
	}
	return float64(m - common)
}

// StringEdit returns the serialization lower bound: the maximum of the
// unit string edit distances between the preorder and the postorder
// label sequences of the two trees.
func StringEdit(f, g *tree.Tree) float64 {
	post := stringEditDistance(
		func(i int) string { return f.Label(i) }, f.Len(),
		func(j int) string { return g.Label(j) }, g.Len(),
	)
	pre := stringEditDistance(
		func(i int) string { return f.Label(f.ByPre(i)) }, f.Len(),
		func(j int) string { return g.Label(g.ByPre(j)) }, g.Len(),
	)
	if pre > post {
		return float64(pre)
	}
	return float64(post)
}

// stringEditDistance is the classic O(nm)-time, O(min(n,m))-space unit
// edit distance between two label sequences.
func stringEditDistance(a func(int) string, n int, b func(int) string, m int) int {
	if m > n {
		a, b = b, a
		n, m = m, n
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		ai := a(i - 1)
		for j := 1; j <= m; j++ {
			c := prev[j-1]
			if ai != b(j-1) {
				c++
			}
			if d := prev[j] + 1; d < c {
				c = d
			}
			if d := cur[j-1] + 1; d < c {
				c = d
			}
			cur[j] = c
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// BinaryBranch returns the binary-branch lower bound of Yang et al.:
// the L1 distance between the binary-branch histograms divided by 5.
//
// The binary branch of a node in the first-child/next-sibling binary
// transform is the triple (label, first-child label, next-sibling
// label), with "" for missing positions.
func BinaryBranch(f, g *tree.Tree) float64 {
	hf := binaryBranches(f)
	l1 := 0
	for k, c := range binaryBranches(g) {
		cf := hf[k]
		if cf > c {
			hf[k] = cf - c
		} else {
			delete(hf, k)
			l1 += c - cf
		}
	}
	for _, c := range hf {
		l1 += c
	}
	return float64(l1) / 5
}

type branch struct {
	label, firstChild, nextSibling string
}

func binaryBranches(t *tree.Tree) map[branch]int {
	h := make(map[branch]int, t.Len())
	for v := 0; v < t.Len(); v++ {
		var b branch
		b.label = t.Label(v)
		if fc := t.LeftChild(v); fc != -1 {
			b.firstChild = t.Label(fc)
		}
		if p := t.Parent(v); p != -1 {
			kids := t.Children(p)
			for i, c := range kids {
				if c == v && i+1 < len(kids) {
					b.nextSibling = t.Label(kids[i+1])
					break
				}
			}
		}
		h[b]++
	}
	return h
}

// Lower returns the best (largest) of the cheap lower bounds.
func Lower(f, g *tree.Tree) float64 {
	lb := Size(f, g)
	if b := LabelHistogram(f, g); b > lb {
		lb = b
	}
	if b := BinaryBranch(f, g); b > lb {
		lb = b
	}
	if b := StringEdit(f, g); b > lb {
		lb = b
	}
	return lb
}
