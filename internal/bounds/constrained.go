package bounds

import "repro/internal/tree"

// Constrained computes the ordered constrained edit distance between f
// and g under the unit cost model (Zhang-style: mappings are restricted
// so that the children forests of matched nodes align as sequences and
// a forest may otherwise only descend into a single subtree). Every
// constrained mapping is a valid edit mapping, so the result is an upper
// bound on the tree edit distance; for many practical tree pairs the two
// coincide. Runtime is O(|f|·|g|) (the children-sequence DPs telescope),
// space O(|f|·|g|).
func Constrained(f, g *tree.Tree) float64 {
	nf, ng := f.Len(), g.Len()
	// d[v][w]: constrained distance between subtrees F_v and G_w.
	// df[v][w]: constrained distance between their children forests.
	d := make([]float64, nf*ng)
	df := make([]float64, nf*ng)

	// Unit-cost deletion/insertion of whole subtrees = subtree sizes.
	delTree := func(v int) float64 { return float64(f.Size(v)) }
	insTree := func(w int) float64 { return float64(g.Size(w)) }
	delForest := func(v int) float64 { return float64(f.Size(v) - 1) }
	insForest := func(w int) float64 { return float64(g.Size(w) - 1) }

	// Scratch for the children-sequence alignment.
	maxDeg := 0
	for v := 0; v < nf; v++ {
		if k := f.NumChildren(v); k > maxDeg {
			maxDeg = k
		}
	}
	degG := 0
	for w := 0; w < ng; w++ {
		if k := g.NumChildren(w); k > degG {
			degG = k
		}
	}
	seq := make([]float64, (maxDeg+1)*(degG+1))

	for v := 0; v < nf; v++ {
		kv := f.Children(v)
		for w := 0; w < ng; w++ {
			kw := g.Children(w)
			idx := v*ng + w

			// ---- forest distance between the children forests ----
			fd := minFloat(1<<30, 0)
			switch {
			case len(kv) == 0 && len(kw) == 0:
				fd = 0
			case len(kv) == 0:
				fd = insForest(w)
			case len(kw) == 0:
				fd = delForest(v)
			default:
				// (iii) sequence alignment of the child subtrees with
				// whole-tree constrained distances.
				wdt := len(kw) + 1
				seq[0] = 0
				for j := 1; j <= len(kw); j++ {
					seq[j] = seq[j-1] + insTree(kw[j-1])
				}
				for i := 1; i <= len(kv); i++ {
					seq[i*wdt] = seq[(i-1)*wdt] + delTree(kv[i-1])
					for j := 1; j <= len(kw); j++ {
						m := seq[(i-1)*wdt+j-1] + d[kv[i-1]*ng+kw[j-1]]
						if x := seq[(i-1)*wdt+j] + delTree(kv[i-1]); x < m {
							m = x
						}
						if x := seq[i*wdt+j-1] + insTree(kw[j-1]); x < m {
							m = x
						}
						seq[i*wdt+j] = m
					}
				}
				fd = seq[len(kv)*wdt+len(kw)]
				// (i) everything descends into one child's subtree
				// forest on the G side; the rest of G is inserted.
				for _, bj := range kw {
					if x := df[v*ng+bj] + insForest(w) - insForest(bj); x < fd {
						fd = x
					}
				}
				// (ii) symmetric on the F side.
				for _, ai := range kv {
					if x := df[ai*ng+w] + delForest(v) - delForest(ai); x < fd {
						fd = x
					}
				}
			}
			df[idx] = fd

			// ---- tree distance ----
			ren := 1.0
			if f.Label(v) == g.Label(w) {
				ren = 0
			}
			best := fd + ren
			// Delete v's root and map G_w into one child subtree.
			for _, ai := range kv {
				if x := d[ai*ng+w] + delTree(v) - delTree(ai); x < best {
					best = x
				}
			}
			// Insert w's root and map F_v into one child subtree.
			for _, bj := range kw {
				if x := d[v*ng+bj] + insTree(w) - insTree(bj); x < best {
					best = x
				}
			}
			d[idx] = best
		}
	}
	return d[(nf-1)*ng+(ng-1)]
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
