package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/treegen"
)

// TestDifferentialBounded is the differential table: corpora of
// treegen-generated trees (paper shapes and bounded random trees), all
// pairs cross-checked through Check — GTED under every strategy, bounded
// GTED at cutoffs straddling the distance, Zhang–Shasha and the naive
// oracle.
func TestDifferentialBounded(t *testing.T) {
	cases := []struct {
		name    string
		seed    int64
		n       int
		maxSize int
		model   cost.Model
	}{
		{"small-unit", 1, 10, 12, cost.Unit{}},
		{"small-weighted", 2, 8, 12, cost.Weighted{DeleteW: 1.3, InsertW: 0.7, RenameW: 2.1}},
		{"medium-unit", 3, 8, 34, cost.Unit{}},
		{"shapes-unit", 4, 10, 26, cost.Unit{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trees := Corpus(tc.seed, tc.n, tc.maxSize)
			for i := range trees {
				for j := i; j < len(trees); j++ {
					if err := Check(trees[i], trees[j], tc.model); err != nil {
						t.Fatalf("pair (%d,%d): %v", i, j, err)
					}
				}
			}
		})
	}
}

// TestDifferentialRandomPairs hammers Check on many independent random
// pairs, the configuration fuzzing has historically found bugs in:
// tiny trees, degenerate chains, single nodes.
func TestDifferentialRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 80; iter++ {
		f := treegen.Random(rng, treegen.RandomSpec{
			Size: 1 + rng.Intn(16), MaxDepth: 6, MaxFanout: 4, Labels: 1 + rng.Intn(3),
		})
		g := treegen.Random(rng, treegen.RandomSpec{
			Size: 1 + rng.Intn(16), MaxDepth: 6, MaxFanout: 4, Labels: 1 + rng.Intn(3),
		})
		if err := Check(f, g, cost.Unit{}); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}
