// Package difftest cross-checks every tree-edit-distance engine in this
// repository against the others on one tree pair: GTED under all five
// paper strategies, bounded GTED at a spread of cutoffs around the true
// distance, the standalone Zhang–Shasha implementation, and (on small
// pairs) the naive memoized recursion. It exists so that correctness
// tests and fuzzers across packages share one exhaustive oracle instead
// of each re-implementing a weaker comparison.
package difftest

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/gted"
	"repro/internal/naive"
	"repro/internal/strategy"
	"repro/internal/tree"
	"repro/internal/treegen"
	"repro/internal/zs"
)

// naiveLimit caps |F|·|G| for the O(|F|²·|G|²) naive oracle.
const naiveLimit = 32 * 32

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// strategies returns the five named strategies of the paper for (f, g).
func strategies(f, g *tree.Tree) []strategy.Named {
	rted, _ := strategy.Opt(f, g)
	return []strategy.Named{
		strategy.ZhangL(),
		strategy.ZhangR(),
		strategy.KleinH(),
		strategy.DemaineH(f, g),
		rted,
	}
}

// Check cross-checks all engines on the pair (f, g) under model m and
// returns a descriptive error on the first divergence:
//
//   - zs and (within naiveLimit) naive agree with GTED under every
//     strategy;
//   - for every strategy, bounded GTED at τ ∈ {0, d−ε, d, d+ε, d/2, ∞}
//     honors the contract: (d, true) iff d ≤ τ, (+Inf, false) otherwise,
//     with d bit-identical to the strategy's exact run under unit costs;
//   - bounded runs never evaluate more subproblems than exact runs.
func Check(f, g *tree.Tree, m cost.Model) error {
	want := zs.Dist(f, g, m)
	if f.Len()*g.Len() <= naiveLimit {
		if nd := naive.Dist(f, g, m); !approx(nd, want) {
			return fmt.Errorf("naive=%v zs=%v\nF=%s\nG=%s", nd, want, f, g)
		}
	}
	_, unit := m.(cost.Unit)
	for _, s := range strategies(f, g) {
		exact := gted.New(f, g, m, s)
		d := exact.Run()
		if !approx(d, want) {
			return fmt.Errorf("%s=%v zs=%v\nF=%s\nG=%s", s.Name(), d, want, f, g)
		}
		for _, tau := range []float64{0, d - 0.5, d, d + 0.5, d / 2, math.Inf(1)} {
			b := gted.New(f, g, m, s)
			bd, ok := b.RunBounded(tau)
			if ok != (d <= tau) {
				return fmt.Errorf("%s bounded tau=%v: ok=%v but d=%v\nF=%s\nG=%s",
					s.Name(), tau, ok, d, f, g)
			}
			switch {
			case ok && unit && bd != d:
				return fmt.Errorf("%s bounded tau=%v: got %v, exact %v\nF=%s\nG=%s",
					s.Name(), tau, bd, d, f, g)
			case ok && !approx(bd, d):
				return fmt.Errorf("%s bounded tau=%v: got %v !~ exact %v\nF=%s\nG=%s",
					s.Name(), tau, bd, d, f, g)
			case !ok && !math.IsInf(bd, 1):
				return fmt.Errorf("%s bounded tau=%v: exceeded run returned %v, want +Inf",
					s.Name(), tau, bd)
			}
			if b.Stats().Subproblems > exact.Stats().Subproblems {
				return fmt.Errorf("%s bounded tau=%v: evaluated %d subproblems, exact %d",
					s.Name(), tau, b.Stats().Subproblems, exact.Stats().Subproblems)
			}
		}
	}
	return nil
}

// Corpus returns a deterministic shape-diverse tree collection for
// differential runs: the paper's synthetic shapes at two sizes plus
// bounded random trees over a small alphabet.
func Corpus(seed int64, n, maxSize int) []*tree.Tree {
	var out []*tree.Tree
	for _, sz := range []int{maxSize, maxSize/2 + 1} {
		for _, s := range treegen.Shapes {
			out = append(out, s.Build(sz))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for len(out) < n {
		out = append(out, treegen.Random(rng, treegen.RandomSpec{
			Size: 1 + rng.Intn(maxSize), MaxDepth: 8, MaxFanout: 5, Labels: 1 + rng.Intn(5),
		}))
	}
	return out[:n]
}
