// Package difftest cross-checks every tree-edit-distance engine in this
// repository against the others on one tree pair: GTED under all five
// paper strategies, bounded GTED at a spread of cutoffs around the true
// distance, the standalone Zhang–Shasha implementation, and (on small
// pairs) the naive memoized recursion. It exists so that correctness
// tests and fuzzers across packages share one exhaustive oracle instead
// of each re-implementing a weaker comparison.
package difftest

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/gted"
	"repro/internal/naive"
	"repro/internal/strategy"
	"repro/internal/tree"
	"repro/internal/treegen"
	"repro/internal/zs"
)

// naiveLimit caps |F|·|G| for the O(|F|²·|G|²) naive oracle.
const naiveLimit = 32 * 32

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// strategies returns the five named strategies of the paper for (f, g).
func strategies(f, g *tree.Tree) []strategy.Named {
	rted, _ := strategy.Opt(f, g)
	return []strategy.Named{
		strategy.ZhangL(),
		strategy.ZhangR(),
		strategy.KleinH(),
		strategy.DemaineH(f, g),
		rted,
	}
}

// Check cross-checks all engines on the pair (f, g) under model m and
// returns a descriptive error on the first divergence:
//
//   - zs and (within naiveLimit) naive agree with GTED under every
//     strategy;
//   - for every strategy, bounded GTED at τ ∈ {0, d−ε, d, d+ε, d/2, ∞},
//     across the band/sparse/sharp toggle grid — (band off), (band, dense
//     rows), (band, compressed rows) and (band, compressed rows, sharp
//     pricing) — honors the contract: (d, true) iff d ≤ τ, (+Inf, false)
//     otherwise, with d bit-identical to the strategy's exact run under
//     unit costs;
//   - bounded runs never evaluate more subproblems than exact runs, and
//     banded runs never evaluate more than unbanded ones at the same
//     grid point;
//   - band-compressed rows prune exactly the cells dense banded rows
//     prune (equal Subproblems, PrunedSubproblems, BandSkippedCells and
//     PrunedKeyroots), and sharp pricing never evaluates more cells than
//     the globally priced band;
//   - unbanded runs report zero band counters and zero compressed rows
//     (sparse/sharp are inert without the band), dense banded runs report
//     zero compressed rows, and at least one grid point has the banded
//     run pruning at least as much as the unbanded one.
func Check(f, g *tree.Tree, m cost.Model) error {
	want := zs.Dist(f, g, m)
	if f.Len()*g.Len() <= naiveLimit {
		if nd := naive.Dist(f, g, m); !approx(nd, want) {
			return fmt.Errorf("naive=%v zs=%v\nF=%s\nG=%s", nd, want, f, g)
		}
	}
	_, unit := m.(cost.Unit)
	bandPruned := false
	// The band/sparse/sharp toggle grid. Mode 0 leaves sparse and sharp
	// at their defaults with the band off to check they are inert; mode 1
	// is the dense banded baseline (the PR 7 layout), modes 2 and 3 layer
	// band compression and sharp pricing on top.
	modes := []struct{ band, sparse, sharp bool }{
		{band: false, sparse: true, sharp: true},
		{band: true, sparse: false, sharp: false},
		{band: true, sparse: true, sharp: false},
		{band: true, sparse: true, sharp: true},
	}
	for _, s := range strategies(f, g) {
		exact := gted.New(f, g, m, s)
		d := exact.Run()
		if !approx(d, want) {
			return fmt.Errorf("%s=%v zs=%v\nF=%s\nG=%s", s.Name(), d, want, f, g)
		}
		for _, tau := range []float64{0, d - 0.5, d, d + 0.5, d / 2, math.Inf(1)} {
			stats := make([]gted.Stats, len(modes))
			for mi, mode := range modes {
				b := gted.New(f, g, m, s)
				b.SetBanding(mode.band)
				b.SetSparseRows(mode.sparse)
				b.SetSharpBands(mode.sharp)
				bd, ok := b.RunBounded(tau)
				if ok != (d <= tau) {
					return fmt.Errorf("%s bounded tau=%v mode=%+v: ok=%v but d=%v\nF=%s\nG=%s",
						s.Name(), tau, mode, ok, d, f, g)
				}
				switch {
				case ok && unit && bd != d:
					return fmt.Errorf("%s bounded tau=%v mode=%+v: got %v, exact %v\nF=%s\nG=%s",
						s.Name(), tau, mode, bd, d, f, g)
				case ok && !approx(bd, d):
					return fmt.Errorf("%s bounded tau=%v mode=%+v: got %v !~ exact %v\nF=%s\nG=%s",
						s.Name(), tau, mode, bd, d, f, g)
				case !ok && !math.IsInf(bd, 1):
					return fmt.Errorf("%s bounded tau=%v mode=%+v: exceeded run returned %v, want +Inf",
						s.Name(), tau, mode, bd)
				}
				st := b.Stats()
				if st.Subproblems > exact.Stats().Subproblems {
					return fmt.Errorf("%s bounded tau=%v mode=%+v: evaluated %d subproblems, exact %d",
						s.Name(), tau, mode, st.Subproblems, exact.Stats().Subproblems)
				}
				if !mode.band && (st.BandSkippedCells != 0 || st.PrunedKeyroots != 0 || st.CompressedRows != 0) {
					return fmt.Errorf("%s bounded tau=%v: unbanded run reports band counters (%d cells, %d keyroots, %d compressed rows)",
						s.Name(), tau, st.BandSkippedCells, st.PrunedKeyroots, st.CompressedRows)
				}
				if mode.band && !mode.sparse && st.CompressedRows != 0 {
					return fmt.Errorf("%s bounded tau=%v: dense banded run reports %d compressed rows",
						s.Name(), tau, st.CompressedRows)
				}
				stats[mi] = st
			}
			for mi := 1; mi < len(modes); mi++ {
				if stats[mi].Subproblems > stats[0].Subproblems {
					return fmt.Errorf("%s bounded tau=%v mode=%+v: banded evaluated %d subproblems, unbanded %d\nF=%s\nG=%s",
						s.Name(), tau, modes[mi], stats[mi].Subproblems, stats[0].Subproblems, f, g)
				}
			}
			// Compressed rows must prune exactly what dense banded rows
			// prune: same predicates, same counters.
			dn, sp := stats[1], stats[2]
			if dn.Subproblems != sp.Subproblems || dn.PrunedSubproblems != sp.PrunedSubproblems ||
				dn.BandSkippedCells != sp.BandSkippedCells || dn.PrunedKeyroots != sp.PrunedKeyroots {
				return fmt.Errorf("%s bounded tau=%v: sparse rows diverge from dense band (subs %d/%d, pruned %d/%d, cells %d/%d, keyroots %d/%d)\nF=%s\nG=%s",
					s.Name(), tau, dn.Subproblems, sp.Subproblems, dn.PrunedSubproblems, sp.PrunedSubproblems,
					dn.BandSkippedCells, sp.BandSkippedCells, dn.PrunedKeyroots, sp.PrunedKeyroots, f, g)
			}
			if stats[3].Subproblems > stats[2].Subproblems {
				return fmt.Errorf("%s bounded tau=%v: sharp pricing evaluated %d subproblems, globally priced band %d\nF=%s\nG=%s",
					s.Name(), tau, stats[3].Subproblems, stats[2].Subproblems, f, g)
			}
			if stats[1].PrunedSubproblems >= stats[0].PrunedSubproblems {
				bandPruned = true
			}
		}
	}
	if !bandPruned {
		return fmt.Errorf("no grid point had banded pruning ≥ unbanded pruning\nF=%s\nG=%s", f, g)
	}
	return nil
}

// Corpus returns a deterministic shape-diverse tree collection for
// differential runs: the paper's synthetic shapes at two sizes plus
// bounded random trees over a small alphabet.
func Corpus(seed int64, n, maxSize int) []*tree.Tree {
	var out []*tree.Tree
	for _, sz := range []int{maxSize, maxSize/2 + 1} {
		for _, s := range treegen.Shapes {
			out = append(out, s.Build(sz))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for len(out) < n {
		out = append(out, treegen.Random(rng, treegen.RandomSpec{
			Size: 1 + rng.Intn(maxSize), MaxDepth: 8, MaxFanout: 5, Labels: 1 + rng.Intn(5),
		}))
	}
	return out[:n]
}
