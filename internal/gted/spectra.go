package gted

import "repro/internal/tree"

// SpectraBuckets is the number of quantized depth buckets of a subtree
// depth spectrum. Bucket t of a subtree holds the exact count of nodes at
// subtree-relative depth ≥ t, for t < SpectraBuckets; deeper structure is
// only visible through the lowest buckets (which remain exact), so a
// larger constant trades preparation memory for keyroot-band sharpness on
// very deep trees.
const SpectraBuckets = 8

// DepthSpectra computes the quantized depth spectrum of every subtree of
// t: a flat array of SpectraBuckets suffix counts per node, where entry
// [v*SpectraBuckets+d] is the number of nodes in the subtree rooted at v
// whose depth below v is at least d. Entry 0 is the subtree size; the
// spectrum refines the single height scalar of the keyroot-level band
// into a per-depth mass profile (see the keyroot band in gted.go: every
// node of one tree must map at a compatible depth of the other or be
// deleted, so a depth level whose population cannot be absorbed by the
// admissible band proves the pair hopeless).
//
// It runs in O(n·SpectraBuckets) time; batch preparation computes it once
// per tree and injects it with SetDepthSpectra.
func DepthSpectra(t *tree.Tree) []int32 {
	out := make([]int32, t.Len()*SpectraBuckets)
	depthSpectraInto(t, out)
	return out
}

// depthSpectraInto is DepthSpectra writing into caller-owned memory of
// length t.Len()*SpectraBuckets (the arena path of standalone runners).
func depthSpectraInto(t *tree.Tree, out []int32) {
	const B = SpectraBuckets
	for v := 0; v < t.Len(); v++ { // postorder: children precede parents
		row := out[v*B : v*B+B : v*B+B]
		row[0] = 1
		for d := 1; d < B; d++ {
			row[d] = 0
		}
		for _, c := range t.Children(v) {
			crow := out[c*B : c*B+B]
			// A node at depth ≥ d−1 below the child is at depth ≥ d below
			// v; counts stay exact because each bucket is a suffix count.
			row[0] += crow[0]
			for d := 1; d < B; d++ {
				row[d] += crow[d-1]
			}
		}
	}
}
