package gted

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/naive"
	"repro/internal/strategy"
	"repro/internal/tree"
	"repro/internal/treegen"
	"repro/internal/zs"
)

// strategiesFor returns the five algorithms of the paper plus extra
// stress strategies for the pair (f, g).
func strategiesFor(f, g *tree.Tree) []strategy.Named {
	rted, _ := strategy.Opt(f, g)
	lrOnly, _ := strategy.OptRestricted(f, g, strategy.LROnly)
	hOnly, _ := strategy.OptRestricted(f, g, strategy.HOnly)
	lrOnly.Choices = append([]strategy.Choice(nil), lrOnly.Choices...)
	return []strategy.Named{
		strategy.ZhangL(),
		strategy.ZhangR(),
		strategy.KleinH(),
		strategy.DemaineH(f, g),
		rted,
		named{lrOnly, "opt-LR"},
		named{hOnly, "opt-H"},
	}
}

type named struct {
	strategy.Strategy
	name string
}

func (n named) Name() string { return n.name }

// randomStrategy draws an arbitrary valid LRH strategy; GTED must produce
// the correct distance under any of them.
func randomStrategy(rng *rand.Rand, f, g *tree.Tree) strategy.Named {
	a := strategy.NewArray(f.Len(), g.Len(), "random")
	for i := range a.Choices {
		a.Choices[i] = strategy.Choice(rng.Intn(6))
	}
	return a
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestDistancesAgainstNaive cross-validates every algorithm against the
// independent memoized recursion on many small random tree pairs, under
// both the unit model and an asymmetric weighted model (which exercises
// cost transposition when strategies decompose the right-hand tree).
func TestDistancesAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	models := []cost.Model{
		cost.Unit{},
		cost.Weighted{DeleteW: 1.3, InsertW: 0.7, RenameW: 2.1},
	}
	for iter := 0; iter < 120; iter++ {
		nf := 1 + rng.Intn(14)
		ng := 1 + rng.Intn(14)
		f := treegen.Random(rng, treegen.RandomSpec{Size: nf, MaxDepth: 6, MaxFanout: 4, Labels: 3})
		g := treegen.Random(rng, treegen.RandomSpec{Size: ng, MaxDepth: 6, MaxFanout: 4, Labels: 3})
		for _, m := range models {
			want := naive.Dist(f, g, m)
			if zd := zs.Dist(f, g, m); !approx(zd, want) {
				t.Fatalf("iter %d: zs.Dist=%v naive=%v\nF=%s\nG=%s", iter, zd, want, f, g)
			}
			for _, s := range strategiesFor(f, g) {
				r := New(f, g, m, s)
				got := r.Run()
				if !approx(got, want) {
					t.Fatalf("iter %d: %s=%v naive=%v (model %T)\nF=%s\nG=%s",
						iter, s.Name(), got, want, m, f, g)
				}
			}
			for k := 0; k < 3; k++ {
				s := randomStrategy(rng, f, g)
				if got := New(f, g, m, s).Run(); !approx(got, want) {
					t.Fatalf("iter %d: random strategy=%v naive=%v (model %T)\nF=%s\nG=%s",
						iter, got, want, m, f, g)
				}
			}
		}
	}
}

// TestSubtreeMatrixAgainstZS verifies that GTED really fills the whole
// subtree-pair distance matrix and that it matches the standalone
// Zhang–Shasha implementation cell by cell.
func TestSubtreeMatrixAgainstZS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 25; iter++ {
		f := treegen.Random(rng, treegen.RandomSpec{Size: 2 + rng.Intn(30), MaxDepth: 8, MaxFanout: 4, Labels: 4})
		g := treegen.Random(rng, treegen.RandomSpec{Size: 2 + rng.Intn(30), MaxDepth: 8, MaxFanout: 4, Labels: 4})
		want := zs.TreeDists(f, g, cost.Unit{})
		for _, s := range strategiesFor(f, g) {
			r := New(f, g, cost.Unit{}, s)
			r.Run()
			got := r.Matrix()
			for v := 0; v < f.Len(); v++ {
				for w := 0; w < g.Len(); w++ {
					if !approx(got[v*g.Len()+w], want[v*g.Len()+w]) {
						t.Fatalf("iter %d %s: D[%d][%d]=%v want %v\nF=%s\nG=%s",
							iter, s.Name(), v, w, got[v*g.Len()+w], want[v*g.Len()+w], f, g)
					}
				}
			}
		}
	}
}

// TestInstrumentedCountsMatchAnalytic checks that the DP cell counters of
// the real single-path functions equal the analytic counts derived from
// Lemmas 1-4, for all strategies on random trees.
func TestInstrumentedCountsMatchAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 40; iter++ {
		f := treegen.Random(rng, treegen.RandomSpec{Size: 2 + rng.Intn(40), MaxDepth: 8, MaxFanout: 5, Labels: 2})
		g := treegen.Random(rng, treegen.RandomSpec{Size: 2 + rng.Intn(40), MaxDepth: 8, MaxFanout: 5, Labels: 2})
		for _, s := range strategiesFor(f, g) {
			want := strategy.Count(f, g, s)
			r := New(f, g, cost.Unit{}, s)
			r.Run()
			if got := r.Stats().Subproblems; got != want.Total {
				t.Fatalf("iter %d %s: instrumented %d, analytic %d\nF=%s\nG=%s",
					iter, s.Name(), got, want.Total, f, g)
			}
		}
	}
}

// TestRTEDOptimality asserts Theorem-style optimality on random inputs:
// the count of the strategy produced by OptStrategy is no larger than any
// competitor's and matches both the baseline algorithm's optimum and the
// analytic count of the produced array.
func TestRTEDOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 40; iter++ {
		f := treegen.Random(rng, treegen.RandomSpec{Size: 2 + rng.Intn(50), MaxDepth: 9, MaxFanout: 5, Labels: 2})
		g := treegen.Random(rng, treegen.RandomSpec{Size: 2 + rng.Intn(50), MaxDepth: 9, MaxFanout: 5, Labels: 2})
		opt, optCost := strategy.Opt(f, g)
		if c := strategy.Count(f, g, opt); c.Total != optCost {
			t.Fatalf("iter %d: OptStrategy reports cost %d but its array counts %d", iter, optCost, c.Total)
		}
		if _, base := strategy.Baseline(f, g); base != optCost {
			t.Fatalf("iter %d: baseline optimum %d != OptStrategy %d", iter, base, optCost)
		}
		for _, s := range []strategy.Named{
			strategy.ZhangL(), strategy.ZhangR(), strategy.KleinH(), strategy.DemaineH(f, g),
		} {
			if c := strategy.Count(f, g, s); c.Total < optCost {
				t.Fatalf("iter %d: %s count %d beats 'optimal' %d\nF=%s\nG=%s",
					iter, s.Name(), c.Total, optCost, f, g)
			}
		}
		// A handful of random strategies must not beat the optimum either.
		for k := 0; k < 5; k++ {
			s := randomStrategy(rng, f, g)
			if c := strategy.Count(f, g, s); c.Total < optCost {
				t.Fatalf("iter %d: random strategy count %d beats optimum %d", iter, c.Total, optCost)
			}
		}
	}
}

// TestShapePairs runs the algorithms on the paper's synthetic shapes
// (including cross-shape pairs, the hard case of Table 1) and checks
// distance agreement plus RTED optimality.
func TestShapePairs(t *testing.T) {
	sizes := []int{1, 2, 3, 17, 40}
	for _, nf := range sizes {
		for _, ng := range sizes {
			for _, sf := range treegen.Shapes {
				for _, sg := range treegen.Shapes {
					f, g := sf.Build(nf), sg.Build(ng)
					want := naive.Dist(f, g, cost.Unit{})
					rted, optCost := strategy.Opt(f, g)
					for _, s := range []strategy.Named{
						strategy.ZhangL(), strategy.ZhangR(), strategy.KleinH(), strategy.DemaineH(f, g), rted,
					} {
						r := New(f, g, cost.Unit{}, s)
						if got := r.Run(); !approx(got, want) {
							t.Fatalf("%s(%d) vs %s(%d) %s: got %v want %v", sf, nf, sg, ng, s.Name(), got, want)
						}
						if c := strategy.Count(f, g, s); c.Total != r.Stats().Subproblems {
							t.Fatalf("%s(%d) vs %s(%d) %s: count mismatch analytic %d instrumented %d",
								sf, nf, sg, ng, s.Name(), c.Total, r.Stats().Subproblems)
						}
						if c := strategy.Count(f, g, s); c.Total < optCost {
							t.Fatalf("%s(%d) vs %s(%d): %s count %d < optimum %d",
								sf, nf, sg, ng, s.Name(), c.Total, optCost)
						}
					}
				}
			}
		}
	}
}
