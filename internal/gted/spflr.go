package gted

import (
	"math"

	"repro/internal/cost"
	"repro/internal/tree"
)

// zsview is a coordinate view of a tree under which a Zhang–Shasha-style
// left-path forest DP can run. The left view uses plain postorder
// coordinates and leftmost-leaf descendants. The right view uses mirror
// postorder (the postorder of the tree with every node's children
// reversed) and rightmost-leaf descendants, which turns the right-path
// function ΔR into ΔL on mirrored coordinates — one DP implementation
// serves both path types.
type zsview struct {
	t      *tree.Tree
	mirror bool
	lfm    []int32 // mirror-coordinate leafmost, only set when mirror
}

func leftView(t *tree.Tree, _ []int32) zsview    { return zsview{t: t} }
func rightView(t *tree.Tree, lfm []int32) zsview { return zsview{t: t, mirror: true, lfm: lfm} }

// coordOf maps a postorder node id to the view coordinate.
func (v zsview) coordOf(node int) int {
	if v.mirror {
		return v.t.MPost(node)
	}
	return node
}

// nodeOf maps a view coordinate back to the postorder node id.
func (v zsview) nodeOf(c int) int {
	if v.mirror {
		return v.t.ByMPost(c)
	}
	return c
}

// leafmost returns the view coordinate of the view-leftmost leaf of the
// node at coordinate c.
func (v zsview) leafmost(c int) int {
	if v.mirror {
		return int(v.lfm[c])
	}
	return v.t.LeftmostLeaf(c)
}

// spfLR is the single-path function for left and right paths: it computes
// δ(T1_x, T2_y) for every x on the view-left path of the subtree rooted
// at v1 and every y in the subtree rooted at v2, given (precondition)
// that distances for all subtrees of T1/v1 hanging off that path are
// already in the distance matrix.
//
// It evaluates |T1_v1| × |F(T2_v2, Γ_view(T2_v2))| relevant subproblems
// (Lemma 4), counted into the runner's stats. In bounded mode (tcut
// finite) cells whose prefix sizes differ by more than the cheapest
// operations allow under tcut are saturated to +Inf instead of computed:
// such a forest pair needs at least |di−dj| deletions or insertions, so
// its true value already exceeds the cutoff.
func (r *Runner) spfLR(view1 zsview, v1 int, view2 zsview, v2 int, cm *cost.Compiled, dv dview, tcut float64) {
	t1, t2 := view1.t, view2.t
	s1 := t1.Size(v1)
	hi1 := view1.coordOf(v1)
	lo1 := hi1 - s1 + 1
	s2 := t2.Size(v2)
	hi2 := view2.coordOf(v2)
	lo2 := hi2 - s2 + 1

	// Keyroots of the T2 subtree in view coordinates, ascending: the
	// subtree root plus every node whose view-leftmost leaf differs from
	// its parent's (i.e. nodes with a left sibling in the view).
	ks := r.ar.keyroots[:0]
	for c := lo2; c <= hi2; c++ {
		if c == hi2 {
			ks = append(ks, c)
			continue
		}
		pc := view2.coordOf(t2.Parent(view2.nodeOf(c)))
		if view2.leafmost(pc) != view2.leafmost(c) {
			ks = append(ks, c)
		}
	}
	defer func() { r.ar.keyroots = ks[:0] }() // retain capacity for the next call

	// Band pruning: with both operation minima zero no size argument can
	// prove a cell above the cutoff, so the exact path runs unchanged.
	bounded := r.bounded && !math.IsInf(tcut, 1)
	var dmin, imin float64
	if bounded {
		oc := r.opCostsFor(cm)
		dmin, imin = oc.dmin, oc.imin
		bounded = dmin > 0 || imin > 0
		tcut += r.cutPad(tcut)
	}
	// Structural band (default): for prefix pair (di, dj) the per-cell
	// predicate depends only on di−dj, so per row the admissible dj form
	// the contiguous range [di−maxD, di+maxI] — iterate just that range
	// and account the rest as whole skipped spans. Widths are priced, when
	// sharp per-region pricing is on, at the floors of the regions the
	// operations draw from: every deleted prefix node lies in T1's subtree
	// at v1 (fixed per call), every inserted one in the current keyroot's
	// T2 subtree (per keyroot, below).
	banded := bounded && r.banded
	sharp := banded && r.sharp
	nCap := t1.Len() + t2.Len()
	var maxD, maxI int
	if banded {
		dminR := dmin
		if sharp && cm.DelSub != nil && cm.DelSub[v1] > dminR {
			dminR = cm.DelSub[v1]
		}
		maxD, maxI = bandWidth(tcut, dminR), bandWidth(tcut, imin)
		// Widths beyond any possible size difference act identically;
		// capping keeps the index arithmetic comfortably in range.
		if maxD > nCap {
			maxD = nCap
		}
		if maxI > nCap {
			maxI = nCap
		}
	}
	inf := math.Inf(1)

	for _, kc := range ks {
		jlo := view2.leafmost(kc)
		s2k := kc - jlo + 1
		if !bounded {
			r.stats.Subproblems += int64(s1) * int64(s2k)
		}
		w := s2k + 1 // scratch row width

		if banded {
			maxIK := maxI
			if sharp && cm.InsSub != nil {
				if iminR := cm.InsSub[view2.nodeOf(kc)]; iminR > imin {
					maxIK = bandWidth(tcut, iminR)
					if maxIK > nCap {
						maxIK = nCap
					}
				}
			}
			if bw := maxD + maxIK + 1; r.sparse && bw < w {
				fdB := growF64(&r.ar.fdB, (s1+1)*bw)
				r.stats.CompressedRows += int64(s1) + 1
				r.stats.RowCells += int64(s1+1) * int64(bw)
				r.spfLRSparseKeyroot(view1, lo1, s1, view2, jlo, kc, cm, dv, fdB, maxD, maxIK)
				continue
			}
			fd := growF64(&r.ar.fd, (s1+1)*w)
			r.stats.RowCells += int64(s1+1) * int64(w)
			fd[0] = 0
			for dj := 1; dj <= s2k; dj++ {
				fd[dj] = fd[dj-1] + cm.Ins[view2.nodeOf(jlo+dj-1)]
			}
			r.spfLRBandedKeyroot(view1, lo1, s1, view2, jlo, kc, cm, dv, fd, maxD, maxIK)
			continue
		}
		fd := growF64(&r.ar.fd, (s1+1)*w)
		r.stats.RowCells += int64(s1+1) * int64(w)
		fd[0] = 0
		for dj := 1; dj <= s2k; dj++ {
			fd[dj] = fd[dj-1] + cm.Ins[view2.nodeOf(jlo+dj-1)]
		}
		for di := 1; di <= s1; di++ {
			i := lo1 + di - 1
			n1 := view1.nodeOf(i)
			del1 := cm.Del[n1]
			fd[di*w] = fd[(di-1)*w] + del1
			fl1 := view1.leafmost(i)
			onPath1 := fl1 == lo1
			for dj := 1; dj <= s2k; dj++ {
				j := jlo + dj - 1
				n2 := view2.nodeOf(j)
				fl2 := view2.leafmost(j)
				tt := onPath1 && fl2 == jlo
				if bounded {
					if d := di - dj; (d > 0 && float64(d)*dmin > tcut) ||
						(d < 0 && float64(-d)*imin > tcut) {
						fd[di*w+dj] = inf
						r.stats.PrunedSubproblems++
						if tt {
							dv.set(n1, n2, inf)
						}
						continue
					}
					r.stats.Subproblems++
				}
				del := fd[(di-1)*w+dj] + del1
				ins := fd[di*w+dj-1] + cm.Ins[n2]
				var match float64
				if tt {
					// Both prefixes are whole trees rooted at n1, n2.
					match = fd[(di-1)*w+dj-1] + cm.Ren(n1, n2)
				} else {
					match = fd[(fl1-lo1)*w+(fl2-jlo)] + dv.get(n1, n2)
				}
				m := del
				if ins < m {
					m = ins
				}
				if match < m {
					m = match
				}
				fd[di*w+dj] = m
				if tt {
					dv.set(n1, n2, m)
				}
			}
		}
	}
}

// spfLRBandedKeyroot runs one keyroot of the ΔL/ΔR DP restricted to the
// structural band: row di computes only dj ∈ [di−maxD, di+maxI]. Cells
// outside the band hold stale scratch from earlier keyroots, so every
// read that can cross the band edge is guarded by the same integer
// predicate and priced +Inf instead — sound, because an out-of-band
// prefix pair needs more than maxD deletions or maxI insertions and its
// true value therefore exceeds the cutoff (see the SetCutoff comment).
// Band-skipped cells on the T2 path chain still saturate their
// subtree-distance matrix entry to +Inf: later single-path functions
// read those entries.
func (r *Runner) spfLRBandedKeyroot(view1 zsview, lo1, s1 int, view2 zsview, jlo, kc int, cm *cost.Compiled, dv dview, fd []float64, maxD, maxI int) {
	inf := math.Inf(1)
	s2k := kc - jlo + 1
	w := s2k + 1
	// The T2 path chain of this keyroot, ascending: dj offsets (and node
	// ids) of the prefixes that are whole subtrees with view-leftmost
	// leaf jlo — exactly the cells that publish into the distance matrix.
	chD := r.ar.chainDJ[:0]
	chN := r.ar.chainN2[:0]
	for n := view2.nodeOf(jlo); ; n = view2.t.Parent(n) {
		cc := view2.coordOf(n)
		chD = append(chD, int32(cc-jlo+1))
		chN = append(chN, int32(n))
		if cc == kc {
			break
		}
	}
	r.ar.chainDJ, r.ar.chainN2 = chD, chN

	for di := 1; di <= s1; di++ {
		i := lo1 + di - 1
		n1 := view1.nodeOf(i)
		del1 := cm.Del[n1]
		fd[di*w] = fd[(di-1)*w] + del1
		fl1 := view1.leafmost(i)
		onPath1 := fl1 == lo1
		lo := di - maxD
		if lo < 1 {
			lo = 1
		}
		hi := di + maxI
		if hi > s2k {
			hi = s2k
		}
		var skipped int64
		if lo > hi { // whole row out of band
			skipped = int64(s2k)
		} else {
			skipped = int64(lo-1) + int64(s2k-hi)
			r.stats.Subproblems += int64(hi - lo + 1)
		}
		r.stats.PrunedSubproblems += skipped
		r.stats.BandSkippedCells += skipped
		if onPath1 && skipped > 0 {
			// Saturate the matrix entries of band-skipped chain cells.
			for ci := 0; ci < len(chD) && int(chD[ci]) < lo; ci++ {
				dv.set(n1, int(chN[ci]), inf)
			}
			for ci := len(chD) - 1; ci >= 0 && int(chD[ci]) > hi; ci-- {
				dv.set(n1, int(chN[ci]), inf)
			}
		}
		for dj := lo; dj <= hi; dj++ {
			j := jlo + dj - 1
			n2 := view2.nodeOf(j)
			fl2 := view2.leafmost(j)
			tt := onPath1 && fl2 == jlo
			// Neighbour reads can cross the band edge by one on a single
			// side each; the diagonal (di−1, dj−1) never leaves it.
			del := inf
			if dj-(di-1) <= maxI {
				del = fd[(di-1)*w+dj] + del1
			}
			ins := inf
			if di-(dj-1) <= maxD {
				ins = fd[di*w+dj-1] + cm.Ins[n2]
			}
			match := inf
			if tt {
				match = fd[(di-1)*w+dj-1] + cm.Ren(n1, n2)
			} else if a, b := fl1-lo1, fl2-jlo; a-b <= maxD && b-a <= maxI {
				match = fd[a*w+b] + dv.get(n1, n2)
			}
			m := del
			if ins < m {
				m = ins
			}
			if match < m {
				m = match
			}
			fd[di*w+dj] = m
			if tt {
				dv.set(n1, n2, m)
			}
		}
	}
}

// spfLRSparseKeyroot is spfLRBandedKeyroot on band-compressed row storage:
// the scratch slab fd holds only the bw = maxD+maxI+1 admissible cells of
// each of the s1+1 rows, with cell (di, dj) at fd[di*bw + (dj−di+maxD)] —
// offset-indexed by the band diagonal, so walking a row walks contiguous
// memory exactly as in the dense layout. A cell outside the band has no
// storage at all; every read that could cross the band edge carries the
// same integer predicate as the dense banded path and yields a virtual
// +Inf instead of touching memory (row 0 is materialized only up to
// offset maxI, column 0 only down to row maxD, matching the dense path's
// guards). Because the predicates, the evaluation order and the float
// arithmetic are all identical, the computed cells, the published matrix
// entries and every stats counter except CompressedRows/RowCells are
// bit-identical to the dense banded keyroot — only the memory streamed
// per row shrinks from w to bw.
func (r *Runner) spfLRSparseKeyroot(view1 zsview, lo1, s1 int, view2 zsview, jlo, kc int, cm *cost.Compiled, dv dview, fd []float64, maxD, maxI int) {
	inf := math.Inf(1)
	s2k := kc - jlo + 1
	bw := maxD + maxI + 1
	// The T2 path chain of this keyroot (see spfLRBandedKeyroot).
	chD := r.ar.chainDJ[:0]
	chN := r.ar.chainN2[:0]
	for n := view2.nodeOf(jlo); ; n = view2.t.Parent(n) {
		cc := view2.coordOf(n)
		chD = append(chD, int32(cc-jlo+1))
		chN = append(chN, int32(n))
		if cc == kc {
			break
		}
	}
	r.ar.chainDJ, r.ar.chainN2 = chD, chN

	// Row 0 (pure-insertion prefixes) exists only for dj ≤ maxI; the same
	// prefix-sum accumulation as the dense init keeps the floats identical.
	fd[maxD] = 0
	hi0 := maxI
	if hi0 > s2k {
		hi0 = s2k
	}
	for dj := 1; dj <= hi0; dj++ {
		fd[maxD+dj] = fd[maxD+dj-1] + cm.Ins[view2.nodeOf(jlo+dj-1)]
	}

	for di := 1; di <= s1; di++ {
		i := lo1 + di - 1
		n1 := view1.nodeOf(i)
		del1 := cm.Del[n1]
		row := di * bw
		prow := row - bw
		// Column 0 (pure-deletion prefixes) exists only for di ≤ maxD.
		if di <= maxD {
			fd[row+maxD-di] = fd[prow+maxD-di+1] + del1
		}
		fl1 := view1.leafmost(i)
		onPath1 := fl1 == lo1
		lo := di - maxD
		if lo < 1 {
			lo = 1
		}
		hi := di + maxI
		if hi > s2k {
			hi = s2k
		}
		var skipped int64
		if lo > hi { // whole row out of band
			skipped = int64(s2k)
		} else {
			skipped = int64(lo-1) + int64(s2k-hi)
			r.stats.Subproblems += int64(hi - lo + 1)
		}
		r.stats.PrunedSubproblems += skipped
		r.stats.BandSkippedCells += skipped
		if onPath1 && skipped > 0 {
			// Saturate the matrix entries of band-skipped chain cells.
			for ci := 0; ci < len(chD) && int(chD[ci]) < lo; ci++ {
				dv.set(n1, int(chN[ci]), inf)
			}
			for ci := len(chD) - 1; ci >= 0 && int(chD[ci]) > hi; ci-- {
				dv.set(n1, int(chN[ci]), inf)
			}
		}
		for dj := lo; dj <= hi; dj++ {
			j := jlo + dj - 1
			n2 := view2.nodeOf(j)
			fl2 := view2.leafmost(j)
			tt := onPath1 && fl2 == jlo
			off := dj - di + maxD // band offset of (di, dj)
			// Neighbour cells sit at off±1 in the adjacent rows; the
			// diagonal (di−1, dj−1) shares this cell's offset.
			del := inf
			if dj-(di-1) <= maxI {
				del = fd[prow+off+1] + del1
			}
			ins := inf
			if di-(dj-1) <= maxD {
				ins = fd[row+off-1] + cm.Ins[n2]
			}
			match := inf
			if tt {
				match = fd[prow+off] + cm.Ren(n1, n2)
			} else if a, b := fl1-lo1, fl2-jlo; a-b <= maxD && b-a <= maxI {
				match = fd[a*bw+b-a+maxD] + dv.get(n1, n2)
			}
			m := del
			if ins < m {
				m = ins
			}
			if match < m {
				m = match
			}
			fd[row+off] = m
			if tt {
				dv.set(n1, n2, m)
			}
		}
	}
}
