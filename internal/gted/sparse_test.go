package gted

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cost"
	"repro/internal/strategy"
	"repro/internal/treegen"
)

// TestSparseRowsBitIdentical checks the row-compression contract on
// random trees under every strategy and both cost models: the sparse
// layout changes where band cells live, not what they compute, so dense
// and sparse banded runs must return bit-identical results with equal
// subproblem and band accounting; sharp pricing (per-region floors +
// depth spectra) may only prune more, never change an answer.
func TestSparseRowsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	models := []cost.Model{
		cost.Unit{},
		cost.Weighted{DeleteW: 1.3, InsertW: 0.7, RenameW: 2.1},
	}
	for iter := 0; iter < 40; iter++ {
		f := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(30), MaxDepth: 8, MaxFanout: 4, Labels: 3})
		g := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(30), MaxDepth: 8, MaxFanout: 4, Labels: 3})
		for _, m := range models {
			for _, s := range strategiesFor(f, g) {
				exact := New(f, g, m, s)
				d := exact.Run()
				for _, tau := range []float64{0, d / 2, d, d + 0.5, 2*d + 1, math.Inf(1)} {
					run := func(sparse, sharp bool) (float64, bool, Stats) {
						r := New(f, g, m, s)
						r.SetSparseRows(sparse)
						r.SetSharpBands(sharp)
						bd, ok := r.RunBounded(tau)
						return bd, ok, r.Stats()
					}
					dd, okD, sd := run(false, false)
					ds, okS, ss := run(true, false)
					dh, okH, sh := run(true, true)
					if ds != dd || okS != okD {
						t.Fatalf("iter %d %s tau=%v: sparse (%v, %v) != dense (%v, %v)\nF=%s\nG=%s",
							iter, s.Name(), tau, ds, okS, dd, okD, f, g)
					}
					if dh != dd || okH != okD {
						t.Fatalf("iter %d %s tau=%v: sharp (%v, %v) != dense (%v, %v)\nF=%s\nG=%s",
							iter, s.Name(), tau, dh, okH, dd, okD, f, g)
					}
					if ss.Subproblems != sd.Subproblems || ss.PrunedSubproblems != sd.PrunedSubproblems ||
						ss.BandSkippedCells != sd.BandSkippedCells || ss.PrunedKeyroots != sd.PrunedKeyroots {
						t.Fatalf("iter %d %s tau=%v: sparse accounting %+v differs from dense %+v",
							iter, s.Name(), tau, ss, sd)
					}
					if sd.CompressedRows != 0 {
						t.Fatalf("iter %d %s tau=%v: dense run reports %d compressed rows", iter, s.Name(), tau, sd.CompressedRows)
					}
					if sh.Subproblems > ss.Subproblems {
						t.Fatalf("iter %d %s tau=%v: sharp evaluated %d subproblems, sparse %d",
							iter, s.Name(), tau, sh.Subproblems, ss.Subproblems)
					}
				}
			}
		}
	}
}

// TestSparseRowsCompress pins the point of the compressed layout: on a
// near pair at a narrow cutoff, the sparse run must store rows
// band-compressed and materialize strictly fewer row cells than the
// dense banded run, for the same answer.
func TestSparseRowsCompress(t *testing.T) {
	f := treegen.Mixed(120)
	g := treegen.Mixed(128)
	s := strategy.ZhangL()
	exact := New(f, g, cost.Unit{}, s)
	d := exact.Run()

	run := func(sparse bool) (float64, bool, Stats) {
		r := New(f, g, cost.Unit{}, s)
		r.SetSparseRows(sparse)
		r.SetSharpBands(false)
		bd, ok := r.RunBounded(d + 2)
		return bd, ok, r.Stats()
	}
	dd, okD, sd := run(false)
	ds, okS, ss := run(true)
	if !okD || !okS || dd != d || ds != d {
		t.Fatalf("near pair at tau=d+2 did not resolve exactly: dense (%v, %v), sparse (%v, %v), d=%v", dd, okD, ds, okS, d)
	}
	if ss.CompressedRows == 0 {
		t.Fatal("narrow-band run materialized no compressed rows")
	}
	if ss.RowCells >= sd.RowCells {
		t.Fatalf("sparse rows saved nothing: %d cells vs dense %d", ss.RowCells, sd.RowCells)
	}
}

// TestSparseRowsFreshArenaBytes is the allocation half of the compress
// test: a cold (fresh-arena) bounded run at a narrow cutoff must
// allocate strictly fewer bytes under the sparse layout, because the
// row slab it grows is band-sized instead of row-width-sized.
// TotalAlloc is cumulative, so GC cannot skew the deltas.
func TestSparseRowsFreshArenaBytes(t *testing.T) {
	f := treegen.Mixed(120)
	g := treegen.Mixed(128)
	s := strategy.ZhangL()
	d := New(f, g, cost.Unit{}, s).Run()

	bytesOf := func(sparse bool) uint64 {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		r := New(f, g, cost.Unit{}, s)
		r.SetSparseRows(sparse)
		r.SetSharpBands(false)
		r.RunBounded(d + 2)
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}
	dense := bytesOf(false)
	sparse := bytesOf(true)
	if sparse >= dense {
		t.Fatalf("cold sparse run allocated %d bytes, dense %d — compression saved nothing", sparse, dense)
	}
}

// TestDepthSpectraExact cross-checks the shift-accumulate spectra
// builder against a brute-force depth census on random trees.
func TestDepthSpectraExact(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const B = SpectraBuckets
	for iter := 0; iter < 25; iter++ {
		tr := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(60), MaxDepth: 12, MaxFanout: 4, Labels: 2})
		spec := DepthSpectra(tr)

		// Brute force: for each root v, walk its subtree counting nodes
		// per relative depth, then fold into suffix counts.
		var walk func(v, depth int, counts []int32)
		walk = func(v, depth int, counts []int32) {
			d := depth
			if d > B-1 {
				d = B - 1
			}
			for t := 0; t <= d; t++ {
				counts[t]++
			}
			for _, c := range tr.Children(v) {
				walk(c, depth+1, counts)
			}
		}
		for v := 0; v < tr.Len(); v++ {
			want := make([]int32, B)
			walk(v, 0, want)
			for tt := 0; tt < B; tt++ {
				if spec[v*B+tt] != want[tt] {
					t.Fatalf("iter %d node %d bucket %d: spectra %d, brute force %d\nT=%s",
						iter, v, tt, spec[v*B+tt], want[tt], tr)
				}
			}
		}
	}
}
