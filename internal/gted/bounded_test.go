package gted

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/strategy"
	"repro/internal/treegen"
)

// TestRunBoundedContract checks the bounded-mode contract on random trees
// under every strategy: RunBounded(tau) returns (d, true) exactly when the
// exact distance d is at most tau — with d bit-identical to the exact
// run's under the unit model — and (+Inf, false) otherwise.
func TestRunBoundedContract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	models := []cost.Model{
		cost.Unit{},
		cost.Weighted{DeleteW: 1.3, InsertW: 0.7, RenameW: 2.1},
	}
	for iter := 0; iter < 60; iter++ {
		f := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(30), MaxDepth: 8, MaxFanout: 4, Labels: 3})
		g := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(30), MaxDepth: 8, MaxFanout: 4, Labels: 3})
		for _, m := range models {
			_, unit := m.(cost.Unit)
			for _, s := range strategiesFor(f, g) {
				exact := New(f, g, m, s)
				d := exact.Run()
				for _, tau := range []float64{0, d / 2, d - 0.5, d, d + 0.5, 2*d + 1, math.Inf(1)} {
					b := New(f, g, m, s)
					bd, ok := b.RunBounded(tau)
					if ok != (d <= tau) {
						t.Fatalf("iter %d %s tau=%v: ok=%v, exact d=%v\nF=%s\nG=%s",
							iter, s.Name(), tau, ok, d, f, g)
					}
					if ok {
						if unit && bd != d {
							t.Fatalf("iter %d %s tau=%v: bounded %v != exact %v", iter, s.Name(), tau, bd, d)
						}
						if !unit && !approx(bd, d) {
							t.Fatalf("iter %d %s tau=%v: bounded %v !~ exact %v", iter, s.Name(), tau, bd, d)
						}
					} else if !math.IsInf(bd, 1) {
						t.Fatalf("iter %d %s tau=%v: exceeded run returned %v, want +Inf", iter, s.Name(), tau, bd)
					}
					if st := b.Stats(); st.Subproblems > exact.Stats().Subproblems {
						t.Fatalf("iter %d %s tau=%v: bounded evaluated %d subproblems, exact %d",
							iter, s.Name(), tau, st.Subproblems, exact.Stats().Subproblems)
					}
				}
			}
		}
	}
}

// TestBoundedMatrixSaturation checks the matrix contract of a bounded run
// without early abort (the top-k mode): every subtree-pair entry is
// either exactly the unbounded run's value, or an overestimate that is
// itself above the cutoff — never an underestimate, and never a stale
// cell.
func TestBoundedMatrixSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 40; iter++ {
		f := treegen.Random(rng, treegen.RandomSpec{Size: 2 + rng.Intn(35), MaxDepth: 8, MaxFanout: 4, Labels: 3})
		g := treegen.Random(rng, treegen.RandomSpec{Size: 2 + rng.Intn(35), MaxDepth: 8, MaxFanout: 4, Labels: 3})
		for _, s := range strategiesFor(f, g) {
			exact := New(f, g, cost.Unit{}, s)
			d := exact.Run()
			want := exact.Matrix()
			for _, tau := range []float64{0, 1, d / 2, d} {
				b := New(f, g, cost.Unit{}, s)
				b.SetCutoff(tau, false)
				b.Run()
				got := b.Matrix()
				for v := 0; v < f.Len(); v++ {
					for w := 0; w < g.Len(); w++ {
						gv, wv := got[v*g.Len()+w], want[v*g.Len()+w]
						if gv < wv {
							t.Fatalf("iter %d %s tau=%v: D[%d][%d]=%v below exact %v\nF=%s\nG=%s",
								iter, s.Name(), tau, v, w, gv, wv, f, g)
						}
						if gv <= tau && gv != wv {
							t.Fatalf("iter %d %s tau=%v: D[%d][%d]=%v within cutoff but exact is %v",
								iter, s.Name(), tau, v, w, gv, wv)
						}
					}
				}
			}
		}
	}
}

// TestBoundedPrunes pins the point of bounded mode: on a large shape pair
// with a cutoff well under the distance, the run must skip a nonzero
// number of subproblems and evaluate strictly fewer than the exact run.
func TestBoundedPrunes(t *testing.T) {
	f := treegen.LeftBranch(80)
	g := treegen.FullBinary(63)
	s, _ := strategy.Opt(f, g)
	exact := New(f, g, cost.Unit{}, s)
	d := exact.Run()
	if d < 8 {
		t.Fatalf("shape pair distance %v too small for the pruning scenario", d)
	}
	b := New(f, g, cost.Unit{}, s)
	if _, ok := b.RunBounded(d / 8); ok {
		t.Fatalf("cutoff %v below distance %v reported ok", d/8, d)
	}
	st := b.Stats()
	if st.PrunedSubproblems == 0 {
		t.Fatal("bounded run pruned nothing")
	}
	if st.Subproblems >= exact.Stats().Subproblems {
		t.Fatalf("bounded run evaluated %d subproblems, exact %d", st.Subproblems, exact.Stats().Subproblems)
	}
}
