package gted

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/strategy"
	"repro/internal/tree"
	"repro/internal/treegen"
)

// TestChainDefinition3 checks the removal chain against Definition 3 on
// random trees and all three path types: every node is removed exactly
// once, tree states are exactly the path nodes, the first removal is the
// root, left removals precede right removals within each path segment,
// and subtree-jump targets stay within bounds.
func TestChainDefinition3(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 60; iter++ {
		tr := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(60), MaxDepth: 9, MaxFanout: 5})
		cm := cost.Compile(cost.Unit{}, tr, tr)
		for _, pt := range []strategy.PathType{strategy.Left, strategy.Right, strategy.Heavy} {
			var ch chain
			ch.build(tr, tr.Root(), pt, cm.Del)
			n := tr.Len()
			seen := make([]bool, n)
			var treeStates []int
			for i, x := range ch.rem {
				if seen[x] {
					t.Fatalf("node %d removed twice (path %v)\n%s", x, pt, tr)
				}
				seen[x] = true
				if int(ch.size[i]) != tr.Size(int(x)) {
					t.Fatalf("chain size mismatch at %d", i)
				}
				if ch.isTree[i] {
					treeStates = append(treeStates, int(x))
				}
				if jump := i + int(ch.size[i]); jump > n {
					t.Fatalf("jump target %d beyond chain end %d", jump, n)
				}
			}
			// Tree states are the path nodes, in root-to-leaf order.
			path := strategy.PathNodes(tr, tr.Root(), pt)
			if len(treeStates) != len(path) {
				t.Fatalf("%d tree states, %d path nodes (path %v)", len(treeStates), len(path), pt)
			}
			for i := range path {
				if treeStates[i] != path[i] {
					t.Fatalf("tree state %d is node %d, want path node %d", i, treeStates[i], path[i])
				}
			}
			if int(ch.rem[0]) != tr.Root() || !ch.isTree[0] {
				t.Fatal("chain must start with the whole tree")
			}
			// delCost is the suffix sum of unit deletions: delCost[t] = n-t.
			for i := 0; i <= n; i++ {
				if ch.delCost[i] != float64(n-i) {
					t.Fatalf("delCost[%d] = %v want %d", i, ch.delCost[i], n-i)
				}
			}
		}
	}
}

// TestGSideMatchesLemma1 checks that the canonical (a,b) cell enumeration
// of the ΔI G-side index has exactly |A(G_w)| cells for every subtree w
// (Lemma 1's closed form), and that forest sizes and insert sums are
// internally consistent.
func TestGSideMatchesLemma1(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 40; iter++ {
		tr := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(50), MaxDepth: 8, MaxFanout: 5})
		cm := cost.Compile(cost.Unit{}, tr, tr)
		d := strategy.NewDecomp(tr)
		for w := 0; w < tr.Len(); w++ {
			var gs gside
			gs.build(tr, w, cm.Ins)
			if gs.canon != d.A[w] {
				t.Fatalf("subtree %d: %d canonical cells, |A| = %d\n%s", w, gs.canon, d.A[w], tr)
			}
			// The full-subtree cell: size and insert sum cover everything.
			c := gs.cell(0, gs.s2-1)
			if int(gs.szCell[c]) != gs.s2 {
				t.Fatalf("full cell size %d want %d", gs.szCell[c], gs.s2)
			}
			if gs.insRow[c] != float64(gs.s2) {
				t.Fatalf("full cell insert sum %v want %d", gs.insRow[c], gs.s2)
			}
			// Single-leaf cells have size 1 and cost 1.
			for lp := 0; lp < gs.s2; lp++ {
				if gs.sz[lp] == 1 {
					cc := gs.cell(int(gs.lPre[lp]), lp)
					if gs.szCell[cc] != 1 || gs.insRow[cc] != 1 {
						t.Fatalf("leaf cell wrong: sz=%d ins=%v", gs.szCell[cc], gs.insRow[cc])
					}
				}
			}
		}
	}
}

// TestKleinLiveRows: Klein's strategy exercises ΔI on every pair; the
// row-retention machinery is bounded by the nesting depth of off-path
// strips (DESIGN.md §4). For branch/zig-zag trees the strips are single
// leaves so retention is a small constant; in general it never exceeds
// the tree height plus the two working rows.
func TestKleinLiveRows(t *testing.T) {
	for _, s := range treegen.Shapes {
		tr := s.Build(201)
		r := New(tr, tr, cost.Unit{}, strategy.KleinH())
		r.Run()
		got := r.Stats().MaxLiveRows
		if got > tr.Height()+2 {
			t.Fatalf("%s: peak live rows %d exceeds height bound %d", s, got, tr.Height()+2)
		}
		switch s {
		case treegen.ShapeLB, treegen.ShapeRB, treegen.ShapeZZ:
			if got > 4 {
				t.Fatalf("%s: peak live rows %d; strips are leaves, expected <= 4", s, got)
			}
		}
	}
}

// TestQuickDistanceSymmetry is a testing/quick property: δ(F,G) = δ(G,F)
// under the unit model for arbitrary seeds, with RTED on both sides.
func TestQuickDistanceSymmetry(t *testing.T) {
	prop := func(seed int64, a, b uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := treegen.Random(rng, treegen.RandomSpec{Size: 1 + int(a%28), MaxDepth: 7, MaxFanout: 4, Labels: 3})
		g := treegen.Random(rng, treegen.RandomSpec{Size: 1 + int(b%28), MaxDepth: 7, MaxFanout: 4, Labels: 3})
		sfg, _ := strategy.Opt(f, g)
		sgf, _ := strategy.Opt(g, f)
		dfg := New(f, g, cost.Unit{}, sfg).Run()
		dgf := New(g, f, cost.Unit{}, sgf).Run()
		return dfg == dgf
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCountLowerBound is a testing/quick property: every strategy
// computes at least max(|F|,|G|) subproblems (each node pairs with at
// least the root), and at most |A(F)|·|A(G)| (the full decomposition).
func TestQuickCountLowerBound(t *testing.T) {
	prop := func(seed int64, a, b uint8, chooser uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := treegen.Random(rng, treegen.RandomSpec{Size: 1 + int(a%40), MaxDepth: 8, MaxFanout: 4})
		g := treegen.Random(rng, treegen.RandomSpec{Size: 1 + int(b%40), MaxDepth: 8, MaxFanout: 4})
		var s strategy.Strategy
		switch chooser % 5 {
		case 0:
			s = strategy.ZhangL()
		case 1:
			s = strategy.ZhangR()
		case 2:
			s = strategy.KleinH()
		case 3:
			s = strategy.DemaineH(f, g)
		default:
			s, _ = strategy.Opt(f, g)
		}
		c := strategy.Count(f, g, s).Total
		df, dg := strategy.NewDecomp(f), strategy.NewDecomp(g)
		lo := int64(max(f.Len(), g.Len()))
		hi := df.A[f.Root()] * dg.A[g.Root()]
		return c >= lo && c <= hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleNodePairs exercises the degenerate chains (size-1 trees) for
// every path type and both orientations.
func TestSingleNodePairs(t *testing.T) {
	// The shape trees all carry label "x", so a single "x" node is at
	// distance |big|-1 (insert/delete everything else).
	one := tree.MustParseBracket("{x}")
	big := treegen.Mixed(40)
	for _, s := range []strategy.Named{
		strategy.ZhangL(), strategy.ZhangR(), strategy.KleinH(), strategy.DemaineH(one, big),
	} {
		if d := New(one, big, cost.Unit{}, s).Run(); d != float64(big.Len()-1) {
			t.Fatalf("%s: d({a}, MX40) = %v want %d", s.Name(), d, big.Len()-1)
		}
	}
	for _, s := range []strategy.Named{
		strategy.ZhangL(), strategy.ZhangR(), strategy.KleinH(), strategy.DemaineH(big, one),
	} {
		if d := New(big, one, cost.Unit{}, s).Run(); d != float64(big.Len()-1) {
			t.Fatalf("%s: d(MX40, {a}) = %v want %d", s.Name(), d, big.Len()-1)
		}
	}
}
