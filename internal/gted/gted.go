// Package gted implements GTED, the general tree edit distance algorithm
// of the RTED paper (Algorithm 1), together with the three quadratic-space
// single-path functions it dispatches to:
//
//   - ΔL for left paths and ΔR for right paths (Zhang–Shasha-style forest
//     DPs, implemented once and instantiated over mirrored coordinate
//     views), and
//   - ΔI for arbitrary (in practice heavy) paths (a Demaine-style DP over
//     the full decomposition of the second tree).
//
// GTED executes any LRH strategy; with the optimal strategy from
// internal/strategy it is RTED. Every single-path function counts the
// relevant subproblems it evaluates, and those counters match the
// analytic counts of strategy.Count exactly.
package gted

import (
	"math"

	"repro/internal/cost"
	"repro/internal/strategy"
	"repro/internal/tree"
)

// Stats reports instrumentation for one GTED run.
type Stats struct {
	// Subproblems is the number of relevant subproblems evaluated: the
	// count of DP cells with two non-empty forests across all
	// single-path function invocations. Bounded runs (SetCutoff) count
	// only the cells they actually compute.
	Subproblems int64
	// PrunedSubproblems is the number of relevant subproblems a bounded
	// run skipped: DP cells whose forest sizes alone prove the cell value
	// exceeds the pair cutoff, saturated to +Inf instead of computed.
	// With banding (the default) it additionally includes, for every
	// keyroot subproblem skipped wholesale by the keyroot-level band, the
	// product of the two subtree sizes — a lower bound on the relevant
	// cells that DP would have visited. Always zero for exact runs.
	PrunedSubproblems int64
	// BandSkippedCells counts the cells skipped as whole loop ranges by
	// the structural band (never individually tested), as opposed to
	// cells pruned one at a time by the per-cell slack predicate of the
	// unbanded path. With banding on, every in-loop pruned cell is a band
	// skip, so BandSkippedCells + keyroot-level contributions equals
	// PrunedSubproblems; with banding off it stays zero and the
	// difference attributes pruning to slack saturation alone.
	BandSkippedCells int64
	// PrunedKeyroots counts keyroot subproblem DPs skipped entirely by
	// the keyroot-level band: subtree pairs whose size, height or depth-
	// spectra offset alone prices the pair above its saturation cutoff.
	PrunedKeyroots int64
	// CompressedRows counts forest-distance DP rows materialized in
	// band-compressed form (SetSparseRows): only the ≤ maxD+maxI+1
	// admissible cells of each row are stored, offset-indexed by the
	// band diagonal. Zero when sparse rows are off or no band is narrower
	// than its row.
	CompressedRows int64
	// RowCells counts the DP row cells materialized across all
	// single-path-function row storage: a dense ΔL/ΔR keyroot contributes
	// rows×(s2k+1), a band-compressed one rows×(maxD+maxI+1), and every
	// ΔI chain-state row its full decomposition-row length. Multiplied by
	// 8 it is the bytes of row storage streamed per computation — the
	// memory-traffic measure the sparse-row ablation tracks.
	RowCells int64
	// SPFCalls counts single-path function invocations (one per subtree
	// pair the strategy decomposes).
	SPFCalls int64
	// SPFByChoice breaks SPFCalls down by decomposition choice.
	SPFByChoice [6]int64
	// MaxLiveRows is the peak number of simultaneously retained ΔI rows;
	// it measures the working memory of the heavy-path DP (see
	// DESIGN.md).
	MaxLiveRows int
}

// Runner executes GTED for one tree pair and one strategy. A Runner is
// single-use: create, call Run, then query distances and stats.
type Runner struct {
	f, g  *tree.Tree
	cm    *cost.Compiled // oriented (f, g)
	cmT   *cost.Compiled // transposed, built lazily
	strat strategy.Strategy

	d    []float64 // |F|×|G| subtree-pair distances, row-major
	seen []bool    // GTED pair memo

	stats Stats

	// ar holds all reusable scratch (forest-distance rows, the ΔI row
	// pool, chain and decomposition buffers). Stand-alone runners own a
	// private arena; batch workers share one arena across many runners.
	ar       *Arena
	liveRows int

	// Mirror-coordinate leafmost arrays for ΔR: for a node with mirror
	// postorder id c, lfm[c] is the mirror postorder id of its rightmost
	// leaf descendant (the "leftmost leaf" of the mirrored tree).
	lfmF, lfmG []int32

	// Bounded mode (SetCutoff): tau is the caller's cutoff, abortEarly
	// enables the global early exit, exceeded records that the run proved
	// the root distance greater than tau. cb/cbT cache the per-node cost
	// extrema of the two cost orientations.
	tau        float64
	bounded    bool
	abortEarly bool
	exceeded   bool
	cb, cbT    opCosts

	// banded selects the structural band of bounded runs (on by
	// default): inner loops iterate only the diagonal band of index
	// pairs the cutoff can admit, and whole keyroot subproblems with
	// hopeless size/height offsets are skipped before their DP starts.
	// Off, the PR3 per-cell slack predicate tests every cell one by one;
	// both modes return bit-identical bounded results (see SetBanding).
	banded bool
	// sparse selects band-compressed row storage for banded ΔL/ΔR
	// keyroots whose band is narrower than the row (on by default; see
	// SetSparseRows). sharp selects label-aware band pricing and the
	// depth-spectra keyroot band (on by default; see SetSharpBands).
	sparse bool
	sharp  bool
	// Per-subtree heights (leaf = 0) of the two trees, built lazily for
	// the keyroot-level band; hReady guards the one-time fill.
	hF, hG []int32
	hReady bool
	// Quantized per-subtree depth spectra (SpectraBuckets suffix counts
	// per node) of the two trees, consumed by the sharp keyroot band.
	// Batch preparation injects cached arrays via SetDepthSpectra;
	// standalone runners build them lazily into arena scratch.
	spF, spG []int32
	spReady  bool
	// Per-subtree rename floors (cost.Compiled.RenFloors) of the two
	// sides, built lazily for the sharp keyroot band under non-unit
	// models; nil under unit costs.
	renF, renG []float64
	renReady   bool
}

// opCosts holds the extrema of the per-node delete/insert costs of one
// cost orientation: the cheapest operations drive the size-difference
// band pruning, the costliest ones the subproblem-boundary slack.
type opCosts struct {
	dmin, imin float64
	dmax, imax float64
	set        bool
}

func scanOpCosts(cm *cost.Compiled) opCosts {
	if cm.IsUnit() {
		return opCosts{dmin: 1, imin: 1, dmax: 1, imax: 1, set: true}
	}
	oc := opCosts{dmin: math.Inf(1), imin: math.Inf(1), set: true}
	for _, c := range cm.Del {
		if c < oc.dmin {
			oc.dmin = c
		}
		if c > oc.dmax {
			oc.dmax = c
		}
	}
	for _, c := range cm.Ins {
		if c < oc.imin {
			oc.imin = c
		}
		if c > oc.imax {
			oc.imax = c
		}
	}
	return oc
}

// opCostsFor returns (computing on first use) the cost extrema of the
// orientation cm, which is always one of the runner's two compiled forms.
func (r *Runner) opCostsFor(cm *cost.Compiled) *opCosts {
	c := &r.cb
	if cm != r.cm {
		c = &r.cbT
	}
	if !c.set {
		*c = scanOpCosts(cm)
	}
	return c
}

// New prepares a GTED runner for the pair (f, g) under cost model m and
// strategy s.
func New(f, g *tree.Tree, m cost.Model, s strategy.Strategy) *Runner {
	return NewCompiled(f, g, cost.Compile(m, f, g), s)
}

// NewCompiled is New with precompiled costs (for callers that reuse the
// compilation across runs).
func NewCompiled(f, g *tree.Tree, cm *cost.Compiled, s strategy.Strategy) *Runner {
	return NewInArena(f, g, cm, s, NewArena())
}

// NewInArena is NewCompiled with caller-owned scratch memory: all DP
// tables are carved out of ar, which grows to the largest pair it has
// served and is reused without further allocation. Creating a new runner
// on an arena invalidates the distance matrix of every earlier runner
// backed by the same arena.
func NewInArena(f, g *tree.Tree, cm *cost.Compiled, s strategy.Strategy, ar *Arena) *Runner {
	n := f.Len() * g.Len()
	r := &Runner{
		f:      f,
		g:      g,
		cm:     cm,
		strat:  s,
		ar:     ar,
		banded: true,
		sparse: true,
		sharp:  true,
		d:      growF64(&ar.d, n),
		seen:   growBool(&ar.seen, n),
	}
	for i := range r.seen {
		r.seen[i] = false
	}
	return r
}

// SetMirrorLeafmost supplies precomputed mirror-coordinate leafmost
// arrays for the two trees (as cached by batch preparation); either may
// be nil, in which case the runner computes it on first use by ΔR.
func (r *Runner) SetMirrorLeafmost(lfmF, lfmG []int32) {
	r.lfmF, r.lfmG = lfmF, lfmG
}

// Run computes the distance between the two trees (and, as GTED always
// does, between every pair of their subtrees).
func (r *Runner) Run() float64 {
	r.gted(r.f.Root(), r.g.Root())
	return r.Dist(r.f.Root(), r.g.Root())
}

// SetCutoff puts the runner in bounded mode: DP cells whose forest sizes
// alone prove their value greater than the pair's local cutoff (tau plus
// the subproblem slack, see pairCutoff) are saturated to +Inf instead of
// computed. Every computed value at most its cutoff stays bit-identical
// to the exact run's, so after Run the distance matrix holds, for each
// subtree pair, either the exact distance or +Inf/an overestimate that is
// provably above the pair cutoff.
//
// The structural band (SetBanding, on by default) preserves exactly that
// invariant while skipping the hopeless cells as whole loop ranges: for a
// fixed F-side forest size the admissible G-side sizes form one
// contiguous interval [fSz−maxD, fSz+maxI] (maxD/maxI are the most
// cheapest-cost deletions/insertions the cutoff can pay for, bandWidth),
// because the per-cell predicate is monotone in the size difference. Any
// branch of an in-band cell that would read an out-of-band cell is
// priced at +Inf instead — sound, since the out-of-band forest pair needs
// more than maxD deletions or maxI insertions, so its true value already
// exceeds the cutoff and the branch using it cannot be the minimum of
// any value at most the cutoff. Skipped cells that publish into the
// subtree-distance matrix (tree×tree cells) are still saturated there to
// +Inf, so consumers observe the same matrix the per-cell path writes
// wherever a value is at most its pair cutoff.
//
// Two refinements preserve the invariant verbatim:
//
// Virtual band-edge reads (SetSparseRows, on by default). When the band
// is narrower than the row, ΔL/ΔR rows store only their admissible cells,
// offset-indexed by the band diagonal; a cell outside the slab has no
// storage at all. Every read that can cross the band edge carries the
// same integer in-band predicate as the banded dense path, and an
// out-of-band read yields a virtual +Inf without touching memory. The
// soundness argument is the dense band's unchanged — the virtual value
// stands in for a forest pair whose true value provably exceeds the
// cutoff — and because the predicate, the evaluation order and the float
// arithmetic are identical, compressed and dense banded rows compute
// bit-identical cell values and prune exactly the same cells.
//
// Per-region pricing (SetSharpBands, on by default). The band widths are
// priced not at the global cheapest delete/insert but at the cheapest
// cost over the label set actually present in the relevant subtree
// (cost.Compiled.DelSub/InsSub): the deletions that shrink an F-side
// prefix all remove nodes of the current keyroot's subtree, and the
// insertions that grow a G-side prefix all add nodes of the G keyroot's
// subtree, so each is bounded below by its subtree's own price floor. A
// regional floor is ≥ the global one (a subtree's label set is a subset),
// so sharp bands are narrower-or-equal and every extra skipped cell still
// satisfies the invariant: its true value exceeds the cutoff under the
// region's own prices. Results stay bit-identical; only the set of cells
// ever touched shrinks.
//
// With abortEarly set the run additionally stops as soon as any subtree
// pair proves the root distance greater than tau (Exceeded reports it);
// the matrix is then partial and only the exceeded verdict is usable.
// Banded abortEarly runs also stop before a keyroot subproblem whose
// size or height offset alone prices the pair above its saturation
// cutoff (subtreeLower) — the DP for that pair never starts.
// A +Inf tau disables bounded mode.
func (r *Runner) SetCutoff(tau float64, abortEarly bool) {
	r.tau = tau
	r.bounded = !math.IsInf(tau, 1)
	r.abortEarly = abortEarly && r.bounded
}

// SetBanding toggles the structural band of bounded runs (on by
// default). Off, bounded runs fall back to testing every DP cell against
// the slack predicate one at a time (the pre-band behaviour), which the
// differential harness and the `tedbench -exp band` ablation use as the
// comparison baseline. Both modes satisfy the same bounded contract and
// return bit-identical results; banding only changes which cells are
// ever touched. Exact (unbounded) runs ignore the flag.
func (r *Runner) SetBanding(on bool) { r.banded = on }

// SetSparseRows toggles band-compressed row storage of banded ΔL/ΔR
// keyroots (on by default): when the admissible band is narrower than the
// row, only the ≤ maxD+maxI+1 admissible cells per forest-distance row
// are materialized, offset-indexed by the band diagonal, with guarded
// virtual +Inf reads at the band edges. Bit-identical to dense banded
// rows (see SetCutoff); off, banded keyroots fall back to full-width
// rows — the PR 7 layout the `tedbench -exp sparse` ablation compares
// against. No effect outside banded bounded runs.
func (r *Runner) SetSparseRows(on bool) { r.sparse = on }

// SetSharpBands toggles the sharper band bounds of banded bounded runs
// (on by default): label-aware per-region band pricing (band widths
// priced at the cheapest operation cost present in the relevant subtree,
// cost.Compiled.DelSub/InsSub, instead of the global minimum), the
// depth-spectra keyroot band (quantized per-subtree depth histograms
// pruning keyroot DPs the height-only bound admits), and — under
// non-unit models — the per-label-pair rename floor in the keyroot
// bound (renames priced at the cheapest rename available between the
// two regions' label sets, cost.Compiled.RenFloors, instead of zero).
// All of these only shrink the set of cells touched; results are
// bit-identical either way. Off, bands are priced at the global c_min
// and keyroots tested on size and height alone — the PR 7 behaviour
// kept for ablation.
func (r *Runner) SetSharpBands(on bool) { r.sharp = on }

// SetDepthSpectra supplies precomputed per-subtree depth spectra for the
// two trees (DepthSpectra output, as cached by batch preparation); either
// may be nil, in which case the runner computes it on first use by the
// sharp keyroot band.
func (r *Runner) SetDepthSpectra(spF, spG []int32) {
	r.spF, r.spG = spF, spG
	r.spReady = spF != nil && spG != nil
}

// RunBounded is Run with cutoff tau: it returns (d, true) iff the exact
// distance d is at most tau, and (+Inf, false) — typically after
// abandoning most of the DP — when the distance provably exceeds tau.
func (r *Runner) RunBounded(tau float64) (float64, bool) {
	if math.IsNaN(tau) {
		// No distance is ≤ NaN; don't let NaN comparisons (all false)
		// masquerade as an unbounded run.
		r.exceeded = true
		return math.Inf(1), false
	}
	r.SetCutoff(tau, true)
	r.gted(r.f.Root(), r.g.Root())
	if r.exceeded {
		return math.Inf(1), false
	}
	d := r.Dist(r.f.Root(), r.g.Root())
	if d > tau {
		return math.Inf(1), false
	}
	return d, true
}

// Exceeded reports whether a bounded run aborted because the distance
// provably exceeds the cutoff.
func (r *Runner) Exceeded() bool { return r.exceeded }

// pairCutoff returns the saturation cutoff of the subtree pair (v, w): a
// value that the true δ(F_v, G_w) must exceed before the root distance
// provably exceeds tau. Restricting an optimal mapping of (F, G) to
// F_v × G_w turns at most |G|−|G_w| matches into F_v deletions and at
// most |F|−|F_v| matches into G_w insertions, so
//
//	δ(F_v, G_w) ≤ δ(F, G) + (|G|−|G_w|)·maxDel + (|F|−|F_v|)·maxIns.
//
// The slack shrinks as subtrees grow (it is zero at the root pair), so a
// value saturated at its own pair cutoff is above the cutoff of every
// pair that may consume it.
func (r *Runner) pairCutoff(v, w int) float64 {
	oc := r.opCostsFor(r.cm)
	return r.tau +
		float64(r.g.Len()-r.g.Size(w))*oc.dmax +
		float64(r.f.Len()-r.f.Size(v))*oc.imax
}

// regionMins returns the price floors of the keyroot pair (v, w) under
// the runner's forward orientation: the cheapest delete over F_v and the
// cheapest insert over G_w when sharp per-region pricing is on (and the
// cost model carries subtree floors), the global minima otherwise. A
// regional floor is never below the global one.
func (r *Runner) regionMins(v, w int) (dmin, imin float64) {
	oc := r.opCostsFor(r.cm)
	dmin, imin = oc.dmin, oc.imin
	if r.sharp {
		if r.cm.DelSub != nil {
			if m := r.cm.DelSub[v]; m > dmin {
				dmin = m
			}
		}
		if r.cm.InsSub != nil {
			if m := r.cm.InsSub[w]; m > imin {
				imin = m
			}
		}
	}
	return dmin, imin
}

// subtreeLower returns a cheap lower bound on δ(F_v, G_w) from the size
// and height offsets of the pair: an edit script needs at least |Δsize|
// deletions (or insertions), and — because a delete or insert changes
// the height of a tree by at most one while a rename leaves it unchanged
// — at least |Δheight| of them as well. Each is priced at the cheapest
// per-node cost of its direction: the deleted nodes all come from F_v and
// the inserted ones all land in G_w, so with sharp pricing the floors are
// the pair's own regional minima.
//
// Under non-unit models sharp pricing adds the per-label-pair rename
// floor: any mapping with m matched pairs pays at least
//
//	(|F_v|−m)·dmin + (|G_w|−m)·imin + m·rf
//
// where rf = max(renF[v], renG[w]) bounds every single rename of the
// pair from below (its source is in F_v and its target in G_w, so both
// sides' floors apply). The expression is linear in m, so its minimum
// over m ∈ [0, min] sits at an endpoint: when rf ≥ dmin+imin matching
// never beats delete+insert and every node is priced; otherwise the
// smaller side matches fully and still pays rf per pair. With rf = 0
// (any shared-label region) this degenerates to the |Δsize| bound.
func (r *Runner) subtreeLower(v, w int) float64 {
	dmin, imin := r.regionMins(v, w)
	hf, hg := r.heights()
	lb := 0.0
	if ds := r.f.Size(v) - r.g.Size(w); ds > 0 {
		lb = float64(ds) * dmin
	} else if ds < 0 {
		lb = float64(-ds) * imin
	}
	if dh := int(hf[v]) - int(hg[w]); dh > 0 {
		if b := float64(dh) * dmin; b > lb {
			lb = b
		}
	} else if dh < 0 {
		if b := float64(-dh) * imin; b > lb {
			lb = b
		}
	}
	if r.sharp && !r.cm.IsUnit() {
		if rnF, rnG := r.renFloors(); rnF != nil {
			rf := rnF[v]
			if g := rnG[w]; g > rf {
				rf = g
			}
			if rf > 0 {
				sf, sg := float64(r.f.Size(v)), float64(r.g.Size(w))
				var b float64
				switch {
				case rf >= dmin+imin:
					b = sf*dmin + sg*imin
				case sf >= sg:
					b = (sf-sg)*dmin + sg*rf
				default:
					b = (sg-sf)*imin + sf*rf
				}
				if b > lb {
					lb = b
				}
			}
		}
	}
	return lb
}

// renFloors lazily builds the pair's per-subtree rename floors: renF[v]
// bounds any rename out of F_v from below, renG[w] any rename into G_w.
// Nil under the unit model. The G-side floors come from the transposed
// orientation, whose renames swap arguments.
func (r *Runner) renFloors() ([]float64, []float64) {
	if !r.renReady {
		r.renF = r.cm.RenFloors(r.f)
		if r.renF != nil {
			if r.cmT == nil {
				r.cmT = r.cm.Transpose()
			}
			r.renG = r.cmT.RenFloors(r.g)
		}
		r.renReady = true
	}
	return r.renF, r.renG
}

// spectraHopeless reports whether the quantized depth spectra of the
// pair (v, w) prove δ(F_v, G_w) > tcut, given the band half-widths of the
// pair's regional prices: maxD deletions and maxI insertions are the most
// the cutoff can pay for. In any mapping, a mapped node at depth ≥ t
// below v keeps at least t−d of its t ancestors, whose images are
// distinct ancestors of its own image — so it maps at depth ≥ t−d below
// w, where d is the mapping's deletion count. With n_F(t) nodes at depth
// ≥ t below v and only n_G(t−d) slots at depth ≥ t−d below w, at least
// n_F(t)−n_G(t−d) of them are deleted; if that already exceeds maxD at
// d = maxD (n_G's argument is monotone, so maxD is the most forgiving
// feasible d), every mapping needs more than maxD deletions and its cost
// exceeds the cutoff. The symmetric test bounds insertions. Spectra
// entries are exact suffix counts for every depth below SpectraBuckets
// (see DepthSpectra), so each tested level is sound; deeper levels are
// simply not tested.
func (r *Runner) spectraHopeless(v, w, maxD, maxI int) bool {
	const B = SpectraBuckets
	sf, sg := r.spectra()
	fr := sf[v*B : v*B+B]
	gr := sg[w*B : w*B+B]
	for t := 1; t < B; t++ {
		tg := t - maxD
		if tg < 0 {
			tg = 0
		}
		if int(fr[t])-int(gr[tg]) > maxD {
			return true
		}
		tf := t - maxI
		if tf < 0 {
			tf = 0
		}
		if int(gr[t])-int(fr[tf]) > maxI {
			return true
		}
	}
	return false
}

// spectra lazily builds (into arena scratch) any per-subtree depth
// spectrum SetDepthSpectra did not inject.
func (r *Runner) spectra() ([]int32, []int32) {
	if !r.spReady {
		if r.spF == nil {
			r.spF = growI32(&r.ar.spF, r.f.Len()*SpectraBuckets)
			depthSpectraInto(r.f, r.spF)
		}
		if r.spG == nil {
			r.spG = growI32(&r.ar.spG, r.g.Len()*SpectraBuckets)
			depthSpectraInto(r.g, r.spG)
		}
		r.spReady = true
	}
	return r.spF, r.spG
}

// heights lazily builds (into arena scratch) the per-subtree height
// arrays of the two trees: h[v] is the edge count of the longest
// root-leaf path of the subtree rooted at v (leaves are 0).
func (r *Runner) heights() ([]int32, []int32) {
	if !r.hReady {
		r.hF = subtreeHeights(r.f, &r.ar.hF)
		r.hG = subtreeHeights(r.g, &r.ar.hG)
		r.hReady = true
	}
	return r.hF, r.hG
}

func subtreeHeights(t *tree.Tree, buf *[]int32) []int32 {
	h := growI32(buf, t.Len())
	for v := 0; v < t.Len(); v++ { // postorder: children precede parents
		best := int32(0)
		for _, c := range t.Children(v) {
			if h[c]+1 > best {
				best = h[c] + 1
			}
		}
		h[v] = best
	}
	return h
}

// bandWidth returns the width of one side of the structural band: the
// largest k ≥ 0 whose k cheapest operations of per-node cost c still fit
// under tcut, i.e. the largest k with float64(k)*c ≤ tcut — evaluated
// with exactly the float arithmetic of the per-cell predicate so banded
// and unbanded runs prune precisely the same cells. A non-positive c can
// never prove a cell hopeless (the side is unbounded) and a negative
// cutoff admits nothing.
func bandWidth(tcut, c float64) int {
	if math.IsNaN(tcut) {
		return math.MaxInt32 // NaN comparisons never prune; match that
	}
	if tcut < 0 {
		return 0
	}
	if c <= 0 {
		return math.MaxInt32
	}
	q := tcut / c
	if q >= float64(math.MaxInt32) {
		return math.MaxInt32
	}
	k := int(q)
	for k > 0 && float64(k)*c > tcut {
		k--
	}
	for float64(k+1)*c <= tcut {
		k++
	}
	return k
}

// cutPad returns the slack added to cutoff comparisons. Unit costs sum to
// small integers, which float64 represents exactly, so the bounded
// contract is exact and the pad is zero. Arbitrary cost models accumulate
// rounding along DP paths; the pad absorbs it so saturation never hides a
// value the exact run would have computed at or below the cutoff.
func (r *Runner) cutPad(tcut float64) float64 {
	if r.cm.IsUnit() {
		return 0
	}
	return 1e-9 * (1 + math.Abs(tcut))
}

// Dist returns δ(F_v, G_w) after Run.
func (r *Runner) Dist(v, w int) float64 { return r.d[v*r.g.Len()+w] }

// Matrix returns the full |F|×|G| subtree-distance matrix (row-major).
// The slice is owned by the runner.
func (r *Runner) Matrix() []float64 { return r.d }

// Stats returns the instrumentation counters accumulated by Run.
func (r *Runner) Stats() Stats { return r.stats }

// gted is Algorithm 1: look up the strategy's path for the pair, recurse
// into the relevant subtrees of the decomposed tree, then run the
// single-path function matching the path type. In bounded mode each pair
// runs its single-path function under the pair's saturation cutoff, and
// with abortEarly a computed subtree distance above that cutoff ends the
// whole run (the root distance is then provably above tau).
func (r *Runner) gted(v, w int) {
	if r.exceeded {
		return
	}
	idx := v*r.g.Len() + w
	if r.seen[idx] {
		return
	}
	r.seen[idx] = true
	ch := r.strat.Choose(v, w)
	r.stats.SPFCalls++
	r.stats.SPFByChoice[ch]++
	tcut := math.Inf(1)
	if r.bounded {
		tcut = r.pairCutoff(v, w)
		// Keyroot-level band: if the size or height offset of the pair
		// alone prices δ(F_v, G_w) above the saturation cutoff, the root
		// distance provably exceeds tau — skip the pair's entire DP (and
		// the recursion feeding it) instead of computing cells that would
		// all saturate. Only valid with abortEarly: without it the caller
		// is owed the other pairs' matrix entries.
		if r.banded && r.abortEarly {
			tp := tcut + r.cutPad(tcut)
			hopeless := r.subtreeLower(v, w) > tp
			if !hopeless && r.sharp {
				dmin, imin := r.regionMins(v, w)
				maxD, maxI := bandWidth(tp, dmin), bandWidth(tp, imin)
				if maxD < math.MaxInt32 || maxI < math.MaxInt32 {
					hopeless = r.spectraHopeless(v, w, maxD, maxI)
				}
			}
			if hopeless {
				r.exceeded = true
				r.stats.PrunedKeyroots++
				r.stats.PrunedSubproblems += int64(r.f.Size(v)) * int64(r.g.Size(w))
				return
			}
		}
	}
	if !ch.InG() {
		strategy.ForEachHanging(r.f, v, ch.Type(), func(rt int) { r.gted(rt, w) })
		if r.exceeded {
			return
		}
		r.runSPF(r.f, v, r.g, w, ch.Type(), false, tcut)
	} else {
		strategy.ForEachHanging(r.g, w, ch.Type(), func(rt int) { r.gted(v, rt) })
		if r.exceeded {
			return
		}
		r.runSPF(r.g, w, r.f, v, ch.Type(), true, tcut)
	}
	if r.abortEarly && r.d[idx] > tcut+r.cutPad(tcut) {
		r.exceeded = true
	}
}

// runSPF dispatches to the single-path function for a path of type pt in
// the subtree t1/v1, with t2/v2 the other tree. swap records that t1 is
// the original right-hand tree (the "transposition flag" of Algorithm 1).
// tcut is the pair's saturation cutoff (+Inf outside bounded mode).
func (r *Runner) runSPF(t1 *tree.Tree, v1 int, t2 *tree.Tree, v2 int, pt strategy.PathType, swap bool, tcut float64) {
	cm := r.cm
	if swap {
		if r.cmT == nil {
			r.cmT = r.cm.Transpose()
		}
		cm = r.cmT
	}
	dv := dview{d: r.d, ng: r.g.Len(), swap: swap}
	switch pt {
	case strategy.Left:
		r.spfLR(leftView(t1, nil), v1, leftView(t2, nil), v2, cm, dv, tcut)
	case strategy.Right:
		r.spfLR(rightView(t1, r.mirrorLeafmost(t1)), v1, rightView(t2, r.mirrorLeafmost(t2)), v2, cm, dv, tcut)
	default:
		r.spfI(t1, v1, t2, v2, pt, cm, dv, tcut)
	}
}

// mirrorLeafmost lazily builds (and caches) the mirror-coordinate
// leafmost array for one of the runner's two trees.
func (r *Runner) mirrorLeafmost(t *tree.Tree) []int32 {
	var cache *[]int32
	switch t {
	case r.f:
		cache = &r.lfmF
	case r.g:
		cache = &r.lfmG
	default:
		panic("gted: mirrorLeafmost on foreign tree")
	}
	if *cache == nil {
		*cache = MirrorLeafmost(t)
	}
	return *cache
}

// MirrorLeafmost computes the mirror-coordinate leafmost array of t: for
// a node with mirror postorder id c, the mirror postorder id of its
// rightmost leaf descendant. It is the per-tree input of ΔR; batch
// preparation computes it once per tree and injects it with
// SetMirrorLeafmost.
func MirrorLeafmost(t *tree.Tree) []int32 {
	n := t.Len()
	a := make([]int32, n)
	for c := 0; c < n; c++ {
		a[c] = int32(t.MPost(t.RightmostLeaf(t.ByMPost(c))))
	}
	return a
}

// dview provides orientation-aware access to the shared distance matrix:
// coordinates are always (node of t1, node of t2) and the view maps them
// to the canonical (F, G) layout.
type dview struct {
	d    []float64
	ng   int
	swap bool
}

func (dv dview) get(x, y int) float64 {
	if dv.swap {
		x, y = y, x
	}
	return dv.d[x*dv.ng+y]
}

func (dv dview) set(x, y int, val float64) {
	if dv.swap {
		x, y = y, x
	}
	dv.d[x*dv.ng+y] = val
}
