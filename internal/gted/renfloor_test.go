package gted

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/tree"
)

// mustParse builds a tree from bracket notation for the rename-floor
// tests.
func mustParse(t *testing.T, s string) *tree.Tree {
	tr, err := tree.ParseBracket(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return tr
}

// TestRenameFloorPrunesDisjointLabels pins the per-label-pair rename
// floor: two trees of identical shape (so the size and height bounds are
// both zero) but disjoint label sets, under a model whose cheapest
// rename exceeds delete+insert. The optimal script deletes one tree and
// inserts the other, so δ = 2n; a cutoff below that must be refused, and
// with sharp bands the refusal happens at the keyroot level — before any
// DP — which only the rename floor can prove (size offset 0, height
// offset 0).
func TestRenameFloorPrunesDisjointLabels(t *testing.T) {
	f := mustParse(t, "{a{b{c}}{d}{e}}")
	g := mustParse(t, "{v{w{x}}{y}{z}}")
	m := cost.Weighted{DeleteW: 1, InsertW: 1, RenameW: 5}
	n := f.Len()
	tau := float64(n) // well below δ = 2n

	for _, s := range strategiesFor(f, g) {
		exact := New(f, g, m, s)
		d := exact.Run()
		if want := float64(2 * n); d != want {
			t.Fatalf("%s: exact distance %v, want %v (delete-all + insert-all)", s.Name(), d, want)
		}

		sharp := New(f, g, m, s)
		if bd, ok := sharp.RunBounded(tau); ok || !math.IsInf(bd, 1) {
			t.Fatalf("%s: sharp RunBounded(%v) = (%v, %v), want (+Inf, false)", s.Name(), tau, bd, ok)
		}
		if got := sharp.Stats().PrunedKeyroots; got == 0 {
			t.Fatalf("%s: sharp bounded run pruned no keyroots; the rename floor should refuse the root pair outright", s.Name())
		}

		blunt := New(f, g, m, s)
		blunt.SetSharpBands(false)
		if bd, ok := blunt.RunBounded(tau); ok || !math.IsInf(bd, 1) {
			t.Fatalf("%s: blunt RunBounded(%v) = (%v, %v), want (+Inf, false)", s.Name(), tau, bd, ok)
		}
		if sharp.Stats().Subproblems > blunt.Stats().Subproblems {
			t.Fatalf("%s: sharp evaluated %d subproblems, blunt only %d — sharp bands must only prune",
				s.Name(), sharp.Stats().Subproblems, blunt.Stats().Subproblems)
		}
	}
}

// TestRenameFloorSharedLabelInert checks the floor degenerates to the
// old bound when the regions share a label: the cheapest rename is then
// a free self-rename, so rf = 0 and bounded results must match the
// pre-floor behaviour exactly.
func TestRenameFloorSharedLabelInert(t *testing.T) {
	f := mustParse(t, "{a{b}{c}}")
	g := mustParse(t, "{a{c}{b}}")
	m := cost.Weighted{DeleteW: 1.3, InsertW: 0.7, RenameW: 2.1}
	for _, s := range strategiesFor(f, g) {
		exact := New(f, g, m, s)
		d := exact.Run()
		for _, tau := range []float64{0, d / 2, d, d + 1} {
			sharp := New(f, g, m, s)
			sd, sok := sharp.RunBounded(tau)
			blunt := New(f, g, m, s)
			blunt.SetSharpBands(false)
			bd, bok := blunt.RunBounded(tau)
			if sok != bok || (sok && sd != bd) {
				t.Fatalf("%s tau=%v: sharp (%v, %v) != blunt (%v, %v)", s.Name(), tau, sd, sok, bd, bok)
			}
		}
	}
}

// TestRenFloors pins the cost-side computation on a hand-checked pair.
func TestRenFloors(t *testing.T) {
	f := mustParse(t, "{a{b}}")
	g := mustParse(t, "{x{y}}")
	// Rename prices keyed by the label pair; everything else expensive.
	price := map[[2]string]float64{
		{"a", "x"}: 4, {"a", "y"}: 7,
		{"b", "x"}: 3, {"b", "y"}: 9,
	}
	m := cost.Func{
		DeleteF: func(string) float64 { return 1 },
		InsertF: func(string) float64 { return 1 },
		RenameF: func(a, b string) float64 {
			if a == b {
				return 0
			}
			if p, ok := price[[2]string{a, b}]; ok {
				return p
			}
			if p, ok := price[[2]string{b, a}]; ok {
				return p
			}
			return 100
		},
	}
	cm := cost.Compile(m, f, g)
	// Postorder of {a{b}}: b=0, a=1. min over {x, y}: b → 3, a → 4;
	// subtree floors: leaf b keeps 3, root a folds min(4, 3) = 3.
	renF := cm.RenFloors(f)
	if renF[0] != 3 || renF[1] != 3 {
		t.Fatalf("renF = %v, want [3 3]", renF)
	}
	// Transposed side: renames into G nodes. Postorder of {x{y}}: y=0,
	// x=1. min over {a, b}: y → 7, x → 3; root folds to 3.
	renG := cm.Transpose().RenFloors(g)
	if renG[0] != 7 || renG[1] != 3 {
		t.Fatalf("renG = %v, want [7 3]", renG)
	}
	if cost.Compile(cost.Unit{}, f, g).RenFloors(f) != nil {
		t.Fatal("unit model must have nil rename floors")
	}
}
