package gted

// Arena owns every reusable buffer a GTED run needs: the subtree-distance
// matrix, the pair memo, the ΔL/ΔR forest-distance scratch, the ΔI row
// pool, and the chain/decomposition scratch of ΔI. Buffers grow to the
// largest pair ever run and are then reused verbatim, so a worker that
// processes a stream of tree pairs through one Arena allocates nothing in
// steady state.
//
// An Arena serves one Runner at a time (Runners are single-use and GTED's
// single-path functions never nest). Creating a new Runner on an Arena
// invalidates the distances of every previous Runner backed by it: the
// matrix memory is reused in place.
type Arena struct {
	d        []float64
	seen     []bool
	fd       []float64
	keyroots []int
	rowPool  [][]float64
	rows     [][]float64
	ch       chain
	gs       gside
	// Banded bounded runs: per-subtree height arrays (keyroot-level
	// band) and the T2 path-chain coordinates of one ΔL/ΔR keyroot
	// (saturating skipped whole-subtree cells).
	hF, hG  []int32
	chainDJ []int32
	chainN2 []int32
	// Sparse banded runs: the band-compressed ΔL/ΔR forest-distance slab
	// (kept apart from fd so dense ΔI rows never force it to row width)
	// and the depth-spectra scratch of standalone runners.
	fdB      []float64
	spF, spG []int32
}

// NewArena returns an empty arena. The zero value is also ready to use.
func NewArena() *Arena { return &Arena{} }

// growF64 resizes a float64 buffer to n cells, reusing capacity. The
// contents are unspecified.
func growF64(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growI32 is growF64 for int32 buffers.
func growI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growBool is growF64 for bool buffers.
func growBool(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
