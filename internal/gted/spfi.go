package gted

import (
	"math"

	"repro/internal/cost"
	"repro/internal/strategy"
	"repro/internal/tree"
)

// This file implements ΔI, the single-path function for arbitrary
// root-leaf paths (Demaine et al.'s "compute period" in the paper's
// terminology). It computes δ(F_x, G_y) for every x on the given path of
// F and every subtree G_y of G, evaluating exactly
// |F| × |A(G)| relevant subproblems (Lemma 4).
//
// F-side: the relevant subforests of F w.r.t. the path form the
// deterministic removal chain of Definition 3 (remove the root, strip
// off-path subtrees left-to-right node by node, then right-to-left, then
// recurse into the next path subtree). State t of the chain is F minus
// its first t removed nodes; the possible transitions are "remove one
// node" (t → t+1) and "remove the whole leftmost/rightmost subtree"
// (t → t + size(subtree)).
//
// G-side: a forest of the full decomposition A(G) is exactly a node set
// {x : pre(x) ≥ a ∧ post(x) ≤ b} (left removals erase a preorder prefix,
// right removals a postorder suffix), so forests are indexed by local
// (a, b) pairs. Storage keeps, for every local preorder position a, the
// contiguous range b ∈ [post(node at a), size) — which enumerates every
// canonical forest plus a thin band of duplicate cells (same node set,
// larger b) that are filled by O(1) copies and not counted.
//
// Rows (one per chain state, |A(G)| cells each) are produced bottom-up
// and released by reference counting once no later state reads them.
//
// ΔI rows stay dense even under SetSparseRows: a row is indexed by the
// (a, b) decomposition cells, whose admissible band is a different
// contiguous span per la-run, so compressing it would need a per-(row,
// la) offset table of the same order as the savings. Band-compressed
// storage therefore applies to the rectangular ΔL/ΔR rows only; ΔI
// contributes its dense rows to Stats.RowCells and benefits from the
// sharp per-region band pricing below.

// chain is the Definition 3 removal sequence for one subtree and path.
type chain struct {
	rem     []int32   // node removed at state t (postorder id in T1)
	size    []int32   // subtree size of rem[t]; the subtree-jump target is t+size
	isTree  []bool    // state t is the whole subtree rooted at rem[t]
	dirR    []bool    // removal direction at state t (true = rightmost)
	delCost []float64 // delCost[t] = total delete cost of state t's forest; len s1+1
	refs    []int32   // number of later states that read row t; len s1+1
}

// build (re)fills ch for the subtree of t rooted at v, reusing the
// backing arrays from previous calls.
func (ch *chain) build(t *tree.Tree, v int, pt strategy.PathType, del []float64) {
	s1 := t.Size(v)
	ch.rem = growI32(&ch.rem, s1)
	ch.size = growI32(&ch.size, s1)
	ch.isTree = growBool(&ch.isTree, s1)
	ch.dirR = growBool(&ch.dirR, s1)
	ch.delCost = growF64(&ch.delCost, s1+1)
	ch.refs = growI32(&ch.refs, s1+1)
	for i := 0; i < s1; i++ {
		ch.isTree[i] = false
		ch.dirR[i] = false
		ch.refs[i] = 0
	}
	ch.refs[s1] = 0
	ch.delCost[s1] = 0
	pos := 0
	for u := v; u != -1; u = strategy.PathChild(t, u, pt) {
		// The whole subtree F_u is a chain state; removing its root u
		// starts the decomposition of its child forest.
		ch.rem[pos] = int32(u)
		ch.size[pos] = int32(t.Size(u))
		ch.isTree[pos] = true
		ch.dirR[pos] = true
		pos++
		next := strategy.PathChild(t, u, pt)
		if next == -1 {
			break
		}
		kids := t.Children(u)
		// Left strip: subtrees left of the path child vanish node by
		// node in preorder (each removal takes the leftmost root).
		for _, c := range kids {
			if c == next {
				break
			}
			for p := t.Pre(c); p < t.Pre(c)+t.Size(c); p++ {
				x := t.ByPre(p)
				ch.rem[pos] = int32(x)
				ch.size[pos] = int32(t.Size(x))
				pos++
			}
		}
		// Right strip: subtrees right of the path child vanish in
		// reverse postorder (each removal takes the rightmost root).
		for i := len(kids) - 1; ; i-- {
			c := kids[i]
			if c == next {
				break
			}
			for x := c; x >= t.SubtreeFirst(c); x-- {
				ch.rem[pos] = int32(x)
				ch.size[pos] = int32(t.Size(x))
				ch.dirR[pos] = true
				pos++
			}
		}
	}
	if pos != s1 {
		panic("gted: chain construction dropped nodes")
	}
	for i := s1 - 1; i >= 0; i-- {
		ch.delCost[i] = ch.delCost[i+1] + del[ch.rem[i]]
	}
	for i := 0; i < s1; i++ {
		ch.refs[i+1]++
		if !ch.isTree[i] {
			ch.refs[i+int(ch.size[i])]++
		}
	}
}

// gside indexes the full decomposition A(G_w) of one subtree. All
// coordinates are subtree-local: local postorder lp ∈ [0, s2) maps to the
// global postorder id g0+lp, local preorder la likewise offsets the
// subtree root's preorder.
type gside struct {
	s2      int
	g0      int       // global postorder id of the subtree's first node
	lPre    []int32   // local post -> local pre
	lByPre  []int32   // local pre -> local post (also the minimum valid b per a)
	sz      []int32   // local post -> subtree size
	off     []int32   // la -> storage offset of cell (la, minB(la)); len s2+1
	szCell  []int32   // per cell: forest node count
	insRow  []float64 // per cell: total insert cost of the forest (= δ(∅, g))
	prefIns []float64 // local-postorder insert-cost prefix sums; len s2+1
	canon   int64     // number of canonical cells = |A(G_w)|
}

// build (re)fills gs for the subtree of t rooted at w, reusing the
// backing arrays from previous calls.
func (gs *gside) build(t *tree.Tree, w int, ins []float64) {
	s2 := t.Size(w)
	g0 := w - s2 + 1
	preW := t.Pre(w)
	gs.s2 = s2
	gs.g0 = g0
	gs.canon = 0
	gs.lPre = growI32(&gs.lPre, s2)
	gs.lByPre = growI32(&gs.lByPre, s2)
	gs.sz = growI32(&gs.sz, s2)
	gs.off = growI32(&gs.off, s2+1)
	for lp := 0; lp < s2; lp++ {
		gp := g0 + lp
		la := t.Pre(gp) - preW
		gs.lPre[lp] = int32(la)
		gs.lByPre[la] = int32(lp)
		gs.sz[lp] = int32(t.Size(gp))
	}
	// Subtree insert-cost sums via local-postorder prefix sums.
	prefIns := growF64(&gs.prefIns, s2+1)
	prefIns[0] = 0
	for lp := 0; lp < s2; lp++ {
		prefIns[lp+1] = prefIns[lp] + ins[g0+lp]
	}
	gs.off[0] = 0
	for la := 0; la < s2; la++ {
		gs.off[la+1] = gs.off[la] + int32(s2) - gs.lByPre[la]
	}
	rowLen := int(gs.off[s2])
	gs.szCell = growI32(&gs.szCell, rowLen)
	gs.insRow = growF64(&gs.insRow, rowLen)
	for la := 0; la < s2; la++ {
		n0 := int(gs.lByPre[la]) // local post of the node at preorder la
		base := int(gs.off[la])
		gs.szCell[base] = gs.sz[n0]
		gs.insRow[base] = prefIns[n0+1] - prefIns[n0-int(gs.sz[n0])+1]
		gs.canon++
		for lb := n0 + 1; lb < s2; lb++ {
			c := base + lb - n0
			if int(gs.lPre[lb]) >= la {
				gs.szCell[c] = gs.szCell[c-1] + 1
				gs.insRow[c] = gs.insRow[c-1] + ins[g0+lb]
				gs.canon++
			} else {
				gs.szCell[c] = gs.szCell[c-1]
				gs.insRow[c] = gs.insRow[c-1]
			}
		}
	}
}

// cell returns the storage index of the forest {lpre ≥ la, lpost ≤ lb},
// canonicalizing la first (skipping preorder positions whose nodes are
// excluded by the b bound). The forest must be non-empty.
func (gs *gside) cell(la, lb int) int {
	for int(gs.lByPre[la]) > lb {
		la++
	}
	return int(gs.off[la]) + lb - int(gs.lByPre[la])
}

// spfI runs the ΔI DP for the subtree of t1 rooted at v1, decomposed
// along its path of type pt, against the subtree of t2 rooted at v2.
// Precondition: the distance matrix holds δ(T1_x, T2_y) for every x in a
// subtree hanging off the path and every y in T2_v2. Postcondition: it
// additionally holds δ(T1_x, T2_y) for every x ON the path. In bounded
// mode (tcut finite) cells whose forest sizes differ by more than the
// cheapest operations allow under tcut are saturated to +Inf, as in
// spfLR.
func (r *Runner) spfI(t1 *tree.Tree, v1 int, t2 *tree.Tree, v2 int, pt strategy.PathType, cm *cost.Compiled, dv dview, tcut float64) {
	ch := &r.ar.ch
	ch.build(t1, v1, pt, cm.Del)
	gs := &r.ar.gs
	gs.build(t2, v2, cm.Ins)
	s1, s2 := t1.Size(v1), gs.s2
	rowLen := len(gs.szCell)

	// Chain-state rows come from the arena: the rows slice is grown in
	// place (entries beyond the previous length are nil by the cleanup
	// invariant below), and row buffers cycle through the shared pool.
	if cap(r.ar.rows) < s1+1 {
		grown := make([][]float64, s1+1)
		copy(grown, r.ar.rows)
		r.ar.rows = grown
	}
	rows := r.ar.rows[:s1+1]
	alloc := func() []float64 {
		if n := len(r.ar.rowPool); n > 0 {
			b := r.ar.rowPool[n-1]
			r.ar.rowPool = r.ar.rowPool[:n-1]
			if cap(b) >= rowLen {
				return b[:rowLen]
			}
		}
		return make([]float64, rowLen)
	}
	release := func(t int) {
		if t >= s1 {
			return // the empty state is virtual (insRow/delCost)
		}
		ch.refs[t]--
		if ch.refs[t] == 0 {
			r.ar.rowPool = append(r.ar.rowPool, rows[t])
			rows[t] = nil
			r.liveRows--
		}
	}
	// at returns δ(F_t', G-forest(la, lb)) for a forest of known size.
	at := func(tt, la, lb, gsz int) float64 {
		if gsz == 0 {
			return ch.delCost[tt]
		}
		c := gs.cell(la, lb)
		if tt == s1 {
			return gs.insRow[c]
		}
		return rows[tt][c]
	}

	// Band pruning setup, as in spfLR.
	bounded := r.bounded && !math.IsInf(tcut, 1)
	var dmin, imin float64
	if bounded {
		oc := r.opCostsFor(cm)
		dmin, imin = oc.dmin, oc.imin
		bounded = dmin > 0 || imin > 0
		tcut += r.cutPad(tcut)
	}
	inf := math.Inf(1)
	// Structural band (default): for a fixed chain state the admissible
	// G-forest sizes form one interval, and within one la-run of the
	// storage the forest size is nondecreasing in lb — so the admissible
	// cells are a contiguous span found by binary search, and the spans
	// outside are skipped (and counted) without per-cell tests. Skipped
	// cells hold stale scratch; atB guards every read that can land on
	// one and prices it +Inf, sound because an out-of-band forest pair
	// needs more than maxD deletions or maxI insertions (SetCutoff).
	banded := bounded && r.banded
	var maxD, maxI int
	if banded {
		// Sharp per-region pricing (SetSharpBands): every deleted node
		// lies in T1's subtree at v1 and every inserted one in T2's
		// subtree at v2, so the band widths may be priced at those
		// regions' own floors instead of the global minima.
		dminR, iminR := dmin, imin
		if r.sharp {
			if cm.DelSub != nil && cm.DelSub[v1] > dminR {
				dminR = cm.DelSub[v1]
			}
			if cm.InsSub != nil && cm.InsSub[v2] > iminR {
				iminR = cm.InsSub[v2]
			}
		}
		maxD, maxI = bandWidth(tcut, dminR), bandWidth(tcut, iminR)
		// Widths beyond any possible size difference act identically;
		// capping keeps the index arithmetic comfortably in range.
		if n := t1.Len() + t2.Len(); maxD > n {
			maxD = n
		}
		if n := t1.Len() + t2.Len(); maxI > n {
			maxI = n
		}
	}
	inBand := func(tt, gsz int) bool {
		d := (s1 - tt) - gsz
		return d <= maxD && -d <= maxI
	}
	atB := func(tt, la, lb, gsz int) float64 {
		if !inBand(tt, gsz) {
			return inf
		}
		return at(tt, la, lb, gsz)
	}

	for t := s1 - 1; t >= 0; t-- {
		row := alloc()
		rows[t] = row
		r.stats.RowCells += int64(rowLen)
		r.liveRows++
		if r.liveRows > r.stats.MaxLiveRows {
			r.stats.MaxLiveRows = r.liveRows
		}
		u := int(ch.rem[t])
		uSz := int(ch.size[t])
		isT := ch.isTree[t]
		dirR := ch.dirR[t]
		jump := t + uSz
		delU := cm.Del[u]
		fSz := s1 - t // F-side forest size of this chain state
		if !bounded {
			r.stats.Subproblems += gs.canon
		}

		if banded {
			loSz, hiSz := fSz-maxD, fSz+maxI
			for la := s2 - 1; la >= 0; la-- {
				n0 := int(gs.lByPre[la])
				base := int(gs.off[la])
				n0sz := int(gs.sz[n0])
				n0g := gs.g0 + n0
				end := base + (s2 - 1 - n0) // last storage cell of the run
				// Canonical cells in [base..c] number szCell[c]−n0sz+1
				// (the base cell plus one per size increment); that and
				// the monotone size column make span accounting O(log).
				cLo := base
				if int(gs.szCell[base]) < loSz {
					l, h := base, end+1 // first cell with szCell ≥ loSz
					for l < h {
						m := int(uint(l+h) >> 1)
						if int(gs.szCell[m]) < loSz {
							l = m + 1
						} else {
							h = m
						}
					}
					cLo = l
				}
				cHi := end
				if int(gs.szCell[end]) > hiSz {
					l, h := base, end+1 // first cell with szCell > hiSz
					for l < h {
						m := int(uint(l+h) >> 1)
						if int(gs.szCell[m]) <= hiSz {
							l = m + 1
						} else {
							h = m
						}
					}
					cHi = l - 1
				}
				if cLo > end || cHi < base {
					skipped := int64(int(gs.szCell[end]) - n0sz + 1)
					r.stats.PrunedSubproblems += skipped
					r.stats.BandSkippedCells += skipped
					if isT {
						// The base cell — the run's only tree×tree cell —
						// was band-skipped; saturate its matrix entry.
						dv.set(u, n0g, inf)
					}
					continue
				}
				var skipped int64
				if cLo > base {
					skipped += int64(int(gs.szCell[cLo-1]) - n0sz + 1)
					if isT {
						dv.set(u, n0g, inf)
					}
				}
				if cHi < end {
					skipped += int64(int(gs.szCell[end]) - int(gs.szCell[cHi]))
				}
				r.stats.PrunedSubproblems += skipped
				r.stats.BandSkippedCells += skipped
				for c := cLo; c <= cHi; c++ {
					lb := n0 + (c - base)
					if int(gs.lPre[lb]) < la {
						// Duplicate cell: same node set as its predecessor,
						// hence the same forest size — the predecessor is
						// always inside the band too, so the copy is valid.
						row[c] = row[c-1]
						continue
					}
					gSz := int(gs.szCell[c])
					r.stats.Subproblems++
					var val float64
					switch {
					case isT && gSz == n0sz:
						wg := gs.g0 + lb // == n0g: single root
						val = atB(t+1, la, lb, gSz) + delU
						if x := atB(t, la+1, lb-1, gSz-1) + cm.Ins[wg]; x < val {
							val = x
						}
						if x := atB(t+1, la+1, lb-1, gSz-1) + cm.Ren(u, wg); x < val {
							val = x
						}
						dv.set(u, wg, val)
					case isT:
						wl := lb
						wsz := int(gs.sz[wl])
						wg := gs.g0 + wl
						val = atB(t+1, la, lb, gSz) + delU
						if x := atB(t, la, lb-1, gSz-1) + cm.Ins[wg]; x < val {
							val = x
						}
						if x := atB(t, int(gs.lPre[wl]), lb, wsz) + atB(s1, la, lb-wsz, gSz-wsz); x < val {
							val = x
						}
					case dirR:
						wl := lb
						wsz := int(gs.sz[wl])
						wg := gs.g0 + wl
						val = atB(t+1, la, lb, gSz) + delU
						if x := atB(t, la, lb-1, gSz-1) + cm.Ins[wg]; x < val {
							val = x
						}
						if x := dv.get(u, wg) + atB(jump, la, lb-wsz, gSz-wsz); x < val {
							val = x
						}
					default:
						wsz := n0sz
						val = atB(t+1, la, lb, gSz) + delU
						if x := atB(t, la+1, lb, gSz-1) + cm.Ins[n0g]; x < val {
							val = x
						}
						if x := dv.get(u, n0g) + atB(jump, la+wsz, lb, gSz-wsz); x < val {
							val = x
						}
					}
					row[c] = val
				}
			}
			release(t + 1)
			if !isT {
				release(jump)
			}
			continue
		}

		for la := s2 - 1; la >= 0; la-- {
			n0 := int(gs.lByPre[la])
			base := int(gs.off[la])
			n0sz := int(gs.sz[n0])
			n0g := gs.g0 + n0
			for lb := n0; lb < s2; lb++ {
				c := base + lb - n0
				if int(gs.lPre[lb]) < la {
					// Duplicate cell: byPost[lb] is excluded by the a
					// bound, so the node set equals the (la, lb-1) cell.
					row[c] = row[c-1]
					continue
				}
				gSz := int(gs.szCell[c])
				if bounded {
					if d := fSz - gSz; (d > 0 && float64(d)*dmin > tcut) ||
						(d < 0 && float64(-d)*imin > tcut) {
						row[c] = inf
						r.stats.PrunedSubproblems++
						if isT && gSz == n0sz {
							dv.set(u, gs.g0+lb, inf)
						}
						continue
					}
					r.stats.Subproblems++
				}
				var val float64
				switch {
				case isT && gSz == n0sz:
					// Tree × tree (Figure 2, second case): delete the
					// F-root, insert the G-root, or rename.
					wg := gs.g0 + lb // == n0g: single root
					val = at(t+1, la, lb, gSz) + delU
					if x := at(t, la+1, lb-1, gSz-1) + cm.Ins[wg]; x < val {
						val = x
					}
					if x := at(t+1, la+1, lb-1, gSz-1) + cm.Ren(u, wg); x < val {
						val = x
					}
					dv.set(u, wg, val)
				case isT:
					// Whole path subtree F_u vs a proper forest: the
					// split (3)+(4) pairs F_u with the rightmost G
					// subtree (whose distance this very row computed —
					// it is a smaller subproblem) and leaves δ(∅, rest).
					wl := lb // rightmost root, local post
					wsz := int(gs.sz[wl])
					wg := gs.g0 + wl
					val = at(t+1, la, lb, gSz) + delU
					if x := at(t, la, lb-1, gSz-1) + cm.Ins[wg]; x < val {
						val = x
					}
					if x := at(t, int(gs.lPre[wl]), lb, wsz) + at(s1, la, lb-wsz, gSz-wsz); x < val {
						val = x
					}
				case dirR:
					// Forest state, removing from the right: the removed
					// F-node u roots a whole off-path subtree whose
					// distances to all G subtrees are in the matrix.
					wl := lb
					wsz := int(gs.sz[wl])
					wg := gs.g0 + wl
					val = at(t+1, la, lb, gSz) + delU
					if x := at(t, la, lb-1, gSz-1) + cm.Ins[wg]; x < val {
						val = x
					}
					if x := dv.get(u, wg) + at(jump, la, lb-wsz, gSz-wsz); x < val {
						val = x
					}
				default:
					// Forest state, removing from the left.
					wsz := n0sz
					val = at(t+1, la, lb, gSz) + delU
					if x := at(t, la+1, lb, gSz-1) + cm.Ins[n0g]; x < val {
						val = x
					}
					if x := dv.get(u, n0g) + at(jump, la+wsz, lb, gSz-wsz); x < val {
						val = x
					}
				}
				row[c] = val
			}
		}
		release(t + 1)
		if !isT {
			release(jump)
		}
	}
	// Return surviving rows (row 0, plus any still-referenced rows when
	// s1 == 0 edge cases) to the pool. This restores the invariant that
	// every entry of the arena's rows slice is nil between SPF calls.
	for t, b := range rows {
		if b != nil {
			rows[t] = nil
			r.ar.rowPool = append(r.ar.rowPool, b)
			r.liveRows--
		}
	}
}
