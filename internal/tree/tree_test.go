package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestIndexSmall(t *testing.T) {
	// Figure 1's tree: v1 "a" with children v2 "c", v5 "b" (child v3 "d"), v4 "e".
	root := NewNode("a", NewNode("c"), NewNode("b", NewNode("d")), NewNode("e"))
	tr := Index(root)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Fatalf("Len=%d want 5", tr.Len())
	}
	// Postorder: c(0), d(1), b(2), e(3), a(4).
	wantLabels := []string{"c", "d", "b", "e", "a"}
	for i, w := range wantLabels {
		if tr.Label(i) != w {
			t.Fatalf("label[%d]=%q want %q", i, tr.Label(i), w)
		}
	}
	if tr.Root() != 4 || tr.Parent(4) != -1 {
		t.Fatalf("root bookkeeping wrong")
	}
	if tr.Parent(1) != 2 || tr.Parent(2) != 4 {
		t.Fatalf("parents wrong: %d %d", tr.Parent(1), tr.Parent(2))
	}
	if tr.Size(4) != 5 || tr.Size(2) != 2 {
		t.Fatalf("sizes wrong")
	}
	// Preorder: a c b d e.
	wantPre := map[string]int{"a": 0, "c": 1, "b": 2, "d": 3, "e": 4}
	for i := 0; i < 5; i++ {
		if tr.Pre(i) != wantPre[tr.Label(i)] {
			t.Fatalf("pre[%s]=%d want %d", tr.Label(i), tr.Pre(i), wantPre[tr.Label(i)])
		}
	}
	// Mirror postorder (postorder of mirrored tree: a e b d c): e d b c a -> ids.
	wantM := map[string]int{"e": 0, "d": 1, "b": 2, "c": 3, "a": 4}
	for i := 0; i < 5; i++ {
		if tr.MPost(i) != wantM[tr.Label(i)] {
			t.Fatalf("mpost[%s]=%d want %d", tr.Label(i), tr.MPost(i), wantM[tr.Label(i)])
		}
	}
	if tr.LeftmostLeaf(4) != 0 || tr.RightmostLeaf(4) != 3 {
		t.Fatalf("leaf descendants wrong")
	}
	if tr.HeavyChild(4) != 2 {
		t.Fatalf("heavy child of root = %d want 2 (b)", tr.HeavyChild(4))
	}
	if tr.SumSizes(4) != 5+1+2+1+1 {
		t.Fatalf("sumSizes=%d", tr.SumSizes(4))
	}
	if tr.Height() != 2 || tr.Depth(1) != 2 {
		t.Fatalf("depths wrong")
	}
}

func TestBracketRoundTrip(t *testing.T) {
	cases := []string{
		"{a}",
		"{a{b}{c}}",
		"{a{b{d}{e{f}}}{c}}",
		"{}",              // empty label is legal
		"{a b{c d}}",      // labels with spaces
		`{br\{ce\}s{\\}}`, // escaped braces and backslash
	}
	for _, s := range cases {
		tr, err := ParseBracket(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("validate %q: %v", s, err)
		}
		again, err := ParseBracket(tr.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", s, tr.String(), err)
		}
		if !Equal(tr, again) {
			t.Fatalf("round trip changed tree: %q -> %q", s, again.String())
		}
	}
}

func TestBracketErrors(t *testing.T) {
	bad := []string{
		"",
		"a",
		"{a",
		"{a}}",
		"{a}{b}",
		"{a{b}",
		"{a\\",
		`{a\x}`,
		"{a} trailing",
		"junk {a}",
	}
	for _, s := range bad {
		if _, err := ParseBracket(s); err == nil {
			t.Fatalf("ParseBracket(%q) succeeded, want error", s)
		}
	}
}

func TestNewick(t *testing.T) {
	tr, err := ParseNewick("((A:0.1,B:0.2)AB:0.3,(C,D))root;")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 7 {
		t.Fatalf("Len=%d want 7", tr.Len())
	}
	if tr.Label(tr.Root()) != "root" {
		t.Fatalf("root label %q", tr.Label(tr.Root()))
	}
	if tr.Label(2) != "AB" {
		t.Fatalf("internal label %q want AB", tr.Label(2))
	}
	// Quoted labels with escaped quotes.
	tr2, err := ParseNewick("('it''s a gene',B)")
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Label(0) != "it's a gene" {
		t.Fatalf("quoted label = %q", tr2.Label(0))
	}
	// Unquoted labels may contain interior spaces ("x y" is one label).
	sp, err := ParseNewick("(A,B)x y")
	if err != nil || sp.Label(sp.Root()) != "x y" {
		t.Fatalf("space label: %v %q", err, sp.Label(sp.Root()))
	}
	for _, bad := range []string{"((A,B)", "(A,B));", "(A,B):"} {
		if _, err := ParseNewick(bad); err == nil {
			t.Fatalf("ParseNewick(%q) succeeded, want error", bad)
		}
	}
}

// randomNode builds a random builder tree for property tests.
func randomNode(rng *rand.Rand, n int) *Node {
	labels := []string{"a", "b", "{", "}", `\`, "x y", ""}
	nd := NewNode(labels[rng.Intn(len(labels))])
	n--
	for n > 0 {
		c := 1 + rng.Intn(n)
		nd.Add(randomNode(rng, c))
		n -= c
	}
	return nd
}

func TestRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, szRaw uint8) bool {
		_ = seed
		sz := int(szRaw%40) + 1
		tr := Index(randomNode(rng, sz))
		if tr.Validate() != nil {
			return false
		}
		again, err := ParseBracket(tr.String())
		return err == nil && Equal(tr, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMirrorInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		tr := Index(randomNode(rng, 1+rng.Intn(30)))
		m := tr.Mirror()
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if !Equal(tr, m.Mirror()) {
			t.Fatalf("mirror not an involution for %s", tr)
		}
		// Mirror postorder of tr equals postorder of the mirror: node
		// labels listed by MPost on tr must equal labels by postorder on m.
		for c := 0; c < tr.Len(); c++ {
			if tr.Label(tr.ByMPost(c)) != m.Label(c) {
				t.Fatalf("mirror postorder mismatch at %d for %s", c, tr)
			}
		}
		// Node v of tr corresponds to the node of m whose postorder id is
		// tr.MPost(v); mirroring preserves subtree sizes under that map.
		for v := 0; v < tr.Len(); v++ {
			if tr.Size(v) != m.Size(tr.MPost(v)) {
				t.Fatalf("subtree size not preserved under mirror")
			}
		}
	}
}

func TestMirrorPostorderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		tr := Index(randomNode(rng, 1+rng.Intn(40)))
		n := tr.Len()
		for v := 0; v < n; v++ {
			// Subtrees are contiguous in mirror postorder and end at the root.
			lo := tr.MPost(v) - tr.Size(v) + 1
			if lo < 0 {
				t.Fatalf("mpost range broken")
			}
			// Root has the maximal id within its subtree.
			for _, c := range tr.Children(v) {
				if tr.MPost(c) >= tr.MPost(v) {
					t.Fatalf("child mpost above parent")
				}
				if tr.Pre(c) <= tr.Pre(v) {
					t.Fatalf("child preorder below parent")
				}
			}
		}
	}
}

func TestShapeStats(t *testing.T) {
	tr := MustParseBracket("{a{b{c}{d}}{e}}")
	s := tr.Shape()
	if s.Size != 5 || s.Height != 2 || s.Leaves != 3 || s.MaxFanout != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.AvgDepth != (0+1+2+2+1)/5.0 {
		t.Fatalf("avg depth %v", s.AvgDepth)
	}
}

func TestBuilderCopy(t *testing.T) {
	tr := MustParseBracket("{a{b{c}}{d}}")
	nd := tr.Builder(tr.Root())
	nd.Children[0].Label = "MUT"
	if strings.Contains(tr.String(), "MUT") {
		t.Fatal("Builder did not deep-copy")
	}
	if Index(tr.Builder(tr.Root())).String() != tr.String() {
		t.Fatal("Builder copy not equal")
	}
}

func TestEscapeLabel(t *testing.T) {
	for _, l := range []string{"plain", "{", "}", `\`, `a{b}c\d`, ""} {
		esc := EscapeLabel(l)
		tr, err := ParseBracket("{" + esc + "}")
		if err != nil {
			t.Fatalf("escape %q -> %q unparseable: %v", l, esc, err)
		}
		if tr.Label(0) != l {
			t.Fatalf("escape round trip %q -> %q", l, tr.Label(0))
		}
	}
}

func TestDeepTree(t *testing.T) {
	// A 50k-deep chain must index without stack issues.
	var sb strings.Builder
	const depth = 50000
	for i := 0; i < depth; i++ {
		sb.WriteString("{n")
	}
	for i := 0; i < depth; i++ {
		sb.WriteString("}")
	}
	tr, err := ParseBracket(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != depth || tr.Height() != depth-1 {
		t.Fatalf("chain stats wrong: len=%d height=%d", tr.Len(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
