package tree

import "fmt"

// PostorderForm is the minimal serializable description of a tree: the
// label and child count of every node, both in postorder. It is the form
// the corpus codec stores — two flat arrays instead of a pointer
// structure — and FromPostorder rebuilds the full indexed Tree from it.
type PostorderForm struct {
	Labels      []string
	ChildCounts []int
}

// Postorder returns the postorder form of t. The labels slice aliases the
// tree's internal labels and must not be modified.
func (t *Tree) Postorder() PostorderForm {
	counts := make([]int, t.Len())
	for i := 0; i < t.Len(); i++ {
		counts[i] = len(t.children[i])
	}
	return PostorderForm{Labels: t.labels, ChildCounts: counts}
}

// FromPostorder rebuilds the indexed Tree from its postorder form without
// going through the mutable builder representation: one stack pass wires
// parents, children and all bottom-up quantities, and two linear passes
// fill the top-down and traversal-order arrays. It returns an error —
// never panics — on malformed input (mismatched lengths, child counts
// that do not stack up to a single root), so decoders can feed it
// untrusted data directly.
func FromPostorder(f PostorderForm) (*Tree, error) {
	n := len(f.Labels)
	if n == 0 {
		return nil, fmt.Errorf("tree: empty postorder form")
	}
	if len(f.ChildCounts) != n {
		return nil, fmt.Errorf("tree: %d labels but %d child counts", n, len(f.ChildCounts))
	}
	t := &Tree{
		labels:   make([]string, n),
		parent:   make([]int, n),
		children: make([][]int, n),
		size:     make([]int, n),
		depth:    make([]int, n),
		lml:      make([]int, n),
		rml:      make([]int, n),
		pre:      make([]int, n),
		byPre:    make([]int, n),
		mpost:    make([]int, n),
		byMPost:  make([]int, n),
		heavy:    make([]int, n),
		sumSize:  make([]int64, n),
	}
	copy(t.labels, f.Labels)

	// Bottom-up pass: each node adopts the last k completed subtrees on
	// the stack as its children (stack order is sibling order).
	stack := make([]int, 0, 16)
	for i := 0; i < n; i++ {
		k := f.ChildCounts[i]
		if k < 0 || k > len(stack) {
			return nil, fmt.Errorf("tree: node %d claims %d children, %d subtrees available", i, k, len(stack))
		}
		kids := stack[len(stack)-k:]
		sz := 1
		var ss int64
		if k > 0 {
			t.children[i] = make([]int, k)
			copy(t.children[i], kids)
		}
		for _, c := range kids {
			t.parent[c] = i
			sz += t.size[c]
			ss += t.sumSize[c]
		}
		t.size[i] = sz
		t.sumSize[i] = ss + int64(sz)
		if k == 0 {
			t.lml[i] = i
			t.rml[i] = i
			t.heavy[i] = -1
		} else {
			t.lml[i] = t.lml[kids[0]]
			t.rml[i] = t.rml[kids[k-1]]
			// Heavy child: maximal subtree size, ties to the rightmost
			// child (the convention of Index).
			h := kids[0]
			for _, c := range kids[1:] {
				if t.size[c] >= t.size[h] {
					h = c
				}
			}
			t.heavy[i] = h
		}
		stack = append(stack[:len(stack)-k], i)
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("tree: child counts describe a forest of %d trees, want 1", len(stack))
	}
	t.parent[n-1] = -1

	// Top-down pass: in reverse postorder every parent precedes its
	// children, so depths propagate in one sweep.
	for i := n - 1; i >= 0; i-- {
		d := t.depth[i]
		if d > t.height {
			t.height = d
		}
		for _, c := range t.children[i] {
			t.depth[c] = d + 1
		}
	}

	// Preorder numbering via an explicit DFS (children pushed in reverse
	// so the leftmost is visited first).
	preStack := append(stack[:0], n-1)
	preCounter := 0
	for len(preStack) > 0 {
		v := preStack[len(preStack)-1]
		preStack = preStack[:len(preStack)-1]
		t.pre[v] = preCounter
		t.byPre[preCounter] = v
		preCounter++
		kids := t.children[v]
		for j := len(kids) - 1; j >= 0; j-- {
			preStack = append(preStack, kids[j])
		}
	}
	t.fillMirrorPostorder()
	return t, nil
}
