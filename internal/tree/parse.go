package tree

import (
	"fmt"
	"strings"
)

// ParseError describes a syntax error in a serialized tree, with the byte
// offset at which it was detected.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("tree: parse error at offset %d: %s", e.Offset, e.Msg)
}

// ParseBracket parses the bracket notation used by the reference RTED
// distribution: a tree is "{label child* }" where each child is itself a
// bracket tree, e.g. {a{b{d}}{c}}. Labels may contain any characters;
// literal '{', '}' and '\' must be escaped with a backslash. Whitespace
// between a closing brace and the next brace is ignored; whitespace inside
// labels is preserved.
func ParseBracket(s string) (*Tree, error) {
	p := &bracketParser{src: s}
	root, err := p.parseTree()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(s) {
		return nil, &ParseError{p.pos, "trailing input after tree"}
	}
	return Index(root), nil
}

type bracketParser struct {
	src string
	pos int
}

func (p *bracketParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *bracketParser) parseTree() (*Node, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, &ParseError{p.pos, "unexpected end of input, want '{'"}
	}
	if p.src[p.pos] != '{' {
		return nil, &ParseError{p.pos, fmt.Sprintf("unexpected %q, want '{'", p.src[p.pos])}
	}
	p.pos++
	label, err := p.parseLabel()
	if err != nil {
		return nil, err
	}
	node := &Node{Label: label}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, &ParseError{p.pos, "unexpected end of input, want '}' or '{'"}
		}
		switch p.src[p.pos] {
		case '}':
			p.pos++
			return node, nil
		case '{':
			child, err := p.parseTree()
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
		default:
			return nil, &ParseError{p.pos, fmt.Sprintf("unexpected %q between children", p.src[p.pos])}
		}
	}
}

func (p *bracketParser) parseLabel() (string, error) {
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case '{', '}':
			return sb.String(), nil
		case '\\':
			if p.pos+1 >= len(p.src) {
				return "", &ParseError{p.pos, "dangling escape at end of input"}
			}
			next := p.src[p.pos+1]
			if next != '{' && next != '}' && next != '\\' {
				return "", &ParseError{p.pos, fmt.Sprintf(`invalid escape \%c`, next)}
			}
			sb.WriteByte(next)
			p.pos += 2
		default:
			sb.WriteByte(c)
			p.pos++
		}
	}
	return "", &ParseError{p.pos, "unexpected end of input inside label"}
}

// EscapeLabel escapes '{', '}' and '\' so the label round-trips through
// ParseBracket.
func EscapeLabel(label string) string {
	if !strings.ContainsAny(label, `{}\`) {
		return label
	}
	var sb strings.Builder
	for i := 0; i < len(label); i++ {
		switch label[i] {
		case '{', '}', '\\':
			sb.WriteByte('\\')
		}
		sb.WriteByte(label[i])
	}
	return sb.String()
}

// MustParseBracket is ParseBracket that panics on malformed input; it is
// intended for tests and package-level literals.
func MustParseBracket(s string) *Tree {
	t, err := ParseBracket(s)
	if err != nil {
		panic(err)
	}
	return t
}

// ParseNewick parses a subset of the Newick format used for phylogenetic
// trees: "(child,child,...)label:length;" where lengths are optional and
// ignored, labels may be quoted with single quotes, and the trailing
// semicolon is optional. Unlabeled nodes receive the empty label.
func ParseNewick(s string) (*Tree, error) {
	p := &newickParser{src: s}
	root, err := p.parseClade()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ';' {
		p.pos++
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, &ParseError{p.pos, "trailing input after newick tree"}
	}
	return Index(root), nil
}

type newickParser struct {
	src string
	pos int
}

func (p *newickParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *newickParser) parseClade() (*Node, error) {
	p.skipSpace()
	node := &Node{}
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			child, err := p.parseClade()
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, &ParseError{p.pos, "unexpected end of input, want ',' or ')'"}
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, &ParseError{p.pos, fmt.Sprintf("unexpected %q in clade list", p.src[p.pos])}
		}
	}
	label, err := p.parseNewickLabel()
	if err != nil {
		return nil, err
	}
	node.Label = label
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ':' {
		p.pos++
		p.skipSpace()
		start := p.pos
		for p.pos < len(p.src) && isNewickNumberChar(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return nil, &ParseError{p.pos, "missing branch length after ':'"}
		}
	}
	return node, nil
}

func (p *newickParser) parseNewickLabel() (string, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '\'' {
		p.pos++
		var sb strings.Builder
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if c == '\'' {
				if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\'' {
					sb.WriteByte('\'')
					p.pos += 2
					continue
				}
				p.pos++
				return sb.String(), nil
			}
			sb.WriteByte(c)
			p.pos++
		}
		return "", &ParseError{p.pos, "unterminated quoted label"}
	}
	start := p.pos
	for p.pos < len(p.src) && !isNewickDelim(p.src[p.pos]) {
		p.pos++
	}
	return strings.TrimSpace(p.src[start:p.pos]), nil
}

func isNewickDelim(c byte) bool {
	switch c {
	case '(', ')', ',', ':', ';':
		return true
	}
	return false
}

func isNewickNumberChar(c byte) bool {
	return c >= '0' && c <= '9' || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E'
}
