// Package tree implements the ordered labeled tree substrate used by all
// tree edit distance algorithms in this repository.
//
// A Tree is an immutable, array-indexed form of an ordered labeled tree.
// Nodes are identified by their 0-based postorder position, which is the
// canonical node id used throughout the module (distance matrices, strategy
// arrays and single-path functions all index by postorder id). The package
// also precomputes every per-node quantity the RTED machinery needs:
// preorder ids, mirror (right-to-left) postorder ids, subtree sizes,
// leftmost/rightmost leaf descendants, depths, heavy children, and the
// accumulated subtree-size sums required by the decomposition lemmas.
package tree

import (
	"fmt"
	"strings"
)

// Node is the mutable builder form of a tree node. Build trees by linking
// Nodes, then call Index to obtain the immutable array form used by the
// algorithms.
type Node struct {
	Label    string
	Children []*Node
}

// NewNode returns a node with the given label and children.
func NewNode(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// Add appends children to n and returns n for chaining.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Tree is the immutable indexed form of an ordered labeled tree.
//
// All slices are indexed by postorder id in [0, N); the root is id N-1.
type Tree struct {
	labels   []string // label of node i
	parent   []int    // parent postorder id, -1 for the root
	children [][]int  // children postorder ids, left to right
	size     []int    // number of nodes in the subtree rooted at i
	depth    []int    // root depth 0
	lml      []int    // leftmost leaf descendant (postorder id)
	rml      []int    // rightmost leaf descendant (postorder id)
	pre      []int    // preorder number of node i
	byPre    []int    // inverse of pre: preorder number -> postorder id
	mpost    []int    // mirror postorder number of node i
	byMPost  []int    // inverse of mpost
	heavy    []int    // heavy child postorder id, -1 for leaves
	sumSize  []int64  // sum of size(x) over all x in the subtree of i
	height   int
}

// Index converts a builder tree into its immutable indexed form.
// It panics if root is nil; trees always have at least one node.
func Index(root *Node) *Tree {
	if root == nil {
		panic("tree: Index called with nil root")
	}
	n := countNodes(root)
	t := &Tree{
		labels:   make([]string, n),
		parent:   make([]int, n),
		children: make([][]int, n),
		size:     make([]int, n),
		depth:    make([]int, n),
		lml:      make([]int, n),
		rml:      make([]int, n),
		pre:      make([]int, n),
		byPre:    make([]int, n),
		mpost:    make([]int, n),
		byMPost:  make([]int, n),
		heavy:    make([]int, n),
		sumSize:  make([]int64, n),
	}
	postCounter := 0
	preCounter := 0
	// Iterative DFS assigning postorder and preorder ids. The explicit
	// stack avoids goroutine stack growth limits on degenerate deep trees.
	type frame struct {
		node   *Node
		parent int // postorder id of parent; filled on exit, so store index into pending
		next   int // next child to visit
		depth  int
		pre    int
		kids   []int // postorder ids of already-finished children
	}
	stack := []*frame{{node: root, next: 0, depth: 0, pre: preCounter}}
	preCounter++
	var finished int = -1 // postorder id of the most recently finished node
	_ = finished
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		if f.next < len(f.node.Children) {
			c := f.node.Children[f.next]
			if c == nil {
				panic("tree: nil child node")
			}
			f.next++
			stack = append(stack, &frame{node: c, depth: f.depth + 1, pre: preCounter})
			preCounter++
			continue
		}
		// All children finished: assign this node's postorder id.
		id := postCounter
		postCounter++
		t.labels[id] = f.node.Label
		t.depth[id] = f.depth
		t.pre[id] = f.pre
		t.byPre[f.pre] = id
		t.children[id] = f.kids
		sz := 1
		var ss int64
		for _, c := range f.kids {
			t.parent[c] = id
			sz += t.size[c]
			ss += t.sumSize[c]
		}
		t.size[id] = sz
		t.sumSize[id] = ss + int64(sz)
		if len(f.kids) == 0 {
			t.lml[id] = id
			t.rml[id] = id
			t.heavy[id] = -1
		} else {
			t.lml[id] = t.lml[f.kids[0]]
			t.rml[id] = t.rml[f.kids[len(f.kids)-1]]
			// Heavy child: maximal subtree size, ties broken by the
			// rightmost child (required to reproduce the paper's
			// worked Example 4).
			h := f.kids[0]
			for _, c := range f.kids[1:] {
				if t.size[c] >= t.size[h] {
					h = c
				}
			}
			t.heavy[id] = h
		}
		if f.depth > t.height {
			t.height = f.depth
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			p := stack[len(stack)-1]
			p.kids = append(p.kids, id)
		}
	}
	t.parent[postCounter-1] = -1
	t.fillMirrorPostorder()
	return t
}

// fillMirrorPostorder computes the mirror (right-to-left) postorder
// numbering: the postorder of the tree obtained by reversing the child
// order of every node. ΔR runs the left-path DP on this view.
func (t *Tree) fillMirrorPostorder() {
	n := t.Len()
	counter := 0
	type frame struct {
		id   int
		next int // children visited right-to-left: next counts down
	}
	root := n - 1
	stack := []frame{{id: root, next: len(t.children[root]) - 1}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= 0 {
			c := t.children[f.id][f.next]
			f.next--
			stack = append(stack, frame{id: c, next: len(t.children[c]) - 1})
			continue
		}
		t.mpost[f.id] = counter
		t.byMPost[counter] = f.id
		counter++
		stack = stack[:len(stack)-1]
	}
}

func countNodes(root *Node) int {
	n := 0
	stack := []*Node{root}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n++
		for _, c := range nd.Children {
			if c == nil {
				panic("tree: nil child node")
			}
			stack = append(stack, c)
		}
	}
	return n
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.labels) }

// Root returns the postorder id of the root (always Len()-1).
func (t *Tree) Root() int { return t.Len() - 1 }

// Label returns the label of node i.
func (t *Tree) Label(i int) string { return t.labels[i] }

// Parent returns the postorder id of i's parent, or -1 for the root.
func (t *Tree) Parent(i int) int { return t.parent[i] }

// Children returns the postorder ids of i's children, left to right.
// The returned slice must not be modified.
func (t *Tree) Children(i int) []int { return t.children[i] }

// NumChildren returns the fanout of node i.
func (t *Tree) NumChildren(i int) int { return len(t.children[i]) }

// Size returns the number of nodes in the subtree rooted at i.
func (t *Tree) Size(i int) int { return t.size[i] }

// SumSizes returns the sum of Size(x) over all x in the subtree of i.
// This is the Σ|F_v| term of Lemma 1.
func (t *Tree) SumSizes(i int) int64 { return t.sumSize[i] }

// Depth returns the depth of node i (root depth 0).
func (t *Tree) Depth(i int) int { return t.depth[i] }

// Height returns the maximum depth of any node.
func (t *Tree) Height() int { return t.height }

// LeftmostLeaf returns the postorder id of the leftmost leaf descendant
// of i (i itself if i is a leaf).
func (t *Tree) LeftmostLeaf(i int) int { return t.lml[i] }

// RightmostLeaf returns the postorder id of the rightmost leaf descendant
// of i (i itself if i is a leaf).
func (t *Tree) RightmostLeaf(i int) int { return t.rml[i] }

// Pre returns the preorder number of node i.
func (t *Tree) Pre(i int) int { return t.pre[i] }

// ByPre returns the postorder id of the node with preorder number p.
func (t *Tree) ByPre(p int) int { return t.byPre[p] }

// MPost returns the mirror (right-to-left) postorder number of node i.
func (t *Tree) MPost(i int) int { return t.mpost[i] }

// ByMPost returns the postorder id of the node with mirror postorder
// number m.
func (t *Tree) ByMPost(m int) int { return t.byMPost[m] }

// HeavyChild returns the postorder id of i's heavy child (the child with
// the largest subtree, ties broken by the rightmost child), or -1 if i is
// a leaf.
func (t *Tree) HeavyChild(i int) int { return t.heavy[i] }

// LeftChild returns the leftmost child of i, or -1 if i is a leaf.
func (t *Tree) LeftChild(i int) int {
	if len(t.children[i]) == 0 {
		return -1
	}
	return t.children[i][0]
}

// RightChild returns the rightmost child of i, or -1 if i is a leaf.
func (t *Tree) RightChild(i int) int {
	if len(t.children[i]) == 0 {
		return -1
	}
	return t.children[i][len(t.children[i])-1]
}

// IsLeaf reports whether node i has no children.
func (t *Tree) IsLeaf(i int) bool { return len(t.children[i]) == 0 }

// SubtreeFirst returns the smallest postorder id inside the subtree of i.
// The subtree of i occupies the contiguous postorder range
// [SubtreeFirst(i), i].
func (t *Tree) SubtreeFirst(i int) int { return i - t.size[i] + 1 }

// PreInSubtree reports whether the node with postorder id x lies in the
// subtree rooted at v.
func (t *Tree) InSubtree(x, v int) bool {
	return x >= t.SubtreeFirst(v) && x <= v
}

// Leaves returns the number of leaves in the whole tree.
func (t *Tree) Leaves() int {
	c := 0
	for i := 0; i < t.Len(); i++ {
		if t.IsLeaf(i) {
			c++
		}
	}
	return c
}

// Builder returns a mutable deep copy of the subtree rooted at node i.
func (t *Tree) Builder(i int) *Node {
	nd := &Node{Label: t.labels[i]}
	for _, c := range t.children[i] {
		nd.Children = append(nd.Children, t.Builder(c))
	}
	return nd
}

// Mirror returns a new tree with every node's child order reversed.
func (t *Tree) Mirror() *Tree {
	var mirror func(i int) *Node
	mirror = func(i int) *Node {
		nd := &Node{Label: t.labels[i]}
		kids := t.children[i]
		for j := len(kids) - 1; j >= 0; j-- {
			nd.Children = append(nd.Children, mirror(kids[j]))
		}
		return nd
	}
	return Index(mirror(t.Root()))
}

// Equal reports whether two trees are identical (same shape and labels).
func Equal(a, b *Tree) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.labels[i] != b.labels[i] || a.parent[i] != b.parent[i] {
			return false
		}
		if len(a.children[i]) != len(b.children[i]) {
			return false
		}
	}
	return true
}

// String renders the tree in bracket notation.
func (t *Tree) String() string {
	return t.SubtreeString(t.Root())
}

// SubtreeString renders the subtree rooted at node i in bracket
// notation.
func (t *Tree) SubtreeString(i int) string {
	var sb strings.Builder
	t.writeBracket(&sb, i)
	return sb.String()
}

func (t *Tree) writeBracket(sb *strings.Builder, i int) {
	sb.WriteByte('{')
	sb.WriteString(EscapeLabel(t.labels[i]))
	for _, c := range t.children[i] {
		t.writeBracket(sb, c)
	}
	sb.WriteByte('}')
}

// Stats summarizes shape statistics of a tree; used by the dataset
// simulators and the experiment reports.
type Stats struct {
	Size      int
	Height    int
	Leaves    int
	MaxFanout int
	AvgDepth  float64
}

// Shape returns shape statistics for t.
func (t *Tree) Shape() Stats {
	s := Stats{Size: t.Len(), Height: t.height}
	var depthSum int64
	for i := 0; i < t.Len(); i++ {
		if t.IsLeaf(i) {
			s.Leaves++
		}
		if len(t.children[i]) > s.MaxFanout {
			s.MaxFanout = len(t.children[i])
		}
		depthSum += int64(t.depth[i])
	}
	s.AvgDepth = float64(depthSum) / float64(t.Len())
	return s
}

// Validate checks internal consistency of the indexed form. It is used by
// tests and by the parsers after construction; it returns an error rather
// than panicking so callers can surface corrupt inputs.
func (t *Tree) Validate() error {
	n := t.Len()
	if n == 0 {
		return fmt.Errorf("tree: empty tree")
	}
	if t.parent[n-1] != -1 {
		return fmt.Errorf("tree: root parent = %d, want -1", t.parent[n-1])
	}
	for i := 0; i < n; i++ {
		for _, c := range t.children[i] {
			if c < 0 || c >= n || t.parent[c] != i {
				return fmt.Errorf("tree: node %d has inconsistent child %d", i, c)
			}
			if c >= i {
				return fmt.Errorf("tree: child %d not before parent %d in postorder", c, i)
			}
		}
		sz := 1
		for _, c := range t.children[i] {
			sz += t.size[c]
		}
		if sz != t.size[i] {
			return fmt.Errorf("tree: node %d size %d, want %d", i, t.size[i], sz)
		}
		if t.SubtreeFirst(i) < 0 {
			return fmt.Errorf("tree: node %d subtree start negative", i)
		}
		if t.byPre[t.pre[i]] != i {
			return fmt.Errorf("tree: preorder map inconsistent at %d", i)
		}
		if t.byMPost[t.mpost[i]] != i {
			return fmt.Errorf("tree: mirror postorder map inconsistent at %d", i)
		}
	}
	return nil
}
