package tree

import (
	"math/rand"
	"testing"
)

// TestFromPostorderRoundTrip rebuilds trees from their postorder form and
// checks that every derived array matches the builder-constructed tree.
func TestFromPostorderRoundTrip(t *testing.T) {
	cases := []string{
		"{a}",
		"{a{b}}",
		"{a{b}{c}}",
		"{a{b{d}{e}}{c}}",
		"{f{d{a}{c{b}}}{e}}",
		"{r{a{b{c{d{e}}}}}}",
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		cases = append(cases, randomBracket(rng, 1+rng.Intn(40)))
	}
	for _, s := range cases {
		want := MustParseBracket(s)
		got, err := FromPostorder(want.Postorder())
		if err != nil {
			t.Fatalf("%s: FromPostorder: %v", s, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: rebuilt tree invalid: %v", s, err)
		}
		if !Equal(want, got) {
			t.Fatalf("%s: rebuilt tree differs", s)
		}
		for v := 0; v < want.Len(); v++ {
			if want.Pre(v) != got.Pre(v) || want.MPost(v) != got.MPost(v) ||
				want.Depth(v) != got.Depth(v) || want.HeavyChild(v) != got.HeavyChild(v) ||
				want.SumSizes(v) != got.SumSizes(v) ||
				want.LeftmostLeaf(v) != got.LeftmostLeaf(v) || want.RightmostLeaf(v) != got.RightmostLeaf(v) {
				t.Fatalf("%s: derived arrays differ at node %d", s, v)
			}
		}
		if want.Height() != got.Height() {
			t.Fatalf("%s: height %d != %d", s, got.Height(), want.Height())
		}
	}
}

func randomBracket(rng *rand.Rand, budget int) string {
	var build func(budget int) string
	labels := []string{"a", "b", "c", "d"}
	build = func(budget int) string {
		s := "{" + labels[rng.Intn(len(labels))]
		budget--
		for budget > 0 && rng.Intn(3) > 0 {
			k := 1 + rng.Intn(budget)
			s += build(k)
			budget -= k
		}
		return s + "}"
	}
	return build(budget)
}

// TestFromPostorderRejectsMalformed pins the error (not panic) contract
// for decoder-fed input.
func TestFromPostorderRejectsMalformed(t *testing.T) {
	cases := []PostorderForm{
		{}, // empty
		{Labels: []string{"a"}, ChildCounts: []int{}},          // length mismatch
		{Labels: []string{"a"}, ChildCounts: []int{1}},         // child from empty stack
		{Labels: []string{"a", "b"}, ChildCounts: []int{0, 0}}, // forest, not a tree
		{Labels: []string{"a", "b"}, ChildCounts: []int{0, 2}}, // too many children
		{Labels: []string{"a"}, ChildCounts: []int{-1}},        // negative count
	}
	for i, f := range cases {
		if _, err := FromPostorder(f); err == nil {
			t.Errorf("case %d: malformed form accepted", i)
		}
	}
}
