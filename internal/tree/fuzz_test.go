package tree

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseBracket checks the parser never panics, and that every
// accepted input round-trips (parse → serialize → parse yields an equal
// tree). Seeds run on every `go test`; `go test -fuzz=FuzzParseBracket`
// explores further.
func FuzzParseBracket(f *testing.F) {
	seeds := []string{
		"", "{", "}", "{}", "{a}", "{a{b}{c}}", "{{}}", "{a{b{c{d{e}}}}}",
		`{\{}`, `{\}}`, `{\\}`, `{a\}`, "{a} {b}", "  {a}  ", "{a{}{}{}}",
		"{a{b}", "{a}}", "{" + strings.Repeat("{x", 50) + strings.Repeat("}", 51),
		"{\x00}", "{日本語{ツリー}}", "{a b c}", `{\x}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ParseBracket(s)
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted tree fails validation: %v (input %q)", verr, s)
		}
		out := tr.String()
		again, err := ParseBracket(out)
		if err != nil {
			t.Fatalf("serialization not reparseable: %q -> %q: %v", s, out, err)
		}
		if !Equal(tr, again) {
			t.Fatalf("round trip changed tree for %q", s)
		}
	})
}

// FuzzParseNewick mirrors FuzzParseBracket for the Newick parser.
func FuzzParseNewick(f *testing.F) {
	seeds := []string{
		"", ";", "A;", "(A,B);", "(A,B)r", "((A,B),(C,D))root;",
		"(A:0.1,B:0.2):0.3;", "('quo''ted',B);", "(,);", "((((A))));",
		"(A", "A)", "(A,,B);", "(A,B):bad;", "日本;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ParseNewick(s)
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted newick fails validation: %v (input %q)", verr, s)
		}
		if !utf8.ValidString(s) {
			return // labels may contain arbitrary bytes; nothing more to check
		}
	})
}
