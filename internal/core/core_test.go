package core

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/naive"
	"repro/internal/tree"
	"repro/internal/treegen"
)

func TestRTEDResult(t *testing.T) {
	f := treegen.ZigZag(81)
	g := treegen.Mixed(77)
	r := RTED(f, g, cost.Unit{})
	if want := naive.Dist(f, g, cost.Unit{}); math.Abs(r.Distance-want) > 1e-9 {
		t.Fatalf("distance %v want %v", r.Distance, want)
	}
	if r.StrategyCost != r.Stats.Subproblems {
		t.Fatalf("predicted cost %d != executed subproblems %d", r.StrategyCost, r.Stats.Subproblems)
	}
	if r.StrategyTime <= 0 || r.TotalTime < r.StrategyTime {
		t.Fatalf("timing inconsistent: strategy %v total %v", r.StrategyTime, r.TotalTime)
	}
	if r.Strategy == nil || len(r.Strategy.Choices) != f.Len()*g.Len() {
		t.Fatal("strategy array missing")
	}
	// Subtree distances are queryable: leaves at unit cost differ by 0/1.
	for v := 0; v < f.Len(); v++ {
		if !f.IsLeaf(v) {
			continue
		}
		for w := 0; w < g.Len(); w++ {
			if !g.IsLeaf(w) {
				continue
			}
			want := 1.0
			if f.Label(v) == g.Label(w) {
				want = 0
			}
			if d := r.SubtreeDist(v, w); d != want {
				t.Fatalf("leaf pair distance %v want %v", d, want)
			}
		}
	}
}

func TestDistanceWrapper(t *testing.T) {
	f := tree.MustParseBracket("{a{b}{c}}")
	g := tree.MustParseBracket("{a{b}}")
	if d := Distance(f, g, cost.Unit{}); d != 1 {
		t.Fatalf("distance %v want 1", d)
	}
}
