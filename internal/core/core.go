// Package core assembles the paper's primary contribution: RTED, the
// robust tree edit distance algorithm (Section 6). RTED first computes
// the optimal LRH strategy with OptStrategy (O(n²) time and space) and
// then runs GTED with that strategy; its subproblem count is therefore no
// larger than that of any LRH competitor, its worst-case runtime O(n³)
// is optimal, and its space is O(n²).
package core

import (
	"time"

	"repro/internal/cost"
	"repro/internal/gted"
	"repro/internal/strategy"
	"repro/internal/tree"
)

// Result carries the distance and the instrumentation of one RTED run.
type Result struct {
	Distance float64
	// StrategyCost is the number of relevant subproblems predicted by
	// the cost formula for the optimal strategy (equals Stats.Subproblems).
	StrategyCost int64
	// StrategyTime is the time OptStrategy took; TotalTime includes the
	// GTED phase. Their ratio is the strategy overhead of Figure 10.
	StrategyTime time.Duration
	TotalTime    time.Duration
	Stats        gted.Stats
	// Strategy is the optimal strategy array (one choice per subtree pair).
	Strategy *strategy.Array
	runner   *gted.Runner
}

// SubtreeDist returns δ(F_v, G_w) for postorder ids v, w after the run.
func (r *Result) SubtreeDist(v, w int) float64 { return r.runner.Dist(v, w) }

// RTED computes the tree edit distance between f and g under model m
// with the optimal LRH strategy.
func RTED(f, g *tree.Tree, m cost.Model) *Result {
	start := time.Now()
	str, costPred := strategy.Opt(f, g)
	stratDone := time.Now()
	r := gted.New(f, g, m, str)
	dist := r.Run()
	end := time.Now()
	return &Result{
		Distance:     dist,
		StrategyCost: costPred,
		StrategyTime: stratDone.Sub(start),
		TotalTime:    end.Sub(start),
		Stats:        r.Stats(),
		Strategy:     str,
		runner:       r,
	}
}

// Distance is the plain-distance convenience wrapper around RTED.
func Distance(f, g *tree.Tree, m cost.Model) float64 {
	return RTED(f, g, m).Distance
}
