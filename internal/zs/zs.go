// Package zs implements the classical Zhang–Shasha tree edit distance
// algorithm (SIAM J. Comput. 18(6), 1989) as a standalone, hard-coded
// left-path algorithm.
//
// In the paper's taxonomy this is the algorithm "Zhang-L": the LRH
// strategy that maps every subtree pair to the left path of the left-hand
// tree. The experiments of Section 8 run an implementation "optimized for
// the hard-coded strategy", which is exactly this package; the
// strategy-generic equivalent lives in internal/gted and the two are
// differentially tested against each other. Runtime is
// O(|F||G| min(lF,dF) min(lG,dG)) with O(|F||G|) space.
package zs

import (
	"repro/internal/cost"
	"repro/internal/tree"
)

// Result carries the distance and instrumentation counters of one run.
type Result struct {
	Distance float64
	// Subproblems is the number of forest-pair distances evaluated: the
	// count of inner DP cells over all keyroot pairs. This matches the
	// paper's notion of relevant subproblems for the Zhang-L strategy,
	// |F(F,ΓL(F))| × |F(G,ΓL(G))|.
	Subproblems int64
}

// Dist computes the tree edit distance between f and g under model m.
func Dist(f, g *tree.Tree, m cost.Model) float64 {
	return Run(f, g, m).Distance
}

// Run computes the distance and returns instrumentation counters.
func Run(f, g *tree.Tree, m cost.Model) Result {
	c := cost.Compile(m, f, g)
	e := &engine{f: f, g: g, c: c}
	e.run()
	return Result{
		Distance:    e.td[(f.Len()-1)*g.Len()+(g.Len()-1)],
		Subproblems: e.count,
	}
}

// TreeDists computes the full matrix of subtree-pair distances
// δ(F_v, G_w) (row-major, |F|×|G|). The mapping and join code reuse it.
func TreeDists(f, g *tree.Tree, m cost.Model) []float64 {
	c := cost.Compile(m, f, g)
	e := &engine{f: f, g: g, c: c}
	e.run()
	return e.td
}

type engine struct {
	f, g  *tree.Tree
	c     *cost.Compiled
	td    []float64 // treedist, |F|×|G| row-major
	fd    []float64 // forestdist scratch, (|F|+1)×(|G|+1)
	count int64
}

// Keyroots returns the keyroots of t in increasing postorder: the root
// and every node that has a left sibling. Equivalently, the highest node
// of each distinct leftmost-leaf class.
func Keyroots(t *tree.Tree) []int {
	var ks []int
	for i := 0; i < t.Len(); i++ {
		p := t.Parent(i)
		if p == -1 || t.LeftmostLeaf(p) != t.LeftmostLeaf(i) {
			ks = append(ks, i)
		}
	}
	return ks
}

func (e *engine) run() {
	nf, ng := e.f.Len(), e.g.Len()
	e.td = make([]float64, nf*ng)
	e.fd = make([]float64, (nf+1)*(ng+1))
	kf := Keyroots(e.f)
	kg := Keyroots(e.g)
	for _, k1 := range kf {
		for _, k2 := range kg {
			e.treedist(k1, k2)
		}
	}
}

// treedist fills td[i][j] for all i with lml(i)==lml(k1) and j with
// lml(j)==lml(k2) using the classical forest DP.
func (e *engine) treedist(k1, k2 int) {
	f, g, c := e.f, e.g, e.c
	lf, lg := f.LeftmostLeaf(k1), g.LeftmostLeaf(k2)
	s1, s2 := k1-lf+1, k2-lg+1
	e.count += int64(s1) * int64(s2)
	ng := g.Len()
	w := s2 + 1 // forest-dist row width
	fd := e.fd
	fd[0] = 0
	for dj := 1; dj <= s2; dj++ {
		fd[dj] = fd[dj-1] + c.Ins[lg+dj-1]
	}
	for di := 1; di <= s1; di++ {
		i := lf + di - 1
		fd[di*w] = fd[(di-1)*w] + c.Del[i]
		fli := f.LeftmostLeaf(i)
		for dj := 1; dj <= s2; dj++ {
			j := lg + dj - 1
			del := fd[(di-1)*w+dj] + c.Del[i]
			ins := fd[di*w+dj-1] + c.Ins[j]
			var match float64
			if fli == lf && g.LeftmostLeaf(j) == lg {
				// Both prefixes are whole trees rooted at i and j.
				match = fd[(di-1)*w+dj-1] + c.Ren(i, j)
			} else {
				match = fd[(fli-lf)*w+(g.LeftmostLeaf(j)-lg)] + e.td[i*ng+j]
			}
			m := del
			if ins < m {
				m = ins
			}
			if match < m {
				m = match
			}
			fd[di*w+dj] = m
			if fli == lf && g.LeftmostLeaf(j) == lg {
				e.td[i*ng+j] = m
			}
		}
	}
}
