package zs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/naive"
	"repro/internal/strategy"
	"repro/internal/tree"
	"repro/internal/treegen"
)

func TestKeyroots(t *testing.T) {
	// {a{b{d}{e}}{c}}: postorder d(0) e(1) b(2) c(3) a(4).
	tr := tree.MustParseBracket("{a{b{d}{e}}{c}}")
	ks := Keyroots(tr)
	// Keyroots: nodes with a left sibling or the root: e(1), c(3), a(4).
	want := []int{1, 3, 4}
	if len(ks) != len(want) {
		t.Fatalf("keyroots %v want %v", ks, want)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("keyroots %v want %v", ks, want)
		}
	}
	// Property: keyroots are exactly the maximal nodes of each distinct
	// leftmost-leaf class; their subtree sizes sum to F(F,ΓL).
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		tr := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(50), MaxDepth: 9, MaxFanout: 4})
		seen := map[int]bool{}
		var sum int64
		for _, k := range Keyroots(tr) {
			l := tr.LeftmostLeaf(k)
			if seen[l] {
				t.Fatalf("two keyroots share leftmost leaf %d", l)
			}
			seen[l] = true
			sum += int64(tr.Size(k))
		}
		if len(seen) != tr.Leaves() {
			t.Fatalf("keyroot count %d != leaves %d", len(seen), tr.Leaves())
		}
		d := strategy.NewDecomp(tr)
		if sum != d.FL[tr.Root()] {
			t.Fatalf("keyroot subtree size sum %d != FL %d", sum, d.FL[tr.Root()])
		}
	}
}

func TestDistAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 80; i++ {
		f := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(25), MaxDepth: 7, MaxFanout: 4, Labels: 3})
		g := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(25), MaxDepth: 7, MaxFanout: 4, Labels: 3})
		for _, m := range []cost.Model{cost.Unit{}, cost.Weighted{DeleteW: 2, InsertW: 0.5, RenameW: 1.5}} {
			want := naive.Dist(f, g, m)
			if got := Dist(f, g, m); math.Abs(got-want) > 1e-9 {
				t.Fatalf("zs=%v naive=%v\nF=%s\nG=%s", got, want, f, g)
			}
		}
	}
}

// TestSubproblemFormula: the instrumented count equals the closed form
// |F(F,ΓL)| × |F(G,ΓL)| of the Zhang-L strategy.
func TestSubproblemFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		f := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(40), MaxDepth: 8, MaxFanout: 5})
		g := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(40), MaxDepth: 8, MaxFanout: 5})
		df, dg := strategy.NewDecomp(f), strategy.NewDecomp(g)
		want := df.FL[f.Root()] * dg.FL[g.Root()]
		if got := Run(f, g, cost.Unit{}).Subproblems; got != want {
			t.Fatalf("subproblems %d, want FL(F)*FL(G) = %d", got, want)
		}
		// And it matches the strategy-based analytic count for Zhang-L.
		if c := strategy.Count(f, g, strategy.ZhangL()); c.Total != want {
			t.Fatalf("strategy count %d != formula %d", c.Total, want)
		}
	}
}

func TestTreeDistsMatrix(t *testing.T) {
	f := tree.MustParseBracket("{a{b}{c}}")
	g := tree.MustParseBracket("{a{b}}")
	d := TreeDists(f, g, cost.Unit{})
	ng := g.Len()
	// δ(leaf b, leaf b) = 0, δ(leaf c, leaf b) = 1.
	if d[0*ng+0] != 0 || d[1*ng+0] != 1 {
		t.Fatalf("leaf distances wrong: %v", d)
	}
	// δ(F, G) = 1 (delete c).
	if d[2*ng+1] != 1 {
		t.Fatalf("root distance %v want 1", d[2*ng+1])
	}
}

func TestSingleNodes(t *testing.T) {
	f := tree.MustParseBracket("{a}")
	g := tree.MustParseBracket("{a}")
	if Dist(f, g, cost.Unit{}) != 0 {
		t.Fatal("identical single nodes")
	}
	r := Run(f, g, cost.Unit{})
	if r.Subproblems != 1 {
		t.Fatalf("single-node pair subproblems = %d want 1", r.Subproblems)
	}
}
