package treegen

import (
	"fmt"
	"math/rand"

	"repro/internal/tree"
)

// This file simulates the three real-world datasets of the paper's
// evaluation. The originals (SwissProt XML, Penn TreeBank XML, TreeFam
// phylogenies) are not redistributable, so seeded generators reproduce
// their published shape statistics instead — see DESIGN.md §5. The
// statistics the paper reports and the generators target:
//
//	SwissProt: flat and wide — max depth 4, max fanout 346, avg size 187
//	TreeBank:  small and deep — avg depth 10.4, max depth 35, avg size 68
//	TreeFam:   binary and deep — avg depth 14, avg fanout 2, avg size 95,
//	           with trees up to and beyond 1000 nodes

// SwissProtLike generates a protein-entry-shaped XML tree: a root with
// many mid-level record elements, each carrying a handful of shallow
// fields. Depth never exceeds 4.
func SwissProtLike(rng *rand.Rand, size int) *tree.Tree {
	if size < 1 {
		panic("treegen: tree size must be positive")
	}
	sections := []string{"Ref", "Feature", "Comment", "DbRef", "Keyword"}
	fields := []string{"Name", "Type", "Value", "Pos", "Note", "ID"}
	root := tree.NewNode("Entry")
	budget := size - 1
	// Fixed header fields, depth 1.
	for _, h := range []string{"Accession", "Name", "Sequence"} {
		if budget == 0 {
			break
		}
		root.Add(tree.NewNode(h))
		budget--
	}
	// Record sections: depth-2 elements with depth-3 fields, some of
	// which carry a depth-4 text node.
	for budget > 0 {
		sec := tree.NewNode(sections[rng.Intn(len(sections))])
		root.Add(sec)
		budget--
		nf := 1 + rng.Intn(5)
		for i := 0; i < nf && budget > 0; i++ {
			f := tree.NewNode(fields[rng.Intn(len(fields))])
			sec.Add(f)
			budget--
			if budget > 0 && rng.Intn(2) == 0 {
				f.Add(tree.NewNode(fmt.Sprintf("t%d", rng.Intn(50))))
				budget--
			}
		}
	}
	return tree.Index(root)
}

// TreeBankLike generates a parse-tree-shaped tree: narrow fanout (1–3),
// deep recursive phrase structure, words at the leaves.
func TreeBankLike(rng *rand.Rand, size int) *tree.Tree {
	if size < 1 {
		panic("treegen: tree size must be positive")
	}
	phrases := []string{"S", "NP", "VP", "PP", "SBAR", "ADJP", "ADVP"}
	tags := []string{"NN", "VB", "DT", "IN", "JJ", "RB", "PRP", "CC"}
	var build func(budget, depth int) *tree.Node
	build = func(budget, depth int) *tree.Node {
		if budget <= 2 || depth >= 34 {
			nd := tree.NewNode(tags[rng.Intn(len(tags))])
			if budget >= 2 {
				nd.Add(tree.NewNode(fmt.Sprintf("w%d", rng.Intn(200))))
			}
			return nd
		}
		nd := tree.NewNode(phrases[rng.Intn(len(phrases))])
		budget--
		k := 1 + rng.Intn(3)
		for i := 0; i < k && budget > 0; i++ {
			// Skew the budget split so that one child tends to carry
			// most of the remaining material, which yields the deep
			// narrow shape of natural-language parses.
			var part int
			if i == k-1 {
				part = budget
			} else {
				part = 1 + rng.Intn(max(budget/3, 1))
				if part > budget {
					part = budget
				}
			}
			nd.Add(build(part, depth+1))
			budget -= part
		}
		return nd
	}
	return tree.Index(build(size, 0))
}

// TreeFamLike generates a phylogeny-shaped tree: strictly binary internal
// nodes produced by recursive random bipartition (a Yule-like topology,
// average depth logarithmic in the leaf count), gene names at the leaves.
func TreeFamLike(rng *rand.Rand, size int) *tree.Tree {
	if size < 1 {
		panic("treegen: tree size must be positive")
	}
	if size%2 == 0 {
		size++ // strictly binary trees have an odd node count
	}
	leaves := (size + 1) / 2
	var build func(nl int) *tree.Node
	build = func(nl int) *tree.Node {
		if nl == 1 {
			return tree.NewNode(fmt.Sprintf("GENE%d", rng.Intn(10000)))
		}
		l := 1 + rng.Intn(nl-1)
		kind := "spec"
		if rng.Intn(5) == 0 {
			kind = "dup"
		}
		return tree.NewNode(kind, build(l), build(nl-l))
	}
	return tree.Index(build(leaves))
}
