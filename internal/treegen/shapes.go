// Package treegen generates the synthetic tree shapes of the paper's
// evaluation (Figure 7), bounded random trees, and simulators for the
// three real-world datasets (SwissProt, TreeBank, TreeFam) whose shape
// statistics the paper reports. See DESIGN.md §5 for the substitution
// argument: the experiments depend on tree shapes, not on the proprietary
// content, so seeded generators with matching shape statistics preserve
// the measured behaviour.
package treegen

import "repro/internal/tree"

// shapeLabel is the label of every node in the synthetic shape trees.
// The shape experiments (Figure 8, 9, Table 1) measure decomposition
// behaviour, which is label independent.
const shapeLabel = "x"

// LeftBranch builds the left branch tree LB of Figure 7(a): a spine
// descending through leftmost children where every spine node has one
// extra leaf as its right child. The Zhang-L strategy is optimal for it;
// for any subtree rooted at a non-leaf v, |F_v − γL| = (|F_v|−1)/2 and
// |F_v − γR| = 1 (used in the Theorem 2 tightness proof).
func LeftBranch(n int) *tree.Tree {
	return tree.Index(branch(n, false))
}

// RightBranch builds the mirror image RB of Figure 7(b), for which
// Zhang-R is optimal.
func RightBranch(n int) *tree.Tree {
	return tree.Index(branch(n, true))
}

func branch(n int, right bool) *tree.Node {
	if n < 1 {
		panic("treegen: tree size must be positive")
	}
	cur := leaf()
	n--
	for n >= 2 {
		if right {
			cur = tree.NewNode(shapeLabel, leaf(), cur)
		} else {
			cur = tree.NewNode(shapeLabel, cur, leaf())
		}
		n -= 2
	}
	if n == 1 {
		cur = tree.NewNode(shapeLabel, cur)
	}
	return cur
}

// FullBinary builds a balanced binary tree FB with n nodes (Figure 7(c)).
// For n = 2^k − 1 it is the complete binary tree; other sizes balance the
// remainder across the two subtrees.
func FullBinary(n int) *tree.Tree {
	return tree.Index(fullBinary(n))
}

func fullBinary(n int) *tree.Node {
	if n < 1 {
		panic("treegen: tree size must be positive")
	}
	if n == 1 {
		return leaf()
	}
	if n == 2 {
		return tree.NewNode(shapeLabel, leaf())
	}
	left := (n - 1) / 2
	return tree.NewNode(shapeLabel, fullBinary(left), fullBinary(n-1-left))
}

// ZigZag builds the zig-zag tree ZZ of Figure 7(d): a spine that
// alternates between continuing in the left and the right child, with a
// leaf on the other side. Heavy-path strategies (Demaine-H) are optimal
// for it while both Zhang variants degenerate.
func ZigZag(n int) *tree.Tree {
	if n < 1 {
		panic("treegen: tree size must be positive")
	}
	cur := leaf()
	n--
	zig := true
	for n >= 2 {
		if zig {
			cur = tree.NewNode(shapeLabel, cur, leaf())
		} else {
			cur = tree.NewNode(shapeLabel, leaf(), cur)
		}
		zig = !zig
		n -= 2
	}
	if n == 1 {
		cur = tree.NewNode(shapeLabel, cur)
	}
	return tree.Index(cur)
}

// Mixed builds the mixed tree MX of Figure 7(e): a deterministic
// composition of differently shaped regions, so that no single fixed
// strategy is good everywhere in the tree. The paper does not give a
// construction for MX; this one nests left-branch, right-branch, full
// binary and zig-zag blocks and empirically reproduces the paper's
// qualitative Figure 8(f)/9(c) behaviour (RTED is the sole winner).
func Mixed(n int) *tree.Tree {
	return tree.Index(mixed(n))
}

func mixed(n int) *tree.Node {
	if n < 1 {
		panic("treegen: tree size must be positive")
	}
	if n < 12 {
		return fullBinary(n)
	}
	// One root, four shaped blocks, and a recursive mixed block that
	// keeps the composition heterogeneous at every scale.
	b := (n - 1) / 5
	rest := n - 1 - 4*b
	return tree.NewNode(shapeLabel,
		branch(b, false),
		zigzag(b),
		mixed(rest),
		fullBinary(b),
		branch(b, true),
	)
}

func zigzag(n int) *tree.Node {
	t := ZigZag(n)
	return t.Builder(t.Root())
}

func leaf() *tree.Node { return tree.NewNode(shapeLabel) }

// Shape identifies one of the synthetic shapes; the experiment harness
// and the join workload iterate over it.
type Shape int

const (
	ShapeLB Shape = iota
	ShapeRB
	ShapeFB
	ShapeZZ
	ShapeMX
)

func (s Shape) String() string {
	switch s {
	case ShapeLB:
		return "LB"
	case ShapeRB:
		return "RB"
	case ShapeFB:
		return "FB"
	case ShapeZZ:
		return "ZZ"
	case ShapeMX:
		return "MX"
	}
	return "?"
}

// Build constructs the shape with n nodes.
func (s Shape) Build(n int) *tree.Tree {
	switch s {
	case ShapeLB:
		return LeftBranch(n)
	case ShapeRB:
		return RightBranch(n)
	case ShapeFB:
		return FullBinary(n)
	case ShapeZZ:
		return ZigZag(n)
	case ShapeMX:
		return Mixed(n)
	}
	panic("treegen: unknown shape")
}

// Shapes lists the five fixed synthetic shapes of Figure 7.
var Shapes = []Shape{ShapeLB, ShapeRB, ShapeFB, ShapeZZ, ShapeMX}
