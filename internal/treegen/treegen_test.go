package treegen

import (
	"math/rand"
	"testing"

	"repro/internal/strategy"
	"repro/internal/tree"
)

func TestShapeSizes(t *testing.T) {
	for _, s := range Shapes {
		for _, n := range []int{1, 2, 3, 4, 10, 101, 256, 1000} {
			tr := s.Build(n)
			if tr.Len() != n {
				t.Fatalf("%s(%d) has %d nodes", s, n, tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s(%d): %v", s, n, err)
			}
		}
	}
}

func TestBranchShapes(t *testing.T) {
	lb := LeftBranch(101)
	// Theorem 2's structural property: for every non-leaf subtree,
	// |F_v − γL| = (|F_v|−1)/2 and |F_v − γR| = 1.
	for v := 0; v < lb.Len(); v++ {
		if lb.IsLeaf(v) || lb.Size(v)%2 == 0 {
			continue
		}
		if h := len(strategy.HangingSubtrees(lb, v, strategy.Left)); h != (lb.Size(v)-1)/2 {
			t.Fatalf("LB node %d: %d hanging off left path, want %d", v, h, (lb.Size(v)-1)/2)
		}
		if h := len(strategy.HangingSubtrees(lb, v, strategy.Right)); h != 1 {
			t.Fatalf("LB node %d: %d hanging off right path, want 1", v, h)
		}
	}
	rb := RightBranch(101)
	root := rb.Root()
	if len(strategy.HangingSubtrees(rb, root, strategy.Right)) != (rb.Size(root)-1)/2 {
		t.Fatal("RB right-path hanging count wrong")
	}
	// Mirror relationship: RB is LB mirrored.
	if !tree.Equal(rb, LeftBranch(101).Mirror()) {
		t.Fatal("RB != mirror(LB)")
	}
}

func TestFullBinaryBalanced(t *testing.T) {
	fb := FullBinary(1023)
	if fb.Height() != 9 {
		t.Fatalf("FB(1023) height %d want 9", fb.Height())
	}
	for v := 0; v < fb.Len(); v++ {
		if k := fb.NumChildren(v); k != 0 && k != 2 {
			t.Fatalf("FB node %d has %d children", v, k)
		}
	}
}

func TestZigZagAlternates(t *testing.T) {
	zz := ZigZag(99)
	// Every internal node has exactly two children (one leaf, one spine)
	// except possibly near the top; the spine side alternates.
	if zz.Height() < 40 {
		t.Fatalf("ZZ(99) too shallow: height %d", zz.Height())
	}
	binaryNodes := 0
	for v := 0; v < zz.Len(); v++ {
		if zz.NumChildren(v) == 2 {
			binaryNodes++
		}
	}
	if binaryNodes < 40 {
		t.Fatalf("ZZ lacks spine: %d binary nodes", binaryNodes)
	}
	// Structural signature: for ZZ neither pure-left nor pure-right
	// decomposition is cheap, but the heavy path follows the spine.
	d := strategy.NewDecomp(zz)
	root := zz.Root()
	if d.FL[root] < int64(zz.Len())*10 && d.FR[root] < int64(zz.Len())*10 {
		t.Fatalf("ZZ: both FL (%d) and FR (%d) small; not a zigzag", d.FL[root], d.FR[root])
	}
}

func TestMixedHeterogeneous(t *testing.T) {
	mx := Mixed(1000)
	if err := mx.Validate(); err != nil {
		t.Fatal(err)
	}
	// The optimal strategy on MX must mix path types (that is its
	// purpose: no single fixed strategy fits the whole tree).
	arr, _ := strategy.Opt(mx, mx)
	kinds := map[strategy.PathType]bool{}
	for _, c := range arr.Choices {
		kinds[c.Type()] = true
	}
	if len(kinds) < 2 {
		t.Fatalf("optimal strategy on MX uses only %v", kinds)
	}
}

func TestRandomSpecRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		spec := RandomSpec{Size: 1 + rng.Intn(300), MaxDepth: 2 + rng.Intn(10), MaxFanout: 1 + rng.Intn(6), Labels: 4}
		if int64(spec.Size) > maxCapacity(spec) {
			continue
		}
		tr := Random(rng, spec)
		if tr.Len() != spec.Size {
			t.Fatalf("size %d want %d", tr.Len(), spec.Size)
		}
		if tr.Height() > spec.MaxDepth {
			t.Fatalf("height %d exceeds max depth %d", tr.Height(), spec.MaxDepth)
		}
		for v := 0; v < tr.Len(); v++ {
			if tr.NumChildren(v) > spec.MaxFanout {
				t.Fatalf("fanout %d exceeds %d", tr.NumChildren(v), spec.MaxFanout)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func maxCapacity(s RandomSpec) int64 {
	var total, width int64 = 0, 1
	for d := 0; d <= s.MaxDepth; d++ {
		total += width
		width *= int64(s.MaxFanout)
		if total > 1<<31 || width > 1<<31 {
			return 1 << 31
		}
	}
	return total
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(9)), PaperRandom(200))
	b := Random(rand.New(rand.NewSource(9)), PaperRandom(200))
	if !tree.Equal(a, b) {
		t.Fatal("same seed, different trees")
	}
}

func TestSwissProtShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 10, 187, 1000} {
		tr := SwissProtLike(rng, n)
		if tr.Len() != n {
			t.Fatalf("size %d want %d", tr.Len(), n)
		}
		if tr.Height() > 4 {
			t.Fatalf("SwissProt-like height %d exceeds 4 (paper: max depth 4)", tr.Height())
		}
	}
	// Big entries are wide: fanout far above depth.
	tr := SwissProtLike(rng, 2000)
	if tr.Shape().MaxFanout < 50 {
		t.Fatalf("SwissProt-like max fanout %d; expected a wide flat tree", tr.Shape().MaxFanout)
	}
}

func TestTreeBankShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	deepEnough := 0
	for i := 0; i < 20; i++ {
		tr := TreeBankLike(rng, 68)
		if tr.Height() > 35 {
			t.Fatalf("TreeBank-like height %d exceeds the paper's max 35", tr.Height())
		}
		if tr.Height() >= 8 {
			deepEnough++
		}
		if tr.Shape().MaxFanout > 4 {
			t.Fatalf("TreeBank-like fanout %d; parse trees are narrow", tr.Shape().MaxFanout)
		}
	}
	if deepEnough < 10 {
		t.Fatalf("TreeBank-like trees too shallow (%d/20 with height>=8; paper avg depth 10.4)", deepEnough)
	}
}

func TestTreeFamShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{95, 500, 1001} {
		tr := TreeFamLike(rng, n)
		if tr.Len() < n || tr.Len() > n+1 {
			t.Fatalf("size %d want ~%d", tr.Len(), n)
		}
		for v := 0; v < tr.Len(); v++ {
			if k := tr.NumChildren(v); k != 0 && k != 2 {
				t.Fatalf("TreeFam-like node with fanout %d; phylogenies are binary", k)
			}
		}
	}
}
