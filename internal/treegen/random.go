package treegen

import (
	"fmt"
	"math/rand"

	"repro/internal/tree"
)

// RandomSpec parameterizes the bounded random tree generator. The
// paper's random trees use MaxDepth 15 and MaxFanout 6.
type RandomSpec struct {
	Size      int
	MaxDepth  int // maximum node depth (root depth 0); 0 means unbounded
	MaxFanout int // maximum children per node; 0 means unbounded
	Labels    int // size of the label pool; 0 means a single label
}

// PaperRandom is the random-tree configuration of the paper's Figure 8(e)
// experiments: maximum depth 15 and maximum fanout 6.
func PaperRandom(size int) RandomSpec {
	return RandomSpec{Size: size, MaxDepth: 15, MaxFanout: 6, Labels: 8}
}

// Random draws a random ordered labeled tree from spec using rng.
func Random(rng *rand.Rand, spec RandomSpec) *tree.Tree {
	if spec.Size < 1 {
		panic("treegen: tree size must be positive")
	}
	maxDepth := spec.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 1 << 30
	}
	maxFanout := spec.MaxFanout
	if maxFanout <= 0 {
		maxFanout = 1 << 30
	}
	g := &randGen{rng: rng, maxDepth: maxDepth, maxFanout: maxFanout, labels: spec.Labels}
	if g.capacity(0) < int64(spec.Size) {
		panic(fmt.Sprintf("treegen: size %d exceeds capacity of depth %d / fanout %d trees",
			spec.Size, spec.MaxDepth, spec.MaxFanout))
	}
	return tree.Index(g.build(spec.Size, 0))
}

type randGen struct {
	rng       *rand.Rand
	maxDepth  int
	maxFanout int
	labels    int
}

func (g *randGen) label() string {
	if g.labels <= 1 {
		return "x"
	}
	return fmt.Sprintf("l%d", g.rng.Intn(g.labels))
}

// capacity returns the maximum subtree size rooted at the given depth
// (saturating to avoid overflow).
func (g *randGen) capacity(depth int) int64 {
	levels := g.maxDepth - depth + 1
	if levels <= 0 {
		return 0
	}
	var total, width int64 = 0, 1
	for i := 0; i < levels; i++ {
		total += width
		if total > 1<<40 {
			return 1 << 40
		}
		if width > 1<<40/int64(g.maxFanout) {
			width = 1 << 40
		} else {
			width *= int64(g.maxFanout)
		}
	}
	return total
}

func (g *randGen) build(n, depth int) *tree.Node {
	nd := tree.NewNode(g.label())
	n--
	if n == 0 {
		return nd
	}
	// Choose a fanout large enough that the remaining budget fits under
	// the children's depth capacity, then split the budget randomly
	// among the children while respecting that capacity.
	childCapHere := g.capacity(depth + 1)
	kmin := int((int64(n) + childCapHere - 1) / childCapHere)
	k := kmin + g.rng.Intn(min(g.maxFanout, n)-kmin+1)
	budgets := make([]int, k)
	for i := range budgets {
		budgets[i] = 1
	}
	n -= k
	childCap := g.capacity(depth + 1)
	for n > 0 {
		i := g.rng.Intn(k)
		if int64(budgets[i]) >= childCap {
			// This child is full; find another (one must have room
			// because the total size was checked against capacity).
			full := 0
			for int64(budgets[i]) >= childCap {
				i = (i + 1) % k
				full++
				if full > k {
					panic("treegen: no capacity left for child budgets")
				}
			}
		}
		budgets[i]++
		n--
	}
	for _, b := range budgets {
		nd.Children = append(nd.Children, g.build(b, depth+1))
	}
	return nd
}
