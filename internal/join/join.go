// Package join implements the tree similarity self-join of the paper's
// Table 1 experiment: given a collection of trees and a distance
// threshold τ, report all pairs with TED < τ, together with the total
// runtime and the total number of relevant subproblems the chosen
// algorithm computes across all pairs.
//
// The join is the workload where robustness matters most: it computes
// distances between all pairs regardless of shape, so a fixed-strategy
// algorithm degenerates as soon as one unfavourable shape combination
// appears in the collection.
package join

import (
	"time"

	"repro/internal/cost"
	"repro/internal/gted"
	"repro/internal/strategy"
	"repro/internal/tree"
)

// Pair is one join result: trees I and J (indices into the input slice,
// I < J) with their distance.
type Pair struct {
	I, J int
	Dist float64
}

// Result reports the join output and its cost.
type Result struct {
	Pairs       []Pair // pairs with Dist < Tau, ordered by (I, J)
	Tau         float64
	Comparisons int   // number of distance computations (all unordered pairs)
	Subproblems int64 // total relevant subproblems over all comparisons
	Elapsed     time.Duration
}

// StrategyFactory builds the strategy for one tree pair. The five paper
// algorithms are expressed as factories over internal/strategy.
type StrategyFactory func(f, g *tree.Tree) strategy.Strategy

// RTEDFactory returns the optimal-strategy factory (the RTED join).
func RTEDFactory() StrategyFactory {
	return func(f, g *tree.Tree) strategy.Strategy {
		s, _ := strategy.Opt(f, g)
		return s
	}
}

// FixedFactory adapts a fixed strategy constructor.
func FixedFactory(mk func(f, g *tree.Tree) strategy.Named) StrategyFactory {
	return func(f, g *tree.Tree) strategy.Strategy { return mk(f, g) }
}

func newRunner(f, g *tree.Tree, m cost.Model, factory StrategyFactory) *gted.Runner {
	return gted.NewCompiled(f, g, cost.Compile(m, f, g), factory(f, g))
}

// SelfJoin computes the similarity self-join over trees with threshold
// tau under cost model m, using the strategy produced by factory for
// every pair. All |T|·(|T|−1)/2 unordered pairs are compared (the join
// is exact; the paper computes it without filters).
func SelfJoin(trees []*tree.Tree, tau float64, m cost.Model, factory StrategyFactory) Result {
	res := Result{Tau: tau}
	start := time.Now()
	for i := 0; i < len(trees); i++ {
		for j := i + 1; j < len(trees); j++ {
			r := newRunner(trees[i], trees[j], m, factory)
			d := r.Run()
			res.Comparisons++
			res.Subproblems += r.Stats().Subproblems
			if d < tau {
				res.Pairs = append(res.Pairs, Pair{I: i, J: j, Dist: d})
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// ParallelSelfJoin is SelfJoin fanned out over workers goroutines (≤ 1
// runs sequentially). Distance computations are independent, so the
// speedup is near-linear until memory bandwidth saturates; results are
// deterministic and identical to SelfJoin's.
func ParallelSelfJoin(trees []*tree.Tree, tau float64, m cost.Model, factory StrategyFactory, workers int) Result {
	if workers <= 1 {
		return SelfJoin(trees, tau, m, factory)
	}
	type task struct{ i, j int }
	type outcome struct {
		task
		dist float64
		subs int64
	}
	tasks := make(chan task)
	outcomes := make(chan outcome)
	for k := 0; k < workers; k++ {
		go func() {
			for t := range tasks {
				r := newRunner(trees[t.i], trees[t.j], m, factory)
				d := r.Run()
				outcomes <- outcome{task: t, dist: d, subs: r.Stats().Subproblems}
			}
		}()
	}
	total := len(trees) * (len(trees) - 1) / 2
	go func() {
		for i := 0; i < len(trees); i++ {
			for j := i + 1; j < len(trees); j++ {
				tasks <- task{i, j}
			}
		}
		close(tasks)
	}()

	res := Result{Tau: tau}
	start := time.Now()
	for n := 0; n < total; n++ {
		o := <-outcomes
		res.Comparisons++
		res.Subproblems += o.subs
		if o.dist < tau {
			res.Pairs = append(res.Pairs, Pair{I: o.i, J: o.j, Dist: o.dist})
		}
	}
	res.Elapsed = time.Since(start)
	sortPairs(res.Pairs)
	return res
}

func sortPairs(ps []Pair) {
	// Insertion sort by (I, J); pair counts are small relative to the
	// distance computations.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0; j-- {
			if ps[j-1].I < ps[j].I || (ps[j-1].I == ps[j].I && ps[j-1].J < ps[j].J) {
				break
			}
			ps[j-1], ps[j] = ps[j], ps[j-1]
		}
	}
}

// CountOnly computes the total subproblem count of the join analytically
// (no distance computation). It matches SelfJoin's Subproblems exactly
// and is what Table 2 style experiments use for large inputs.
func CountOnly(trees []*tree.Tree, factory StrategyFactory) int64 {
	decomps := make([]*strategy.Decomp, len(trees))
	for i, t := range trees {
		decomps[i] = strategy.NewDecomp(t)
	}
	var total int64
	for i := 0; i < len(trees); i++ {
		for j := i + 1; j < len(trees); j++ {
			total += strategy.CountD(trees[i], trees[j], decomps[i], decomps[j], factory(trees[i], trees[j])).Total
		}
	}
	return total
}
