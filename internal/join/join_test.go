package join

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/naive"
	"repro/internal/strategy"
	"repro/internal/tree"
	"repro/internal/treegen"
)

func someTrees(seed int64, count, size int) []*tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	var ts []*tree.Tree
	for i := 0; i < count; i++ {
		ts = append(ts, treegen.Random(rng, treegen.RandomSpec{
			Size: 1 + rng.Intn(size), MaxDepth: 8, MaxFanout: 4, Labels: 3,
		}))
	}
	return ts
}

func factories() map[string]StrategyFactory {
	return map[string]StrategyFactory{
		"rted":    RTEDFactory(),
		"zhang-l": FixedFactory(func(f, g *tree.Tree) strategy.Named { return strategy.ZhangL() }),
		"demaine": FixedFactory(func(f, g *tree.Tree) strategy.Named { return strategy.DemaineH(f, g) }),
	}
}

func TestSelfJoinMatchesNaive(t *testing.T) {
	trees := someTrees(1, 8, 20)
	tau := 10.0
	for name, fac := range factories() {
		r := SelfJoin(trees, tau, cost.Unit{}, fac)
		if r.Comparisons != len(trees)*(len(trees)-1)/2 {
			t.Fatalf("%s: %d comparisons", name, r.Comparisons)
		}
		// Recompute matches with the ground-truth implementation.
		var want []Pair
		for i := 0; i < len(trees); i++ {
			for j := i + 1; j < len(trees); j++ {
				if d := naive.Dist(trees[i], trees[j], cost.Unit{}); d < tau {
					want = append(want, Pair{I: i, J: j, Dist: d})
				}
			}
		}
		if len(r.Pairs) != len(want) {
			t.Fatalf("%s: %d pairs want %d", name, len(r.Pairs), len(want))
		}
		for k := range want {
			if r.Pairs[k].I != want[k].I || r.Pairs[k].J != want[k].J ||
				math.Abs(r.Pairs[k].Dist-want[k].Dist) > 1e-9 {
				t.Fatalf("%s: pair %d = %+v want %+v", name, k, r.Pairs[k], want[k])
			}
		}
	}
}

func TestCountOnlyMatchesSelfJoin(t *testing.T) {
	trees := someTrees(2, 6, 30)
	for name, fac := range factories() {
		r := SelfJoin(trees, 5, cost.Unit{}, fac)
		if c := CountOnly(trees, fac); c != r.Subproblems {
			t.Fatalf("%s: CountOnly %d != SelfJoin %d", name, c, r.Subproblems)
		}
	}
}

func TestRTEDJoinNeverWorse(t *testing.T) {
	trees := []*tree.Tree{
		treegen.LeftBranch(61),
		treegen.RightBranch(61),
		treegen.ZigZag(61),
		treegen.FullBinary(63),
	}
	rted := CountOnly(trees, RTEDFactory())
	for name, fac := range factories() {
		if name == "rted" {
			continue
		}
		if c := CountOnly(trees, fac); c < rted {
			t.Fatalf("%s join count %d beats RTED %d", name, c, rted)
		}
	}
}
