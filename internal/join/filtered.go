package join

import (
	"time"

	"repro/internal/bounds"
	"repro/internal/cost"
	"repro/internal/tree"
)

// FilterStats reports how a filtered join resolved its candidate pairs.
type FilterStats struct {
	// LowerPruned pairs were rejected because a cheap lower bound
	// already reached the threshold.
	LowerPruned int
	// UpperAccepted pairs were accepted because the constrained upper
	// bound stayed below the threshold (their reported distance is the
	// upper bound unless Exact was requested).
	UpperAccepted int
	// ExactComputed pairs needed the exact RTED computation.
	ExactComputed int
}

// FilteredResult extends Result with filter accounting.
type FilteredResult struct {
	Result
	Filter FilterStats
	// Exact records whether reported distances are exact for
	// upper-bound-accepted pairs.
	Exact bool
}

// FilteredSelfJoin is SelfJoin with the bounds pipeline of
// internal/bounds in front of the exact computation (the pruning scheme
// Section 7 of the paper describes): a pair is rejected when a lower
// bound reaches tau, accepted when the constrained upper bound stays
// below tau, and only the undecided remainder runs RTED. The match set
// is identical to SelfJoin's; when exact is false, accepted pairs report
// the upper bound as their distance (≥ the true distance, < tau).
//
// Only the unit cost model admits the published bounds, so the model is
// fixed.
func FilteredSelfJoin(trees []*tree.Tree, tau float64, factory StrategyFactory, exact bool) FilteredResult {
	res := FilteredResult{Result: Result{Tau: tau}, Exact: exact}
	start := time.Now()
	m := cost.Unit{}
	for i := 0; i < len(trees); i++ {
		for j := i + 1; j < len(trees); j++ {
			f, g := trees[i], trees[j]
			res.Comparisons++
			if lb := bounds.Lower(f, g); lb >= tau {
				res.Filter.LowerPruned++
				continue
			}
			if ub := bounds.Constrained(f, g); ub < tau && !exact {
				res.Filter.UpperAccepted++
				res.Pairs = append(res.Pairs, Pair{I: i, J: j, Dist: ub})
				continue
			}
			res.Filter.ExactComputed++
			r := newRunner(f, g, m, factory)
			d := r.Run()
			res.Subproblems += r.Stats().Subproblems
			if d < tau {
				res.Pairs = append(res.Pairs, Pair{I: i, J: j, Dist: d})
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res
}
