package join

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/tree"
	"repro/internal/treegen"
)

func clusteredTrees(seed int64) []*tree.Tree {
	// Three clusters of near-duplicates plus outliers, so a threshold
	// join has both easy accepts and easy rejects.
	rng := rand.New(rand.NewSource(seed))
	var ts []*tree.Tree
	for c := 0; c < 3; c++ {
		base := treegen.Random(rng, treegen.RandomSpec{Size: 30 + 10*c, MaxDepth: 7, MaxFanout: 4, Labels: 3})
		ts = append(ts, base)
		// A near-duplicate: re-index a copy with one label tweaked.
		nd := base.Builder(base.Root())
		nd.Children[0].Label = "tweaked"
		ts = append(ts, tree.Index(nd))
	}
	for i := 0; i < 4; i++ {
		ts = append(ts, treegen.Random(rng, treegen.RandomSpec{Size: 15 + rng.Intn(50), MaxDepth: 7, MaxFanout: 4, Labels: 5}))
	}
	return ts
}

// TestFilteredJoinSameMatches: the filtered join must find exactly the
// pairs of the plain join, at every threshold.
func TestFilteredJoinSameMatches(t *testing.T) {
	trees := clusteredTrees(1)
	for _, tau := range []float64{1, 3, 10, 25, 60} {
		plain := SelfJoin(trees, tau, cost.Unit{}, RTEDFactory())
		for _, exact := range []bool{false, true} {
			filt := FilteredSelfJoin(trees, tau, RTEDFactory(), exact)
			if len(filt.Pairs) != len(plain.Pairs) {
				t.Fatalf("tau=%v exact=%v: %d pairs want %d", tau, exact, len(filt.Pairs), len(plain.Pairs))
			}
			for k := range plain.Pairs {
				fp, pp := filt.Pairs[k], plain.Pairs[k]
				if fp.I != pp.I || fp.J != pp.J {
					t.Fatalf("tau=%v: pair %d = (%d,%d) want (%d,%d)", tau, k, fp.I, fp.J, pp.I, pp.J)
				}
				if exact && fp.Dist != pp.Dist {
					t.Fatalf("tau=%v exact: dist %v want %v", tau, fp.Dist, pp.Dist)
				}
				if !exact && (fp.Dist < pp.Dist-1e-9 || fp.Dist >= tau) {
					t.Fatalf("tau=%v approx: dist %v outside [exact=%v, tau)", tau, fp.Dist, pp.Dist)
				}
			}
			st := filt.Filter
			if st.LowerPruned+st.UpperAccepted+st.ExactComputed != filt.Comparisons {
				t.Fatalf("filter accounting inconsistent: %+v vs %d comparisons", st, filt.Comparisons)
			}
		}
	}
}

// TestFilteredJoinPrunes: with a tight threshold most pairs must be
// pruned by lower bounds; with a huge threshold most must be accepted by
// the upper bound.
func TestFilteredJoinPrunes(t *testing.T) {
	trees := clusteredTrees(2)
	tight := FilteredSelfJoin(trees, 1, RTEDFactory(), false)
	if tight.Filter.LowerPruned == 0 {
		t.Fatal("tight threshold pruned nothing")
	}
	loose := FilteredSelfJoin(trees, 1e9, RTEDFactory(), false)
	if loose.Filter.UpperAccepted != loose.Comparisons {
		t.Fatalf("loose threshold: %d accepted of %d", loose.Filter.UpperAccepted, loose.Comparisons)
	}
}

// TestParallelJoinMatchesSequential: worker counts must not change the
// result.
func TestParallelJoinMatchesSequential(t *testing.T) {
	trees := clusteredTrees(3)
	tau := 20.0
	seq := SelfJoin(trees, tau, cost.Unit{}, RTEDFactory())
	for _, workers := range []int{1, 2, 4, 9} {
		par := ParallelSelfJoin(trees, tau, cost.Unit{}, RTEDFactory(), workers)
		if par.Comparisons != seq.Comparisons || par.Subproblems != seq.Subproblems {
			t.Fatalf("workers=%d: accounting differs", workers)
		}
		if len(par.Pairs) != len(seq.Pairs) {
			t.Fatalf("workers=%d: %d pairs want %d", workers, len(par.Pairs), len(seq.Pairs))
		}
		for k := range seq.Pairs {
			if par.Pairs[k] != seq.Pairs[k] {
				t.Fatalf("workers=%d: pair %d = %+v want %+v", workers, k, par.Pairs[k], seq.Pairs[k])
			}
		}
	}
}
