package naive

import (
	"sort"

	"repro/internal/cost"
	"repro/internal/tree"
)

// OpKind identifies one of the three node edit operations.
type OpKind int

const (
	// OpMatch pairs an F-node with a G-node; if the labels differ the
	// operation is a rename and carries the rename cost.
	OpMatch OpKind = iota
	// OpDelete removes an F-node.
	OpDelete
	// OpInsert adds a G-node.
	OpInsert
)

func (k OpKind) String() string {
	switch k {
	case OpMatch:
		return "match"
	case OpDelete:
		return "delete"
	case OpInsert:
		return "insert"
	}
	return "unknown"
}

// Op is one element of an edit mapping. FNode and GNode are postorder ids;
// FNode is -1 for insertions and GNode is -1 for deletions.
type Op struct {
	Kind  OpKind
	FNode int
	GNode int
	Cost  float64
}

// Mapping computes a minimum-cost edit mapping between f and g: a set of
// operations covering every node of both trees exactly once whose total
// cost equals the tree edit distance. Matched pairs are one-to-one and
// preserve both ancestry and left-to-right order (the defining properties
// of a valid tree edit mapping).
func Mapping(f, g *tree.Tree, m cost.Model) []Op {
	c := cost.Compile(m, f, g)
	d := newDP(f, g, c)
	d.forest(0, f.Len()-1, 0, g.Len()-1) // fill the memo along the optimal frontier
	var ops []Op
	d.backtrack(0, f.Len()-1, 0, g.Len()-1, &ops)
	sort.Slice(ops, func(i, j int) bool {
		ki, kj := ops[i].FNode, ops[j].FNode
		if ki == -1 {
			ki = 1 << 30
		}
		if kj == -1 {
			kj = 1 << 30
		}
		if ki != kj {
			return ki < kj
		}
		return ops[i].GNode < ops[j].GNode
	})
	return ops
}

const eps = 1e-9

func (d *dp) backtrack(flo, fhi, glo, ghi int, ops *[]Op) {
	for {
		if fhi < flo && ghi < glo {
			return
		}
		if fhi < flo {
			for w := glo; w <= ghi; w++ {
				*ops = append(*ops, Op{Kind: OpInsert, FNode: -1, GNode: w, Cost: d.c.Ins[w]})
			}
			return
		}
		if ghi < glo {
			for v := flo; v <= fhi; v++ {
				*ops = append(*ops, Op{Kind: OpDelete, FNode: v, GNode: -1, Cost: d.c.Del[v]})
			}
			return
		}
		cur := d.forest(flo, fhi, glo, ghi)
		v, w := fhi, ghi
		if del := d.forest(flo, fhi-1, glo, ghi) + d.c.Del[v]; approxEq(cur, del) {
			*ops = append(*ops, Op{Kind: OpDelete, FNode: v, GNode: -1, Cost: d.c.Del[v]})
			fhi--
			continue
		}
		if ins := d.forest(flo, fhi, glo, ghi-1) + d.c.Ins[w]; approxEq(cur, ins) {
			*ops = append(*ops, Op{Kind: OpInsert, FNode: -1, GNode: w, Cost: d.c.Ins[w]})
			ghi--
			continue
		}
		fv := d.f.SubtreeFirst(v)
		gw := d.g.SubtreeFirst(w)
		if fv == flo && gw == glo {
			// Tree vs tree: the remaining option is the rename of the
			// two roots.
			*ops = append(*ops, Op{Kind: OpMatch, FNode: v, GNode: w, Cost: d.c.Ren(v, w)})
			fhi--
			ghi--
			continue
		}
		// Forest case: rightmost subtrees matched against each other.
		d.backtrack(fv, fhi, gw, ghi, ops)
		fhi = fv - 1
		ghi = gw - 1
	}
}

func approxEq(a, b float64) bool {
	diff := a - b
	return diff < eps && diff > -eps
}
