// Package naive provides a direct memoized implementation of the
// recursive tree edit distance formula (paper Figure 2) plus edit-mapping
// extraction by backtracking.
//
// It decomposes forests by always removing the rightmost root node, so
// every forest that arises is a contiguous postorder interval of the
// original tree and a subproblem is identified by four interval bounds.
// No keyroot sharing, no strategy machinery — this is the simplest code
// that can be correct, and it serves as the ground truth for differential
// tests against the GTED/RTED implementations. Worst-case cost is
// O(|F|²·|G|²) time and space, so use it on small and medium inputs only.
package naive

import (
	"repro/internal/cost"
	"repro/internal/tree"
)

// Dist computes the exact tree edit distance between f and g under cost
// model m.
func Dist(f, g *tree.Tree, m cost.Model) float64 {
	c := cost.Compile(m, f, g)
	d := newDP(f, g, c)
	return d.forest(0, f.Len()-1, 0, g.Len()-1)
}

type dp struct {
	f, g *tree.Tree
	c    *cost.Compiled
	memo map[uint64]float64
	// delSum[i] is the total delete cost of F-nodes with postorder id < i;
	// insSum likewise for G. Empty-forest cases are O(1) lookups.
	delSum []float64
	insSum []float64
}

func newDP(f, g *tree.Tree, c *cost.Compiled) *dp {
	d := &dp{f: f, g: g, c: c, memo: make(map[uint64]float64)}
	d.delSum = make([]float64, f.Len()+1)
	for i := 0; i < f.Len(); i++ {
		d.delSum[i+1] = d.delSum[i] + c.Del[i]
	}
	d.insSum = make([]float64, g.Len()+1)
	for j := 0; j < g.Len(); j++ {
		d.insSum[j+1] = d.insSum[j] + c.Ins[j]
	}
	return d
}

func key(flo, fhi, glo, ghi int) uint64 {
	return uint64(uint16(flo))<<48 | uint64(uint16(fhi+1))<<32 |
		uint64(uint16(glo))<<16 | uint64(uint16(ghi+1))
}

// forest returns the edit distance between the F-forest of postorder ids
// [flo, fhi] and the G-forest [glo, ghi]; an interval with hi < lo is the
// empty forest.
func (d *dp) forest(flo, fhi, glo, ghi int) float64 {
	if fhi < flo {
		return d.insSum[ghi+1] - d.insSum[glo]
	}
	if ghi < glo {
		return d.delSum[fhi+1] - d.delSum[flo]
	}
	k := key(flo, fhi, glo, ghi)
	if v, ok := d.memo[k]; ok {
		return v
	}
	v, w := fhi, ghi // rightmost roots
	del := d.forest(flo, fhi-1, glo, ghi) + d.c.Del[v]
	ins := d.forest(flo, fhi, glo, ghi-1) + d.c.Ins[w]
	fv := d.f.SubtreeFirst(v)
	gw := d.g.SubtreeFirst(w)
	var match float64
	if fv == flo && gw == glo {
		// Both forests are single trees: rename case (5) of Figure 2.
		match = d.forest(flo, fhi-1, glo, ghi-1) + d.c.Ren(v, w)
	} else {
		// Forest case (3)+(4): match the rightmost subtrees, recurse on
		// the rest.
		match = d.forest(fv, fhi, gw, ghi) + d.forest(flo, fv-1, glo, gw-1)
	}
	res := min3(del, ins, match)
	d.memo[k] = res
	return res
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// Subproblems returns the number of distinct forest-pair subproblems the
// memoized recursion evaluated for the pair (f, g). Useful in tests as an
// upper-bound sanity check against the strategy-based counts.
func Subproblems(f, g *tree.Tree, m cost.Model) int {
	c := cost.Compile(m, f, g)
	d := newDP(f, g, c)
	d.forest(0, f.Len()-1, 0, g.Len()-1)
	return len(d.memo)
}
