package naive

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/tree"
)

func TestKnownDistances(t *testing.T) {
	cases := []struct {
		f, g string
		want float64
	}{
		{"{a}", "{a}", 0},
		{"{a}", "{b}", 1},
		{"{a{b}{c}}", "{a{b}{c}}", 0},
		{"{a{b}{c}}", "{a{b}}", 1},
		{"{a{b}{c}}", "{b{b}{c}}", 1},
		{"{a{b{c}{d}}}", "{a{c}{d}}", 1}, // delete b
		{"{a}", "{b{c{d}}}", 3},
	}
	for _, c := range cases {
		f, g := tree.MustParseBracket(c.f), tree.MustParseBracket(c.g)
		if got := Dist(f, g, cost.Unit{}); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Dist(%s, %s) = %v want %v", c.f, c.g, got, c.want)
		}
	}
}

func TestAsymmetricCosts(t *testing.T) {
	f := tree.MustParseBracket("{a{b}}")
	g := tree.MustParseBracket("{a}")
	m := cost.Weighted{DeleteW: 3, InsertW: 100, RenameW: 100}
	if got := Dist(f, g, m); got != 3 {
		t.Fatalf("delete-only distance = %v want 3", got)
	}
	if got := Dist(g, f, cost.Weighted{DeleteW: 100, InsertW: 4, RenameW: 100}); got != 4 {
		t.Fatalf("insert-only distance = %v want 4", got)
	}
}

func TestSubproblemsBounded(t *testing.T) {
	f := tree.MustParseBracket("{a{b{c}}{d}}")
	g := tree.MustParseBracket("{a{b}{c{d}}}")
	n := Subproblems(f, g, cost.Unit{})
	if n <= 0 || n > f.Len()*f.Len()*g.Len()*g.Len() {
		t.Fatalf("subproblems %d out of range", n)
	}
}

func TestMappingOpsComplete(t *testing.T) {
	f := tree.MustParseBracket("{a{b}{c}}")
	g := tree.MustParseBracket("{a{x}{c}{d}}")
	ops := Mapping(f, g, cost.Unit{})
	var total float64
	var matches, dels, inss int
	for _, op := range ops {
		total += op.Cost
		switch op.Kind {
		case OpMatch:
			matches++
		case OpDelete:
			dels++
		case OpInsert:
			inss++
		}
	}
	if matches+dels != f.Len() || matches+inss != g.Len() {
		t.Fatalf("coverage wrong: %d matches %d dels %d inss", matches, dels, inss)
	}
	if want := Dist(f, g, cost.Unit{}); math.Abs(total-want) > 1e-9 {
		t.Fatalf("mapping cost %v != distance %v", total, want)
	}
}

func TestOpKindString(t *testing.T) {
	if OpMatch.String() != "match" || OpDelete.String() != "delete" || OpInsert.String() != "insert" {
		t.Fatal("op kind strings")
	}
	if OpKind(42).String() != "unknown" {
		t.Fatal("unknown op kind")
	}
}
