package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cost"
	"repro/internal/gted"
	"repro/internal/join"
	"repro/internal/strategy"
	"repro/internal/tree"
	"repro/internal/treegen"
)

// Ablations beyond the paper (DESIGN.md §3): quantify the design choices
// of the LRH class itself.
//
//   - ablation-lr: optimal strategy restricted to {left,right} paths vs
//     full LRH — how much do heavy paths buy?
//   - ablation-h: optimal strategy restricted to heavy paths vs full LRH
//     — how much do L/R paths buy?
//   - ablation-spf: per-shape comparison of the single-path function
//     workloads |F|·|F(G,ΓL)| (ΔL) vs |F|·|A(G)| (ΔI) at the root pair —
//     the structural reason both families are needed.
//   - ablation-strategy: OptStrategy runtime vs the O(n³) baseline
//     algorithm runtime, verifying the quadratic strategy computation is
//     what makes RTED viable.

func init() {
	register("ablation-lr", "ablation: optimal {L,R}-only strategy vs full LRH", func(cfg Config) error {
		return ablationRestricted(cfg, "ablation-lr", strategy.LROnly)
	})
	register("ablation-h", "ablation: optimal {H}-only strategy vs full LRH", func(cfg Config) error {
		return ablationRestricted(cfg, "ablation-h", strategy.HOnly)
	})
	register("ablation-spf", "ablation: ΔL vs ΔI single-path workloads per shape", ablationSPF)
	register("ablation-strategy", "ablation: OptStrategy vs baseline strategy computation", ablationStrategy)
	register("ablation-filter", "ablation: bounds-filtered join vs plain RTED join", ablationFilter)
}

// ablationFilter quantifies the Section-7 claim that lower/upper bounds
// prune exact computations in threshold joins: a TreeFam-like collection
// is self-joined with and without the bounds pipeline.
func ablationFilter(cfg Config) error {
	header(cfg, "ablation-filter", "bounds-filtered join vs plain RTED join on TreeFam-like trees",
		"tau", "plain[s]", "filtered[s]", "lb-pruned", "ub-accepted", "exact", "matches")
	rng := rand.New(rand.NewSource(cfg.Seed))
	var trees []*tree.Tree
	count := 14
	for i := 0; i < count; i++ {
		trees = append(trees, treegen.TreeFamLike(rng, cfg.size(200)+rng.Intn(cfg.size(200))))
	}
	for _, tauFrac := range []float64{0.05, 0.25, 0.75} {
		tau := tauFrac * float64(cfg.size(300))
		plain := join.SelfJoin(trees, tau, cost.Unit{}, join.RTEDFactory())
		filtered := join.FilteredSelfJoin(trees, tau, join.RTEDFactory(), false)
		if len(filtered.Pairs) != len(plain.Pairs) {
			return fmt.Errorf("ablation-filter: filtered join found %d pairs, plain %d",
				len(filtered.Pairs), len(plain.Pairs))
		}
		fmt.Fprintf(cfg.Out, "%.0f\t%s\t%s\t%d\t%d\t%d\t%d\n",
			tau, secs(plain.Elapsed), secs(filtered.Elapsed),
			filtered.Filter.LowerPruned, filtered.Filter.UpperAccepted,
			filtered.Filter.ExactComputed, len(filtered.Pairs))
	}
	return nil
}

func ablationRestricted(cfg Config, id string, allowed [6]bool) error {
	header(cfg, id, "restricted-optimum / full-optimum per shape (1.00 = no loss)",
		"shape", "size", "fullLRH", "restricted", "ratio")
	n := cfg.size(800)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, s := range treegen.Shapes {
		t := s.Build(n)
		_, full := strategy.Opt(t, t)
		_, restr := strategy.OptRestricted(t, t, allowed)
		fmt.Fprintf(cfg.Out, "%s\t%d\t%d\t%d\t%.2f\n", s, t.Len(), full, restr, float64(restr)/float64(full))
		if restr < full {
			return fmt.Errorf("%s: restricted optimum %d beats full %d on %s", id, restr, full, s)
		}
	}
	t := treegen.Random(rng, treegen.PaperRandom(n))
	_, full := strategy.Opt(t, t)
	_, restr := strategy.OptRestricted(t, t, allowed)
	fmt.Fprintf(cfg.Out, "Random\t%d\t%d\t%d\t%.2f\n", t.Len(), full, restr, float64(restr)/float64(full))
	return nil
}

func ablationSPF(cfg Config) error {
	header(cfg, "ablation-spf", "single-path workloads at the root pair (per Lemma 4)",
		"shape", "size", "|F|*FL(G)", "|F|*FR(G)", "|F|*A(G)")
	n := cfg.size(800)
	for _, s := range treegen.Shapes {
		t := s.Build(n)
		d := strategy.NewDecomp(t)
		sz := int64(t.Len())
		r := t.Root()
		fmt.Fprintf(cfg.Out, "%s\t%d\t%d\t%d\t%d\n", s, t.Len(), sz*d.FL[r], sz*d.FR[r], sz*d.A[r])
	}
	return nil
}

func ablationStrategy(cfg Config) error {
	header(cfg, "ablation-strategy", "strategy computation: OptStrategy (O(n²)) vs baseline (O(n³)), and GTED share",
		"size", "opt[s]", "baseline[s]", "gted[s]")
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range cfg.sizes(100, 1200, 4) {
		t := treegen.Random(rng, treegen.PaperRandom(n))

		start := time.Now()
		str, c1 := strategy.Opt(t, t)
		optT := time.Since(start)

		start = time.Now()
		_, c2 := strategy.Baseline(t, t)
		baseT := time.Since(start)
		if c1 != c2 {
			return fmt.Errorf("ablation-strategy: optimum mismatch %d vs %d", c1, c2)
		}

		start = time.Now()
		gted.New(t, t, cost.Unit{}, str).Run()
		gtedT := time.Since(start)

		fmt.Fprintf(cfg.Out, "%d\t%s\t%s\t%s\n", t.Len(), secs(optT), secs(baseT), secs(gtedT))
	}
	return nil
}
