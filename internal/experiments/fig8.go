package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/strategy"
	"repro/internal/tree"
	"repro/internal/treegen"
)

// Figure 8: number of relevant subproblems computed by Zhang-L, Zhang-R,
// Klein-H, Demaine-H and RTED on pairs of identical trees of each
// synthetic shape, over a grid of tree sizes. Counts are analytic
// (Section 5.3), which is exactly how many constant-time DP steps the
// real algorithms execute (differentially tested in internal/gted).

func init() {
	shapes := []struct {
		id    string
		fig   string
		shape treegen.Shape
		hi    int
	}{
		{"fig8a", "Figure 8(a) left branch (LB)", treegen.ShapeLB, 1700},
		{"fig8b", "Figure 8(b) right branch (RB)", treegen.ShapeRB, 1700},
		{"fig8c", "Figure 8(c) full binary (FB)", treegen.ShapeFB, 1023},
		{"fig8d", "Figure 8(d) zig-zag (ZZ)", treegen.ShapeZZ, 2000},
		{"fig8f", "Figure 8(f) mixed (MX)", treegen.ShapeMX, 1600},
	}
	for _, s := range shapes {
		s := s
		register(s.id, s.fig+": #subproblems vs tree size", func(cfg Config) error {
			return fig8Shape(cfg, s.id, s.fig, func(n int) *tree.Tree { return s.shape.Build(n) }, s.hi)
		})
	}
	register("fig8e", "Figure 8(e) random trees: #subproblems vs tree size", func(cfg Config) error {
		rng := rand.New(rand.NewSource(cfg.Seed))
		return fig8Shape(cfg, "fig8e", "Figure 8(e) random", func(n int) *tree.Tree {
			return treegen.Random(rng, treegen.PaperRandom(n))
		}, 1700)
	})
}

// fig8Algorithms returns the named strategies of the figure's five curves.
func fig8Algorithms(f, g *tree.Tree) []strategy.Named {
	rted, _ := strategy.Opt(f, g)
	return []strategy.Named{
		strategy.ZhangL(),
		strategy.ZhangR(),
		strategy.KleinH(),
		strategy.DemaineH(f, g),
		rted,
	}
}

func fig8Shape(cfg Config, id, title string, build func(n int) *tree.Tree, hi int) error {
	header(cfg, id, title, "size", "Zhang-L", "Zhang-R", "Klein-H", "Demaine-H", "RTED")
	for _, n := range cfg.sizes(100, hi, 9) {
		t := build(n)
		df := strategy.NewDecomp(t)
		fmt.Fprintf(cfg.Out, "%d", t.Len())
		var rted int64
		var best int64 = -1
		for _, s := range fig8Algorithms(t, t) {
			c := strategy.CountD(t, t, df, df, s).Total
			fmt.Fprintf(cfg.Out, "\t%d", c)
			if s.Name() == "RTED" {
				rted = c
			} else if best == -1 || c < best {
				best = c
			}
		}
		fmt.Fprintln(cfg.Out)
		if rted > best {
			return fmt.Errorf("%s: RTED count %d exceeds best competitor %d at size %d", id, rted, best, n)
		}
	}
	return nil
}
