package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"repro/batch"
	"repro/cluster"
	"repro/corpus"
	"repro/gen"
)

// Ablation: the scale-out path. The similarity self-join that cmd/ted
// runs on one machine is re-run through the coordinator/worker split
// (package cluster): two workers load the same snapshot, each capped at
// half the machine's cores — the per-process budget a real two-host
// deployment would have — and the coordinator partitions the position
// space over them. The experiment is the acceptance gate for the
// distributed join: the merged match set must equal the single-node one
// pair for pair, the additive stats must survive the merge, and at full
// scale on a multi-core machine the two-worker cluster must beat the
// single node on wall clock, or the whole scale-out story is overhead.
func init() {
	register("cluster", "Scale-out: 2-worker distributed join vs single node at equal per-process compute", clusterExp)
}

func clusterExp(cfg Config) error {
	header(cfg, "cluster", "distributed join/top-k vs single node",
		"config", "procs", "cap_per_proc", "results", "seconds", "speedup")

	// The join scenario: near-duplicate pairs spread over the whole ID
	// range, so every partition holds matches and real DP work.
	dir, err := os.MkdirTemp("", "tedcluster")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := cfg.size(128)
	c := corpus.New(corpus.WithHistogramIndex())
	for i := 0; i < cfg.size(30); i++ {
		base := gen.Random(rng.Int63(), gen.RandomSpec{
			Size: m/2 + rng.Intn(m), MaxDepth: 10, MaxFanout: 5, Labels: 16,
		})
		c.Add(base)
		c.Add(gen.RenameSome(base, 1+i%4, rng.Int63()))
	}
	snap := filepath.Join(dir, "snap.tedc")
	if err := c.SaveFile(snap); err != nil {
		return err
	}

	// Equal per-process compute: the single node and each worker get the
	// same evaluation-parallelism cap, so two workers genuinely have
	// twice the budget — the quantity a second host would add.
	perProc := runtime.NumCPU() / 2
	if perProc < 1 {
		perProc = 1
	}
	tau := 4.0

	ref, err := corpus.LoadFile(snap)
	if err != nil {
		return err
	}
	e := ref.Engine(batch.WithWorkers(perProc))
	ref.Warm(e)

	var want []corpus.Match
	var wantSt batch.JoinStats
	single := minWall(2, func() error {
		want, wantSt = ref.Join(e, tau, batch.JoinOptions{})
		return nil
	})

	addrs := make([]string, 2)
	for i := range addrs {
		wc, err := corpus.LoadFile(snap)
		if err != nil {
			return err
		}
		w := cluster.NewWorker(wc, batch.WithWorkers(perProc))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go w.Serve(ln)
		defer w.Close()
		addrs[i] = ln.Addr().String()
	}
	co := cluster.NewCoordinator(addrs)

	var got []corpus.Match
	var gotSt batch.JoinStats
	var joinErr error
	clustered := minWall(2, func() error {
		got, gotSt, joinErr = co.Join(tau, batch.JoinOptions{})
		return joinErr
	})
	if joinErr != nil {
		return fmt.Errorf("cluster: distributed join: %w", joinErr)
	}
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("cluster: distributed join diverged: %d matches clustered, %d single-node", len(got), len(want))
	}
	if gotSt.ExactComputed != wantSt.ExactComputed {
		return fmt.Errorf("cluster: exact_computed = %d clustered, %d single-node — the partition dropped or duplicated work",
			gotSt.ExactComputed, wantSt.ExactComputed)
	}

	fmt.Fprintf(cfg.Out, "join-single\t1\t%d\t%d\t%s\t1.00\n", perProc, len(want), secs(single))
	fmt.Fprintf(cfg.Out, "join-cluster\t2\t%d\t%d\t%s\t%.2f\n", perProc, len(got), secs(clustered),
		single.Seconds()/clustered.Seconds())

	// Top-k rides the same machinery; identity is the bar, the timing row
	// is informative (a single query parallelises less than a join).
	query := gen.Random(cfg.Seed+9999, gen.RandomSpec{Size: m, MaxDepth: 8, MaxFanout: 4, Labels: 16})
	k := 10
	var wantK []corpus.CrossMatch
	singleK := minWall(2, func() error {
		wantK, _ = ref.TopKAcross(e, ref.PrepareQuery(e, query), k)
		return nil
	})
	var gotK []corpus.CrossMatch
	var kErr error
	clusteredK := minWall(2, func() error {
		gotK, _, kErr = co.TopK(query, k)
		return kErr
	})
	if kErr != nil {
		return fmt.Errorf("cluster: distributed topk: %w", kErr)
	}
	if !reflect.DeepEqual(gotK, wantK) {
		return fmt.Errorf("cluster: distributed topk diverged: %d results clustered, %d single-node", len(gotK), len(wantK))
	}
	fmt.Fprintf(cfg.Out, "topk-single\t1\t%d\t%d\t%s\t1.00\n", perProc, len(wantK), secs(singleK))
	fmt.Fprintf(cfg.Out, "topk-cluster\t2\t%d\t%d\t%s\t%.2f\n", perProc, len(gotK), secs(clusteredK),
		singleK.Seconds()/clusteredK.Seconds())

	// The acceptance bar only binds where it is meaningful: a full-scale
	// run on a machine with cores to spare. Tiny CI grids and single-core
	// boxes still check identity, which never has an excuse.
	if cfg.Scale >= 1 && runtime.NumCPU() >= 4 && clustered >= single {
		return fmt.Errorf("cluster: 2-worker join (%v) did not beat the single node (%v) at equal per-process compute",
			clustered, single)
	}
	return nil
}

// minWall runs fn n times and returns the fastest wall clock — the
// repeat soaks up one-off warmup (connection setup, first-touch allocs)
// so the speedup column compares steady states.
func minWall(n int, fn func() error) time.Duration {
	best := time.Duration(0)
	for i := 0; i < n; i++ {
		start := time.Now()
		if fn() != nil {
			return time.Since(start)
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best
}
