package experiments

import (
	"fmt"
	"math/rand"
	"runtime"

	"repro/batch"
	"repro/internal/cost"
	"repro/internal/join"
	"repro/internal/tree"
	"repro/internal/treegen"
)

// Ablation: the batch engine against the naive pairwise join on the
// Table 1 workload (one tree per shape, all pairs). Three effects are
// isolated:
//
//   - prepared trees (per-tree indexes, decompositions, cost vectors and
//     bound profiles computed once instead of once per pair),
//   - per-worker arenas (steady-state allocation-free DP tables), and
//   - the worker pool (near-linear fan-out of the independent pairs).
//
// The naive baseline is the pre-engine SelfJoin: a fresh runner, fresh
// strategy and fresh DP tables per pair, one goroutine.

func init() {
	register("batch", "Ablation: batch engine vs naive pairwise join", batchEngineExp)
}

func batchTrees(cfg Config) []*tree.Tree {
	n := cfg.size(360)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*tree.Tree
	out = append(out,
		treegen.LeftBranch(n),
		treegen.RightBranch(n),
		treegen.FullBinary(n),
		treegen.ZigZag(n),
	)
	for i := 0; i < 8; i++ {
		out = append(out, treegen.Random(rng, treegen.RandomSpec{
			Size: n, MaxDepth: 15, MaxFanout: 6, Labels: 8,
		}))
	}
	return out
}

func batchEngineExp(cfg Config) error {
	trees := batchTrees(cfg)
	tau := float64(cfg.size(360)) / 2
	fmt.Fprintf(cfg.Out, "# batch: engine vs naive pairwise join, %d trees, tau=%g\n", len(trees), tau)
	fmt.Fprintf(cfg.Out, "variant\tworkers\tpairs\tmatches\tsubproblems\tseconds\n")

	naive := join.SelfJoin(trees, tau, cost.Unit{}, join.RTEDFactory())
	fmt.Fprintf(cfg.Out, "naive\t1\t%d\t%d\t%d\t%.4f\n",
		naive.Comparisons, len(naive.Pairs), naive.Subproblems, naive.Elapsed.Seconds())

	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		e := batch.New(batch.WithWorkers(w))
		ps := e.PrepareAll(trees)
		ms, st := e.Join(ps, tau, false)
		fmt.Fprintf(cfg.Out, "engine\t%d\t%d\t%d\t%d\t%.4f\n",
			w, st.Comparisons, len(ms), st.Subproblems, st.Elapsed.Seconds())
		if len(ms) != len(naive.Pairs) || st.Subproblems != naive.Subproblems {
			return fmt.Errorf("engine (workers=%d) diverged from naive join: %d/%d matches, %d/%d subproblems",
				w, len(ms), len(naive.Pairs), st.Subproblems, naive.Subproblems)
		}
	}
	return nil
}
