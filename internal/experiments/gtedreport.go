package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// GtedSchemaVersion is the BENCH_gted.json schema version this package
// emits. Bump it on any incompatible change and extend Validate to
// accept the versions still in the trajectory.
const GtedSchemaVersion = 1

// GtedScenario is one measured kernel configuration of the sparse
// ablation: a crafted tree pair at a cutoff, run under one row-layout /
// band-pricing mode. Mode is "dense" (PR 7 banding, full-width rows),
// "sparse" (band-compressed rows), or "sharp" (band-compressed rows
// with per-region pricing and depth spectra).
type GtedScenario struct {
	Scenario string  `json:"scenario"` // pair name, e.g. "chain/binary"
	Nodes    int     `json:"nodes"`    // per-tree size of the pair
	Tau      float64 `json:"tau"`
	Mode     string  `json:"mode"`

	// DP accounting for the run: subproblems evaluated (cells touched),
	// row cells materialized (×8 = bytes of row storage streamed), and
	// rows stored band-compressed.
	Subproblems    int64 `json:"subproblems"`
	RowCells       int64 `json:"row_cells"`
	CompressedRows int64 `json:"compressed_rows"`

	// Wall clock and heap bytes per DistanceBounded call, averaged over
	// the measurement repetitions.
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`
}

// GtedReport is the machine-readable result of the sparse ablation —
// the BENCH_gted.json artifact CI emits and validates so the bounded
// kernel's cell/byte trajectory is diffable across commits.
type GtedReport struct {
	Bench         string         `json:"bench"` // always "gted"
	SchemaVersion int            `json:"schema_version"`
	Scale         float64        `json:"scale"`
	Seed          int64          `json:"seed"`
	Scenarios     []GtedScenario `json:"scenarios"`
}

var gtedModes = map[string]bool{"dense": true, "sparse": true, "sharp": true}

// Validate checks the report against the schema contract. It does not
// judge the numbers — only that they are present, consistent, and
// plausible (the sparse experiment's own gates judge quality).
func (r *GtedReport) Validate() error {
	if r.Bench != "gted" {
		return fmt.Errorf("bench must be %q (got %q)", "gted", r.Bench)
	}
	if r.SchemaVersion != GtedSchemaVersion {
		return fmt.Errorf("schema_version must be %d (got %d)", GtedSchemaVersion, r.SchemaVersion)
	}
	if r.Scale <= 0 {
		return fmt.Errorf("scale must be > 0 (got %g)", r.Scale)
	}
	if len(r.Scenarios) == 0 {
		return fmt.Errorf("scenarios is empty")
	}
	for i, s := range r.Scenarios {
		if s.Scenario == "" {
			return fmt.Errorf("scenario %d: name is required", i)
		}
		if !gtedModes[s.Mode] {
			return fmt.Errorf("scenario %d (%s): mode must be dense|sparse|sharp (got %q)", i, s.Scenario, s.Mode)
		}
		if s.Nodes <= 0 || s.Tau <= 0 {
			return fmt.Errorf("scenario %d (%s): nodes and tau must be > 0 (got %d, %g)", i, s.Scenario, s.Nodes, s.Tau)
		}
		if s.Subproblems < 0 || s.RowCells <= 0 || s.CompressedRows < 0 {
			return fmt.Errorf("scenario %d (%s): counters out of range (subs %d, cells %d, rows %d)",
				i, s.Scenario, s.Subproblems, s.RowCells, s.CompressedRows)
		}
		if s.Mode == "dense" && s.CompressedRows != 0 {
			return fmt.Errorf("scenario %d (%s): dense mode reports %d compressed rows", i, s.Scenario, s.CompressedRows)
		}
		if s.NsPerOp <= 0 || s.BytesPerOp < 0 {
			return fmt.Errorf("scenario %d (%s): ns_per_op must be > 0, bytes_per_op ≥ 0 (got %g, %g)",
				i, s.Scenario, s.NsPerOp, s.BytesPerOp)
		}
	}
	return nil
}

// WriteJSON writes the report to path (truncate + write + close).
func (r *GtedReport) WriteJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadGtedReport loads and validates a BENCH_gted.json file.
func ReadGtedReport(path string) (*GtedReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r GtedReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
