package experiments

import (
	"fmt"
	"math/rand"

	ted "repro"
	"repro/batch"
	"repro/internal/tree"
	"repro/internal/treegen"
)

// Ablation: the bounded-TED early exit (tau threaded into GTED's DP as a
// saturating cutoff) against the exact algorithm, in two settings:
//
//   - pairwise, on cross-shape pairs of the paper's synthetic shape trees
//     (Figure 7): for each pair, DistanceBounded at cutoffs below and
//     above the exact distance, reporting the subproblems evaluated and
//     pruned. For tau well under d the bounded run must evaluate
//     strictly fewer subproblems than exact GTED — that regression guard
//     is what the CI smoke step executes.
//   - join, on a mixed shapes+random corpus: the filtered join (which
//     seeds every exact-stage pair with the threshold as its cutoff)
//     must report exactly the plain join's match set while evaluating no
//     more subproblems.

func init() {
	register("bounded", "Ablation: bounded-TED early exit (tau-threaded GTED) vs exact", boundedExp)
}

func boundedExp(cfg Config) error {
	header(cfg, "bounded", "tau-threaded GTED vs exact",
		"section", "pair", "d", "tau", "exact_subs", "bounded_subs", "pruned", "band_cells", "verdict")

	n := cfg.size(120)
	shapes := []struct {
		name string
		t    *tree.Tree
	}{
		{"left", treegen.LeftBranch(n)},
		{"right", treegen.RightBranch(n)},
		{"binary", treegen.FullBinary(n)},
		{"zigzag", treegen.ZigZag(n + n/3)},
		{"mixed", treegen.Mixed(n + n/2)},
	}
	for i := 0; i < len(shapes); i++ {
		for j := i + 1; j < len(shapes); j++ {
			f, g := shapes[i].t, shapes[j].t
			pair := shapes[i].name + "/" + shapes[j].name
			var est ted.Stats
			d := ted.Distance(f, g, ted.WithStats(&est))
			for _, frac := range []float64{0.125, 0.5, 1.5} {
				tau := d * frac
				var bst ted.Stats
				bd, ok := ted.DistanceBounded(f, g, tau, ted.WithStats(&bst))
				verdict := "exceeds"
				if ok {
					verdict = "exact"
				}
				// band_cells splits the pruning attribution: cells skipped
				// as whole band ranges, vs slack saturation caught per cell.
				fmt.Fprintf(cfg.Out, "pairwise\t%s\t%g\t%g\t%d\t%d\t%d\t%d\t%s\n",
					pair, d, tau, est.Subproblems, bst.Subproblems, bst.PrunedSubproblems, bst.BandSkippedCells, verdict)
				if ok != (d <= tau) {
					return fmt.Errorf("%s tau=%g: bounded verdict %v but d=%g", pair, tau, ok, d)
				}
				if ok && bd != d {
					return fmt.Errorf("%s tau=%g: bounded distance %g, exact %g", pair, tau, bd, d)
				}
				if bst.Subproblems > est.Subproblems {
					return fmt.Errorf("%s tau=%g: bounded evaluated %d subproblems, exact %d",
						pair, tau, bst.Subproblems, est.Subproblems)
				}
				// The acceptance guard: for tau well under d the cutoff
				// must skip part of the DP, not just re-run it.
				if frac <= 0.5 && d >= 4 && bst.Subproblems >= est.Subproblems {
					return fmt.Errorf("%s tau=%g (d=%g): bounded run pruned nothing (%d vs %d subproblems)",
						pair, tau, d, bst.Subproblems, est.Subproblems)
				}
			}
		}
	}

	// Join section: bounded (filtered) join vs plain join on a corpus of
	// shapes and random trees; identical match sets required.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var corpus []*tree.Tree
	for _, s := range shapes {
		corpus = append(corpus, s.t)
	}
	for i := 0; i < 10; i++ {
		corpus = append(corpus, treegen.Random(rng, treegen.RandomSpec{
			Size: n/2 + rng.Intn(n), MaxDepth: 10, MaxFanout: 5, Labels: 6,
		}))
	}
	e := batch.New()
	ps := e.PrepareAll(corpus)
	for _, tau := range []float64{float64(n) / 8, float64(n) / 2} {
		plain, pst := e.Join(ps, tau, false)
		bounded, bst := e.Join(ps, tau, true)
		fmt.Fprintf(cfg.Out, "join\tcorpus\t-\t%g\t%d\t%d\t%d\t%d\t%d-matches\n",
			tau, pst.Subproblems, bst.Subproblems, bst.PrunedSubproblems, bst.BandSkippedCells, len(bounded))
		if len(plain) != len(bounded) {
			return fmt.Errorf("join tau=%g: bounded found %d matches, plain %d", tau, len(bounded), len(plain))
		}
		for k := range plain {
			if plain[k].I != bounded[k].I || plain[k].J != bounded[k].J {
				return fmt.Errorf("join tau=%g: match %d differs: %+v vs %+v", tau, k, plain[k], bounded[k])
			}
		}
		if bst.Subproblems > pst.Subproblems {
			return fmt.Errorf("join tau=%g: bounded evaluated %d subproblems, plain %d",
				tau, bst.Subproblems, pst.Subproblems)
		}
	}
	return nil
}
