package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"repro/batch"
	"repro/corpus"
	"repro/gen"
	"repro/internal/tree"
	"repro/internal/treegen"
)

// Ablation: the persistent tree store against cold preparation. The
// corpus layer exists to amortize per-tree work across process
// lifetimes: Save serializes trees, prepared artifacts (decomposition
// cardinalities, mirror-leafmost arrays, bound profiles, interned label
// ids) and the inverted-index posting lists; Load decodes them in
// O(bytes). This experiment measures both sides of that bargain:
//
//   - cold: parse-equivalent trees -> corpus.Add (computes every
//     artifact, builds the posting lists) -> first indexed join (pays
//     the lazy profile builds).
//   - store: corpus.Load from the saved bytes -> the same join on
//     hydrated PreparedTrees.
//
// Both paths must produce the identical match set (a divergence fails
// the run — this is the CI smoke step's correctness check), and the
// load path must be faster than the cold path: persisting prepared
// state that is slower than recomputing it would be a regression in the
// store's reason to exist. Timings take the best of three runs to damp
// scheduler noise; the margin (cold must beat load outright, with cold
// re-measured against fresh state each run) is deliberately loose
// enough for CI boxes.
func init() {
	register("store", "Ablation: corpus Load hydration vs cold prepare + index build", storeExp)
}

// storeCorpusTrees builds a label-diverse collection with planted
// near-duplicates — the regime where the indexes and profiles all do
// real work, so cold preparation has its honest cost.
func storeCorpusTrees(cfg Config) []*tree.Tree {
	n := cfg.size(120)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*tree.Tree
	for i := 0; i < 24; i++ {
		base := treegen.Random(rng, treegen.RandomSpec{
			Size: n/2 + rng.Intn(n), MaxDepth: 12, MaxFanout: 6, Labels: 32,
		})
		out = append(out, base, gen.RenameSome(base, 1+i%4, rng.Int63()))
	}
	return out
}

func storeExp(cfg Config) error {
	header(cfg, "store", "corpus Load hydration vs cold prepare + index build",
		"phase", "trees", "bytes_per_tree", "seconds", "speedup", "matches")

	trees := storeCorpusTrees(cfg)
	tau := 2.5 + float64(cfg.size(120))/10 // clears the planted renames at every scale

	// What a store-less server restarts from: the serialized source
	// trees. Cold must re-parse them before it can re-prepare and
	// re-index; that is exactly the work the persisted corpus replaces
	// with one binary decode.
	srcs := make([]string, len(trees))
	for i, t := range trees {
		srcs[i] = t.String()
	}
	build := func() *corpus.Corpus {
		c := corpus.New(corpus.WithHistogramIndex())
		for _, s := range srcs {
			t, err := tree.ParseBracket(s)
			if err != nil {
				panic(err)
			}
			c.Add(t)
		}
		return c
	}
	join := func(c *corpus.Corpus) ([]corpus.Match, batch.JoinStats) {
		e := c.Engine()
		return c.Join(e, tau, batch.JoinOptions{Mode: batch.IndexHistogram})
	}

	// The persisted blob comes from an untimed build: Save belongs to
	// neither side of the comparison.
	var buf bytes.Buffer
	if err := build().Save(&buf); err != nil {
		panic(err)
	}
	blob := buf.Bytes()

	// Both phases are timed to the ready-to-serve point (Corpus.Warm:
	// PreparedTrees hydrated, profiles in hand); the joins themselves run
	// untimed afterwards, purely as the correctness cross-check — their
	// GTED work is identical by construction and would only drown the
	// prepare/load difference under test.
	var coldMatches []corpus.Match
	var coldC *corpus.Corpus
	cold := bestOf(5, func() {
		coldC = build()
		coldC.Warm(coldC.Engine())
	})
	coldMatches, _ = join(coldC)

	var loadMatches []corpus.Match
	var loadC *corpus.Corpus
	load := bestOf(5, func() {
		c, err := corpus.Load(bytes.NewReader(blob))
		if err != nil {
			panic(err)
		}
		c.Warm(c.Engine())
		loadC = c
	})
	loadMatches, _ = join(loadC)

	nTrees := len(trees)
	bytesPerTree := len(blob) / nTrees
	speedup := cold.Seconds() / load.Seconds()
	fmt.Fprintf(cfg.Out, "cold\t%d\t%d\t%s\t\t%d\n", nTrees, bytesPerTree, secs(cold), len(coldMatches))
	fmt.Fprintf(cfg.Out, "load\t%d\t%d\t%s\t%.2fx\t%d\n", nTrees, bytesPerTree, secs(load), speedup, len(loadMatches))

	if len(coldMatches) != len(loadMatches) {
		return fmt.Errorf("store: cold join found %d matches, loaded corpus %d", len(coldMatches), len(loadMatches))
	}
	for i := range coldMatches {
		if coldMatches[i] != loadMatches[i] {
			return fmt.Errorf("store: match %d diverges: cold %+v, loaded %+v", i, coldMatches[i], loadMatches[i])
		}
	}
	if load >= cold {
		if raceEnabled {
			// Race instrumentation penalizes the two phases unevenly;
			// the correctness cross-check above is the meaningful part
			// of an instrumented run.
			fmt.Fprintf(cfg.Out, "# timing check skipped under the race detector (load %v, cold %v)\n", load, cold)
			return nil
		}
		if cold < 500*time.Microsecond {
			// At microscale (the test harness runs every experiment at
			// scale 0.05) both phases finish in a couple hundred
			// microseconds and allocator/scheduler noise dwarfs the
			// hydration-vs-recompute signal; the CI smoke run at scale
			// 0.25 is where the speedup gate is meaningful.
			fmt.Fprintf(cfg.Out, "# timing gate skipped at microscale (cold %v, load %v): noise dominates sub-500µs phases\n", cold, load)
			return nil
		}
		// One generous re-measure before declaring a regression: the
		// margin is real but smoke runs share noisy CI boxes.
		cold = bestOf(9, func() {
			coldC = build()
			coldC.Warm(coldC.Engine())
		})
		load = bestOf(9, func() {
			c, err := corpus.Load(bytes.NewReader(blob))
			if err != nil {
				panic(err)
			}
			c.Warm(c.Engine())
		})
		if load >= cold {
			return fmt.Errorf("store: Load hydration (%v) is not cheaper than cold parse+prepare+index (%v)", load, cold)
		}
	}
	return nil
}

// bestOf times fn over k runs and returns the fastest — the standard
// damping for scheduler and allocator noise in smoke-test timings.
func bestOf(k int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < k; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
