//go:build !race

package experiments

// raceEnabled reports whether the race detector instruments this build;
// see race_on.go.
const raceEnabled = false
