package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/tree"
	"repro/internal/treegen"
)

// Figure 10: overhead of the strategy computation within the overall
// RTED runtime, on TreeBank-like, SwissProt-like and synthetic random
// trees. For each size point a pair of trees of roughly that size is
// drawn from the dataset simulator and RTED is run; the table reports
// the strategy time, the total time and the overhead percentage. The
// paper's claim: the fraction decreases with the tree size and the
// strategy time is shape independent.

func init() {
	register("fig10a", "Figure 10(a) strategy overhead on TreeBank-like trees", func(cfg Config) error {
		rng := rand.New(rand.NewSource(cfg.Seed))
		return fig10(cfg, "fig10a", "Figure 10(a) TreeBank", func(n int) *tree.Tree {
			return treegen.TreeBankLike(rng, n)
		}, 300)
	})
	register("fig10b", "Figure 10(b) strategy overhead on SwissProt-like trees", func(cfg Config) error {
		rng := rand.New(rand.NewSource(cfg.Seed))
		return fig10(cfg, "fig10b", "Figure 10(b) SwissProt", func(n int) *tree.Tree {
			return treegen.SwissProtLike(rng, n)
		}, 2000)
	})
	register("fig10c", "Figure 10(c) strategy overhead on synthetic random trees", func(cfg Config) error {
		rng := rand.New(rand.NewSource(cfg.Seed))
		return fig10(cfg, "fig10c", "Figure 10(c) random", func(n int) *tree.Tree {
			return treegen.Random(rng, treegen.RandomSpec{Size: n, MaxDepth: 25, MaxFanout: 8, Labels: 16})
		}, 3000)
	})
}

func fig10(cfg Config, id, title string, build func(n int) *tree.Tree, hi int) error {
	header(cfg, id, title, "size", "strategy[s]", "overall[s]", "overhead%")
	var lastPct float64
	for _, n := range cfg.sizes(50, hi, 6) {
		f, g := build(n), build(n)
		r := core.RTED(f, g, cost.Unit{})
		pct := 100 * r.StrategyTime.Seconds() / r.TotalTime.Seconds()
		lastPct = pct
		avg := (f.Len() + g.Len()) / 2
		fmt.Fprintf(cfg.Out, "%d\t%s\t%s\t%.1f\n", avg, secs(r.StrategyTime), secs(r.TotalTime), pct)
	}
	_ = lastPct
	return nil
}
