package experiments

import (
	"fmt"
	"time"

	ted "repro"
	"repro/batch"
	"repro/internal/tree"
	"repro/internal/treegen"
)

// Ablation: band-compressed DP rows and sharper band pricing against
// PR 7's full-width banded rows, in two settings:
//
//   - pairwise, on near pairs (same shape family, slightly different
//     size) where the bounded DP succeeds at a narrow cutoff, so the
//     admissible band is a thin diagonal of each keyroot row. PR 7
//     banding already skips the cells outside it but still materializes
//     full-width rows; the sparse layout stores only the ≤ maxD+maxI+1
//     admissible cells per row, so at tight tau it must materialize
//     strictly fewer row cells and allocate strictly fewer bytes per
//     pair while touching the exact same subproblems and returning a
//     bit-identical distance. The sharp mode (per-region cost floors +
//     leaf-depth spectra) may only shrink the work further.
//   - join, sparse+sharp engine vs batch.New(batch.WithSparseRows(false),
//     batch.WithSharpBands(false)) on a mixed corpus: identical match
//     sets at every threshold — the regression guard the CI smoke step
//     executes.
//
// When cfg.ArtifactPath is set, the pairwise measurements are also
// written there as BENCH_gted.json (see GtedReport), the bounded
// kernel's machine-readable perf trajectory.

func init() {
	register("sparse", "Ablation: band-compressed rows + sharp pricing vs full-width banded rows", sparseExp)
}

// sparseMode is one row-layout / band-pricing configuration under test.
type sparseMode struct {
	name   string
	sparse bool
	sharp  bool
}

var sparseModes = []sparseMode{
	{"dense", false, false}, // PR 7 banding: full-width rows, global pricing
	{"sparse", true, false},
	{"sharp", true, true},
}

func sparseExp(cfg Config) error {
	header(cfg, "sparse", "band-compressed rows vs full-width banded rows",
		"section", "pair", "tau", "mode", "subs", "row_cells", "compressed_rows", "bytes", "ns", "verdict")

	// Near pairs: the same shape family at slightly different sizes, so
	// the exact distance (hence the interesting cutoff) is far below the
	// tree size and the band is thin. spfLR is forced (ZhangL) because
	// the row compression lives in the ΔL/ΔR kernel; ΔI rows stay dense
	// by design (see internal/gted/spfi.go).
	n := cfg.size(120)
	pairs := []struct {
		name string
		f, g *tree.Tree
	}{
		{"chain/chain+6", treegen.LeftBranch(n), treegen.LeftBranch(n + 6)},
		{"binary/binary+8", treegen.FullBinary(n), treegen.FullBinary(n + 8)},
		{"zigzag/zigzag+6", treegen.ZigZag(n), treegen.ZigZag(n + 6)},
		{"mixed/mixed+8", treegen.Mixed(n), treegen.Mixed(n + 8)},
	}

	report := &GtedReport{Bench: "gted", SchemaVersion: GtedSchemaVersion, Scale: cfg.Scale, Seed: cfg.Seed}
	const reps = 3

	for _, p := range pairs {
		d := ted.Distance(p.f, p.g, ted.WithAlgorithm(ted.ZhangL))
		// Tight: just above d, so the run succeeds inside a thin band.
		// Loose: well above d, where the band widens and compression
		// fades — included so the table shows the crossover, gated only
		// for agreement.
		for i, tau := range []float64{d + 2, d + float64(n)/2} {
			var st [3]ted.Stats
			var dist [3]float64
			var ok [3]bool
			var bytes [3]uint64
			var ns [3]float64
			for m, mode := range sparseModes {
				opts := []ted.Option{ted.WithAlgorithm(ted.ZhangL), ted.WithStats(&st[m]),
					ted.WithSparseRows(mode.sparse), ted.WithSharpBands(mode.sharp)}
				var total uint64
				start := time.Now()
				for rep := 0; rep < reps; rep++ {
					total += allocBytes(func() { dist[m], ok[m] = ted.DistanceBounded(p.f, p.g, tau, opts...) })
				}
				ns[m] = float64(time.Since(start).Nanoseconds()) / reps
				bytes[m] = total / reps
				verdict := "exceeds"
				if ok[m] {
					verdict = "exact"
				}
				fmt.Fprintf(cfg.Out, "pairwise\t%s\t%g\t%s\t%d\t%d\t%d\t%d\t%.0f\t%s\n",
					p.name, tau, mode.name, st[m].Subproblems, st[m].RowCells, st[m].CompressedRows,
					bytes[m], ns[m], verdict)
				if i == 0 {
					report.Scenarios = append(report.Scenarios, GtedScenario{
						Scenario: p.name, Nodes: n, Tau: tau, Mode: mode.name,
						Subproblems: st[m].Subproblems, RowCells: st[m].RowCells,
						CompressedRows: st[m].CompressedRows,
						NsPerOp:        ns[m], BytesPerOp: float64(bytes[m]),
					})
				}
			}
			// Bit-identical answers across all three modes, always.
			for m := 1; m < 3; m++ {
				if dist[m] != dist[0] || ok[m] != ok[0] {
					return fmt.Errorf("%s tau=%g: %s answered (%g, %v), dense (%g, %v)",
						p.name, tau, sparseModes[m].name, dist[m], ok[m], dist[0], ok[0])
				}
			}
			// The compressed layout changes storage, not the computation:
			// identical subproblem and band accounting to the dense rows.
			if st[1].Subproblems != st[0].Subproblems || st[1].BandSkippedCells != st[0].BandSkippedCells ||
				st[1].PrunedKeyroots != st[0].PrunedKeyroots {
				return fmt.Errorf("%s tau=%g: sparse accounting differs from dense (subs %d vs %d, band %d vs %d, keyroots %d vs %d)",
					p.name, tau, st[1].Subproblems, st[0].Subproblems, st[1].BandSkippedCells,
					st[0].BandSkippedCells, st[1].PrunedKeyroots, st[0].PrunedKeyroots)
			}
			// Sharp pricing may only shrink the work.
			if st[2].Subproblems > st[1].Subproblems {
				return fmt.Errorf("%s tau=%g: sharp evaluated %d subproblems, sparse %d",
					p.name, tau, st[2].Subproblems, st[1].Subproblems)
			}
			if st[0].CompressedRows != 0 {
				return fmt.Errorf("%s tau=%g: dense mode reports %d compressed rows", p.name, tau, st[0].CompressedRows)
			}
			// The acceptance guard: at the tight cutoff the compressed
			// layout must materialize strictly fewer row cells and allocate
			// strictly fewer bytes, not merely re-label the dense rows.
			// Below ~24 nodes the band covers the whole row and there is
			// nothing to compress, so tiny smoke scales check agreement only.
			if i == 0 && n >= 24 {
				if st[1].CompressedRows == 0 || st[1].RowCells >= st[0].RowCells {
					return fmt.Errorf("%s tau=%g: sparse rows saved nothing (%d vs %d cells, %d compressed rows)",
						p.name, tau, st[1].RowCells, st[0].RowCells, st[1].CompressedRows)
				}
				if bytes[1] >= bytes[0] {
					return fmt.Errorf("%s tau=%g: sparse allocated %d bytes/pair, dense %d",
						p.name, tau, bytes[1], bytes[0])
				}
			}
		}
	}

	// Join section: the sparse+sharp engine (the default) against one with
	// both toggles off, on a corpus of the near-pair shapes; identical
	// match sets required at every threshold.
	var corpus []*tree.Tree
	for _, p := range pairs {
		corpus = append(corpus, p.f, p.g)
	}
	se := batch.New()
	de := batch.New(batch.WithSparseRows(false), batch.WithSharpBands(false))
	sp := se.PrepareAll(corpus)
	dp := de.PrepareAll(corpus)
	for _, tau := range []float64{10, float64(n) / 2} {
		sm, sst := se.Join(sp, tau, true)
		dm, dst := de.Join(dp, tau, true)
		fmt.Fprintf(cfg.Out, "join\tcorpus\t%g\tsparse\t%d\t%d\t%d\t-\t-\t%d-matches\n",
			tau, sst.Subproblems, sst.RowCells, sst.CompressedRows, len(sm))
		if len(sm) != len(dm) {
			return fmt.Errorf("join tau=%g: sparse found %d matches, dense %d", tau, len(sm), len(dm))
		}
		for k := range dm {
			if dm[k].I != sm[k].I || dm[k].J != sm[k].J || dm[k].Dist != sm[k].Dist {
				return fmt.Errorf("join tau=%g: match %d differs: %+v vs %+v", tau, k, sm[k], dm[k])
			}
		}
		if sst.RowCells > dst.RowCells {
			return fmt.Errorf("join tau=%g: sparse materialized %d row cells, dense %d",
				tau, sst.RowCells, dst.RowCells)
		}
	}

	if cfg.ArtifactPath != "" {
		if err := report.Validate(); err != nil {
			return fmt.Errorf("BENCH_gted report: %w", err)
		}
		if err := report.WriteJSON(cfg.ArtifactPath); err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "# wrote %s (%d scenarios)\n", cfg.ArtifactPath, len(report.Scenarios))
	}
	return nil
}
