package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/strategy"
	"repro/internal/tree"
	"repro/internal/treegen"
)

// Table 2: on the TreeFam phylogeny dataset (simulated; see DESIGN.md
// §5), partition trees by size (<500, 500–1000, >1000), sample 20 trees
// per partition, and for every partition pair report the ratio of
// relevant subproblems computed by RTED with respect to (a) the best and
// (b) the worst competitor over all tree pairs of the two partitions.
// The paper's result: RTED is always below 100% of the best competitor
// and the advantage grows with tree size.

func init() {
	register("table2", "Table 2: RTED vs best/worst competitor on TreeFam-like partitions", table2)
}

func table2Partitions(cfg Config) [][]*tree.Tree {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample := 6
	if cfg.Scale >= 1 {
		sample = 20 // the paper's sample size
	}
	specs := []struct{ lo, hi int }{
		{cfg.size(100), cfg.size(499)},
		{cfg.size(500), cfg.size(999)},
		{cfg.size(1000), cfg.size(1800)},
	}
	parts := make([][]*tree.Tree, len(specs))
	for i, s := range specs {
		for k := 0; k < sample; k++ {
			n := s.lo
			if s.hi > s.lo {
				n += rng.Intn(s.hi - s.lo)
			}
			parts[i] = append(parts[i], treegen.TreeFamLike(rng, n))
		}
	}
	return parts
}

func table2(cfg Config) error {
	parts := table2Partitions(cfg)
	names := []string{"<500", "500-1000", ">1000"}

	decomps := make([][]*strategy.Decomp, len(parts))
	for i, p := range parts {
		for _, t := range p {
			decomps[i] = append(decomps[i], strategy.NewDecomp(t))
		}
	}

	type cell struct{ best, worst float64 }
	res := make([][]cell, len(parts))
	for i := range parts {
		res[i] = make([]cell, len(parts))
		for j := range parts {
			var rted, best, worst int64
			best = -1
			competitors := []func(f, g *tree.Tree) strategy.Named{
				func(f, g *tree.Tree) strategy.Named { return strategy.ZhangL() },
				func(f, g *tree.Tree) strategy.Named { return strategy.ZhangR() },
				func(f, g *tree.Tree) strategy.Named { return strategy.KleinH() },
				func(f, g *tree.Tree) strategy.Named { return strategy.DemaineH(f, g) },
			}
			// Sum counts over all cross-partition tree pairs, per
			// algorithm; the ratio compares the totals, with best/worst
			// picked per pair as in the paper ("the best and worst
			// competitors vary between the pairs of partitions").
			var sums [4]int64
			for a, f := range parts[i] {
				for b, g := range parts[j] {
					opt, c := strategy.Opt(f, g)
					_ = opt
					rted += c
					for k, mk := range competitors {
						sums[k] += strategy.CountD(f, g, decomps[i][a], decomps[j][b], mk(f, g)).Total
					}
				}
			}
			best, worst = sums[0], sums[0]
			for _, s := range sums[1:] {
				if s < best {
					best = s
				}
				if s > worst {
					worst = s
				}
			}
			res[i][j] = cell{
				best:  100 * float64(rted) / float64(best),
				worst: 100 * float64(rted) / float64(worst),
			}
			if rted > best {
				return fmt.Errorf("table2: RTED %d exceeds best competitor %d for %s×%s",
					rted, best, names[i], names[j])
			}
		}
	}

	header(cfg, "table2", "Table 2(a): RTED to the BEST competitor [%]", append([]string{"sizes"}, names...)...)
	for i := range res {
		fmt.Fprintf(cfg.Out, "%s", names[i])
		for j := range res[i] {
			fmt.Fprintf(cfg.Out, "\t%.1f", res[i][j].best)
		}
		fmt.Fprintln(cfg.Out)
	}
	header(cfg, "table2", "Table 2(b): RTED to the WORST competitor [%]", append([]string{"sizes"}, names...)...)
	for i := range res {
		fmt.Fprintf(cfg.Out, "%s", names[i])
		for j := range res[i] {
			fmt.Fprintf(cfg.Out, "\t%.1f", res[i][j].worst)
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}
