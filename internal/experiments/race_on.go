//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive assertions (the store ablation's speedup check) are
// skipped under it, since instrumentation distorts the compared phases
// unevenly. The uninstrumented CI smoke step still enforces them.
const raceEnabled = true
