package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/batch"
	"repro/corpus"
	"repro/load"
	"repro/server"
)

// Ablation: the serving layer end to end. A corpus goes behind the HTTP
// front-end (package server) exactly as cmd/tedd would run it — warmed
// corpus-attached engine, admission gate in front of the worker pool —
// and a handful of client goroutines fire the request mix of a serving
// workload: point distances between ad-hoc trees and stored ones,
// bounded distances, top-k probes, and corpus joins. The experiment
// reports request p50/p99 latency per endpoint and fails on any
// correctness divergence: every sampled HTTP answer is cross-checked
// against the in-process engine, and the HTTP join must match
// corpus.Join bit for bit. That makes it the CI smoke hook for the
// transport: marshalling, admission and handler plumbing cannot
// silently change an answer.
func init() {
	register("serve", "Ablation: HTTP serving layer request latency (p50/p99) + correctness", serveExp)
}

func serveExp(cfg Config) error {
	header(cfg, "serve", "HTTP serving layer request latency",
		"endpoint", "requests", "p50_ms", "p99_ms")

	trees := storeCorpusTrees(cfg)
	c := corpus.New(corpus.WithHistogramIndex())
	var ids []corpus.ID
	for _, t := range trees {
		ids = append(ids, c.Add(t))
	}
	srv := server.New(c, server.WithMaxInFlight(32))
	srv.Warm()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	e := srv.Engine()

	tau := 2.5 + float64(cfg.size(120))/10
	client := ts.Client()

	post := func(path string, req, out any) error {
		raw, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	// The distance mix: random stored-vs-stored and stored-vs-ad-hoc
	// pairs, every answer cross-checked in process.
	type sample struct {
		endpoint string
		d        time.Duration
		err      error
	}
	const clients = 4
	perClient := 12 + cfg.size(120)/4
	var mu sync.Mutex
	var samples []sample

	// The latency is captured immediately after the HTTP exchange; the
	// in-process cross-check that follows each request is correctness
	// work, not served time, and must not leak into the percentiles.
	record := func(endpoint string, d time.Duration, err error) {
		mu.Lock()
		samples = append(samples, sample{endpoint, d, err})
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(cl)))
			for i := 0; i < perClient; i++ {
				fi, gi := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
				fid, gid := int64(fi), int64(gi)
				switch i % 3 {
				case 0:
					var resp server.DistanceResponse
					start := time.Now()
					err := post("/v1/distance", server.DistanceRequest{
						F: server.TreeRef{ID: &fid}, G: server.TreeRef{ID: &gid},
					}, &resp)
					elapsed := time.Since(start)
					if err == nil {
						pf, _ := c.Prepared(e, fi)
						pg, _ := c.Prepared(e, gi)
						if want := e.Distance(pf, pg); resp.Dist != want {
							err = fmt.Errorf("distance(%d, %d) = %g over HTTP, %g in process", fi, gi, resp.Dist, want)
						}
					}
					record("distance", elapsed, err)
				case 1:
					adhoc := trees[rng.Intn(len(trees))]
					var resp server.DistanceBoundedResponse
					start := time.Now()
					err := post("/v1/distance-bounded", server.DistanceBoundedRequest{
						F: server.TreeRef{ID: &fid}, G: server.TreeRef{Tree: adhoc.String()},
						Tau: tau,
					}, &resp)
					elapsed := time.Since(start)
					if err == nil {
						pf, _ := c.Prepared(e, fi)
						d, within := e.DistanceBounded(pf, c.PrepareQuery(e, adhoc), tau)
						if resp.Within != within || resp.Dist != d {
							err = fmt.Errorf("bounded(%d, ad-hoc, %g) = (%g, %v) over HTTP, (%g, %v) in process",
								fi, tau, resp.Dist, resp.Within, d, within)
						}
					}
					record("bounded", elapsed, err)
				default:
					adhoc := trees[rng.Intn(len(trees))]
					var resp server.TopKResponse
					start := time.Now()
					err := post("/v1/topk", server.TopKRequest{
						Query: server.TreeRef{Tree: adhoc.String()}, K: 3,
					}, &resp)
					elapsed := time.Since(start)
					if err == nil {
						want, _ := c.TopKAcross(e, c.PrepareQuery(e, adhoc), 3)
						if len(resp.Matches) != len(want) {
							err = fmt.Errorf("topk returned %d matches, want %d", len(resp.Matches), len(want))
						} else {
							for k, m := range want {
								got := resp.Matches[k]
								if got.Tree != int64(m.Tree) || got.Root != m.Root || got.Dist != m.Dist {
									err = fmt.Errorf("topk match %d = %+v over HTTP, %+v in process", k, got, m)
									break
								}
							}
						}
					}
					record("topk", elapsed, err)
				}
			}
		}(cl)
	}
	wg.Wait()

	// One join over the whole corpus, checked against the in-process
	// answer bit for bit.
	var jr server.JoinResponse
	start := time.Now()
	err := post("/v1/join", server.JoinRequest{Tau: tau, Mode: "histogram"}, &jr)
	record("join", time.Since(start), err)
	if err == nil {
		want, _ := c.Join(e, tau, batch.JoinOptions{Mode: batch.IndexHistogram})
		if jr.Count != len(want) {
			return fmt.Errorf("serve: HTTP join found %d matches, in-process %d", jr.Count, len(want))
		}
		if !jr.Truncated && len(jr.Matches) != len(want) {
			return fmt.Errorf("serve: untruncated join carried %d of %d matches", len(jr.Matches), len(want))
		}
		// Compare the carried prefix (the response caps matches; Count
		// above pins the totals).
		for i, got := range jr.Matches {
			m := want[i]
			if got.I != int64(m.I) || got.J != int64(m.J) || got.Dist != m.Dist {
				return fmt.Errorf("serve: join match %d is %+v over HTTP, %+v in process", i, got, m)
			}
		}
	}

	// Aggregate per endpoint on the load harness's histogram (one
	// percentile implementation repo-wide — see package load). Any error
	// is the experiment's verdict: a correctness divergence or transport
	// failure fails the build, so a printed table always reports
	// zero-error runs.
	byEndpoint := map[string]*load.Hist{}
	for _, s := range samples {
		if s.err != nil {
			return fmt.Errorf("serve: %s: %v", s.endpoint, s.err)
		}
		h := byEndpoint[s.endpoint]
		if h == nil {
			h = &load.Hist{}
			byEndpoint[s.endpoint] = h
		}
		h.Observe(s.d)
	}
	for _, ep := range []string{"distance", "bounded", "topk", "join"} {
		h := byEndpoint[ep]
		if h == nil {
			continue
		}
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		fmt.Fprintf(cfg.Out, "%s\t%d\t%.2f\t%.2f\n",
			ep, h.Count(), ms(h.Quantile(0.5)), ms(h.Quantile(0.99)))
	}
	return nil
}
