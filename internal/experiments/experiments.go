// Package experiments regenerates every figure and table of the paper's
// evaluation (Section 8), plus the ablations DESIGN.md defines. Each
// experiment writes a plain-text table (tab-separated, with a header
// comment describing the paper artifact it reproduces) so results can be
// diffed, plotted, and recorded in EXPERIMENTS.md.
//
// Experiments accept a Config so the same code serves three consumers:
// the cmd/tedbench CLI (full grids), the test suite (tiny grids, shape
// assertions), and bench_test.go (one representative point per
// experiment).
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// Config scales an experiment run.
type Config struct {
	// Scale multiplies the size grids: 1.0 reproduces the paper's
	// ranges; smaller values shrink them proportionally (sizes are
	// clamped to a minimum of 8 nodes).
	Scale float64
	// Seed drives every generator in the experiment.
	Seed int64
	// Out receives the result table.
	Out io.Writer
	// ArtifactPath, when non-empty, is where experiments that emit a
	// machine-readable artifact write it (the sparse ablation's
	// BENCH_gted.json). Empty skips the artifact.
	ArtifactPath string
}

func (c Config) size(n int) int {
	s := int(float64(n) * c.Scale)
	if s < 8 {
		s = 8
	}
	return s
}

// sizes builds a size grid from lo to hi (scaled) in steps.
func (c Config) sizes(lo, hi, steps int) []int {
	lo, hi = c.size(lo), c.size(hi)
	if steps < 2 || hi <= lo {
		return []int{hi}
	}
	var out []int
	for i := 0; i < steps; i++ {
		out = append(out, lo+(hi-lo)*i/(steps-1))
	}
	return out
}

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Title string // the paper artifact it reproduces
	Run   func(cfg Config) error
}

var registry []Runner

func register(id, title string, run func(cfg Config) error) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by id.
func All() []Runner {
	out := append([]Runner(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// header prints the standard experiment preamble.
func header(cfg Config, id, title string, cols ...string) {
	fmt.Fprintf(cfg.Out, "# %s — %s\n", id, title)
	fmt.Fprintf(cfg.Out, "# scale=%.2f seed=%d\n", cfg.Scale, cfg.Seed)
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(cfg.Out, "\t")
		}
		fmt.Fprint(cfg.Out, c)
	}
	fmt.Fprintln(cfg.Out)
}

func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

// allocBytes runs fn and returns the heap bytes it allocated, as the
// delta of runtime.MemStats.TotalAlloc. TotalAlloc is cumulative and
// never decreases, so a GC between the two reads cannot skew the
// number; experiments run their measured calls on this goroutine alone,
// which makes the delta attributable to fn.
func allocBytes(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}
