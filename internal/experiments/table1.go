package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/join"
	"repro/internal/strategy"
	"repro/internal/tree"
	"repro/internal/treegen"
)

// Table 1: similarity self-join over T = {LB, RB, FB, ZZ, Random} with
// roughly equal sizes. Reports, per algorithm, the join runtime and the
// total number of relevant subproblems. The paper's result: RTED widely
// outperforms all competitors because fixed strategies degenerate on
// cross-shape pairs (e.g. Zhang-L on the LB×RB pair).

func init() {
	register("table1", "Table 1: join on trees with different shapes", table1)
}

func table1Trees(cfg Config) []*tree.Tree {
	n := cfg.size(1000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	return []*tree.Tree{
		treegen.LeftBranch(n),
		treegen.RightBranch(n),
		treegen.FullBinary(n),
		treegen.ZigZag(n),
		treegen.Random(rng, treegen.PaperRandom(n)),
	}
}

// Table1Algorithms enumerates the join competitors in the paper's row
// order with their strategy factories.
func Table1Algorithms() []struct {
	Name    string
	Factory join.StrategyFactory
} {
	mk := func(n func(f, g *tree.Tree) strategy.Named) join.StrategyFactory {
		return join.FixedFactory(n)
	}
	return []struct {
		Name    string
		Factory join.StrategyFactory
	}{
		{"Zhang-L", mk(func(f, g *tree.Tree) strategy.Named { return strategy.ZhangL() })},
		{"Zhang-R", mk(func(f, g *tree.Tree) strategy.Named { return strategy.ZhangR() })},
		{"Klein-H", mk(func(f, g *tree.Tree) strategy.Named { return strategy.KleinH() })},
		{"Demaine-H", mk(func(f, g *tree.Tree) strategy.Named { return strategy.DemaineH(f, g) })},
		{"RTED", join.RTEDFactory()},
	}
}

func table1(cfg Config) error {
	trees := table1Trees(cfg)
	tau := float64(cfg.size(1000)) / 2
	header(cfg, "table1", "Table 1: join on trees with different shapes",
		"algorithm", "time[s]", "subproblems", "matches")
	var rted, bestOther int64 = -1, -1
	for _, a := range Table1Algorithms() {
		r := join.SelfJoin(trees, tau, cost.Unit{}, a.Factory)
		fmt.Fprintf(cfg.Out, "%s\t%s\t%d\t%d\n", a.Name, secs(r.Elapsed), r.Subproblems, len(r.Pairs))
		if a.Name == "RTED" {
			rted = r.Subproblems
		} else if bestOther == -1 || r.Subproblems < bestOther {
			bestOther = r.Subproblems
		}
	}
	if rted > bestOther {
		return fmt.Errorf("table1: RTED subproblems %d exceed best competitor %d", rted, bestOther)
	}
	return nil
}
