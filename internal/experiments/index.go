package experiments

import (
	"fmt"
	"math/rand"

	"repro/batch"
	"repro/gen"
	"repro/internal/tree"
	"repro/internal/treegen"
)

// Ablation: index-accelerated candidate generation against the
// enumerate+filter join, on two corpora that bracket the design space:
//
//   - shapes: the paper's synthetic shape trees (Figure 7) at several
//     sizes. Every node carries the same label — the honest worst case
//     for signature indexes, where both degrade to size-only candidate
//     pruning (every pair shares labels and grams) and the win over
//     enumeration comes from the size bound alone.
//   - random: bounded random trees over a diverse alphabet plus
//     near-duplicate clusters. Labels discriminate strongly — the
//     histogram index's home turf, where it generates an order of
//     magnitude fewer candidates than enumeration visits.
//
// All three modes must report the identical match set (the JoinIndexed
// equivalence guarantee); a divergence or a candidate-count regression —
// an index that stops pruning its favourable regime — fails the run,
// which is what the CI smoke step executes.

func init() {
	register("index", "Ablation: indexed candidate generation vs enumerate+filter join", indexExp)
}

// indexCorpora builds the two corpora, scaled.
func indexCorpora(cfg Config) map[string][]*tree.Tree {
	n := cfg.size(160)
	var shapes []*tree.Tree
	for _, s := range []int{n, n + n/4, n + n/2, 2 * n} {
		shapes = append(shapes,
			treegen.LeftBranch(s),
			treegen.RightBranch(s),
			treegen.FullBinary(s),
			treegen.ZigZag(s),
			treegen.Mixed(s),
		)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var random []*tree.Tree
	for i := 0; i < 8; i++ {
		base := treegen.Random(rng, treegen.RandomSpec{
			Size: n + rng.Intn(n), MaxDepth: 12, MaxFanout: 6, Labels: 24,
		})
		random = append(random, base)
		// Two near-duplicates per base: rename a few nodes so each
		// cluster holds true matches.
		for v := 0; v < 2; v++ {
			random = append(random, gen.RenameSome(base, 2+v, rng.Int63()))
		}
	}
	return map[string][]*tree.Tree{"shapes": shapes, "random": random}
}

func indexExp(cfg Config) error {
	header(cfg, "index", "indexed candidate generation vs enumerate+filter",
		"corpus", "tau", "mode", "candidates", "lb_pruned", "ub_accepted", "exact", "matches", "seconds")

	corpora := indexCorpora(cfg)
	for _, name := range []string{"shapes", "random"} {
		trees := corpora[name]
		e := batch.New()
		ps := e.PrepareAll(trees)
		allPairs := len(trees) * (len(trees) - 1) / 2
		for _, tau := range []float64{float64(cfg.size(160)) / 8, float64(cfg.size(160)) / 2} {
			type run struct {
				mode    batch.IndexMode
				matches []batch.Match
				stats   batch.JoinStats
			}
			var runs []run
			for _, mode := range []batch.IndexMode{batch.IndexEnumerate, batch.IndexHistogram, batch.IndexPQGram} {
				ms, st := e.JoinIndexed(ps, tau, batch.JoinOptions{Mode: mode})
				runs = append(runs, run{mode, ms, st})
				fmt.Fprintf(cfg.Out, "%s\t%g\t%s\t%d\t%d\t%d\t%d\t%d\t%s\n",
					name, tau, mode, st.Comparisons, st.LowerPruned, st.UpperAccepted,
					st.ExactComputed, len(ms), secs(st.Elapsed))
			}
			base := runs[0]
			if base.stats.Comparisons != allPairs {
				return fmt.Errorf("%s tau=%g: enumeration visited %d pairs, want %d",
					name, tau, base.stats.Comparisons, allPairs)
			}
			for _, r := range runs[1:] {
				if len(r.matches) != len(base.matches) {
					return fmt.Errorf("%s tau=%g: %s found %d matches, enumerate+filter %d",
						name, tau, r.mode, len(r.matches), len(base.matches))
				}
				for k := range base.matches {
					if r.matches[k] != base.matches[k] {
						return fmt.Errorf("%s tau=%g: %s match %d = %+v, want %+v",
							name, tau, r.mode, k, r.matches[k], base.matches[k])
					}
				}
				if r.stats.Comparisons > base.stats.Comparisons {
					return fmt.Errorf("%s tau=%g: %s generated %d candidates, more than the %d enumerated pairs",
						name, tau, r.mode, r.stats.Comparisons, base.stats.Comparisons)
				}
			}
			// Regression guard on pruning power at the selective
			// threshold: the histogram must prune the label-diverse
			// corpus, and even in the single-label worst case both
			// indexes must still prune through their size bounds.
			if tau == float64(cfg.size(160))/8 {
				hist, pq := runs[1], runs[2]
				if name == "random" && hist.stats.Comparisons >= allPairs {
					return fmt.Errorf("random corpus: histogram index generated all %d pairs — no pruning", allPairs)
				}
				if name == "shapes" && (hist.stats.Comparisons >= allPairs || pq.stats.Comparisons >= allPairs) {
					return fmt.Errorf("shape corpus: index generated all %d pairs — size bound stopped pruning", allPairs)
				}
			}
		}
	}
	return nil
}
