package experiments

import (
	"fmt"
	"math/rand"

	ted "repro"
	"repro/batch"
	"repro/internal/tree"
	"repro/internal/treegen"
)

// Ablation: the structural band (tau-banded DP loops plus the
// keyroot-level band) against PR 3's slack-only per-cell pruning, in two
// settings:
//
//   - pairwise, on crafted single-label pairs where the cheap prefilter
//     bounds stay low (equal sizes, one shared label) but the height
//     offset is extreme — a chain against a balanced binary tree. The
//     per-cell slack test must walk every row to discover the cutoff;
//     the band skips whole loop ranges and the keyroot band refuses
//     whole subproblem DPs, so at small tau the banded run must evaluate
//     strictly fewer subproblems while returning a bit-identical answer.
//   - join, banded engine vs batch.New(batch.WithBanding(false)) on a
//     mixed corpus: identical match sets at every threshold, strictly
//     fewer banded subproblems at the small one — the regression guard
//     the CI smoke step executes.

func init() {
	register("band", "Ablation: structural banding (tau-banded DP + keyroot band) vs slack-only pruning", bandExp)
}

func bandExp(cfg Config) error {
	header(cfg, "band", "banded vs slack-only bounded DP",
		"section", "pair", "tau", "unbanded_subs", "banded_subs", "band_cells", "keyroots",
		"unbanded_bytes", "banded_bytes", "verdict")

	n := cfg.size(120)
	pairs := []struct {
		name string
		f, g *tree.Tree
	}{
		{"chain/binary", treegen.LeftBranch(n), treegen.FullBinary(n)},
		{"zigzag/binary", treegen.ZigZag(n), treegen.FullBinary(n)},
		{"chain/mixed", treegen.LeftBranch(n), treegen.Mixed(n)},
	}
	for _, p := range pairs {
		// Anchor tau just above the cheap prefilter bound so the DP (not
		// the prefilter) answers, at two scales: tight and loose.
		lb := ted.LowerBound(p.f, p.g)
		for i, tau := range []float64{lb + 2, lb + float64(n)/4} {
			// Each DistanceBounded call builds a fresh arena, so the
			// TotalAlloc delta around it is the per-pair allocation bill —
			// the attribution the sparse-row work optimizes.
			var bb, ub ted.Stats
			var bd, ud float64
			var bok, uok bool
			bBytes := allocBytes(func() {
				bd, bok = ted.DistanceBounded(p.f, p.g, tau, ted.WithStats(&bb))
			})
			uBytes := allocBytes(func() {
				ud, uok = ted.DistanceBounded(p.f, p.g, tau, ted.WithStats(&ub), ted.WithBanding(false))
			})
			verdict := "exceeds"
			if bok {
				verdict = "exact"
			}
			fmt.Fprintf(cfg.Out, "pairwise\t%s\t%g\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
				p.name, tau, ub.Subproblems, bb.Subproblems, bb.BandSkippedCells, bb.PrunedKeyroots,
				uBytes, bBytes, verdict)
			if bok != uok || bd != ud {
				return fmt.Errorf("%s tau=%g: banded (%g, %v), unbanded (%g, %v)", p.name, tau, bd, bok, ud, uok)
			}
			if ub.BandSkippedCells != 0 || ub.PrunedKeyroots != 0 {
				return fmt.Errorf("%s tau=%g: unbanded run reports band counters (%d cells, %d keyroots)",
					p.name, tau, ub.BandSkippedCells, ub.PrunedKeyroots)
			}
			if bb.Subproblems > ub.Subproblems {
				return fmt.Errorf("%s tau=%g: banded evaluated %d subproblems, unbanded %d",
					p.name, tau, bb.Subproblems, ub.Subproblems)
			}
			// The acceptance guard: at the tight cutoff the band must beat
			// slack-only pruning strictly, not merely re-count it. Below
			// ~24 nodes the height offsets shrink under the cutoff and
			// there is nothing structural left to skip, so tiny smoke
			// scales check agreement only.
			if i == 0 && n >= 24 && bb.Subproblems >= ub.Subproblems {
				return fmt.Errorf("%s tau=%g: band saved nothing (%d vs %d subproblems)",
					p.name, tau, bb.Subproblems, ub.Subproblems)
			}
		}
	}

	// Join section: the banded engine against an explicitly unbanded one
	// on a corpus mixing the crafted shapes with random trees; identical
	// match sets required at every threshold.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var corpus []*tree.Tree
	for _, p := range pairs {
		corpus = append(corpus, p.f, p.g)
	}
	for i := 0; i < 8; i++ {
		corpus = append(corpus, treegen.Random(rng, treegen.RandomSpec{
			Size: n/2 + rng.Intn(n), MaxDepth: 10, MaxFanout: 5, Labels: 6,
		}))
	}
	be := batch.New()
	ue := batch.New(batch.WithBanding(false))
	bp := be.PrepareAll(corpus)
	up := ue.PrepareAll(corpus)
	for i, tau := range []float64{float64(n) / 16, float64(n) / 2} {
		var banded, plain []batch.Match
		var bst, ust batch.JoinStats
		bBytes := allocBytes(func() { banded, bst = be.Join(bp, tau, true) })
		uBytes := allocBytes(func() { plain, ust = ue.Join(up, tau, true) })
		fmt.Fprintf(cfg.Out, "join\tcorpus\t%g\t%d\t%d\t%d\t%d\t%d\t%d\t%d-matches\n",
			tau, ust.Subproblems, bst.Subproblems, bst.BandSkippedCells, bst.PrunedKeyroots,
			uBytes, bBytes, len(banded))
		if len(plain) != len(banded) {
			return fmt.Errorf("join tau=%g: banded found %d matches, unbanded %d", tau, len(banded), len(plain))
		}
		for k := range plain {
			if plain[k].I != banded[k].I || plain[k].J != banded[k].J || plain[k].Dist != banded[k].Dist {
				return fmt.Errorf("join tau=%g: match %d differs: %+v vs %+v", tau, k, banded[k], plain[k])
			}
		}
		if bst.Subproblems > ust.Subproblems {
			return fmt.Errorf("join tau=%g: banded evaluated %d subproblems, unbanded %d",
				tau, bst.Subproblems, ust.Subproblems)
		}
		if i == 0 && n >= 24 && bst.Subproblems >= ust.Subproblems {
			return fmt.Errorf("join tau=%g: band saved nothing (%d vs %d subproblems)",
				tau, bst.Subproblems, ust.Subproblems)
		}
	}
	return nil
}
