package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every registered experiment at a tiny
// scale; each experiment's internal assertions (RTED never worse than
// the best competitor, optima consistent, etc.) run as part of it.
func TestAllExperimentsRun(t *testing.T) {
	if len(All()) != 25 {
		t.Fatalf("registered %d experiments, want 25", len(All()))
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := Config{Scale: 0.05, Seed: 7, Out: &buf}
			if err := r.Run(cfg); err != nil {
				t.Fatalf("%s failed: %v\noutput so far:\n%s", r.ID, err, buf.String())
			}
			out := buf.String()
			if !strings.HasPrefix(out, "# "+r.ID) {
				t.Fatalf("%s output missing header:\n%s", r.ID, out)
			}
			if lines := strings.Count(out, "\n"); lines < 4 {
				t.Fatalf("%s produced only %d lines", r.ID, lines)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table1"); !ok {
		t.Fatal("table1 not registered")
	}
	if _, ok := ByID("nonexistent"); ok {
		t.Fatal("bogus id found")
	}
}

func TestSizeGrid(t *testing.T) {
	cfg := Config{Scale: 1}
	g := cfg.sizes(100, 1000, 4)
	want := []int{100, 400, 700, 1000}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("grid %v want %v", g, want)
		}
	}
	cfg = Config{Scale: 0.001}
	for _, s := range cfg.sizes(100, 1000, 4) {
		if s < 8 {
			t.Fatalf("size %d below clamp", s)
		}
	}
}
