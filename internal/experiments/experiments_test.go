package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every registered experiment at a tiny
// scale; each experiment's internal assertions (RTED never worse than
// the best competitor, optima consistent, etc.) run as part of it.
func TestAllExperimentsRun(t *testing.T) {
	if len(All()) != 27 {
		t.Fatalf("registered %d experiments, want 27", len(All()))
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := Config{Scale: 0.05, Seed: 7, Out: &buf}
			if err := r.Run(cfg); err != nil {
				t.Fatalf("%s failed: %v\noutput so far:\n%s", r.ID, err, buf.String())
			}
			out := buf.String()
			if !strings.HasPrefix(out, "# "+r.ID) {
				t.Fatalf("%s output missing header:\n%s", r.ID, out)
			}
			if lines := strings.Count(out, "\n"); lines < 4 {
				t.Fatalf("%s produced only %d lines", r.ID, lines)
			}
		})
	}
}

// TestSparseArtifact runs the sparse ablation with an artifact path and
// checks the emitted BENCH_gted.json survives the read+validate path
// CI gates on.
func TestSparseArtifact(t *testing.T) {
	r, ok := ByID("sparse")
	if !ok {
		t.Fatal("sparse not registered")
	}
	path := t.TempDir() + "/BENCH_gted.json"
	var buf bytes.Buffer
	if err := r.Run(Config{Scale: 0.05, Seed: 7, Out: &buf, ArtifactPath: path}); err != nil {
		t.Fatalf("sparse failed: %v\n%s", err, buf.String())
	}
	rep, err := ReadGtedReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) == 0 {
		t.Fatal("artifact has no scenarios")
	}
	for _, s := range rep.Scenarios {
		if s.Mode == "dense" && s.CompressedRows != 0 {
			t.Fatalf("dense scenario %q reports compressed rows", s.Scenario)
		}
	}
	// A corrupted report must fail validation, not pass silently.
	bad := *rep
	bad.Scenarios = append([]GtedScenario(nil), rep.Scenarios...)
	bad.Scenarios[0].Mode = "bogus"
	if err := bad.Validate(); err == nil {
		t.Fatal("validation accepted a bogus mode")
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table1"); !ok {
		t.Fatal("table1 not registered")
	}
	if _, ok := ByID("nonexistent"); ok {
		t.Fatal("bogus id found")
	}
}

func TestSizeGrid(t *testing.T) {
	cfg := Config{Scale: 1}
	g := cfg.sizes(100, 1000, 4)
	want := []int{100, 400, 700, 1000}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("grid %v want %v", g, want)
		}
	}
	cfg = Config{Scale: 0.001}
	for _, s := range cfg.sizes(100, 1000, 4) {
		if s < 8 {
			t.Fatalf("size %d below clamp", s)
		}
	}
}
