package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gted"
	"repro/internal/strategy"
	"repro/internal/treegen"
	"repro/internal/zs"
)

// Figure 9: wall-clock runtime of the fastest algorithms — Zhang-L (the
// hard-coded classical implementation, as in the paper), Demaine-H (via
// GTED) and RTED — on identical pairs of full binary, zig-zag and mixed
// trees. Absolute numbers differ from the paper's 2011 Java/AMD setup;
// the reproduced claims are the relative orderings and growth shapes.

func init() {
	cases := []struct {
		id    string
		title string
		shape treegen.Shape
		hi    int
	}{
		{"fig9a", "Figure 9(a) runtime on full binary trees", treegen.ShapeFB, 1023},
		{"fig9b", "Figure 9(b) runtime on zig-zag trees", treegen.ShapeZZ, 2000},
		{"fig9c", "Figure 9(c) runtime on mixed trees", treegen.ShapeMX, 1600},
	}
	for _, c := range cases {
		c := c
		register(c.id, c.title, func(cfg Config) error { return fig9(cfg, c.id, c.title, c.shape, c.hi) })
	}
}

func fig9(cfg Config, id, title string, shape treegen.Shape, hi int) error {
	header(cfg, id, title, "size", "Zhang-L[s]", "Demaine-H[s]", "RTED[s]")
	for _, n := range cfg.sizes(200, hi, 5) {
		t := shape.Build(n)

		start := time.Now()
		zs.Run(t, t, cost.Unit{})
		zl := time.Since(start)

		start = time.Now()
		gted.New(t, t, cost.Unit{}, strategy.DemaineH(t, t)).Run()
		dh := time.Since(start)

		r := core.RTED(t, t, cost.Unit{})

		fmt.Fprintf(cfg.Out, "%d\t%s\t%s\t%s\n", t.Len(), secs(zl), secs(dh), secs(r.TotalTime))
	}
	return nil
}
