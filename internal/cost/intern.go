package cost

import (
	"fmt"
	"sync"

	"repro/internal/tree"
)

// This file implements the per-tree half of cost compilation, used by the
// batch engine: when many pairs over the same trees are computed, label
// interning and the per-node delete/insert cost vectors are per-tree
// quantities and need not be recomputed per pair. An Interner assigns
// label ids that are stable across every tree it has seen, so two PerTree
// halves compiled against the same interner can be assembled into a
// Compiled pair form without touching the labels again.

// Interner assigns stable integer ids to labels across many trees. It is
// safe for concurrent use: interning only happens on preparation paths
// (never on the distance hot path), and a corpus-attached interner is
// shared by every engine the corpus creates, so the serialization lives
// with the interner rather than with any one engine.
type Interner struct {
	mu     sync.Mutex
	ids    map[string]int
	labels []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int)}
}

// NewInternerFromTable returns an interner pre-seeded so that label
// Table()[i] has id i — the inverse of Table, used when a persisted label
// table is reloaded and stored per-node ids must stay valid. Duplicate
// labels in the table are an error (two ids for one label would make
// interning ambiguous).
func NewInternerFromTable(table []string) (*Interner, error) {
	in := &Interner{
		ids:    make(map[string]int, len(table)),
		labels: make([]string, len(table)),
	}
	copy(in.labels, table)
	for i, l := range table {
		if prev, ok := in.ids[l]; ok {
			return nil, fmt.Errorf("cost: label table entries %d and %d are both %q", prev, i, l)
		}
		in.ids[l] = i
	}
	return in, nil
}

// Intern returns the id of label l, assigning the next free id on first
// sight.
func (in *Interner) Intern(l string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.intern(l)
}

func (in *Interner) intern(l string) int {
	if id, ok := in.ids[l]; ok {
		return id
	}
	id := len(in.labels)
	in.ids[l] = id
	in.labels = append(in.labels, l)
	return id
}

// Table returns the id->label table interned so far. The result is a
// stable snapshot: ids only grow, so the table of a later snapshot
// extends an earlier one element for element.
func (in *Interner) Table() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.snapshot()
}

// snapshot returns the current id->label view with capacity clipped to
// its length, so later appends never write into a handed-out slice.
// Callers must hold in.mu.
func (in *Interner) snapshot() []string {
	return in.labels[:len(in.labels):len(in.labels)]
}

// Len returns the number of distinct labels interned so far.
func (in *Interner) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.labels)
}

// PerTree is the per-tree half of a compiled cost model: interned label
// ids plus the delete and insert cost of every node. Two halves compiled
// against the same Interner combine into a pair form with PairPrepared.
type PerTree struct {
	IDs []int     // interned label id per node (postorder)
	Del []float64 // cost of deleting each node
	Ins []float64 // cost of inserting each node

	// SubDelMin[v]/SubInsMin[v] are the cheapest Del/Ins over the subtree
	// rooted at v — the per-region price floors of bounded GTED's sharp
	// band pricing. Nil under the unit model (all floors are the global 1).
	SubDelMin []float64
	SubInsMin []float64

	// labels is a snapshot of the interner's id->label table taken at
	// compile time. It covers every id in IDs (ids grow monotonically, so
	// the later of two snapshots covers both trees of a pair).
	labels []string
	unit   bool
}

// CompileTree interns the labels of t and precomputes its per-node
// delete and insert costs under model m. The interner is locked once for
// the whole tree.
func CompileTree(m Model, t *tree.Tree, in *Interner) *PerTree {
	n := t.Len()
	p := &PerTree{
		IDs: make([]int, n),
		Del: make([]float64, n),
		Ins: make([]float64, n),
	}
	in.mu.Lock()
	for v := 0; v < n; v++ {
		l := t.Label(v)
		p.IDs[v] = in.intern(l)
		p.Del[v] = m.Delete(l)
		p.Ins[v] = m.Insert(l)
	}
	p.labels = in.snapshot()
	in.mu.Unlock()
	_, p.unit = m.(Unit)
	if !p.unit {
		p.SubDelMin = subtreeMin(t, p.Del)
		p.SubInsMin = subtreeMin(t, p.Ins)
	}
	return p
}

// CompileTreeFromIDs builds the per-tree compiled form from label ids
// that were already interned against in — the hydration path of a
// persisted corpus, which stores per-tree id arrays precisely so that
// reloading skips the per-node map lookups of CompileTree. Every id must
// be a valid id of in; the unit model never touches the label table, and
// other models read it once per node to price the operations.
func CompileTreeFromIDs(m Model, t *tree.Tree, ids []int32, in *Interner) (*PerTree, error) {
	n := t.Len()
	if len(ids) != n {
		return nil, fmt.Errorf("cost: %d label ids for a %d-node tree", len(ids), n)
	}
	p := &PerTree{
		IDs: make([]int, n),
		Del: make([]float64, n),
		Ins: make([]float64, n),
	}
	labels := in.Table()
	if _, unit := m.(Unit); unit {
		p.unit = true
		for v := 0; v < n; v++ {
			id := ids[v]
			if id < 0 || int(id) >= len(labels) {
				return nil, fmt.Errorf("cost: node %d has label id %d, interner holds %d labels", v, id, len(labels))
			}
			p.IDs[v] = int(id)
			p.Del[v] = 1
			p.Ins[v] = 1
		}
	} else {
		for v := 0; v < n; v++ {
			id := ids[v]
			if id < 0 || int(id) >= len(labels) {
				return nil, fmt.Errorf("cost: node %d has label id %d, interner holds %d labels", v, id, len(labels))
			}
			l := labels[id]
			p.IDs[v] = int(id)
			p.Del[v] = m.Delete(l)
			p.Ins[v] = m.Insert(l)
		}
	}
	if !p.unit {
		p.SubDelMin = subtreeMin(t, p.Del)
		p.SubInsMin = subtreeMin(t, p.Ins)
	}
	p.labels = labels
	return p, nil
}

// RenameMemo is a reusable rename-cost cache for non-unit models. Entries
// are keyed by interned label-id pairs, which are stable across every tree
// compiled against one Interner, so a memo owned by a worker stays valid
// for every pair that worker serves — the rename maps stop being a
// per-pair allocation and reach a steady state once the label vocabulary
// has been seen. The two orientations of a pair cache separately (a
// transposed rename swaps its arguments, so memo[x][y] means different
// costs in the two directions).
//
// A RenameMemo is bound to one (Interner, Model) combination; Reset it
// before reusing it with another.
type RenameMemo struct {
	fwd, rev map[[2]int]float64
}

// Reset empties the memo so it can serve a different interner or model.
func (rm *RenameMemo) Reset() {
	clear(rm.fwd)
	clear(rm.rev)
}

// PairPrepared assembles the Compiled form for the pair (f, g) from two
// per-tree halves that share an interner. Both orientations are built up
// front by slice sharing — no cost vector is copied — so GTED's
// right-hand-tree decompositions (which need the transposed direction)
// stay allocation-free. Non-unit models get fresh rename memos; batch
// workloads should use PairPreparedMemo to reuse them across pairs.
func PairPrepared(m Model, f, g *PerTree) *Compiled {
	return PairPreparedMemo(m, f, g, nil)
}

// PairPreparedMemo is PairPrepared drawing the rename memos of a non-unit
// model from rm, so a worker that serves many pairs through one memo
// caches rename costs across its whole stream instead of per pair. A nil
// rm allocates fresh memos (PairPrepared's behavior); under the unit
// model rm is not touched.
func PairPreparedMemo(m Model, f, g *PerTree, rm *RenameMemo) *Compiled {
	labels := f.labels
	if len(g.labels) > len(labels) {
		labels = g.labels
	}
	c := &Compiled{
		Del:    f.Del,
		Ins:    g.Ins,
		FID:    f.IDs,
		GID:    g.IDs,
		DelSub: f.SubDelMin,
		InsSub: g.SubInsMin,
		labels: labels,
		unit:   f.unit,
		model:  m,
	}
	t := &Compiled{
		Del:    g.Ins,
		Ins:    f.Del,
		FID:    g.IDs,
		GID:    f.IDs,
		DelSub: g.SubInsMin,
		InsSub: f.SubDelMin,
		labels: labels,
		unit:   f.unit,
		model:  transposed{m},
	}
	if !c.unit {
		if rm == nil {
			rm = &RenameMemo{}
		}
		if rm.fwd == nil {
			rm.fwd = make(map[[2]int]float64)
			rm.rev = make(map[[2]int]float64)
		}
		c.memo = rm.fwd
		t.memo = rm.rev
	}
	c.trans, t.trans = t, c
	return c
}
