package cost

import "repro/internal/tree"

// This file implements the per-tree half of cost compilation, used by the
// batch engine: when many pairs over the same trees are computed, label
// interning and the per-node delete/insert cost vectors are per-tree
// quantities and need not be recomputed per pair. An Interner assigns
// label ids that are stable across every tree it has seen, so two PerTree
// halves compiled against the same interner can be assembled into a
// Compiled pair form without touching the labels again.

// Interner assigns stable integer ids to labels across many trees. It is
// not safe for concurrent use; callers serialize Intern (the batch engine
// interns under its preparation lock and never on the distance hot path).
type Interner struct {
	ids    map[string]int
	labels []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int)}
}

// Intern returns the id of label l, assigning the next free id on first
// sight.
func (in *Interner) Intern(l string) int {
	if id, ok := in.ids[l]; ok {
		return id
	}
	id := len(in.labels)
	in.ids[l] = id
	in.labels = append(in.labels, l)
	return id
}

// Len returns the number of distinct labels interned so far.
func (in *Interner) Len() int { return len(in.labels) }

// PerTree is the per-tree half of a compiled cost model: interned label
// ids plus the delete and insert cost of every node. Two halves compiled
// against the same Interner combine into a pair form with PairPrepared.
type PerTree struct {
	IDs []int     // interned label id per node (postorder)
	Del []float64 // cost of deleting each node
	Ins []float64 // cost of inserting each node

	// labels is a snapshot of the interner's id->label table taken at
	// compile time. It covers every id in IDs (ids grow monotonically, so
	// the later of two snapshots covers both trees of a pair).
	labels []string
	unit   bool
}

// CompileTree interns the labels of t and precomputes its per-node
// delete and insert costs under model m.
func CompileTree(m Model, t *tree.Tree, in *Interner) *PerTree {
	n := t.Len()
	p := &PerTree{
		IDs: make([]int, n),
		Del: make([]float64, n),
		Ins: make([]float64, n),
	}
	for v := 0; v < n; v++ {
		l := t.Label(v)
		p.IDs[v] = in.Intern(l)
		p.Del[v] = m.Delete(l)
		p.Ins[v] = m.Insert(l)
	}
	p.labels = in.labels
	_, p.unit = m.(Unit)
	return p
}

// RenameMemo is a reusable rename-cost cache for non-unit models. Entries
// are keyed by interned label-id pairs, which are stable across every tree
// compiled against one Interner, so a memo owned by a worker stays valid
// for every pair that worker serves — the rename maps stop being a
// per-pair allocation and reach a steady state once the label vocabulary
// has been seen. The two orientations of a pair cache separately (a
// transposed rename swaps its arguments, so memo[x][y] means different
// costs in the two directions).
//
// A RenameMemo is bound to one (Interner, Model) combination; Reset it
// before reusing it with another.
type RenameMemo struct {
	fwd, rev map[[2]int]float64
}

// Reset empties the memo so it can serve a different interner or model.
func (rm *RenameMemo) Reset() {
	clear(rm.fwd)
	clear(rm.rev)
}

// PairPrepared assembles the Compiled form for the pair (f, g) from two
// per-tree halves that share an interner. Both orientations are built up
// front by slice sharing — no cost vector is copied — so GTED's
// right-hand-tree decompositions (which need the transposed direction)
// stay allocation-free. Non-unit models get fresh rename memos; batch
// workloads should use PairPreparedMemo to reuse them across pairs.
func PairPrepared(m Model, f, g *PerTree) *Compiled {
	return PairPreparedMemo(m, f, g, nil)
}

// PairPreparedMemo is PairPrepared drawing the rename memos of a non-unit
// model from rm, so a worker that serves many pairs through one memo
// caches rename costs across its whole stream instead of per pair. A nil
// rm allocates fresh memos (PairPrepared's behavior); under the unit
// model rm is not touched.
func PairPreparedMemo(m Model, f, g *PerTree, rm *RenameMemo) *Compiled {
	labels := f.labels
	if len(g.labels) > len(labels) {
		labels = g.labels
	}
	c := &Compiled{
		Del:    f.Del,
		Ins:    g.Ins,
		FID:    f.IDs,
		GID:    g.IDs,
		labels: labels,
		unit:   f.unit,
		model:  m,
	}
	t := &Compiled{
		Del:    g.Ins,
		Ins:    f.Del,
		FID:    g.IDs,
		GID:    f.IDs,
		labels: labels,
		unit:   f.unit,
		model:  transposed{m},
	}
	if !c.unit {
		if rm == nil {
			rm = &RenameMemo{}
		}
		if rm.fwd == nil {
			rm.fwd = make(map[[2]int]float64)
			rm.rev = make(map[[2]int]float64)
		}
		c.memo = rm.fwd
		t.memo = rm.rev
	}
	c.trans, t.trans = t, c
	return c
}
