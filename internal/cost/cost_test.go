package cost

import (
	"testing"

	"repro/internal/tree"
)

func TestUnit(t *testing.T) {
	var u Unit
	if u.Delete("a") != 1 || u.Insert("b") != 1 {
		t.Fatal("unit del/ins")
	}
	if u.Rename("a", "a") != 0 || u.Rename("a", "b") != 1 {
		t.Fatal("unit rename")
	}
}

func TestCompile(t *testing.T) {
	f := tree.MustParseBracket("{a{b}{a}}")
	g := tree.MustParseBracket("{b{c}}")
	c := Compile(Unit{}, f, g)
	// Interning: both "a" nodes of f share an id; "b" is shared across trees.
	if c.FID[0] != c.GID[1] { // f's leaf b (post 0), g's root b (post 1)
		t.Fatalf("label ids not shared: %v %v", c.FID, c.GID)
	}
	if c.FID[1] != c.FID[2] {
		t.Fatalf("equal labels in one tree differ: %v", c.FID)
	}
	if c.Ren(1, 1) != 1 || c.Ren(0, 1) != 0 {
		t.Fatal("compiled rename wrong")
	}
	if c.Del[0] != 1 || c.Ins[0] != 1 {
		t.Fatal("compiled del/ins wrong")
	}
}

func TestCompileWeighted(t *testing.T) {
	f := tree.MustParseBracket("{a{b}}")
	g := tree.MustParseBracket("{c}")
	w := Weighted{DeleteW: 2, InsertW: 3, RenameW: 5}
	c := Compile(w, f, g)
	if c.Del[0] != 2 || c.Ins[0] != 3 {
		t.Fatal("weighted del/ins")
	}
	if c.Ren(0, 0) != 5 {
		t.Fatal("weighted rename")
	}
	// Memoized second call returns the same value.
	if c.Ren(0, 0) != 5 {
		t.Fatal("memoized rename")
	}
}

// TestTranspose checks the direction-reversal semantics: deleting in the
// transposed direction must cost what inserting cost originally, and
// renames must swap arguments.
func TestTranspose(t *testing.T) {
	f := tree.MustParseBracket("{a}")
	g := tree.MustParseBracket("{b{c}}")
	asym := Func{
		DeleteF: func(l string) float64 { return 10 },
		InsertF: func(l string) float64 { return 20 },
		RenameF: func(a, b string) float64 {
			if a == "a" && b == "b" {
				return 1
			}
			return 7
		},
	}
	c := Compile(asym, f, g)
	ct := c.Transpose()
	// G-side deletions in the transposed direction = original insert cost.
	for i := range ct.Del {
		if ct.Del[i] != 20 {
			t.Fatalf("transposed Del[%d]=%v want 20", i, ct.Del[i])
		}
	}
	for i := range ct.Ins {
		if ct.Ins[i] != 10 {
			t.Fatalf("transposed Ins[%d]=%v want 10", i, ct.Ins[i])
		}
	}
	// Rename in the transposed direction (G-node, F-node) = cr(F, G):
	// ct.Ren(g-root "b", f-root "a") must be cr("a","b") = 1.
	if got := ct.Ren(1, 0); got != 1 {
		t.Fatalf("transposed rename = %v want 1", got)
	}
	if got := c.Ren(0, 1); got != 1 {
		t.Fatalf("original rename = %v want 1", got)
	}
}

func TestFuncModel(t *testing.T) {
	m := Func{
		DeleteF: func(l string) float64 { return float64(len(l)) },
		InsertF: func(l string) float64 { return 1 },
		RenameF: func(a, b string) float64 { return 0.5 },
	}
	if m.Delete("abc") != 3 || m.Insert("x") != 1 || m.Rename("a", "b") != 0.5 {
		t.Fatal("func model dispatch")
	}
}

// TestRenameMemoReuse pins the arena-ization of the rename maps: two
// pairs assembled through the same RenameMemo must resolve a rename the
// first pair already paid for without consulting the model again, in both
// orientations.
func TestRenameMemoReuse(t *testing.T) {
	f := tree.MustParseBracket("{a{b}}")
	g := tree.MustParseBracket("{b{c}}")
	calls := 0
	m := Func{
		DeleteF: func(string) float64 { return 1 },
		InsertF: func(string) float64 { return 1 },
		RenameF: func(a, b string) float64 { calls++; return 2 },
	}
	in := NewInterner()
	pf, pg := CompileTree(m, f, in), CompileTree(m, g, in)

	var rm RenameMemo
	c1 := PairPreparedMemo(m, pf, pg, &rm)
	c1.Ren(1, 1)             // a -> b, forward
	c1.Transpose().Ren(1, 1) // b -> a, reverse
	if calls != 2 {
		t.Fatalf("cold pair consulted the model %d times, want 2", calls)
	}
	c2 := PairPreparedMemo(m, pf, pg, &rm)
	c2.Ren(1, 1)
	c2.Transpose().Ren(1, 1)
	if calls != 2 {
		t.Fatalf("warm pair consulted the model (%d calls total, want 2)", calls)
	}
	rm.Reset()
	c3 := PairPreparedMemo(m, pf, pg, &rm)
	c3.Ren(1, 1)
	if calls != 3 {
		t.Fatalf("reset memo did not re-consult the model (%d calls, want 3)", calls)
	}
}

// TestPairPreparedNilMemo checks that the nil-memo path (the sequential
// API) still memoizes within one pair.
func TestPairPreparedNilMemo(t *testing.T) {
	f := tree.MustParseBracket("{a}")
	g := tree.MustParseBracket("{b}")
	calls := 0
	m := Func{
		DeleteF: func(string) float64 { return 1 },
		InsertF: func(string) float64 { return 1 },
		RenameF: func(a, b string) float64 { calls++; return 2 },
	}
	in := NewInterner()
	c := PairPreparedMemo(m, CompileTree(m, f, in), CompileTree(m, g, in), nil)
	c.Ren(0, 0)
	c.Ren(0, 0)
	if calls != 1 {
		t.Fatalf("within-pair memo consulted the model %d times, want 1", calls)
	}
}
