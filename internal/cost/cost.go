// Package cost defines node edit cost models for the tree edit distance
// and the compiled per-tree-pair form the algorithms consume.
//
// The paper (Section 2.2) uses three edit operations with costs cd(v)
// for deleting node v, ci(w) for inserting node w and cr(v, w) for
// renaming v's label to w's. The experiments use the unit cost model:
// cd = ci = 1 and cr = 0 if the labels match, 1 otherwise.
package cost

import (
	"math"

	"repro/internal/tree"
)

// Model assigns costs to the three edit operations based on node labels.
// Implementations must return non-negative values; Rename(a, a) should be
// 0 for the distance to satisfy the identity axiom.
type Model interface {
	// Delete returns the cost of deleting a node labeled label.
	Delete(label string) float64
	// Insert returns the cost of inserting a node labeled label.
	Insert(label string) float64
	// Rename returns the cost of renaming label a to label b.
	Rename(a, b string) float64
}

// Unit is the standard unit cost model used throughout the paper's
// experiments: deletions and insertions cost 1, renames cost 0 when the
// labels are equal and 1 otherwise.
type Unit struct{}

func (Unit) Delete(string) float64 { return 1 }
func (Unit) Insert(string) float64 { return 1 }
func (Unit) Rename(a, b string) float64 {
	if a == b {
		return 0
	}
	return 1
}

// Weighted scales the three operations by fixed weights. The rename
// weight is charged only when labels differ.
type Weighted struct {
	DeleteW float64
	InsertW float64
	RenameW float64
}

func (w Weighted) Delete(string) float64 { return w.DeleteW }
func (w Weighted) Insert(string) float64 { return w.InsertW }
func (w Weighted) Rename(a, b string) float64 {
	if a == b {
		return 0
	}
	return w.RenameW
}

// Func adapts three closures to the Model interface.
type Func struct {
	DeleteF func(string) float64
	InsertF func(string) float64
	RenameF func(a, b string) float64
}

func (f Func) Delete(l string) float64    { return f.DeleteF(l) }
func (f Func) Insert(l string) float64    { return f.InsertF(l) }
func (f Func) Rename(a, b string) float64 { return f.RenameF(a, b) }

// Compiled is the per-tree-pair compiled form of a cost model: delete and
// insert costs are precomputed per node, labels of both trees are interned
// into shared integer ids so the hot rename path compares ints, and
// rename costs between distinct labels go through a small memo keyed by
// the label-id pair.
//
// Node indices follow the postorder ids of the two trees (F = left tree,
// G = right tree).
type Compiled struct {
	Del []float64 // Del[v]: cost of deleting F-node v
	Ins []float64 // Ins[w]: cost of inserting G-node w
	FID []int     // interned label id per F-node
	GID []int     // interned label id per G-node

	// DelSub[v] is the cheapest Del over the subtree rooted at F-node v,
	// and InsSub[w] the cheapest Ins over the subtree rooted at G-node w —
	// the per-region price floors that let bounded GTED width its
	// structural band from the label set actually present in a subtree
	// instead of the global minimum. Nil under the unit model, where every
	// region floor equals the global 1.
	DelSub []float64
	InsSub []float64

	labels []string // id -> label
	unit   bool
	model  Model
	memo   map[[2]int]float64
	trans  *Compiled // prebuilt transposed form, if any (see PairPrepared)
}

// subtreeMin folds per-node costs into per-subtree minima: out[v] is the
// cheapest cost among the nodes of the subtree rooted at v. Postorder
// guarantees children precede parents, so one forward pass suffices.
func subtreeMin(t *tree.Tree, costs []float64) []float64 {
	out := make([]float64, len(costs))
	for v := range costs {
		m := costs[v]
		for _, c := range t.Children(v) {
			if out[c] < m {
				m = out[c]
			}
		}
		out[v] = m
	}
	return out
}

// Compile interns labels of f and g and precomputes per-node delete and
// insert costs for model m.
func Compile(m Model, f, g *tree.Tree) *Compiled {
	c := &Compiled{
		Del:   make([]float64, f.Len()),
		Ins:   make([]float64, g.Len()),
		FID:   make([]int, f.Len()),
		GID:   make([]int, g.Len()),
		model: m,
	}
	if _, ok := m.(Unit); ok {
		c.unit = true
	} else {
		c.memo = make(map[[2]int]float64)
	}
	ids := make(map[string]int, f.Len()+g.Len())
	intern := func(l string) int {
		if id, ok := ids[l]; ok {
			return id
		}
		id := len(c.labels)
		ids[l] = id
		c.labels = append(c.labels, l)
		return id
	}
	for v := 0; v < f.Len(); v++ {
		l := f.Label(v)
		c.FID[v] = intern(l)
		c.Del[v] = m.Delete(l)
	}
	for w := 0; w < g.Len(); w++ {
		l := g.Label(w)
		c.GID[w] = intern(l)
		c.Ins[w] = m.Insert(l)
	}
	if !c.unit {
		c.DelSub = subtreeMin(f, c.Del)
		c.InsSub = subtreeMin(g, c.Ins)
	}
	return c
}

// IsUnit reports whether the compiled model is the unit cost model, whose
// float64 arithmetic is exact (all values are small integers). Bounded
// GTED uses this to decide whether cutoff comparisons need a rounding pad.
func (c *Compiled) IsUnit() bool { return c.unit }

// Ren returns the rename cost between F-node v and G-node w.
func (c *Compiled) Ren(v, w int) float64 {
	a, b := c.FID[v], c.GID[w]
	if c.unit {
		if a == b {
			return 0
		}
		return 1
	}
	return c.renByID(a, b)
}

// renByID prices a rename by interned label ids through the memo.
// Identical labels still consult the model: a custom model may charge a
// nonzero self-rename (which breaks the identity axiom but is the model
// author's choice).
func (c *Compiled) renByID(a, b int) float64 {
	key := [2]int{a, b}
	if r, ok := c.memo[key]; ok {
		return r
	}
	r := c.model.Rename(c.labels[a], c.labels[b])
	c.memo[key] = r
	return r
}

// RenFloors returns the per-subtree rename floors of the forward
// orientation: out[v] is the cheapest Rename(a, b) over any label a
// present in the subtree of f rooted at v and any label b present
// anywhere in G — a lower bound on the cost of any single rename whose
// source node lies in F_v. The G-side floors of a pair (a lower bound on
// renames whose target lands in G_w) are c.Transpose().RenFloors(g),
// since the transposed orientation swaps the rename arguments.
//
// The floors feed the keyroot-level band of bounded GTED: under a model
// that charges every available rename at least r > 0, matching nodes is
// no longer free, so a pair's size bound tightens from |Δsize|·c_min to
// a price on all max(|F_v|, |G_w|) nodes. Nil under the unit model,
// where Rename(a, a) = 0 makes every floor 0 as soon as the trees share
// one label — a structural question this per-label-pair pricing does
// not answer. f must be the F tree the Compiled form was built for.
func (c *Compiled) RenFloors(f *tree.Tree) []float64 {
	if c.unit {
		return nil
	}
	// Distinct G label ids, each priced once per distinct F label: the
	// whole table costs O(distinct_F × distinct_G) model calls, all
	// memoized for the DP that follows.
	seen := make(map[int]struct{}, 16)
	var gids []int
	for _, b := range c.GID {
		if _, ok := seen[b]; !ok {
			seen[b] = struct{}{}
			gids = append(gids, b)
		}
	}
	fmin := make(map[int]float64, 16)
	per := make([]float64, len(c.FID))
	for v, a := range c.FID {
		m, ok := fmin[a]
		if !ok {
			m = math.Inf(1)
			for _, b := range gids {
				if r := c.renByID(a, b); r < m {
					m = r
				}
			}
			fmin[a] = m
		}
		per[v] = m
	}
	return subtreeMin(f, per)
}

// Transpose returns the compiled costs for the swapped direction: the
// distance δ(G, F) with the transposed model equals δ(F, G) with the
// original model. An edit script from F to G maps to the reverse script
// from G to F, so deleting a G-node in the transposed direction costs
// what inserting it cost originally, inserting an F-node costs its
// original deletion, and renames swap their arguments. GTED uses the
// transposed form when the strategy decomposes the right-hand tree.
func (c *Compiled) Transpose() *Compiled {
	if c.trans != nil {
		return c.trans
	}
	t := &Compiled{
		Del: make([]float64, len(c.Ins)),
		Ins: make([]float64, len(c.Del)),
		FID: c.GID,
		GID: c.FID,
		// Transposed deletions are original insertions and vice versa, so
		// the per-subtree price floors swap roles unchanged.
		DelSub: c.InsSub,
		InsSub: c.DelSub,
		labels: c.labels,
		unit:   c.unit,
		model:  transposed{c.model},
		memo:   nil,
	}
	if !t.unit {
		t.memo = make(map[[2]int]float64)
	}
	copy(t.Del, c.Ins)
	copy(t.Ins, c.Del)
	return t
}

// transposed swaps the rename arguments; deleting in the transposed
// direction is inserting in the original one and vice versa.
type transposed struct{ m Model }

func (t transposed) Delete(l string) float64    { return t.m.Insert(l) }
func (t transposed) Insert(l string) float64    { return t.m.Delete(l) }
func (t transposed) Rename(a, b string) float64 { return t.m.Rename(b, a) }
