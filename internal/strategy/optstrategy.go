package strategy

import (
	"math"

	"repro/internal/tree"
)

// AllLRH allows all six decomposition choices; it is the default
// restriction for OptStrategy and yields the paper's RTED strategy.
var AllLRH = [numChoices]bool{true, true, true, true, true, true}

// LROnly restricts the strategy search to left and right paths (the
// Zhang–Shasha family); used by the ablation experiments.
var LROnly = [numChoices]bool{LeftF: true, LeftG: true, RightF: true, RightG: true}

// HOnly restricts the search to heavy paths (the Klein/Demaine family).
var HOnly = [numChoices]bool{HeavyF: true, HeavyG: true}

// Opt computes the optimal LRH strategy for the pair (f, g) and the exact
// number of relevant subproblems GTED computes with it. It is a direct
// implementation of Algorithm 2 (OptStrategy) and runs in O(|f|·|g|) time
// and space.
func Opt(f, g *tree.Tree) (*Array, int64) {
	return OptRestricted(f, g, AllLRH)
}

// OptRestricted is Opt with the candidate set restricted to the allowed
// choices; at least one choice must be allowed. Restrictions support the
// ablation experiments (e.g. "how much do heavy paths buy over {L,R}?").
func OptRestricted(f, g *tree.Tree, allowed [numChoices]bool) (*Array, int64) {
	df, dg := NewDecomp(f), NewDecomp(g)
	return optWithDecomp(f, g, df, dg, allowed)
}

// OptD is Opt with caller-precomputed decompositions, so that a batch of
// pairs over the same trees computes each tree's Decomp once.
func OptD(f, g *tree.Tree, df, dg *Decomp) (*Array, int64) {
	return optWithDecomp(f, g, df, dg, AllLRH)
}

// OptScratch holds the O(|f|·|g|) working memory of OptStrategy for
// reuse across pairs. Buffers grow to the largest pair served; the
// returned strategy Array is owned by the scratch and is overwritten by
// the next call, so it must not be retained after the pair's GTED run.
type OptScratch struct {
	lv, rv, hv []int64
	lw, rw, hw []int64
	arr        Array
}

// Opt computes the optimal LRH strategy for (f, g) like OptD, drawing
// all working memory (including the returned Array) from the scratch.
func (s *OptScratch) Opt(f, g *tree.Tree, df, dg *Decomp) (*Array, int64) {
	nf, ng := f.Len(), g.Len()
	s.lv = growScratch(s.lv, nf*ng)
	s.rv = growScratch(s.rv, nf*ng)
	s.hv = growScratch(s.hv, nf*ng)
	s.lw = growScratch(s.lw, ng)
	s.rw = growScratch(s.rw, ng)
	s.hw = growScratch(s.hw, ng)
	// lv/rv/hv accumulate with += and must start zeroed; lw/rw/hw are
	// reset at the top of every v-iteration by the main loop.
	for i := range s.lv {
		s.lv[i], s.rv[i], s.hv[i] = 0, 0, 0
	}
	if cap(s.arr.Choices) < nf*ng {
		s.arr.Choices = make([]Choice, nf*ng)
	}
	s.arr = Array{NF: nf, NG: ng, Choices: s.arr.Choices[:nf*ng], name: "RTED"}
	cost := optCore(f, g, df, dg, AllLRH, &s.arr, s.lv, s.rv, s.hv, s.lw, s.rw, s.hw)
	return &s.arr, cost
}

// growScratch resizes an int64 scratch buffer, reusing capacity; the
// contents are unspecified.
func growScratch(b []int64, n int) []int64 {
	if cap(b) < n {
		return make([]int64, n)
	}
	return b[:n]
}

func optWithDecomp(f, g *tree.Tree, df, dg *Decomp, allowed [numChoices]bool) (*Array, int64) {
	nf, ng := f.Len(), g.Len()
	str := NewArray(nf, ng, "RTED")

	// Cost-sum arrays. Lv/Rv/Hv[v*ng+w] accumulate
	// Σ_{F' ∈ F_v − γ} cost(F', G_w) for the left/right/heavy path of
	// F_v; Lw/Rw/Hw[w] accumulate the symmetric sums for the current v.
	lv := make([]int64, nf*ng)
	rv := make([]int64, nf*ng)
	hv := make([]int64, nf*ng)
	lw := make([]int64, ng)
	rw := make([]int64, ng)
	hw := make([]int64, ng)
	cost := optCore(f, g, df, dg, allowed, str, lv, rv, hv, lw, rw, hw)
	return str, cost
}

func optCore(f, g *tree.Tree, df, dg *Decomp, allowed [numChoices]bool, str *Array, lv, rv, hv, lw, rw, hw []int64) int64 {
	nf, ng := f.Len(), g.Len()

	var cmin int64
	for v := 0; v < nf; v++ {
		// The w-side sums are per-v quantities: they accumulate costs of
		// pairs (F_v, G') for relevant subtrees G' of G_w, so they must
		// restart for every v. (The paper's pseudocode only spells out
		// the leaf reset; internal entries are accumulated with += and
		// would otherwise leak across v-iterations.)
		for w := range lw {
			lw[w], rw[w], hw[w] = 0, 0, 0
		}
		szv := int64(f.Size(v))
		pv := f.Parent(v)
		idxRow := v * ng
		for w := 0; w < ng; w++ {
			szw := int64(g.Size(w))
			idx := idxRow + w

			// The six candidate costs (Algorithm 2 lines 7–12), scanned
			// in the paper's order so ties resolve identically.
			cmin = math.MaxInt64
			best := HeavyF
			if allowed[HeavyF] {
				cmin = szv*dg.A[w] + hv[idx]
			}
			if allowed[HeavyG] {
				if c := szw*df.A[v] + hw[w]; c < cmin {
					cmin, best = c, HeavyG
				}
			}
			if allowed[LeftF] {
				if c := szv*dg.FL[w] + lv[idx]; c < cmin {
					cmin, best = c, LeftF
				}
			}
			if allowed[LeftG] {
				if c := szw*df.FL[v] + lw[w]; c < cmin {
					cmin, best = c, LeftG
				}
			}
			if allowed[RightF] {
				if c := szv*dg.FR[w] + rv[idx]; c < cmin {
					cmin, best = c, RightF
				}
			}
			if allowed[RightG] {
				if c := szw*df.FR[v] + rw[w]; c < cmin {
					cmin, best = c, RightG
				}
			}
			str.Choices[idx] = best

			// Propagate cost sums to the parents (lines 15–22): if the
			// child continues the parent's path the partial sum carries
			// over, otherwise the child roots a relevant subtree and
			// contributes its full optimal cost.
			if pv != -1 {
				pidx := pv*ng + w
				if v == f.LeftChild(pv) {
					lv[pidx] += lv[idx]
				} else {
					lv[pidx] += cmin
				}
				if v == f.RightChild(pv) {
					rv[pidx] += rv[idx]
				} else {
					rv[pidx] += cmin
				}
				if v == f.HeavyChild(pv) {
					hv[pidx] += hv[idx]
				} else {
					hv[pidx] += cmin
				}
			}
			if pw := g.Parent(w); pw != -1 {
				if w == g.LeftChild(pw) {
					lw[pw] += lw[w]
				} else {
					lw[pw] += cmin
				}
				if w == g.RightChild(pw) {
					rw[pw] += rw[w]
				} else {
					rw[pw] += cmin
				}
				if w == g.HeavyChild(pw) {
					hw[pw] += hw[w]
				} else {
					hw[pw] += cmin
				}
			}
		}
	}
	// cmin still holds the cost of the last pair, (root(F), root(G)),
	// which is the total optimal cost.
	return cmin
}
