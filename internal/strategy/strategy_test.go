package strategy

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
	"repro/internal/treegen"
)

// TestPaperExample4 reproduces the worked example of Section 6.2: F has
// three nodes (root with two leaf children), G has two (root with one
// child). The example's cost arrays pin down both the update rules and
// the heavy-path tie-break (the heavy child of F's root must be the
// RIGHT leaf for Hv[3,1] = 1).
func TestPaperExample4(t *testing.T) {
	f := tree.MustParseBracket("{3{1}{2}}")
	g := tree.MustParseBracket("{2{1}}")

	df, dg := NewDecomp(f), NewDecomp(g)
	// Factors quoted in the example: |A(Fv)| = |F(Fv,ΓL)| = |F(Fv,ΓR)| = 4,
	// |A(Gw)| = |F(Gw,ΓL)| = |F(Gw,ΓR)| = 2.
	if df.A[f.Root()] != 4 || df.FL[f.Root()] != 4 || df.FR[f.Root()] != 4 {
		t.Fatalf("F factors: A=%d FL=%d FR=%d, want 4,4,4", df.A[f.Root()], df.FL[f.Root()], df.FR[f.Root()])
	}
	if dg.A[g.Root()] != 2 || dg.FL[g.Root()] != 2 || dg.FR[g.Root()] != 2 {
		t.Fatalf("G factors: A=%d FL=%d FR=%d, want 2,2,2", dg.A[g.Root()], dg.FL[g.Root()], dg.FR[g.Root()])
	}

	str, cmin := Opt(f, g)
	if cmin != 8 {
		t.Fatalf("optimal cost = %d, want 8 (the example's cmin)", cmin)
	}
	// All six costs tie at 8 for the root pair; the paper picks γH(F3),
	// the first candidate in line order.
	if got := str.Choose(f.Root(), g.Root()); got != HeavyF {
		t.Fatalf("root pair choice = %v, want heavy-F", got)
	}
	// Leaf rows of the strategy array: γH(F1) / γH(F2) everywhere.
	for v := 0; v < 2; v++ {
		for w := 0; w < g.Len(); w++ {
			if got := str.Choose(v, w); got != HeavyF {
				t.Fatalf("STR[%d,%d] = %v, want heavy-F", v, w, got)
			}
		}
	}
}

// TestHeavyTieBreakRightmost pins the tie-break convention Example 4
// implies: with equal child sizes the rightmost child is heavy.
func TestHeavyTieBreakRightmost(t *testing.T) {
	f := tree.MustParseBracket("{r{a}{b}}")
	if h := f.HeavyChild(f.Root()); h != 1 {
		t.Fatalf("heavy child = node %d, want 1 (the right leaf)", h)
	}
	g := tree.MustParseBracket("{r{a{x}{y}}{b}{c{z}{w}}}")
	// Children sizes 3,1,3: heavy must be the rightmost size-3 child (c).
	h := g.HeavyChild(g.Root())
	if g.Label(h) != "c" {
		t.Fatalf("heavy child label = %q, want c", g.Label(h))
	}
}

// fullDecompositionBruteForce enumerates A(F) by definition: repeatedly
// remove leftmost/rightmost root nodes, collecting distinct non-empty
// node sets as bitmasks. Only valid for trees up to 64 nodes. It is
// deliberately independent of the (preorder, postorder)-interval
// characterization used by the production code.
func fullDecompositionBruteForce(t *tree.Tree) map[uint64]bool {
	n := t.Len()
	if n > 64 {
		panic("brute force limited to 64 nodes")
	}
	full := uint64(0)
	for i := 0; i < n; i++ {
		full |= 1 << uint(i)
	}
	seen := make(map[uint64]bool)
	var visit func(set uint64)
	leftmostRoot := func(set uint64) int {
		// The root with the smallest preorder id.
		best := -1
		for i := 0; i < n; i++ {
			if set&(1<<uint(i)) == 0 {
				continue
			}
			p := t.Parent(i)
			if p != -1 && set&(1<<uint(p)) != 0 {
				continue // not a root
			}
			if best == -1 || t.Pre(i) < t.Pre(best) {
				best = i
			}
		}
		return best
	}
	rightmostRoot := func(set uint64) int {
		best := -1
		for i := 0; i < n; i++ {
			if set&(1<<uint(i)) == 0 {
				continue
			}
			p := t.Parent(i)
			if p != -1 && set&(1<<uint(p)) != 0 {
				continue
			}
			if best == -1 || i > best {
				best = i
			}
		}
		return best
	}
	visit = func(set uint64) {
		if set == 0 || seen[set] {
			return
		}
		seen[set] = true
		visit(set &^ (1 << uint(leftmostRoot(set))))
		visit(set &^ (1 << uint(rightmostRoot(set))))
	}
	visit(full)
	return seen
}

// TestLemma1FullDecomposition checks the closed form |A(F)| against the
// brute-force enumeration for many random trees and all shape trees.
func TestLemma1FullDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var trees []*tree.Tree
	for i := 0; i < 40; i++ {
		trees = append(trees, treegen.Random(rng, treegen.RandomSpec{
			Size: 1 + rng.Intn(20), MaxDepth: 6, MaxFanout: 4,
		}))
	}
	for _, s := range treegen.Shapes {
		for _, n := range []int{1, 2, 7, 16} {
			trees = append(trees, s.Build(n))
		}
	}
	for _, tr := range trees {
		d := NewDecomp(tr)
		want := int64(len(fullDecompositionBruteForce(tr)))
		if d.A[tr.Root()] != want {
			t.Fatalf("|A| formula=%d brute=%d for %s", d.A[tr.Root()], want, tr)
		}
	}
}

// relevantForestsBruteForce follows Definition 3 literally and returns
// the sequence of non-empty relevant subforests for a root-leaf path.
func relevantForestsBruteForce(t *tree.Tree, pt PathType) []uint64 {
	n := t.Len()
	onPath := make(map[int]bool)
	for _, u := range PathNodes(t, t.Root(), pt) {
		onPath[u] = true
	}
	var forests []uint64
	set := uint64(0)
	for i := 0; i < n; i++ {
		set |= 1 << uint(i)
	}
	for set != 0 {
		forests = append(forests, set)
		// Identify leftmost and rightmost roots.
		lm, rm := -1, -1
		for i := 0; i < n; i++ {
			if set&(1<<uint(i)) == 0 {
				continue
			}
			p := t.Parent(i)
			if p != -1 && set&(1<<uint(p)) != 0 {
				continue
			}
			if lm == -1 || t.Pre(i) < t.Pre(lm) {
				lm = i
			}
			if rm == -1 || i > rm {
				rm = i
			}
		}
		if onPath[lm] && lm != rm {
			set &^= 1 << uint(rm)
		} else if lm == rm && onPath[lm] {
			set &^= 1 << uint(lm) // single root on path: remove it
		} else {
			set &^= 1 << uint(lm)
		}
	}
	return forests
}

// TestLemma2ChainLength: |F(F, γ)| = |F| for every path type.
func TestLemma2ChainLength(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		tr := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(24), MaxDepth: 7, MaxFanout: 4})
		for _, pt := range []PathType{Left, Right, Heavy} {
			forests := relevantForestsBruteForce(tr, pt)
			if len(forests) != tr.Len() {
				t.Fatalf("|F(F,γ%v)| = %d, want |F| = %d for %s", pt, len(forests), tr.Len(), tr)
			}
			// Each forest must also appear in the full decomposition.
			if tr.Len() <= 20 {
				all := fullDecompositionBruteForce(tr)
				for _, f := range forests {
					if !all[f] {
						t.Fatalf("relevant subforest %b not in A(F) for %s", f, tr)
					}
				}
			}
		}
	}
}

// TestLemma3RecursiveDecomposition checks FL/FR against the definition:
// the sum of the sizes of all relevant subtrees of the recursive
// left/right-path decomposition.
func TestLemma3RecursiveDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var sumRelevant func(tr *tree.Tree, v int, pt PathType) int64
	sumRelevant = func(tr *tree.Tree, v int, pt PathType) int64 {
		total := int64(tr.Size(v))
		ForEachHanging(tr, v, pt, func(r int) {
			total += sumRelevant(tr, r, pt)
		})
		return total
	}
	for i := 0; i < 30; i++ {
		tr := treegen.Random(rng, treegen.RandomSpec{Size: 1 + rng.Intn(40), MaxDepth: 8, MaxFanout: 5})
		d := NewDecomp(tr)
		for v := 0; v < tr.Len(); v++ {
			if want := sumRelevant(tr, v, Left); d.FL[v] != want {
				t.Fatalf("FL[%d]=%d want %d for %s", v, d.FL[v], want, tr)
			}
			if want := sumRelevant(tr, v, Right); d.FR[v] != want {
				t.Fatalf("FR[%d]=%d want %d for %s", v, d.FR[v], want, tr)
			}
		}
	}
}

// TestPathNodes checks the three path families on a hand-built tree.
func TestPathNodes(t *testing.T) {
	//        r
	//      / | \
	//     a  b  c
	//    /|  |  |\
	//   d e  f  g h(i)
	tr := tree.MustParseBracket("{r{a{d}{e}}{b{f}}{c{g}{h{i}}}}")
	label := func(nodes []int) string {
		s := ""
		for _, v := range nodes {
			s += tr.Label(v)
		}
		return s
	}
	if got := label(PathNodes(tr, tr.Root(), Left)); got != "rad" {
		t.Fatalf("left path = %q, want rad", got)
	}
	if got := label(PathNodes(tr, tr.Root(), Right)); got != "rchi" {
		t.Fatalf("right path = %q, want rchi", got)
	}
	// Heavy: children of r have sizes 3,2,4 -> c; c's children sizes 1,2 -> h.
	if got := label(PathNodes(tr, tr.Root(), Heavy)); got != "rchi" {
		t.Fatalf("heavy path = %q, want rchi", got)
	}
	// Path r→a→d hangs subtrees b, c (at r) and e (at a).
	got := HangingSubtrees(tr, tr.Root(), Left)
	if label(got) != "bce" {
		t.Fatalf("hanging subtrees of left path = %q, want bce", label(got))
	}
	// Path r→c→h hangs a, b (at r), g (at c) and nothing at h, i.
	got = HangingSubtrees(tr, tr.Root(), Right)
	if label(got) != "abg" {
		t.Fatalf("hanging subtrees of right path = %q, want abg", label(got))
	}
}

// TestOptRestrictedOrdering: the unrestricted optimum is never worse than
// any restricted one, and restricted optima are internally consistent.
func TestOptRestrictedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		f := treegen.Random(rng, treegen.RandomSpec{Size: 2 + rng.Intn(40), MaxDepth: 8, MaxFanout: 5})
		g := treegen.Random(rng, treegen.RandomSpec{Size: 2 + rng.Intn(40), MaxDepth: 8, MaxFanout: 5})
		_, full := Opt(f, g)
		_, lr := OptRestricted(f, g, LROnly)
		_, h := OptRestricted(f, g, HOnly)
		if full > lr || full > h {
			t.Fatalf("unrestricted optimum %d worse than restricted (lr=%d h=%d)", full, lr, h)
		}
		if _, blr := BaselineRestricted(f, g, LROnly); blr != lr {
			t.Fatalf("restricted baseline %d != OptRestricted %d", blr, lr)
		}
		if _, bh := BaselineRestricted(f, g, HOnly); bh != h {
			t.Fatalf("restricted baseline %d != OptRestricted %d", bh, h)
		}
	}
}

// TestChoiceEncoding exercises the compact Choice byte encoding.
func TestChoiceEncoding(t *testing.T) {
	cases := []struct {
		c   Choice
		inG bool
		pt  PathType
		str string
	}{
		{HeavyF, false, Heavy, "heavy-F"},
		{HeavyG, true, Heavy, "heavy-G"},
		{LeftF, false, Left, "left-F"},
		{LeftG, true, Left, "left-G"},
		{RightF, false, Right, "right-F"},
		{RightG, true, Right, "right-G"},
	}
	for _, c := range cases {
		if c.c.InG() != c.inG || c.c.Type() != c.pt || c.c.String() != c.str {
			t.Fatalf("choice %d: got (%v,%v,%q) want (%v,%v,%q)",
				c.c, c.c.InG(), c.c.Type(), c.c.String(), c.inG, c.pt, c.str)
		}
		if MakeChoice(c.pt, c.inG) != c.c {
			t.Fatalf("MakeChoice(%v,%v) != %v", c.pt, c.inG, c.c)
		}
	}
}

// TestCountOnPaperShapes sanity-checks the closed-form counts on shapes
// with known behaviour: for the left-branch tree Zhang-L must beat
// Zhang-R asymptotically, and vice versa; the optimum never exceeds the
// best fixed strategy.
func TestCountOnPaperShapes(t *testing.T) {
	n := 201
	lb := treegen.LeftBranch(n)
	rb := treegen.RightBranch(n)
	zlLB := Count(lb, lb, ZhangL()).Total
	zrLB := Count(lb, lb, ZhangR()).Total
	if zlLB*10 > zrLB {
		t.Fatalf("LB: Zhang-L (%d) should be far below Zhang-R (%d)", zlLB, zrLB)
	}
	zlRB := Count(rb, rb, ZhangL()).Total
	zrRB := Count(rb, rb, ZhangR()).Total
	if zrRB*10 > zlRB {
		t.Fatalf("RB: Zhang-R (%d) should be far below Zhang-L (%d)", zrRB, zlRB)
	}
	_, opt := Opt(lb, lb)
	if opt > zlLB {
		t.Fatalf("LB: optimum %d exceeds Zhang-L %d", opt, zlLB)
	}
	// Symmetry of the cost model: cost(F,G) == cost(G,F).
	fz := treegen.ZigZag(77)
	_, a := Opt(lb, fz)
	_, b := Opt(fz, lb)
	if a != b {
		t.Fatalf("optimal cost not symmetric: %d vs %d", a, b)
	}
}
