// Package strategy implements the path-strategy machinery of the RTED
// paper: root-leaf paths (Section 4.1), LRH strategies (Section 4.2), the
// closed-form decomposition counts of Lemmas 1–3 (Section 5.2), analytic
// subproblem counting with the cost formula (Section 5.3), the baseline
// O(n³) optimal-strategy algorithm (Section 6.1) and the O(n²)
// OptStrategy algorithm (Section 6.2, Algorithm 2).
package strategy

import "repro/internal/tree"

// PathType identifies one of the three root-leaf path families of an LRH
// strategy.
type PathType uint8

const (
	// Heavy follows the child with the largest subtree (ties broken by
	// the rightmost child; see tree.HeavyChild).
	Heavy PathType = iota
	// Left follows the leftmost child.
	Left
	// Right follows the rightmost child.
	Right
)

func (p PathType) String() string {
	switch p {
	case Heavy:
		return "heavy"
	case Left:
		return "left"
	case Right:
		return "right"
	}
	return "invalid"
}

// Choice encodes which tree a strategy decomposes and with which path
// type. The numeric order of the constants is exactly the tie-break order
// of the paper's cost formula (Algorithm 2 lines 7–12), so "smallest
// Choice wins ties" reproduces the paper's choices.
type Choice uint8

const (
	// HeavyF decomposes the left tree along its heavy path.
	HeavyF Choice = iota
	// HeavyG decomposes the right tree along its heavy path.
	HeavyG
	// LeftF decomposes the left tree along its left path.
	LeftF
	// LeftG decomposes the right tree along its left path.
	LeftG
	// RightF decomposes the left tree along its right path.
	RightF
	// RightG decomposes the right tree along its right path.
	RightG

	numChoices = 6
)

// InG reports whether the choice decomposes the right-hand tree.
func (c Choice) InG() bool { return c&1 == 1 }

// Type returns the path family of the choice.
func (c Choice) Type() PathType { return PathType(c >> 1) }

func (c Choice) String() string {
	side := "F"
	if c.InG() {
		side = "G"
	}
	return c.Type().String() + "-" + side
}

// MakeChoice builds a Choice from a path type and a side.
func MakeChoice(t PathType, inG bool) Choice {
	c := Choice(t) << 1
	if inG {
		c |= 1
	}
	return c
}

// PathChild returns the child of node i that continues a path of type
// pt, or -1 if i is a leaf.
func PathChild(t *tree.Tree, i int, pt PathType) int {
	return pathChild(t, i, pt)
}

// pathChild returns the child of node i that continues a path of type pt,
// or -1 if i is a leaf.
func pathChild(t *tree.Tree, i int, pt PathType) int {
	switch pt {
	case Left:
		return t.LeftChild(i)
	case Right:
		return t.RightChild(i)
	default:
		return t.HeavyChild(i)
	}
}

// PathNodes returns the nodes of the root-leaf path of type pt starting
// at v, from v down to the leaf.
func PathNodes(t *tree.Tree, v int, pt PathType) []int {
	var nodes []int
	for u := v; u != -1; u = pathChild(t, u, pt) {
		nodes = append(nodes, u)
	}
	return nodes
}

// OnPath reports whether node x lies on the path of type pt rooted at v.
// x must be inside the subtree of v.
func OnPath(t *tree.Tree, v, x int, pt PathType) bool {
	for u := v; u != -1; u = pathChild(t, u, pt) {
		if u == x {
			return true
		}
		// Paths descend; once below x's postorder range we can stop.
		if !t.InSubtree(x, u) {
			return false
		}
	}
	return false
}

// ForEachHanging calls fn with the root of every relevant subtree of F_v
// with respect to the path of type pt (the subtrees hanging off the
// path), in root-to-leaf, left-to-right order.
func ForEachHanging(t *tree.Tree, v int, pt PathType, fn func(root int)) {
	for u := v; u != -1; {
		next := pathChild(t, u, pt)
		for _, c := range t.Children(u) {
			if c != next {
				fn(c)
			}
		}
		u = next
	}
}

// HangingSubtrees returns the roots collected by ForEachHanging.
func HangingSubtrees(t *tree.Tree, v int, pt PathType) []int {
	var roots []int
	ForEachHanging(t, v, pt, func(r int) { roots = append(roots, r) })
	return roots
}
