package strategy

import "repro/internal/tree"

// CountResult reports the analytic subproblem count of running GTED with
// a given strategy on a tree pair (Section 5.3). Because every
// subproblem is a constant-time operation, Total is the runtime
// complexity of the corresponding algorithm on that input, and it is what
// Figure 8, Table 1 and Table 2 of the paper plot.
type CountResult struct {
	// Total is the number of relevant subproblems.
	Total int64
	// ByChoice breaks Total down by decomposition choice.
	ByChoice [6]int64
	// SPFCalls is the number of single-path function invocations, i.e.
	// the number of subtree pairs GTED decomposes.
	SPFCalls int64
}

// Count computes the exact number of relevant subproblems GTED evaluates
// for the pair (f, g) under strategy s, without running the distance
// computation. The instrumented counters of the real GTED implementation
// match this number exactly (differentially tested).
func Count(f, g *tree.Tree, s Strategy) CountResult {
	return CountD(f, g, NewDecomp(f), NewDecomp(g), s)
}

// CountD is Count with caller-supplied decomposition caches, so repeated
// counts over the same trees (joins, dataset scans) skip the O(n)
// preprocessing.
func CountD(f, g *tree.Tree, df, dg *Decomp, s Strategy) CountResult {
	var res CountResult
	ng := g.Len()
	seen := make([]bool, f.Len()*ng)
	var rec func(v, w int)
	rec = func(v, w int) {
		idx := v*ng + w
		if seen[idx] {
			return
		}
		seen[idx] = true
		c := s.Choose(v, w)
		var spf int64
		if !c.InG() {
			ForEachHanging(f, v, c.Type(), func(r int) { rec(r, w) })
			spf = int64(f.Size(v)) * spfCount(dg, w, c.Type())
		} else {
			ForEachHanging(g, w, c.Type(), func(r int) { rec(v, r) })
			spf = int64(g.Size(w)) * spfCount(df, v, c.Type())
		}
		res.Total += spf
		res.ByChoice[c] += spf
		res.SPFCalls++
	}
	rec(f.Root(), g.Root())
	return res
}
