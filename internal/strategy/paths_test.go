package strategy

import (
	"testing"

	"repro/internal/tree"
)

func TestPathChildAndOnPath(t *testing.T) {
	tr := tree.MustParseBracket("{r{a{d}{e}}{b{f}}{c{g}{h{i}}}}")
	root := tr.Root()
	// Left path: root -> a -> d.
	la := PathChild(tr, root, Left)
	if tr.Label(la) != "a" {
		t.Fatalf("left child of root = %q", tr.Label(la))
	}
	if tr.Label(PathChild(tr, la, Left)) != "d" {
		t.Fatal("left path second step")
	}
	if PathChild(tr, PathChild(tr, la, Left), Left) != -1 {
		t.Fatal("path continues past leaf")
	}
	for _, pt := range []PathType{Left, Right, Heavy} {
		nodes := PathNodes(tr, root, pt)
		for _, v := range nodes {
			if !OnPath(tr, root, v, pt) {
				t.Fatalf("path node %q not OnPath(%v)", tr.Label(v), pt)
			}
		}
		onCount := 0
		for v := 0; v < tr.Len(); v++ {
			if OnPath(tr, root, v, pt) {
				onCount++
			}
		}
		if onCount != len(nodes) {
			t.Fatalf("OnPath(%v) marks %d nodes, path has %d", pt, onCount, len(nodes))
		}
	}
	// OnPath from a non-root subtree.
	if !OnPath(tr, la, PathChild(tr, la, Right), Right) {
		t.Fatal("OnPath within subtree")
	}
}

func TestDecompF(t *testing.T) {
	tr := tree.MustParseBracket("{a{b{c}}{d}}")
	d := NewDecomp(tr)
	if d.F(tr.Root(), Left) != d.FL[tr.Root()] || d.F(tr.Root(), Right) != d.FR[tr.Root()] {
		t.Fatal("Decomp.F accessor")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Decomp.F(Heavy) should panic")
		}
	}()
	d.F(tr.Root(), Heavy)
}

func TestNamedStrategies(t *testing.T) {
	f := tree.MustParseBracket("{a{b}}")
	g := tree.MustParseBracket("{c}")
	for _, tc := range []struct {
		s    Named
		want string
	}{
		{ZhangL(), "Zhang-L"},
		{ZhangR(), "Zhang-R"},
		{KleinH(), "Klein-H"},
		{DemaineH(f, g), "Demaine-H"},
	} {
		if tc.s.Name() != tc.want {
			t.Fatalf("name %q want %q", tc.s.Name(), tc.want)
		}
	}
	// Demaine chooses the heavy path of the larger tree.
	d := DemaineH(f, g)
	if c := d.Choose(f.Root(), g.Root()); c != HeavyF {
		t.Fatalf("Demaine on larger F = %v", c)
	}
	d2 := DemaineH(g, f)
	if c := d2.Choose(g.Root(), f.Root()); c != HeavyG {
		t.Fatalf("Demaine on larger G = %v", c)
	}
	a := NewArray(1, 1, "")
	if a.Name() != "array" {
		t.Fatalf("default array name %q", a.Name())
	}
}

func TestPathTypeString(t *testing.T) {
	if Heavy.String() != "heavy" || Left.String() != "left" || Right.String() != "right" {
		t.Fatal("path type strings")
	}
	if PathType(9).String() != "invalid" {
		t.Fatal("invalid path type string")
	}
}
