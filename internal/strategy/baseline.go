package strategy

import (
	"math"

	"repro/internal/tree"
)

// Baseline computes the optimal LRH strategy with the baseline algorithm
// of Section 6.1: a direct memoized implementation of the cost formula
// (Figure 5) that re-walks the relevant subtrees of every candidate path
// at every pair. Runtime is Θ(n³) in the worst case (Theorem 2); the
// result is identical to Opt's and the two implementations cross-check
// each other in the test suite.
func Baseline(f, g *tree.Tree) (*Array, int64) {
	return BaselineRestricted(f, g, AllLRH)
}

// BaselineRestricted is Baseline over a restricted candidate set.
func BaselineRestricted(f, g *tree.Tree, allowed [numChoices]bool) (*Array, int64) {
	df, dg := NewDecomp(f), NewDecomp(g)
	nf, ng := f.Len(), g.Len()
	str := NewArray(nf, ng, "baseline")
	memo := make([]int64, nf*ng)
	for i := range memo {
		memo[i] = -1
	}

	var cost func(v, w int) int64
	cost = func(v, w int) int64 {
		idx := v*ng + w
		if memo[idx] >= 0 {
			return memo[idx]
		}
		// Guard against re-entrancy while this pair is being evaluated;
		// the recursion only descends into strictly smaller subtrees, so
		// this cannot fire, but a sentinel makes that assumption checked.
		memo[idx] = math.MaxInt64
		best := int64(math.MaxInt64)
		bestChoice := HeavyF
		for c := Choice(0); c < numChoices; c++ {
			if !allowed[c] {
				continue
			}
			var total int64
			if !c.InG() {
				total = int64(f.Size(v)) * spfCount(dg, w, c.Type())
				ForEachHanging(f, v, c.Type(), func(r int) {
					total += cost(r, w)
				})
			} else {
				total = int64(g.Size(w)) * spfCount(df, v, c.Type())
				ForEachHanging(g, w, c.Type(), func(r int) {
					total += cost(v, r)
				})
			}
			if total < best {
				best = total
				bestChoice = c
			}
		}
		memo[idx] = best
		str.Set(v, w, bestChoice)
		return best
	}
	total := cost(f.Root(), g.Root())
	return str, total
}

// spfCount returns the per-F-node subproblem count of the single-path
// function paired with a path of type pt in the OTHER tree's
// decomposition d at subtree w (Lemma 4): ΔI computes |A(G_w)| and ΔL/ΔR
// compute |F(G_w, Γ)| subproblems per relevant subforest of F.
func spfCount(d *Decomp, w int, pt PathType) int64 {
	switch pt {
	case Left:
		return d.FL[w]
	case Right:
		return d.FR[w]
	default:
		return d.A[w]
	}
}
