package strategy

import "repro/internal/tree"

// Strategy maps a pair of subtrees (F_v, G_w) — identified by postorder
// ids v in the left tree and w in the right tree — to the root-leaf path
// GTED uses to decompose the pair (Definition 4). Implementations must be
// deterministic.
type Strategy interface {
	// Choose returns the path for the pair (F_v, G_w).
	Choose(v, w int) Choice
}

// Named attaches a human-readable name to a strategy; the experiment
// harness uses it for table headers.
type Named interface {
	Strategy
	Name() string
}

type fixed struct {
	choice Choice
	name   string
}

func (f fixed) Choose(int, int) Choice { return f.choice }
func (f fixed) Name() string           { return f.name }

// ZhangL is the strategy of Zhang and Shasha [31]: every pair maps to the
// left path of the left-hand tree. GTED with this strategy is the
// algorithm the paper calls Zhang-L.
func ZhangL() Named { return fixed{LeftF, "Zhang-L"} }

// ZhangR is the symmetric right-path variant (Zhang-R).
func ZhangR() Named { return fixed{RightF, "Zhang-R"} }

// KleinH is Klein's strategy [22]: every pair maps to the heavy path of
// the left-hand tree (Klein-H).
func KleinH() Named { return fixed{HeavyF, "Klein-H"} }

type demaine struct {
	f, g *tree.Tree
}

func (d demaine) Choose(v, w int) Choice {
	if d.f.Size(v) >= d.g.Size(w) {
		return HeavyF
	}
	return HeavyG
}
func (d demaine) Name() string { return "Demaine-H" }

// DemaineH is the strategy of Demaine et al. [15]: each pair maps to the
// heavy path of its larger tree (Demaine-H).
func DemaineH(f, g *tree.Tree) Named { return demaine{f, g} }

// Array is a fully materialized strategy: one Choice per subtree pair,
// row-major over (v, w). OptStrategy and the baseline algorithm produce
// Arrays.
type Array struct {
	NF, NG  int
	Choices []Choice
	name    string
}

// NewArray allocates an Array for trees of the given sizes.
func NewArray(nf, ng int, name string) *Array {
	return &Array{NF: nf, NG: ng, Choices: make([]Choice, nf*ng), name: name}
}

func (a *Array) Choose(v, w int) Choice { return a.Choices[v*a.NG+w] }

// Name implements Named.
func (a *Array) Name() string {
	if a.name == "" {
		return "array"
	}
	return a.name
}

// Set stores the choice for the pair (v, w).
func (a *Array) Set(v, w int, c Choice) { a.Choices[v*a.NG+w] = c }
