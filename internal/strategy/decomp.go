package strategy

import "repro/internal/tree"

// Decomp holds, for every subtree F_v of a tree, the decomposition
// cardinalities the cost formula needs (Section 5.2):
//
//   - A[v]  = |A(F_v)|, the size of the full decomposition (Lemma 1),
//   - FL[v] = |F(F_v, ΓL(F_v))|, the relevant subforests of the recursive
//     left-path decomposition (Lemma 3),
//   - FR[v] = |F(F_v, ΓR(F_v))|, likewise for right paths.
//
// By Lemma 2, |F(F_v, γ)| = |F_v| for any single root-leaf path γ, so no
// array is needed for it.
type Decomp struct {
	T  *tree.Tree
	A  []int64
	FL []int64
	FR []int64
}

// NewDecomp computes the decomposition cardinalities for all subtrees of
// t in O(|t|) time.
func NewDecomp(t *tree.Tree) *Decomp {
	n := t.Len()
	d := &Decomp{
		T:  t,
		A:  make([]int64, n),
		FL: make([]int64, n),
		FR: make([]int64, n),
	}
	for v := 0; v < n; v++ {
		sz := int64(t.Size(v))
		// Lemma 1: |A(F)| = |F|(|F|+3)/2 − Σ_{x∈F} |F_x|.
		d.A[v] = sz*(sz+3)/2 - t.SumSizes(v)
		kids := t.Children(v)
		if len(kids) == 0 {
			d.FL[v] = 1
			d.FR[v] = 1
			continue
		}
		// Lemma 3: |F(F,Γ)| = Σ of the sizes of the relevant subtrees of
		// the recursive decomposition. The left path of F_v continues in
		// the leftmost child c1, so the relevant subtrees of F_v are the
		// other children plus the relevant subtrees of F_c1:
		//   FL[v] = |F_v| + Σ_{c≠c1} FL[c] + (FL[c1] − |F_c1|).
		l := kids[0]
		r := kids[len(kids)-1]
		d.FL[v] = sz + d.FL[l] - int64(t.Size(l))
		d.FR[v] = sz + d.FR[r] - int64(t.Size(r))
		for _, c := range kids {
			if c != l {
				d.FL[v] += d.FL[c]
			}
			if c != r {
				d.FR[v] += d.FR[c]
			}
		}
	}
	return d
}

// F returns |F(F_v, Γ)| for the recursive decomposition of F_v with paths
// of type pt. For single-path counts use Lemma 2 (= subtree size). Heavy
// recursive decompositions are not needed by the cost formula (GTED pairs
// heavy paths with the full decomposition A), so Heavy is not supported.
func (d *Decomp) F(v int, pt PathType) int64 {
	switch pt {
	case Left:
		return d.FL[v]
	case Right:
		return d.FR[v]
	}
	panic("strategy: Decomp.F supports Left and Right only")
}
