// Package load is the serving stack's load harness: declarative
// workloads over the package server JSON API, driven open- or
// closed-loop, measured into mergeable log-bucketed latency histograms,
// and reported as the machine-readable BENCH_serve.json artifact that
// carries the repository's perf trajectory from PR to PR.
//
// A workload is a Spec (endpoint mix in ratio weights, tau/k
// parameters, arrival mode, warmup/measure sizes) plus a Snapshot of
// the served corpus (live IDs + serialized trees). Request generation
// is a pure function of (Spec, Snapshot, Seed): the same inputs yield
// byte-identical request streams, so any run can be reproduced, and
// distinct seeds yield disjoint mutation tags (MutationTag), so
// concurrent harness processes never collide on generated content.
//
// Two arrival modes, one measurement path:
//
//   - Closed loop (Rate = 0): Conc workers each keep exactly one
//     request in flight. Measures the server's best-case pipeline
//     latency and saturation throughput.
//   - Open loop (Rate > 0): arrivals follow a Poisson process at Rate
//     requests/second regardless of completions (bounded by Conc
//     outstanding as a safety valve). Measures behavior under offered
//     load — queueing delay and admission-control shedding are visible
//     instead of hidden by coordinated omission.
//
// Latencies are recorded per worker into Hist — log-linear buckets,
// ≤ 3.125% relative error, lossless merge — and merged after the run,
// the same path a distributed harness would use across processes.
// Responses shed by admission control (HTTP 503) are counted, never
// dropped: under overload the shed rate is the result. cmd/tedload is
// the CLI; internal/experiments reuses Hist for its serve ablation.
//
// The streaming endpoints (join_stream, topk_stream) are driven over
// their NDJSON wire format: the worker reads the response line by line
// as the server flushes it, stamps the first and last match lines
// (time-to-first-match and time-to-last-match, measured from request
// start), and requires the terminal done record — a stream that ends
// without one was cut short and counts as an error, never as a fast
// success. Total latency for a streaming request still means
// last-byte-received, so streamed and buffered latencies compare
// directly; TTFM/TTLM are reported alongside as the streaming-only
// delivery profile. A Spec.Tenant tags every request with the X-Tenant
// header, so several tedload processes with distinct tenants and seeds
// compose into one multi-tenant overload experiment against a single
// server.
//
// # The BENCH_serve.json schema (version 3)
//
// Report is the schema; Report.Validate is the contract checker CI
// runs (it accepts version 1 and 2 artifacts, which simply predate the
// streaming/pacing fields and the multi-target breakdown). The fields:
//
//	{
//	  "bench": "serve",              // always "serve"
//	  "schema_version": 3,           // load.SchemaVersion
//	  "git_rev": "abc1234",          // the measured revision
//	  "started_at": "RFC3339",       // run start (UTC)
//	  "target": "http://host:port",  // the driven server(s), comma-joined
//	  "spec": { ... },               // the full workload Spec (see Spec)
//	  "wall_seconds": 1.23,          // measured-phase wall clock
//	  "warmup_errors": 0,            // failures before measurement began
//	  "requested_rps": 200,          // open loop only: the -rate asked for
//	  "achieved_rps": 198.7,         // open loop only: rate the pacer delivered
//	  "endpoints": {                 // one entry per endpoint in the mix
//	    "distance": {
//	      "requests": 100,           // = ok + errors + shed
//	      "ok": 98, "errors": 0, "shed": 2,
//	      "p50_ms": 1.2, "p90_ms": 2.0, "p99_ms": 3.1,
//	      "max_ms": 4.0, "mean_ms": 1.4,   // over ok only
//	      "throughput_rps": 81.3,          // ok / wall_seconds
//	      "first_error": "...",            // present iff errors > 0
//	      "stream": {                      // streaming endpoints only,
//	        "ttfm_p50_ms": 0.4,            //   and only when ≥ 1 request
//	        "ttfm_p99_ms": 1.1,            //   delivered ≥ 1 match
//	        "ttlm_p50_ms": 2.2,
//	        "ttlm_p99_ms": 4.0
//	      }
//	    }, ...
//	  },
//	  "totals": { ... },             // same shape, streams omitted
//	  "targets": {                   // multi-target runs only: the same
//	    "http://host:8420": { ... }, //   measured requests sliced by the
//	    "http://host:8421": { ... }  //   replica they were sent to
//	  }
//	}
//
// Invariants Validate enforces: requests = ok + errors + shed per
// entry; 0 < p50 ≤ p90 ≤ p99 ≤ max and throughput > 0 whenever ok > 0;
// 0 < ttfm ≤ ttlm per quantile whenever a stream block is present;
// totals.requests equals the endpoint sum, and the targets block (when
// present) sums to it too. Percentiles are conservative (never below
// the true nearest-rank value, at most 3.2% above — see Hist.Quantile);
// max is exact.
//
// Multi-target runs (Runner.Targets, tedload -url with a comma list)
// deal the unchanged deterministic request stream round-robin across a
// replica fleet — request i to target i mod len — so the merged totals
// stay comparable with single-target points while the per-target block
// exposes a slow or stale replica that totals would average away.
//
// requested_rps vs achieved_rps is the open-loop honesty check: the
// pacer walks an absolute arrival schedule (each deadline derived from
// the previous one, never from "now"), so late dispatches borrow from
// subsequent gaps instead of pushing the whole schedule back, and the
// two fields agree to within Poisson noise. A persistent gap between
// them means the offered load printed on the label was not the offered
// load applied — treat the artifact's latency columns with suspicion.
//
// # The trajectory convention
//
// Every CI run regenerates the artifact against the PR's revision and
// uploads it; the repository additionally checks in one trajectory
// point per landed PR as BENCH_serve.json at the repo root, refreshed
// by each PR that changes serving performance. `git log -p
// BENCH_serve.json` is the trajectory. Compare points only at equal
// spec (mix, sizes, arrival mode) — the spec is embedded in the
// artifact precisely so that an apples-to-oranges diff is detectable.
package load
