package load

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/corpus"
	"repro/server"
)

// The endpoint names a workload mix may weight. Each maps to one API
// route; "mutate" is POST /v1/trees with a generated near-duplicate
// tree whose root label carries a seed-unique mutation tag.
const (
	EpDistance   = "distance"
	EpBounded    = "bounded"
	EpJoin       = "join"
	EpJoinStream = "join_stream"
	EpTopK       = "topk"
	EpTopKStream = "topk_stream"
	EpMutate     = "mutate"
)

// Endpoints lists the valid mix keys in canonical (reporting) order.
var Endpoints = []string{EpDistance, EpBounded, EpJoin, EpJoinStream, EpTopK, EpTopKStream, EpMutate}

// streamEndpoints marks the NDJSON endpoints, whose responses the
// runner reads line by line (timing first and last match) instead of as
// one buffered body.
var streamEndpoints = map[string]bool{EpJoinStream: true, EpTopKStream: true}

// Spec declares a workload: what to send (Mix, Tau, K, JoinMode), how
// fast (Rate/Conc), and how much (Warmup, Requests). A Spec plus a
// Snapshot plus a seed fully determines the request stream — see Gen.
type Spec struct {
	// Mix weights the endpoints; weights are ratios, not probabilities
	// (they need not sum to 1). Endpoints absent or ≤ 0 are never
	// generated.
	Mix map[string]float64 `json:"mix"`

	// Tau is the bounded-distance and join threshold.
	Tau float64 `json:"tau"`
	// K is the top-k request size.
	K int `json:"k"`
	// JoinMode picks the join candidate generator ("auto", "enumerate",
	// "histogram", "pqgram"); empty means auto.
	JoinMode string `json:"join_mode,omitempty"`
	// JoinLimit caps the matches a join response carries (0 = a small
	// default; joins are verbose, the harness measures them, it does not
	// archive them).
	JoinLimit int `json:"join_limit,omitempty"`

	// Tenant, when non-empty, tags every request of the run with an
	// X-Tenant header — the key the server's per-tenant admission quotas
	// and counters group by. Two concurrent runs under different tenants
	// are how the multi-tenant isolation experiment is driven.
	Tenant string `json:"tenant,omitempty"`

	// Seed drives request generation (operand choice, endpoint choice,
	// mutation tags) and the Poisson arrival gaps.
	Seed int64 `json:"seed"`

	// Rate > 0 selects the open-loop mode: arrivals follow a Poisson
	// process at Rate requests/second, regardless of how fast responses
	// come back (latency under overload is visible instead of
	// coordinated-omission-hidden). Rate = 0 selects the closed loop:
	// Conc workers each keep exactly one request in flight.
	Rate float64 `json:"rate_rps,omitempty"`
	// Conc is the closed-loop worker count, and in open-loop mode the
	// cap on concurrently outstanding requests (a safety valve so an
	// unresponsive server cannot accumulate unbounded goroutines).
	Conc int `json:"concurrency"`

	// Warmup requests are sent but not measured; Requests are measured.
	Warmup   int `json:"warmup_requests"`
	Requests int `json:"measure_requests"`
}

// Validate reports the first problem with the spec.
func (s Spec) Validate() error {
	total := 0.0
	for ep, w := range s.Mix {
		valid := false
		for _, known := range Endpoints {
			if ep == known {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("mix: unknown endpoint %q (valid: %s)", ep, strings.Join(Endpoints, ", "))
		}
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return fmt.Errorf("mix: no endpoint has positive weight")
	}
	if s.Tau < 0 {
		return fmt.Errorf("tau must be ≥ 0 (got %g)", s.Tau)
	}
	if w := s.Mix[EpTopK]; w > 0 && s.K < 1 {
		return fmt.Errorf("k must be ≥ 1 when topk is in the mix (got %d)", s.K)
	}
	if w := s.Mix[EpTopKStream]; w > 0 && s.K < 1 {
		return fmt.Errorf("k must be ≥ 1 when topk_stream is in the mix (got %d)", s.K)
	}
	if s.Conc < 1 {
		return fmt.Errorf("concurrency must be ≥ 1 (got %d)", s.Conc)
	}
	if s.Rate < 0 {
		return fmt.Errorf("rate must be ≥ 0 (got %g)", s.Rate)
	}
	if s.Warmup < 0 || s.Requests < 1 {
		return fmt.Errorf("warmup must be ≥ 0 and measure_requests ≥ 1 (got %d, %d)", s.Warmup, s.Requests)
	}
	return nil
}

// mixOrder returns the positively weighted endpoints in canonical order
// with their cumulative weights — the deterministic basis for weighted
// endpoint choice.
func (s Spec) mixOrder() (eps []string, cum []float64) {
	total := 0.0
	for _, ep := range Endpoints {
		if w := s.Mix[ep]; w > 0 {
			total += w
			eps = append(eps, ep)
			cum = append(cum, total)
		}
	}
	return eps, cum
}

// ParseMix parses a "distance=4,bounded=3,mutate=1" mix string.
func ParseMix(s string) (map[string]float64, error) {
	mix := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ep, ws, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix %q: want endpoint=weight", part)
		}
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix %q: bad weight", part)
		}
		mix[strings.TrimSpace(ep)] = w
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return mix, nil
}

// Snapshot is the request generator's view of the served corpus: the
// live stored tree IDs (distance/bounded/topk operands reference them)
// and their bracket serializations (the base material for ad-hoc
// operands and mutation payloads). Taken once before a run; the stream
// it seeds is immutable even while the run itself mutates the server.
type Snapshot struct {
	IDs   []int64  `json:"ids"`
	Trees []string `json:"trees"`
}

// SnapshotOf captures a snapshot from an in-process corpus.
func SnapshotOf(c *corpus.Corpus) Snapshot {
	var s Snapshot
	for _, id := range c.IDs() {
		t, ok := c.Tree(id)
		if !ok {
			continue
		}
		s.IDs = append(s.IDs, int64(id))
		s.Trees = append(s.Trees, t.String())
	}
	return s
}

// FetchSnapshot captures a snapshot over HTTP: /v1/stats for the live
// tree count, then GET /v1/trees/{id} scanning upward from 0 (stored
// IDs are monotone from 0; deletions leave gaps, so the scan tolerates
// misses up to a budget before concluding the tail is empty).
func FetchSnapshot(client *http.Client, base string) (Snapshot, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return Snapshot{}, fmt.Errorf("fetch snapshot: %w", err)
	}
	var stats server.StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return Snapshot{}, fmt.Errorf("fetch snapshot: decode stats: %w", err)
	}

	var s Snapshot
	misses := 0
	for id := int64(0); len(s.IDs) < stats.Trees && misses <= stats.Trees+64; id++ {
		resp, err := client.Get(fmt.Sprintf("%s/v1/trees/%d", base, id))
		if err != nil {
			return Snapshot{}, fmt.Errorf("fetch snapshot: tree %d: %w", id, err)
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			misses++
			continue
		}
		var tr server.TreeResponse
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil {
			return Snapshot{}, fmt.Errorf("fetch snapshot: tree %d: %w", id, err)
		}
		s.IDs = append(s.IDs, tr.ID)
		s.Trees = append(s.Trees, tr.Tree)
	}
	if len(s.IDs) == 0 {
		return Snapshot{}, fmt.Errorf("fetch snapshot: no live trees found (stats reported %d)", stats.Trees)
	}
	return s, nil
}
