package load

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// SchemaVersion is the BENCH_serve.json schema version this package
// emits. Bump it on any incompatible change and extend Validate to
// accept the versions still in the trajectory. Version 2 added the
// streaming endpoints (join_stream/topk_stream with their TTFM/TTLM
// stream blocks), the tenant tag in the spec, and the open-loop
// requested/achieved rate pair. Version 3 added multi-target runs: the
// targets block with one whole-run EndpointStats per replica driven
// round-robin. Version-1 and version-2 artifacts (no such fields)
// still validate.
const SchemaVersion = 3

// EndpointStats is one endpoint's (or the run total's) measured-phase
// accounting. Requests = OK + Errors + Shed: a shed (503) request is
// counted, not dropped — under open-loop overload the shed rate IS the
// result. Latency percentiles cover OK exchanges only (a rejection's
// latency says nothing about serving cost) and are conservative within
// the histogram's 3.125% bucketing error.
type EndpointStats struct {
	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	Errors   int64 `json:"errors"`
	Shed     int64 `json:"shed"`

	P50ms  float64 `json:"p50_ms"`
	P90ms  float64 `json:"p90_ms"`
	P99ms  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`

	// ThroughputRPS is completed OK requests per wall-clock second of
	// the measured phase.
	ThroughputRPS float64 `json:"throughput_rps"`

	// FirstError carries one representative error for diagnosis; the
	// count is what gates CI.
	FirstError string `json:"first_error,omitempty"`

	// Stream is present only for the NDJSON streaming endpoints (and
	// only when ≥ 1 stream carried a match): the delivery latencies the
	// streaming API exists to improve.
	Stream *StreamStats `json:"stream,omitempty"`
}

// StreamStats times result delivery within streaming responses:
// time-to-first-match (how long until the client had something to work
// with) and time-to-last-match (when the result set was complete on the
// wire), both measured from the request start, over streams that
// carried at least one match.
type StreamStats struct {
	TTFMp50ms float64 `json:"ttfm_p50_ms"`
	TTFMp99ms float64 `json:"ttfm_p99_ms"`
	TTLMp50ms float64 `json:"ttlm_p50_ms"`
	TTLMp99ms float64 `json:"ttlm_p99_ms"`
}

// Report is the machine-readable result of one run — the
// BENCH_serve.json artifact. See doc.go for the schema contract.
type Report struct {
	Bench         string  `json:"bench"` // always "serve"
	SchemaVersion int     `json:"schema_version"`
	GitRev        string  `json:"git_rev"`
	StartedAt     string  `json:"started_at,omitempty"` // RFC3339
	Target        string  `json:"target"`
	Spec          Spec    `json:"spec"`
	WallSeconds   float64 `json:"wall_seconds"`

	// Open-loop runs carry the offered-rate reconciliation: the rate the
	// spec asked for and the rate the pacer actually delivered (measured
	// over dispatch times). A gap between them means the load the report
	// describes is not the load that was applied — the drift the
	// absolute-deadline pacer exists to eliminate.
	RequestedRPS float64 `json:"requested_rps,omitempty"`
	AchievedRPS  float64 `json:"achieved_rps,omitempty"`

	// WarmupErrors counts failures during the unmeasured warmup phase:
	// excluded from the per-endpoint arithmetic, but a gated run (CI,
	// the smoke script) must treat them as failures all the same.
	WarmupErrors int64 `json:"warmup_errors,omitempty"`

	Endpoints map[string]EndpointStats `json:"endpoints"`
	Totals    EndpointStats            `json:"totals"`

	// Targets breaks the run down by target when requests were
	// round-robined across several replicas (Runner.Targets): one
	// whole-run EndpointStats per base URL, so a slow or stale replica is
	// visible instead of averaged away in Totals. Absent on single-target
	// runs. Stream blocks are omitted here (they remain per-endpoint).
	Targets map[string]EndpointStats `json:"targets,omitempty"`
}

// Validate checks the report against the schema contract: a report that
// validates can join the perf trajectory. It does not judge the
// numbers — only that they are present, consistent, and ordered.
func (r *Report) Validate() error {
	if r.Bench != "serve" {
		return fmt.Errorf("bench must be %q (got %q)", "serve", r.Bench)
	}
	if r.SchemaVersion < 1 || r.SchemaVersion > SchemaVersion {
		return fmt.Errorf("schema_version must be 1..%d (got %d)", SchemaVersion, r.SchemaVersion)
	}
	if r.GitRev == "" {
		return fmt.Errorf("git_rev is required")
	}
	if r.Target == "" {
		return fmt.Errorf("target is required")
	}
	if err := r.Spec.Validate(); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if r.WallSeconds <= 0 {
		return fmt.Errorf("wall_seconds must be > 0 (got %g)", r.WallSeconds)
	}
	if len(r.Endpoints) == 0 {
		return fmt.Errorf("endpoints is empty")
	}
	var total int64
	for ep, st := range r.Endpoints {
		if err := st.validate(); err != nil {
			return fmt.Errorf("endpoint %s: %w", ep, err)
		}
		total += st.Requests
	}
	if err := r.Totals.validate(); err != nil {
		return fmt.Errorf("totals: %w", err)
	}
	if r.Totals.Requests != total {
		return fmt.Errorf("totals.requests = %d, endpoints sum to %d", r.Totals.Requests, total)
	}
	if len(r.Targets) > 0 {
		// The target breakdown slices the same measured requests a second
		// way, so it must reconcile against the same total.
		var ttotal int64
		for tgt, st := range r.Targets {
			if err := st.validate(); err != nil {
				return fmt.Errorf("target %s: %w", tgt, err)
			}
			ttotal += st.Requests
		}
		if ttotal != r.Totals.Requests {
			return fmt.Errorf("targets sum to %d requests, totals has %d", ttotal, r.Totals.Requests)
		}
	}
	return nil
}

func (st EndpointStats) validate() error {
	if st.Requests != st.OK+st.Errors+st.Shed {
		return fmt.Errorf("requests (%d) != ok (%d) + errors (%d) + shed (%d)", st.Requests, st.OK, st.Errors, st.Shed)
	}
	if st.OK > 0 {
		if st.P50ms <= 0 || st.P50ms > st.P90ms || st.P90ms > st.P99ms || st.P99ms > st.MaxMS {
			return fmt.Errorf("percentiles must satisfy 0 < p50 ≤ p90 ≤ p99 ≤ max (got %g, %g, %g, %g)",
				st.P50ms, st.P90ms, st.P99ms, st.MaxMS)
		}
		if st.ThroughputRPS <= 0 {
			return fmt.Errorf("throughput must be > 0 when ok > 0 (got %g)", st.ThroughputRPS)
		}
	}
	if s := st.Stream; s != nil {
		// First match precedes last within every stream, so the ordering
		// survives quantiles and (monotone) bucketing.
		if s.TTFMp50ms <= 0 || s.TTFMp50ms > s.TTLMp50ms || s.TTFMp99ms > s.TTLMp99ms {
			return fmt.Errorf("stream stats must satisfy 0 < ttfm ≤ ttlm per quantile (got p50 %g/%g, p99 %g/%g)",
				s.TTFMp50ms, s.TTLMp50ms, s.TTFMp99ms, s.TTLMp99ms)
		}
	}
	return nil
}

// WriteJSON writes the report to path atomically enough for a CI
// artifact (truncate + write + close).
func (r *Report) WriteJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport loads and validates a BENCH_serve.json file.
func ReadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// WriteTable prints the human-readable run summary.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# tedload — %s @ %s (%s)\n", r.Target, r.GitRev, r.mode())
	fmt.Fprintf(w, "# wall %.2fs, warmup %d, measured %d\n", r.WallSeconds, r.Spec.Warmup, r.Spec.Requests)
	fmt.Fprintln(w, "endpoint\trequests\tok\terrors\tshed\tp50_ms\tp90_ms\tp99_ms\tmax_ms\trps")
	row := func(name string, st EndpointStats) {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.1f\n",
			name, st.Requests, st.OK, st.Errors, st.Shed,
			st.P50ms, st.P90ms, st.P99ms, st.MaxMS, st.ThroughputRPS)
	}
	for _, ep := range Endpoints {
		if st, ok := r.Endpoints[ep]; ok {
			row(ep, st)
			if s := st.Stream; s != nil {
				fmt.Fprintf(w, "  %s stream\tttfm p50 %.3f p99 %.3f\tttlm p50 %.3f p99 %.3f (ms)\n",
					ep, s.TTFMp50ms, s.TTFMp99ms, s.TTLMp50ms, s.TTLMp99ms)
			}
		}
	}
	row("TOTAL", r.Totals)
	if len(r.Targets) > 0 {
		tgts := make([]string, 0, len(r.Targets))
		for tgt := range r.Targets {
			tgts = append(tgts, tgt)
		}
		sort.Strings(tgts)
		for _, tgt := range tgts {
			row("  @"+tgt, r.Targets[tgt])
		}
	}
	if r.RequestedRPS > 0 && r.AchievedRPS > 0 {
		fmt.Fprintf(w, "# offered rate: requested %.1f rps, achieved %.1f rps\n", r.RequestedRPS, r.AchievedRPS)
	}
}

func (r *Report) mode() string {
	if r.Spec.Rate > 0 {
		m := fmt.Sprintf("open loop, %.0f rps Poisson, ≤ %d outstanding", r.Spec.Rate, r.Spec.Conc)
		if r.Spec.Tenant != "" {
			m += ", tenant " + r.Spec.Tenant
		}
		return m
	}
	m := fmt.Sprintf("closed loop, %d workers", r.Spec.Conc)
	if r.Spec.Tenant != "" {
		m += ", tenant " + r.Spec.Tenant
	}
	return m
}

// histMS reads one quantile of a histogram in milliseconds.
func histMS(h *Hist, q float64) float64 {
	return float64(h.Quantile(q).Nanoseconds()) / 1e6
}

// statsToEndpoint folds a histogram + counters into wire form.
func statsToEndpoint(h *Hist, errors, shed int64, firstErr string, wall time.Duration) EndpointStats {
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	st := EndpointStats{
		OK:         h.Count(),
		Errors:     errors,
		Shed:       shed,
		FirstError: firstErr,
	}
	st.Requests = st.OK + st.Errors + st.Shed
	if st.OK > 0 {
		st.P50ms = ms(h.Quantile(0.50))
		st.P90ms = ms(h.Quantile(0.90))
		st.P99ms = ms(h.Quantile(0.99))
		st.MaxMS = ms(h.Max())
		st.MeanMS = ms(h.Mean())
		if wall > 0 {
			st.ThroughputRPS = float64(st.OK) / wall.Seconds()
		}
	}
	return st
}
