package load_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"repro/load"
	"repro/server"
)

// TestE2EMultiTarget: the replica-fleet dispatch mode. Two servers over
// the same corpus, the request stream dealt round-robin, every response
// cross-checked against the in-process engine; the report must carry a
// per-target breakdown that splits the stream exactly in half and
// reconciles against the merged totals.
func TestE2EMultiTarget(t *testing.T) {
	c := e2eCorpus(t)
	mk := func() *httptest.Server {
		srv := server.New(c, server.WithMaxInFlight(16))
		srv.Warm()
		return httptest.NewServer(srv)
	}
	ts1, ts2 := mk(), mk()
	defer ts1.Close()
	defer ts2.Close()

	// Read-only mix: replicas of one corpus must answer identically, so
	// the single-engine cross-check holds for both targets.
	spec := load.Spec{
		Mix:  map[string]float64{load.EpDistance: 3, load.EpBounded: 3, load.EpTopK: 2},
		Tau:  4, K: 3,
		Seed: 7, Conc: 4, Warmup: 8, Requests: 120,
	}
	cc := crossCheck(c, server.New(c).Engine())
	run := func(targets []string) *load.Report {
		t.Helper()
		r := &load.Runner{
			Base: targets[0], Targets: targets,
			Client: ts1.Client(), Spec: spec, Snap: load.SnapshotOf(c),
			GitRev: "e2e-test",
			Check:  cc,
		}
		rep, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Validate(); err != nil {
			t.Fatalf("report fails schema: %v", err)
		}
		if rep.WarmupErrors != 0 || rep.Totals.Errors != 0 {
			t.Fatalf("run counted errors: warmup %d, measured %d (first: %s)",
				rep.WarmupErrors, rep.Totals.Errors, rep.Totals.FirstError)
		}
		return rep
	}

	rep := run([]string{ts1.URL, ts2.URL})
	if rep.Target != ts1.URL+","+ts2.URL {
		t.Fatalf("target = %q, want the comma-joined fleet", rep.Target)
	}
	if len(rep.Targets) != 2 {
		t.Fatalf("targets block has %d entries, want 2: %+v", len(rep.Targets), rep.Targets)
	}
	var sum int64
	for _, u := range []string{ts1.URL, ts2.URL} {
		st, ok := rep.Targets[u]
		if !ok {
			t.Fatalf("targets block missing %s", u)
		}
		// Round-robin over an even request count: exactly half each.
		if st.Requests != int64(spec.Requests/2) || st.OK != st.Requests {
			t.Fatalf("target %s: %d requests (%d ok), want %d clean", u, st.Requests, st.OK, spec.Requests/2)
		}
		sum += st.Requests
	}
	if sum != rep.Totals.Requests {
		t.Fatalf("targets sum to %d requests, totals has %d", sum, rep.Totals.Requests)
	}

	// The artifact round-trips with the targets block intact.
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := load.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("report did not round-trip:\nwrote %+v\nread  %+v", rep, back)
	}

	// A single-target run emits no targets block (schema v3 stays
	// byte-compatible with v2 artifacts there), and an identical stream:
	// generation is target-blind, so the merged totals are comparable.
	solo := run([]string{ts1.URL})
	if solo.Targets != nil {
		t.Fatalf("single-target run emitted a targets block: %+v", solo.Targets)
	}
	if solo.Totals.Requests != rep.Totals.Requests || solo.Totals.OK != rep.Totals.OK {
		t.Fatalf("single- and multi-target runs measured different streams: %+v vs %+v", solo.Totals, rep.Totals)
	}
}

// TestValidateTargets pins the schema contract for the targets block:
// it must reconcile against totals, and every entry must satisfy the
// per-entry invariants.
func TestValidateTargets(t *testing.T) {
	base := func() *load.Report {
		return &load.Report{
			Bench: "serve", SchemaVersion: load.SchemaVersion, GitRev: "x",
			Target: "a,b",
			Spec: load.Spec{
				Mix: map[string]float64{load.EpDistance: 1}, K: 1, Conc: 1, Requests: 4,
			},
			WallSeconds: 1,
			Endpoints: map[string]load.EndpointStats{
				load.EpDistance: {Requests: 4, OK: 4, P50ms: 1, P90ms: 1, P99ms: 1, MaxMS: 1, ThroughputRPS: 4},
			},
			Totals: load.EndpointStats{Requests: 4, OK: 4, P50ms: 1, P90ms: 1, P99ms: 1, MaxMS: 1, ThroughputRPS: 4},
			Targets: map[string]load.EndpointStats{
				"a": {Requests: 2, OK: 2, P50ms: 1, P90ms: 1, P99ms: 1, MaxMS: 1, ThroughputRPS: 2},
				"b": {Requests: 2, OK: 2, P50ms: 1, P90ms: 1, P99ms: 1, MaxMS: 1, ThroughputRPS: 2},
			},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("well-formed v3 report rejected: %v", err)
	}

	short := base()
	st := short.Targets["b"]
	st.Requests, st.OK = 1, 1
	short.Targets["b"] = st
	if err := short.Validate(); err == nil {
		t.Fatal("targets that undercount totals validated")
	}

	bad := base()
	st = bad.Targets["a"]
	st.OK = 1 // requests != ok + errors + shed
	bad.Targets["a"] = st
	if err := bad.Validate(); err == nil {
		t.Fatal("inconsistent target entry validated")
	}

	// Older artifacts (no targets block) stay in the trajectory.
	for _, v := range []int{1, 2} {
		old := base()
		old.SchemaVersion = v
		old.Targets = nil
		if err := old.Validate(); err != nil {
			t.Fatalf("schema v%d artifact rejected: %v", v, err)
		}
	}
	future := base()
	future.SchemaVersion = load.SchemaVersion + 1
	if err := future.Validate(); err == nil {
		t.Fatal("unknown future schema version validated")
	}
}
