package load

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistGoldenExactRegion: durations under 64ns land in unit buckets,
// so quantiles are exact nearest-rank values.
func TestHistGoldenExactRegion(t *testing.T) {
	h := &Hist{}
	for i := 1; i <= 50; i++ {
		h.Observe(time.Duration(i))
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 25},  // rank ceil(0.5·50) = 25
		{0.9, 45},  // rank 45
		{0.99, 50}, // rank ceil(49.5) = 50
		{0, 1},     // rank clamps to 1
		{1, 50},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if h.Max() != 50 || h.Count() != 50 {
		t.Errorf("Max/Count = %d/%d, want 50/50", h.Max(), h.Count())
	}
}

// TestHistGoldenLogRegion pins exact expected outputs for a known
// sequence under log bucketing: 1ms..1000ms, one sample each. The
// goldens are the hand-computed bucket upper bounds (see hist.go's
// mapping; subBits = 5): the quantile is conservative — at or above the
// true nearest-rank value, within one sub-bucket width — and the
// maximum clamps it exactly.
func TestHistGoldenLogRegion(t *testing.T) {
	h := &Hist{}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		// rank 500 → true 500ms; bucket [494927872, 503316479]ns.
		{0.50, 503316479 * time.Nanosecond},
		// rank 900 → true 900ms; bucket [889192448, 905969663]ns.
		{0.90, 905969663 * time.Nanosecond},
		// rank 990 → true 990ms; bucket upper 1006632959ns clamps to the
		// exact observed max, 1000ms.
		{0.99, 1000 * time.Millisecond},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := h.Max(); got != 1000*time.Millisecond {
		t.Errorf("Max = %v, want 1s (exact)", got)
	}
	if got := h.Mean(); got != 500500*time.Microsecond {
		t.Errorf("Mean = %v, want 500.5ms (exact)", got)
	}
}

// TestHistQuantileErrorBound: against random samples, every quantile is
// ≥ the true nearest-rank value and within the documented 2^-5 relative
// bucketing error above it.
func TestHistQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Hist{}
	var vals []int64
	for i := 0; i < 5000; i++ {
		// Mix magnitudes: ns to minutes.
		v := int64(1) << uint(rng.Intn(36))
		v += rng.Int63n(v)
		vals = append(vals, v)
		h.Observe(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i := 1; i <= 100; i++ {
		q := float64(i) / 100
		rank := int(math.Ceil(q * float64(len(vals)))) // the nearest-rank definition Quantile documents
		if rank < 1 {
			rank = 1
		}
		if rank > len(vals) {
			rank = len(vals)
		}
		truth := vals[rank-1]
		got := int64(h.Quantile(q))
		if got < truth {
			t.Fatalf("Quantile(%g) = %d underestimates true nearest-rank %d", q, got, truth)
		}
		if limit := truth + truth/32 + 1; got > limit {
			t.Fatalf("Quantile(%g) = %d exceeds error bound %d (true %d)", q, got, limit, truth)
		}
	}
}

// TestHistBucketInvariants: the mapping round-trips — every value lands
// in a bucket whose range contains it, and buckets tile the axis
// monotonically.
func TestHistBucketInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(v int64) {
		idx := bucketOf(v)
		if idx < 0 || idx >= nBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range [0, %d)", v, idx, nBuckets)
		}
		if up := bucketMax(idx); up < v {
			t.Fatalf("bucketMax(bucketOf(%d)) = %d < value", v, up)
		}
		if idx > 0 && bucketMax(idx-1) >= v {
			t.Fatalf("value %d also fits bucket %d (max %d)", v, idx-1, bucketMax(idx-1))
		}
	}
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1<<62 - 1, 1 << 62, int64(^uint64(0) >> 1)} {
		check(v)
	}
	for i := 0; i < 100000; i++ {
		check(rng.Int63())
	}
}

// TestHistMergeProperties: merge is commutative, and merging the
// histograms of any partition of a sample set is indistinguishable —
// bucket for bucket — from recording the whole set into one histogram.
func TestHistMergeProperties(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(800)
		parts := make([]*Hist, 3)
		for i := range parts {
			parts[i] = &Hist{}
		}
		whole := &Hist{}
		for i := 0; i < n; i++ {
			d := time.Duration(rng.Int63n(int64(10 * time.Second)))
			whole.Observe(d)
			parts[rng.Intn(len(parts))].Observe(d)
		}

		var ab Hist
		ab.Merge(parts[0])
		ab.Merge(parts[1])
		var ba Hist
		ba.Merge(parts[1])
		ba.Merge(parts[0])
		if ab != ba {
			t.Fatalf("seed %d: merge(a,b) != merge(b,a)", seed)
		}

		// merge of the splits ≡ the whole, in any association order.
		var left Hist
		left.Merge(&ab)
		left.Merge(parts[2])
		var bc Hist
		bc.Merge(parts[1])
		bc.Merge(parts[2])
		var right Hist
		right.Merge(parts[0])
		right.Merge(&bc)
		if left != *whole || right != *whole {
			t.Fatalf("seed %d: merged splits differ from the whole histogram", seed)
		}
	}
}

// TestHistZero: the zero histogram is usable and reports zeros.
func TestHistZero(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("zero Hist not inert: %d %v %v %v", h.Count(), h.Max(), h.Mean(), h.Quantile(0.5))
	}
}
