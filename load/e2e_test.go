package load_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	ted "repro"
	"repro/batch"
	"repro/corpus"
	"repro/gen"
	"repro/load"
	"repro/server"
)

func e2eCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c := corpus.New(corpus.WithHistogramIndex())
	for i := 0; i < 8; i++ {
		base := gen.Random(int64(100+i), gen.RandomSpec{Size: 20 + i, MaxDepth: 8, MaxFanout: 4, Labels: 10})
		c.Add(base)
		c.Add(gen.RenameSome(base, 1+i%3, int64(i)))
	}
	return c
}

// crossCheck builds the Runner.Check hook that verifies every served
// answer against the in-process engine: the same decoding the handlers
// perform, the same engine calls, exact comparison.
func crossCheck(c *corpus.Corpus, e *batch.Engine) func(req load.Request, status int, body []byte) error {
	resolve := func(ref server.TreeRef) (*batch.PreparedTree, error) {
		if ref.ID != nil {
			p, ok := c.Prepared(e, corpus.ID(*ref.ID))
			if !ok {
				return nil, fmt.Errorf("no stored tree %d", *ref.ID)
			}
			return p, nil
		}
		tr, err := ted.Parse(ref.Tree)
		if err != nil {
			return nil, err
		}
		return c.PrepareQuery(e, tr), nil
	}
	return func(req load.Request, status int, body []byte) error {
		switch req.Endpoint {
		case load.EpDistance:
			var q server.DistanceRequest
			var r server.DistanceResponse
			if err := decode2(req.Body, &q, body, &r); err != nil {
				return err
			}
			f, err := resolve(q.F)
			if err != nil {
				return err
			}
			g, err := resolve(q.G)
			if err != nil {
				return err
			}
			if want := e.Distance(f, g); r.Dist != want {
				return fmt.Errorf("distance = %g served, %g in process", r.Dist, want)
			}
		case load.EpBounded:
			var q server.DistanceBoundedRequest
			var r server.DistanceBoundedResponse
			if err := decode2(req.Body, &q, body, &r); err != nil {
				return err
			}
			f, err := resolve(q.F)
			if err != nil {
				return err
			}
			g, err := resolve(q.G)
			if err != nil {
				return err
			}
			d, within := e.DistanceBounded(f, g, q.Tau)
			if r.Within != within || r.Dist != d {
				return fmt.Errorf("bounded = (%g, %v) served, (%g, %v) in process", r.Dist, r.Within, d, within)
			}
		case load.EpTopK:
			var q server.TopKRequest
			var r server.TopKResponse
			if err := decode2(req.Body, &q, body, &r); err != nil {
				return err
			}
			p, err := resolve(q.Query)
			if err != nil {
				return err
			}
			want, _ := c.TopKAcross(e, p, q.K)
			if len(r.Matches) != len(want) {
				return fmt.Errorf("topk returned %d matches, want %d", len(r.Matches), len(want))
			}
			for i, m := range want {
				got := r.Matches[i]
				if got.Tree != int64(m.Tree) || got.Root != m.Root || got.Dist != m.Dist {
					return fmt.Errorf("topk match %d = %+v served, %+v in process", i, got, m)
				}
			}
		case load.EpJoin:
			var q server.JoinRequest
			var r server.JoinResponse
			if err := decode2(req.Body, &q, body, &r); err != nil {
				return err
			}
			want, _ := c.Join(e, q.Tau, batch.JoinOptions{Mode: batch.IndexHistogram})
			if r.Count != len(want) {
				return fmt.Errorf("join count = %d served, %d in process", r.Count, len(want))
			}
			if r.Truncated != (len(want) > q.Limit) {
				return fmt.Errorf("join truncated = %v with %d matches at limit %d", r.Truncated, len(want), q.Limit)
			}
			for i, got := range r.Matches {
				m := want[i]
				if got.I != int64(m.I) || got.J != int64(m.J) || got.Dist != m.Dist {
					return fmt.Errorf("join match %d = %+v served, %+v in process", i, got, m)
				}
			}
		case load.EpJoinStream:
			var q server.JoinRequest
			if err := json.Unmarshal(req.Body, &q); err != nil {
				return fmt.Errorf("decode request: %w", err)
			}
			got, done, err := scanStream[server.JoinMatch, server.JoinStreamDone](body)
			if err != nil {
				return err
			}
			want, _ := c.Join(e, q.Tau, batch.JoinOptions{Mode: batch.IndexHistogram})
			if done.Count != len(want) {
				return fmt.Errorf("streamed join count = %d served, %d in process", done.Count, len(want))
			}
			if done.Truncated != (len(want) > q.Limit) {
				return fmt.Errorf("streamed join truncated = %v with %d matches at limit %d", done.Truncated, len(want), q.Limit)
			}
			// Streamed matches arrive in completion order and the limit cuts
			// that order, so compare by membership: every emitted pair must be
			// a real match, and the emitted count must be exactly the limit's
			// worth. With unique pairs that is multiset equality when nothing
			// was truncated.
			if len(got) != min(q.Limit, len(want)) {
				return fmt.Errorf("streamed join emitted %d matches, want %d", len(got), min(q.Limit, len(want)))
			}
			wantBy := make(map[[2]int64]float64, len(want))
			for _, m := range want {
				wantBy[[2]int64{int64(m.I), int64(m.J)}] = m.Dist
			}
			for _, g := range got {
				d, ok := wantBy[[2]int64{g.I, g.J}]
				if !ok || d != g.Dist {
					return fmt.Errorf("streamed join emitted (%d,%d,%g); in process has (dist %g, present %v)", g.I, g.J, g.Dist, d, ok)
				}
			}
		case load.EpTopKStream:
			var q server.TopKRequest
			if err := json.Unmarshal(req.Body, &q); err != nil {
				return fmt.Errorf("decode request: %w", err)
			}
			got, _, err := scanStream[server.TopKMatch, server.TopKStreamDone](body)
			if err != nil {
				return err
			}
			p, err := resolve(q.Query)
			if err != nil {
				return err
			}
			want, _ := c.TopKAcross(e, p, q.K)
			if len(got) != len(want) {
				return fmt.Errorf("streamed topk emitted %d matches, want %d", len(got), len(want))
			}
			for i, m := range want {
				if got[i].Tree != int64(m.Tree) || got[i].Root != m.Root || got[i].Dist != m.Dist {
					return fmt.Errorf("streamed topk match %d = %+v served, %+v in process", i, got[i], m)
				}
			}
		case load.EpMutate:
			var q server.TreeRequest
			var r server.TreeResponse
			if err := decode2(req.Body, &q, body, &r); err != nil {
				return err
			}
			stored, ok := c.Tree(corpus.ID(r.ID))
			if !ok {
				return fmt.Errorf("mutate acknowledged id %d but the corpus has no such tree", r.ID)
			}
			if stored.String() != q.Tree {
				return fmt.Errorf("mutate stored %q, posted %q", stored.String(), q.Tree)
			}
		default:
			return fmt.Errorf("unknown endpoint %q", req.Endpoint)
		}
		return nil
	}
}

// scanStream decodes a captured NDJSON response body into its match
// lines and its terminal done record, which must be present — the
// cross-check re-applies the client's cut-short rule to the raw bytes.
func scanStream[M, D any](body []byte) ([]M, *D, error) {
	var (
		ms   []M
		done *D
	)
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec struct {
			Match *M `json:"match"`
			Done  *D `json:"done"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, nil, fmt.Errorf("decode stream line %q: %w", line, err)
		}
		if rec.Match != nil {
			ms = append(ms, *rec.Match)
		}
		if rec.Done != nil {
			done = rec.Done
		}
	}
	if done == nil {
		return nil, nil, fmt.Errorf("stream has no done record")
	}
	return ms, done, nil
}

func decode2(reqBody []byte, reqInto any, respBody []byte, respInto any) error {
	if err := json.Unmarshal(reqBody, reqInto); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	if err := json.Unmarshal(respBody, respInto); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}

// TestE2EClosedLoopCrossChecked: the full tedload lifecycle against an
// httptest-served server.Handler over a static corpus — a mixed
// read-only workload, every single response cross-checked against the
// in-process engine, and the emitted BENCH_serve.json surviving a
// schema-validated round trip.
func TestE2EClosedLoopCrossChecked(t *testing.T) {
	c := e2eCorpus(t)
	srv := server.New(c, server.WithMaxInFlight(16))
	srv.Warm()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The HTTP snapshot path agrees with the in-process one.
	snap := load.SnapshotOf(c)
	fetched, err := load.FetchSnapshot(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, fetched) {
		t.Fatalf("FetchSnapshot = %+v, SnapshotOf = %+v", fetched, snap)
	}

	spec := load.Spec{
		Mix: map[string]float64{
			load.EpDistance: 3, load.EpBounded: 3, load.EpTopK: 2, load.EpJoin: 0.3,
			load.EpJoinStream: 0.3, load.EpTopKStream: 2,
		},
		Tau: 4, K: 3, JoinMode: "histogram", JoinLimit: 16,
		Seed: 11, Conc: 4, Warmup: 8, Requests: 120,
	}
	r := &load.Runner{
		Base: ts.URL, Client: ts.Client(), Spec: spec, Snap: snap,
		GitRev: "e2e-test",
		Check:  crossCheck(c, srv.Engine()),
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report fails schema: %v", err)
	}
	if rep.WarmupErrors != 0 || rep.Totals.Errors != 0 {
		t.Fatalf("run counted errors: warmup %d, measured %d (first: %s)",
			rep.WarmupErrors, rep.Totals.Errors, rep.Totals.FirstError)
	}
	if rep.Totals.Requests != int64(spec.Requests) {
		t.Fatalf("measured %d requests, want %d", rep.Totals.Requests, spec.Requests)
	}
	if rep.Totals.OK != int64(spec.Requests) || rep.Totals.Shed != 0 {
		t.Fatalf("uncontended run: ok %d, shed %d, want %d, 0", rep.Totals.OK, rep.Totals.Shed, spec.Requests)
	}
	for _, ep := range []string{load.EpDistance, load.EpBounded, load.EpTopK, load.EpTopKStream} {
		if st, ok := rep.Endpoints[ep]; !ok || st.OK == 0 {
			t.Fatalf("endpoint %s missing from the report: %+v", ep, rep.Endpoints)
		}
	}
	// Top-k always yields matches here, so the streaming histograms must
	// have been populated.
	if st := rep.Endpoints[load.EpTopKStream]; st.Stream == nil {
		t.Fatal("topk_stream endpoint reported no stream block")
	}

	// The artifact round-trips: write, re-read (ReadReport validates),
	// compare field for field.
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := load.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("report did not round-trip:\nwrote %+v\nread  %+v", rep, back)
	}
}

// TestE2EOpenLoopShedding: open-loop arrivals against a server whose
// admission gate is deliberately tiny and slow (one slot, an admit-hook
// delay, no queueing): 503s must be counted as shed — not dropped, not
// errors — and must reconcile exactly with the server's own shed
// counter, while mutations that do land remain fully cross-checked.
func TestE2EOpenLoopShedding(t *testing.T) {
	c := e2eCorpus(t)
	srv := server.New(c,
		server.WithMaxInFlight(1),
		server.WithQueueTimeout(0),
		server.WithAdmitHook(func() { time.Sleep(3 * time.Millisecond) }),
	)
	srv.Warm()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := load.Spec{
		Mix: map[string]float64{load.EpDistance: 2, load.EpMutate: 1},
		Tau: 4, K: 1,
		Seed: 23, Rate: 4000, Conc: 16, Warmup: 0, Requests: 150,
	}
	r := &load.Runner{
		Base: ts.URL, Client: ts.Client(), Spec: spec, Snap: load.SnapshotOf(c),
		GitRev: "e2e-test",
		Check:  crossCheck(c, srv.Engine()),
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report fails schema: %v", err)
	}
	if rep.Totals.Errors != 0 || rep.WarmupErrors != 0 {
		t.Fatalf("sheds must not count as errors (errors %d, first: %s)", rep.Totals.Errors, rep.Totals.FirstError)
	}
	if rep.Totals.Requests != int64(spec.Requests) {
		t.Fatalf("accounted %d requests, want %d — shed requests were dropped", rep.Totals.Requests, spec.Requests)
	}
	if rep.Totals.Shed == 0 {
		t.Fatal("overloaded run shed nothing; the open-loop path is not applying offered load")
	}
	if got := srv.Stats().Shed; got != rep.Totals.Shed {
		t.Fatalf("client observed %d sheds, server counted %d", rep.Totals.Shed, got)
	}
}
