package load

import (
	"math"
	"math/bits"
	"time"
)

// The histogram's bucketing: each power of two of the nanosecond range
// is split into 2^subBits linear sub-buckets (HDR-style log-linear
// spacing). Values below 2^(subBits+1) ns land in exact unit buckets.
// The mapping is a fixed function of the value alone, so two histograms
// always share one bucket universe and Merge is element-wise addition —
// no interpolation, no rebinning, associative and commutative by
// construction.
const (
	subBits = 5 // 32 sub-buckets per octave → relative error ≤ 2^-5 = 3.125%

	// nBuckets covers the full int64 nanosecond range: the exact region
	// (indices [0, 2^(subBits+1))) plus one 2^subBits-wide run per
	// remaining octave. The top octave (k = 64, shift = 63-subBits)
	// starts at index shift<<subBits and runs one full sub-bucket range
	// past it.
	nBuckets = (63-subBits)<<subBits + (1 << (subBits + 1))
)

// Hist is a latency histogram with logarithmic buckets: recorded
// durations are exact below 64ns and within a 3.125% relative error
// above, quantiles are conservative (never below the true nearest-rank
// value, at most 3.2% above it), and histograms recorded independently
// — per worker, per process — merge losslessly. The zero value is ready
// to use. Hist is not safe for concurrent use; record into one Hist per
// goroutine and Merge.
type Hist struct {
	counts [nBuckets]int64
	n      int64
	sum    int64 // exact, for Mean
	max    int64 // exact, clamps high quantiles
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	k := bits.Len64(u)
	if k <= subBits+1 {
		return int(u) // exact region
	}
	shift := uint(k - subBits - 1)
	return int(uint64(shift)<<subBits) + int(u>>shift)
}

// bucketMax returns the largest value mapping to bucket idx — the
// conservative representative Quantile reports.
func bucketMax(idx int) int64 {
	if idx < 1<<(subBits+1) {
		return int64(idx)
	}
	shift := uint(idx>>subBits) - 1
	lo := int64(idx-int(shift)<<subBits) << shift
	return lo + int64(1)<<shift - 1
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge folds o into h. Merging is associative and commutative, and
// merging the histograms of any partition of a sample set yields the
// histogram of the whole set.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded durations.
func (h *Hist) Count() int64 { return h.n }

// Max returns the largest recorded duration, exactly.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the exact arithmetic mean of the recorded durations.
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / h.n)
}

// Quantile returns the q-quantile (q in [0, 1]) by nearest rank: the
// upper bound of the bucket holding the ceil(q·n)-th smallest sample,
// clamped to the exact observed maximum. The result is never below the
// true nearest-rank value and overshoots it by at most one bucket width
// (≤ 3.125% relative for values ≥ 64ns).
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketMax(i)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max) // unreachable: cum == n after the loop
}
