package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Runner executes one workload against one target — or, with Targets
// set, round-robin across a replica fleet. A target is any server
// speaking the package server JSON API: a live tedd over TCP or an
// httptest.Server wrapping server.New in-process — the harness is
// identical either way, which is what lets the e2e tests hold it to the
// engine's correctness bar.
type Runner struct {
	// Base is the target URL prefix, e.g. "http://127.0.0.1:8420".
	Base string
	// Targets, when non-empty, overrides Base with several target URL
	// prefixes; the generated request stream is dealt across them
	// round-robin (request i goes to target i mod len). This is the
	// replica-fleet mode: the stream stays deterministic and identical to
	// a single-target run, only the dispatch fans out, and the report
	// carries a per-target breakdown next to the merged totals. The
	// targets must serve the same corpus (primary + its read replicas) —
	// the snapshot is taken once, and a mutating mix will 403 on
	// read-only replicas.
	Targets []string
	// Client issues the requests (http.DefaultClient if nil).
	Client *http.Client
	Spec   Spec
	Snap   Snapshot
	// GitRev stamps the report ("unknown" if empty).
	GitRev string

	// Check, if set, cross-checks every 2xx response (it receives the
	// generated request and the raw response body). A non-nil return is
	// counted as that endpoint's error — the e2e harness uses this to
	// compare every served answer against the in-process engine.
	Check func(req Request, status int, body []byte) error
}

// shard is one worker's private accounting; shards merge after the run
// (the merge path is the same one a multi-process harness would use).
// Streaming endpoints additionally record time-to-first-match and
// time-to-last-match: the latencies the streaming API exists to
// improve, invisible in the whole-exchange histogram.
type shard struct {
	hists    map[string]*Hist
	ttfm     map[string]*Hist
	ttlm     map[string]*Hist
	errors   map[string]int64
	shed     map[string]int64
	firstErr map[string]string

	// The same measured exchanges keyed by target instead of endpoint —
	// populated only on multi-target runs, merged into Report.Targets.
	tgtHists    map[string]*Hist
	tgtErrors   map[string]int64
	tgtShed     map[string]int64
	tgtFirstErr map[string]string
}

func newShard() *shard {
	return &shard{
		hists:    map[string]*Hist{},
		ttfm:     map[string]*Hist{},
		ttlm:     map[string]*Hist{},
		errors:   map[string]int64{},
		shed:     map[string]int64{},
		firstErr: map[string]string{},

		tgtHists:    map[string]*Hist{},
		tgtErrors:   map[string]int64{},
		tgtShed:     map[string]int64{},
		tgtFirstErr: map[string]string{},
	}
}

func observe(m map[string]*Hist, ep string, d time.Duration) {
	h := m[ep]
	if h == nil {
		h = &Hist{}
		m[ep] = h
	}
	h.Observe(d)
}

func (sh *shard) fail(ep, tgt, msg string) {
	sh.errors[ep]++
	if sh.firstErr[ep] == "" {
		sh.firstErr[ep] = msg
	}
	sh.tgtErrors[tgt]++
	if sh.tgtFirstErr[tgt] == "" {
		sh.tgtFirstErr[tgt] = msg
	}
}

type job struct {
	req  Request
	warm bool
	// tgt is the URL prefix this request is dispatched to — Base on
	// single-target runs, the round-robin pick from Targets otherwise.
	tgt string
}

// Run drives the workload to completion and reports. The request
// stream is generated up front from (Spec, Snap, Seed) — deterministic
// and independent of concurrency — then dispatched either closed-loop
// (Conc workers, one request in flight each) or open-loop (Poisson
// arrivals at Rate rps, at most Conc outstanding). On ctx cancellation
// the remaining stream is abandoned and the partial report is returned
// alongside ctx's error.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	gen, err := NewGen(r.Spec, r.Snap)
	if err != nil {
		return nil, err
	}
	client := r.Client
	if client == nil {
		client = http.DefaultClient
	}

	targets := r.Targets
	if len(targets) == 0 {
		targets = []string{r.Base}
	}
	total := r.Spec.Warmup + r.Spec.Requests
	jobs := make(chan job, r.Spec.Conc)
	shards := make([]*shard, r.Spec.Conc)
	for i := range shards {
		shards[i] = newShard()
	}

	var (
		measureStart time.Time
		startOnce    sync.Once
		warmupErrs   int64
		warmupMu     sync.Mutex
	)
	started := time.Now()

	do := func(j job, sh *shard) {
		if !j.warm {
			startOnce.Do(func() { measureStart = time.Now() })
		}
		ep := j.req.Endpoint
		var body io.Reader
		if j.req.Body != nil {
			body = bytes.NewReader(j.req.Body)
		}
		hr, err := http.NewRequestWithContext(ctx, j.req.Method, j.tgt+j.req.Path, body)
		if err != nil {
			sh.fail(ep, j.tgt, fmt.Sprintf("build request: %v", err))
			return
		}
		if body != nil {
			hr.Header.Set("Content-Type", "application/json")
		}
		if r.Spec.Tenant != "" {
			hr.Header.Set("X-Tenant", r.Spec.Tenant)
		}
		start := time.Now()
		resp, err := client.Do(hr)
		if err != nil {
			if ctx.Err() == nil {
				r.recordFailure(sh, j, ep, fmt.Sprintf("transport: %v", err), &warmupErrs, &warmupMu)
			}
			return
		}
		if streamEndpoints[ep] && resp.StatusCode >= 200 && resp.StatusCode < 300 {
			r.consumeStream(j, sh, resp, start, &warmupErrs, &warmupMu)
			return
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		elapsed := time.Since(start)
		if rerr != nil {
			r.recordFailure(sh, j, ep, fmt.Sprintf("read body: %v", rerr), &warmupErrs, &warmupMu)
			return
		}
		switch {
		case resp.StatusCode == http.StatusServiceUnavailable:
			// Shed by admission control: counted, never dropped — under
			// open-loop overload the shed rate is the measurement.
			if !j.warm {
				sh.shed[ep]++
				sh.tgtShed[j.tgt]++
			}
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if r.Check != nil {
				if cerr := r.Check(j.req, resp.StatusCode, raw); cerr != nil {
					r.recordFailure(sh, j, ep, fmt.Sprintf("cross-check: %v", cerr), &warmupErrs, &warmupMu)
					return
				}
			}
			if !j.warm {
				observe(sh.hists, ep, elapsed)
				observe(sh.tgtHists, j.tgt, elapsed)
			}
		default:
			r.recordFailure(sh, j, ep, fmt.Sprintf("status %d: %s", resp.StatusCode, truncate(raw, 200)), &warmupErrs, &warmupMu)
		}
	}

	// Measured-phase arrival accounting (open loop only): written by the
	// single pacer goroutine, read after wg.Wait.
	var (
		arrivals          int64
		firstArr, lastArr time.Time
	)

	var wg sync.WaitGroup
	if r.Spec.Rate > 0 {
		// Open loop: a pacer draws Poisson gaps and hands each arrival a
		// free worker slot; slots bound the outstanding requests, and
		// because a slot is held exclusively, its shard needs no lock.
		slots := make(chan int, r.Spec.Conc)
		for i := 0; i < r.Spec.Conc; i++ {
			slots <- i
		}
		gaps := rand.New(rand.NewSource(r.Spec.Seed ^ 0x5e3779b97f4a7c15))
		wg.Add(1)
		go func() {
			defer wg.Done()
			var inner sync.WaitGroup
			defer inner.Wait()
			// The schedule is absolute: deadline i is the pacer start plus
			// the sum of the first i Poisson gaps, and each iteration
			// sleeps until its deadline. Sleeping the gap *between*
			// dispatches (the old pacer) stacked generation, scheduling
			// and dispatch overhead on top of every gap, so the offered
			// rate silently undershot the requested one — drift that grew
			// with the request count and made "overload at R rps" milder
			// than the spec claimed. Against absolute deadlines a late
			// dispatch shortens the next sleep instead of shifting every
			// later arrival; the report carries achieved_rps so any
			// residual gap between asked-for and delivered is visible
			// instead of assumed away.
			next := time.Now()
			for i := 0; i < total; i++ {
				j := job{req: gen.Next(), warm: i < r.Spec.Warmup, tgt: targets[i%len(targets)]}
				next = next.Add(time.Duration(gaps.ExpFloat64() / r.Spec.Rate * float64(time.Second)))
				if d := time.Until(next); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				} else if ctx.Err() != nil {
					return
				}
				var slot int
				select {
				case slot = <-slots:
				case <-ctx.Done():
					return
				}
				if !j.warm {
					now := time.Now()
					if arrivals == 0 {
						firstArr = now
					}
					lastArr = now
					arrivals++
				}
				inner.Add(1)
				go func(j job, slot int) {
					defer inner.Done()
					defer func() { slots <- slot }()
					do(j, shards[slot])
				}(j, slot)
			}
		}()
	} else {
		// Closed loop: Conc workers, each keeping exactly one request in
		// flight, pulling from one shared stream.
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(jobs)
			for i := 0; i < total; i++ {
				select {
				case jobs <- job{req: gen.Next(), warm: i < r.Spec.Warmup, tgt: targets[i%len(targets)]}:
				case <-ctx.Done():
					return
				}
			}
		}()
		for w := 0; w < r.Spec.Conc; w++ {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				for j := range jobs {
					do(j, sh)
				}
			}(shards[w])
		}
	}
	wg.Wait()
	wall := time.Duration(0)
	if !measureStart.IsZero() {
		wall = time.Since(measureStart)
	}

	rep := r.report(shards, wall, started, targets)
	rep.WarmupErrors = warmupErrs
	if r.Spec.Rate > 0 {
		rep.RequestedRPS = r.Spec.Rate
		// Achieved offered rate, over actual dispatch times: n arrivals
		// span n−1 gaps. Divergence from RequestedRPS means the pacer
		// could not keep the schedule (or the outstanding-request cap
		// throttled it) — the drift the absolute schedule exists to
		// surface rather than hide.
		if arrivals > 1 && lastArr.After(firstArr) {
			rep.AchievedRPS = float64(arrivals-1) / lastArr.Sub(firstArr).Seconds()
		}
	}
	return rep, ctx.Err()
}

// consumeStream reads one NDJSON streaming response line by line,
// timing the first and last match lines against the request start and
// requiring the terminal done record — a stream without one was cut
// short and is an error, not a fast success.
func (r *Runner) consumeStream(j job, sh *shard, resp *http.Response, start time.Time, warmupErrs *int64, warmupMu *sync.Mutex) {
	defer resp.Body.Close()
	ep := j.req.Endpoint
	br := bufio.NewReader(resp.Body)
	var (
		raw         bytes.Buffer
		first, last time.Duration
		matches     int
		sawDone     bool
	)
	for {
		line, err := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			at := time.Since(start)
			raw.Write(line)
			var rec struct {
				Match json.RawMessage `json:"match"`
				Done  json.RawMessage `json:"done"`
			}
			if uerr := json.Unmarshal(line, &rec); uerr != nil {
				r.recordFailure(sh, j, ep, fmt.Sprintf("stream: bad line: %v", uerr), warmupErrs, warmupMu)
				return
			}
			switch {
			case rec.Done != nil:
				sawDone = true
			case rec.Match != nil:
				matches++
				if matches == 1 {
					first = at
				}
				last = at
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			r.recordFailure(sh, j, ep, fmt.Sprintf("stream: read: %v", err), warmupErrs, warmupMu)
			return
		}
	}
	elapsed := time.Since(start)
	if !sawDone {
		r.recordFailure(sh, j, ep, "stream ended without a done record (cut short)", warmupErrs, warmupMu)
		return
	}
	if r.Check != nil {
		if cerr := r.Check(j.req, resp.StatusCode, raw.Bytes()); cerr != nil {
			r.recordFailure(sh, j, ep, fmt.Sprintf("cross-check: %v", cerr), warmupErrs, warmupMu)
			return
		}
	}
	if !j.warm {
		observe(sh.hists, ep, elapsed)
		observe(sh.tgtHists, j.tgt, elapsed)
		// TTFM/TTLM are defined only for streams that carried ≥ 1 match;
		// an empty (but complete) stream contributes to the exchange
		// histogram alone.
		if matches > 0 {
			observe(sh.ttfm, ep, first)
			observe(sh.ttlm, ep, last)
		}
	}
}

// recordFailure books an error against the measured counters, or the
// run-level warmup counter for warmup-phase requests (warmup failures
// must still fail a gated run, but they are not part of the measured
// arithmetic).
func (r *Runner) recordFailure(sh *shard, j job, ep, msg string, warmupErrs *int64, mu *sync.Mutex) {
	if j.warm {
		mu.Lock()
		*warmupErrs++
		mu.Unlock()
		return
	}
	sh.fail(ep, j.tgt, msg)
}

// report merges the per-worker shards into the wire-form Report.
func (r *Runner) report(shards []*shard, wall time.Duration, started time.Time, targets []string) *Report {
	rev := r.GitRev
	if rev == "" {
		rev = "unknown"
	}
	rep := &Report{
		Bench:         "serve",
		SchemaVersion: SchemaVersion,
		GitRev:        rev,
		StartedAt:     started.UTC().Format(time.RFC3339),
		Target:        strings.Join(targets, ","),
		Spec:          r.Spec,
		WallSeconds:   wall.Seconds(),
		Endpoints:     map[string]EndpointStats{},
	}
	totalHist := &Hist{}
	var totalErrs, totalShed int64
	totalFirst := ""
	for _, ep := range Endpoints {
		merged, mergedF, mergedL := &Hist{}, &Hist{}, &Hist{}
		var errs, shed int64
		first := ""
		for _, sh := range shards {
			if h := sh.hists[ep]; h != nil {
				merged.Merge(h)
			}
			if h := sh.ttfm[ep]; h != nil {
				mergedF.Merge(h)
			}
			if h := sh.ttlm[ep]; h != nil {
				mergedL.Merge(h)
			}
			errs += sh.errors[ep]
			shed += sh.shed[ep]
			if first == "" {
				first = sh.firstErr[ep]
			}
		}
		if merged.Count() == 0 && errs == 0 && shed == 0 {
			continue // endpoint not in the mix
		}
		st := statsToEndpoint(merged, errs, shed, first, wall)
		if mergedF.Count() > 0 {
			// Streaming-only extras; the totals row deliberately omits
			// them (merging TTFM across endpoints measures nothing).
			st.Stream = &StreamStats{
				TTFMp50ms: histMS(mergedF, 0.50),
				TTFMp99ms: histMS(mergedF, 0.99),
				TTLMp50ms: histMS(mergedL, 0.50),
				TTLMp99ms: histMS(mergedL, 0.99),
			}
		}
		rep.Endpoints[ep] = st
		totalHist.Merge(merged)
		totalErrs += errs
		totalShed += shed
		if totalFirst == "" {
			totalFirst = first
		}
	}
	rep.Totals = statsToEndpoint(totalHist, totalErrs, totalShed, totalFirst, wall)
	if len(targets) > 1 {
		// The per-target breakdown slices the same measured exchanges a
		// second way (every OK/error/shed above was also booked against
		// its target), so the block reconciles against Totals exactly.
		rep.Targets = map[string]EndpointStats{}
		for _, tgt := range targets {
			merged := &Hist{}
			var errs, shed int64
			first := ""
			for _, sh := range shards {
				if h := sh.tgtHists[tgt]; h != nil {
					merged.Merge(h)
				}
				errs += sh.tgtErrors[tgt]
				shed += sh.tgtShed[tgt]
				if first == "" {
					first = sh.tgtFirstErr[tgt]
				}
			}
			rep.Targets[tgt] = statsToEndpoint(merged, errs, shed, first, wall)
		}
	}
	return rep
}

func truncate(b []byte, n int) string {
	s := string(bytes.TrimSpace(b))
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}
