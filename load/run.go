package load

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Runner executes one workload against one target. The target is any
// server speaking the package server JSON API: a live tedd over TCP or
// an httptest.Server wrapping server.New in-process — the harness is
// identical either way, which is what lets the e2e tests hold it to the
// engine's correctness bar.
type Runner struct {
	// Base is the target URL prefix, e.g. "http://127.0.0.1:8420".
	Base string
	// Client issues the requests (http.DefaultClient if nil).
	Client *http.Client
	Spec   Spec
	Snap   Snapshot
	// GitRev stamps the report ("unknown" if empty).
	GitRev string

	// Check, if set, cross-checks every 2xx response (it receives the
	// generated request and the raw response body). A non-nil return is
	// counted as that endpoint's error — the e2e harness uses this to
	// compare every served answer against the in-process engine.
	Check func(req Request, status int, body []byte) error
}

// shard is one worker's private accounting; shards merge after the run
// (the merge path is the same one a multi-process harness would use).
type shard struct {
	hists    map[string]*Hist
	errors   map[string]int64
	shed     map[string]int64
	firstErr map[string]string
}

func newShard() *shard {
	return &shard{
		hists:    map[string]*Hist{},
		errors:   map[string]int64{},
		shed:     map[string]int64{},
		firstErr: map[string]string{},
	}
}

func (sh *shard) fail(ep, msg string) {
	sh.errors[ep]++
	if sh.firstErr[ep] == "" {
		sh.firstErr[ep] = msg
	}
}

type job struct {
	req  Request
	warm bool
}

// Run drives the workload to completion and reports. The request
// stream is generated up front from (Spec, Snap, Seed) — deterministic
// and independent of concurrency — then dispatched either closed-loop
// (Conc workers, one request in flight each) or open-loop (Poisson
// arrivals at Rate rps, at most Conc outstanding). On ctx cancellation
// the remaining stream is abandoned and the partial report is returned
// alongside ctx's error.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	gen, err := NewGen(r.Spec, r.Snap)
	if err != nil {
		return nil, err
	}
	client := r.Client
	if client == nil {
		client = http.DefaultClient
	}

	total := r.Spec.Warmup + r.Spec.Requests
	jobs := make(chan job, r.Spec.Conc)
	shards := make([]*shard, r.Spec.Conc)
	for i := range shards {
		shards[i] = newShard()
	}

	var (
		measureStart time.Time
		startOnce    sync.Once
		warmupErrs   int64
		warmupMu     sync.Mutex
	)
	started := time.Now()

	do := func(j job, sh *shard) {
		if !j.warm {
			startOnce.Do(func() { measureStart = time.Now() })
		}
		ep := j.req.Endpoint
		var body io.Reader
		if j.req.Body != nil {
			body = bytes.NewReader(j.req.Body)
		}
		hr, err := http.NewRequestWithContext(ctx, j.req.Method, r.Base+j.req.Path, body)
		if err != nil {
			sh.fail(ep, fmt.Sprintf("build request: %v", err))
			return
		}
		if body != nil {
			hr.Header.Set("Content-Type", "application/json")
		}
		start := time.Now()
		resp, err := client.Do(hr)
		if err != nil {
			if ctx.Err() == nil {
				r.recordFailure(sh, j, ep, fmt.Sprintf("transport: %v", err), &warmupErrs, &warmupMu)
			}
			return
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		elapsed := time.Since(start)
		if rerr != nil {
			r.recordFailure(sh, j, ep, fmt.Sprintf("read body: %v", rerr), &warmupErrs, &warmupMu)
			return
		}
		switch {
		case resp.StatusCode == http.StatusServiceUnavailable:
			// Shed by admission control: counted, never dropped — under
			// open-loop overload the shed rate is the measurement.
			if !j.warm {
				sh.shed[ep]++
			}
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if r.Check != nil {
				if cerr := r.Check(j.req, resp.StatusCode, raw); cerr != nil {
					r.recordFailure(sh, j, ep, fmt.Sprintf("cross-check: %v", cerr), &warmupErrs, &warmupMu)
					return
				}
			}
			if !j.warm {
				h := sh.hists[ep]
				if h == nil {
					h = &Hist{}
					sh.hists[ep] = h
				}
				h.Observe(elapsed)
			}
		default:
			r.recordFailure(sh, j, ep, fmt.Sprintf("status %d: %s", resp.StatusCode, truncate(raw, 200)), &warmupErrs, &warmupMu)
		}
	}

	var wg sync.WaitGroup
	if r.Spec.Rate > 0 {
		// Open loop: a pacer draws Poisson gaps and hands each arrival a
		// free worker slot; slots bound the outstanding requests, and
		// because a slot is held exclusively, its shard needs no lock.
		slots := make(chan int, r.Spec.Conc)
		for i := 0; i < r.Spec.Conc; i++ {
			slots <- i
		}
		gaps := rand.New(rand.NewSource(r.Spec.Seed ^ 0x5e3779b97f4a7c15))
		wg.Add(1)
		go func() {
			defer wg.Done()
			var inner sync.WaitGroup
			defer inner.Wait()
			for i := 0; i < total; i++ {
				j := job{req: gen.Next(), warm: i < r.Spec.Warmup}
				gap := time.Duration(gaps.ExpFloat64() / r.Spec.Rate * float64(time.Second))
				select {
				case <-time.After(gap):
				case <-ctx.Done():
					return
				}
				var slot int
				select {
				case slot = <-slots:
				case <-ctx.Done():
					return
				}
				inner.Add(1)
				go func(j job, slot int) {
					defer inner.Done()
					defer func() { slots <- slot }()
					do(j, shards[slot])
				}(j, slot)
			}
		}()
	} else {
		// Closed loop: Conc workers, each keeping exactly one request in
		// flight, pulling from one shared stream.
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(jobs)
			for i := 0; i < total; i++ {
				select {
				case jobs <- job{req: gen.Next(), warm: i < r.Spec.Warmup}:
				case <-ctx.Done():
					return
				}
			}
		}()
		for w := 0; w < r.Spec.Conc; w++ {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				for j := range jobs {
					do(j, sh)
				}
			}(shards[w])
		}
	}
	wg.Wait()
	wall := time.Duration(0)
	if !measureStart.IsZero() {
		wall = time.Since(measureStart)
	}

	rep := r.report(shards, wall, started)
	rep.WarmupErrors = warmupErrs
	return rep, ctx.Err()
}

// recordFailure books an error against the measured counters, or the
// run-level warmup counter for warmup-phase requests (warmup failures
// must still fail a gated run, but they are not part of the measured
// arithmetic).
func (r *Runner) recordFailure(sh *shard, j job, ep, msg string, warmupErrs *int64, mu *sync.Mutex) {
	if j.warm {
		mu.Lock()
		*warmupErrs++
		mu.Unlock()
		return
	}
	sh.fail(ep, msg)
}

// report merges the per-worker shards into the wire-form Report.
func (r *Runner) report(shards []*shard, wall time.Duration, started time.Time) *Report {
	rev := r.GitRev
	if rev == "" {
		rev = "unknown"
	}
	rep := &Report{
		Bench:         "serve",
		SchemaVersion: SchemaVersion,
		GitRev:        rev,
		StartedAt:     started.UTC().Format(time.RFC3339),
		Target:        r.Base,
		Spec:          r.Spec,
		WallSeconds:   wall.Seconds(),
		Endpoints:     map[string]EndpointStats{},
	}
	totalHist := &Hist{}
	var totalErrs, totalShed int64
	totalFirst := ""
	for _, ep := range Endpoints {
		merged := &Hist{}
		var errs, shed int64
		first := ""
		for _, sh := range shards {
			if h := sh.hists[ep]; h != nil {
				merged.Merge(h)
			}
			errs += sh.errors[ep]
			shed += sh.shed[ep]
			if first == "" {
				first = sh.firstErr[ep]
			}
		}
		if merged.Count() == 0 && errs == 0 && shed == 0 {
			continue // endpoint not in the mix
		}
		rep.Endpoints[ep] = statsToEndpoint(merged, errs, shed, first, wall)
		totalHist.Merge(merged)
		totalErrs += errs
		totalShed += shed
		if totalFirst == "" {
			totalFirst = first
		}
	}
	rep.Totals = statsToEndpoint(totalHist, totalErrs, totalShed, totalFirst, wall)
	return rep
}

func truncate(b []byte, n int) string {
	s := string(bytes.TrimSpace(b))
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}
