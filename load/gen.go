package load

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/server"
)

// Request is one generated API call, fully materialized: the stream a
// Gen produces is a pure function of (Spec, Snapshot, Spec.Seed), so
// two generators with the same inputs emit byte-identical streams —
// runs are reproducible and a recorded stream can be replayed.
type Request struct {
	Endpoint string          `json:"endpoint"`
	Method   string          `json:"method"`
	Path     string          `json:"path"`
	Body     json.RawMessage `json:"body,omitempty"`
}

// MutationTag returns the root label of the n-th mutation tree of a
// seed's stream. The seed is embedded in the label, so streams with
// different seeds post trees with provably disjoint tag sets — workers
// or processes driving one server under different seeds cannot collide
// on generated content.
func MutationTag(seed int64, n int) string {
	return fmt.Sprintf("m%xx%d", uint64(seed), n)
}

// Gen deterministically generates a workload's request stream. Not safe
// for concurrent use; one Gen feeds a run (the runner fans its output
// out to workers, so the request multiset is independent of
// concurrency).
type Gen struct {
	spec Spec
	snap Snapshot
	rng  *rand.Rand
	eps  []string
	cum  []float64
	muts int // mutation sequence number → unique tags
}

// NewGen builds a generator; the spec must validate and the snapshot
// must be non-empty.
func NewGen(spec Spec, snap Snapshot) (*Gen, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(snap.IDs) == 0 || len(snap.IDs) != len(snap.Trees) {
		return nil, fmt.Errorf("gen: snapshot must pair ≥ 1 id with its tree (%d ids, %d trees)", len(snap.IDs), len(snap.Trees))
	}
	eps, cum := spec.mixOrder()
	return &Gen{
		spec: spec,
		snap: snap,
		rng:  rand.New(rand.NewSource(spec.Seed)),
		eps:  eps,
		cum:  cum,
	}, nil
}

// Next produces the next request of the stream.
func (g *Gen) Next() Request {
	// Endpoint choice: one uniform draw against the cumulative weights.
	r := g.rng.Float64() * g.cum[len(g.cum)-1]
	ep := g.eps[len(g.eps)-1]
	for i, c := range g.cum {
		if r < c {
			ep = g.eps[i]
			break
		}
	}
	switch ep {
	case EpDistance:
		return g.marshal(ep, "POST", "/v1/distance", server.DistanceRequest{
			F: g.storedRef(), G: g.eitherRef(),
		})
	case EpBounded:
		return g.marshal(ep, "POST", "/v1/distance-bounded", server.DistanceBoundedRequest{
			F: g.storedRef(), G: g.eitherRef(), Tau: g.spec.Tau,
		})
	case EpJoin, EpJoinStream:
		limit := g.spec.JoinLimit
		if limit <= 0 {
			limit = 64
		}
		path := "/v1/join"
		if ep == EpJoinStream {
			path = "/v1/join/stream"
		}
		return g.marshal(ep, "POST", path, server.JoinRequest{
			Tau: g.spec.Tau, Mode: g.spec.JoinMode, Limit: limit,
		})
	case EpTopK, EpTopKStream:
		path := "/v1/topk"
		if ep == EpTopKStream {
			path = "/v1/topk/stream"
		}
		return g.marshal(ep, "POST", path, server.TopKRequest{
			Query: server.TreeRef{Tree: g.tree()}, K: g.spec.K,
		})
	default: // EpMutate
		// A near-duplicate of a stored tree under a fresh root whose
		// label is unique to (seed, sequence): adds real index/WAL work
		// without colliding with any other stream's content.
		tag := MutationTag(g.spec.Seed, g.muts)
		g.muts++
		return g.marshal(ep, "POST", "/v1/trees", server.TreeRequest{
			Tree: "{" + tag + g.tree() + "}",
		})
	}
}

// Stream materializes the first n requests of the stream a fresh Gen
// would produce.
func Stream(spec Spec, snap Snapshot, n int) ([]Request, error) {
	g, err := NewGen(spec, snap)
	if err != nil {
		return nil, err
	}
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out, nil
}

func (g *Gen) marshal(ep, method, path string, body any) Request {
	raw, err := json.Marshal(body)
	if err != nil {
		// The wire structs marshal unconditionally; this is unreachable.
		panic(fmt.Sprintf("load: marshal %s request: %v", ep, err))
	}
	return Request{Endpoint: ep, Method: method, Path: path, Body: raw}
}

func (g *Gen) storedRef() server.TreeRef {
	id := g.snap.IDs[g.rng.Intn(len(g.snap.IDs))]
	return server.TreeRef{ID: &id}
}

// eitherRef yields a stored-id reference half the time and an ad-hoc
// tree the other half, so the mix exercises both resolution paths
// (corpus hydration and request-scoped preparation).
func (g *Gen) eitherRef() server.TreeRef {
	if g.rng.Intn(2) == 0 {
		return g.storedRef()
	}
	return server.TreeRef{Tree: g.tree()}
}

func (g *Gen) tree() string {
	return g.snap.Trees[g.rng.Intn(len(g.snap.Trees))]
}
