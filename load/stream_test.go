package load_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/load"
)

// stubSnap is a minimal snapshot for runs against stub servers that
// never look at the generated operands.
var stubSnap = load.Snapshot{IDs: []int64{0, 1}, Trees: []string{"{a}", "{a{b}}"}}

// TestOpenLoopPacerHoldsRate pins the pacer-drift bugfix: the old pacer
// slept each Poisson gap *between* dispatches, so per-iteration overhead
// stacked onto every gap and the offered rate undershot the requested
// one, worse the higher the rate. Against a fast stub the achieved rate
// (now reported) must track the requested one.
func TestOpenLoopPacerHoldsRate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()

	spec := load.Spec{
		Mix:  map[string]float64{load.EpDistance: 1},
		Seed: 7, Rate: 2000, Conc: 64, Warmup: 0, Requests: 600,
	}
	r := &load.Runner{Base: ts.URL, Client: ts.Client(), Spec: spec, Snap: stubSnap, GitRev: "pacer-test"}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RequestedRPS != spec.Rate {
		t.Fatalf("requested_rps = %g, want %g", rep.RequestedRPS, spec.Rate)
	}
	if rep.AchievedRPS == 0 {
		t.Fatal("open-loop run reported no achieved rate")
	}
	// ±20%: ~3σ of the Poisson sample mean over 600 gaps plus timer
	// slack. The old relative-sleep pacer undershot far beyond this at
	// sub-millisecond gaps.
	if ratio := rep.AchievedRPS / spec.Rate; ratio < 0.80 || ratio > 1.20 {
		t.Fatalf("achieved %g rps for requested %g (ratio %.2f): pacer is drifting",
			rep.AchievedRPS, spec.Rate, ratio)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report fails schema: %v", err)
	}
}

// TestStreamClientMeasuresDelivery drives the NDJSON client against a
// stub that spaces its match lines far apart: time-to-first-match must
// come in well before time-to-last-match (the whole point of the
// streaming histograms), and the report must carry the stream block.
func TestStreamClientMeasuresDelivery(t *testing.T) {
	const gap = 80 * time.Millisecond
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl := w.(http.Flusher)
		fmt.Fprintln(w, `{"match":{"i":0,"j":1,"dist":1}}`)
		fl.Flush()
		time.Sleep(gap)
		fmt.Fprintln(w, `{"match":{"i":0,"j":2,"dist":2}}`)
		fl.Flush()
		fmt.Fprintln(w, `{"done":{"count":2,"stats":{}}}`)
	}))
	defer ts.Close()

	spec := load.Spec{
		Mix: map[string]float64{load.EpJoinStream: 1},
		Tau: 2, Seed: 3, Conc: 2, Warmup: 0, Requests: 8,
	}
	r := &load.Runner{Base: ts.URL, Client: ts.Client(), Spec: spec, Snap: stubSnap, GitRev: "stream-test"}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st, ok := rep.Endpoints[load.EpJoinStream]
	if !ok || st.OK != int64(spec.Requests) || st.Errors != 0 {
		t.Fatalf("join_stream stats %+v (present %v), want %d ok", st, ok, spec.Requests)
	}
	if st.Stream == nil {
		t.Fatal("streaming endpoint reported no stream block")
	}
	// The stub guarantees ≥ gap between first and last match; histogram
	// bucketing error is ≤ 3.2%.
	if diff := st.Stream.TTLMp50ms - st.Stream.TTFMp50ms; diff < 0.6*float64(gap.Milliseconds()) {
		t.Fatalf("ttlm p50 - ttfm p50 = %.1f ms, want ≥ %.1f (stream %+v)",
			diff, 0.6*float64(gap.Milliseconds()), st.Stream)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report fails schema: %v", err)
	}
}

// TestStreamWithoutDoneIsError: a stream that ends without the terminal
// done record was cut short and must count as an error — never as a
// fast success.
func TestStreamWithoutDoneIsError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"match":{"i":0,"j":1,"dist":1}}`)
	}))
	defer ts.Close()

	spec := load.Spec{
		Mix: map[string]float64{load.EpTopKStream: 1},
		Tau: 2, K: 1, Seed: 5, Conc: 1, Warmup: 0, Requests: 3,
	}
	r := &load.Runner{Base: ts.URL, Client: ts.Client(), Spec: spec, Snap: stubSnap, GitRev: "stream-test"}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Endpoints[load.EpTopKStream]
	if st.OK != 0 || st.Errors != int64(spec.Requests) {
		t.Fatalf("truncated streams counted %d ok / %d errors, want 0 / %d", st.OK, st.Errors, spec.Requests)
	}
	if st.FirstError == "" {
		t.Fatal("no first_error recorded for the truncated streams")
	}
}

// TestTenantHeaderApplied: a Spec.Tenant must reach the server on every
// request as the X-Tenant header the admission quotas key on.
func TestTenantHeaderApplied(t *testing.T) {
	var tagged, total atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		total.Add(1)
		if r.Header.Get("X-Tenant") == "acme" {
			tagged.Add(1)
		}
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()

	spec := load.Spec{
		Mix:    map[string]float64{load.EpDistance: 1},
		Tenant: "acme",
		Seed:   9, Conc: 2, Warmup: 1, Requests: 6,
	}
	r := &load.Runner{Base: ts.URL, Client: ts.Client(), Spec: spec, Snap: stubSnap, GitRev: "tenant-test"}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Errors != 0 {
		t.Fatalf("errors: %d (first: %s)", rep.Totals.Errors, rep.Totals.FirstError)
	}
	if got, n := tagged.Load(), total.Load(); got != n || n == 0 {
		t.Fatalf("%d of %d requests carried X-Tenant: acme", got, n)
	}
}
