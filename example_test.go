package ted_test

import (
	"fmt"

	ted "repro"
)

// The README's first example: two small trees, unit costs, RTED.
func ExampleDistance() {
	f := ted.MustParse("{a{b}{c}}")
	g := ted.MustParse("{a{b{d}}}")
	fmt.Println(ted.Distance(f, g))
	// Output: 2
}

// A weighted cost model: renames are cheap, structure changes expensive.
func ExampleDistance_weighted() {
	f := ted.MustParse("{a{b}{c}}")
	g := ted.MustParse("{a{x}{y}}")
	d := ted.Distance(f, g, ted.WithCost(ted.WeightedCost(10, 10, 0.5)))
	fmt.Println(d)
	// Output: 1
}

// The bounded distance answers "is the distance at most tau?" without
// always paying for the full computation: cheap lower bounds run first,
// and the DP itself abandons work once tau is provably exceeded. The
// distance is exact whenever it is within the cutoff.
func ExampleDistanceBounded() {
	f := ted.MustParse("{a{b}{c}}")
	g := ted.MustParse("{a{b{d}}}")
	if d, ok := ted.DistanceBounded(f, g, 3); ok {
		fmt.Printf("within cutoff: %g\n", d)
	}
	if _, ok := ted.DistanceBounded(f, g, 1); !ok {
		fmt.Println("exceeds 1")
	}
	// Output:
	// within cutoff: 2
	// exceeds 1
}

// The similarity self-join: all pairs of the collection with distance
// below the threshold. It runs on the batch engine — every tree is
// prepared once and compared on reusable arenas.
func ExampleJoin() {
	trees := []*ted.Tree{
		ted.MustParse("{a{b}{c}}"),
		ted.MustParse("{a{b}}"),
		ted.MustParse("{x{y}{z}}"),
	}
	r := ted.Join(trees, 2)
	for _, p := range r.Pairs {
		fmt.Printf("trees %d and %d: distance %g\n", p.I, p.J, p.Dist)
	}
	// Output: trees 0 and 1: distance 1
}

// Top-k approximate subtree matching: the k subtrees of a data tree
// closest to a query, from one distance computation.
func ExampleTopKSubtrees() {
	query := ted.MustParse("{b{d}}")
	data := ted.MustParse("{a{b{c}}{b{d}}}")
	for _, m := range ted.TopKSubtrees(query, data, 2) {
		fmt.Printf("subtree %s: distance %g\n", data.SubtreeString(m.Root), m.Dist)
	}
	// Output:
	// subtree {b{d}}: distance 0
	// subtree {b{c}}: distance 1
}

// The optimal edit script between two trees.
func ExampleMapping() {
	f := ted.MustParse("{a{b}{c}}")
	g := ted.MustParse("{a{b{d}}}")
	for _, op := range ted.Mapping(f, g) {
		switch op.Kind {
		case ted.OpDelete:
			fmt.Printf("delete %s\n", op.FLabel)
		case ted.OpInsert:
			fmt.Printf("insert %s\n", op.GLabel)
		case ted.OpMatch:
			if op.FLabel != op.GLabel {
				fmt.Printf("rename %s to %s\n", op.FLabel, op.GLabel)
			}
		}
	}
	// Output:
	// delete c
	// insert d
}
