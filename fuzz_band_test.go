package ted_test

import (
	"math"
	"testing"

	ted "repro"
)

// FuzzDistanceBandedVsUnbanded fuzzes the structural band of the bounded
// DP against the unbanded per-cell cutoff over bracket tree pairs and
// arbitrary thresholds. Banding only changes how out-of-cutoff cells are
// skipped — whole loop ranges instead of per-cell tests — so the two
// modes must return bit-identical results (unit costs), the banded run
// must never evaluate more subproblems than the unbanded one, and an
// unbanded run must report zero band counters.
//
// Run continuously with: go test -fuzz=FuzzDistanceBandedVsUnbanded
func FuzzDistanceBandedVsUnbanded(f *testing.F) {
	f.Add("{a{b}{c}}", "{a{b{d}}}", 1.5)
	f.Add("{a{b{c{d{e}}}}}", "{a}", 2.0)
	f.Add("{x{x}{x}{x}{x}}", "{x{x{x{x{x}}}}}", 3.0)
	f.Add("{a}", "{b}", math.Inf(1))
	f.Add("{r{a{b}{c}}{d}}", "{r{d}{a{c}{b}}}", 0.0)
	f.Add("{l0{l1}{l2{l3}}}", "{l0{l2{l3}}{l1}}", -1.0)

	f.Fuzz(func(t *testing.T, fs, gs string, tau float64) {
		ft, err := ted.Parse(fs)
		if err != nil || ft.Len() > 60 {
			t.Skip()
		}
		gt, err := ted.Parse(gs)
		if err != nil || gt.Len() > 60 {
			t.Skip()
		}
		if math.IsNaN(tau) {
			t.Skip()
		}
		var sb, su ted.Stats
		db, okB := ted.DistanceBounded(ft, gt, tau, ted.WithStats(&sb))
		du, okU := ted.DistanceBounded(ft, gt, tau, ted.WithStats(&su), ted.WithBanding(false))
		if okB != okU || db != du {
			t.Fatalf("banded (%v, %v) != unbanded (%v, %v) at tau=%v\nF=%s\nG=%s",
				db, okB, du, okU, tau, fs, gs)
		}
		if su.BandSkippedCells != 0 || su.PrunedKeyroots != 0 {
			t.Fatalf("unbanded run reports band counters: %+v", su)
		}
		if sb.Subproblems > su.Subproblems {
			t.Fatalf("banded run evaluated %d subproblems, unbanded %d at tau=%v\nF=%s\nG=%s",
				sb.Subproblems, su.Subproblems, tau, fs, gs)
		}
		if sb.Subproblems < 0 || sb.PrunedSubproblems < 0 || sb.BandSkippedCells < 0 || sb.PrunedKeyroots < 0 {
			t.Fatalf("negative instrumentation: %+v", sb)
		}
	})
}
