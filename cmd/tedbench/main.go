// Command tedbench regenerates the figures and tables of the RTED paper
// (and this repository's ablations) as plain-text series.
//
// Usage:
//
//	tedbench -list
//	tedbench -exp fig8a [-scale 1.0] [-seed 42]
//	tedbench -all -scale 0.25
//	tedbench -exp sparse -out BENCH_gted.json
//	tedbench -check-gted BENCH_gted.json
//	tedbench -exp fig8a -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Scale 1.0 reproduces the paper's size grids (minutes to hours for the
// runtime figures); the default 0.25 keeps every experiment laptop-sized
// while preserving the qualitative results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiments"
)

// main defers to realMain so the profile writers (deferred there) run
// before the process exits — os.Exit in main would discard an in-flight
// CPU profile.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.Float64("scale", 0.25, "size-grid scale; 1.0 = the paper's ranges")
		seed  = flag.Int64("seed", 20111229, "generator seed")
		out   = flag.String("out", "", "write the experiment's machine-readable artifact here (sparse: BENCH_gted.json)")
		check = flag.String("check-gted", "", "validate a BENCH_gted.json file and exit")
		cpu   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		mem   = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *check != "" {
		r, err := experiments.ReadGtedReport(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tedbench: %v\n", err)
			return 1
		}
		fmt.Printf("%s: valid (schema v%d, %d scenarios)\n", *check, r.SchemaVersion, len(r.Scenarios))
		return 0
	}

	if *cpu != "" {
		f, err := os.Create(*cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tedbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tedbench: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *mem != "" {
		defer func() {
			f, err := os.Create(*mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tedbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "tedbench: memprofile: %v\n", err)
			}
		}()
	}

	switch {
	case *list:
		for _, r := range experiments.All() {
			fmt.Printf("%-18s %s\n", r.ID, r.Title)
		}
	case *all:
		for _, r := range experiments.All() {
			if err := run(r, *scale, *seed, *out); err != nil {
				fmt.Fprintf(os.Stderr, "tedbench: %s: %v\n", r.ID, err)
				return 1
			}
			fmt.Println()
		}
	case *exp != "":
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "tedbench: unknown experiment %q (try -list)\n", *exp)
			return 2
		}
		if err := run(r, *scale, *seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "tedbench: %s: %v\n", r.ID, err)
			return 1
		}
	default:
		flag.Usage()
		return 2
	}
	return 0
}

func run(r experiments.Runner, scale float64, seed int64, artifact string) error {
	cfg := experiments.Config{Scale: scale, Seed: seed, Out: os.Stdout, ArtifactPath: artifact}
	return r.Run(cfg)
}
