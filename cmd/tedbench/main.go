// Command tedbench regenerates the figures and tables of the RTED paper
// (and this repository's ablations) as plain-text series.
//
// Usage:
//
//	tedbench -list
//	tedbench -exp fig8a [-scale 1.0] [-seed 42]
//	tedbench -all -scale 0.25
//
// Scale 1.0 reproduces the paper's size grids (minutes to hours for the
// runtime figures); the default 0.25 keeps every experiment laptop-sized
// while preserving the qualitative results.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.Float64("scale", 0.25, "size-grid scale; 1.0 = the paper's ranges")
		seed  = flag.Int64("seed", 20111229, "generator seed")
	)
	flag.Parse()

	switch {
	case *list:
		for _, r := range experiments.All() {
			fmt.Printf("%-18s %s\n", r.ID, r.Title)
		}
	case *all:
		for _, r := range experiments.All() {
			if err := run(r, *scale, *seed); err != nil {
				fmt.Fprintf(os.Stderr, "tedbench: %s: %v\n", r.ID, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	case *exp != "":
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "tedbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		if err := run(r, *scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "tedbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func run(r experiments.Runner, scale float64, seed int64) error {
	cfg := experiments.Config{Scale: scale, Seed: seed, Out: os.Stdout}
	return r.Run(cfg)
}
