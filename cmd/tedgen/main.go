// Command tedgen emits synthetic trees in bracket notation, one per
// line: the paper's shapes (Figure 7), bounded random trees, and the
// dataset simulators.
//
// Usage:
//
//	tedgen -shape zz -size 1000
//	tedgen -shape random -size 500 -count 10 -seed 3 -max-depth 15 -max-fanout 6
//	tedgen -shape treefam -size 800 -count 20 > phylo.trees
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	ted "repro"
	"repro/gen"
)

func main() {
	var (
		shape     = flag.String("shape", "random", "lb | rb | fb | zz | mx | random | swissprot | treebank | treefam")
		size      = flag.Int("size", 100, "nodes per tree")
		count     = flag.Int("count", 1, "number of trees")
		seed      = flag.Int64("seed", 1, "generator seed")
		maxDepth  = flag.Int("max-depth", 15, "random: maximum depth")
		maxFanout = flag.Int("max-fanout", 6, "random: maximum fanout")
		labels    = flag.Int("labels", 8, "random: label pool size")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := 0; i < *count; i++ {
		s := *seed + int64(i)
		var t *ted.Tree
		switch *shape {
		case "lb":
			t = gen.LeftBranch(*size)
		case "rb":
			t = gen.RightBranch(*size)
		case "fb":
			t = gen.FullBinary(*size)
		case "zz":
			t = gen.ZigZag(*size)
		case "mx":
			t = gen.Mixed(*size)
		case "random":
			t = gen.Random(s, gen.RandomSpec{Size: *size, MaxDepth: *maxDepth, MaxFanout: *maxFanout, Labels: *labels})
		case "swissprot":
			t = gen.SwissProtLike(s, *size)
		case "treebank":
			t = gen.TreeBankLike(s, *size)
		case "treefam":
			t = gen.TreeFamLike(s, *size)
		default:
			fmt.Fprintf(os.Stderr, "tedgen: unknown shape %q\n", *shape)
			os.Exit(2)
		}
		fmt.Fprintln(w, t.String())
	}
}
