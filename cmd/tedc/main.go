// Command tedc is the cluster face of the corpus: a join/top-k worker
// process, and a command-line coordinator that partitions a query over
// a fleet of workers and merges their streams.
//
// Usage:
//
//	tedc worker -corpus snap.tedc -addr 127.0.0.1:7411     # serve ranges
//	tedc join   -workers host:7411,host:7412 -tau 6        # distributed join
//	tedc topk   -workers host:7411,host:7412 -k 10 -query '{a{b}{c}}'
//
// Every worker Loads the same snapshot file (read-only — no write-ahead
// log, no lock conflict with a primary tedd serving the same path), so
// snapshot positions mean the same trees everywhere; the coordinator
// verifies that by fingerprint before partitioning. The merged join
// match set is identical — pair for pair, distance for distance — to a
// single-node `ted -join -corpus-load` over the same snapshot and tau,
// and match lines print in the same `i<TAB>j<TAB>dist` format so the
// two outputs diff clean (stats ride on `#` comment lines).
//
// A worker that dies mid-range is survivable: the coordinator discards
// the partial stream, retires the worker, and re-dispatches the whole
// range to a live one. Results commit per range only on its terminal
// frame, so no match is lost and none duplicated.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"strings"
	"time"

	"repro/batch"
	"repro/cluster"
	"repro/corpus"
	"repro/internal/tree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "tedc: %v\n", err)
		os.Exit(1)
	}
}

// run is main with its environment explicit; ready (if non-nil)
// receives the worker's bound address once it is accepting — the hook
// tests and the cluster smoke script poll.
func run(args []string, stdout, logw io.Writer, ready chan<- string) error {
	if len(args) == 0 {
		return errors.New("usage: tedc <worker|join|topk> [flags]")
	}
	switch args[0] {
	case "worker":
		return runWorker(args[1:], logw, ready)
	case "join":
		return runJoin(args[1:], stdout, logw)
	case "topk":
		return runTopK(args[1:], stdout, logw)
	}
	return fmt.Errorf("unknown subcommand %q (worker | join | topk)", args[0])
}

func runWorker(args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("tedc worker", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		corpusPath = fs.String("corpus", "", "snapshot file to serve ranges over (required)")
		addr       = fs.String("addr", "127.0.0.1:0", "listen address")
		workers    = fs.Int("workers", 0, "evaluation goroutines (0 = all CPU cores)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corpusPath == "" {
		return errors.New("-corpus is required")
	}
	start := time.Now()
	c, err := corpus.LoadFile(*corpusPath)
	if err != nil {
		return err
	}
	var eopts []batch.Option
	if *workers > 0 {
		eopts = append(eopts, batch.WithWorkers(*workers))
	}
	w := cluster.NewWorker(c, eopts...)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "tedc: worker on %s: %d trees (loaded+warmed in %v)\n",
		ln.Addr(), c.Len(), time.Since(start).Round(time.Millisecond))
	if ready != nil {
		ready <- ln.Addr().String()
	}
	return w.Serve(ln)
}

func parseWorkers(s string) ([]string, error) {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, errors.New("-workers needs a comma-separated list of worker addresses")
	}
	return addrs, nil
}

func parseJoinMode(s string) (batch.IndexMode, error) {
	switch s {
	case "", "auto":
		return batch.IndexAuto, nil
	case "enumerate", "enum":
		return batch.IndexEnumerate, nil
	case "histogram", "hist":
		return batch.IndexHistogram, nil
	case "pqgram", "pq":
		return batch.IndexPQGram, nil
	}
	return 0, fmt.Errorf("unknown -mode %q (auto | enumerate | histogram | pqgram)", s)
}

func runJoin(args []string, stdout, logw io.Writer) error {
	fs := flag.NewFlagSet("tedc join", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		workerList = fs.String("workers", "", "comma-separated worker addresses (required)")
		tau        = fs.Float64("tau", 10, "join distance threshold")
		inf        = fs.Bool("inf", false, "unbounded join (tau = +Inf)")
		mode       = fs.String("mode", "auto", "candidate generator: auto | enumerate | histogram | pqgram")
		q          = fs.Int("q", 0, "pq-gram base length for -mode pqgram")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs, err := parseWorkers(*workerList)
	if err != nil {
		return err
	}
	m, err := parseJoinMode(*mode)
	if err != nil {
		return err
	}
	t := *tau
	if *inf {
		t = math.Inf(1)
	}
	co := cluster.NewCoordinator(addrs)
	ms, st, err := co.Join(t, batch.JoinOptions{Mode: m, Q: *q})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# %d workers, %d candidates (mode %s, probed in %v), %d subproblems, %v\n",
		len(addrs), st.Comparisons, st.Mode, st.IndexTime.Round(time.Microsecond), st.Subproblems, st.Elapsed.Round(time.Microsecond))
	fmt.Fprintf(stdout, "# filters: %d lb-pruned, %d ub-accepted, %d exact\n",
		st.LowerPruned, st.UpperAccepted, st.ExactComputed)
	for _, p := range ms {
		fmt.Fprintf(stdout, "%d\t%d\t%g\n", p.I, p.J, p.Dist)
	}
	return nil
}

func runTopK(args []string, stdout, logw io.Writer) error {
	fs := flag.NewFlagSet("tedc topk", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		workerList = fs.String("workers", "", "comma-separated worker addresses (required)")
		k          = fs.Int("k", 10, "result count")
		query      = fs.String("query", "", "query tree in bracket notation (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs, err := parseWorkers(*workerList)
	if err != nil {
		return err
	}
	if *query == "" {
		return errors.New("-query is required")
	}
	qt, err := tree.ParseBracket(strings.TrimSpace(*query))
	if err != nil {
		return fmt.Errorf("-query: %w", err)
	}
	co := cluster.NewCoordinator(addrs)
	ms, st, err := co.TopK(qt, *k)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# %d workers, %d subproblems (%d pruned)\n",
		len(addrs), st.Subproblems, st.PrunedSubproblems)
	for _, m := range ms {
		fmt.Fprintf(stdout, "%d\t%d\t%g\n", m.Tree, m.Root, m.Dist)
	}
	return nil
}
