// Command tedd serves a corpus over HTTP: the tree-edit-distance
// daemon. It loads (or creates) a persistent corpus, attaches a warmed
// batch engine, and exposes the package server JSON API — distances,
// bounded distances, similarity joins, top-k subtree search, and
// durable corpus mutations.
//
// Usage:
//
//	tedd -corpus trees.tedc                     # serve on :8420
//	tedd -corpus trees.tedc -addr 127.0.0.1:9000 -workers 8
//	tedd -corpus trees.tedc -index pqgram -max-inflight 64
//
// The corpus is opened with corpus.Open: mutations served over HTTP are
// appended to the write-ahead log at <corpus>.wal before they are
// acknowledged, so a crash — kill -9 included — loses nothing that was
// acknowledged; the next start replays the log. On SIGINT/SIGTERM the
// server drains (new requests get 503, in-flight requests finish), the
// log is folded into a fresh snapshot (Checkpoint), and the process
// exits cleanly.
//
// Endpoints and wire formats are documented in package server; a smoke
// check from the shell:
//
//	curl -s localhost:8420/healthz
//	curl -s -X POST localhost:8420/v1/distance \
//	    -d '{"f":{"tree":"{a{b}{c}}"},"g":{"tree":"{a{b{d}}}"}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/cluster"
	"repro/corpus"
	"repro/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "tedd: %v\n", err)
		os.Exit(1)
	}
}

// run is main with its environment made explicit: ctx cancellation is
// the shutdown signal, logw receives progress lines, and ready (if
// non-nil) is sent the bound address once the listener is accepting —
// the hook the tests and the smoke script's readiness poll rely on.
func run(ctx context.Context, args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("tedd", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		corpusPath   = fs.String("corpus", "", "corpus file to serve (created via corpus.Open if missing; required)")
		addr         = fs.String("addr", ":8420", "listen address")
		workers      = fs.Int("workers", 0, "engine worker goroutines (0 = all CPU cores)")
		indexKind    = fs.String("index", "histogram", "maintained index for a fresh corpus: histogram | pqgram | both | none")
		q            = fs.Int("q", 2, "pq-gram base length when -index includes pqgram")
		maxInFlight  = fs.Int("max-inflight", 0, "admission: max concurrent requests (0 = 2x workers)")
		heavySlots   = fs.Int("heavy-slots", 0, "admission: max slots joins/top-k may hold at once (0 = half of max-inflight)")
		tenantQuota  = fs.Int("tenant-quota", 0, "admission: max slots one X-Tenant may hold at once (0 = no per-tenant cap)")
		queueWait    = fs.Duration("queue-timeout", 2*time.Second, "admission: how long an arrival may wait for a slot")
		maxNodes     = fs.Int("max-nodes", 4096, "largest accepted request tree, in nodes (DP memory is O(n^2): ~9*n^2 bytes per pair)")
		maxLabels    = fs.Int("max-labels", 1<<20, "distinct-label cap; at capacity, ad-hoc trees are refused with 503")
		maxBody      = fs.Int64("max-body", 1<<20, "largest accepted request body, in bytes")
		readTimeout  = fs.Duration("read-timeout", time.Minute, "HTTP read deadline per request (headers + body)")
		noWarm       = fs.Bool("no-warm", false, "skip hydrating stored trees at startup")
		noCheckpoint = fs.Bool("no-checkpoint", false, "skip folding the WAL into a snapshot on shutdown")
		ckptEvery    = fs.Duration("checkpoint-interval", 5*time.Minute, "fold the WAL into the snapshot whenever it has grown after this interval (0 = shutdown only)")
		drainWait    = fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget for in-flight requests")
		follow       = fs.String("follow", "", "follower mode: tail this primary's WAL (http://host:port) and serve reads from the replicated corpus; mutations get 403")
		maxStale     = fs.Duration("max-staleness", 0, "follower mode: refuse reads with 503 when last provably caught up longer ago than this (0 = serve regardless)")
		clusterList  = fs.String("cluster-workers", "", "comma-separated tedc worker addresses; joins and top-k fan out to them instead of evaluating locally")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corpusPath == "" {
		return errors.New("-corpus is required")
	}

	var copts []corpus.Option
	switch *indexKind {
	case "histogram":
		copts = append(copts, corpus.WithHistogramIndex())
	case "pqgram", "both":
		if *q < 1 {
			return fmt.Errorf("-q must be ≥ 1 (got %d)", *q)
		}
		if *indexKind == "both" {
			copts = append(copts, corpus.WithHistogramIndex())
		}
		copts = append(copts, corpus.WithPQGramIndex(*q))
	case "none":
	default:
		return fmt.Errorf("unknown -index %q (histogram | pqgram | both | none)", *indexKind)
	}

	start := time.Now()
	var (
		c   *corpus.Corpus
		fl  *cluster.Follower
		err error
	)
	if *follow != "" {
		// Follower mode: the corpus converges to the primary's over its
		// replicated WAL (see cluster.Follower); cur() must be re-read per
		// use because a checkpoint ship replaces the store wholesale.
		fl, err = cluster.NewFollower(*corpusPath, strings.TrimRight(*follow, "/"), copts...)
		if err != nil {
			return err
		}
		c = fl.Corpus()
	} else {
		c, err = corpus.Open(*corpusPath, copts...)
		if err != nil {
			return err
		}
	}
	cur := func() *corpus.Corpus {
		if fl != nil {
			return fl.Corpus()
		}
		return c
	}
	defer func() { cur().Close() }()
	fmt.Fprintf(logw, "tedd: corpus %s: %d trees (opened in %v)\n", *corpusPath, c.Len(), time.Since(start).Round(time.Millisecond))

	sopts := []server.Option{
		server.WithQueueTimeout(*queueWait),
		server.WithMaxNodes(*maxNodes),
		server.WithMaxBodyBytes(*maxBody),
		server.WithMaxLabels(*maxLabels),
	}
	if *workers > 0 {
		sopts = append(sopts, server.WithWorkers(*workers))
	}
	if *maxInFlight > 0 {
		sopts = append(sopts, server.WithMaxInFlight(*maxInFlight))
	}
	if *heavySlots > 0 {
		sopts = append(sopts, server.WithHeavySlots(*heavySlots))
	}
	if *tenantQuota > 0 {
		sopts = append(sopts, server.WithTenantQuota(*tenantQuota))
	}
	if *clusterList != "" {
		var addrs []string
		for _, a := range strings.Split(*clusterList, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return errors.New("-cluster-workers needs at least one address")
		}
		sopts = append(sopts, server.WithClusterWorkers(addrs))
		fmt.Fprintf(logw, "tedd: joins/top-k fan out to %d workers: %s\n", len(addrs), strings.Join(addrs, ", "))
	}
	if fl != nil {
		sopts = append(sopts, server.WithReplica(replicationStats(fl), fl.Staleness, *maxStale))
	}
	mkServer := func(c *corpus.Corpus) *server.Server {
		s := server.New(c, sopts...)
		if !*noWarm {
			start := time.Now()
			s.Warm()
			fmt.Fprintf(logw, "tedd: warmed %d trees in %v\n", c.Len(), time.Since(start).Round(time.Millisecond))
		}
		return s
	}
	// The live server sits behind an atomic pointer so a follower's
	// checkpoint ship — which replaces the corpus — swaps in a fresh
	// warmed server without dropping a request.
	var srvPtr atomic.Pointer[server.Server]
	srvPtr.Store(mkServer(c))
	srv := srvPtr.Load
	if fl != nil {
		fl.OnSwap = func(_, nw *corpus.Corpus) {
			srvPtr.Store(mkServer(nw))
			fmt.Fprintf(logw, "tedd: checkpoint shipped from %s: %d trees\n", *follow, nw.Len())
		}
		go func() {
			if err := fl.Run(ctx); err != nil && ctx.Err() == nil {
				fmt.Fprintf(logw, "tedd: follower stopped: %v\n", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Read deadlines matter to admission: the gate slot is held while the
	// body is decoded, so without them N slow-body clients could pin all
	// MaxInFlight slots forever and 503 the service until restart.
	hs := &http.Server{
		Handler:           http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { srv().ServeHTTP(w, r) }),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(logw, "tedd: serving on %s (%d workers, %d in-flight, %d heavy, tenant quota %d)\n",
		ln.Addr(), srv().Engine().Workers(), srv().MaxInFlight(), srv().HeavySlots(), srv().TenantQuota())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	// Periodic compaction: without it a mutation-heavy daemon grows the
	// log (and the crash-recovery replay time) without bound between
	// restarts. Only runs when the log actually grew; failures are
	// logged, not fatal — the log itself is still the durable record.
	if *ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if !cur().LogPending() {
						continue // nothing logged since the last fold
					}
					start := time.Now()
					if err := cur().Checkpoint(); err != nil {
						fmt.Fprintf(logw, "tedd: periodic checkpoint: %v\n", err)
						continue
					}
					fmt.Fprintf(logw, "tedd: periodic checkpoint in %v\n", time.Since(start).Round(time.Millisecond))
				}
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: flip the admission gate first so queued arrivals
	// stop reaching the engine, then let http.Server wait out the
	// requests already in flight.
	fmt.Fprintf(logw, "tedd: draining\n")
	srv().Drain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintf(logw, "tedd: shutdown: %v\n", err)
	}
	if !*noCheckpoint {
		start = time.Now()
		if err := cur().Checkpoint(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		fmt.Fprintf(logw, "tedd: checkpointed %d trees in %v\n", cur().Len(), time.Since(start).Round(time.Millisecond))
	}
	return cur().Close()
}

// replicationStats adapts the follower's telemetry to the server's
// /v1/stats wire form.
func replicationStats(fl *cluster.Follower) func() server.ReplicationStats {
	return func() server.ReplicationStats {
		fs := fl.Stats()
		return server.ReplicationStats{
			Primary:         fs.Primary,
			Gen:             fs.Gen,
			AppliedSeq:      fs.AppliedSeq,
			PrimarySeq:      fs.PrimarySeq,
			Lag:             fs.Lag,
			Records:         fs.Records,
			CheckpointShips: fs.Ships,
			StalenessMS:     fl.Staleness().Milliseconds(),
			LastErr:         fs.LastErr,
		}
	}
}
