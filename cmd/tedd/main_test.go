package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/corpus"
	"repro/server"
)

// TestServeLifecycle boots the daemon on a fresh corpus, drives the API
// end to end (health, mutations, distance, join), shuts it down via
// context cancellation, and verifies both the graceful checkpoint and
// that a second boot serves the mutated corpus.
func TestServeLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "serve.tedc")

	boot := func(ctx context.Context) (addr string, done chan error) {
		ready := make(chan string, 1)
		done = make(chan error, 1)
		var logs bytes.Buffer
		go func() {
			done <- run(ctx, []string{
				"-corpus", path, "-addr", "127.0.0.1:0", "-drain-timeout", "5s",
			}, &logs, ready)
		}()
		select {
		case addr = <-ready:
		case err := <-done:
			t.Fatalf("daemon exited before ready: %v\n%s", err, logs.String())
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon never became ready\n%s", logs.String())
		}
		return addr, done
	}

	ctx, cancel := context.WithCancel(context.Background())
	addr, done := boot(ctx)
	base := "http://" + addr

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	postJSON := func(pathq string, req, out any) int {
		raw, _ := json.Marshal(req)
		resp, err := http.Post(base+pathq, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("POST %s: %v", pathq, err)
		}
		defer resp.Body.Close()
		if out != nil {
			json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode
	}

	var tr server.TreeResponse
	for _, s := range []string{"{a{b}{c}}", "{a{b}}", "{a{b}{c{d}}}"} {
		if code := postJSON("/v1/trees", server.TreeRequest{Tree: s}, &tr); code != 201 {
			t.Fatalf("add %s: status %d", s, code)
		}
	}
	var d server.DistanceResponse
	id := int64(0)
	if code := postJSON("/v1/distance", server.DistanceRequest{
		F: server.TreeRef{ID: &id}, G: server.TreeRef{Tree: "{a{b}{x}}"},
	}, &d); code != 200 {
		t.Fatalf("distance: status %d", code)
	}
	if d.Dist != 1 {
		t.Fatalf("distance = %g, want 1", d.Dist)
	}
	var j server.JoinResponse
	if code := postJSON("/v1/join", server.JoinRequest{Tau: 2}, &j); code != 200 {
		t.Fatalf("join: status %d", code)
	}

	// Graceful shutdown: cancel the context, wait for run to return,
	// then check the WAL was folded into the snapshot.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down")
	}
	if st, err := os.Stat(path); err != nil || st.Size() == 0 {
		t.Fatalf("no snapshot after graceful shutdown: %v", err)
	}
	if st, err := os.Stat(path + ".wal"); err != nil || st.Size() != 5 {
		t.Fatalf("WAL not truncated by the shutdown checkpoint: %v (size %v)", err, st.Size())
	}

	// Second boot: the snapshot serves, and the join matches the first
	// process's answer.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	addr2, done2 := boot(ctx2)
	base = "http://" + addr2
	var j2 server.JoinResponse
	if code := postJSON("/v1/join", server.JoinRequest{Tau: 2}, &j2); code != 200 {
		t.Fatalf("join after restart: status %d", code)
	}
	if len(j2.Matches) != len(j.Matches) {
		t.Fatalf("join after restart: %d matches, want %d", len(j2.Matches), len(j.Matches))
	}
	for i := range j.Matches {
		if j.Matches[i] != j2.Matches[i] {
			t.Fatalf("match %d diverged across restart: %+v vs %+v", i, j.Matches[i], j2.Matches[i])
		}
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second run: %v", err)
	}

	// The restarted corpus is a real corpus file: openable directly.
	c, err := corpus.LoadFile(path)
	if err != nil {
		t.Fatalf("load snapshot: %v", err)
	}
	if c.Len() != 3 {
		t.Fatalf("snapshot has %d trees, want 3", c.Len())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var logs bytes.Buffer
	if err := run(context.Background(), nil, &logs, nil); err == nil {
		t.Fatalf("missing -corpus accepted")
	}
	if err := run(context.Background(), []string{"-corpus", "x.tedc", "-index", "wat"}, &logs, nil); err == nil {
		t.Fatalf("bad -index accepted")
	}
	if err := run(context.Background(), []string{"-corpus", "x.tedc", "-index", "pqgram", "-q", "0"}, &logs, nil); err == nil {
		t.Fatalf("-q 0 accepted")
	}
}
