// Command tedload drives a live tedd with a declarative workload and
// emits the machine-readable perf artifact BENCH_serve.json (schema:
// package load's doc.go) plus a human-readable table.
//
// Usage:
//
//	tedload -url http://127.0.0.1:8420                      # default mix
//	tedload -url ... -mix distance=4,bounded=3,mutate=1 \
//	        -tau 8 -conc 8 -warmup 50 -n 400                # closed loop
//	tedload -url ... -rate 200 -conc 64                     # open loop, 200 rps Poisson
//	tedload -url ... -mix join_stream=1 -tau 6              # NDJSON streaming joins
//	tedload -url ... -tenant batch -rate 100 &              # two tenants
//	tedload -url ... -tenant web -seed 2 -rate 100          #   driving one server
//	tedload -url http://host:8420,http://host:8421 \
//	        -mix distance=4,bounded=3,topk=2                # round-robin over replicas
//	tedload -url ... -out BENCH_serve.json -fail-on-error   # the CI invocation
//	tedload -check BENCH_serve.json                         # validate a committed artifact
//
// -url takes a comma-separated list: with several targets the request
// stream (unchanged — generation is target-blind) is dealt across them
// round-robin, and the report carries a per-target breakdown next to
// the merged totals, so a slow or stale replica shows up instead of
// averaging away. The targets must serve the same corpus (a primary
// and its read replicas); keep mutate out of the mix, since replicas
// refuse writes with 403.
//
// The request stream is generated deterministically from -seed and a
// snapshot of the served corpus (taken over the API before the run), so
// a run is reproducible against an identically loaded server; distinct
// seeds generate disjoint mutation content, so several tedload
// processes can drive one server together. Responses shed by admission
// control (503) are counted as shed, not as errors: shedding under
// offered load is a measurement, not a failure. Any other non-2xx
// status, transport failure, or cross-check failure counts as an error,
// and -fail-on-error (on by default) turns a nonzero error count into a
// nonzero exit — the smoke-script and CI gate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/load"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "tedload: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tedload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url       = fs.String("url", "", "target base URL(s), comma-separated; several round-robin across replicas (required)")
		mixStr    = fs.String("mix", "distance=4,bounded=3,topk=2,join=0.2,mutate=1", "endpoint mix in ratio weights")
		tau       = fs.Float64("tau", 8, "bounded-distance and join threshold")
		k         = fs.Int("k", 3, "top-k request size")
		joinMode  = fs.String("join-mode", "auto", "join candidate generator: auto | enumerate | histogram | pqgram")
		joinLimit = fs.Int("join-limit", 64, "matches a join response may carry")
		tenant    = fs.String("tenant", "", "X-Tenant header for every request (empty = server default tenant)")
		seed      = fs.Int64("seed", 1, "request-stream seed (distinct seeds → disjoint mutation content)")
		rate      = fs.Float64("rate", 0, "open-loop Poisson arrival rate in rps (0 = closed loop)")
		conc      = fs.Int("conc", 8, "closed-loop workers / open-loop max outstanding requests")
		warmup    = fs.Int("warmup", 50, "unmeasured warmup requests")
		n         = fs.Int("n", 400, "measured requests")
		out       = fs.String("out", "BENCH_serve.json", "artifact path (empty = don't write)")
		rev       = fs.String("rev", "", "git revision to stamp (default: git rev-parse --short HEAD)")
		timeout   = fs.Duration("timeout", 2*time.Minute, "per-request HTTP timeout")
		failOnErr = fs.Bool("fail-on-error", true, "exit nonzero when the run counted any error")
		check     = fs.String("check", "", "validate an existing artifact against the report schema and exit (no server needed)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check != "" {
		rep, err := load.ReadReport(*check)
		if err != nil {
			return err
		}
		rep.WriteTable(stdout)
		fmt.Fprintf(stderr, "tedload: %s is a valid schema v%d report (rev %s)\n",
			*check, rep.SchemaVersion, rep.GitRev)
		return nil
	}
	if *url == "" {
		return errors.New("-url is required")
	}
	mix, err := load.ParseMix(*mixStr)
	if err != nil {
		return err
	}
	spec := load.Spec{
		Mix: mix, Tau: *tau, K: *k,
		JoinMode: *joinMode, JoinLimit: *joinLimit,
		Tenant: *tenant,
		Seed:   *seed, Rate: *rate, Conc: *conc,
		Warmup: *warmup, Requests: *n,
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	var targets []string
	for _, u := range strings.Split(*url, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			targets = append(targets, u)
		}
	}
	if len(targets) == 0 {
		return errors.New("-url needs at least one target URL")
	}

	client := &http.Client{Timeout: *timeout}
	// One snapshot seeds the whole stream: the targets serve the same
	// corpus, so the first one speaks for the fleet.
	snap, err := load.FetchSnapshot(client, targets[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "tedload: snapshot: %d live trees; %d+%d requests (%s) over %d target(s)\n",
		len(snap.IDs), spec.Warmup, spec.Requests, arrivalMode(spec), len(targets))

	r := &load.Runner{
		Base:    targets[0],
		Targets: targets,
		Client:  client,
		Spec:    spec,
		Snap:    snap,
		GitRev:  gitRev(*rev),
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		return err
	}
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("internal: emitted report fails its own schema: %w", err)
	}
	rep.WriteTable(stdout)
	if *out != "" {
		if err := rep.WriteJSON(*out); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "tedload: wrote %s\n", *out)
	}
	if nerr := rep.Totals.Errors + rep.WarmupErrors; *failOnErr && nerr > 0 {
		return fmt.Errorf("%d errors (first: %s)", nerr, firstError(rep))
	}
	return nil
}

func arrivalMode(s load.Spec) string {
	if s.Rate > 0 {
		return fmt.Sprintf("open loop, %g rps", s.Rate)
	}
	return fmt.Sprintf("closed loop, %d workers", s.Conc)
}

func firstError(rep *load.Report) string {
	if rep.Totals.FirstError != "" {
		return rep.Totals.FirstError
	}
	return "during warmup"
}

// gitRev resolves the revision stamp: the -rev flag verbatim, else the
// working tree's HEAD, else "unknown" (tedload may run far from a
// checkout).
func gitRev(flagRev string) string {
	if flagRev != "" {
		return flagRev
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
