package main

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/corpus"
	"repro/gen"
	"repro/load"
	"repro/server"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	c := corpus.New(corpus.WithHistogramIndex())
	for i := 0; i < 6; i++ {
		base := gen.Random(int64(40+i), gen.RandomSpec{Size: 16 + i, MaxDepth: 8, MaxFanout: 4, Labels: 8})
		c.Add(base)
		c.Add(gen.RenameSome(base, 1+i%2, int64(i)))
	}
	srv := server.New(c)
	srv.Warm()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestRunEmitsValidArtifact: the CLI end to end — snapshot over HTTP,
// a short mixed run, table on stdout, schema-valid artifact on disk.
func TestRunEmitsValidArtifact(t *testing.T) {
	ts := testServer(t)
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-url", ts.URL,
		"-mix", "distance=3,bounded=2,topk=1,mutate=1",
		"-tau", "4", "-k", "2",
		"-seed", "5", "-conc", "4", "-warmup", "5", "-n", "60",
		"-out", out, "-rev", "testrev",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	rep, err := load.ReadReport(out)
	if err != nil {
		t.Fatalf("artifact: %v", err)
	}
	if rep.GitRev != "testrev" {
		t.Errorf("git_rev = %q, want testrev", rep.GitRev)
	}
	if rep.Totals.Requests != 60 || rep.Totals.Errors != 0 {
		t.Errorf("totals = %+v, want 60 requests, 0 errors", rep.Totals)
	}
	if !strings.Contains(stdout.String(), "TOTAL") {
		t.Errorf("stdout table missing TOTAL row:\n%s", stdout.String())
	}
}

// TestRunFlagErrors: the CLI refuses malformed invocations.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                // missing -url
		{"-url", "x", "-mix", "bogus=1"},  // unknown endpoint
		{"-url", "x", "-mix", "distance"}, // malformed mix
		{"-url", "x", "-n", "0"},          // nothing to measure
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
