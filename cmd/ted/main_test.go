package main

import (
	"os"
	"path/filepath"
	"testing"

	ted "repro"
)

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]ted.Algorithm{
		"rted":      ted.RTED,
		"RTED":      ted.RTED,
		"zhang-l":   ted.ZhangL,
		"zhangl":    ted.ZhangL,
		"zhang-r":   ted.ZhangR,
		"klein":     ted.KleinH,
		"klein-h":   ted.KleinH,
		"demaine":   ted.DemaineH,
		"demaine-h": ted.DemaineH,
		"zs":        ted.ZhangShashaClassic,
	}
	for s, want := range cases {
		got, ok := parseAlgorithm(s)
		if !ok || got != want {
			t.Errorf("parseAlgorithm(%q) = %v,%v want %v", s, got, ok, want)
		}
	}
	if _, ok := parseAlgorithm("made-up"); ok {
		t.Error("bogus algorithm accepted")
	}
}

func TestParseTreeFormats(t *testing.T) {
	b, err := parseTree(" {a{b}} \n", "bracket")
	if err != nil || b.Len() != 2 {
		t.Fatalf("bracket: %v %v", b, err)
	}
	n, err := parseTree("(A,B)r;", "newick")
	if err != nil || n.Len() != 3 {
		t.Fatalf("newick: %v %v", n, err)
	}
	x, err := parseTree(`<a><b/></a>`, "xml")
	if err != nil || x.Len() != 2 {
		t.Fatalf("xml: %v %v", x, err)
	}
	if _, err := parseTree("{a}", "nope"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := parseTree("{a", "bracket"); err == nil {
		t.Fatal("malformed bracket accepted")
	}
}

func TestRunJoin(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trees.txt")
	content := "{a{b}{c}}\n{a{b}{d}}\n\n{x{y{z}}}\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, filters := range []bool{false, true} {
		if err := runJoin(path, 2, ted.RTED, 2, filters, ""); err != nil {
			t.Fatalf("filters=%v: %v", filters, err)
		}
	}
	for _, mode := range []string{"auto", "enumerate", "histogram", "pqgram"} {
		if err := runJoin(path, 2, ted.RTED, 2, false, mode); err != nil {
			t.Fatalf("index=%s: %v", mode, err)
		}
	}
	if err := runJoin(path, 2, ted.RTED, 2, false, "bogus"); err == nil {
		t.Fatal("bogus index mode accepted")
	}
	if err := runJoin(filepath.Join(dir, "missing.txt"), 2, ted.RTED, 1, false, ""); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("{oops\n"), 0o644)
	if err := runJoin(bad, 2, ted.RTED, 1, false, ""); err == nil {
		t.Fatal("malformed tree file accepted")
	}
}

// TestRunBounded exercises both output branches of the bounded two-tree
// mode (exact-within-tau and exceeds-tau) with and without stats.
func TestRunBounded(t *testing.T) {
	f := ted.MustParse("{a{b}{c}}")
	g := ted.MustParse("{a{b{d}}}")
	d := ted.Distance(f, g)
	for _, tau := range []float64{d - 1, d, d + 1} {
		for _, stats := range []bool{false, true} {
			runBounded(f, g, tau, ted.RTED, stats)
		}
	}
	runBounded(f, g, 0.5, ted.ZhangShashaClassic, false)
}

func TestParseIndexMode(t *testing.T) {
	cases := map[string]ted.IndexMode{
		"auto":      ted.IndexAuto,
		"enum":      ted.IndexEnumerate,
		"enumerate": ted.IndexEnumerate,
		"hist":      ted.IndexHistogram,
		"HISTOGRAM": ted.IndexHistogram,
		"pqgram":    ted.IndexPQGram,
		"pq":        ted.IndexPQGram,
	}
	for s, want := range cases {
		got, ok := parseIndexMode(s)
		if !ok || got != want {
			t.Errorf("parseIndexMode(%q) = %v,%v want %v", s, got, ok, want)
		}
	}
	if _, ok := parseIndexMode("made-up"); ok {
		t.Error("bogus index mode accepted")
	}
}
