package main

import (
	"os"
	"path/filepath"
	"testing"

	ted "repro"
)

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]ted.Algorithm{
		"rted":      ted.RTED,
		"RTED":      ted.RTED,
		"zhang-l":   ted.ZhangL,
		"zhangl":    ted.ZhangL,
		"zhang-r":   ted.ZhangR,
		"klein":     ted.KleinH,
		"klein-h":   ted.KleinH,
		"demaine":   ted.DemaineH,
		"demaine-h": ted.DemaineH,
		"zs":        ted.ZhangShashaClassic,
	}
	for s, want := range cases {
		got, ok := parseAlgorithm(s)
		if !ok || got != want {
			t.Errorf("parseAlgorithm(%q) = %v,%v want %v", s, got, ok, want)
		}
	}
	if _, ok := parseAlgorithm("made-up"); ok {
		t.Error("bogus algorithm accepted")
	}
}

func TestParseTreeFormats(t *testing.T) {
	b, err := parseTree(" {a{b}} \n", "bracket")
	if err != nil || b.Len() != 2 {
		t.Fatalf("bracket: %v %v", b, err)
	}
	n, err := parseTree("(A,B)r;", "newick")
	if err != nil || n.Len() != 3 {
		t.Fatalf("newick: %v %v", n, err)
	}
	x, err := parseTree(`<a><b/></a>`, "xml")
	if err != nil || x.Len() != 2 {
		t.Fatalf("xml: %v %v", x, err)
	}
	if _, err := parseTree("{a}", "nope"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := parseTree("{a", "bracket"); err == nil {
		t.Fatal("malformed bracket accepted")
	}
}

func TestRunJoin(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trees.txt")
	content := "{a{b}{c}}\n{a{b}{d}}\n\n{x{y{z}}}\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, filters := range []bool{false, true} {
		if err := runJoin(path, 2, ted.RTED, 2, filters, ""); err != nil {
			t.Fatalf("filters=%v: %v", filters, err)
		}
	}
	for _, mode := range []string{"auto", "enumerate", "histogram", "pqgram"} {
		if err := runJoin(path, 2, ted.RTED, 2, false, mode); err != nil {
			t.Fatalf("index=%s: %v", mode, err)
		}
	}
	if err := runJoin(path, 2, ted.RTED, 2, false, "bogus"); err == nil {
		t.Fatal("bogus index mode accepted")
	}
	if err := runJoin(filepath.Join(dir, "missing.txt"), 2, ted.RTED, 1, false, ""); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("{oops\n"), 0o644)
	if err := runJoin(bad, 2, ted.RTED, 1, false, ""); err == nil {
		t.Fatal("malformed tree file accepted")
	}
}

// TestRunBounded exercises both output branches of the bounded two-tree
// mode (exact-within-tau and exceeds-tau) with and without stats.
func TestRunBounded(t *testing.T) {
	f := ted.MustParse("{a{b}{c}}")
	g := ted.MustParse("{a{b{d}}}")
	d := ted.Distance(f, g)
	for _, tau := range []float64{d - 1, d, d + 1} {
		for _, stats := range []bool{false, true} {
			runBounded(f, g, tau, ted.RTED, stats)
		}
	}
	runBounded(f, g, 0.5, ted.ZhangShashaClassic, false)
}

// TestDetectFormat is the table-driven pin for extension-based format
// autodetection and the -format override.
func TestDetectFormat(t *testing.T) {
	cases := []struct {
		path, override, want string
	}{
		{"trees/doc.xml", "", "xml"},
		{"doc.XML", "", "xml"},
		{"phylo.nwk", "", "newick"},
		{"phylo.newick", "", "newick"},
		{"phylo.NWK", "", "newick"},
		{"trees.txt", "", "bracket"},
		{"trees.bracket", "", "bracket"},
		{"noextension", "", "bracket"},
		{"", "", "bracket"},               // -e literal: no file name
		{"doc.xml", "bracket", "bracket"}, // explicit -format wins
		{"trees.txt", "newick", "newick"},
		{"phylo.nwk", "xml", "xml"},
	}
	for _, c := range cases {
		if got := resolveFormat(c.override, c.path); got != c.want {
			t.Errorf("resolveFormat(%q, %q) = %q, want %q", c.override, c.path, got, c.want)
		}
	}
}

// TestDetectFormatParses runs the detected format end to end: the same
// content parses (or fails) according to the file name it arrived under.
func TestDetectFormatParses(t *testing.T) {
	cases := []struct {
		name, content string
		nodes         int
	}{
		{"a.xml", "<a><b/><c/></a>", 3},
		{"a.nwk", "(A,B)r;", 3},
		{"a.txt", "{r{a}{b}}", 3},
	}
	for _, c := range cases {
		tr, err := parseTree(c.content, resolveFormat("", c.name))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if tr.Len() != c.nodes {
			t.Fatalf("%s: %d nodes, want %d", c.name, tr.Len(), c.nodes)
		}
	}
	if _, err := parseTree("<a/>", resolveFormat("", "a.txt")); err == nil {
		t.Fatal("XML content under a bracket name must fail to parse")
	}
}

// TestRunCorpusJoin drives the -corpus-save/-corpus-load path: save a
// collection, reload it in place of the tree file, and join both ways.
func TestRunCorpusJoin(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trees.txt")
	content := "{a{b}{c}}\n{a{b}{d}}\n{x{y{z}}}\n{a{b}{c}}\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	saved := filepath.Join(dir, "trees.tedc")
	if err := runCorpusJoin("", saved, path, 2, ted.RTED, 2, "auto"); err != nil {
		t.Fatalf("save+join: %v", err)
	}
	if _, err := os.Stat(saved); err != nil {
		t.Fatalf("corpus file not written: %v", err)
	}
	for _, mode := range []string{"", "auto", "histogram", "enumerate"} {
		if err := runCorpusJoin(saved, "", "", 2, ted.RTED, 2, mode); err != nil {
			t.Fatalf("load+join (%q): %v", mode, err)
		}
	}
	if err := runCorpusJoin(saved, "", "", 2, ted.ZhangL, 1, ""); err != nil {
		t.Fatalf("load+join with fixed strategy: %v", err)
	}
	if err := runCorpusJoin(filepath.Join(dir, "missing.tedc"), "", "", 2, ted.RTED, 1, ""); err == nil {
		t.Fatal("missing corpus accepted")
	}
	if err := runCorpusJoin("", "", path, 2, ted.RTED, 1, "bogus"); err == nil {
		t.Fatal("bogus index mode accepted")
	}
}

func TestParseIndexMode(t *testing.T) {
	cases := map[string]ted.IndexMode{
		"auto":      ted.IndexAuto,
		"enum":      ted.IndexEnumerate,
		"enumerate": ted.IndexEnumerate,
		"hist":      ted.IndexHistogram,
		"HISTOGRAM": ted.IndexHistogram,
		"pqgram":    ted.IndexPQGram,
		"pq":        ted.IndexPQGram,
	}
	for s, want := range cases {
		got, ok := parseIndexMode(s)
		if !ok || got != want {
			t.Errorf("parseIndexMode(%q) = %v,%v want %v", s, got, ok, want)
		}
	}
	if _, ok := parseIndexMode("made-up"); ok {
		t.Error("bogus index mode accepted")
	}
}
