// Command ted computes the tree edit distance between two trees.
//
// Trees are read from files (or literals with -e) in bracket notation
// ({a{b}{c}}), Newick or XML. The format is detected from the file
// extension (.xml → xml, .nwk/.newick → newick, anything else →
// bracket); -format overrides the detection, and is required for
// literals that are not bracket trees.
//
// Usage:
//
//	ted [-algorithm rted] [-stats] [-mapping] F G
//	ted -e '{a{b}}' -e '{a{c}}'
//	ted -tau 5 F G                             # bounded: "is d ≤ 5?"
//	ted -join -tau 12 trees.txt                # one bracket tree per line
//	ted -join -tau 12 -index auto trees.txt    # index-generated candidates
//
//	ted -join -tau 12 -corpus-save t.tedc trees.txt   # join, then persist
//	ted -join -tau 12 -corpus-load t.tedc             # join a saved corpus
//
// With -tau in two-tree mode the distance is computed in bounded mode:
// the exact distance is printed when it is at most tau, and ">tau"
// when it provably exceeds it (usually after skipping most of the DP).
//
// -corpus-save writes the join collection as a persistent corpus (trees,
// prepared artifacts, inverted-index posting lists; package corpus), and
// -corpus-load joins such a corpus directly — a restart skips parsing,
// preparation and index building entirely.
//
// Exit status 0; the distance (or join result) is printed to stdout.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	ted "repro"
	"repro/batch"
	"repro/corpus"
	"repro/internal/strategy"
	"repro/internal/tree"
)

type literals []string

func (l *literals) String() string     { return strings.Join(*l, ",") }
func (l *literals) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	var (
		algName    = flag.String("algorithm", "rted", "rted | zhang-l | zhang-r | klein-h | demaine-h | zs")
		format     = flag.String("format", "", "bracket | newick | xml (default: detect from the file extension)")
		stats      = flag.Bool("stats", false, "print subproblem and timing statistics to stderr")
		mapping    = flag.Bool("mapping", false, "print the edit mapping")
		joinMode   = flag.Bool("join", false, "similarity self-join over a file of trees (one per line)")
		tau        = flag.Float64("tau", 10, "join distance threshold; in two-tree mode, bounded-distance cutoff")
		workers    = flag.Int("workers", 0, "join worker goroutines (0 = all CPU cores)")
		filters    = flag.Bool("filters", false, "join: prune with lower/upper bounds (unit costs)")
		indexMode  = flag.String("index", "", "join: generate candidates from an inverted index: auto | enumerate | histogram | pqgram (empty = off)")
		corpusSave = flag.String("corpus-save", "", "join: persist the collection as a corpus (trees + prepared artifacts + indexes) to this path")
		corpusLoad = flag.String("corpus-load", "", "join: load the collection from a saved corpus instead of a tree file")
		exprs      literals
	)
	flag.Var(&exprs, "e", "tree literal (repeatable; used instead of file arguments)")
	flag.Parse()
	tauSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "tau" {
			tauSet = true
		}
	})

	alg, ok := parseAlgorithm(*algName)
	if !ok {
		fail("unknown algorithm %q", *algName)
	}

	if *joinMode {
		switch {
		case *corpusLoad != "":
			if flag.NArg() != 0 {
				fail("-corpus-load replaces the tree file argument")
			}
		case flag.NArg() != 1:
			fail("-join needs one file of trees (one bracket tree per line), or -corpus-load")
		}
		if *corpusLoad != "" || *corpusSave != "" {
			treesPath := ""
			if flag.NArg() == 1 {
				treesPath = flag.Arg(0)
			}
			if err := runCorpusJoin(*corpusLoad, *corpusSave, treesPath, *tau, alg, *workers, *indexMode); err != nil {
				fail("%v", err)
			}
			return
		}
		if err := runJoin(flag.Arg(0), *tau, alg, *workers, *filters, *indexMode); err != nil {
			fail("%v", err)
		}
		return
	}
	if *indexMode != "" {
		fail("-index only applies to -join")
	}
	if *corpusSave != "" || *corpusLoad != "" {
		fail("-corpus-save/-corpus-load only apply to -join")
	}

	var sources, names []string
	if len(exprs) > 0 {
		sources = exprs
		names = make([]string, len(exprs)) // literals have no extension
	} else {
		if flag.NArg() != 2 {
			fail("need two tree files (or two -e literals)")
		}
		for _, p := range flag.Args() {
			b, err := os.ReadFile(p)
			if err != nil {
				fail("%v", err)
			}
			sources = append(sources, string(b))
			names = append(names, p)
		}
	}
	if len(sources) != 2 {
		fail("need exactly two trees, got %d", len(sources))
	}

	trees := make([]*ted.Tree, 2)
	for i, s := range sources {
		t, err := parseTree(s, resolveFormat(*format, names[i]))
		if err != nil {
			fail("tree %d: %v", i+1, err)
		}
		trees[i] = t
	}

	if tauSet {
		if *mapping {
			fail("-mapping needs the exact distance; drop -tau")
		}
		runBounded(trees[0], trees[1], *tau, alg, *stats)
		return
	}

	var st ted.Stats
	d := ted.Distance(trees[0], trees[1], ted.WithAlgorithm(alg), ted.WithStats(&st))
	fmt.Println(d)

	if *stats {
		fmt.Fprintf(os.Stderr, "algorithm    %s\n", alg)
		fmt.Fprintf(os.Stderr, "sizes        |F|=%d |G|=%d\n", trees[0].Len(), trees[1].Len())
		fmt.Fprintf(os.Stderr, "subproblems  %d\n", st.Subproblems)
		fmt.Fprintf(os.Stderr, "spf calls    %d\n", st.SPFCalls)
		if alg == ted.RTED {
			fmt.Fprintf(os.Stderr, "strategy     %v (%.1f%% of %v)\n",
				st.StrategyTime, 100*st.StrategyTime.Seconds()/st.TotalTime.Seconds(), st.TotalTime)
		} else {
			fmt.Fprintf(os.Stderr, "total        %v\n", st.TotalTime)
		}
	}
	if *mapping {
		for _, op := range ted.Mapping(trees[0], trees[1]) {
			switch op.Kind {
			case ted.OpMatch:
				kind := "match "
				if op.FLabel != op.GLabel {
					kind = "rename"
				}
				fmt.Printf("%s  F:%d %q -> G:%d %q (cost %g)\n", kind, op.FNode, op.FLabel, op.GNode, op.GLabel, op.Cost)
			case ted.OpDelete:
				fmt.Printf("delete  F:%d %q (cost %g)\n", op.FNode, op.FLabel, op.Cost)
			case ted.OpInsert:
				fmt.Printf("insert  G:%d %q (cost %g)\n", op.GNode, op.GLabel, op.Cost)
			}
		}
	}
}

// runBounded answers the threshold question for one pair: it prints the
// exact distance when it is at most tau and ">tau" otherwise.
func runBounded(f, g *ted.Tree, tau float64, alg ted.Algorithm, stats bool) {
	var st ted.Stats
	d, ok := ted.DistanceBounded(f, g, tau, ted.WithAlgorithm(alg), ted.WithStats(&st))
	if ok {
		fmt.Println(d)
	} else {
		fmt.Printf(">%g\n", tau)
	}
	if stats {
		fmt.Fprintf(os.Stderr, "algorithm    %s (bounded, tau=%g)\n", alg, tau)
		fmt.Fprintf(os.Stderr, "sizes        |F|=%d |G|=%d\n", f.Len(), g.Len())
		fmt.Fprintf(os.Stderr, "subproblems  %d evaluated, %d pruned\n", st.Subproblems, st.PrunedSubproblems)
		fmt.Fprintf(os.Stderr, "band         %d cells skipped in ranges, %d keyroot DPs skipped\n",
			st.BandSkippedCells, st.PrunedKeyroots)
		fmt.Fprintf(os.Stderr, "rows         %d band-compressed, %d cells materialized (%d bytes)\n",
			st.CompressedRows, st.RowCells, 8*st.RowCells)
		fmt.Fprintf(os.Stderr, "total        %v\n", st.TotalTime)
	}
}

func parseIndexMode(s string) (ted.IndexMode, bool) {
	switch strings.ToLower(s) {
	case "auto":
		return ted.IndexAuto, true
	case "enumerate", "enum":
		return ted.IndexEnumerate, true
	case "histogram", "hist":
		return ted.IndexHistogram, true
	case "pqgram", "pq":
		return ted.IndexPQGram, true
	}
	return 0, false
}

func runJoin(path string, tau float64, alg ted.Algorithm, workers int, filters bool, indexMode string) error {
	trees, err := readTreeLines(path)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// The join runs on the batch engine: trees are prepared once and the
	// pairs fan out over the workers on reusable arenas. With -index, an
	// inverted index generates the candidate pairs instead of enumerating
	// them; the bound filters then run on the candidates.
	opts := []ted.Option{ted.WithAlgorithm(alg), ted.WithWorkers(workers)}
	if filters {
		opts = append(opts, ted.WithFilters())
	}
	indexed := indexMode != ""
	if indexed {
		m, ok := parseIndexMode(indexMode)
		if !ok {
			return fmt.Errorf("unknown index mode %q (auto | enumerate | histogram | pqgram)", indexMode)
		}
		opts = append(opts, ted.WithIndex(m))
	}
	r := ted.Join(trees, tau, opts...)
	if indexed {
		fmt.Printf("# %d trees, %d candidates (index %s, built+probed in %v), %d subproblems, %v\n",
			len(trees), r.Comparisons, r.Mode, r.IndexTime, r.Subproblems, r.Elapsed)
	} else {
		fmt.Printf("# %d trees, %d comparisons, %d subproblems, %v\n",
			len(trees), r.Comparisons, r.Subproblems, r.Elapsed)
	}
	if filters || indexed {
		fmt.Printf("# filters: %d lb-pruned, %d ub-accepted, %d exact\n",
			r.LowerPruned, r.UpperAccepted, r.ExactComputed)
	}
	for _, p := range r.Pairs {
		fmt.Printf("%d\t%d\t%g\n", p.I, p.J, p.Dist)
	}
	return nil
}

func parseAlgorithm(s string) (ted.Algorithm, bool) {
	switch strings.ToLower(s) {
	case "rted":
		return ted.RTED, true
	case "zhang-l", "zhangl":
		return ted.ZhangL, true
	case "zhang-r", "zhangr":
		return ted.ZhangR, true
	case "klein-h", "klein":
		return ted.KleinH, true
	case "demaine-h", "demaine":
		return ted.DemaineH, true
	case "zs", "zs-classic":
		return ted.ZhangShashaClassic, true
	}
	return 0, false
}

// detectFormat maps a file extension to a tree format: .xml is XML,
// .nwk/.newick are Newick, and everything else (including no file at
// all) is bracket notation.
func detectFormat(path string) string {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".xml":
		return "xml"
	case ".nwk", ".newick":
		return "newick"
	}
	return "bracket"
}

// resolveFormat applies the -format override, falling back to detection
// from the input's file name.
func resolveFormat(override, path string) string {
	if override != "" {
		return override
	}
	return detectFormat(path)
}

// corpusEngineOpts mirrors the engine a plain join would build: worker
// pool plus the fixed-strategy override for the competitor algorithms
// (RTED is the engine default).
func corpusEngineOpts(alg ted.Algorithm, workers int) []batch.Option {
	opts := []batch.Option{batch.WithWorkers(workers)}
	if alg == ted.ZhangShashaClassic {
		alg = ted.ZhangL // no strategy form; identical distances
	}
	if alg != ted.RTED {
		a := alg
		opts = append(opts, batch.WithStrategy(func(f, g *tree.Tree) strategy.Strategy {
			return ted.StrategyFor(a, f, g)
		}))
	}
	return opts
}

// runCorpusJoin is the persistent-corpus join path: the collection comes
// from a saved corpus (-corpus-load) or from a tree file that is then
// persisted (-corpus-save), and the join runs on corpus-hydrated
// prepared trees with the corpus's own maintained index generating
// candidates.
func runCorpusJoin(loadPath, savePath, treesPath string, tau float64, alg ted.Algorithm, workers int, indexMode string) error {
	mode := ted.IndexAuto
	if indexMode != "" {
		m, ok := parseIndexMode(indexMode)
		if !ok {
			return fmt.Errorf("unknown index mode %q (auto | enumerate | histogram | pqgram)", indexMode)
		}
		mode = m
	}
	var cp *corpus.Corpus
	switch {
	case loadPath != "":
		var err error
		if cp, err = corpus.LoadFile(loadPath); err != nil {
			return err
		}
	default:
		trees, err := readTreeLines(treesPath)
		if err != nil {
			return err
		}
		// Maintain the index the join will probe; pq-gram mode keeps the
		// histogram too, so a reloaded corpus can serve either.
		opts := []corpus.Option{corpus.WithHistogramIndex()}
		if mode == ted.IndexPQGram {
			opts = append(opts, corpus.WithPQGramIndex(2))
		}
		cp = corpus.New(opts...)
		for _, t := range trees {
			cp.Add(t)
		}
	}
	if savePath != "" {
		if err := cp.SaveFile(savePath); err != nil {
			return err
		}
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	e := cp.Engine(corpusEngineOpts(alg, workers)...)
	ms, st := cp.Join(e, tau, batch.JoinOptions{Mode: mode})
	fmt.Printf("# corpus of %d trees, %d candidates (index %s, probed in %v), %d subproblems, %v\n",
		cp.Len(), st.Comparisons, st.Mode, st.IndexTime, st.Subproblems, st.Elapsed)
	fmt.Printf("# filters: %d lb-pruned, %d ub-accepted, %d exact\n",
		st.LowerPruned, st.UpperAccepted, st.ExactComputed)
	for _, m := range ms {
		fmt.Printf("%d\t%d\t%g\n", m.I, m.J, m.Dist)
	}
	return nil
}

// readTreeLines reads a join collection: one bracket tree per line,
// blank lines skipped.
func readTreeLines(path string) ([]*ted.Tree, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	var trees []*ted.Tree
	sc := bufio.NewScanner(fh)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		t, err := ted.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, ln, err)
		}
		trees = append(trees, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return trees, nil
}

func parseTree(s, format string) (*ted.Tree, error) {
	switch format {
	case "bracket":
		return ted.Parse(strings.TrimSpace(s))
	case "newick":
		return ted.ParseNewick(strings.TrimSpace(s))
	case "xml":
		return ted.FromXML(strings.NewReader(s), ted.XMLOptions{IncludeAttributes: true, IncludeText: true})
	}
	return nil, fmt.Errorf("unknown format %q", format)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ted: "+format+"\n", args...)
	os.Exit(2)
}
