// Package ted computes the tree edit distance between ordered labeled
// trees. It is a from-scratch Go implementation of
//
//	Mateusz Pawlik, Nikolaus Augsten:
//	"RTED: A Robust Algorithm for the Tree Edit Distance",
//	PVLDB 5(4), 2011.
//
// # The algorithm
//
// The tree edit distance is the minimum total cost of node deletions,
// insertions and renames that turn one ordered labeled tree into
// another. Every practical exact algorithm evaluates the same recursive
// forest-distance formula; they differ only in the root-leaf paths along
// which they decompose the trees, and each fixed choice (left paths for
// Zhang–Shasha, heavy paths for Klein and Demaine et al.) has input
// shapes that degrade it from O(n² log² n)-ish behavior to its worst
// case. RTED — the paper's contribution and this package's default —
// first computes, in O(n²) time and space, the provably optimal
// left/right/heavy (LRH) decomposition strategy for the concrete input
// pair, then evaluates the distance with the strategy-generic GTED
// algorithm. Its subproblem count is therefore never larger than that of
// any LRH competitor, at a strategy-computation overhead that vanishes
// against the distance computation itself.
//
// All five algorithms from the paper's evaluation are available through
// WithAlgorithm (RTED, ZhangL, ZhangR, KleinH, DemaineH, plus the
// hard-coded ZhangShashaClassic), and CountSubproblems reproduces the
// paper's cost measure analytically without computing a distance.
//
// # Basic usage
//
//	f := ted.MustParse("{a{b}{c}}")
//	g := ted.MustParse("{a{b{d}}}")
//	d := ted.Distance(f, g) // 2: insert d, delete c
//
// Trees use the bracket notation of the reference RTED distribution
// ({label child child ...}); XML documents and Newick phylogenies can be
// converted with FromXML and ParseNewick. Nodes of a parsed tree are
// identified by their postorder id (0-based; the root is Len()-1).
//
// Beyond Distance, the package offers DistanceBounded (the threshold
// question "is d ≤ τ?", answered without always paying for the full
// computation: cheap bounds first, then GTED with τ threaded into its DP
// as a saturating cutoff), Mapping (the optimal edit script), Join (the
// threshold similarity self-join of the paper's Table 1, with optional
// bound-based filtering and a worker pool), TopKSubtrees and
// TopKSubtreesAcross (top-k approximate subtree matching, the latter
// shrinking the cutoff to the running k-th best across a collection),
// SubtreeDistances (the full subtree-pair distance matrix), and
// LowerBound/ConstrainedDistance (cheap lower and upper bounds for
// pruning).
//
// # Architecture
//
// The public API is a thin veneer over focused internal packages:
//
//	ted (this package)   options, cost-model and algorithm selection
//	ted/batch            concurrent batch engine: PreparedTree + arenas
//	ted/corpus           persistent store: stable IDs, codec, write-ahead log
//	ted/server           HTTP serving layer: JSON API + admission control
//	ted/index            inverted indexes for join candidate generation
//	internal/tree        immutable postorder-indexed tree substrate
//	internal/strategy    LRH strategies, Algorithm 2 (OptStrategy), cost formula
//	internal/gted        GTED (Algorithm 1) and the single-path functions ΔL/ΔR/ΔI
//	internal/cost        cost models, label interning, compiled per-pair form
//	internal/bounds      lower/upper bounds and per-tree bound profiles
//	internal/zs          standalone classic Zhang–Shasha (comparison baseline)
//	internal/join        sequential/filtered reference joins (experiments)
//	internal/experiments paper figure/table regeneration (cmd/tedbench)
//
// Join and TopKSubtrees run on the batch engine (package batch): every
// input tree is prepared once — node indexes, decomposition
// cardinalities, interned cost vectors, bound profiles — and the pairs
// are evaluated on per-worker reusable memory arenas, so the steady-state
// hot path allocates nothing. Workloads that compare many trees
// repeatedly (similarity joins, top-k serving, clustering) should use
// package batch directly and keep the PreparedTrees.
//
// # Choosing a distance or join configuration
//
// For a single pair, the first question is whether the exact distance is
// needed at all:
//
//	What is the question?
//	├── "what is d?"        → Distance(f, g)
//	├── "is d ≤ τ?"         → DistanceBounded(f, g, τ) — cheap bounds
//	│                          first, then GTED with τ as a DP cutoff;
//	│                          exact d returned whenever d ≤ τ
//	└── "which subtrees of the data are closest?"
//	      ├── one data tree  → TopKSubtrees(query, data, k)
//	      └── a collection   → TopKSubtreesAcross(query, data, k) —
//	                            the cutoff shrinks to the running
//	                            k-th best as trees stream through
//
// Join always returns exactly the pairs with distance below the
// threshold; the options only change how much work that takes.
//
//	How many trees?
//	├── a handful (cost dominated by a few hard pairs)
//	│     └── Join(trees, tau)              — plain, add WithWorkers(n)
//	├── many, non-unit cost model
//	│     └── Join(trees, tau, WithWorkers) — bounds need unit costs;
//	│                                          only the pool helps
//	└── many, unit costs
//	      ├── tau ≥ the largest tree size (non-selective)
//	      │     └── WithFilters()           — indexes cannot prune;
//	      │                                    bounds still decide pairs
//	      └── tau selective
//	            ├── labels diverse  → WithIndex(IndexAuto)
//	            │                      (histogram candidate generation)
//	            ├── labels carry little information (tiny alphabet,
//	            │   near-duplicates) → WithIndex(IndexPQGram)
//	            └── unsure          → WithIndex(IndexAuto); it falls
//	                                   back to enumeration when the
//	                                   threshold is too large to prune
//
// All of it composes: an indexed join's candidates run the bound
// filters, seed exact GTED with the threshold as a cutoff (so pairs that
// provably exceed it abandon most of their DP), and fan out over
// WithWorkers goroutines.
//
// The last axis is the collection's lifetime — whether to rebuild the
// prepared state per run, persist it, or serve it (packages corpus and
// server):
//
//	How long does the collection live?
//	├── one process, one join        → the Join options above; the
//	│                                   transient index is built and
//	│                                   dropped inside the call
//	├── one process, evolving        → corpus.New(WithHistogramIndex());
//	│     (adds/deletes/replaces       Add/Delete/Replace keep the
//	│      between joins)              sharded posting lists in sync, and
//	│                                   every join reuses the artifacts
//	├── many processes, read-mostly  → the same corpus, plus Save at
//	│     (batch jobs, a fleet          build time and Load at start:
//	│      that shares one build)       trees, artifacts and posting
//	│                                    lists come back in O(bytes),
//	│                                    Corpus.Engine + Warm make the
//	│                                    first join pay only GTED
//	├── many processes, mutating     → corpus.Open instead of Load: a
//	│     (crashes must lose            write-ahead log records every
//	│      nothing acknowledged)        mutation before it returns and
//	│                                    replays over the snapshot at
//	│                                    startup; Checkpoint compacts
//	├── other services are the      → cmd/tedd (package server): the
//	│     callers (HTTP clients,       corpus behind a JSON API with
//	│     load balancers, probes)      admission control, WAL-durable
//	│                                   mutations and graceful drain
//	└── one machine is not enough   → package cluster (cmd/tedc):
//	      ├── compute-bound joins     → tedc workers over one shared
//	      │     (cores are the limit)    snapshot + a coordinator (tedc
//	      │                              join / tedd -cluster-workers):
//	      │                              range partitioning, dead-worker
//	      │                              reassignment, the single-node
//	      │                              match set exactly
//	      └── read-bound serving      → tedd -follow replicas: ship the
//	            (traffic is the limit)   primary's checkpoint, tail its
//	                                     WAL over HTTP, serve reads with
//	                                     a staleness guard; writes 403
//
// Persist when the per-tree work is paid more than once per build:
// restarts, repeated batch jobs over one collection, or any fan-out
// where workers can Load a shared artifact set instead of each
// re-preparing it. Rebuild when trees are joined once and discarded —
// the codec's bytes buy nothing a dropped process would not also drop.
// Open (rather than Load) whenever mutations happen between Saves and a
// crash must not lose them; serve with tedd when the callers are not Go
// code.
//
// Served joins and top-k scans then come in two response shapes. The
// buffered endpoints (/v1/join, /v1/topk) return one JSON document; the
// streaming ones (/v1/join/stream, /v1/topk/stream) emit
// newline-delimited JSON — one match per line, flushed as the engine
// finds it, closed by a terminal stats record. The two shapes carry the
// identical match multiset at equal threshold (pinned by test); they
// differ only in delivery:
//
//	How should results come back?
//	├── bounded result set, simplest caller → /v1/join, /v1/topk —
//	│                                          one JSON body
//	├── first matches matter (pipelines,    → /v1/join/stream — matches
//	│    progress UIs)                         flush as found, so
//	│                                          time-to-first-match beats
//	│                                          the buffered total
//	└── caller may stop early or disconnect → the stream endpoints:
//	                                           closing the connection
//	                                           cancels the engine work
//
// Whatever is served should also be measured: package load (and its CLI
// cmd/tedload) drives a running tedd with declarative workload mixes —
// open-loop Poisson or closed-loop arrivals — and emits the
// BENCH_serve.json artifact whose schema load's package documentation
// defines; the checked-in copy at the repository root is the tracked
// p50/p99/throughput trajectory, refreshed per PR by CI's smoke run.
package ted
