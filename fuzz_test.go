package ted_test

import (
	"math"
	"testing"

	ted "repro"
	"repro/internal/cost"
	"repro/internal/difftest"
)

// FuzzDistanceBounded fuzzes the bounded-distance contract over bracket
// tree pairs and arbitrary cutoffs: DistanceBounded(f, g, tau) must
// return (d, true) exactly when Distance(f, g) ≤ tau (with d the exact
// distance), and otherwise a lower bound in [tau, d]. Small pairs
// additionally run the full differential oracle (all strategies, bounded
// cutoffs around the distance, Zhang–Shasha, naive).
//
// Run continuously with: go test -fuzz=FuzzDistanceBounded
func FuzzDistanceBounded(f *testing.F) {
	f.Add("{a{b}{c}}", "{a{b{d}}}", 1.5)
	f.Add("{a{b}{c}}", "{a{b{d}}}", 2.0)
	f.Add("{a}", "{a}", 0.0)
	f.Add("{a}", "{b}", 0.0)
	f.Add("{x{x{x{x}}}}", "{x}{", 3.0)
	f.Add("{a{a}{a}{a}}", "{a{a{a}{a}}}", math.Inf(1))
	f.Add("{l0{l1}{l2{l3}}}", "{l0{l2{l3}}{l1}}", -1.0)
	f.Add("{r{a{b}{c}}{d}}", "{r{d}{a{c}{b}}}", 4.0)

	f.Fuzz(func(t *testing.T, fs, gs string, tau float64) {
		ft, err := ted.Parse(fs)
		if err != nil || ft.Len() > 60 {
			t.Skip()
		}
		gt, err := ted.Parse(gs)
		if err != nil || gt.Len() > 60 {
			t.Skip()
		}
		if math.IsNaN(tau) {
			t.Skip()
		}
		d := ted.Distance(ft, gt)
		var st ted.Stats
		got, ok := ted.DistanceBounded(ft, gt, tau, ted.WithStats(&st))
		if ok != (d <= tau) {
			t.Fatalf("DistanceBounded(tau=%v) ok=%v, Distance=%v\nF=%s\nG=%s", tau, ok, d, fs, gs)
		}
		if ok && got != d {
			t.Fatalf("DistanceBounded(tau=%v) = %v, Distance = %v\nF=%s\nG=%s", tau, got, d, fs, gs)
		}
		if !ok && (got > d || got < tau) {
			t.Fatalf("DistanceBounded(tau=%v) lower bound %v outside [tau, %v]\nF=%s\nG=%s", tau, got, d, fs, gs)
		}
		if st.PrunedSubproblems < 0 || st.Subproblems < 0 {
			t.Fatalf("negative instrumentation: %+v", st)
		}
		if ft.Len()*gt.Len() <= 32*32 {
			if err := difftest.Check(ft, gt, cost.Unit{}); err != nil {
				t.Fatalf("differential oracle: %v", err)
			}
		}
	})
}
