package batch

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bounds"
)

// This file is the streaming half of the join/top-k API: the same
// pipelines as Join/JoinIndexed/JoinCandidates/TopKAcross, but results
// are handed to the caller as they are found instead of buffered into a
// slice, and a context threads cancellation back into the worker pool —
// the engine side of a server streaming NDJSON to a client that may
// disconnect mid-response.
//
// Contracts shared by every streaming call:
//
//   - emit runs on the calling goroutine, one invocation at a time, in
//     completion order (nondeterministic across runs). Run to
//     completion, the emitted multiset is exactly the buffered call's
//     match set; only the order differs.
//   - Cancelling ctx stops the work: workers abandon remaining pairs at
//     the next pair boundary and the call returns ctx's error. The
//     returned stats then cover only the work actually done
//     (JoinStats.Comparisons counts evaluated pairs, not planned ones).

// JoinStream is the streaming Join: every match is passed to emit as
// soon as its pair resolves. See the streaming contracts above.
func (e *Engine) JoinStream(ctx context.Context, trees []*PreparedTree, tau float64, filtered bool, emit func(Match)) (JoinStats, error) {
	e.check(trees...)
	if filtered && !e.unit {
		panic("batch: filtered JoinStream requires the unit cost model")
	}
	start := time.Now()
	n := len(trees)
	pairs := make([]ij, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, ij{i: i, j: j})
		}
	}
	st, err := e.evalPairsStream(ctx, trees, pairs, tau, filtered, emit)
	st.Mode = IndexEnumerate
	st.Elapsed = time.Since(start)
	return st, err
}

// JoinIndexedStream is the streaming JoinIndexed: candidate pairs come
// from the selected inverted index, matches flow to emit as found. See
// the streaming contracts above.
func (e *Engine) JoinIndexedStream(ctx context.Context, trees []*PreparedTree, tau float64, opts JoinOptions, emit func(Match)) (JoinStats, error) {
	e.check(trees...)
	if !e.unit {
		panic("batch: JoinIndexedStream requires the unit cost model")
	}
	mode := opts.Mode
	if mode == IndexAuto {
		if indexablePrunes(trees, tau) {
			mode = IndexHistogram
		} else {
			mode = IndexEnumerate
		}
	}
	if mode == IndexEnumerate {
		st, err := e.JoinStream(ctx, trees, tau, true, emit)
		st.Mode = IndexEnumerate
		return st, err
	}

	start := time.Now()
	pairs, indexTime := generate(trees, tau, mode, opts)
	st, err := e.evalPairsStream(ctx, trees, pairs, tau, true, emit)
	st.Mode = mode
	st.IndexTime = indexTime
	st.Elapsed = time.Since(start)
	return st, err
}

// JoinCandidatesStream is the streaming JoinCandidates: the caller's
// candidate pairs run through the filtered pipeline and matches flow to
// emit as found. See the streaming contracts above.
func (e *Engine) JoinCandidatesStream(ctx context.Context, trees []*PreparedTree, cands []CandidatePair, tau float64, emit func(Match)) (JoinStats, error) {
	e.check(trees...)
	if !e.unit {
		panic("batch: JoinCandidatesStream requires the unit cost model")
	}
	start := time.Now()
	pairs := make([]ij, len(cands))
	for k, c := range cands {
		i, j := c.I, c.J
		if i > j {
			i, j = j, i
		}
		if i < 0 || j >= len(trees) || i == j {
			panic(fmt.Sprintf("batch: candidate pair (%d, %d) outside the %d-tree collection", c.I, c.J, len(trees)))
		}
		pairs[k] = ij{i: i, j: j, lb: c.LB}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	st, err := e.evalPairsStream(ctx, trees, pairs, tau, true, emit)
	st.Mode = IndexEnumerate
	st.Elapsed = time.Since(start)
	return st, err
}

// streamOutcome is one worker's resolved pair, tagged with its index so
// the collector can name the matched trees.
type streamOutcome struct {
	k int
	o joinOutcome
}

// evalPairsStream is evalPairs with the buffer replaced by a channel:
// workers resolve pairs and send outcomes; the calling goroutine
// aggregates stats and emits matches in completion order. Workers check
// ctx at every pair boundary, so cancellation abandons the remaining
// work promptly; outcomes already in flight still drain (their stats
// count), then the call returns ctx's error.
func (e *Engine) evalPairsStream(ctx context.Context, trees []*PreparedTree, pairs []ij, tau float64, filtered bool, emit func(Match)) (JoinStats, error) {
	eval := func(ws *workspace, k int) joinOutcome {
		f, g := trees[pairs[k].i], trees[pairs[k].j]
		if filtered {
			lb := bounds.LowerProfiled(f.profile(), g.profile())
			if cand := pairs[k].lb; cand > lb {
				lb = cand
			}
			if lb >= tau {
				return joinOutcome{dist: lb, kind: 1}
			}
			if ub := bounds.Constrained(f.t, g.t); ub < tau {
				return joinOutcome{dist: ub, kind: 2}
			}
			r := e.pairRunner(ws, f, g)
			d, ok := r.RunBounded(tau)
			if !ok {
				d = tau
			}
			gst := r.Stats()
			return joinOutcome{dist: d, subs: gst.Subproblems, pruned: gst.PrunedSubproblems,
				band: gst.BandSkippedCells, kroots: gst.PrunedKeyroots,
				crows: gst.CompressedRows, rcells: gst.RowCells}
		}
		r := e.pairRunner(ws, f, g)
		d := r.Run()
		gst := r.Stats()
		return joinOutcome{dist: d, subs: gst.Subproblems, rcells: gst.RowCells}
	}

	w := e.workers
	if w > len(pairs) {
		w = len(pairs)
	}
	if w < 1 {
		w = 1
	}
	out := make(chan streamOutcome, w)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := e.getWS()
			defer e.putWS(ws)
			for {
				if ctx.Err() != nil {
					return
				}
				k := int(next.Add(1))
				if k >= len(pairs) {
					return
				}
				select {
				case out <- streamOutcome{k: k, o: eval(ws, k)}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	var st JoinStats
	for so := range out {
		st.Comparisons++
		k, o := so.k, so.o
		switch o.kind {
		case 1:
			st.LowerPruned++
		case 2:
			st.UpperAccepted++
			emit(Match{I: pairs[k].i, J: pairs[k].j, Dist: o.dist})
		default:
			if filtered {
				st.ExactComputed++
			}
			st.Subproblems += o.subs
			st.PrunedSubproblems += o.pruned
			st.BandSkippedCells += o.band
			st.PrunedKeyroots += o.kroots
			st.CompressedRows += o.crows
			st.RowCells += o.rcells
			if o.dist < tau {
				emit(Match{I: pairs[k].i, J: pairs[k].j, Dist: o.dist})
			}
		}
	}
	return st, ctx.Err()
}

// TopKAcrossStream is TopKAcross with cancellation: the scan over data
// trees checks ctx between trees and returns ctx's error once
// cancelled, with the matches and stats of the work done so far (the
// partial matches are NOT the true top k of the full collection — a
// cancelled call is an abandoned one, not an approximate answer).
//
// Top-k results are only final once every data tree has been scanned,
// so unlike JoinStream there is nothing sound to emit early; the
// streaming transport value is in the NDJSON framing and in
// cancellation, not in early partial answers.
func (e *Engine) TopKAcrossStream(ctx context.Context, query *PreparedTree, data []*PreparedTree, k int) ([]CrossMatch, Stats, error) {
	var st Stats
	if k <= 0 || len(data) == 0 {
		return nil, st, ctx.Err()
	}
	e.check(query)
	e.check(data...)
	ws := e.getWS()
	defer e.putWS(ws)

	q := query.t.Root()
	h := &crossHeap{}
	heap.Init(h)
	for di, d := range data {
		if ctx.Err() != nil {
			return nil, st, ctx.Err()
		}
		tau := math.Inf(1)
		if h.Len() == k {
			tau = h.items[0].Dist
		}
		// Every subtree of d has at most d.Len() nodes, so every distance
		// to the query is at least |query| − |d| insertions-or-more.
		if e.unit && float64(query.Len()-d.Len()) > tau {
			continue
		}
		r := e.pairRunner(ws, query, d)
		r.SetCutoff(tau, false)
		r.Run()
		st.add(r.Stats())
		for w := 0; w < d.t.Len(); w++ {
			m := CrossMatch{Tree: di, Root: w, Dist: r.Dist(q, w)}
			if h.Len() < k {
				heap.Push(h, m)
				continue
			}
			// Saturated entries (Dist > tau ≥ heap max) can never win;
			// entries at or below the cutoff are exact and compare fairly.
			if crossLess(m, h.items[0]) {
				h.items[0] = m
				heap.Fix(h, 0)
			}
		}
	}
	out := append([]CrossMatch(nil), h.items...)
	sort.Slice(out, func(i, j int) bool { return crossLess(out[i], out[j]) })
	return out, st, ctx.Err()
}
