// Package batch is the concurrent batch tree-edit-distance engine: it
// amortizes RTED's per-tree work across the many pairs of a workload and
// runs the pairs on a worker pool whose hot path is allocation-free in
// steady state.
//
// The sequential API computes everything per pair: parsing aside, a
// single Distance call builds both trees' node indexes, decomposition
// cardinalities and cost vectors, computes the optimal strategy, and
// allocates fresh DP tables. In a similarity join or top-k workload the
// same tree participates in many pairs, so the per-tree share of that
// work is pure waste — exactly the waste RTED's design exposes, since the
// paper front-loads an O(n²) strategy computation per pair precisely to
// make the exponential-blowup-prone GTED phase minimal. The engine splits
// the work accordingly:
//
//   - Prepare (once per tree): decomposition cardinalities for the
//     optimal-strategy cost formula, the ΔR mirror-leafmost array, label
//     interning with per-node delete/insert cost vectors, and the
//     lower-bound profile (label histogram, binary-branch histogram,
//     serializations) used for pre-filtering.
//   - Per pair (hot path): assemble the pair cost form by slice sharing,
//     run OptStrategy and GTED entirely inside a per-worker Arena whose
//     buffers are reused from pair to pair.
//
// Engines are safe for concurrent use; PreparedTrees are immutable and
// shared freely across goroutines. A PreparedTree is bound to the engine
// that prepared it (label ids come from the engine's interner).
//
// Typical use:
//
//	e := batch.New(batch.WithWorkers(8))
//	ps := e.PrepareAll(trees)
//	matches, stats := e.Join(ps, 12, true)
//
// For large corpora with selective thresholds, JoinIndexed generates
// candidate pairs from an inverted index (package index) instead of
// enumerating all pairs — same match set, candidate-driven cost.
package batch

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bounds"
	"repro/internal/cost"
	"repro/internal/gted"
	"repro/internal/strategy"
	"repro/internal/tree"
)

// StrategyFunc builds the GTED decomposition strategy for one tree pair.
// The default (nil) is RTED's optimal strategy; fixed-strategy factories
// reproduce the paper's competitor algorithms.
type StrategyFunc func(f, g *tree.Tree) strategy.Strategy

// Engine is a reusable batch-TED computer. The zero value is not usable;
// construct with New.
type Engine struct {
	model    cost.Model
	unit     bool
	workers  int
	strat    StrategyFunc
	unbanded bool
	noSparse bool
	noSharp  bool

	// in assigns the label ids shared by every PreparedTree. It is
	// internally synchronized, and may be shared with other engines (a
	// corpus attaches every engine it creates to one interner, which is
	// what lets corpus-stored artifacts hydrate PreparedTrees for any of
	// them).
	in *cost.Interner
}

// Option configures New.
type Option func(*Engine)

// WithWorkers sets the number of worker goroutines batch calls may use
// (default runtime.GOMAXPROCS(0); values below 1 mean sequential).
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// WithCost sets the cost model (default unit costs). Bound-based
// filtering (DistanceBounded, filtered Join) requires the unit model.
func WithCost(m cost.Model) Option { return func(e *Engine) { e.model = m } }

// WithStrategy overrides the per-pair decomposition strategy (default:
// RTED's optimal strategy, computed from each tree's cached
// decomposition). Used to run the paper's fixed-strategy competitors
// through the same engine.
func WithStrategy(fn StrategyFunc) Option { return func(e *Engine) { e.strat = fn } }

// WithBanding toggles the structural band of bounded computations
// (default on): banded runs skip whole DP loop ranges and hopeless
// keyroot subproblems instead of testing every cell against the cutoff.
// Answers are bit-identical either way; turning it off exists for the
// `tedbench -exp band` ablation and the differential harness.
func WithBanding(on bool) Option { return func(e *Engine) { e.unbanded = !on } }

// WithSparseRows toggles band-compressed DP row storage of banded bounded
// computations (default on): keyroot rows whose admissible band is
// narrower than the row materialize only their band cells. Answers and
// pruning are bit-identical either way (gted.Runner.SetSparseRows);
// turning it off exists for the `tedbench -exp sparse` ablation and the
// differential harness.
func WithSparseRows(on bool) Option { return func(e *Engine) { e.noSparse = !on } }

// WithSharpBands toggles label-aware per-region band pricing and the
// depth-spectra keyroot band of banded bounded computations (default on).
// Answers are bit-identical either way (gted.Runner.SetSharpBands); off
// restores the globally priced band for ablation.
func WithSharpBands(on bool) Option { return func(e *Engine) { e.noSharp = !on } }

// WithInterner makes the engine assign label ids from a shared interner
// instead of a private one. Engines sharing an interner agree on label
// ids, which is the compatibility a corpus needs to hydrate one stored
// artifact set into PreparedTrees for every engine it creates
// (corpus.Corpus.Engine passes the corpus's interner here). The interner
// is internally synchronized; nil is ignored.
func WithInterner(in *cost.Interner) Option {
	return func(e *Engine) {
		if in != nil {
			e.in = in
		}
	}
}

// New builds an engine.
func New(opts ...Option) *Engine {
	e := &Engine{
		model:   cost.Unit{},
		workers: runtime.GOMAXPROCS(0),
		in:      cost.NewInterner(),
	}
	for _, o := range opts {
		o(e)
	}
	if e.workers < 1 {
		e.workers = 1
	}
	_, e.unit = e.model.(cost.Unit)
	return e
}

// Workers returns the engine's worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Interner returns the engine's label interner. Two engines with the
// same interner assign identical label ids, so prepared artifacts (and
// corpus-stored ones) are portable between them.
func (e *Engine) Interner() *cost.Interner { return e.in }

// UnitCost reports whether the engine runs the unit cost model — the
// model required by every bound-based filter (filtered and indexed
// joins, profiled lower bounds).
func (e *Engine) UnitCost() bool { return e.unit }

// FixedStrategy reports whether the engine overrides the per-pair
// decomposition strategy (WithStrategy). Such engines never consult the
// per-tree decomposition cardinalities, so hydration producers can skip
// computing or supplying them.
func (e *Engine) FixedStrategy() bool { return e.strat != nil }

// workspace is the per-worker reusable memory: a GTED arena for the DP
// tables, the OptStrategy scratch (which owns the strategy array the
// runner consumes), and the rename-cost memo of non-unit models. Exactly
// one goroutine uses a workspace at a time.
type workspace struct {
	arena *gted.Arena
	opt   strategy.OptScratch

	// memo caches rename costs by interned label-id pair. Label ids and
	// models are per-engine, so the memo records which engine's ids it
	// holds and is reset when the workspace migrates between engines.
	memo      cost.RenameMemo
	memoOwner *Engine
}

// wsPool is shared by every engine: arenas and strategy scratch are
// engine-independent (they grow to the largest pair served, whoever
// serves it), so engines created per call — common in tests and in the
// public ted.Join path, which builds a fresh engine per join — inherit
// warmed buffers instead of growing their own.
var wsPool = sync.Pool{
	New: func() any { return &workspace{arena: gted.NewArena()} },
}

func (e *Engine) getWS() *workspace {
	ws := wsPool.Get().(*workspace)
	if ws.memoOwner != e {
		ws.memo.Reset()
		ws.memoOwner = e
	}
	return ws
}

func (e *Engine) putWS(w *workspace) { wsPool.Put(w) }

// Stats reports GTED instrumentation aggregated over the exact distance
// computations of one batch call.
type Stats struct {
	// Subproblems is the number of relevant subproblems evaluated (the
	// paper's cost measure). Bounded computations count only the cells
	// they actually evaluated.
	Subproblems int64
	// PrunedSubproblems is the number of DP cells bounded computations
	// skipped because a cutoff proved them irrelevant (including the
	// size-product lower bound for keyroot subproblems skipped whole).
	PrunedSubproblems int64
	// BandSkippedCells counts cells skipped as whole loop ranges by the
	// structural band; zero with WithBanding(false), so the difference
	// attributes pruning to the band versus per-cell slack saturation.
	BandSkippedCells int64
	// PrunedKeyroots counts keyroot subproblem DPs skipped entirely by
	// the keyroot-level band.
	PrunedKeyroots int64
	// CompressedRows counts forest-distance DP rows materialized in
	// band-compressed form (WithSparseRows).
	CompressedRows int64
	// RowCells counts the DP row cells materialized across all
	// single-path-function row storage; ×8 it is the bytes of row storage
	// streamed (gted.Stats.RowCells).
	RowCells int64
	// SPFCalls counts single-path function invocations.
	SPFCalls int64
	// MaxLiveRows is the peak number of retained heavy-path DP rows in
	// any single computation.
	MaxLiveRows int
}

// Merge folds another call's instrumentation into s — the coordinator
// path of a distributed top-k, where each worker scans a disjoint slice
// of the corpus and the summed counters must equal a single-node scan's.
// Additive counters sum; MaxLiveRows takes the maximum.
func (s *Stats) Merge(o Stats) {
	s.Subproblems += o.Subproblems
	s.PrunedSubproblems += o.PrunedSubproblems
	s.BandSkippedCells += o.BandSkippedCells
	s.PrunedKeyroots += o.PrunedKeyroots
	s.CompressedRows += o.CompressedRows
	s.RowCells += o.RowCells
	s.SPFCalls += o.SPFCalls
	if o.MaxLiveRows > s.MaxLiveRows {
		s.MaxLiveRows = o.MaxLiveRows
	}
}

func (s *Stats) add(g gted.Stats) {
	s.Subproblems += g.Subproblems
	s.PrunedSubproblems += g.PrunedSubproblems
	s.BandSkippedCells += g.BandSkippedCells
	s.PrunedKeyroots += g.PrunedKeyroots
	s.CompressedRows += g.CompressedRows
	s.RowCells += g.RowCells
	s.SPFCalls += g.SPFCalls
	if g.MaxLiveRows > s.MaxLiveRows {
		s.MaxLiveRows = g.MaxLiveRows
	}
}

// pairRunner assembles the arena-backed GTED runner for one pair: pair
// cost form by slice sharing, strategy from the cached decompositions
// (or the engine's StrategyFunc), all DP memory from the workspace.
func (e *Engine) pairRunner(ws *workspace, f, g *PreparedTree) *gted.Runner {
	e.check(f, g)
	cm := cost.PairPreparedMemo(e.model, f.costs, g.costs, &ws.memo)
	var st strategy.Strategy
	if e.strat != nil {
		st = e.strat(f.t, g.t)
	} else {
		st, _ = ws.opt.Opt(f.t, g.t, f.decomp, g.decomp)
	}
	r := gted.NewInArena(f.t, g.t, cm, st, ws.arena)
	r.SetMirrorLeafmost(f.lfm, g.lfm)
	r.SetBanding(!e.unbanded)
	r.SetSparseRows(!e.noSparse)
	r.SetSharpBands(!e.noSharp)
	r.SetDepthSpectra(f.spectra, g.spectra)
	return r
}

func (e *Engine) check(ps ...*PreparedTree) {
	for _, p := range ps {
		if p.eng != e {
			panic(fmt.Sprintf(
				"batch: PreparedTree was prepared by engine %p but passed to engine %p; "+
					"label ids are per-interner, so either use the preparing engine, or give both "+
					"engines one interner (WithInterner / corpus.Corpus.Engine) and hydrate with "+
					"PrepareHydrated", p.eng, e))
		}
	}
}

// Distance computes the exact tree edit distance between two prepared
// trees on a pooled workspace. Safe for concurrent use.
func (e *Engine) Distance(f, g *PreparedTree) float64 {
	ws := e.getWS()
	defer e.putWS(ws)
	return e.pairRunner(ws, f, g).Run()
}

// DistanceBounded answers "is the distance at most tau?" cheaply: it
// returns (d, true) — d exact — iff the distance is ≤ tau, and otherwise
// (lb, false) with lb a lower bound on the distance no smaller than tau.
// Under the unit cost model the profiled lower bounds are consulted
// first, skipping the DP entirely when they already exceed tau; otherwise
// (and under any other model) GTED runs with tau threaded into its DP
// loops, skipping provably-above-cutoff cells and aborting as soon as the
// distance provably exceeds tau. Safe for concurrent use.
func (e *Engine) DistanceBounded(f, g *PreparedTree, tau float64) (float64, bool) {
	e.check(f, g)
	if math.IsNaN(tau) {
		return 0, false // no distance is ≤ NaN; 0 is a trivial lower bound
	}
	if e.unit {
		if lb := bounds.LowerProfiled(f.profile(), g.profile()); lb > tau {
			return lb, false
		}
	}
	ws := e.getWS()
	defer e.putWS(ws)
	if d, ok := e.pairRunner(ws, f, g).RunBounded(tau); ok {
		return d, true
	}
	return tau, false
}

// Pair names two prepared trees whose distance is wanted.
type Pair struct{ F, G *PreparedTree }

// Result is the outcome of one pair of a Compute or Stream call.
type Result struct {
	// Index is the pair's position in the input slice (Compute) or its
	// arrival order (Stream).
	Index int
	Dist  float64
	// Subproblems is the paper's cost measure for this pair.
	Subproblems int64
}

// Compute evaluates all pairs on the worker pool and returns one Result
// per pair, in input order.
func (e *Engine) Compute(pairs []Pair) []Result {
	out := make([]Result, len(pairs))
	e.parallel(len(pairs), func(ws *workspace, i int) {
		r := e.pairRunner(ws, pairs[i].F, pairs[i].G)
		d := r.Run()
		out[i] = Result{Index: i, Dist: d, Subproblems: r.Stats().Subproblems}
	})
	return out
}

// Stream evaluates pairs as they arrive on in, emitting one Result per
// pair (Index is the arrival order; completion order is not guaranteed).
// The returned channel closes after in is drained and all pairs finish.
//
// A consumer that stops reading early must cancel ctx (and should then
// drain the channel): cancellation releases the workers and their
// pooled arenas; otherwise they block forever on the undrained output.
func (e *Engine) Stream(ctx context.Context, in <-chan Pair) <-chan Result {
	out := make(chan Result, e.workers)
	type item struct {
		p   Pair
		idx int
	}
	items := make(chan item)
	var wg sync.WaitGroup
	for k := 0; k < e.workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := e.getWS()
			defer e.putWS(ws)
			for it := range items {
				r := e.pairRunner(ws, it.p.F, it.p.G)
				d := r.Run()
				select {
				case out <- Result{Index: it.idx, Dist: d, Subproblems: r.Stats().Subproblems}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer func() {
			close(items)
			wg.Wait()
			close(out)
		}()
		idx := 0
		for {
			select {
			case p, ok := <-in:
				if !ok {
					return
				}
				select {
				case items <- item{p, idx}:
					idx++
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// parallel runs fn for every i in [0, n) on up to e.workers goroutines,
// each owning one pooled workspace for its whole share of the work.
func (e *Engine) parallel(n int, fn func(ws *workspace, i int)) {
	w := e.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		ws := e.getWS()
		defer e.putWS(ws)
		for i := 0; i < n; i++ {
			fn(ws, i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := e.getWS()
			defer e.putWS(ws)
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(ws, i)
			}
		}()
	}
	wg.Wait()
}
