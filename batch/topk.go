package batch

import (
	"container/heap"
	"context"
	"sort"
)

// SubtreeMatch is one result of TopKSubtrees: the subtree of the data
// tree rooted at postorder id Root, at edit distance Dist from the query.
type SubtreeMatch struct {
	Root int
	Dist float64
}

// TopKSubtrees finds the k subtrees of data with the smallest edit
// distance to query. One GTED run produces the distances from the query
// to every subtree of data as a byproduct of its distance matrix; the k
// smallest are selected with a bounded heap. Ties break toward smaller
// postorder ids; results are sorted by distance. The returned Stats
// carry the run's instrumentation.
func (e *Engine) TopKSubtrees(query, data *PreparedTree, k int) ([]SubtreeMatch, Stats) {
	var st Stats
	if k <= 0 {
		return nil, st
	}
	ws := e.getWS()
	defer e.putWS(ws)
	r := e.pairRunner(ws, query, data)
	r.Run()
	st.add(r.Stats())

	// All matrix reads happen before the workspace returns to the pool:
	// the matrix memory is arena-owned and reused by the next pair.
	q := query.t.Root()
	h := &matchHeap{}
	heap.Init(h)
	for w := 0; w < data.t.Len(); w++ {
		m := SubtreeMatch{Root: w, Dist: r.Dist(q, w)}
		if h.Len() < k {
			heap.Push(h, m)
			continue
		}
		if worse(h.items[0], m) {
			h.items[0] = m
			heap.Fix(h, 0)
		}
	}
	out := append([]SubtreeMatch(nil), h.items...)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out, st
}

// CrossMatch is one result of TopKAcross: the subtree rooted at postorder
// id Root of the data tree at index Tree, at edit distance Dist from the
// query.
type CrossMatch struct {
	Tree int
	Root int
	Dist float64
}

func crossLess(a, b CrossMatch) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	if a.Tree != b.Tree {
		return a.Tree < b.Tree
	}
	return a.Root < b.Root
}

// TopKAcross finds the k subtrees closest to the query across a whole
// collection of data trees. Data trees are processed in order, and the
// cutoff of each GTED run is the current k-th best distance: once the
// result heap is full, DP cells that provably cannot beat it are skipped
// and saturated (gted.SetCutoff), so the per-tree cost shrinks as the
// results improve — the bounded-TED analogue of TASM's pruning. The
// result is identical to running TopKSubtrees per tree and merging: ties
// break toward smaller (Tree, Root); results are sorted by distance.
//
// Under the unit cost model a data tree whose size alone puts every one
// of its subtrees beyond the current k-th best is skipped without running
// any DP.
func (e *Engine) TopKAcross(query *PreparedTree, data []*PreparedTree, k int) ([]CrossMatch, Stats) {
	ms, st, _ := e.TopKAcrossStream(context.Background(), query, data, k)
	return ms, st
}

// crossHeap is a max-heap on (Dist, Tree, Root) so the worst kept match
// is evicted first.
type crossHeap struct{ items []CrossMatch }

func (h *crossHeap) Len() int           { return len(h.items) }
func (h *crossHeap) Less(i, j int) bool { return crossLess(h.items[j], h.items[i]) }
func (h *crossHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *crossHeap) Push(x any)         { h.items = append(h.items, x.(CrossMatch)) }
func (h *crossHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

func less(a, b SubtreeMatch) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Root < b.Root
}

// worse reports whether a is worse (larger) than b in the top-k order.
func worse(a, b SubtreeMatch) bool { return less(b, a) }

// matchHeap is a max-heap on (Dist, Root) so the worst kept match sits
// at the top and is evicted first.
type matchHeap struct{ items []SubtreeMatch }

func (h *matchHeap) Len() int           { return len(h.items) }
func (h *matchHeap) Less(i, j int) bool { return less(h.items[j], h.items[i]) }
func (h *matchHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *matchHeap) Push(x any)         { h.items = append(h.items, x.(SubtreeMatch)) }
func (h *matchHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
