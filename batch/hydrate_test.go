package batch_test

import (
	"math/rand"
	"strings"
	"testing"

	ted "repro"
	"repro/batch"
	"repro/gen"
)

// TestPrepareHydratedEquivalence: a PreparedTree hydrated from another
// engine's artifacts (shared interner) computes identical distances —
// exact, bounded and joined — to a cold Prepare.
func TestPrepareHydratedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var trees []*ted.Tree
	for i := 0; i < 8; i++ {
		trees = append(trees, gen.Random(rng.Int63(), gen.RandomSpec{
			Size: 5 + rng.Intn(25), MaxDepth: 7, MaxFanout: 4, Labels: 4,
		}))
	}
	// The corpus package is the real hydration producer; here the
	// artifacts come straight from a sibling engine's interner so the
	// batch-layer contract is pinned without the corpus in the loop.
	cold := batch.New()
	in := cold.Interner()
	warm := batch.New(batch.WithInterner(in))

	coldPs := cold.PrepareAll(trees)
	warmPs := make([]*batch.PreparedTree, len(trees))
	for i, tr := range trees {
		ids := make([]int32, tr.Len())
		for v := 0; v < tr.Len(); v++ {
			ids[v] = int32(in.Intern(tr.Label(v))) // already interned by cold
		}
		warmPs[i] = warm.PrepareHydrated(tr, batch.Hydration{In: in, IDs: ids})
	}
	for i := 0; i < len(trees); i++ {
		for j := i + 1; j < len(trees); j++ {
			dc := cold.Distance(coldPs[i], coldPs[j])
			dw := warm.Distance(warmPs[i], warmPs[j])
			if dc != dw {
				t.Fatalf("pair (%d,%d): hydrated distance %v, cold %v", i, j, dw, dc)
			}
			bc, okc := cold.DistanceBounded(coldPs[i], coldPs[j], dc)
			bw, okw := warm.DistanceBounded(warmPs[i], warmPs[j], dc)
			if okc != okw || bc != bw {
				t.Fatalf("pair (%d,%d): bounded (%v,%v) vs (%v,%v)", i, j, bw, okw, bc, okc)
			}
		}
	}
	mc, _ := cold.Join(coldPs, 10, true)
	mw, _ := warm.Join(warmPs, 10, true)
	if len(mc) != len(mw) {
		t.Fatalf("join: %d vs %d matches", len(mw), len(mc))
	}
	for k := range mc {
		if mc[k] != mw[k] {
			t.Fatalf("join match %d: %+v vs %+v", k, mw[k], mc[k])
		}
	}
}

// TestEngineMixingPanicNamesBoth pins the upgraded contract message: the
// panic identifies both engines and points at the hydration path.
func TestEngineMixingPanicNamesBoth(t *testing.T) {
	e1, e2 := batch.New(), batch.New()
	p := e1.Prepare(ted.MustParse("{a{b}}"))
	q := e2.Prepare(ted.MustParse("{a{c}}"))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mixing engines did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		if !strings.Contains(msg, "engine") || strings.Count(msg, "0x") < 2 {
			t.Fatalf("panic does not name both engines: %q", msg)
		}
		if !strings.Contains(msg, "PrepareHydrated") {
			t.Fatalf("panic does not document the hydration path: %q", msg)
		}
	}()
	e1.Distance(p, q)
}

// TestHydrationWrongInternerPanics: artifacts from a foreign interner
// must be rejected, not silently mis-labeled.
func TestHydrationWrongInternerPanics(t *testing.T) {
	e := batch.New()
	foreign := batch.New()
	tr := ted.MustParse("{a{b}}")
	defer func() {
		if recover() == nil {
			t.Fatal("foreign-interner hydration did not panic")
		}
	}()
	e.PrepareHydrated(tr, batch.Hydration{In: foreign.Interner(), IDs: []int32{0, 1}})
}
