package batch_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/batch"
	"repro/gen"
)

func streamFixture(t *testing.T, n, size int) (*batch.Engine, []*batch.PreparedTree) {
	t.Helper()
	e := batch.New(batch.WithWorkers(4))
	ps := make([]*batch.PreparedTree, n)
	for i := range ps {
		base := gen.Random(int64(40+i), gen.RandomSpec{Size: size, MaxDepth: 6, MaxFanout: 4, Labels: 8})
		ps[i] = e.Prepare(base)
	}
	return e, ps
}

func matchKey(m batch.Match) string { return fmt.Sprintf("%d|%d|%.9f", m.I, m.J, m.Dist) }

// sortedKeys reduces a match set to a canonical multiset representation:
// streaming emits in completion order, so only the multiset is pinned.
func sortedKeys(ms []batch.Match) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = matchKey(m)
	}
	sort.Strings(keys)
	return keys
}

// TestJoinStreamMatchesJoin pins the streaming contract: run to
// completion, JoinStream emits exactly the buffered Join's match
// multiset, and the aggregate stats agree on everything order-free.
func TestJoinStreamMatchesJoin(t *testing.T) {
	e, ps := streamFixture(t, 12, 18)
	for _, tau := range []float64{2, 6, 12} {
		want, wantSt := e.Join(ps, tau, true)
		var got []batch.Match
		gotSt, err := e.JoinStream(context.Background(), ps, tau, true, func(m batch.Match) {
			got = append(got, m)
		})
		if err != nil {
			t.Fatalf("tau %g: JoinStream: %v", tau, err)
		}
		w, g := sortedKeys(want), sortedKeys(got)
		if len(w) != len(g) {
			t.Fatalf("tau %g: stream emitted %d matches, buffered %d", tau, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("tau %g: match multiset diverges at %d: %s vs %s", tau, i, g[i], w[i])
			}
		}
		if gotSt.Comparisons != wantSt.Comparisons ||
			gotSt.LowerPruned != wantSt.LowerPruned ||
			gotSt.UpperAccepted != wantSt.UpperAccepted ||
			gotSt.ExactComputed != wantSt.ExactComputed ||
			gotSt.Subproblems != wantSt.Subproblems {
			t.Fatalf("tau %g: stream stats %+v diverge from buffered %+v", tau, gotSt, wantSt)
		}
	}
}

// TestJoinIndexedStreamMatchesJoinIndexed: the indexed streaming path
// (candidate generation + streaming pipeline) emits the same multiset
// as the buffered indexed join, per mode.
func TestJoinIndexedStreamMatchesJoinIndexed(t *testing.T) {
	e, ps := streamFixture(t, 10, 16)
	for _, mode := range []batch.IndexMode{batch.IndexAuto, batch.IndexEnumerate, batch.IndexHistogram, batch.IndexPQGram} {
		opts := batch.JoinOptions{Mode: mode}
		want, _ := e.JoinIndexed(ps, 5, opts)
		var got []batch.Match
		if _, err := e.JoinIndexedStream(context.Background(), ps, 5, opts, func(m batch.Match) {
			got = append(got, m)
		}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		w, g := sortedKeys(want), sortedKeys(got)
		if fmt.Sprint(w) != fmt.Sprint(g) {
			t.Fatalf("mode %v: stream %v, buffered %v", mode, g, w)
		}
	}
}

// TestJoinStreamCancel pins the early-exit contract: cancelling the
// context on the first emitted match stops the engine — the call
// returns ctx's error and the remaining pairs are abandoned, visible as
// an evaluated-pair count well below the planned all-pairs count.
func TestJoinStreamCancel(t *testing.T) {
	e, ps := streamFixture(t, 40, 24)
	total := len(ps) * (len(ps) - 1) / 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	st, err := e.JoinStream(ctx, ps, 1e9, false, func(batch.Match) {
		emitted++
		cancel()
	})
	if err != context.Canceled {
		t.Fatalf("cancelled stream returned %v, want context.Canceled", err)
	}
	if emitted == 0 {
		t.Fatal("cancel hook never ran")
	}
	if st.Comparisons >= total {
		t.Fatalf("cancelled stream still evaluated all %d pairs", total)
	}
}

// TestTopKAcrossStreamMatchesTopKAcross: the ctx-aware scan returns the
// exact TopKAcross answer when not cancelled, and aborts with partial
// stats when cancelled up front.
func TestTopKAcrossStreamMatchesTopKAcross(t *testing.T) {
	e, ps := streamFixture(t, 8, 14)
	q := ps[0]
	want, wantSt := e.TopKAcross(q, ps[1:], 5)
	got, gotSt, err := e.TopKAcrossStream(context.Background(), q, ps[1:], 5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("stream %v, buffered %v", got, want)
	}
	if gotSt != wantSt {
		t.Fatalf("stream stats %+v, buffered %+v", gotSt, wantSt)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms, st, err := e.TopKAcrossStream(ctx, q, ps[1:], 5)
	if err != context.Canceled {
		t.Fatalf("pre-cancelled scan returned %v, want context.Canceled", err)
	}
	if len(ms) != 0 || st.Subproblems != 0 {
		t.Fatalf("pre-cancelled scan did work: %d matches, %d subproblems", len(ms), st.Subproblems)
	}
}
