package batch_test

import (
	"math"
	"math/rand"
	"testing"

	ted "repro"
	"repro/batch"
	"repro/gen"
)

// joinCorpus mixes the paper's synthetic shapes with random trees over a
// small alphabet, so every threshold regime (no matches, few, all) is
// reachable.
func joinCorpus(seed int64, n, size int) []*ted.Tree {
	rng := rand.New(rand.NewSource(seed))
	out := []*ted.Tree{
		gen.LeftBranch(size),
		gen.RightBranch(size),
		gen.FullBinary(size),
		gen.ZigZag(size),
		gen.Mixed(size),
	}
	for len(out) < n {
		out = append(out, gen.Random(rng.Int63(), gen.RandomSpec{
			Size: 1 + rng.Intn(size), MaxDepth: 8, MaxFanout: 5, Labels: 3,
		}))
	}
	return out
}

// TestJoinIndexedEquivalence is the acceptance property test: for random
// corpora of the gen package's shapes, JoinIndexed must return exactly
// the match set of the enumerate+filter join — same pairs, same reported
// distances — in every mode and at every threshold, including the
// degenerate 0 and +Inf.
func TestJoinIndexedEquivalence(t *testing.T) {
	modes := []batch.IndexMode{
		batch.IndexAuto, batch.IndexEnumerate, batch.IndexHistogram, batch.IndexPQGram,
	}
	for seed := int64(1); seed <= 3; seed++ {
		trees := joinCorpus(seed, 12+2*int(seed), 25)
		e := batch.New(batch.WithWorkers(4))
		ps := e.PrepareAll(trees)
		for _, tau := range []float64{0, 1, 3.5, 8, 20, 60, math.Inf(1)} {
			want, wst := e.Join(ps, tau, true)
			for _, mode := range modes {
				got, gst := e.JoinIndexed(ps, tau, batch.JoinOptions{Mode: mode})
				if len(got) != len(want) {
					t.Fatalf("seed=%d tau=%v mode=%v: %d matches, enumerate+filter %d",
						seed, tau, mode, len(got), len(want))
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("seed=%d tau=%v mode=%v: match %d = %+v, want %+v",
							seed, tau, mode, k, got[k], want[k])
					}
				}
				if gst.Comparisons > wst.Comparisons {
					t.Fatalf("seed=%d tau=%v mode=%v: generated %d candidates, more than the %d enumerated pairs",
						seed, tau, mode, gst.Comparisons, wst.Comparisons)
				}
				if gst.LowerPruned+gst.UpperAccepted+gst.ExactComputed != gst.Comparisons {
					t.Fatalf("seed=%d tau=%v mode=%v: accounting %+v does not cover the candidates",
						seed, tau, mode, gst)
				}
				if mode == batch.IndexAuto && math.IsInf(tau, 1) && gst.Mode != batch.IndexEnumerate {
					t.Fatalf("auto mode at tau=+Inf resolved to %v, want enumerate", gst.Mode)
				}
			}
		}
	}
}

// TestJoinIndexedPrunes pins the point of the tentpole: on a corpus with
// diverse labels and a selective threshold, the histogram index must
// visit strictly fewer pairs than enumeration, and the pq-gram index must
// generate at most as many pairs as there are.
func TestJoinIndexedPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var trees []*ted.Tree
	for i := 0; i < 24; i++ {
		trees = append(trees, gen.Random(rng.Int63(), gen.RandomSpec{
			Size: 20 + rng.Intn(20), MaxDepth: 8, MaxFanout: 5, Labels: 40,
		}))
	}
	e := batch.New()
	ps := e.PrepareAll(trees)
	tau := 6.0
	_, est := e.Join(ps, tau, true)
	for _, mode := range []batch.IndexMode{batch.IndexHistogram, batch.IndexPQGram, batch.IndexAuto} {
		_, st := e.JoinIndexed(ps, tau, batch.JoinOptions{Mode: mode})
		if st.Comparisons >= est.Comparisons {
			t.Fatalf("mode %v generated %d candidates; enumeration visits %d — the index pruned nothing",
				mode, st.Comparisons, est.Comparisons)
		}
		if st.Mode == batch.IndexAuto {
			t.Fatalf("mode %v: stats report unresolved mode %v", mode, st.Mode)
		}
	}
}

// TestJoinBoundedMatchSetsUnchanged is the bounded-mode property test:
// filtered joins (which seed GTED with the threshold as a cutoff) and
// indexed joins (whose candidates additionally carry index lower bounds)
// must report exactly the match set of the plain exhaustive join, while
// never evaluating more DP cells — and, once the threshold leaves an
// undecided middle, strictly fewer. Runs on a parallel engine so the
// per-pair cutoffs are exercised race-clean.
func TestJoinBoundedMatchSetsUnchanged(t *testing.T) {
	for seed := int64(21); seed <= 23; seed++ {
		trees := joinCorpus(seed, 14, 30)
		e := batch.New(batch.WithWorkers(4))
		ps := e.PrepareAll(trees)
		var prunedSomewhere bool
		for _, tau := range []float64{2, 5, 12, 40, math.Inf(1)} {
			plain, pst := e.Join(ps, tau, false)
			filt, fst := e.Join(ps, tau, true)
			if len(plain) != len(filt) {
				t.Fatalf("seed=%d tau=%v: bounded join found %d matches, plain %d",
					seed, tau, len(filt), len(plain))
			}
			for k := range plain {
				if plain[k].I != filt[k].I || plain[k].J != filt[k].J {
					t.Fatalf("seed=%d tau=%v: match %d differs: %+v vs %+v",
						seed, tau, k, plain[k], filt[k])
				}
			}
			if fst.Subproblems > pst.Subproblems {
				t.Fatalf("seed=%d tau=%v: bounded join evaluated %d subproblems, plain %d",
					seed, tau, fst.Subproblems, pst.Subproblems)
			}
			if fst.PrunedSubproblems > 0 {
				prunedSomewhere = true
			}
			ims, _ := e.JoinIndexed(ps, tau, batch.JoinOptions{})
			if len(ims) != len(filt) {
				t.Fatalf("seed=%d tau=%v: indexed bounded join found %d matches, want %d",
					seed, tau, len(ims), len(filt))
			}
			for k := range filt {
				if ims[k] != filt[k] {
					t.Fatalf("seed=%d tau=%v: indexed match %d = %+v, want %+v",
						seed, tau, k, ims[k], filt[k])
				}
			}
		}
		if !prunedSomewhere {
			t.Fatalf("seed=%d: no threshold ever engaged the DP cutoff", seed)
		}
	}
}

// TestJoinIndexedPanicsNonUnit pins the cost-model requirement.
func TestJoinIndexedPanicsNonUnit(t *testing.T) {
	e := batch.New(batch.WithCost(ted.WeightedCost(2, 2, 1)))
	ps := e.PrepareAll([]*ted.Tree{ted.MustParse("{a}"), ted.MustParse("{b}")})
	defer func() {
		if recover() == nil {
			t.Fatal("JoinIndexed under a non-unit model did not panic")
		}
	}()
	e.JoinIndexed(ps, 3, batch.JoinOptions{})
}
