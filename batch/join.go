package batch

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/index"
	"repro/internal/bounds"
)

// Match is one similarity-join result: trees at indices I and J of the
// input collection (I < J) with edit distance below the threshold. For a
// pair accepted by the upper-bound filter, Dist is the constrained upper
// bound (≥ the true distance, still below the threshold).
type Match struct {
	I, J int
	Dist float64
}

// IndexMode selects how JoinIndexed generates candidate pairs.
type IndexMode int

const (
	// IndexAuto picks for the workload: full enumeration when the
	// threshold is so large that an index could not prune (tau reaches
	// the largest tree size), the histogram index otherwise.
	IndexAuto IndexMode = iota
	// IndexEnumerate disables candidate generation: all pairs are
	// visited and the bound filters do every rejection (the behavior of
	// the filtered Join).
	IndexEnumerate
	// IndexHistogram generates candidates from the label-histogram
	// inverted index (index.Histogram): only pairs whose label-multiset
	// lower bound stays below tau are visited.
	IndexHistogram
	// IndexPQGram generates candidates from the (1,q)-gram inverted
	// index (index.PQGram): only pairs sharing structure — at least one
	// pq-gram, or the provably-required small-tree fringe — are visited.
	// (The index also scores candidates by pq-gram distance; a batch
	// join evaluates every candidate anyway, so the ranking is exposed
	// on index.PQGram for order-sensitive workloads, not used here.)
	IndexPQGram
)

func (m IndexMode) String() string {
	switch m {
	case IndexAuto:
		return "auto"
	case IndexEnumerate:
		return "enumerate"
	case IndexHistogram:
		return "histogram"
	case IndexPQGram:
		return "pqgram"
	}
	return fmt.Sprintf("IndexMode(%d)", int(m))
}

// JoinOptions configures JoinIndexed.
type JoinOptions struct {
	// Mode selects the candidate generator (default IndexAuto).
	Mode IndexMode
	// Q is the pq-gram base length for IndexPQGram (default 2). The
	// index always uses stems of length p = 1, the only parameterization
	// whose candidate generation is provably complete (see package
	// index); the stem-structure sensitivity of larger p is available
	// through index.PQGram directly, for workloads that tolerate
	// approximate joins.
	Q int
}

// JoinStats reports the cost and filter accounting of one Join or
// JoinIndexed call.
type JoinStats struct {
	// Comparisons is the number of candidate pairs considered: all
	// unordered pairs for enumerating joins, the generated candidates
	// for indexed joins.
	Comparisons int
	// Subproblems totals the paper's cost measure over the exact
	// distance computations.
	Subproblems int64
	// Filter accounting (filtered joins only): pairs rejected because a
	// lower bound reached the threshold, accepted because the
	// constrained upper bound stayed below it, and resolved exactly.
	LowerPruned   int
	UpperAccepted int
	ExactComputed int
	// PrunedSubproblems counts the DP cells the cutoff-seeded exact stage
	// skipped (filtered joins thread tau into GTED as a cutoff),
	// including the size-product lower bound for keyroot subproblems the
	// band refused wholesale.
	PrunedSubproblems int64
	// BandSkippedCells counts cells the structural band skipped as whole
	// loop ranges; zero for engines built WithBanding(false), so a
	// banded/unbanded pair of runs attributes the pruning.
	BandSkippedCells int64
	// PrunedKeyroots counts keyroot subproblem DPs the keyroot-level
	// band skipped entirely during the exact stage.
	PrunedKeyroots int64
	// CompressedRows counts DP rows the exact stage materialized in
	// band-compressed form, and RowCells the row cells materialized in
	// total (×8 = bytes of row storage streamed); see gted.Stats.
	CompressedRows int64
	RowCells       int64
	Elapsed        time.Duration

	// Indexed joins only: the candidate generator that actually ran
	// (IndexAuto resolves before running) and the time spent building
	// and probing the index.
	Mode      IndexMode
	IndexTime time.Duration
}

// Merge folds another call's accounting into s — the coordinator path
// of a distributed join, where each worker evaluates a disjoint range
// of the pair space and the summed counters must equal a single-node
// run's (so /v1/stats stays truthful about work actually done). Every
// additive counter sums; Elapsed and IndexTime take the maximum (the
// ranges run concurrently, so wall-clock is the slowest worker, and the
// caller typically overwrites Elapsed with its own measured wall time);
// Mode keeps s's value unless unset.
func (s *JoinStats) Merge(o JoinStats) {
	s.Comparisons += o.Comparisons
	s.Subproblems += o.Subproblems
	s.LowerPruned += o.LowerPruned
	s.UpperAccepted += o.UpperAccepted
	s.ExactComputed += o.ExactComputed
	s.PrunedSubproblems += o.PrunedSubproblems
	s.BandSkippedCells += o.BandSkippedCells
	s.PrunedKeyroots += o.PrunedKeyroots
	s.CompressedRows += o.CompressedRows
	s.RowCells += o.RowCells
	if o.Elapsed > s.Elapsed {
		s.Elapsed = o.Elapsed
	}
	if o.IndexTime > s.IndexTime {
		s.IndexTime = o.IndexTime
	}
	if s.Mode == IndexAuto && o.Mode != IndexAuto {
		s.Mode = o.Mode
	}
}

// joinOutcome is the per-pair record a worker writes; aggregation
// happens sequentially afterwards so the output is deterministic.
type joinOutcome struct {
	dist   float64
	subs   int64
	pruned int64
	band   int64
	kroots int64
	crows  int64
	rcells int64
	kind   uint8 // 0 exact, 1 lower-pruned, 2 upper-accepted
}

// ij names one candidate pair by collection indices, i < j. lb carries
// the candidate's index lower bound (zero for enumerated pairs), folded
// into the filter pipeline.
type ij struct {
	i, j int
	lb   float64
}

// Join computes the similarity self-join of the collection: all pairs
// with edit distance below tau. Pairs are evaluated on the worker pool;
// the result is deterministic and ordered by (I, J).
//
// With filtered set, each pair first runs the lower-bound pipeline (a
// pair whose lower bound reaches tau cannot match) and the constrained
// upper bound (a pair whose upper bound stays below tau must match, and
// is reported with that bound as its distance); only the undecided
// middle runs the exact algorithm. The match set is identical to the
// unfiltered join's. Filtering requires the unit cost model.
//
// Join visits every pair. For large corpora with selective thresholds,
// JoinIndexed generates candidate pairs from an inverted index instead.
func (e *Engine) Join(trees []*PreparedTree, tau float64, filtered bool) ([]Match, JoinStats) {
	e.check(trees...)
	if filtered && !e.unit {
		panic("batch: filtered Join requires the unit cost model")
	}
	start := time.Now()
	n := len(trees)
	pairs := make([]ij, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, ij{i: i, j: j})
		}
	}
	ms, st := e.evalPairs(trees, pairs, tau, filtered)
	st.Mode = IndexEnumerate
	st.Elapsed = time.Since(start)
	return ms, st
}

// JoinIndexed computes the same similarity self-join as the filtered
// Join — the match set is provably identical — but generates candidate
// pairs from an inverted index over the corpus instead of enumerating
// all O(n²) pairs. Candidates then flow through the existing pipeline:
// the index's own lower bound has already pruned them once, the profiled
// lower bounds and the constrained upper bound decide most of the rest,
// and only the undecided middle runs exact GTED on the worker pool.
//
// JoinIndexed requires the unit cost model (the model of every published
// bound). Results are deterministic and ordered by (I, J).
func (e *Engine) JoinIndexed(trees []*PreparedTree, tau float64, opts JoinOptions) ([]Match, JoinStats) {
	e.check(trees...)
	if !e.unit {
		panic("batch: JoinIndexed requires the unit cost model")
	}
	mode := opts.Mode
	if mode == IndexAuto {
		if indexablePrunes(trees, tau) {
			mode = IndexHistogram
		} else {
			mode = IndexEnumerate
		}
	}
	if mode == IndexEnumerate {
		ms, st := e.Join(trees, tau, true)
		st.Mode = IndexEnumerate
		return ms, st
	}

	start := time.Now()
	pairs, indexTime := generate(trees, tau, mode, opts)
	ms, st := e.evalPairs(trees, pairs, tau, true)
	st.Mode = mode
	st.IndexTime = indexTime
	st.Elapsed = time.Since(start)
	return ms, st
}

// CandidatePair names one externally generated candidate pair by
// collection indices (I < J), with LB a valid lower bound on the pair's
// distance (0 when unknown). It is the currency of JoinCandidates.
type CandidatePair struct {
	I, J int
	LB   float64
}

// JoinCandidates runs the filtered join pipeline over candidate pairs
// the caller generated — a corpus probing its own persistent sharded
// indexes, or a distributed driver that owns a shard of the pair space —
// instead of pairs this engine enumerated or indexed itself. Candidates
// flow through the same filters as JoinIndexed (the carried LB, the
// profiled lower bounds, the constrained upper bound, cutoff-seeded
// exact GTED), so the matches among the candidates are exactly the
// candidates at distance < tau. Requires the unit cost model. Results
// are deterministic and ordered by (I, J).
func (e *Engine) JoinCandidates(trees []*PreparedTree, cands []CandidatePair, tau float64) ([]Match, JoinStats) {
	e.check(trees...)
	if !e.unit {
		panic("batch: JoinCandidates requires the unit cost model")
	}
	start := time.Now()
	pairs := make([]ij, len(cands))
	for k, c := range cands {
		i, j := c.I, c.J
		if i > j {
			i, j = j, i
		}
		if i < 0 || j >= len(trees) || i == j {
			panic(fmt.Sprintf("batch: candidate pair (%d, %d) outside the %d-tree collection", c.I, c.J, len(trees)))
		}
		pairs[k] = ij{i: i, j: j, lb: c.LB}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	ms, st := e.evalPairs(trees, pairs, tau, true)
	st.Mode = IndexEnumerate
	st.Elapsed = time.Since(start)
	return ms, st
}

// indexablePrunes reports whether an index can reject anything at this
// threshold: once tau reaches the largest tree size, even the strongest
// signature bound (max of the sizes) stays below tau for every pair, so
// generation would reproduce full enumeration with extra steps.
func indexablePrunes(trees []*PreparedTree, tau float64) bool {
	if math.IsInf(tau, 1) {
		return false
	}
	maxLen := 0
	for _, t := range trees {
		if t.Len() > maxLen {
			maxLen = t.Len()
		}
	}
	return tau < float64(maxLen)
}

// generate builds the selected index over the corpus and probes it once
// per tree, producing the candidate pairs in (I, J) order.
func generate(trees []*PreparedTree, tau float64, mode IndexMode, opts JoinOptions) ([]ij, time.Duration) {
	start := time.Now()
	var probe func(q int, buf []index.Candidate) []index.Candidate
	switch mode {
	case IndexHistogram:
		ix := index.NewHistogram()
		for _, t := range trees {
			ix.Add(t.Tree())
		}
		probe = func(q int, buf []index.Candidate) []index.Candidate {
			return ix.CandidatesBelow(q, tau, buf)
		}
	case IndexPQGram:
		q := opts.Q
		if q <= 0 {
			q = 2
		}
		ix := index.NewPQGram(1, q)
		for _, t := range trees {
			ix.Add(t.Tree())
		}
		probe = func(q int, buf []index.Candidate) []index.Candidate {
			return ix.CandidatesBelow(q, tau, buf)
		}
	default:
		panic(fmt.Sprintf("batch: cannot generate candidates for mode %v", mode))
	}
	var pairs []ij
	var buf []index.Candidate
	for j := 1; j < len(trees); j++ {
		buf = probe(j, buf)
		for _, c := range buf {
			pairs = append(pairs, ij{i: c.ID, j: j, lb: c.LB})
		}
	}
	// Probing yields (J, I)-major order; the join contract is (I, J).
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	return pairs, time.Since(start)
}

// evalPairs runs the per-pair join pipeline — bound filters when
// filtered, exact GTED otherwise or for the undecided middle — over the
// worker pool and aggregates the outcomes deterministically.
//
// Filtered joins seed the exact stage with the threshold: GTED runs with
// cutoff tau threaded into its DP loops, so a pair whose distance
// provably reaches tau abandons most of its DP instead of finishing it.
// The match set is provably unchanged — a pair with distance < tau
// always completes exactly, and any pair the cutoff abandons could not
// have matched.
func (e *Engine) evalPairs(trees []*PreparedTree, pairs []ij, tau float64, filtered bool) ([]Match, JoinStats) {
	outcomes := make([]joinOutcome, len(pairs))
	e.parallel(len(pairs), func(ws *workspace, k int) {
		f, g := trees[pairs[k].i], trees[pairs[k].j]
		if filtered {
			lb := bounds.LowerProfiled(f.profile(), g.profile())
			if cand := pairs[k].lb; cand > lb {
				lb = cand // index candidates carry their own lower bound
			}
			if lb >= tau {
				outcomes[k] = joinOutcome{dist: lb, kind: 1}
				return
			}
			if ub := bounds.Constrained(f.t, g.t); ub < tau {
				outcomes[k] = joinOutcome{dist: ub, kind: 2}
				return
			}
			r := e.pairRunner(ws, f, g)
			d, ok := r.RunBounded(tau)
			if !ok {
				d = tau // below-threshold match impossible; tau is a valid floor
			}
			gst := r.Stats()
			outcomes[k] = joinOutcome{dist: d, subs: gst.Subproblems, pruned: gst.PrunedSubproblems,
				band: gst.BandSkippedCells, kroots: gst.PrunedKeyroots,
				crows: gst.CompressedRows, rcells: gst.RowCells}
			return
		}
		r := e.pairRunner(ws, f, g)
		d := r.Run()
		gst := r.Stats()
		outcomes[k] = joinOutcome{dist: d, subs: gst.Subproblems, rcells: gst.RowCells}
	})

	var ms []Match
	st := JoinStats{Comparisons: len(pairs)}
	for k, o := range outcomes {
		switch o.kind {
		case 1:
			st.LowerPruned++
		case 2:
			st.UpperAccepted++
			ms = append(ms, Match{I: pairs[k].i, J: pairs[k].j, Dist: o.dist})
		default:
			if filtered {
				st.ExactComputed++
			}
			st.Subproblems += o.subs
			st.PrunedSubproblems += o.pruned
			st.BandSkippedCells += o.band
			st.PrunedKeyroots += o.kroots
			st.CompressedRows += o.crows
			st.RowCells += o.rcells
			if o.dist < tau {
				ms = append(ms, Match{I: pairs[k].i, J: pairs[k].j, Dist: o.dist})
			}
		}
	}
	return ms, st
}
