package batch

import (
	"time"

	"repro/internal/bounds"
)

// Match is one similarity-join result: trees at indices I and J of the
// input collection (I < J) with edit distance below the threshold. For a
// pair accepted by the upper-bound filter, Dist is the constrained upper
// bound (≥ the true distance, still below the threshold).
type Match struct {
	I, J int
	Dist float64
}

// JoinStats reports the cost and filter accounting of one Join call.
type JoinStats struct {
	// Comparisons is the number of candidate pairs considered (all
	// unordered pairs of the collection).
	Comparisons int
	// Subproblems totals the paper's cost measure over the exact
	// distance computations.
	Subproblems int64
	// Filter accounting (filtered joins only): pairs rejected because a
	// lower bound reached the threshold, accepted because the
	// constrained upper bound stayed below it, and resolved exactly.
	LowerPruned   int
	UpperAccepted int
	ExactComputed int
	Elapsed       time.Duration
}

// joinOutcome is the per-pair record a worker writes; aggregation
// happens sequentially afterwards so the output is deterministic.
type joinOutcome struct {
	dist float64
	subs int64
	kind uint8 // 0 exact, 1 lower-pruned, 2 upper-accepted
}

// Join computes the similarity self-join of the collection: all pairs
// with edit distance below tau. Pairs are evaluated on the worker pool;
// the result is deterministic and ordered by (I, J).
//
// With filtered set, each pair first runs the lower-bound pipeline (a
// pair whose lower bound reaches tau cannot match) and the constrained
// upper bound (a pair whose upper bound stays below tau must match, and
// is reported with that bound as its distance); only the undecided
// middle runs the exact algorithm. The match set is identical to the
// unfiltered join's. Filtering requires the unit cost model.
func (e *Engine) Join(trees []*PreparedTree, tau float64, filtered bool) ([]Match, JoinStats) {
	e.check(trees...)
	if filtered && !e.unit {
		panic("batch: filtered Join requires the unit cost model")
	}
	start := time.Now()
	n := len(trees)
	type ij struct{ i, j int }
	pairs := make([]ij, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, ij{i, j})
		}
	}
	outcomes := make([]joinOutcome, len(pairs))
	e.parallel(len(pairs), func(ws *workspace, k int) {
		f, g := trees[pairs[k].i], trees[pairs[k].j]
		if filtered {
			if lb := bounds.LowerProfiled(f.profile(), g.profile()); lb >= tau {
				outcomes[k] = joinOutcome{dist: lb, kind: 1}
				return
			}
			if ub := bounds.Constrained(f.t, g.t); ub < tau {
				outcomes[k] = joinOutcome{dist: ub, kind: 2}
				return
			}
		}
		r := e.pairRunner(ws, f, g)
		d := r.Run()
		outcomes[k] = joinOutcome{dist: d, subs: r.Stats().Subproblems}
	})

	var ms []Match
	st := JoinStats{Comparisons: len(pairs)}
	for k, o := range outcomes {
		switch o.kind {
		case 1:
			st.LowerPruned++
		case 2:
			st.UpperAccepted++
			ms = append(ms, Match{I: pairs[k].i, J: pairs[k].j, Dist: o.dist})
		default:
			if filtered {
				st.ExactComputed++
			}
			st.Subproblems += o.subs
			if o.dist < tau {
				ms = append(ms, Match{I: pairs[k].i, J: pairs[k].j, Dist: o.dist})
			}
		}
	}
	st.Elapsed = time.Since(start)
	return ms, st
}
