//go:build !race

package batch_test

// raceEnabled reports whether the race detector is active; the
// steady-state allocation bound is only meaningful without it (the race
// runtime allocates shadow state on the measured path).
const raceEnabled = false
