package batch_test

import (
	"fmt"

	ted "repro"
	"repro/batch"
)

// Prepare each tree once, then compare freely: the engine caches the
// per-tree work and reuses per-worker arenas across pairs.
func ExampleEngine() {
	e := batch.New(batch.WithWorkers(2))
	f := e.Prepare(ted.MustParse("{a{b}{c}}"))
	g := e.Prepare(ted.MustParse("{a{b{d}}}"))
	h := e.Prepare(ted.MustParse("{a{b}{c}{e}}"))
	fmt.Println(e.Distance(f, g))
	fmt.Println(e.Distance(f, h))
	// Output:
	// 2
	// 1
}

// A filtered similarity self-join on the worker pool: lower bounds
// prune pairs that cannot match, the constrained upper bound accepts
// pairs that must match, and only the undecided middle runs the exact
// algorithm.
func ExampleEngine_Join() {
	e := batch.New(batch.WithWorkers(4))
	ps := e.PrepareAll([]*ted.Tree{
		ted.MustParse("{a{b}{c}}"),
		ted.MustParse("{a{b}}"),
		ted.MustParse("{x{y}{z}}"),
	})
	matches, stats := e.Join(ps, 2, true)
	for _, m := range matches {
		fmt.Printf("trees %d and %d match (distance %g)\n", m.I, m.J, m.Dist)
	}
	fmt.Printf("%d of %d pairs pruned by bounds\n",
		stats.LowerPruned+stats.UpperAccepted, stats.Comparisons)
	// Output:
	// trees 0 and 1 match (distance 1)
	// 3 of 3 pairs pruned by bounds
}

// An index-accelerated join: instead of enumerating all pairs and
// filtering, candidates are generated from a label-histogram inverted
// index, so only pairs whose label overlap makes a match possible are
// ever visited. The match set is provably identical to the filtered
// Join's.
func ExampleEngine_JoinIndexed() {
	e := batch.New(batch.WithWorkers(4))
	ps := e.PrepareAll([]*ted.Tree{
		ted.MustParse("{a{b}{c}}"),
		ted.MustParse("{a{b}}"),
		ted.MustParse("{x{y}{z}}"),
	})
	matches, stats := e.JoinIndexed(ps, 2, batch.JoinOptions{Mode: batch.IndexHistogram})
	for _, m := range matches {
		fmt.Printf("trees %d and %d match (distance %g)\n", m.I, m.J, m.Dist)
	}
	fmt.Printf("%d of 3 pairs even considered (mode %s)\n", stats.Comparisons, stats.Mode)
	// Output:
	// trees 0 and 1 match (distance 1)
	// 1 of 3 pairs even considered (mode histogram)
}
