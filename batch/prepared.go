package batch

import (
	"fmt"
	"sync"

	"repro/internal/bounds"
	"repro/internal/cost"
	"repro/internal/gted"
	"repro/internal/strategy"
	"repro/internal/tree"
)

// PreparedTree is a tree with every per-tree input of the distance
// machinery cached: decomposition cardinalities (the optimal-strategy
// cost formula of Section 5), the mirror-leafmost array consumed by ΔR,
// interned labels with per-node delete/insert costs, and the lower-bound
// profile. Preparing costs O(n) (O(n) space) and pays for itself as soon
// as a tree participates in more than one comparison.
//
// PreparedTrees are immutable and safe to share across goroutines. They
// are bound to the preparing engine, because label ids come from that
// engine's interner; passing one to another engine panics, naming both
// engines. There are two ways to reuse per-tree work across engines:
// share one interner between them (WithInterner), or — the persistent
// form of the same idea — store the artifacts in a corpus.Corpus and
// rebuild the PreparedTree with PrepareHydrated, which is how a corpus
// loaded from disk turns stored bytes back into engine-ready trees
// without recomputing anything.
type PreparedTree struct {
	eng     *Engine
	t       *tree.Tree
	costs   *cost.PerTree
	decomp  *strategy.Decomp
	lfm     []int32
	spectra []int32 // quantized depth spectra (gted.DepthSpectra)

	// The bound profile is only consumed by DistanceBounded and the
	// filtered Join, so it is built lazily on first use — unless a
	// hydration supplied it up front.
	profOnce sync.Once
	prof     *bounds.Profile
}

// Prepare caches the per-tree inputs of t for this engine. The
// decomposition cardinalities are skipped when the engine has a fixed
// strategy override (they only feed the optimal-strategy computation),
// and the lower-bound profile is deferred until a bounded call needs it.
func (e *Engine) Prepare(t *tree.Tree) *PreparedTree {
	p := &PreparedTree{
		eng:     e,
		t:       t,
		costs:   cost.CompileTree(e.model, t, e.in),
		lfm:     gted.MirrorLeafmost(t),
		spectra: gted.DepthSpectra(t),
	}
	if e.strat == nil {
		p.decomp = strategy.NewDecomp(t)
	}
	return p
}

// Hydration carries per-tree artifacts computed earlier — typically
// loaded from a persisted corpus — so PrepareHydrated can assemble a
// PreparedTree without redoing the per-tree work of Prepare.
type Hydration struct {
	// In is the interner the label ids were assigned by. It must be the
	// engine's own interner (engines created via corpus.Corpus.Engine
	// share the corpus's): ids minted by any other interner would alias
	// arbitrary labels.
	In *cost.Interner
	// IDs is the interned label id of every node, in postorder.
	IDs []int32
	// Decomp holds the decomposition cardinalities of every subtree
	// (strategy.NewDecomp output). Optional: nil recomputes on demand.
	Decomp *strategy.Decomp
	// Lfm is the mirror-coordinate leafmost array (gted.MirrorLeafmost
	// output). Optional: nil recomputes.
	Lfm []int32
	// Profile is the lower-bound profile. Optional: nil falls back to
	// the usual lazy build on first bounded use.
	Profile *bounds.Profile
}

// PrepareHydrated is Prepare fed from stored artifacts: label ids,
// decomposition cardinalities, the mirror-leafmost array and the bound
// profile come from h instead of being recomputed, and only the
// per-node delete/insert costs are (re)priced under the engine's cost
// model — which is what makes one stored artifact set serve engines
// with different models. The engine-binding rule is unchanged; what
// moves is the compatibility check: instead of "same engine", the
// hydration must carry the engine's interner, and mismatches panic with
// both parties named.
func (e *Engine) PrepareHydrated(t *tree.Tree, h Hydration) *PreparedTree {
	if h.In != e.in {
		panic(fmt.Sprintf(
			"batch: Hydration carries interner %p but engine %p uses interner %p; "+
				"hydrate only into engines attached to the artifacts' corpus (corpus.Corpus.Engine)",
			h.In, e, e.in))
	}
	pc, err := cost.CompileTreeFromIDs(e.model, t, h.IDs, e.in)
	if err != nil {
		panic("batch: " + err.Error())
	}
	n := t.Len()
	p := &PreparedTree{
		eng:     e,
		t:       t,
		costs:   pc,
		lfm:     h.Lfm,
		spectra: gted.DepthSpectra(t),
	}
	if len(p.lfm) != n {
		if p.lfm != nil {
			panic(fmt.Sprintf("batch: hydrated mirror-leafmost array has %d entries for a %d-node tree", len(p.lfm), n))
		}
		p.lfm = gted.MirrorLeafmost(t)
	}
	if e.strat == nil {
		d := h.Decomp
		if d != nil && (d.T != t || len(d.A) != n || len(d.FL) != n || len(d.FR) != n) {
			panic("batch: hydrated decomposition does not describe the hydrated tree")
		}
		p.decomp = d
		if p.decomp == nil {
			p.decomp = strategy.NewDecomp(t)
		}
	}
	p.prof = h.Profile
	return p
}

// profile returns the tree's bound profile, building it on first use
// (hydrated profiles skip the build). Safe for concurrent callers.
func (p *PreparedTree) profile() *bounds.Profile {
	p.profOnce.Do(func() {
		if p.prof == nil {
			p.prof = bounds.NewProfile(p.t)
		}
	})
	return p.prof
}

// PrepareQuery prepares an ad-hoc tree for the request path of a
// serving workload: a query that arrives over the wire, pairs against
// corpus-hydrated trees for one request, and is then garbage. The
// artifacts are those of Prepare — the engine's interner assigns the
// label ids, so the result pairs with any PreparedTree of the same
// engine (or of the corpus that created it) — but the lower-bound
// profile is built eagerly rather than lazily: request handlers consult
// it on their very next call (DistanceBounded, TopKAcross, filtered
// joins), and building it here keeps that work out of the
// admission-controlled critical section where it would count against
// another request's queue time.
//
// Nothing is cached anywhere: the corpus-side PreparedTree cache is for
// stored trees, and a server that prepared its queries through it would
// grow without bound. Labels never seen before are still interned into
// the shared table (ids must be comparable against stored trees'); that
// table grows by the union of distinct labels served, which is why
// servers cap request tree sizes at admission.
func (e *Engine) PrepareQuery(t *tree.Tree) *PreparedTree {
	p := e.Prepare(t)
	p.profile()
	return p
}

// PrepareAll prepares every tree of a collection.
func (e *Engine) PrepareAll(ts []*tree.Tree) []*PreparedTree {
	out := make([]*PreparedTree, len(ts))
	for i, t := range ts {
		out[i] = e.Prepare(t)
	}
	return out
}

// Tree returns the underlying tree.
func (p *PreparedTree) Tree() *tree.Tree { return p.t }

// Len returns the number of nodes of the underlying tree.
func (p *PreparedTree) Len() int { return p.t.Len() }
