package batch

import (
	"sync"

	"repro/internal/bounds"
	"repro/internal/cost"
	"repro/internal/gted"
	"repro/internal/strategy"
	"repro/internal/tree"
)

// PreparedTree is a tree with every per-tree input of the distance
// machinery cached: decomposition cardinalities (the optimal-strategy
// cost formula of Section 5), the mirror-leafmost array consumed by ΔR,
// interned labels with per-node delete/insert costs, and the lower-bound
// profile. Preparing costs O(n) (O(n) space) and pays for itself as soon
// as a tree participates in more than one comparison.
//
// PreparedTrees are immutable and safe to share across goroutines. They
// are bound to the preparing engine; mixing engines panics.
type PreparedTree struct {
	eng    *Engine
	t      *tree.Tree
	costs  *cost.PerTree
	decomp *strategy.Decomp
	lfm    []int32

	// The bound profile is only consumed by DistanceBounded and the
	// filtered Join, so it is built lazily on first use.
	profOnce sync.Once
	prof     *bounds.Profile
}

// Prepare caches the per-tree inputs of t for this engine. The
// decomposition cardinalities are skipped when the engine has a fixed
// strategy override (they only feed the optimal-strategy computation),
// and the lower-bound profile is deferred until a bounded call needs it.
func (e *Engine) Prepare(t *tree.Tree) *PreparedTree {
	e.mu.Lock()
	pc := cost.CompileTree(e.model, t, e.in)
	e.mu.Unlock()
	p := &PreparedTree{
		eng:   e,
		t:     t,
		costs: pc,
		lfm:   gted.MirrorLeafmost(t),
	}
	if e.strat == nil {
		p.decomp = strategy.NewDecomp(t)
	}
	return p
}

// profile returns the tree's bound profile, building it on first use.
// Safe for concurrent callers.
func (p *PreparedTree) profile() *bounds.Profile {
	p.profOnce.Do(func() { p.prof = bounds.NewProfile(p.t) })
	return p.prof
}

// PrepareAll prepares every tree of a collection.
func (e *Engine) PrepareAll(ts []*tree.Tree) []*PreparedTree {
	out := make([]*PreparedTree, len(ts))
	for i, t := range ts {
		out[i] = e.Prepare(t)
	}
	return out
}

// Tree returns the underlying tree.
func (p *PreparedTree) Tree() *tree.Tree { return p.t }

// Len returns the number of nodes of the underlying tree.
func (p *PreparedTree) Len() int { return p.t.Len() }
