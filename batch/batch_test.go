package batch_test

import (
	"context"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"

	ted "repro"
	"repro/batch"
	"repro/gen"
)

func randomTrees(seed int64, n, size int) []*ted.Tree {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*ted.Tree, n)
	for i := range out {
		out[i] = gen.Random(rng.Int63(), gen.RandomSpec{
			Size: 1 + rng.Intn(size), MaxDepth: 9, MaxFanout: 5, Labels: 4,
		})
	}
	return out
}

// TestEngineMatchesDistance cross-checks the engine against the
// sequential public API on random trees of varied shapes and sizes.
func TestEngineMatchesDistance(t *testing.T) {
	trees := randomTrees(1, 12, 70)
	e := batch.New(batch.WithWorkers(1))
	ps := e.PrepareAll(trees)
	for i := range trees {
		for j := range trees {
			want := ted.Distance(trees[i], trees[j])
			if got := e.Distance(ps[i], ps[j]); got != want {
				t.Fatalf("pair (%d,%d): engine %v, Distance %v", i, j, got, want)
			}
		}
	}
}

// TestArenaReuseNoLeakage is the arena regression test: one worker
// computes a long, shape-diverse sequence of pairs through a single
// reused arena (large pairs followed by small ones, so stale DP state
// from a big pair sits underneath every small pair), and every result
// must match a fresh computation.
func TestArenaReuseNoLeakage(t *testing.T) {
	big := []*ted.Tree{gen.LeftBranch(90), gen.FullBinary(63), gen.ZigZag(80)}
	small := randomTrees(2, 10, 25)
	trees := append(append([]*ted.Tree{}, big...), small...)
	e := batch.New(batch.WithWorkers(1))
	ps := e.PrepareAll(trees)
	// Interleave big and small pairs; repeat each comparison twice so the
	// second run executes on a dirty arena whose buffers fit without
	// growing.
	for round := 0; round < 2; round++ {
		for i := range trees {
			for j := range trees {
				want := ted.Distance(trees[i], trees[j])
				if got := e.Distance(ps[i], ps[j]); got != want {
					t.Fatalf("round %d pair (%d,%d): engine %v, fresh %v", round, i, j, got, want)
				}
			}
		}
	}
}

// TestComputeAndStream checks the parallel batch entry points against
// the sequential engine path.
func TestComputeAndStream(t *testing.T) {
	trees := randomTrees(3, 10, 60)
	e := batch.New(batch.WithWorkers(4))
	ps := e.PrepareAll(trees)
	var pairs []batch.Pair
	var want []float64
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			pairs = append(pairs, batch.Pair{F: ps[i], G: ps[j]})
			want = append(want, ted.Distance(trees[i], trees[j]))
		}
	}
	res := e.Compute(pairs)
	if len(res) != len(pairs) {
		t.Fatalf("Compute returned %d results for %d pairs", len(res), len(pairs))
	}
	for i, r := range res {
		if r.Index != i || r.Dist != want[i] {
			t.Fatalf("Compute[%d] = {%d %v}, want {%d %v}", i, r.Index, r.Dist, i, want[i])
		}
		if r.Subproblems <= 0 {
			t.Fatalf("Compute[%d] reported %d subproblems", i, r.Subproblems)
		}
	}

	in := make(chan batch.Pair)
	go func() {
		for _, p := range pairs {
			in <- p
		}
		close(in)
	}()
	got := make([]float64, len(pairs))
	seen := 0
	for r := range e.Stream(context.Background(), in) {
		got[r.Index] = r.Dist
		seen++
	}
	if seen != len(pairs) {
		t.Fatalf("Stream emitted %d results for %d pairs", seen, len(pairs))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Stream pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestStreamCancel checks the early-exit contract: cancelling the
// context releases the workers and closes the output channel even when
// the producer keeps sending and the consumer stops reading.
func TestStreamCancel(t *testing.T) {
	trees := randomTrees(30, 6, 40)
	e := batch.New(batch.WithWorkers(2))
	ps := e.PrepareAll(trees)
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan batch.Pair)
	go func() {
		// Endless producer; only cancellation can stop the stream.
		for {
			select {
			case in <- batch.Pair{F: ps[0], G: ps[1]}:
			case <-ctx.Done():
				return
			}
		}
	}()
	out := e.Stream(ctx, in)
	<-out // one result to prove the pipeline is flowing
	cancel()
	for range out { // must terminate: the channel closes after cancel
	}
}

// TestConcurrentDistance hammers one engine from many goroutines (race
// detector coverage for the workspace pool and the shared interner).
func TestConcurrentDistance(t *testing.T) {
	trees := randomTrees(4, 8, 50)
	e := batch.New(batch.WithWorkers(4))
	ps := e.PrepareAll(trees)
	want := make([][]float64, len(trees))
	for i := range trees {
		want[i] = make([]float64, len(trees))
		for j := range trees {
			want[i][j] = ted.Distance(trees[i], trees[j])
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 30; n++ {
				i, j := rng.Intn(len(ps)), rng.Intn(len(ps))
				if got := e.Distance(ps[i], ps[j]); got != want[i][j] {
					t.Errorf("concurrent pair (%d,%d): got %v want %v", i, j, got, want[i][j])
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestJoinFilteredEquivalence checks that the filtered parallel join
// reports the same match set as the unfiltered one, with upper-bound
// distances only ever over-reporting, and that the filter accounting is
// consistent.
func TestJoinFilteredEquivalence(t *testing.T) {
	trees := randomTrees(5, 12, 40)
	e := batch.New(batch.WithWorkers(4))
	ps := e.PrepareAll(trees)
	for _, tau := range []float64{3, 8, 15} {
		plain, pst := e.Join(ps, tau, false)
		filt, fst := e.Join(ps, tau, true)
		if len(plain) != len(filt) {
			t.Fatalf("tau=%v: filtered join found %d pairs, plain %d", tau, len(filt), len(plain))
		}
		for k := range plain {
			if plain[k].I != filt[k].I || plain[k].J != filt[k].J {
				t.Fatalf("tau=%v: match %d differs: %+v vs %+v", tau, k, plain[k], filt[k])
			}
			if filt[k].Dist < plain[k].Dist || filt[k].Dist >= tau {
				t.Fatalf("tau=%v: filtered distance %v out of [%v, %v)", tau, filt[k].Dist, plain[k].Dist, tau)
			}
		}
		if fst.LowerPruned+fst.UpperAccepted+fst.ExactComputed != fst.Comparisons {
			t.Fatalf("tau=%v: filter accounting %+v does not cover all comparisons", tau, fst)
		}
		if pst.Comparisons != len(trees)*(len(trees)-1)/2 {
			t.Fatalf("tau=%v: %d comparisons", tau, pst.Comparisons)
		}
		if fst.Subproblems > pst.Subproblems {
			t.Fatalf("tau=%v: filtered join computed more subproblems (%d) than plain (%d)",
				tau, fst.Subproblems, pst.Subproblems)
		}
	}
}

// TestTopKMatchesPublicAPI checks the engine's top-k against the public
// TopKSubtrees (itself cross-checked against brute force in the root
// package tests).
func TestTopKMatchesPublicAPI(t *testing.T) {
	query := gen.Random(70, gen.RandomSpec{Size: 9, MaxDepth: 4, MaxFanout: 3, Labels: 3})
	data := gen.Random(71, gen.RandomSpec{Size: 60, MaxDepth: 8, MaxFanout: 4, Labels: 3})
	e := batch.New()
	q, d := e.Prepare(query), e.Prepare(data)
	for _, k := range []int{1, 4, 100} {
		want := ted.TopKSubtrees(query, data, k)
		got, st := e.TopKSubtrees(q, d, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d matches, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i].Root != want[i].Root || got[i].Dist != want[i].Dist {
				t.Fatalf("k=%d match %d: got %+v want %+v", k, i, got[i], want[i])
			}
		}
		if st.Subproblems <= 0 {
			t.Fatalf("k=%d: no subproblems reported", k)
		}
	}
}

// TestDistanceBounded checks the early-exit contract: pruned answers are
// true lower bounds at or above tau, and unpruned answers are exact.
func TestDistanceBounded(t *testing.T) {
	trees := randomTrees(6, 10, 40)
	e := batch.New(batch.WithWorkers(1))
	ps := e.PrepareAll(trees)
	pruned, exact := 0, 0
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			want := ted.Distance(trees[i], trees[j])
			for _, tau := range []float64{1, want, want + 1, 1e9} {
				got, isExact := e.DistanceBounded(ps[i], ps[j], tau)
				if isExact {
					exact++
					if got != want {
						t.Fatalf("pair (%d,%d) tau=%v: exact %v want %v", i, j, tau, got, want)
					}
				} else {
					pruned++
					if got < tau || got > want {
						t.Fatalf("pair (%d,%d) tau=%v: pruned lb %v not in [tau, %v]", i, j, tau, got, want)
					}
				}
			}
		}
	}
	if pruned == 0 || exact == 0 {
		t.Fatalf("bound test never exercised both branches (pruned=%d exact=%d)", pruned, exact)
	}
}

// TestDistanceBoundedContract checks the ≤-threshold contract against the
// public API: (d, true) iff Distance ≤ tau, with pruned answers being
// true lower bounds in [tau, d].
func TestDistanceBoundedContract(t *testing.T) {
	trees := randomTrees(16, 8, 40)
	e := batch.New(batch.WithWorkers(1))
	ps := e.PrepareAll(trees)
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			want := ted.Distance(trees[i], trees[j])
			for _, tau := range []float64{0, want / 2, want - 0.5, want, want + 0.5, 1e9} {
				got, ok := e.DistanceBounded(ps[i], ps[j], tau)
				if ok != (want <= tau) {
					t.Fatalf("pair (%d,%d) tau=%v: ok=%v, exact %v", i, j, tau, ok, want)
				}
				if ok && got != want {
					t.Fatalf("pair (%d,%d) tau=%v: got %v, exact %v", i, j, tau, got, want)
				}
				if !ok && (got < tau || got > want) {
					t.Fatalf("pair (%d,%d) tau=%v: lower bound %v outside [tau, %v]", i, j, tau, got, want)
				}
			}
		}
	}
}

// TestTopKAcrossMatchesPerTree checks that the cutoff-shrinking
// multi-tree top-k returns exactly the merge of per-tree exact top-k
// runs, and that the shrinking cutoff actually pruned DP work.
func TestTopKAcrossMatchesPerTree(t *testing.T) {
	query := gen.Random(90, gen.RandomSpec{Size: 12, MaxDepth: 5, MaxFanout: 3, Labels: 3})
	var data []*ted.Tree
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < 12; i++ {
		data = append(data, gen.Random(rng.Int63(), gen.RandomSpec{
			Size: 20 + rng.Intn(40), MaxDepth: 8, MaxFanout: 4, Labels: 3,
		}))
	}
	e := batch.New()
	q := e.Prepare(query)
	ps := e.PrepareAll(data)
	for _, k := range []int{1, 5, 17} {
		// Reference: exact per-tree top-k, merged and re-sorted.
		var want []batch.CrossMatch
		for di, p := range ps {
			ms, _ := e.TopKSubtrees(q, p, k)
			for _, m := range ms {
				want = append(want, batch.CrossMatch{Tree: di, Root: m.Root, Dist: m.Dist})
			}
		}
		sort.Slice(want, func(i, j int) bool {
			a, b := want[i], want[j]
			if a.Dist != b.Dist {
				return a.Dist < b.Dist
			}
			if a.Tree != b.Tree {
				return a.Tree < b.Tree
			}
			return a.Root < b.Root
		})
		if len(want) > k {
			want = want[:k]
		}
		got, st := e.TopKAcross(q, ps, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d matches, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d match %d: got %+v want %+v", k, i, got[i], want[i])
			}
		}
		if k == 1 && st.PrunedSubproblems == 0 {
			t.Fatal("k=1 across 12 trees pruned nothing — the shrinking cutoff is not reaching GTED")
		}
	}
}

// TestBoundedAllocFree is the bounded-mode allocation regression test:
// bounded runs in a warm arena must stay as allocation-free as exact
// runs — the cutoff machinery may not allocate per pair. It runs under
// both row layouts: the sparse slab is a second arena-owned slice, so
// the compressed path must be just as allocation-free once warm.
func TestBoundedAllocFree(t *testing.T) {
	query := gen.Random(85, gen.RandomSpec{Size: 50, MaxDepth: 8, MaxFanout: 4, Labels: 4})
	others := randomTrees(86, 12, 50)
	engines := []struct {
		name string
		e    *batch.Engine
	}{
		{"sparse", batch.New(batch.WithWorkers(1))},
		{"dense", batch.New(batch.WithWorkers(1), batch.WithSparseRows(false), batch.WithSharpBands(false))},
	}
	for _, eng := range engines {
		e := eng.e
		q := e.Prepare(query)
		ps := e.PrepareAll(others)
		// Warm the workspace pool, the arena, and the lazy bound profiles
		// through both DistanceBounded branches.
		for _, p := range ps {
			e.DistanceBounded(q, p, 2)
			e.DistanceBounded(q, p, 1e9)
		}
		for _, tau := range []float64{2, 25, 1e9} {
			perPair := testing.AllocsPerRun(3, func() {
				for _, p := range ps {
					e.DistanceBounded(q, p, tau)
				}
			}) / float64(len(ps))
			// Same bound as the exact-path steady-state test: a handful of
			// fixed-size descriptors per pair, no DP-sized allocations.
			if !raceEnabled && perPair > 16 {
				t.Fatalf("%s tau=%v: bounded steady state allocates %.1f objects per pair", eng.name, tau, perPair)
			}
		}
	}
}

// TestBoundedBytesPerPair pins the bytes (not just objects) of a warm
// bounded run at a narrow cutoff: with arena-owned rows, the steady
// state may allocate a few fixed-size descriptors per pair but nothing
// DP-sized. TotalAlloc is cumulative so GC cannot skew the delta.
func TestBoundedBytesPerPair(t *testing.T) {
	if raceEnabled {
		t.Skip("race shadow state distorts byte accounting")
	}
	query := gen.Random(87, gen.RandomSpec{Size: 50, MaxDepth: 8, MaxFanout: 4, Labels: 4})
	others := randomTrees(88, 12, 50)
	e := batch.New(batch.WithWorkers(1))
	q := e.Prepare(query)
	ps := e.PrepareAll(others)
	for _, p := range ps {
		e.DistanceBounded(q, p, 2)
		e.DistanceBounded(q, p, 1e9)
	}
	const reps = 5
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for rep := 0; rep < reps; rep++ {
		for _, p := range ps {
			e.DistanceBounded(q, p, 2)
		}
	}
	runtime.ReadMemStats(&after)
	perPair := float64(after.TotalAlloc-before.TotalAlloc) / float64(reps*len(ps))
	// A 50-node pair's smallest DP table is tens of KB; 2 KB per pair
	// proves the rows come from the arena, not the heap.
	if perPair > 2048 {
		t.Fatalf("warm bounded runs allocate %.0f bytes per pair at tau=2; rows must live in the arena", perPair)
	}
}

// TestMixedEnginePanics pins the cross-engine misuse check.
func TestMixedEnginePanics(t *testing.T) {
	e1, e2 := batch.New(), batch.New()
	p1 := e1.Prepare(ted.MustParse("{a{b}}"))
	p2 := e2.Prepare(ted.MustParse("{a{c}}"))
	defer func() {
		if recover() == nil {
			t.Fatal("mixing engines did not panic")
		}
	}()
	e1.Distance(p1, p2)
}

// TestPreparedDoesLessWork is the acceptance allocation test: preparing
// a tree once and comparing it against N others must allocate strictly
// less than N independent Distance calls, which redo the per-tree work
// (indexes, decompositions, interning, DP tables) every time.
func TestPreparedDoesLessWork(t *testing.T) {
	query := gen.Random(80, gen.RandomSpec{Size: 50, MaxDepth: 8, MaxFanout: 4, Labels: 4})
	others := randomTrees(81, 16, 50)

	e := batch.New(batch.WithWorkers(1))
	q := e.Prepare(query)
	ps := e.PrepareAll(others)
	// Warm the workspace pool and grow the arena to its steady state.
	for _, p := range ps {
		e.Distance(q, p)
	}

	naive := testing.AllocsPerRun(3, func() {
		for _, o := range others {
			ted.Distance(query, o)
		}
	})
	batched := testing.AllocsPerRun(3, func() {
		for _, p := range ps {
			e.Distance(q, p)
		}
	})
	if batched >= naive {
		t.Fatalf("batched comparisons allocate %.0f objects, naive %.0f — batching must do strictly less work", batched, naive)
	}
	// In steady state the per-pair hot path should be close to
	// allocation-free: a handful of fixed-size descriptors per pair
	// (runner, pair cost views), not O(n²) DP tables. The race runtime
	// allocates shadow state of its own, so the bound only holds without
	// it.
	if perPair := batched / float64(len(ps)); !raceEnabled && perPair > 16 {
		t.Fatalf("steady-state engine allocates %.1f objects per pair; arenas should keep this O(1)", perPair)
	}
}

// TestWeightedCostEngine cross-checks the engine under a non-unit model
// against the sequential API. This exercises the pooled rename memos:
// the same workspaces serve two different engines (and models) back to
// back, so a stale memo surviving the engine switch would corrupt the
// second engine's distances.
func TestWeightedCostEngine(t *testing.T) {
	trees := randomTrees(7, 8, 40)
	for _, m := range []ted.CostModel{
		ted.WeightedCost(2, 3, 1),
		ted.WeightedCost(1, 1, 5),
	} {
		e := batch.New(batch.WithWorkers(2), batch.WithCost(m))
		ps := e.PrepareAll(trees)
		for i := range trees {
			for j := range trees {
				want := ted.Distance(trees[i], trees[j], ted.WithCost(m))
				if got := e.Distance(ps[i], ps[j]); got != want {
					t.Fatalf("model %v pair (%d,%d): engine %v, Distance %v", m, i, j, got, want)
				}
			}
		}
	}
}
