//go:build race

package batch_test

const raceEnabled = true
