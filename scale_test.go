package ted_test

import (
	"testing"

	ted "repro"
	"repro/gen"
)

// TestMediumScaleAgreement cross-validates the strategy-generic engine
// against the standalone Zhang–Shasha implementation on multi-hundred-
// node trees of every shape, including cross-shape pairs (the regime
// where ΔI, transposition and row recycling all fire). Skipped with
// -short.
func TestMediumScaleAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale differential test")
	}
	build := []func(int) *ted.Tree{
		gen.LeftBranch, gen.RightBranch, gen.FullBinary, gen.ZigZag, gen.Mixed,
		func(n int) *ted.Tree {
			return gen.Random(int64(n), gen.RandomSpec{Size: n, MaxDepth: 15, MaxFanout: 6, Labels: 6})
		},
	}
	names := []string{"LB", "RB", "FB", "ZZ", "MX", "Random"}
	sizes := []int{210, 301}
	for i, bf := range build {
		for j, bg := range build {
			f := bf(sizes[i%2])
			g := bg(sizes[(j+1)%2])
			want := ted.Distance(f, g, ted.WithAlgorithm(ted.ZhangShashaClassic))
			var stR ted.Stats
			got := ted.Distance(f, g, ted.WithStats(&stR))
			if got != want {
				t.Fatalf("%s×%s: RTED %v != ZS %v", names[i], names[j], got, want)
			}
			for _, alg := range []ted.Algorithm{ted.KleinH, ted.DemaineH, ted.ZhangR} {
				if d := ted.Distance(f, g, ted.WithAlgorithm(alg)); d != want {
					t.Fatalf("%s×%s: %v gives %v want %v", names[i], names[j], alg, d, want)
				}
			}
			// RTED never does more work than the four competitors.
			for _, alg := range ted.Algorithms[1:] {
				if c := ted.CountSubproblems(f, g, alg); c < stR.Subproblems {
					t.Fatalf("%s×%s: %v count %d below RTED %d", names[i], names[j], alg, c, stR.Subproblems)
				}
			}
			// Bounds stay on the right sides at scale.
			if lb := ted.LowerBound(f, g); lb > want {
				t.Fatalf("%s×%s: lower bound %v above exact %v", names[i], names[j], lb, want)
			}
			if ub := ted.ConstrainedDistance(f, g); ub < want {
				t.Fatalf("%s×%s: constrained %v below exact %v", names[i], names[j], ub, want)
			}
		}
	}
}

// TestDeepTreeDistance exercises very deep recursion paths end to end.
func TestDeepTreeDistance(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-tree stress test")
	}
	f := gen.LeftBranch(1201)
	g := gen.RightBranch(1201)
	var st ted.Stats
	d := ted.Distance(f, g, ted.WithStats(&st))
	// Mirrored branches of equal size and a single shared label: the
	// distance is driven by structure only and bounded by 2n.
	if d <= 0 || d > float64(f.Len()+g.Len()) {
		t.Fatalf("deep distance %v out of range", d)
	}
	if st.Subproblems <= 0 {
		t.Fatal("no subproblems recorded")
	}
	// The LB×RB pair is the paper's Θ(n³) witness (Theorem 2): every
	// LRH strategy needs cubic work here, so RTED cannot be far below
	// the competitors — but it must not exceed any of them, and it must
	// strictly beat the degenerate Zhang variants.
	zl := ted.CountSubproblems(f, g, ted.ZhangL)
	zr := ted.CountSubproblems(f, g, ted.ZhangR)
	for _, c := range []int64{zl, zr,
		ted.CountSubproblems(f, g, ted.KleinH),
		ted.CountSubproblems(f, g, ted.DemaineH)} {
		if c < st.Subproblems {
			t.Fatalf("fixed strategy count %d below RTED %d", c, st.Subproblems)
		}
	}
	if st.Subproblems >= zl || st.Subproblems >= zr {
		t.Fatalf("RTED %d does not beat Zhang on LB×RB (%d / %d)", st.Subproblems, zl, zr)
	}
	n3 := int64(f.Len()) * int64(f.Len()) * int64(f.Len())
	if st.Subproblems > n3 {
		t.Fatalf("RTED %d exceeds n³ = %d on the worst-case witness", st.Subproblems, n3)
	}
}
