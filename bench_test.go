// Benchmarks regenerating one representative point of every table and
// figure in the paper's evaluation (Section 8). The full grids are
// produced by cmd/tedbench; these testing.B benchmarks pin the same code
// paths into `go test -bench` so regressions in any experiment's
// workload are visible. Custom metrics report the paper's cost measure
// (relevant subproblems) alongside wall-clock time.
package ted_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	ted "repro"
	"repro/batch"
	"repro/gen"
)

// ---- Figure 8: subproblem counts per shape (analytic counting path) ----

func benchCount(b *testing.B, t *ted.Tree) {
	b.Helper()
	algs := []ted.Algorithm{ted.ZhangL, ted.ZhangR, ted.KleinH, ted.DemaineH, ted.RTED}
	for _, alg := range algs {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			var c int64
			for i := 0; i < b.N; i++ {
				c = ted.CountSubproblems(t, t, alg)
			}
			b.ReportMetric(float64(c), "subproblems")
		})
	}
}

func BenchmarkFig8a_LB(b *testing.B) { benchCount(b, gen.LeftBranch(401)) }
func BenchmarkFig8b_RB(b *testing.B) { benchCount(b, gen.RightBranch(401)) }
func BenchmarkFig8c_FB(b *testing.B) { benchCount(b, gen.FullBinary(511)) }
func BenchmarkFig8d_ZZ(b *testing.B) { benchCount(b, gen.ZigZag(401)) }
func BenchmarkFig8e_Random(b *testing.B) {
	benchCount(b, gen.Random(7, gen.RandomSpec{Size: 401, MaxDepth: 15, MaxFanout: 6, Labels: 8}))
}
func BenchmarkFig8f_MX(b *testing.B) { benchCount(b, gen.Mixed(401)) }

// ---- Figure 9: distance runtimes per shape ----

func benchDistance(b *testing.B, t *ted.Tree) {
	b.Helper()
	for _, alg := range []ted.Algorithm{ted.ZhangShashaClassic, ted.DemaineH, ted.RTED} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			var st ted.Stats
			for i := 0; i < b.N; i++ {
				ted.Distance(t, t, ted.WithAlgorithm(alg), ted.WithStats(&st))
			}
			b.ReportMetric(float64(st.Subproblems), "subproblems")
		})
	}
}

func BenchmarkFig9a_FB(b *testing.B) { benchDistance(b, gen.FullBinary(255)) }
func BenchmarkFig9b_ZZ(b *testing.B) { benchDistance(b, gen.ZigZag(301)) }
func BenchmarkFig9c_MX(b *testing.B) { benchDistance(b, gen.Mixed(301)) }

// ---- Table 1: the similarity join ----

func BenchmarkTable1_Join(b *testing.B) {
	const n = 120
	trees := []*ted.Tree{
		gen.LeftBranch(n),
		gen.RightBranch(n),
		gen.FullBinary(n),
		gen.ZigZag(n),
		gen.Random(42, gen.RandomSpec{Size: n, MaxDepth: 15, MaxFanout: 6, Labels: 8}),
	}
	for _, alg := range []ted.Algorithm{ted.ZhangL, ted.ZhangR, ted.KleinH, ted.DemaineH, ted.RTED} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			var r ted.JoinResult
			for i := 0; i < b.N; i++ {
				r = ted.Join(trees, float64(n)/2, ted.WithAlgorithm(alg))
			}
			b.ReportMetric(float64(r.Subproblems), "subproblems")
		})
	}
}

// ---- Figure 10: strategy-computation overhead ----

func benchFig10(b *testing.B, f, g *ted.Tree) {
	b.Helper()
	var st ted.Stats
	for i := 0; i < b.N; i++ {
		ted.Distance(f, g, ted.WithStats(&st))
	}
	b.ReportMetric(100*st.StrategyTime.Seconds()/st.TotalTime.Seconds(), "strategy%")
}

func BenchmarkFig10a_TreeBank(b *testing.B) {
	benchFig10(b, gen.TreeBankLike(1, 150), gen.TreeBankLike(2, 150))
}
func BenchmarkFig10b_SwissProt(b *testing.B) {
	benchFig10(b, gen.SwissProtLike(1, 400), gen.SwissProtLike(2, 400))
}
func BenchmarkFig10c_Random(b *testing.B) {
	benchFig10(b,
		gen.Random(1, gen.RandomSpec{Size: 400, MaxDepth: 25, MaxFanout: 8, Labels: 16}),
		gen.Random(2, gen.RandomSpec{Size: 400, MaxDepth: 25, MaxFanout: 8, Labels: 16}))
}

// ---- Table 2: subproblem ratios on TreeFam-like phylogenies ----

func BenchmarkTable2_TreeFam(b *testing.B) {
	f := gen.TreeFamLike(1, 451)
	g := gen.TreeFamLike(2, 701)
	var rted, best int64
	for i := 0; i < b.N; i++ {
		rted = ted.CountSubproblems(f, g, ted.RTED)
		best = -1
		for _, alg := range []ted.Algorithm{ted.ZhangL, ted.ZhangR, ted.KleinH, ted.DemaineH} {
			if c := ted.CountSubproblems(f, g, alg); best == -1 || c < best {
				best = c
			}
		}
	}
	b.ReportMetric(100*float64(rted)/float64(best), "pct_of_best")
}

// ---- Ablations (DESIGN.md §3) ----

func BenchmarkAblationStrategyOnly(b *testing.B) {
	t := gen.Random(3, gen.RandomSpec{Size: 1000, MaxDepth: 15, MaxFanout: 6, Labels: 8})
	var c int64
	for i := 0; i < b.N; i++ {
		c = ted.OptimalStrategyCost(t, t)
	}
	b.ReportMetric(float64(c), "opt_cost")
}

// ---- Micro-benchmarks of the substrates ----

func BenchmarkParseBracket(b *testing.B) {
	s := gen.Random(4, gen.RandomSpec{Size: 1000, MaxDepth: 15, MaxFanout: 6, Labels: 8}).String()
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		if _, err := ted.Parse(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapping(b *testing.B) {
	f := gen.Random(5, gen.RandomSpec{Size: 60, MaxDepth: 8, MaxFanout: 4, Labels: 4})
	g := gen.Random(6, gen.RandomSpec{Size: 60, MaxDepth: 8, MaxFanout: 4, Labels: 4})
	for i := 0; i < b.N; i++ {
		ted.Mapping(f, g)
	}
}

// ---- Bounds: the join filters of Section 7 ----

func boundsPair() (*ted.Tree, *ted.Tree) {
	f := gen.TreeFamLike(7, 401)
	g := gen.TreeFamLike(8, 401)
	return f, g
}

func BenchmarkBoundsLower(b *testing.B) {
	f, g := boundsPair()
	for i := 0; i < b.N; i++ {
		ted.LowerBound(f, g)
	}
}

func BenchmarkBoundsConstrained(b *testing.B) {
	f, g := boundsPair()
	for i := 0; i < b.N; i++ {
		ted.ConstrainedDistance(f, g)
	}
}

func BenchmarkBoundsPQGram(b *testing.B) {
	f, g := boundsPair()
	for i := 0; i < b.N; i++ {
		ted.PQGramDistance(f, g, 2, 3)
	}
}

// BenchmarkBoundsVsExact pins the headline of the filter ablation: the
// upper bound is orders of magnitude cheaper than the exact distance.
func BenchmarkBoundsVsExact(b *testing.B) {
	f, g := boundsPair()
	b.Run("constrained-UB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ted.ConstrainedDistance(f, g)
		}
	})
	b.Run("exact-RTED", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ted.Distance(f, g)
		}
	})
}

// ---- Filtered and parallel joins ----

func joinTrees() []*ted.Tree {
	var trees []*ted.Tree
	for i := int64(0); i < 10; i++ {
		trees = append(trees, gen.TreeFamLike(i, 101))
	}
	return trees
}

func BenchmarkJoinFiltered(b *testing.B) {
	trees := joinTrees()
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ted.Join(trees, 8)
		}
	})
	b.Run("filtered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ted.Join(trees, 8, ted.WithFilters())
		}
	})
}

func BenchmarkJoinParallel(b *testing.B) {
	trees := joinTrees()
	for _, w := range []int{1, 4} {
		w := w
		b.Run(map[int]string{1: "workers-1", 4: "workers-4"}[w], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ted.Join(trees, 50, ted.WithWorkers(w))
			}
		})
	}
}

// ---- Strategy computation: OptStrategy vs the O(n³) baseline ----

func BenchmarkOptVsBaseline(b *testing.B) {
	t := gen.Random(9, gen.RandomSpec{Size: 500, MaxDepth: 15, MaxFanout: 6, Labels: 8})
	b.Run("optstrategy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ted.OptimalStrategyCost(t, t)
		}
	})
	// The baseline is exercised through the experiments package; here
	// the public surface is the O(n²) algorithm only.
}

func BenchmarkTopKSubtrees(b *testing.B) {
	query := gen.TreeBankLike(1, 25)
	data := gen.TreeBankLike(2, 400)
	for i := 0; i < b.N; i++ {
		ted.TopKSubtrees(query, data, 5)
	}
}

// ---- The batch engine (see package batch) ----

func batchBenchTrees() []*ted.Tree {
	var trees []*ted.Tree
	for i := int64(0); i < 16; i++ {
		trees = append(trees, gen.TreeFamLike(i, 61))
	}
	return trees
}

// BenchmarkBatchJoinVsSequential pins the engine's headline: the same
// all-pairs workload through (a) the naive sequential loop — a fresh
// Distance call per pair, redoing the per-tree work every time — and (b)
// the batch engine at one worker and at all cores. On a multi-core
// machine the worker-pool variant adds near-linear speedup on top of the
// single-worker amortization win.
func BenchmarkBatchJoinVsSequential(b *testing.B) {
	trees := batchBenchTrees()
	b.Run("sequential-pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for x := 0; x < len(trees); x++ {
				for y := x + 1; y < len(trees); y++ {
					ted.Distance(trees[x], trees[y])
				}
			}
		}
	})
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		w := w
		b.Run(fmt.Sprintf("engine-%dworker", w), func(b *testing.B) {
			// Engine construction and tree preparation are measured too:
			// the engine must win end-to-end, not just per pair.
			for i := 0; i < b.N; i++ {
				e := batch.New(batch.WithWorkers(w))
				ps := e.PrepareAll(trees)
				e.Join(ps, 1e18, false)
			}
		})
	}
}

// BenchmarkBatchPrepareOnce isolates the PreparedTree amortization: one
// query compared against N data trees, with the naive path re-deriving
// the query's indexes, decomposition and cost vectors N times and the
// engine preparing everything exactly once and reusing one arena.
func BenchmarkBatchPrepareOnce(b *testing.B) {
	query := gen.TreeBankLike(3, 101)
	var data []*ted.Tree
	for i := int64(10); i < 34; i++ {
		data = append(data, gen.TreeBankLike(i, 101))
	}
	b.Run("naive-distance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range data {
				ted.Distance(query, d)
			}
		}
	})
	b.Run("engine-prepared", func(b *testing.B) {
		e := batch.New(batch.WithWorkers(1))
		q := e.Prepare(query)
		pd := e.PrepareAll(data)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, d := range pd {
				e.Distance(q, d)
			}
		}
	})
}

// BenchmarkBatchStream measures the streaming entry point end to end
// (channel hand-off included).
func BenchmarkBatchStream(b *testing.B) {
	trees := batchBenchTrees()
	e := batch.New(batch.WithWorkers(runtime.GOMAXPROCS(0)))
	ps := e.PrepareAll(trees)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := make(chan batch.Pair)
		go func() {
			for x := 0; x < len(ps); x++ {
				for y := x + 1; y < len(ps); y++ {
					in <- batch.Pair{F: ps[x], G: ps[y]}
				}
			}
			close(in)
		}()
		for range e.Stream(context.Background(), in) {
		}
	}
}
