package cluster_test

import (
	"math"
	"net"
	"path/filepath"
	"reflect"
	"testing"

	"repro/batch"
	"repro/cluster"
	"repro/corpus"
	"repro/gen"
)

// buildSnapshot writes a snapshot with near-duplicate clusters (and a
// few exact duplicates) spread over the whole ID range, so joins at
// every tau — zero included — have matches in every partition.
func buildSnapshot(t *testing.T, seed int64) string {
	t.Helper()
	c := corpus.New(corpus.WithHistogramIndex())
	for i := 0; i < 12; i++ {
		base := gen.Random(seed+int64(i), gen.RandomSpec{Size: 14 + i%5, MaxDepth: 6, MaxFanout: 4, Labels: 8})
		c.Add(base)
		c.Add(gen.RenameSome(base, 1+i%2, int64(i)))
		if i%3 == 0 {
			c.Add(base) // exact duplicate: a distance-0 pair
		}
	}
	path := filepath.Join(t.TempDir(), "snap.tedc")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// startWorker loads the snapshot into a fresh worker process stand-in
// (own corpus, own engine, own listener) and serves it.
func startWorker(t *testing.T, path string) (string, *cluster.Worker) {
	t.Helper()
	c, err := corpus.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorker(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(ln)
	t.Cleanup(func() { w.Close() })
	return ln.Addr().String(), w
}

// TestClusterJoinIdentity pins the acceptance bar: the clustered join's
// match set — pair for pair, distance for distance — equals single-node
// corpus.Join over the same snapshot, at tau zero, finite, and +Inf,
// under both the auto and the forced-enumerate candidate generators.
func TestClusterJoinIdentity(t *testing.T) {
	path := buildSnapshot(t, 300)
	a1, _ := startWorker(t, path)
	a2, _ := startWorker(t, path)
	co := cluster.NewCoordinator([]string{a1, a2})

	ref, err := corpus.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	e := ref.Engine()

	for _, tau := range []float64{0, 3, math.Inf(1)} {
		for _, mode := range []batch.IndexMode{batch.IndexAuto, batch.IndexEnumerate} {
			opts := batch.JoinOptions{Mode: mode}
			want, wantSt := ref.Join(e, tau, opts)
			got, gotSt, err := co.Join(tau, opts)
			if err != nil {
				t.Fatalf("tau %g mode %v: %v", tau, mode, err)
			}
			if len(got) == 0 && len(want) == 0 {
				if tau > 0 {
					t.Fatalf("tau %g: no matches on either side — the fixture proves nothing", tau)
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("tau %g mode %v: clustered join diverged\ngot  %v\nwant %v", tau, mode, got, want)
			}
			// Additive counters survive the merge: every pair the
			// single-node join evaluated exactly was evaluated exactly
			// somewhere in the cluster.
			if gotSt.ExactComputed != wantSt.ExactComputed {
				t.Errorf("tau %g mode %v: exact_computed = %d clustered, %d single-node", tau, mode, gotSt.ExactComputed, wantSt.ExactComputed)
			}
		}
	}
}

// TestClusterTopKIdentity: the distributed top-k merge reconstructs
// corpus.TopKAcross exactly — each range's local top-k under the global
// (dist, tree, root) order contains every global winner.
func TestClusterTopKIdentity(t *testing.T) {
	path := buildSnapshot(t, 500)
	a1, _ := startWorker(t, path)
	a2, _ := startWorker(t, path)
	co := cluster.NewCoordinator([]string{a1, a2})

	ref, err := corpus.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	e := ref.Engine()
	query := gen.Random(501, gen.RandomSpec{Size: 10, MaxDepth: 4, MaxFanout: 3, Labels: 8})

	for _, k := range []int{1, 5, 1000} {
		want, _ := ref.TopKAcross(e, ref.PrepareQuery(e, query), k)
		got, _, err := co.TopK(query, k)
		if err != nil {
			t.Fatalf("k %d: %v", k, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k %d: clustered topk diverged\ngot  %v\nwant %v", k, got, want)
		}
	}
}

// TestClusterWorkerKillReassignment: a worker that dies mid-stream
// loses only its in-flight range — the coordinator drops the partial
// results, retires the worker, and re-dispatches the range, so the
// merged match set is still exactly the single-node one (nothing lost,
// nothing duplicated).
func TestClusterWorkerKillReassignment(t *testing.T) {
	path := buildSnapshot(t, 700)
	a1, _ := startWorker(t, path)
	a2, w2 := startWorker(t, path)
	a3, _ := startWorker(t, path)
	// Dies while streaming its first match frame: the info exchange
	// succeeds (only data frames count), the first range it takes fails
	// mid-stream.
	w2.FailAfterFrames(1)
	co := cluster.NewCoordinator([]string{a1, a2, a3})

	ref, err := corpus.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	e := ref.Engine()
	// tau = +Inf: every pair matches, so every range streams frames and
	// the armed worker is guaranteed to die.
	want, _ := ref.Join(e, math.Inf(1), batch.JoinOptions{})
	got, _, err := co.Join(math.Inf(1), batch.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("join after worker kill diverged (%d vs %d matches)", len(got), len(want))
	}
	// The fault actually fired: the worker's listener is closed.
	if conn, err := net.Dial("tcp", a2); err == nil {
		conn.Close()
		t.Fatal("armed worker still accepting connections — the kill never happened")
	}
}

// TestClusterAllWorkersDead: when every worker dies with ranges
// outstanding, the coordinator reports the failure rather than
// returning a silently partial match set.
func TestClusterAllWorkersDead(t *testing.T) {
	path := buildSnapshot(t, 900)
	a1, w1 := startWorker(t, path)
	w1.FailAfterFrames(1)
	co := cluster.NewCoordinator([]string{a1})
	if _, _, err := co.Join(math.Inf(1), batch.JoinOptions{}); err == nil {
		t.Fatal("join with no surviving workers returned success")
	}
}

// TestClusterSnapshotMismatch: workers over different snapshots must be
// refused up front — partitioning positions across diverging corpora
// would merge garbage quietly.
func TestClusterSnapshotMismatch(t *testing.T) {
	a1, _ := startWorker(t, buildSnapshot(t, 300))
	a2, _ := startWorker(t, buildSnapshot(t, 301))
	co := cluster.NewCoordinator([]string{a1, a2})
	if _, _, err := co.Join(3, batch.JoinOptions{}); err == nil {
		t.Fatal("join across mismatched snapshots returned success")
	}
	if _, err := co.Info(); err == nil {
		t.Fatal("Info across mismatched snapshots returned success")
	}
}
