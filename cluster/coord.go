package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"repro/batch"
	"repro/corpus"
	"repro/internal/tree"
)

// Coordinator partitions join and top-k evaluations over a set of
// worker addresses. All workers must hold the same snapshot (verified
// by fingerprint before any work is dispatched). The position space is
// split into more ranges than workers so a fast worker picks up slack
// from a slow one, and a worker that dies mid-range loses only that
// range: its buffered partial results are dropped and the whole range
// is re-dispatched to a live worker, so the merged result has no lost
// and no duplicated matches.
type Coordinator struct {
	addrs []string

	// RangesPerWorker oversizes the task queue for load balancing
	// (default 4).
	RangesPerWorker int

	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
}

// NewCoordinator returns a coordinator over the given worker addresses.
func NewCoordinator(addrs []string) *Coordinator {
	return &Coordinator{addrs: append([]string(nil), addrs...)}
}

func (co *Coordinator) dial(addr string) (net.Conn, error) {
	d := co.DialTimeout
	if d <= 0 {
		d = 5 * time.Second
	}
	return net.DialTimeout("tcp", addr, d)
}

// roundTrip runs one request against one worker and collects its data
// frames. It returns errWorkerRefused (wrapped) when the worker sent an
// "error" frame, and the transport error when the stream died before
// "done" — the caller treats the former as fatal and the latter as a
// dead worker.
func (co *Coordinator) roundTrip(addr string, req *Request) (frames []Frame, done Frame, err error) {
	conn, err := co.dial(addr)
	if err != nil {
		return nil, Frame{}, err
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := writeMsg(bw, req); err != nil {
		return nil, Frame{}, err
	}
	if err := bw.Flush(); err != nil {
		return nil, Frame{}, err
	}
	br := bufio.NewReader(conn)
	for {
		var fr Frame
		if err := readMsg(br, &fr); err != nil {
			return nil, Frame{}, fmt.Errorf("cluster: worker %s died mid-range: %w", addr, err)
		}
		switch fr.Kind {
		case "done", "info":
			return frames, fr, nil
		case "error":
			return nil, Frame{}, fmt.Errorf("%w: %s: %s", errWorkerRefused, addr, fr.Err)
		default:
			frames = append(frames, fr)
		}
	}
}

// Info queries every worker's snapshot fingerprint and returns the
// agreed tree count. Workers that disagree — or can't be reached — are
// an error: partitioning positions across diverging snapshots would
// produce garbage quietly.
func (co *Coordinator) Info() (int, error) {
	if len(co.addrs) == 0 {
		return 0, errors.New("cluster: no workers")
	}
	var count int
	var sum uint64
	for i, addr := range co.addrs {
		_, fr, err := co.roundTrip(addr, &Request{Op: "info"})
		if err != nil {
			return 0, fmt.Errorf("cluster: worker %s: %w", addr, err)
		}
		if i == 0 {
			count, sum = fr.Count, fr.IDSum
		} else if fr.Count != count || fr.IDSum != sum {
			return 0, fmt.Errorf("cluster: worker %s holds a different snapshot (%d trees, fp %x; first worker has %d, %x)",
				addr, fr.Count, fr.IDSum, count, sum)
		}
	}
	return count, nil
}

// rangeTask is one position range awaiting evaluation.
type rangeTask struct{ idx, lo, hi int }

// runRanges splits [0, count) into tasks and fans them over the
// workers. Results commit per range on its "done" frame; a transport
// failure returns the range to the queue and retires the worker. It
// fails only when a worker refuses a request or no live workers remain
// with work outstanding.
func (co *Coordinator) runRanges(count int, mkReq func(lo, hi int) *Request) (frames [][]Frame, dones []Frame, err error) {
	nr := co.RangesPerWorker
	if nr <= 0 {
		nr = 4
	}
	nRanges := nr * len(co.addrs)
	if nRanges > count {
		nRanges = count
	}
	if nRanges == 0 {
		return nil, nil, nil
	}
	frames = make([][]Frame, nRanges)
	dones = make([]Frame, nRanges)

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		pending []rangeTask
		left    = nRanges
		fatal   error
	)
	for r := 0; r < nRanges; r++ {
		pending = append(pending, rangeTask{idx: r, lo: r * count / nRanges, hi: (r + 1) * count / nRanges})
	}

	var wg sync.WaitGroup
	for _, addr := range co.addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			for {
				mu.Lock()
				// An empty queue with uncommitted ranges means some range is
				// in flight elsewhere and may yet be requeued by a dying
				// worker — wait for it rather than retiring a live worker
				// the reassignment will need.
				for fatal == nil && left > 0 && len(pending) == 0 {
					cond.Wait()
				}
				if fatal != nil || left == 0 {
					mu.Unlock()
					return
				}
				t := pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				mu.Unlock()

				fs, done, err := co.roundTrip(addr, mkReq(t.lo, t.hi))
				mu.Lock()
				switch {
				case err == nil:
					frames[t.idx], dones[t.idx] = fs, done
					left--
					cond.Broadcast()
				case errors.Is(err, errWorkerRefused):
					fatal = err
					pending = append(pending, t)
					cond.Broadcast()
				default:
					// Dead worker: requeue the range, wake a waiter to take
					// it over, retire this goroutine.
					pending = append(pending, t)
					cond.Broadcast()
					mu.Unlock()
					return
				}
				mu.Unlock()
			}
		}(addr)
	}
	wg.Wait()
	if fatal != nil {
		return nil, nil, fatal
	}
	if left > 0 {
		return nil, nil, fmt.Errorf("cluster: %d ranges unassigned — no live workers remain", left)
	}
	return frames, dones, nil
}

// Join runs the distributed similarity self-join: the exact match set
// (and per-match distances) of corpus.Join over the workers' shared
// snapshot, with JoinStats summed across ranges so counters stay
// truthful. Elapsed is the coordinator's wall time; IndexTime the
// largest per-range probe time.
func (co *Coordinator) Join(tau float64, opts batch.JoinOptions) ([]corpus.Match, batch.JoinStats, error) {
	start := time.Now()
	count, err := co.Info()
	if err != nil {
		return nil, batch.JoinStats{}, err
	}
	req := func(lo, hi int) *Request {
		r := &Request{Op: "join", Tau: tau, Mode: opts.Mode, Q: opts.Q, Lo: lo, Hi: hi}
		if math.IsInf(tau, 1) {
			r.Tau, r.TauInf = 0, true
		}
		return r
	}
	frames, dones, err := co.runRanges(count, req)
	if err != nil {
		return nil, batch.JoinStats{}, err
	}
	var ms []corpus.Match
	var st batch.JoinStats
	for i := range frames {
		for _, fr := range frames[i] {
			ms = append(ms, corpus.Match{I: corpus.ID(fr.I), J: corpus.ID(fr.J), Dist: fr.Dist})
		}
		if dones[i].JoinStats != nil {
			st.Merge(*dones[i].JoinStats)
		}
	}
	// Ranges partition the probe side (J), so pairs are disjoint across
	// ranges; sorting restores single-node (I, J) order.
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].I != ms[b].I {
			return ms[a].I < ms[b].I
		}
		return ms[a].J < ms[b].J
	})
	st.Elapsed = time.Since(start)
	return ms, st, nil
}

// TopK runs the distributed top-k query: each worker returns its
// range's local top k under the global (distance, tree, root) order,
// and the merge keeps the k best — exactly corpus.TopKAcross's answer,
// since a globally top-k subtree is top-k within its own range.
func (co *Coordinator) TopK(query *tree.Tree, k int) ([]corpus.CrossMatch, batch.Stats, error) {
	if k <= 0 {
		return nil, batch.Stats{}, errors.New("cluster: k must be positive")
	}
	count, err := co.Info()
	if err != nil {
		return nil, batch.Stats{}, err
	}
	qw := treeWire(query)
	frames, dones, err := co.runRanges(count, func(lo, hi int) *Request {
		return &Request{Op: "topk", K: k, Query: qw, Lo: lo, Hi: hi}
	})
	if err != nil {
		return nil, batch.Stats{}, err
	}
	var ms []corpus.CrossMatch
	var st batch.Stats
	for i := range frames {
		for _, fr := range frames[i] {
			ms = append(ms, corpus.CrossMatch{Tree: corpus.ID(fr.Tree), Root: fr.Root, Dist: fr.Dist})
		}
		if dones[i].Stats != nil {
			st.Merge(*dones[i].Stats)
		}
	}
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].Dist != ms[b].Dist {
			return ms[a].Dist < ms[b].Dist
		}
		if ms[a].Tree != ms[b].Tree {
			return ms[a].Tree < ms[b].Tree
		}
		return ms[a].Root < ms[b].Root
	})
	if len(ms) > k {
		ms = ms[:k]
	}
	return ms, st, nil
}
