package cluster

import (
	"bufio"
	"errors"
	"hash/fnv"
	"math"
	"net"
	"strconv"
	"sync/atomic"

	"repro/batch"
	"repro/corpus"
	"repro/internal/tree"
)

// Worker serves join/top-k range evaluations over a corpus it holds —
// typically one Loaded from the same snapshot file every other worker
// and the coordinator agreed on. One request per connection; matches
// stream back as they are known, a "done" frame carries the range's
// stats, and the connection closes.
type Worker struct {
	c *corpus.Corpus
	e *batch.Engine

	count int
	idSum uint64

	ln net.Listener

	// Fault injection for tests: when failAfter > 0, the worker kills
	// itself — listener and live connection — once it has sent that many
	// data frames in total, simulating a crash mid-stream.
	failAfter atomic.Int64
	sent      atomic.Int64
}

// NewWorker wraps c for serving. Engine options are as for
// corpus.Engine — WithWorkers sizes the worker's local evaluation
// parallelism. The corpus is warmed so the first range pays no
// preparation cost.
func NewWorker(c *corpus.Corpus, opts ...batch.Option) *Worker {
	w := &Worker{c: c, e: c.Engine(opts...)}
	c.Warm(w.e)
	w.count, w.idSum = snapshotSignature(c)
	return w
}

// snapshotSignature fingerprints the corpus contents — IDs, shapes,
// and labels — so a coordinator can refuse to partition across workers
// holding different snapshots. An ID-only fingerprint would collide for
// any two corpora grown the same way, which is exactly the mistake
// (same path, different file) this check exists to catch.
func snapshotSignature(c *corpus.Corpus) (int, uint64) {
	ids := c.IDs()
	h := fnv.New64a()
	var b [10]byte
	uv := func(v uint64) {
		n := 0
		for v >= 0x80 {
			b[n] = byte(v) | 0x80
			v >>= 7
			n++
		}
		b[n] = byte(v)
		h.Write(b[:n+1])
	}
	for _, id := range ids {
		uv(uint64(id))
		t, ok := c.Tree(corpus.ID(id))
		if !ok {
			continue
		}
		n := t.Len()
		uv(uint64(n))
		for v := 0; v < n; v++ {
			lb := t.Label(v)
			uv(uint64(len(lb)))
			h.Write([]byte(lb))
			uv(uint64(t.NumChildren(v)))
		}
	}
	return len(ids), h.Sum64()
}

// FailAfterFrames arms the crash fault: the worker dies after sending n
// data frames. Zero disarms.
func (w *Worker) FailAfterFrames(n int64) { w.failAfter.Store(n) }

// Serve accepts connections on ln until it is closed.
func (w *Worker) Serve(ln net.Listener) error {
	w.ln = ln
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go w.handleConn(conn)
	}
}

// Close stops the listener; in-flight connections finish on their own.
func (w *Worker) Close() error {
	if w.ln != nil {
		return w.ln.Close()
	}
	return nil
}

// send writes one data frame, honouring the crash fault.
func (w *Worker) send(bw *bufio.Writer, conn net.Conn, fr *Frame) bool {
	if fa := w.failAfter.Load(); fa > 0 && w.sent.Add(1) >= fa {
		conn.Close()
		if w.ln != nil {
			w.ln.Close()
		}
		return false
	}
	return writeMsg(bw, fr) == nil
}

func (w *Worker) handleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var req Request
	if err := readMsg(br, &req); err != nil {
		return
	}
	switch req.Op {
	case "info":
		writeMsg(bw, &Frame{Kind: "info", Count: w.count, IDSum: w.idSum})
	case "join":
		w.handleJoin(bw, conn, &req)
	case "topk":
		w.handleTopK(bw, conn, &req)
	default:
		writeMsg(bw, &Frame{Kind: "error", Err: "unknown op " + strconv.Quote(req.Op)})
	}
	bw.Flush()
}

func (w *Worker) handleJoin(bw *bufio.Writer, conn net.Conn, req *Request) {
	tau := req.Tau
	if req.TauInf {
		tau = math.Inf(1)
	}
	ms, st := w.c.JoinRange(w.e, tau, batch.JoinOptions{Mode: req.Mode, Q: req.Q}, req.Lo, req.Hi)
	for i := range ms {
		fr := Frame{Kind: "match", I: int64(ms[i].I), J: int64(ms[i].J), Dist: ms[i].Dist}
		if !w.send(bw, conn, &fr) {
			return
		}
	}
	writeMsg(bw, &Frame{Kind: "done", JoinStats: &st})
}

func (w *Worker) handleTopK(bw *bufio.Writer, conn net.Conn, req *Request) {
	if req.Query == nil || req.K <= 0 {
		writeMsg(bw, &Frame{Kind: "error", Err: "topk needs a query tree and k > 0"})
		return
	}
	t, err := tree.FromPostorder(tree.PostorderForm{Labels: req.Query.Labels, ChildCounts: req.Query.Counts})
	if err != nil {
		writeMsg(bw, &Frame{Kind: "error", Err: "bad query tree: " + err.Error()})
		return
	}
	q := w.c.PrepareQuery(w.e, t)
	ms, st := w.c.TopKRange(w.e, q, req.K, req.Lo, req.Hi)
	for i := range ms {
		fr := Frame{Kind: "cross", Tree: int64(ms[i].Tree), Root: ms[i].Root, Dist: ms[i].Dist}
		if !w.send(bw, conn, &fr) {
			return
		}
	}
	writeMsg(bw, &Frame{Kind: "done", Stats: &st})
}

// treeWire converts a query tree to its wire form.
func treeWire(t *tree.Tree) *TreeWire {
	n := t.Len()
	tw := &TreeWire{Labels: make([]string, n), Counts: make([]int, n)}
	for v := 0; v < n; v++ {
		tw.Labels[v] = t.Label(v)
		tw.Counts[v] = t.NumChildren(v)
	}
	return tw
}
