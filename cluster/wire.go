// Package cluster distributes the corpus read path over processes: a
// coordinator partitions a similarity join or top-k query into position
// ranges over a shared snapshot, fans the ranges out to worker
// processes (each of which Loads the same snapshot file and evaluates
// its ranges with corpus.JoinRange / corpus.TopKRange), and merges the
// streamed results into exactly the single-node answer. It also
// implements the replication follower: a corpus that tails a primary's
// write-ahead log over HTTP and converges to a byte-identical store
// (see Follower).
//
// The worker protocol is deliberately small: one request per TCP
// connection, every message framed as uvarint(length) | JSON. The
// worker answers a request with a stream of data frames (one per
// match) and a terminal "done" frame carrying its evaluation stats, so
// the coordinator can commit a range's results atomically — a
// connection that dies before "done" contributes nothing, and the
// coordinator re-dispatches the whole range to another worker, which
// is what makes worker failure lossless and duplicate-free.
package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/batch"
)

// Request is the single message a coordinator sends on a worker
// connection.
type Request struct {
	Op string `json:"op"` // "info", "join", "topk"

	// Join. Tau is the threshold; TauInf marks an unbounded join (JSON
	// cannot carry +Inf). Mode/Q mirror batch.JoinOptions.
	Tau    float64         `json:"tau,omitempty"`
	TauInf bool            `json:"tauInf,omitempty"`
	Mode   batch.IndexMode `json:"mode,omitempty"`
	Q      int             `json:"q,omitempty"`

	// TopK.
	K     int       `json:"k,omitempty"`
	Query *TreeWire `json:"query,omitempty"`

	// The snapshot position range to evaluate, [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// TreeWire carries a query tree in the codec's postorder form.
type TreeWire struct {
	Labels []string `json:"labels"`
	Counts []int    `json:"counts"`
}

// Frame is one message of a worker's response stream.
type Frame struct {
	Kind string `json:"kind"` // "info", "match", "cross", "done", "error"

	// info: the worker's view of the snapshot, so the coordinator can
	// verify all workers loaded the same one before partitioning.
	Count int    `json:"count,omitempty"`
	IDSum uint64 `json:"idSum,omitempty"`

	// match (join): one matching pair, corpus IDs.
	I    int64   `json:"i,omitempty"`
	J    int64   `json:"j,omitempty"`
	Dist float64 `json:"dist,omitempty"`

	// cross (topk): one candidate subtree, corpus ID + postorder root.
	Tree int64 `json:"tree,omitempty"`
	Root int   `json:"root,omitempty"`

	// done: per-range evaluation stats.
	JoinStats *batch.JoinStats `json:"joinStats,omitempty"`
	Stats     *batch.Stats     `json:"stats,omitempty"`

	// error: the worker evaluated and refused (bad request, wrong
	// snapshot); the coordinator aborts rather than retries.
	Err string `json:"err,omitempty"`
}

// maxWireMsg bounds a framed message's claimed length before
// allocation. Messages are one JSON object each; nothing legal
// approaches this.
const maxWireMsg = 1 << 24

// writeMsg frames and writes one message. The caller flushes.
func writeMsg(bw *bufio.Writer, v any) error {
	p, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var lead [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lead[:], uint64(len(p)))
	if _, err := bw.Write(lead[:n]); err != nil {
		return err
	}
	_, err = bw.Write(p)
	return err
}

// readMsg reads one framed message into v. A cleanly closed stream at a
// message boundary returns io.EOF; a message cut anywhere else returns
// io.ErrUnexpectedEOF.
func readMsg(br *bufio.Reader, v any) error {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return io.ErrUnexpectedEOF
	}
	if n > maxWireMsg {
		return fmt.Errorf("cluster: message claims %d bytes", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(br, p); err != nil {
		return io.ErrUnexpectedEOF
	}
	return json.Unmarshal(p, v)
}

// errWorkerRefused wraps an "error" frame: the worker is alive and
// rejected the request, so retrying elsewhere cannot help.
var errWorkerRefused = errors.New("cluster: worker refused request")
