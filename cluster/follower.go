package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/corpus"
)

// Follower replicates a primary tedd's corpus: it tails the primary's
// write-ahead log over HTTP (GET /v1/wal, chunked frames in the log's
// on-disk framing), applies each record with the log's idempotent
// set-semantics replay, and persists the identical bytes in its own
// local log — so the follower's store converges byte-identically and
// survives its own restarts. When the primary has truncated past the
// follower's position (a checkpoint the follower never saw, or a fresh
// follower with no position at all), the follower ships a checkpoint:
// it fetches the primary's snapshot bytes (GET /v1/checkpoint), swaps
// its local corpus for them, and resumes tailing from the position the
// snapshot captured.
//
// The current corpus is behind an atomic pointer — a checkpoint ship
// replaces it — so serving code must re-read Corpus() per request (or
// hook OnSwap) rather than caching the pointer.
type Follower struct {
	primary string
	path    string
	opts    []corpus.Option
	client  *http.Client

	cur atomic.Pointer[corpus.Corpus]

	// OnSwap, if set, runs after a checkpoint ship replaces the corpus,
	// with the retired and the new corpus. The retired one is already
	// Closed.
	OnSwap func(old, new *corpus.Corpus)

	// PollWait is the long-poll window asked of the primary per stream
	// (default 20s).
	PollWait time.Duration

	mu          sync.Mutex
	pos         corpus.ReplPos // primary position applied through
	primarySeq  int            // primary's latest announced position in pos.Gen
	lastContact time.Time      // last byte heard from the primary
	lastFresh   time.Time      // last moment we knew we were fully caught up
	records     int64
	ships       int64
	lastErr     error
}

// FollowerStats is a point-in-time view of replication progress, for
// /v1/stats and operator eyes.
type FollowerStats struct {
	Primary     string    `json:"primary"`
	Gen         string    `json:"gen"`
	AppliedSeq  int       `json:"appliedSeq"`
	PrimarySeq  int       `json:"primarySeq"`
	Lag         int       `json:"lag"`
	Records     int64     `json:"records"`
	Ships       int64     `json:"checkpointShips"`
	LastContact time.Time `json:"lastContact,omitzero"`
	LastErr     string    `json:"lastErr,omitempty"`
}

// errNeedShip marks a 409 from /v1/wal: our position is gone and only a
// checkpoint ship can resync.
var errNeedShip = errors.New("cluster: follower position truncated away")

// NewFollower opens (or creates) the local corpus at path and prepares
// to follow the primary at primaryURL (e.g. "http://127.0.0.1:7301").
// Options are corpus.Open options for the local store. The follower
// serves whatever the local snapshot holds from the first moment;
// convergence starts when Run does. A follower always begins with a
// checkpoint ship — it keeps no durable record of its primary position,
// and guessing one risks silent divergence.
func NewFollower(path, primaryURL string, opts ...corpus.Option) (*Follower, error) {
	c, err := corpus.Open(path, opts...)
	if err != nil {
		return nil, err
	}
	f := &Follower{
		primary: primaryURL,
		path:    path,
		opts:    opts,
		client:  &http.Client{},
	}
	f.cur.Store(c)
	return f, nil
}

// Corpus returns the follower's current corpus. Re-read per use: a
// checkpoint ship replaces it.
func (f *Follower) Corpus() *corpus.Corpus { return f.cur.Load() }

// Stats snapshots replication progress.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	lag := f.primarySeq - f.pos.Seq
	if lag < 0 {
		lag = 0
	}
	st := FollowerStats{
		Primary:     f.primary,
		Gen:         f.pos.Gen,
		AppliedSeq:  f.pos.Seq,
		PrimarySeq:  f.primarySeq,
		Lag:         lag,
		Records:     f.records,
		Ships:       f.ships,
		LastContact: f.lastContact,
	}
	if f.lastErr != nil {
		st.LastErr = f.lastErr.Error()
	}
	return st
}

// Staleness reports how long ago the follower last knew it was fully
// caught up with the primary. Before the first successful contact it is
// effectively infinite. Read guards compare this against a bound.
func (f *Follower) Staleness() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.lastFresh.IsZero() {
		return time.Duration(1<<63 - 1)
	}
	return time.Since(f.lastFresh)
}

// Run tails the primary until ctx is done, shipping checkpoints and
// backing off on transport errors as needed. It returns ctx.Err() on
// cancellation; any other return is a permanent local failure (the
// local store refused to apply or the disk is broken).
func (f *Follower) Run(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		err := f.streamOnce(ctx)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case err == nil:
			backoff = 100 * time.Millisecond
			continue // clean stream end: reconnect immediately
		case errors.Is(err, errNeedShip):
			if serr := f.ship(ctx); serr != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				f.noteErr(serr)
			} else {
				backoff = 100 * time.Millisecond
				continue
			}
		default:
			f.noteErr(err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

func (f *Follower) noteErr(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
}

// streamOnce opens one /v1/wal stream at the current position and
// applies frames until the stream ends. A clean end (the primary closed
// at a frame boundary — poll window over, or generation rotated)
// returns nil; errNeedShip reports a 409.
func (f *Follower) streamOnce(ctx context.Context) error {
	f.mu.Lock()
	pos := f.pos
	f.mu.Unlock()
	if pos.Gen == "" {
		return errNeedShip // never synced: only a ship can establish a position
	}

	wait := f.PollWait
	if wait <= 0 {
		wait = 20 * time.Second
	}
	q := url.Values{
		"gen":  {pos.Gen},
		"from": {strconv.Itoa(pos.Seq)},
		"wait": {wait.String()},
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.primary+"/v1/wal?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return errNeedShip
	default:
		return fmt.Errorf("cluster: primary /v1/wal: %s", resp.Status)
	}
	// The server may have mapped our position across a generation
	// rotation we were exactly caught up over; adopt its view.
	gen := resp.Header.Get("X-Ted-Wal-Gen")
	if gen == "" {
		gen = pos.Gen
	}
	seq := pos.Seq
	if s := resp.Header.Get("X-Ted-Wal-Seq"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			seq = v
		}
	}
	f.mu.Lock()
	if f.pos.Gen != gen {
		f.primarySeq = seq // new generation: old high-water mark is meaningless
	}
	pos = corpus.ReplPos{Gen: gen, Seq: seq}
	f.pos = pos
	f.lastContact = time.Now()
	f.mu.Unlock()

	br := bufio.NewReader(resp.Body)
	for {
		body, err := corpus.ReadWALFrame(br)
		if err == io.EOF {
			return nil // clean close at a frame boundary
		}
		if err != nil {
			// Torn mid-frame or checksum mismatch: the partial frame is
			// discarded unapplied; reconnect from the last applied
			// position.
			return err
		}
		if seq, ok := corpus.DecodeProgress(body); ok {
			f.mu.Lock()
			f.primarySeq = seq
			f.lastContact = time.Now()
			if f.pos.Seq >= seq {
				f.lastFresh = time.Now()
			}
			f.mu.Unlock()
			continue
		}
		if err := f.Corpus().ApplyReplicated(body); err != nil {
			return fmt.Errorf("cluster: apply replicated record at %s/%d: %w", pos.Gen, pos.Seq, err)
		}
		pos.Seq++
		f.mu.Lock()
		f.pos = pos
		f.records++
		f.lastContact = time.Now()
		if pos.Seq >= f.primarySeq {
			f.primarySeq = pos.Seq
			f.lastFresh = time.Now()
		}
		f.mu.Unlock()
	}
}

// ship fetches the primary's snapshot and replaces the local corpus
// with it: close the old store (releasing its log lock), write the
// snapshot over the local path, drop the now-meaningless local log, and
// reopen. The new corpus's position is the one the snapshot captured.
func (f *Follower) ship(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.primary+"/v1/checkpoint", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: primary /v1/checkpoint: %s", resp.Status)
	}
	gen := resp.Header.Get("X-Ted-Wal-Gen")
	seq, err := strconv.Atoi(resp.Header.Get("X-Ted-Wal-Seq"))
	if gen == "" || err != nil {
		return errors.New("cluster: /v1/checkpoint response lacks position headers")
	}
	snap, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}

	old := f.cur.Load()
	if err := old.Close(); err != nil {
		// The old log is being discarded wholesale; a sync failure on it
		// must not block resync.
		f.noteErr(err)
	}
	tmp := f.path + ".ship"
	if err := os.WriteFile(tmp, snap, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, f.path); err != nil {
		os.Remove(tmp)
		return err
	}
	// The local log describes the retired store; replaying it over the
	// shipped snapshot would corrupt. Remove before reopening.
	if err := os.Remove(f.path + ".wal"); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	c, err := corpus.Open(f.path, f.opts...)
	if err != nil {
		return err
	}
	f.cur.Store(c)
	f.mu.Lock()
	f.pos = corpus.ReplPos{Gen: gen, Seq: seq}
	f.primarySeq = seq
	f.ships++
	f.lastContact = time.Now()
	f.lastFresh = time.Now()
	f.lastErr = nil
	f.mu.Unlock()
	if f.OnSwap != nil {
		f.OnSwap(old, c)
	}
	return nil
}
