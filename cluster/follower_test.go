package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/batch"
	"repro/cluster"
	"repro/corpus"
	"repro/gen"
	"repro/server"
)

func addTrees(t *testing.T, c *corpus.Corpus, seed, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		c.Add(gen.Random(int64(seed+i), gen.RandomSpec{Size: 12, MaxDepth: 5, MaxFanout: 3, Labels: 6}))
	}
}

// waitConverged polls until the follower holds want trees and reports
// zero lag against the primary's announced position.
func waitConverged(t *testing.T, fl *cluster.Follower, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := fl.Stats()
		if fl.Corpus().Len() == want && st.Lag == 0 && st.Gen != "" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower stuck at %d trees, want %d (stats %+v)", fl.Corpus().Len(), want, fl.Stats())
}

// sameTrees asserts two corpora hold the identical ID → tree mapping.
func sameTrees(t *testing.T, primary, replica *corpus.Corpus) {
	t.Helper()
	pi, ri := primary.IDs(), replica.IDs()
	if !reflect.DeepEqual(pi, ri) {
		t.Fatalf("ID sets diverged: primary %v, replica %v", pi, ri)
	}
	for _, id := range pi {
		pt, _ := primary.Tree(id)
		rt, ok := replica.Tree(id)
		if !ok || pt.String() != rt.String() {
			t.Fatalf("tree %d diverged: primary %q, replica %v", id, pt.String(), rt)
		}
	}
}

// startFollowerRun launches fl.Run and returns a cancel that waits for
// the run loop to exit — restarts must not overlap runs.
func startFollowerRun(fl *cluster.Follower) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		fl.Run(ctx)
	}()
	return func() {
		cancel()
		<-done
	}
}

// TestFollowerMidLogCatchUp: a fresh follower ships the primary's
// checkpoint (it keeps no durable position), then tails the live WAL
// stream; mutations made after it attached arrive over the wire, and a
// join on the replica answers exactly like the primary.
func TestFollowerMidLogCatchUp(t *testing.T) {
	dir := t.TempDir()
	pc, err := corpus.Open(filepath.Join(dir, "primary.tedc"), corpus.WithHistogramIndex())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	addTrees(t, pc, 100, 8)

	ts := httptest.NewServer(server.New(pc))
	defer ts.Close()

	fl, err := cluster.NewFollower(filepath.Join(dir, "replica.tedc"), ts.URL, corpus.WithHistogramIndex())
	if err != nil {
		t.Fatal(err)
	}
	fl.PollWait = 200 * time.Millisecond
	stop := startFollowerRun(fl)
	defer stop()

	waitConverged(t, fl, 8)
	if st := fl.Stats(); st.Ships != 1 {
		t.Fatalf("fresh follower shipped %d checkpoints, want exactly 1 (stats %+v)", st.Ships, st)
	}

	// Mid-log: these mutations postdate the ship and must arrive as
	// replicated WAL records, not another ship.
	addTrees(t, pc, 200, 5)
	waitConverged(t, fl, 13)
	st := fl.Stats()
	if st.Ships != 1 {
		t.Fatalf("live tail resorted to a checkpoint ship (stats %+v)", st)
	}
	if st.Records < 5 {
		t.Fatalf("only %d records applied over the stream, want ≥ 5", st.Records)
	}
	sameTrees(t, pc, fl.Corpus())

	// The replica answers queries identically.
	rc := fl.Corpus()
	pe, re := pc.Engine(), rc.Engine()
	wantJ, _ := pc.Join(pe, 4, batch.JoinOptions{})
	gotJ, _ := rc.Join(re, 4, batch.JoinOptions{})
	if !reflect.DeepEqual(gotJ, wantJ) {
		t.Fatalf("replica join diverged:\ngot  %v\nwant %v", gotJ, wantJ)
	}
	if fl.Staleness() > time.Minute {
		t.Fatalf("converged follower reports staleness %v", fl.Staleness())
	}
}

// TestFollowerCheckpointShipAfterTruncate: the primary checkpoints —
// folding WAL records the detached follower never saw into the snapshot
// and truncating the log — so the follower's position is gone. On
// reconnect it must get 409, ship the new checkpoint, and converge on
// the post-truncation mutations over the fresh generation's stream.
func TestFollowerCheckpointShipAfterTruncate(t *testing.T) {
	dir := t.TempDir()
	pc, err := corpus.Open(filepath.Join(dir, "primary.tedc"))
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	addTrees(t, pc, 100, 6)

	ts := httptest.NewServer(server.New(pc))
	defer ts.Close()

	fl, err := cluster.NewFollower(filepath.Join(dir, "replica.tedc"), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	fl.PollWait = 200 * time.Millisecond
	stop := startFollowerRun(fl)
	waitConverged(t, fl, 6)
	stop() // detach at (gen0, 6)

	// Records the follower never saw, folded away by the checkpoint: its
	// position no longer maps onto any generation the primary retains.
	addTrees(t, pc, 200, 3)
	if err := pc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	addTrees(t, pc, 300, 2)

	stop = startFollowerRun(fl)
	defer stop()
	waitConverged(t, fl, 11)
	st := fl.Stats()
	if st.Ships != 2 {
		t.Fatalf("reattaching past a truncation shipped %d checkpoints, want 2 (stats %+v)", st.Ships, st)
	}
	sameTrees(t, pc, fl.Corpus())
}

// mangler corrupts the next /v1/wal response in a configured way, then
// passes everything through untouched — the wire-fault injector for the
// replication stream.
type mangler struct {
	inner http.Handler
	mode  atomic.Value // "", "flip" (corrupt a byte), "trunc" (torn tail)
	fired atomic.Int64
}

func (m *mangler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mode, _ := m.mode.Load().(string)
	if mode == "" || r.URL.Path != "/v1/wal" {
		m.inner.ServeHTTP(w, r)
		return
	}
	m.mode.Store("")
	m.fired.Add(1)
	rec := httptest.NewRecorder()
	m.inner.ServeHTTP(rec, r)
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	body := rec.Body.Bytes()
	if len(body) == 0 {
		return
	}
	switch mode {
	case "flip":
		body[len(body)-1] ^= 0x40 // last byte is the final frame's checksum
		w.Write(body)
	case "trunc":
		w.Write(body[:len(body)-1]) // close mid-frame: a torn tail on the wire
	}
}

// TestFollowerStreamCorruption: a flipped byte and a torn tail on the
// WAL-over-HTTP stream must be detected by the frame checksum/framing,
// the partial frame discarded, and the follower reconnect and converge
// — corruption delays replication, it never poisons the replica.
func TestFollowerStreamCorruption(t *testing.T) {
	dir := t.TempDir()
	pc, err := corpus.Open(filepath.Join(dir, "primary.tedc"))
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	addTrees(t, pc, 100, 5)

	mg := &mangler{inner: server.New(pc)}
	ts := httptest.NewServer(mg)
	defer ts.Close()

	fl, err := cluster.NewFollower(filepath.Join(dir, "replica.tedc"), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	fl.PollWait = 200 * time.Millisecond
	stop := startFollowerRun(fl)
	waitConverged(t, fl, 5)
	stop()

	// Byte flip: detach, let the primary get ahead, corrupt the catch-up
	// response's final frame.
	addTrees(t, pc, 200, 4)
	mg.mode.Store("flip")
	stop = startFollowerRun(fl)
	waitConverged(t, fl, 9)
	stop()
	if mg.fired.Load() != 1 {
		t.Fatalf("flip fault fired %d times, want 1", mg.fired.Load())
	}

	// Torn tail: same shape, the response ends mid-frame instead.
	addTrees(t, pc, 300, 3)
	mg.mode.Store("trunc")
	stop = startFollowerRun(fl)
	defer stop()
	waitConverged(t, fl, 12)
	if mg.fired.Load() != 2 {
		t.Fatalf("trunc fault fired %d times in total, want 2", mg.fired.Load())
	}
	if st := fl.Stats(); st.Ships != 1 {
		t.Fatalf("wire corruption triggered %d checkpoint ships, want the initial 1 only (stats %+v)", st.Ships, st)
	}
	sameTrees(t, pc, fl.Corpus())
}
