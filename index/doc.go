// Package index provides inverted-index candidate generation for
// tree-similarity joins: given a corpus of trees and a distance threshold
// τ, an index generates the pairs that could possibly be within τ instead
// of enumerating all O(n²) pairs and filtering them afterwards.
//
// # Why candidate generation
//
// The batch engine's filtered join already avoids most exact
// tree-edit-distance computations by bracketing every pair with cheap
// lower and upper bounds, but it still *visits* every pair — the join
// stays quadratic in the corpus even when almost nothing matches. The
// indexes in this package flip the loop around, in the spirit of
// bounded-distance filtering (Jin et al. 2021, "Faster Algorithms for
// Bounded Tree Edit Distance"): per-tree signatures go into inverted
// posting lists once, and each query retrieves, in time proportional to
// the size of its posting lists, only the trees whose signature overlap
// makes a match possible. The join pipeline becomes
//
//	index probe  →  signature lower bound  →  bound filters  →  exact GTED
//	(generates        (O(1) per              (per pair,         (undecided
//	 candidates)       candidate)             unit cost)          middle only)
//
// and its cost is driven by the number of candidates, not the corpus
// size squared.
//
// # The two indexes
//
// [Histogram] keys trees by their label multiset. The posting-list merge
// computes the exact label intersection, which gives the classic O(1)
// lower bound max(|F|,|G|) − |labels ∩|; generation is provably complete
// for every threshold (a non-candidate pair provably cannot match). It
// is the default of batch.JoinIndexed: cheap to build, one posting per
// distinct label per tree, and strongest when labels are diverse.
//
// [PQGram] keys trees by their pq-gram profile — serialized label tuples
// that encode local structure, not just label content. It generates the
// trees sharing at least one gram and ranks them by pq-gram distance, so
// verification can visit the most similar candidates first. With stems of
// length p = 1 it carries the same completeness guarantee (see the type
// comment for the argument); with p ≥ 2 it is a high-recall heuristic.
// Prefer it over Histogram when labels alone are uninformative — corpora
// drawn from a tiny alphabet, or near-duplicate detection where most
// trees share most labels and only structure discriminates.
//
// Both indexes generate candidates for a self-join in "probe below"
// style: CandidatesBelow(q, τ, dst) returns only candidates with id < q,
// so iterating the queries in id order enumerates every unordered pair
// exactly once.
//
// # Stable ids, mutation, and sharding
//
// Trees are indexed under stable ids: Add auto-assigns the next unused
// id, Put indexes under a caller-chosen id (the id a corpus.Corpus
// assigned), and ids are never reused. Long-lived indexes mutate in
// place — Delete and Put-replacement tombstone the superseded postings
// through a per-tree generation counter, probes skip tombstones with
// one comparison, and a compaction pass (automatic once tombstones
// dominate, or explicit via Compact) rewrites the lists without them.
// The posting lists themselves are hash-sharded with per-shard locks:
// concurrent Add/Put/Delete and CandidatesBelow calls are safe, probes
// run fully in parallel on pooled accumulators, and a distributed join
// can own disjoint shards. Snapshot/Restore serialize the whole
// structure by profile (the lists are rebuilt with plain appends on
// restore), which is how package corpus persists its indexes.
//
// # Relation to the rest of the repository
//
// The indexes are deliberately engine-agnostic: they know trees and
// thresholds, not PreparedTrees or worker pools. batch.JoinIndexed builds
// an index over a prepared corpus, generates candidates sequentially,
// and fans the candidates out to its worker pool where the existing
// bound filters and arena-backed GTED runners finish the job; ted.Join
// exposes the same path via ted.WithIndex. corpus.Corpus maintains
// these indexes incrementally across mutations and process restarts,
// probing them per query and handing the pairs to batch.JoinCandidates.
// The standalone [PQGramDistance] is exported for callers that want the
// pq-gram pseudo-metric itself.
package index
