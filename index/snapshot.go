package index

import "fmt"

// Snapshot is the serializable state of an inverted index: the key table
// (interned labels or serialized grams) and one entry per live tree. The
// posting lists themselves are NOT part of a snapshot — they are exactly
// the inversion of the per-tree profiles, so Restore replays the
// profiles and rebuilds the lists with plain appends: no string hashing,
// no gram extraction, no sorting. That replay is what makes loading a
// persisted index O(bytes) instead of O(re-index).
type Snapshot struct {
	Keys    []string
	Entries []SnapshotEntry
	// NextID is the id the auto-assigning Add would hand out next, so a
	// restored index keeps allocating above every id ever used (a reused
	// id would alias a deleted tree's).
	NextID int
}

// SnapshotEntry is one live tree of a Snapshot.
type SnapshotEntry struct {
	ID   int
	Size int
	Prof []KeyCount
}

// KeyCount is one profile entry: an index into Snapshot.Keys and the
// key's multiplicity in the tree.
type KeyCount struct {
	Key   int32
	Count int32
}

// Snapshot captures the index's live state for serialization. Entries
// are ordered by id. Tombstones are not captured: restoring a snapshot
// yields a compacted index.
func (ix *Histogram) Snapshot() *Snapshot {
	// kmu is held across the tree-table read so no concurrent Put can
	// record a profile that references keys missing from this snapshot
	// (Put interns under kmu before writing the profile).
	ix.kmu.Lock()
	defer ix.kmu.Unlock()
	return ix.iv.snapshot(internedKeys(ix.ids))
}

// Snapshot captures the index's live state for serialization; see
// Histogram.Snapshot.
func (ix *PQGram) Snapshot() *Snapshot {
	ix.kmu.Lock()
	defer ix.kmu.Unlock()
	return ix.iv.snapshot(internedKeys(ix.ids))
}

// RestoreHistogram rebuilds a histogram index from a snapshot. It
// validates the snapshot (distinct keys, in-range profile references,
// positive counts, unique ids) and returns an error — never panics — on
// inconsistent input, so codecs can feed it untrusted data.
func RestoreHistogram(s *Snapshot) (*Histogram, error) {
	ix := NewHistogram()
	if err := restore(s, ix.ids, &ix.iv); err != nil {
		return nil, err
	}
	return ix, nil
}

// RestorePQGram rebuilds a (p, q)-gram index from a snapshot, with the
// same validation contract as RestoreHistogram. The caller supplies the
// gram parameters; they are not part of the snapshot.
func RestorePQGram(p, q int, s *Snapshot) (*PQGram, error) {
	if p < 1 || q < 1 {
		return nil, fmt.Errorf("index: pq-gram parameters must be positive, got (%d, %d)", p, q)
	}
	ix := NewPQGram(p, q)
	if err := restore(s, ix.ids, &ix.iv); err != nil {
		return nil, err
	}
	return ix, nil
}

func internedKeys(ids map[string]int32) []string {
	keys := make([]string, len(ids))
	for k, id := range ids {
		keys[id] = k
	}
	return keys
}

func (iv *inverted) snapshot(keys []string) *Snapshot {
	iv.mu.RLock()
	defer iv.mu.RUnlock()
	s := &Snapshot{Keys: keys, NextID: len(iv.trees)}
	for id := range iv.trees {
		m := &iv.trees[id]
		if !m.alive {
			continue
		}
		prof := make([]KeyCount, len(m.prof))
		for i, kc := range m.prof {
			prof[i] = KeyCount{Key: kc.id, Count: kc.count}
		}
		s.Entries = append(s.Entries, SnapshotEntry{ID: id, Size: int(m.size), Prof: prof})
	}
	return s
}

func restore(s *Snapshot, ids map[string]int32, iv *inverted) error {
	for i, k := range s.Keys {
		if prev, dup := ids[k]; dup {
			return fmt.Errorf("index: snapshot keys %d and %d are both %q", prev, i, k)
		}
		ids[k] = int32(i)
	}
	if s.NextID < 0 {
		return fmt.Errorf("index: snapshot next id %d is negative", s.NextID)
	}
	seen := make(map[int]bool, len(s.Entries))
	for _, e := range s.Entries {
		if e.ID < 0 || e.ID >= s.NextID {
			return fmt.Errorf("index: snapshot entry id %d outside [0, %d)", e.ID, s.NextID)
		}
		if seen[e.ID] {
			return fmt.Errorf("index: snapshot holds two entries for id %d", e.ID)
		}
		seen[e.ID] = true
		if e.Size < 1 {
			return fmt.Errorf("index: snapshot entry %d has size %d", e.ID, e.Size)
		}
		prof := make([]keyCount, len(e.Prof))
		last := int32(-1)
		for i, kc := range e.Prof {
			if kc.Key < 0 || int(kc.Key) >= len(s.Keys) {
				return fmt.Errorf("index: entry %d references key %d, snapshot holds %d keys", e.ID, kc.Key, len(s.Keys))
			}
			if kc.Key <= last {
				return fmt.Errorf("index: entry %d profile not strictly key-ascending", e.ID)
			}
			if kc.Count < 1 {
				return fmt.Errorf("index: entry %d key %d has count %d", e.ID, kc.Key, kc.Count)
			}
			last = kc.Key
			prof[i] = keyCount{id: kc.Key, count: kc.Count}
		}
		iv.put(e.ID, e.Size, prof)
	}
	// Reserve the tail so Add never reuses an id the snapshot's writer
	// had already burned (deleted trees leave gaps above the last entry).
	iv.mu.Lock()
	for len(iv.trees) < s.NextID {
		iv.trees = append(iv.trees, treeMeta{})
	}
	iv.mu.Unlock()
	return nil
}
