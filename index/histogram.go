package index

import (
	"sort"
	"sync"

	"repro/internal/tree"
)

// Histogram is a label-histogram inverted index for threshold similarity
// joins. Each indexed tree contributes its label multiset; an inverted
// posting list maps every label to the trees containing it. A query
// merges the posting lists of its own labels, which yields — in one pass
// over the trees that share at least one label — the exact label-multiset
// intersection, and with it the O(1) tree-edit-distance lower bound
//
//	d(F, G) ≥ max(|F|, |G|) − |labels(F) ∩ labels(G)|
//
// (every node not covered by a common label must be inserted, deleted or
// renamed). Candidate generation is provably complete: a pair the index
// does not generate has lower bound ≥ τ and therefore cannot match.
// Pairs sharing no label at all are only possible matches when both trees
// are smaller than τ; a size-ordered sweep covers that fringe without
// touching the posting lists.
//
// Trees are indexed under stable ids: Add assigns the next unused id,
// Put indexes (or re-indexes) under an id of the caller's choosing — the
// id a corpus assigned, so the index survives deletes and replaces
// without renumbering. Delete and Put tombstone the old postings (a
// generation check makes them invisible to probes) and a compaction pass
// reclaims them once they dominate the lists.
//
// The posting lists are hash-sharded with per-shard locks, so concurrent
// Add/Put/Delete and CandidatesBelow calls are safe and parallelize;
// each probe carries its own pooled accumulator.
type Histogram struct {
	kmu sync.Mutex
	ids map[string]int32 // label interner
	iv  inverted
}

// NewHistogram returns an empty label-histogram index.
func NewHistogram() *Histogram {
	return &Histogram{ids: make(map[string]int32)}
}

// Len returns the number of live (not deleted) indexed trees.
func (ix *Histogram) Len() int { return ix.iv.liveCount() }

// Size returns the node count of the indexed tree id, or 0 if no live
// tree is indexed under it.
func (ix *Histogram) Size(id int) int {
	sz, _, alive := ix.iv.meta(int32(id))
	if !alive {
		return 0
	}
	return int(sz)
}

// Add indexes t under the next unused id (insertion order when trees are
// never deleted) and returns that id.
func (ix *Histogram) Add(t *tree.Tree) int {
	id := ix.iv.reserve()
	ix.Put(id, t)
	return id
}

// Put indexes t under the stable id of the caller's choosing, replacing
// whatever tree was indexed there: the previous postings become
// tombstones and t's postings are written under a fresh generation, so
// in-flight probes never see a half-replaced tree.
func (ix *Histogram) Put(id int, t *tree.Tree) {
	n := t.Len()
	ids := make([]int32, 0, n)
	ix.kmu.Lock()
	for v := 0; v < n; v++ {
		l := t.Label(v)
		kid, ok := ix.ids[l]
		if !ok {
			kid = int32(len(ix.ids))
			ix.ids[l] = kid
		}
		ids = append(ids, kid)
	}
	ix.kmu.Unlock()
	ix.iv.put(id, n, runLength(ids))
}

// Delete removes the tree id from the index (its postings become
// tombstones, reclaimed by the next compaction). It reports whether a
// live tree was indexed under id.
func (ix *Histogram) Delete(id int) bool { return ix.iv.delete(id) }

// Compact rewrites the posting lists, dropping every tombstoned posting.
// It runs automatically once tombstones dominate; calling it explicitly
// is only useful before Snapshot or a latency-sensitive probe phase.
func (ix *Histogram) Compact() { ix.iv.compact() }

// runLength sorts a key-id buffer in place and collapses it into a
// (id, count) profile.
func runLength(ids []int32) []keyCount {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var prof []keyCount
	for i := 0; i < len(ids); {
		j := i
		for j < len(ids) && ids[j] == ids[i] {
			j++
		}
		prof = append(prof, keyCount{id: ids[i], count: int32(j - i)})
		i = j
	}
	return prof
}

// CandidatesBelow appends to dst every live tree with id < q whose
// label-histogram lower bound against tree q is strictly below tau, in
// ascending id order, and returns the extended slice. The LB and Score of
// each candidate are that bound. Restricting to smaller ids makes a
// self-join enumerate each unordered pair exactly once.
//
// Completeness: every tree with id < q at edit distance < tau from q is
// returned; everything omitted is at distance ≥ tau. Safe for concurrent
// use with other probes and with Add/Put/Delete (a probe concurrent with
// a mutation sees the index before or after that mutation, never
// half-applied).
func (ix *Histogram) CandidatesBelow(q int, tau float64, dst []Candidate) []Candidate {
	dst = dst[:0]
	if tau <= 0 || q <= 0 {
		return dst
	}
	sc := getScratch()
	defer sc.release()
	nq32, _, ok := ix.iv.accumulate(q, sc)
	if !ok {
		return dst
	}
	nq := int(nq32)
	for _, t := range sc.touched {
		nt, _, alive := ix.iv.meta(t)
		if !alive {
			continue
		}
		m := nq
		if int(nt) > m {
			m = int(nt)
		}
		if lb := float64(m - int(sc.common[t])); lb < tau {
			dst = append(dst, Candidate{ID: int(t), LB: lb, Score: lb})
		}
	}
	// Zero-overlap pairs have lower bound max(|F|, |G|); they are
	// candidates only when both trees are smaller than tau.
	if float64(nq) < tau {
		limit := maxOpsBelow(tau) // sizes ≤ this are < tau
		ix.iv.smallIDs(limit, sc)
		for _, t := range sc.fringe {
			if int(t) >= q || sc.common[t] != 0 {
				continue
			}
			nt, _, alive := ix.iv.meta(t)
			if !alive {
				continue
			}
			lb := float64(nq)
			if int(nt) > nq {
				lb = float64(nt)
			}
			dst = append(dst, Candidate{ID: int(t), LB: lb, Score: lb})
		}
	}
	sortByID(dst)
	return dst
}
