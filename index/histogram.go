package index

import (
	"sort"

	"repro/internal/tree"
)

// Histogram is a label-histogram inverted index for threshold similarity
// joins. Each indexed tree contributes its label multiset; an inverted
// posting list maps every label to the trees containing it. A query
// merges the posting lists of its own labels, which yields — in one pass
// over the trees that share at least one label — the exact label-multiset
// intersection, and with it the O(1) tree-edit-distance lower bound
//
//	d(F, G) ≥ max(|F|, |G|) − |labels(F) ∩ labels(G)|
//
// (every node not covered by a common label must be inserted, deleted or
// renamed). Candidate generation is provably complete: a pair the index
// does not generate has lower bound ≥ τ and therefore cannot match.
// Pairs sharing no label at all are only possible matches when both trees
// are smaller than τ; a size-ordered sweep covers that fringe without
// touching the posting lists.
//
// A Histogram serves one query at a time (queries share scratch); the
// batch engine probes it sequentially and fans the surviving candidates
// out to its worker pool.
type Histogram struct {
	c   corpus
	ids map[string]int32 // label interner

	scratch []int32 // label-id buffer reused by Add
}

// NewHistogram returns an empty label-histogram index.
func NewHistogram() *Histogram {
	return &Histogram{ids: make(map[string]int32)}
}

// Len returns the number of indexed trees.
func (ix *Histogram) Len() int { return len(ix.c.sizes) }

// Size returns the node count of the indexed tree id.
func (ix *Histogram) Size(id int) int { return ix.c.sizes[id] }

// Add indexes t and returns its dense id (assigned in insertion order).
func (ix *Histogram) Add(t *tree.Tree) int {
	n := t.Len()
	ids := ix.scratch[:0]
	for v := 0; v < n; v++ {
		l := t.Label(v)
		id, ok := ix.ids[l]
		if !ok {
			id = int32(len(ix.ids))
			ix.ids[l] = id
		}
		ids = append(ids, id)
	}
	ix.scratch = ids
	return ix.c.add(n, runLength(ids))
}

// runLength sorts a key-id buffer in place and collapses it into a
// (id, count) profile.
func runLength(ids []int32) []keyCount {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var prof []keyCount
	for i := 0; i < len(ids); {
		j := i
		for j < len(ids) && ids[j] == ids[i] {
			j++
		}
		prof = append(prof, keyCount{id: ids[i], count: int32(j - i)})
		i = j
	}
	return prof
}

// CandidatesBelow appends to dst every tree with id < q whose
// label-histogram lower bound against tree q is strictly below tau, in
// ascending id order, and returns the extended slice. The LB and Score of
// each candidate are that bound. Restricting to smaller ids makes a
// self-join enumerate each unordered pair exactly once.
//
// Completeness: every tree with id < q at edit distance < tau from q is
// returned; everything omitted is at distance ≥ tau.
func (ix *Histogram) CandidatesBelow(q int, tau float64, dst []Candidate) []Candidate {
	dst = dst[:0]
	if tau <= 0 || q <= 0 {
		return dst
	}
	nq := ix.c.sizes[q]
	ix.c.accumulate(q)
	for _, t := range ix.c.touched {
		nt := ix.c.sizes[t]
		m := nq
		if nt > m {
			m = nt
		}
		if lb := float64(m - int(ix.c.common[t])); lb < tau {
			dst = append(dst, Candidate{ID: int(t), LB: lb, Score: lb})
		}
	}
	// Zero-overlap pairs have lower bound max(|F|, |G|); they are
	// candidates only when both trees are smaller than tau.
	if float64(nq) < tau {
		limit := maxOpsBelow(tau) // sizes ≤ this are < tau
		for _, t := range ix.c.smallIDs(limit) {
			if int(t) < q && ix.c.common[t] == 0 {
				lb := float64(nq)
				if nt := ix.c.sizes[t]; nt > nq {
					lb = float64(nt)
				}
				dst = append(dst, Candidate{ID: int(t), LB: lb, Score: lb})
			}
		}
	}
	ix.c.reset()
	sortByID(dst)
	return dst
}
